# Empty compiler generated dependencies file for drex_partition_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/drex_partition_test.dir/drex_partition_test.cc.o"
  "CMakeFiles/drex_partition_test.dir/drex_partition_test.cc.o.d"
  "drex_partition_test"
  "drex_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drex_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

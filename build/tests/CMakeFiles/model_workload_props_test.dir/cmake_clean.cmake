file(REMOVE_RECURSE
  "CMakeFiles/model_workload_props_test.dir/model_workload_props_test.cc.o"
  "CMakeFiles/model_workload_props_test.dir/model_workload_props_test.cc.o.d"
  "model_workload_props_test"
  "model_workload_props_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_workload_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for model_workload_props_test.
# This may be replaced when dependencies are built.

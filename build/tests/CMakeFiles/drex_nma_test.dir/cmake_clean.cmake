file(REMOVE_RECURSE
  "CMakeFiles/drex_nma_test.dir/drex_nma_test.cc.o"
  "CMakeFiles/drex_nma_test.dir/drex_nma_test.cc.o.d"
  "drex_nma_test"
  "drex_nma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drex_nma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

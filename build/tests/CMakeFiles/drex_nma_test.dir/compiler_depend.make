# Empty compiler generated dependencies file for drex_nma_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_itq_test.dir/core_itq_test.cc.o"
  "CMakeFiles/core_itq_test.dir/core_itq_test.cc.o.d"
  "core_itq_test"
  "core_itq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_itq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for core_itq_test.
# This may be replaced when dependencies are built.

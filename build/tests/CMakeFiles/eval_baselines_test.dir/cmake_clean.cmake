file(REMOVE_RECURSE
  "CMakeFiles/eval_baselines_test.dir/eval_baselines_test.cc.o"
  "CMakeFiles/eval_baselines_test.dir/eval_baselines_test.cc.o.d"
  "eval_baselines_test"
  "eval_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

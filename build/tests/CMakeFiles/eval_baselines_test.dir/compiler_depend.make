# Empty compiler generated dependencies file for eval_baselines_test.
# This may be replaced when dependencies are built.

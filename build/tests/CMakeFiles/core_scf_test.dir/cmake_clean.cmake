file(REMOVE_RECURSE
  "CMakeFiles/core_scf_test.dir/core_scf_test.cc.o"
  "CMakeFiles/core_scf_test.dir/core_scf_test.cc.o.d"
  "core_scf_test"
  "core_scf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for core_scf_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/drex_pfu_test.dir/drex_pfu_test.cc.o"
  "CMakeFiles/drex_pfu_test.dir/drex_pfu_test.cc.o.d"
  "drex_pfu_test"
  "drex_pfu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drex_pfu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

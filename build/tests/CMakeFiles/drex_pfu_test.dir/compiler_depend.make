# Empty compiler generated dependencies file for drex_pfu_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/drex_fuzz_test.dir/drex_fuzz_test.cc.o"
  "CMakeFiles/drex_fuzz_test.dir/drex_fuzz_test.cc.o.d"
  "drex_fuzz_test"
  "drex_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drex_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for drex_fuzz_test.
# This may be replaced when dependencies are built.

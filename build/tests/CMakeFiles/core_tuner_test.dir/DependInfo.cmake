
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_tuner_test.cc" "tests/CMakeFiles/core_tuner_test.dir/core_tuner_test.cc.o" "gcc" "tests/CMakeFiles/core_tuner_test.dir/core_tuner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/drex/CMakeFiles/ls_drex.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ls_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/ls_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ls_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ls_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ls_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/ls_bench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

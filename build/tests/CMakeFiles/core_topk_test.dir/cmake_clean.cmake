file(REMOVE_RECURSE
  "CMakeFiles/core_topk_test.dir/core_topk_test.cc.o"
  "CMakeFiles/core_topk_test.dir/core_topk_test.cc.o.d"
  "core_topk_test"
  "core_topk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

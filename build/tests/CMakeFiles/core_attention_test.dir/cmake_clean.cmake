file(REMOVE_RECURSE
  "CMakeFiles/core_attention_test.dir/core_attention_test.cc.o"
  "CMakeFiles/core_attention_test.dir/core_attention_test.cc.o.d"
  "core_attention_test"
  "core_attention_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

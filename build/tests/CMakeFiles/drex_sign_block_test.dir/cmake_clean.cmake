file(REMOVE_RECURSE
  "CMakeFiles/drex_sign_block_test.dir/drex_sign_block_test.cc.o"
  "CMakeFiles/drex_sign_block_test.dir/drex_sign_block_test.cc.o.d"
  "drex_sign_block_test"
  "drex_sign_block_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drex_sign_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

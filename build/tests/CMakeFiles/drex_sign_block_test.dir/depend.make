# Empty dependencies file for drex_sign_block_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for model_decoder_test.
# This may be replaced when dependencies are built.

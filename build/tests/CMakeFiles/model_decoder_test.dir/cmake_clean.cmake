file(REMOVE_RECURSE
  "CMakeFiles/model_decoder_test.dir/model_decoder_test.cc.o"
  "CMakeFiles/model_decoder_test.dir/model_decoder_test.cc.o.d"
  "model_decoder_test"
  "model_decoder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_decoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tensor_quantized_test.dir/tensor_quantized_test.cc.o"
  "CMakeFiles/tensor_quantized_test.dir/tensor_quantized_test.cc.o.d"
  "tensor_quantized_test"
  "tensor_quantized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_quantized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tensor_quantized_test.
# This may be replaced when dependencies are built.

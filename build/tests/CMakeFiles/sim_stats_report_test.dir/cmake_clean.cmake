file(REMOVE_RECURSE
  "CMakeFiles/sim_stats_report_test.dir/sim_stats_report_test.cc.o"
  "CMakeFiles/sim_stats_report_test.dir/sim_stats_report_test.cc.o.d"
  "sim_stats_report_test"
  "sim_stats_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_stats_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

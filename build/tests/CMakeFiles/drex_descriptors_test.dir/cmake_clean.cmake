file(REMOVE_RECURSE
  "CMakeFiles/drex_descriptors_test.dir/drex_descriptors_test.cc.o"
  "CMakeFiles/drex_descriptors_test.dir/drex_descriptors_test.cc.o.d"
  "drex_descriptors_test"
  "drex_descriptors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drex_descriptors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

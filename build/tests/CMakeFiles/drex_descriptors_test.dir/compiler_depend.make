# Empty compiler generated dependencies file for drex_descriptors_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for drex_layout_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/drex_layout_test.dir/drex_layout_test.cc.o"
  "CMakeFiles/drex_layout_test.dir/drex_layout_test.cc.o.d"
  "drex_layout_test"
  "drex_layout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drex_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

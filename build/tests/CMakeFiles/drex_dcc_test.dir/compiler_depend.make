# Empty compiler generated dependencies file for drex_dcc_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/drex_dcc_test.dir/drex_dcc_test.cc.o"
  "CMakeFiles/drex_dcc_test.dir/drex_dcc_test.cc.o.d"
  "drex_dcc_test"
  "drex_dcc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drex_dcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

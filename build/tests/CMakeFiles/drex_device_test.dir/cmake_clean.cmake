file(REMOVE_RECURSE
  "CMakeFiles/drex_device_test.dir/drex_device_test.cc.o"
  "CMakeFiles/drex_device_test.dir/drex_device_test.cc.o.d"
  "drex_device_test"
  "drex_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drex_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for drex_device_test.
# This may be replaced when dependencies are built.

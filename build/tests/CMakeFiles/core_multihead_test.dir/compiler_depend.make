# Empty compiler generated dependencies file for core_multihead_test.
# This may be replaced when dependencies are built.

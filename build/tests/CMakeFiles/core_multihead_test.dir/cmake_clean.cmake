file(REMOVE_RECURSE
  "CMakeFiles/core_multihead_test.dir/core_multihead_test.cc.o"
  "CMakeFiles/core_multihead_test.dir/core_multihead_test.cc.o.d"
  "core_multihead_test"
  "core_multihead_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multihead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

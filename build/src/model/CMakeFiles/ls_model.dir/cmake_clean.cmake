file(REMOVE_RECURSE
  "CMakeFiles/ls_model.dir/decoder.cc.o"
  "CMakeFiles/ls_model.dir/decoder.cc.o.d"
  "CMakeFiles/ls_model.dir/model_config.cc.o"
  "CMakeFiles/ls_model.dir/model_config.cc.o.d"
  "CMakeFiles/ls_model.dir/perplexity.cc.o"
  "CMakeFiles/ls_model.dir/perplexity.cc.o.d"
  "CMakeFiles/ls_model.dir/rope.cc.o"
  "CMakeFiles/ls_model.dir/rope.cc.o.d"
  "CMakeFiles/ls_model.dir/workload.cc.o"
  "CMakeFiles/ls_model.dir/workload.cc.o.d"
  "libls_model.a"
  "libls_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ls_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libls_model.a"
)

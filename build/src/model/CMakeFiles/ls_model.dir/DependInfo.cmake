
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/decoder.cc" "src/model/CMakeFiles/ls_model.dir/decoder.cc.o" "gcc" "src/model/CMakeFiles/ls_model.dir/decoder.cc.o.d"
  "/root/repo/src/model/model_config.cc" "src/model/CMakeFiles/ls_model.dir/model_config.cc.o" "gcc" "src/model/CMakeFiles/ls_model.dir/model_config.cc.o.d"
  "/root/repo/src/model/perplexity.cc" "src/model/CMakeFiles/ls_model.dir/perplexity.cc.o" "gcc" "src/model/CMakeFiles/ls_model.dir/perplexity.cc.o.d"
  "/root/repo/src/model/rope.cc" "src/model/CMakeFiles/ls_model.dir/rope.cc.o" "gcc" "src/model/CMakeFiles/ls_model.dir/rope.cc.o.d"
  "/root/repo/src/model/workload.cc" "src/model/CMakeFiles/ls_model.dir/workload.cc.o" "gcc" "src/model/CMakeFiles/ls_model.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ls_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attention.cc" "src/core/CMakeFiles/ls_core.dir/attention.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/attention.cc.o.d"
  "/root/repo/src/core/filter_stats.cc" "src/core/CMakeFiles/ls_core.dir/filter_stats.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/filter_stats.cc.o.d"
  "/root/repo/src/core/hybrid_attention.cc" "src/core/CMakeFiles/ls_core.dir/hybrid_attention.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/hybrid_attention.cc.o.d"
  "/root/repo/src/core/itq.cc" "src/core/CMakeFiles/ls_core.dir/itq.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/itq.cc.o.d"
  "/root/repo/src/core/kv_cache.cc" "src/core/CMakeFiles/ls_core.dir/kv_cache.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/kv_cache.cc.o.d"
  "/root/repo/src/core/multi_head.cc" "src/core/CMakeFiles/ls_core.dir/multi_head.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/multi_head.cc.o.d"
  "/root/repo/src/core/scf.cc" "src/core/CMakeFiles/ls_core.dir/scf.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/scf.cc.o.d"
  "/root/repo/src/core/threshold_tuner.cc" "src/core/CMakeFiles/ls_core.dir/threshold_tuner.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/threshold_tuner.cc.o.d"
  "/root/repo/src/core/topk.cc" "src/core/CMakeFiles/ls_core.dir/topk.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ls_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ls_core.dir/attention.cc.o"
  "CMakeFiles/ls_core.dir/attention.cc.o.d"
  "CMakeFiles/ls_core.dir/filter_stats.cc.o"
  "CMakeFiles/ls_core.dir/filter_stats.cc.o.d"
  "CMakeFiles/ls_core.dir/hybrid_attention.cc.o"
  "CMakeFiles/ls_core.dir/hybrid_attention.cc.o.d"
  "CMakeFiles/ls_core.dir/itq.cc.o"
  "CMakeFiles/ls_core.dir/itq.cc.o.d"
  "CMakeFiles/ls_core.dir/kv_cache.cc.o"
  "CMakeFiles/ls_core.dir/kv_cache.cc.o.d"
  "CMakeFiles/ls_core.dir/multi_head.cc.o"
  "CMakeFiles/ls_core.dir/multi_head.cc.o.d"
  "CMakeFiles/ls_core.dir/scf.cc.o"
  "CMakeFiles/ls_core.dir/scf.cc.o.d"
  "CMakeFiles/ls_core.dir/threshold_tuner.cc.o"
  "CMakeFiles/ls_core.dir/threshold_tuner.cc.o.d"
  "CMakeFiles/ls_core.dir/topk.cc.o"
  "CMakeFiles/ls_core.dir/topk.cc.o.d"
  "libls_core.a"
  "libls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/linalg.cc" "src/tensor/CMakeFiles/ls_tensor.dir/linalg.cc.o" "gcc" "src/tensor/CMakeFiles/ls_tensor.dir/linalg.cc.o.d"
  "/root/repo/src/tensor/quantized.cc" "src/tensor/CMakeFiles/ls_tensor.dir/quantized.cc.o" "gcc" "src/tensor/CMakeFiles/ls_tensor.dir/quantized.cc.o.d"
  "/root/repo/src/tensor/signbits.cc" "src/tensor/CMakeFiles/ls_tensor.dir/signbits.cc.o" "gcc" "src/tensor/CMakeFiles/ls_tensor.dir/signbits.cc.o.d"
  "/root/repo/src/tensor/softmax.cc" "src/tensor/CMakeFiles/ls_tensor.dir/softmax.cc.o" "gcc" "src/tensor/CMakeFiles/ls_tensor.dir/softmax.cc.o.d"
  "/root/repo/src/tensor/svd.cc" "src/tensor/CMakeFiles/ls_tensor.dir/svd.cc.o" "gcc" "src/tensor/CMakeFiles/ls_tensor.dir/svd.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/ls_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/ls_tensor.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

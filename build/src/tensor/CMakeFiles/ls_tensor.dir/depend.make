# Empty dependencies file for ls_tensor.
# This may be replaced when dependencies are built.

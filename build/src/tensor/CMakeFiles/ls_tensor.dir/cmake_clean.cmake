file(REMOVE_RECURSE
  "CMakeFiles/ls_tensor.dir/linalg.cc.o"
  "CMakeFiles/ls_tensor.dir/linalg.cc.o.d"
  "CMakeFiles/ls_tensor.dir/quantized.cc.o"
  "CMakeFiles/ls_tensor.dir/quantized.cc.o.d"
  "CMakeFiles/ls_tensor.dir/signbits.cc.o"
  "CMakeFiles/ls_tensor.dir/signbits.cc.o.d"
  "CMakeFiles/ls_tensor.dir/softmax.cc.o"
  "CMakeFiles/ls_tensor.dir/softmax.cc.o.d"
  "CMakeFiles/ls_tensor.dir/svd.cc.o"
  "CMakeFiles/ls_tensor.dir/svd.cc.o.d"
  "CMakeFiles/ls_tensor.dir/tensor.cc.o"
  "CMakeFiles/ls_tensor.dir/tensor.cc.o.d"
  "libls_tensor.a"
  "libls_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libls_gpu.a"
)

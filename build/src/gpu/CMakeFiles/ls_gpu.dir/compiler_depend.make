# Empty compiler generated dependencies file for ls_gpu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ls_gpu.dir/gpu_model.cc.o"
  "CMakeFiles/ls_gpu.dir/gpu_model.cc.o.d"
  "libls_gpu.a"
  "libls_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attacc_system.cc" "src/sim/CMakeFiles/ls_sim.dir/attacc_system.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/attacc_system.cc.o.d"
  "/root/repo/src/sim/baseline_gpu.cc" "src/sim/CMakeFiles/ls_sim.dir/baseline_gpu.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/baseline_gpu.cc.o.d"
  "/root/repo/src/sim/batch_scheduler.cc" "src/sim/CMakeFiles/ls_sim.dir/batch_scheduler.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/batch_scheduler.cc.o.d"
  "/root/repo/src/sim/decode_pipeline.cc" "src/sim/CMakeFiles/ls_sim.dir/decode_pipeline.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/decode_pipeline.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/sim/CMakeFiles/ls_sim.dir/energy.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/energy.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/ls_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/longsight_system.cc" "src/sim/CMakeFiles/ls_sim.dir/longsight_system.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/longsight_system.cc.o.d"
  "/root/repo/src/sim/serving.cc" "src/sim/CMakeFiles/ls_sim.dir/serving.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/serving.cc.o.d"
  "/root/repo/src/sim/slo_sim.cc" "src/sim/CMakeFiles/ls_sim.dir/slo_sim.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/slo_sim.cc.o.d"
  "/root/repo/src/sim/stats_report.cc" "src/sim/CMakeFiles/ls_sim.dir/stats_report.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/stats_report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drex/CMakeFiles/ls_drex.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/ls_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/ls_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ls_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ls_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

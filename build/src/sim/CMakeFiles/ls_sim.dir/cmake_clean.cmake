file(REMOVE_RECURSE
  "CMakeFiles/ls_sim.dir/attacc_system.cc.o"
  "CMakeFiles/ls_sim.dir/attacc_system.cc.o.d"
  "CMakeFiles/ls_sim.dir/baseline_gpu.cc.o"
  "CMakeFiles/ls_sim.dir/baseline_gpu.cc.o.d"
  "CMakeFiles/ls_sim.dir/batch_scheduler.cc.o"
  "CMakeFiles/ls_sim.dir/batch_scheduler.cc.o.d"
  "CMakeFiles/ls_sim.dir/decode_pipeline.cc.o"
  "CMakeFiles/ls_sim.dir/decode_pipeline.cc.o.d"
  "CMakeFiles/ls_sim.dir/energy.cc.o"
  "CMakeFiles/ls_sim.dir/energy.cc.o.d"
  "CMakeFiles/ls_sim.dir/event_queue.cc.o"
  "CMakeFiles/ls_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ls_sim.dir/longsight_system.cc.o"
  "CMakeFiles/ls_sim.dir/longsight_system.cc.o.d"
  "CMakeFiles/ls_sim.dir/serving.cc.o"
  "CMakeFiles/ls_sim.dir/serving.cc.o.d"
  "CMakeFiles/ls_sim.dir/slo_sim.cc.o"
  "CMakeFiles/ls_sim.dir/slo_sim.cc.o.d"
  "CMakeFiles/ls_sim.dir/stats_report.cc.o"
  "CMakeFiles/ls_sim.dir/stats_report.cc.o.d"
  "libls_sim.a"
  "libls_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ls_cxl.
# This may be replaced when dependencies are built.

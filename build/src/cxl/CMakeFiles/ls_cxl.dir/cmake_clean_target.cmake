file(REMOVE_RECURSE
  "libls_cxl.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/ls_cxl.dir/link.cc.o"
  "CMakeFiles/ls_cxl.dir/link.cc.o.d"
  "libls_cxl.a"
  "libls_cxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

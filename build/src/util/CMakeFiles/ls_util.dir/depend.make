# Empty dependencies file for ls_util.
# This may be replaced when dependencies are built.

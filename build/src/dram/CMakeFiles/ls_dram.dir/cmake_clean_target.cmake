file(REMOVE_RECURSE
  "libls_dram.a"
)

# Empty dependencies file for ls_dram.
# This may be replaced when dependencies are built.

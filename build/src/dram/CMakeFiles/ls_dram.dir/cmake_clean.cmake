file(REMOVE_RECURSE
  "CMakeFiles/ls_dram.dir/channel.cc.o"
  "CMakeFiles/ls_dram.dir/channel.cc.o.d"
  "CMakeFiles/ls_dram.dir/package.cc.o"
  "CMakeFiles/ls_dram.dir/package.cc.o.d"
  "libls_dram.a"
  "libls_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

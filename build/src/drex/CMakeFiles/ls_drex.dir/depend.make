# Empty dependencies file for ls_drex.
# This may be replaced when dependencies are built.

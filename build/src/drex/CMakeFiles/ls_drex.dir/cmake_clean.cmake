file(REMOVE_RECURSE
  "CMakeFiles/ls_drex.dir/dcc.cc.o"
  "CMakeFiles/ls_drex.dir/dcc.cc.o.d"
  "CMakeFiles/ls_drex.dir/descriptors.cc.o"
  "CMakeFiles/ls_drex.dir/descriptors.cc.o.d"
  "CMakeFiles/ls_drex.dir/drex_device.cc.o"
  "CMakeFiles/ls_drex.dir/drex_device.cc.o.d"
  "CMakeFiles/ls_drex.dir/layout.cc.o"
  "CMakeFiles/ls_drex.dir/layout.cc.o.d"
  "CMakeFiles/ls_drex.dir/nma.cc.o"
  "CMakeFiles/ls_drex.dir/nma.cc.o.d"
  "CMakeFiles/ls_drex.dir/partition_manager.cc.o"
  "CMakeFiles/ls_drex.dir/partition_manager.cc.o.d"
  "CMakeFiles/ls_drex.dir/pfu.cc.o"
  "CMakeFiles/ls_drex.dir/pfu.cc.o.d"
  "CMakeFiles/ls_drex.dir/sign_block.cc.o"
  "CMakeFiles/ls_drex.dir/sign_block.cc.o.d"
  "libls_drex.a"
  "libls_drex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_drex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libls_drex.a"
)

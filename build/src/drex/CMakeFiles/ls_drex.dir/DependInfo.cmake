
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drex/dcc.cc" "src/drex/CMakeFiles/ls_drex.dir/dcc.cc.o" "gcc" "src/drex/CMakeFiles/ls_drex.dir/dcc.cc.o.d"
  "/root/repo/src/drex/descriptors.cc" "src/drex/CMakeFiles/ls_drex.dir/descriptors.cc.o" "gcc" "src/drex/CMakeFiles/ls_drex.dir/descriptors.cc.o.d"
  "/root/repo/src/drex/drex_device.cc" "src/drex/CMakeFiles/ls_drex.dir/drex_device.cc.o" "gcc" "src/drex/CMakeFiles/ls_drex.dir/drex_device.cc.o.d"
  "/root/repo/src/drex/layout.cc" "src/drex/CMakeFiles/ls_drex.dir/layout.cc.o" "gcc" "src/drex/CMakeFiles/ls_drex.dir/layout.cc.o.d"
  "/root/repo/src/drex/nma.cc" "src/drex/CMakeFiles/ls_drex.dir/nma.cc.o" "gcc" "src/drex/CMakeFiles/ls_drex.dir/nma.cc.o.d"
  "/root/repo/src/drex/partition_manager.cc" "src/drex/CMakeFiles/ls_drex.dir/partition_manager.cc.o" "gcc" "src/drex/CMakeFiles/ls_drex.dir/partition_manager.cc.o.d"
  "/root/repo/src/drex/pfu.cc" "src/drex/CMakeFiles/ls_drex.dir/pfu.cc.o" "gcc" "src/drex/CMakeFiles/ls_drex.dir/pfu.cc.o.d"
  "/root/repo/src/drex/sign_block.cc" "src/drex/CMakeFiles/ls_drex.dir/sign_block.cc.o" "gcc" "src/drex/CMakeFiles/ls_drex.dir/sign_block.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ls_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cxl/CMakeFiles/ls_cxl.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ls_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/algo_eval.cc" "src/eval/CMakeFiles/ls_eval.dir/algo_eval.cc.o" "gcc" "src/eval/CMakeFiles/ls_eval.dir/algo_eval.cc.o.d"
  "/root/repo/src/eval/sparse_baselines.cc" "src/eval/CMakeFiles/ls_eval.dir/sparse_baselines.cc.o" "gcc" "src/eval/CMakeFiles/ls_eval.dir/sparse_baselines.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ls_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

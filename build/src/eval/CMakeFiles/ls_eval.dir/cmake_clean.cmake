file(REMOVE_RECURSE
  "CMakeFiles/ls_eval.dir/algo_eval.cc.o"
  "CMakeFiles/ls_eval.dir/algo_eval.cc.o.d"
  "CMakeFiles/ls_eval.dir/sparse_baselines.cc.o"
  "CMakeFiles/ls_eval.dir/sparse_baselines.cc.o.d"
  "libls_eval.a"
  "libls_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libls_eval.a"
)

# Empty dependencies file for ls_eval.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/module_swap.dir/module_swap.cpp.o"
  "CMakeFiles/module_swap.dir/module_swap.cpp.o.d"
  "module_swap"
  "module_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

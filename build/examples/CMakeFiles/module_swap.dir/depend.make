# Empty dependencies file for module_swap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/longsight_cli.dir/longsight_cli.cpp.o"
  "CMakeFiles/longsight_cli.dir/longsight_cli.cpp.o.d"
  "longsight_cli"
  "longsight_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longsight_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for longsight_cli.
# This may be replaced when dependencies are built.

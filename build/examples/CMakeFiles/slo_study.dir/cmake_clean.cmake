file(REMOVE_RECURSE
  "CMakeFiles/slo_study.dir/slo_study.cpp.o"
  "CMakeFiles/slo_study.dir/slo_study.cpp.o.d"
  "slo_study"
  "slo_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for slo_study.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for dense_retrieval.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dense_retrieval.dir/dense_retrieval.cpp.o"
  "CMakeFiles/dense_retrieval.dir/dense_retrieval.cpp.o.d"
  "dense_retrieval"
  "dense_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

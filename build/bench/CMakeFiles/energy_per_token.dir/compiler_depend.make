# Empty compiler generated dependencies file for energy_per_token.
# This may be replaced when dependencies are built.

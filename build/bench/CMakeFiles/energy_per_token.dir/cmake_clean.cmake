file(REMOVE_RECURSE
  "CMakeFiles/energy_per_token.dir/energy_per_token.cc.o"
  "CMakeFiles/energy_per_token.dir/energy_per_token.cc.o.d"
  "energy_per_token"
  "energy_per_token.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_per_token.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

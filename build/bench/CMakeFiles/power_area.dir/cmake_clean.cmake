file(REMOVE_RECURSE
  "CMakeFiles/power_area.dir/power_area.cc.o"
  "CMakeFiles/power_area.dir/power_area.cc.o.d"
  "power_area"
  "power_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig3_filter_ratio.
# This may be replaced when dependencies are built.

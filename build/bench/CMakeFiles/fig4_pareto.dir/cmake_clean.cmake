file(REMOVE_RECURSE
  "CMakeFiles/fig4_pareto.dir/fig4_pareto.cc.o"
  "CMakeFiles/fig4_pareto.dir/fig4_pareto.cc.o.d"
  "fig4_pareto"
  "fig4_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

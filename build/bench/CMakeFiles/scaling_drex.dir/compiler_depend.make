# Empty compiler generated dependencies file for scaling_drex.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/scaling_drex.dir/scaling_drex.cc.o"
  "CMakeFiles/scaling_drex.dir/scaling_drex.cc.o.d"
  "scaling_drex"
  "scaling_drex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_drex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

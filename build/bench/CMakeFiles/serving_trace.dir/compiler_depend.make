# Empty compiler generated dependencies file for serving_trace.
# This may be replaced when dependencies are built.

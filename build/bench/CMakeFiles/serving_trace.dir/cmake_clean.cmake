file(REMOVE_RECURSE
  "CMakeFiles/serving_trace.dir/serving_trace.cc.o"
  "CMakeFiles/serving_trace.dir/serving_trace.cc.o.d"
  "serving_trace"
  "serving_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig9_longsight_breakdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig9_longsight_breakdown.dir/fig9_longsight_breakdown.cc.o"
  "CMakeFiles/fig9_longsight_breakdown.dir/fig9_longsight_breakdown.cc.o.d"
  "fig9_longsight_breakdown"
  "fig9_longsight_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_longsight_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

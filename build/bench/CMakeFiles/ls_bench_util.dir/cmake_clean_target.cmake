file(REMOVE_RECURSE
  "../lib/libls_bench_util.a"
)

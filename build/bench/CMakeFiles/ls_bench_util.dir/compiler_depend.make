# Empty compiler generated dependencies file for ls_bench_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../lib/libls_bench_util.a"
  "../lib/libls_bench_util.pdb"
  "CMakeFiles/ls_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ls_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_quantization.dir/ablation_quantization.cc.o"
  "CMakeFiles/ablation_quantization.dir/ablation_quantization.cc.o.d"
  "ablation_quantization"
  "ablation_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

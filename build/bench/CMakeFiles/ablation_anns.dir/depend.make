# Empty dependencies file for ablation_anns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_anns.dir/ablation_anns.cc.o"
  "CMakeFiles/ablation_anns.dir/ablation_anns.cc.o.d"
  "ablation_anns"
  "ablation_anns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_anns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig10_sliding_window.
# This may be replaced when dependencies are built.

/**
 * @file
 * Differential kernel-parity fuzzer: feeds randomized shapes,
 * thresholds, strides, and value patterns through EVERY compiled-in
 * kernel backend (scalar, AVX2, NEON) and asserts per-element bit
 * identity of the outputs — concordance counts, survivor sets, PFU
 * bitmaps, scaled dot products, fused score-select top-k results,
 * quantized-arena scoring (batchQuantDot*, batchInt8Dot*, and the
 * fused quant/INT8 score-selects, flat and span-list), and all *Multi
 * variants against their single-query counterparts. This is
 * the mechanized form of the SCF bit-exactness contract documented in
 * tensor/kernels.hh: survivor sets and scores must not depend on which
 * backend serves them.
 *
 * Two entry points share one case runner:
 *
 *  - a standalone driver (GCC or any compiler): generates cases from a
 *    deterministic splitmix64 stream, bounded by --iters or --seconds,
 *    and replays any files passed as positional arguments;
 *  - a libFuzzer target (clang with -fsanitize=fuzzer only), enabled
 *    by building with -DLONGSIGHT_LIBFUZZER.
 *
 * Any divergence prints the full case (seed, shape, backend, first
 * differing element) and aborts, so both CI smoke runs and local
 * long-haul runs fail loudly.
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/kernels.hh"
#include "tensor/quantized.hh"
#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"
#include "tensor/tensor.hh"
#include "tensor/topk_heap.hh"

namespace {

using longsight::KernelBackend;
using longsight::Matrix;
using longsight::ScoredIndex;
using longsight::SignBits;
using longsight::SignMatrix;

/** Details of the case being run, for failure reports. */
struct CaseInfo
{
    uint64_t seed = 0;
    size_t dim = 0, rows = 0, begin = 0, end = 0, queries = 0;
    int threshold = 0;
    size_t k = 0;
    const char *backend = "";
    const char *stage = "";
};

CaseInfo g_case;

[[noreturn]] void
fail(const char *what)
{
    std::fprintf(stderr,
                 "kernel-parity FAIL: %s\n"
                 "  stage=%s backend=%s seed=%" PRIu64 "\n"
                 "  dim=%zu rows=%zu range=[%zu,%zu) queries=%zu "
                 "threshold=%d k=%zu\n",
                 what, g_case.stage, g_case.backend, g_case.seed,
                 g_case.dim, g_case.rows, g_case.begin, g_case.end,
                 g_case.queries, g_case.threshold, g_case.k);
    std::abort();
}

void
check(bool ok, const char *what)
{
    if (!ok)
        fail(what);
}

/** Deterministic byte-stream reader (FuzzedDataProvider-alike). */
class Input
{
  public:
    Input(const uint8_t *data, size_t size) : data_(data), size_(size) {}

    uint8_t byte()
    {
        if (pos_ >= size_)
            return 0;
        return data_[pos_++];
    }

    uint32_t u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v = (v << 8) | byte();
        return v;
    }

    /** Uniform-ish value in [lo, hi] (inclusive). */
    size_t range(size_t lo, size_t hi)
    {
        if (hi <= lo)
            return lo;
        return lo + u32() % (hi - lo + 1);
    }

    /** Small exact float in [-8, 8): every backend must reproduce the
     *  same bits, so values stay finite and well-scaled. */
    float smallFloat()
    {
        return static_cast<float>(static_cast<int32_t>(u32() % 4096) -
                                  2048) /
               256.0f;
    }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

std::vector<KernelBackend>
availableBackends()
{
    std::vector<KernelBackend> out{KernelBackend::Scalar};
    for (auto b : {KernelBackend::Avx2, KernelBackend::Neon})
        if (longsight::kernelBackendAvailable(b))
            out.push_back(b);
    return out;
}

/** Everything one backend produces for a case; memcmp-able fields. */
struct Outputs
{
    std::vector<int32_t> concordance;
    std::vector<uint32_t> scan_vec;      // vector-flavour survivors
    std::vector<uint32_t> scan_ptr;      // caller-storage survivors
    uint64_t bitmap[2] = {0, 0};
    uint64_t bitmap_words[2] = {0, 0};   // packed-words flavour
    std::vector<float> dot_at;
    std::vector<float> dot_range;
    std::vector<ScoredIndex> select;
    size_t select_n = 0;
    size_t select_survivors = 0;
    std::vector<uint32_t> multi_scan;    // queries * stride
    std::vector<size_t> multi_counts;
    std::vector<uint64_t> multi_bitmap;  // queries * 2
    std::vector<ScoredIndex> multi_select;
    std::vector<size_t> multi_select_n;
    std::vector<size_t> multi_survivors;
    std::vector<uint64_t> sign_reduce;   // majority over rows [begin,end)
    std::vector<uint64_t> sign_reduce_q; // majority over the query rows
    std::vector<float> quant_at;         // batchQuantDotAt over survivors
    std::vector<float> quant_range;      // batchQuantDotRange [begin,end)
    std::vector<int32_t> int8_at;        // batchInt8DotAt over survivors
    std::vector<int32_t> int8_range;     // batchInt8DotRange [begin,end)
    std::vector<ScoredIndex> quant_select;
    size_t quant_select_n = 0;
    size_t quant_select_survivors = 0;
    std::vector<ScoredIndex> int8_select;
    size_t int8_select_n = 0;
    std::vector<ScoredIndex> quant_mspan; // span-list quant select
    std::vector<size_t> quant_mspan_n;
    std::vector<size_t> quant_mspan_surv;
    std::vector<ScoredIndex> int8_mspan;  // span-list INT8 select
    std::vector<size_t> int8_mspan_n;
    std::vector<size_t> int8_mspan_cand;
};

bool
scoredEq(const ScoredIndex &a, const ScoredIndex &b)
{
    return a.index == b.index &&
           std::memcmp(&a.score, &b.score, sizeof(float)) == 0;
}

/** Run the full public kernel surface on the active backend. */
Outputs
runKernels(const SignBits &query, const std::vector<uint64_t> &qwords,
           const std::vector<uint64_t> &all_qwords,
           const std::vector<float> &all_queries, const SignMatrix &signs,
           const Matrix &keys, const std::vector<int8_t> &kq,
           const std::vector<float> &kscales,
           const std::vector<int8_t> &q8s,
           const std::vector<float> &q8_scales,
           const std::vector<longsight::ScanSpan> &spans, size_t begin,
           size_t end, int threshold, float scale, size_t k,
           size_t num_queries)
{
    const size_t span = end - begin;
    const size_t dim = signs.dim();
    Outputs o;

    g_case.stage = "batchConcordance";
    o.concordance.assign(span, 0);
    if (span)
        longsight::batchConcordance(query, signs, begin, end,
                                    o.concordance.data());

    g_case.stage = "batchConcordanceScan";
    size_t n1 = longsight::batchConcordanceScan(query, signs, begin, end,
                                                threshold, o.scan_vec);
    check(n1 == o.scan_vec.size(), "scan count != appended size");
    o.scan_ptr.assign(span ? span : 1, 0xffffffffu);
    size_t n2 = longsight::batchConcordanceScan(
        qwords.data(), signs, begin, end, threshold, o.scan_ptr.data());
    o.scan_ptr.resize(n2);
    check(o.scan_vec == o.scan_ptr,
          "vector and caller-storage scans disagree");

    g_case.stage = "concordanceBitmap";
    if (span) {
        size_t nkeys = std::min<size_t>(span, 128);
        longsight::concordanceBitmap(query, signs, begin,
                                     static_cast<uint32_t>(nkeys),
                                     threshold, o.bitmap);
        longsight::concordanceBitmap(qwords.data(), signs, begin,
                                     static_cast<uint32_t>(nkeys),
                                     threshold, o.bitmap_words);
        check(o.bitmap[0] == o.bitmap_words[0] &&
                  o.bitmap[1] == o.bitmap_words[1],
              "SignBits and packed-words bitmaps disagree");
    }

    g_case.stage = "batchDotScaleAt";
    o.dot_at.assign(o.scan_ptr.size() ? o.scan_ptr.size() : 1, 0.0f);
    if (!o.scan_ptr.empty())
        longsight::batchDotScaleAt(all_queries.data(), keys,
                                   o.scan_ptr.data(), o.scan_ptr.size(),
                                   scale, o.dot_at.data());
    o.dot_at.resize(o.scan_ptr.size());

    g_case.stage = "batchDotScaleRange";
    o.dot_range.assign(span ? span : 1, 0.0f);
    if (span)
        longsight::batchDotScaleRange(all_queries.data(), keys, begin,
                                      end, scale, o.dot_range.data());
    o.dot_range.resize(span);

    g_case.stage = "batchScoreSelect";
    size_t cap = std::min(k, span);
    o.select.assign(cap ? cap : 1, ScoredIndex{0.0f, 0});
    o.select_n = longsight::batchScoreSelect(
        qwords.data(), signs, begin, end, threshold, all_queries.data(),
        keys, scale, k, o.select.data(), &o.select_survivors);
    o.select.resize(o.select_n);

    g_case.stage = "batchScanMulti";
    const size_t stride = span ? span : 1;
    o.multi_scan.assign(num_queries * stride, 0xffffffffu);
    o.multi_counts.assign(num_queries, 0);
    longsight::batchScanMulti(all_qwords.data(), num_queries, signs,
                              begin, end, threshold, o.multi_scan.data(),
                              stride, o.multi_counts.data());

    g_case.stage = "concordanceBitmapMulti";
    o.multi_bitmap.assign(num_queries * 2, 0);
    if (span) {
        size_t nkeys = std::min<size_t>(span, 128);
        longsight::concordanceBitmapMulti(
            all_qwords.data(), num_queries, signs, begin,
            static_cast<uint32_t>(nkeys), threshold,
            o.multi_bitmap.data());
    }

    g_case.stage = "batchScoreSelectMulti";
    const size_t out_stride = cap ? cap : 1;
    o.multi_select.assign(num_queries * out_stride,
                          ScoredIndex{0.0f, 0});
    o.multi_select_n.assign(num_queries, 0);
    o.multi_survivors.assign(num_queries, 0);
    longsight::batchScoreSelectMulti(
        all_qwords.data(), num_queries, signs, begin, end, threshold,
        all_queries.data(), dim, keys, scale, k, o.multi_select.data(),
        out_stride, o.multi_select_n.data(), o.multi_survivors.data());

    g_case.stage = "blockSignReduce";
    const size_t wpr = signs.wordsPerRow();
    o.sign_reduce.assign(wpr, 0);
    if (span) {
        longsight::blockSignReduce(signs, begin, end,
                                   o.sign_reduce.data());
        std::vector<uint64_t> raw(wpr, 0);
        longsight::blockSignReduce(signs.data() + begin * wpr, wpr, span,
                                   raw.data());
        check(raw == o.sign_reduce,
              "SignMatrix and raw blockSignReduce disagree");
    }
    // Raw flavour over the packed query rows (num_queries >= 1), so
    // odd/even row counts and the tie rule are always exercised.
    o.sign_reduce_q.assign(wpr, 0);
    longsight::blockSignReduce(all_qwords.data(), wpr, num_queries,
                               o.sign_reduce_q.data());

    g_case.stage = "batchQuantDotAt";
    o.quant_at.assign(o.scan_ptr.size() ? o.scan_ptr.size() : 1, 0.0f);
    if (!o.scan_ptr.empty())
        longsight::batchQuantDotAt(all_queries.data(), kq.data(),
                                   kscales.data(), dim, o.scan_ptr.data(),
                                   o.scan_ptr.size(), scale,
                                   o.quant_at.data());
    o.quant_at.resize(o.scan_ptr.size());

    g_case.stage = "batchQuantDotRange";
    o.quant_range.assign(span ? span : 1, 0.0f);
    if (span)
        longsight::batchQuantDotRange(all_queries.data(), kq.data(),
                                      kscales.data(), dim, begin, end,
                                      scale, o.quant_range.data());
    o.quant_range.resize(span);

    g_case.stage = "batchInt8DotRange";
    o.int8_range.assign(span ? span : 1, 0);
    if (span)
        longsight::batchInt8DotRange(q8s.data(), kq.data(), dim, begin,
                                     end, o.int8_range.data());
    o.int8_range.resize(span);

    g_case.stage = "batchInt8DotAt";
    o.int8_at.assign(o.scan_ptr.size() ? o.scan_ptr.size() : 1, 0);
    if (!o.scan_ptr.empty())
        longsight::batchInt8DotAt(q8s.data(), kq.data(), dim,
                                  o.scan_ptr.data(), o.scan_ptr.size(),
                                  o.int8_at.data());
    o.int8_at.resize(o.scan_ptr.size());
    // The integer dot is exact, so the indexed and range flavours must
    // agree bit-for-bit on THIS backend, not just across backends.
    for (size_t j = 0; j < o.int8_at.size(); ++j)
        check(o.int8_at[j] == o.int8_range[o.scan_ptr[j] - begin],
              "int8 dot at/range flavours disagree");

    g_case.stage = "batchQuantScoreSelect";
    size_t qcap = cap ? cap : 1;
    o.quant_select.assign(qcap, ScoredIndex{0.0f, 0});
    o.quant_select_n = longsight::batchQuantScoreSelect(
        qwords.data(), signs, begin, end, threshold, all_queries.data(),
        kq.data(), kscales.data(), dim, scale, k, o.quant_select.data(),
        &o.quant_select_survivors);
    o.quant_select.resize(o.quant_select_n);
    check(o.quant_select_survivors == o.select_survivors,
          "quant select survivors != scan survivors");

    g_case.stage = "batchInt8ScoreSelect";
    o.int8_select.assign(qcap, ScoredIndex{0.0f, 0});
    o.int8_select_n = longsight::batchInt8ScoreSelect(
        q8s.data(), q8_scales[0], kq.data(), kscales.data(), dim, begin,
        end, scale, k, o.int8_select.data());
    o.int8_select.resize(o.int8_select_n);

    // Span-list flavours over an identity-mapped split of [begin, end):
    // per query they must reproduce the flat drivers exactly.
    g_case.stage = "batchQuantScoreSelectMultiSpans";
    o.quant_mspan.assign(num_queries * out_stride, ScoredIndex{0.0f, 0});
    o.quant_mspan_n.assign(num_queries, 0);
    o.quant_mspan_surv.assign(num_queries, 0);
    longsight::batchQuantScoreSelectMultiSpans(
        all_qwords.data(), num_queries, signs, spans.data(), spans.size(),
        threshold, all_queries.data(), dim, kq.data(), kscales.data(),
        dim, scale, k, o.quant_mspan.data(), out_stride,
        o.quant_mspan_n.data(), o.quant_mspan_surv.data(), nullptr);
    check(o.quant_mspan_n[0] == o.quant_select_n &&
              o.quant_mspan_surv[0] == o.quant_select_survivors,
          "span-list quant select sizes != flat sizes (query 0)");
    check(std::equal(o.quant_select.begin(), o.quant_select.end(),
                     o.quant_mspan.begin(), scoredEq),
          "span-list quant select entries != flat entries (query 0)");

    g_case.stage = "batchInt8ScoreSelectMultiSpans";
    o.int8_mspan.assign(num_queries * out_stride, ScoredIndex{0.0f, 0});
    o.int8_mspan_n.assign(num_queries, 0);
    o.int8_mspan_cand.assign(spans.size() ? spans.size() : 1, 0);
    longsight::batchInt8ScoreSelectMultiSpans(
        q8s.data(), q8_scales.data(), num_queries, kq.data(),
        kscales.data(), dim, spans.data(), spans.size(), scale, k,
        o.int8_mspan.data(), out_stride, o.int8_mspan_n.data(),
        o.int8_mspan_cand.data());
    o.int8_mspan_cand.resize(spans.size());
    check(o.int8_mspan_n[0] == o.int8_select_n,
          "span-list INT8 select size != flat size (query 0)");
    check(std::equal(o.int8_select.begin(), o.int8_select.end(),
                     o.int8_mspan.begin(), scoredEq),
          "span-list INT8 select entries != flat entries (query 0)");
    for (size_t si = 0; si < spans.size(); ++si)
        check(o.int8_mspan_cand[si] == num_queries * spans[si].count,
              "INT8 span candidate count != queries * span length");

    // Internal consistency on THIS backend: multi query 0 is the same
    // query the single-query calls used, so its outputs must match.
    g_case.stage = "multi-vs-single";
    check(o.multi_counts[0] == o.scan_ptr.size(),
          "multi scan count != single scan count (query 0)");
    check(std::equal(o.scan_ptr.begin(), o.scan_ptr.end(),
                     o.multi_scan.begin()),
          "multi scan survivors != single scan survivors (query 0)");
    if (span)
        check(o.multi_bitmap[0] == o.bitmap[0] &&
                  o.multi_bitmap[1] == o.bitmap[1],
              "multi bitmap != single bitmap (query 0)");
    check(o.multi_select_n[0] == o.select_n &&
              o.multi_survivors[0] == o.select_survivors,
          "multi select sizes != single select sizes (query 0)");
    check(std::equal(
              o.select.begin(), o.select.end(), o.multi_select.begin(),
              [](const ScoredIndex &a, const ScoredIndex &b) {
                  return a.index == b.index &&
                         std::memcmp(&a.score, &b.score,
                                     sizeof(float)) == 0;
              }),
          "multi select entries != single select entries (query 0)");
    return o;
}

template <class T>
void
checkEq(const std::vector<T> &ref, const std::vector<T> &got,
        const char *what)
{
    check(ref.size() == got.size(), what);
    // data() of an empty vector may be null, and memcmp's arguments
    // are declared nonnull even for a zero length (UBSan flags it).
    check(ref.empty() ||
              std::memcmp(ref.data(), got.data(),
                          ref.size() * sizeof(T)) == 0,
          what);
}

void
compareOutputs(const Outputs &ref, const Outputs &got)
{
    g_case.stage = "cross-backend-compare";
    checkEq(ref.concordance, got.concordance, "concordance differs");
    checkEq(ref.scan_ptr, got.scan_ptr, "survivor set differs");
    check(ref.bitmap[0] == got.bitmap[0] && ref.bitmap[1] == got.bitmap[1],
          "bitmap differs");
    checkEq(ref.dot_at, got.dot_at, "dotAt scores differ");
    checkEq(ref.dot_range, got.dot_range, "dotRange scores differ");
    check(ref.select_n == got.select_n &&
              ref.select_survivors == got.select_survivors,
          "score-select sizes differ");
    checkEq(ref.select, got.select, "score-select entries differ");
    checkEq(ref.multi_counts, got.multi_counts, "multi counts differ");
    checkEq(ref.multi_bitmap, got.multi_bitmap, "multi bitmaps differ");
    checkEq(ref.multi_select_n, got.multi_select_n,
            "multi score-select sizes differ");
    checkEq(ref.multi_survivors, got.multi_survivors,
            "multi survivor counts differ");
    checkEq(ref.sign_reduce, got.sign_reduce,
            "block sign-reduce signature differs");
    checkEq(ref.sign_reduce_q, got.sign_reduce_q,
            "query-rows sign-reduce signature differs");
    checkEq(ref.quant_at, got.quant_at, "quant dotAt scores differ");
    checkEq(ref.quant_range, got.quant_range,
            "quant dotRange scores differ");
    checkEq(ref.int8_at, got.int8_at, "int8 dotAt values differ");
    checkEq(ref.int8_range, got.int8_range, "int8 dotRange values differ");
    check(ref.quant_select_n == got.quant_select_n &&
              ref.quant_select_survivors == got.quant_select_survivors,
          "quant score-select sizes differ");
    checkEq(ref.quant_select, got.quant_select,
            "quant score-select entries differ");
    check(ref.int8_select_n == got.int8_select_n,
          "int8 score-select sizes differ");
    checkEq(ref.int8_select, got.int8_select,
            "int8 score-select entries differ");
    checkEq(ref.quant_mspan_n, got.quant_mspan_n,
            "span-list quant select sizes differ");
    checkEq(ref.quant_mspan_surv, got.quant_mspan_surv,
            "span-list quant survivor counts differ");
    checkEq(ref.int8_mspan_n, got.int8_mspan_n,
            "span-list int8 select sizes differ");
    checkEq(ref.int8_mspan_cand, got.int8_mspan_cand,
            "span-list int8 candidate counts differ");
    // Multi outputs are contracted per query up to counts[q] /
    // out_sizes[q]; beyond that is scratch (the SIMD backends'
    // branchless store-then-advance emission writes one slot past the
    // live list), so only the valid prefixes are compared.
    const size_t nq = ref.multi_counts.size();
    const size_t stride = nq ? ref.multi_scan.size() / nq : 0;
    const size_t out_stride = nq ? ref.multi_select.size() / nq : 0;
    for (size_t q = 0; q < nq; ++q) {
        check(std::equal(ref.multi_scan.begin() + q * stride,
                         ref.multi_scan.begin() + q * stride +
                             ref.multi_counts[q],
                         got.multi_scan.begin() + q * stride),
              "multi survivors differ");
        check(std::equal(
                  ref.multi_select.begin() + q * out_stride,
                  ref.multi_select.begin() + q * out_stride +
                      ref.multi_select_n[q],
                  got.multi_select.begin() + q * out_stride,
                  scoredEq),
              "multi score-select entries differ");
        check(std::equal(ref.quant_mspan.begin() + q * out_stride,
                         ref.quant_mspan.begin() + q * out_stride +
                             ref.quant_mspan_n[q],
                         got.quant_mspan.begin() + q * out_stride,
                         scoredEq),
              "span-list quant select entries differ");
        check(std::equal(ref.int8_mspan.begin() + q * out_stride,
                         ref.int8_mspan.begin() + q * out_stride +
                             ref.int8_mspan_n[q],
                         got.int8_mspan.begin() + q * out_stride,
                         scoredEq),
              "span-list int8 select entries differ");
    }
}

void
runCase(const uint8_t *data, size_t size)
{
    Input in(data, size);
    const size_t dim = in.range(1, 200);
    const size_t rows = in.range(0, 260);
    size_t begin = in.range(0, rows);
    size_t end = in.range(begin, rows);
    // Threshold straddles the meaningful range plus both saturations.
    const int threshold =
        static_cast<int>(in.range(0, dim + 2)) - 1;
    const size_t k = in.range(1, rows + 2); // k > 0 is a precondition
    // Beyond kMaxScanQueries so the drivers' chunking is exercised.
    const size_t num_queries =
        in.range(1, longsight::kMaxScanQueries + 4);
    const float scale = in.smallFloat();

    g_case.dim = dim;
    g_case.rows = rows;
    g_case.begin = begin;
    g_case.end = end;
    g_case.threshold = threshold;
    g_case.k = k;
    g_case.queries = num_queries;

    std::vector<float> key_data(rows * dim);
    for (auto &v : key_data)
        v = in.smallFloat();
    Matrix keys(rows, dim, key_data);
    SignMatrix signs(dim);
    for (size_t r = 0; r < rows; ++r)
        signs.appendRow(keys.row(r));

    std::vector<float> all_queries(num_queries * dim);
    for (auto &v : all_queries)
        v = in.smallFloat();
    const size_t wpr = signs.wordsPerRow();
    std::vector<uint64_t> all_qwords(num_queries * wpr);
    for (size_t q = 0; q < num_queries; ++q)
        longsight::packSigns(all_queries.data() + q * dim, dim,
                             all_qwords.data() + q * wpr);
    SignBits query(all_queries.data(), dim);
    std::vector<uint64_t> qwords(all_qwords.begin(),
                                 all_qwords.begin() + wpr);

    // INT8 arenas for the quantized-scoring stages: per-row symmetric
    // key quantization (the KvCache::enableKeyQuantization scheme) and
    // per-query quantization for the estimation kernels.
    std::vector<int8_t> kq(rows * dim);
    std::vector<float> kscales(rows ? rows : 1, 1.0f);
    for (size_t r = 0; r < rows; ++r)
        longsight::quantizeInt8Into(keys.row(r), dim, kq.data() + r * dim,
                                    &kscales[r]);
    std::vector<int8_t> q8s(num_queries * dim);
    std::vector<float> q8_scales(num_queries, 1.0f);
    for (size_t q = 0; q < num_queries; ++q)
        longsight::quantizeInt8Into(all_queries.data() + q * dim, dim,
                                    q8s.data() + q * dim, &q8_scales[q]);

    // Identity-mapped span split of [begin, end) — up to three uneven
    // pieces, so the span-list drivers' stitching is exercised while
    // staying comparable to the flat drivers.
    std::vector<longsight::ScanSpan> spans;
    {
        size_t at = begin;
        while (at < end) {
            const size_t left = end - at;
            size_t take = spans.size() >= 2
                ? left
                : std::min(left, in.range(1, left));
            spans.push_back(longsight::ScanSpan{at, take, at});
            at += take;
        }
    }

    const KernelBackend prev = longsight::activeKernelBackend();
    Outputs ref;
    bool have_ref = false;
    for (KernelBackend b : availableBackends()) {
        g_case.backend = longsight::kernelBackendName(b);
        longsight::setKernelBackend(b);
        Outputs got = runKernels(query, qwords, all_qwords, all_queries,
                                 signs, keys, kq, kscales, q8s,
                                 q8_scales, spans, begin, end, threshold,
                                 scale, k, num_queries);
        if (!have_ref) {
            ref = std::move(got);
            have_ref = true;
        } else {
            compareOutputs(ref, got);
        }
    }
    longsight::setKernelBackend(prev);
}

} // namespace

#if defined(LONGSIGHT_LIBFUZZER)

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    runCase(data, size);
    return 0;
}

#else // standalone driver

namespace {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

int
replayFile(const char *path)
{
    std::FILE *f = std::fopen(path, "rb");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
    }
    std::vector<uint8_t> buf;
    uint8_t chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        buf.insert(buf.end(), chunk, chunk + n);
    std::fclose(f);
    g_case = CaseInfo{};
    runCase(buf.data(), buf.size());
    std::printf("replayed %s (%zu bytes): OK\n", path, buf.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seed = 0x10095117ull; // default: fixed, reproducible
    long iters = 2000;
    double seconds = 0.0;
    std::vector<const char *> replay;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--seed")
            seed = std::strtoull(next(), nullptr, 0);
        else if (a == "--iters")
            iters = std::strtol(next(), nullptr, 0);
        else if (a == "--seconds")
            seconds = std::strtod(next(), nullptr);
        else if (a == "--help" || a == "-h") {
            std::printf("usage: %s [--seed S] [--iters N] "
                        "[--seconds T] [case-file...]\n",
                        argv[0]);
            return 0;
        } else {
            replay.push_back(argv[i]);
        }
    }

    for (const char *path : replay)
        if (int rc = replayFile(path))
            return rc;
    if (!replay.empty())
        return 0;

    size_t backends = availableBackends().size();
    std::printf("kernel-parity fuzz: %zu backend(s):", backends);
    for (KernelBackend b : availableBackends())
        std::printf(" %s", longsight::kernelBackendName(b));
    std::printf("\n");
    if (backends < 2)
        std::printf("note: only one backend available; checking "
                    "internal (multi-vs-single, flavour) parity only\n");

    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    long done = 0;
    uint64_t state = seed;
    std::vector<uint8_t> buf;
    while (seconds > 0.0 ? elapsed() < seconds : done < iters) {
        uint64_t case_seed = splitmix64(state);
        g_case = CaseInfo{};
        g_case.seed = case_seed;
        // Size varies so short (truncated-input) cases are covered too.
        buf.resize(64 + case_seed % 3072);
        uint64_t s = case_seed;
        for (size_t i = 0; i < buf.size(); i += 8) {
            uint64_t w = splitmix64(s);
            size_t nb = std::min<size_t>(8, buf.size() - i);
            std::memcpy(buf.data() + i, &w, nb);
        }
        runCase(buf.data(), buf.size());
        ++done;
    }
    std::printf("kernel-parity fuzz: OK (%ld cases, %.1fs, seed "
                "0x%" PRIx64 ")\n",
                done, elapsed(), seed);
    return 0;
}

#endif // LONGSIGHT_LIBFUZZER

#!/usr/bin/env python3
"""Parallel-safety static analysis for the LongSight thread-pool paths.

Second analysis pass over the same compiler artifacts as the contract
lint (shared machinery in callgraph.py), enforcing the repo's
bit-identical-at-any-thread-count guarantee at analysis time instead
of only dynamically (TSan rows, 1-vs-8-thread tests):

  race          A parallelFor/parallelForEach body (annotated with
                LS_PARALLEL_BODY() as its first statement) reaches a
                plain write to a global, a static, or state captured
                by reference — the classic cross-lane data race.
                Atomics never appear as plain GIMPLE stores, so they
                pass; per-lane state is declared with
                LS_LANE_LOCAL(name); everything else needs
                // LS_LINT_ALLOW(race): reason, or a fix.
  lockorder     Two locks are acquired in opposite orders somewhere in
                the program (cross-TU): lock B taken while holding A
                creates edge A->B in the acquisition graph; any cycle
                is a latent deadlock and fails the lint.
  parallel-root A parallelFor/parallelForEach call site whose body
                lambda does not carry LS_PARALLEL_BODY() — new code
                cannot silently opt out of the race checker.

Mechanism
---------
Each TU is compiled once (cached, shared with the contract lint) with
both -fcallgraph-info=su,da and -fdump-tree-gimple-lineno. The VCG
graphs, merged on mangled names, give whole-program reachability from
every LS_PARALLEL_BODY root; the GIMPLE dumps give each function's
write-set and lock-acquisition sequence with exact file:line:col
locations. GIMPLE prints pretty function headers, not mangles, so the
two views are joined on a normalized qualified name (template
arguments, parameter lists, and lambda signatures collapsed); name
collisions union their facts, which only ever adds findings — the
conservative direction for a linter.

Write classification per GIMPLE statement:
  name = _2;            plain store. If "name" is not a local or a
                        parameter of the function it is a global or a
                        static (function-local statics included) ->
                        flagged when reachable from a parallel body.
  arr[_5] = v;          indexed store to a shared array: flagged
                        unless the array is declared LS_LANE_LOCAL.
  *_6 = _7;  where      _6 loaded from __closure->__x: a write through
                        a by-reference lambda capture -> flagged.
  __atomic_*, .fetch_*  atomic RMW ops are calls, not stores: pass.
  this->field = v;      not flagged: per-object state is the calling
                        code's partitioning decision; the clang
                        thread-safety layer (LS_GUARDED_BY) covers the
                        shared-object case.

Lock identity at an acquisition site: `&this->mu_` inside Class::fn
canonicalizes to Class::mu_; a global mutex keeps its name; a mutex of
a function-local object is unordered-with-everything and ignored. The
scoped wrappers (std::lock_guard/unique_lock/scoped_lock, and the
project's SpinGuard/MutexLock in src/util/sync.hh) are recognized at
their project call sites; the wrapper bodies themselves are skipped so
all instances of a wrapper class do not collapse into one lock.

Usage:
  ls_race_lint.py --build-dir BUILD [--json OUT] [--jobs N] [-v]
  ls_race_lint.py --fixture FILE.cc [--project-root DIR] [--json OUT]
"""

import argparse
import json
import os
import re
import sys

import callgraph
from callgraph import (BUILTIN_PRUNE_MANGLED, EXEMPT_MARKER,
                       PARALLEL_BODY_MARKER)

CATEGORIES = ("race", "lockorder", "parallel-root")

CATEGORY_WHY = {
    "race": "shared write in parallel region",
    "lockorder": "lock-order inversion",
    "parallel-root": "unannotated parallel body",
}


# --------------------------------------------------------------------------
# Name normalization: joins VCG (c++filt) names with GIMPLE headers
# --------------------------------------------------------------------------

def strip_groups(s, open_c, close_c):
    out = []
    depth = 0
    for ch in s:
        if ch == open_c:
            depth += 1
        elif ch == close_c and depth:
            depth -= 1
        elif depth == 0:
            out.append(ch)
    return "".join(out)


_OPERATOR_RE = re.compile(r'operator\s*(\(\)|\[\]|""\s*\w+|[^\w\s(]+)')
_LAMBDA_NUM_RE = re.compile(r"\{lambda#?\d*\}")
_BRACKET_RE = re.compile(r"\[[^\]]*\]")
_CV_TAIL = {"const", "volatile", "&", "&&", "noexcept"}


def normalize_name(s):
    """Canonical join key for a function name.

    Collapses everything the two pretty-printers disagree on: return
    types, parameter lists, template arguments ("long" vs "long int",
    defaulted allocators), lambda spellings ({lambda(T)#1} vs
    <lambda(T)>), and anonymous-namespace markers. Distinct lambdas in
    one enclosing function collapse to one key; their facts union.
    """
    s = s.replace("(anonymous namespace)", "@anon")
    s = s.replace("{anonymous}", "@anon")
    s = _OPERATOR_RE.sub(
        lambda m: "operator@" + "".join("%x" % ord(c) for c in m.group(1)),
        s)
    s = strip_groups(s, "(", ")")
    s = _LAMBDA_NUM_RE.sub("@lambda", s)
    s = s.replace("<lambda>", "@lambda")
    s = strip_groups(s, "<", ">")
    s = _BRACKET_RE.sub("", s)
    # Qualifiers of an ENCLOSING member function sit mid-name after
    # paren stripping ("computeInto const::{lambda...}"); fuse them so
    # the last-token split below keeps the full qualified path.
    s = re.sub(r"\s+(?:const|volatile|noexcept|&&?)(\s*::)", r"\1", s)
    toks = s.split()
    while toks and toks[-1] in _CV_TAIL:
        toks.pop()
    if not toks:
        return ""
    return toks[-1].rstrip(";").lstrip(":*&")


def class_of(norm_name):
    """Enclosing scope of a normalized name ('' for free functions)."""
    return norm_name.rsplit("::", 1)[0] if "::" in norm_name else ""


# --------------------------------------------------------------------------
# GIMPLE parsing
# --------------------------------------------------------------------------

LOC_RE = re.compile(r"\[([^\[\]]*?):(\d+):(\d+)\]\s*")
# SSA-ish temporaries and compiler-synthesized names: _2, D.83198,
# g_counter.1_3, i.0_1, retval.6, SR.12 — never user state.
TEMP_RE = re.compile(r"^(_\d+|D\.\d+|\S+\.\d+(_\d+)?)$")
IDENT_RE = re.compile(r"^[A-Za-z_]\w*$")

SCOPED_ACQ_RE = re.compile(
    r"^(std::lock_guard<.*>::lock_guard|"
    r"std::unique_lock<.*>::unique_lock|"
    r"std::scoped_lock<.*>::scoped_lock|"
    r"longsight::SpinGuard::SpinGuard|"
    r"longsight::MutexLock::MutexLock)$")
SCOPED_REL_RE = re.compile(
    r"^(std::lock_guard<.*>::~lock_guard|"
    r"std::unique_lock<.*>::~unique_lock|"
    r"std::scoped_lock<.*>::~scoped_lock|"
    r"longsight::SpinGuard::~SpinGuard|"
    r"longsight::MutexLock::~MutexLock)$")
DIRECT_ACQ_RE = re.compile(
    r"^(std::(recursive_|timed_|shared_)?mutex::lock|"
    r"longsight::Mutex::lock|"
    r"longsight::SpinLock::lock|"
    r"pthread_mutex_lock)$")
DIRECT_REL_RE = re.compile(
    r"^(std::(recursive_|timed_|shared_)?mutex::unlock|"
    r"longsight::Mutex::unlock|"
    r"longsight::SpinLock::unlock|"
    r"pthread_mutex_unlock)$")

# Lock acquisitions inside the project's own wrapper bodies are skipped
# (the wrapper's this->_M_device would merge every instance into one
# lock); wrappers are instead recognized at their call sites above.
WRAPPER_SCOPES = (
    "longsight::Mutex", "longsight::MutexLock", "longsight::CondVar",
    "longsight::SpinLock", "longsight::SpinGuard",
)


class FuncFacts:
    __slots__ = ("name", "writes", "acquire_edges", "direct_locks",
                 "calls", "held_calls")

    def __init__(self, name):
        self.name = name
        # (file, line, col, var, kind) — kind: "global" | "captured"
        self.writes = []
        # (held_lockid, acquired_lockid, file, line, col)
        self.acquire_edges = []
        # lockids acquired anywhere in this function body
        self.direct_locks = set()
        # normalized callee names (for the lock transitive closure)
        self.calls = set()
        # (tuple of held lockids, callee, file, line, col)
        self.held_calls = []


def _decl_name(text):
    """Declared identifier from a GIMPLE decl line (sans 'static')."""
    text = text.split("[value-expr", 1)[0]
    text = text.split("=", 1)[0].rstrip().rstrip(";")
    if not text:
        return None
    tok = text.split()[-1].lstrip("*&")
    tok = tok.split("[", 1)[0]
    return tok if tok else None


def _split_args(argstr):
    out = []
    depth = 0
    cur = []
    for ch in argstr:
        if ch in "(<[":
            depth += 1
        elif ch in ")>]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return out


def _extract_call(text):
    """(callee, [args]) if `text` is `name (args)`, else None."""
    text = text.rstrip(";").rstrip()
    if not text.endswith(")") or text.startswith(("(", "if ", "goto ")):
        return None
    depth = 0
    for i in range(len(text) - 1, -1, -1):
        ch = text[i]
        if ch == ")":
            depth += 1
        elif ch == "(":
            depth -= 1
            if depth == 0:
                name = text[:i].rstrip()
                if not name or name.endswith((",", "=", "&", "*")):
                    return None
                return name, _split_args(text[i + 1:-1])
    return None


class GimpleParser:
    """Extracts per-function write-sets and lock sequences from a dump."""

    def __init__(self, project_root, directory, facts):
        self.root = os.path.realpath(project_root)
        self.directory = directory
        self.facts = facts            # dict norm_name -> FuncFacts
        self.path_cache = {}

    def in_project(self, fname):
        hit = self.path_cache.get(fname)
        if hit is None:
            p = fname
            if not os.path.isabs(p):
                p = os.path.join(self.directory, p)
            hit = os.path.realpath(p).startswith(self.root + os.sep)
            self.path_cache[fname] = hit
        return hit

    def parse(self, path):
        with open(path, "r", errors="replace") as f:
            lines = f.readlines()
        i = 0
        n = len(lines)
        while i < n:
            line = lines[i]
            if (not line[:1].isspace() and line.strip()
                    and not line.startswith(("__attribute__", ";;", "}",
                                             "{", "["))
                    and "(" in line):
                header = line.rstrip("\n")
                # Join wrapped headers until parens balance.
                while (header.count("(") > header.count(")")
                       and i + 1 < n):
                    i += 1
                    header += " " + lines[i].strip()
                i += 1
                i = self._parse_body(header, lines, i)
            else:
                i += 1
        return self.facts

    def _parse_body(self, header, lines, i):
        name = normalize_name(header)
        ff = self.facts.get(name)
        if ff is None:
            ff = self.facts[name] = FuncFacts(name)
        in_wrapper = class_of(name) in WRAPPER_SCOPES
        # Parameter names: last token of each top-level comma group.
        params = set()
        pstart = header.find("(")
        if pstart >= 0:
            inner = strip_groups(header[pstart + 1:header.rfind(")")],
                                 "(", ")")
            for piece in _split_args(inner):
                tok = _decl_name(piece + ";")
                if tok:
                    params.add(tok)
        locals_ = set(params)
        taint = {}       # temp -> captured variable name
        vals = {}        # temp -> RHS text (for lock-expr resolution)
        held = []        # [(lockid, guard_name, loc)]
        cls = class_of(name)

        def canon_lock(expr):
            """Canonical lock identity, or None to ignore."""
            expr = expr.strip()
            for _ in range(4):
                if expr.startswith("&"):
                    expr = expr[1:].strip()
                elif TEMP_RE.match(expr) and expr in vals:
                    expr = vals[expr].strip()
                else:
                    break
            if TEMP_RE.match(expr):
                return None
            expr = re.sub(r"\.D\.\d+", "", expr)
            if expr.startswith("this->"):
                return (cls + "::" + expr[6:]) if cls else expr[6:]
            base = re.split(r"\.|->|\[", expr, 1)[0]
            if not IDENT_RE.match(base):
                return None
            if base in locals_ or TEMP_RE.match(base):
                return None     # function-local object: unordered
            return expr

        def acquire(lockid, floc):
            for h, _, _ in held:
                ff.acquire_edges.append((h, lockid) + floc)
            ff.direct_locks.add(lockid)

        def note_write(lhs, floc, in_proj):
            """Classify a store's LHS; returns True if it was a temp."""
            if TEMP_RE.match(lhs):
                return True
            if not in_proj:
                return False
            if lhs.startswith("*"):
                # Store through a pointer: shared only if the pointer
                # is a loaded by-reference capture. An untainted deref
                # (matrix row, scratch slot, heap cell handed to this
                # lane) has an unknowable target — stay quiet.
                t = lhs.lstrip("*").strip()
                if t in taint:
                    ff.writes.append(floc + (taint[t], "captured"))
                return False
            if lhs.startswith("MEM"):
                # MEM[(T *)addr] block store; same rule as *ptr above.
                for t in re.findall(r"_\d+", lhs):
                    if t in taint:
                        ff.writes.append(floc + (taint[t], "captured"))
                        break
                return False
            m = re.match(r"^__closure->__(\w+)$", lhs)
            if m:
                ff.writes.append(floc + (m.group(1), "captured"))
                return False
            base = re.split(r"\.|->|\[", lhs, 1)[0].strip()
            if (TEMP_RE.match(base)
                    or re.match(r"^(_\d+|D\.\d+|\w+\.\d+)", lhs)):
                # Member store into a compiler temporary (compound
                # literal / closure-object construction).
                return False
            if (IDENT_RE.match(base) and base != "this"
                    and base not in locals_):
                ff.writes.append(floc + (base, "global"))
            return False

        n = len(lines)
        while i < n:
            raw = lines[i]
            i += 1
            if raw.startswith("}"):
                break
            text = raw.strip()
            if not text or text in ("{", "}", "try", "catch", "finally"):
                continue
            locs = LOC_RE.findall(raw)
            clean = LOC_RE.sub("", raw).strip()
            if not locs:
                if "{CLOBBER" in clean or clean.startswith(("<", "goto",
                                                            "return")):
                    continue
                if clean.endswith(";"):
                    is_static = clean.startswith("static ")
                    dn = _decl_name(clean)
                    if dn and not is_static:
                        locals_.add(dn)
                continue
            fname, lno, col = locs[0]
            floc = (fname, int(lno), int(col))
            in_proj = self.in_project(fname)

            lhs = rhs = None
            if not clean.startswith(("if ", "if(", "goto", "return",
                                     "switch")):
                eq = clean.find(" = ")
                if eq > 0:
                    lhs = clean[:eq].strip()
                    rhs = clean[eq + 3:].strip().rstrip(";")

            # ---- call handling (locks, call graph) ----
            call = _extract_call(rhs if rhs is not None else clean)
            if call:
                callee_raw, args = call
                callee_raw = callee_raw.strip()
                if SCOPED_ACQ_RE.match(callee_raw):
                    if not in_wrapper and in_proj and len(args) >= 2:
                        guard = args[0].lstrip("&").strip()
                        for mexpr in args[1:]:
                            lid = canon_lock(mexpr)
                            if lid:
                                acquire(lid, floc)
                                held.append((lid, guard, floc))
                elif SCOPED_REL_RE.match(callee_raw):
                    guard = args[0].lstrip("&").strip() if args else ""
                    for k in range(len(held) - 1, -1, -1):
                        if held[k][1] == guard:
                            del held[k]
                            break
                elif DIRECT_ACQ_RE.match(callee_raw):
                    if not in_wrapper and in_proj and args:
                        lid = canon_lock(args[0])
                        if lid:
                            acquire(lid, floc)
                            held.append((lid, None, floc))
                elif DIRECT_REL_RE.match(callee_raw):
                    lid = canon_lock(args[0]) if args else None
                    for k in range(len(held) - 1, -1, -1):
                        if held[k][0] == lid:
                            del held[k]
                            break
                elif callee_raw.startswith(("__atomic", "__builtin",
                                            "__cxa", "__gthread")):
                    pass
                else:
                    cn = normalize_name(callee_raw)
                    if cn and (cn[0].isalpha() or cn[0] in "_@~"):
                        ff.calls.add(cn)
                        if held and in_proj:
                            ff.held_calls.append(
                                (tuple(h for h, _, _ in held), cn) + floc)
                # Taint never flows from call results; a call's LHS is
                # either a result temp or a real store of the result.
                if lhs is not None:
                    if note_write(lhs, floc, in_proj):
                        vals.pop(lhs, None)
                        taint.pop(lhs, None)
                continue

            # ---- assignment handling (writes, taint, lock temps) ----
            if lhs is None:
                continue
            if note_write(lhs, floc, in_proj):
                vals[lhs] = rhs
                m = re.match(r"^__closure->__(\w+)$", rhs)
                if m:
                    taint[lhs] = m.group(1)
                else:
                    # Propagate capture taint through casts and pointer
                    # arithmetic; a deref or any other shape clears it.
                    m = (re.match(r"^\((?:[^()]*)\)\s*(\S+)$", rhs)
                         or re.match(r"^(\S+)\s*[+-]\s*\S+$", rhs))
                    src = m.group(1) if m else None
                    if src is not None and src in taint:
                        taint[lhs] = taint[src]
                    else:
                        taint.pop(lhs, None)
        return i


# --------------------------------------------------------------------------
# LS_LANE_LOCAL collection
# --------------------------------------------------------------------------

LANE_LOCAL_RE = re.compile(r"LS_LANE_LOCAL\(\s*([A-Za-z_]\w*)\s*\)")


def collect_lane_local(paths):
    """Names declared lane-partitioned anywhere in the given sources."""
    names = set()
    for path in paths:
        try:
            with open(path, "r", errors="replace") as f:
                for line in f:
                    if "#define" in line:
                        continue   # the macro's own definition
                    for m in LANE_LOCAL_RE.finditer(line):
                        names.add(m.group(1))
        except OSError:
            continue
    return names


def project_sources(project_root, subdirs=("src",)):
    out = []
    for sub in subdirs:
        base = os.path.join(project_root, sub)
        for dirpath, _, files in os.walk(base):
            for fn in sorted(files):
                if fn.endswith((".cc", ".hh", ".h")):
                    out.append(os.path.join(dirpath, fn))
    return out


# --------------------------------------------------------------------------
# Checks
# --------------------------------------------------------------------------

class RaceChecker:
    def __init__(self, graph, facts, project_root, lane_local,
                 verbose=False):
        self.graph = graph
        self.facts = facts
        self.src = callgraph.SourceIndex(project_root, CATEGORIES)
        self.lane_local = lane_local
        self.verbose = verbose
        self.diagnostics = []
        self.indirect_edges = 0
        self.marker_keys = set()
        self.exempt_keys = set()
        for key, node in graph.items():
            if node.mangled == PARALLEL_BODY_MARKER:
                self.marker_keys.add(key)
            elif node.mangled == EXEMPT_MARKER:
                self.exempt_keys.add(key)
        self.roots = set()
        self.exempt = set()
        for key, node in graph.items():
            for dst, _ in node.edges:
                if dst in self.marker_keys:
                    self.roots.add(key)
                if dst in self.exempt_keys:
                    self.exempt.add(key)

    # -- shared-write BFS -------------------------------------------------

    def check_shared_writes(self, directory):
        reported = set()
        for root_key in sorted(self.roots):
            root = self.graph[root_key]
            seen = {root_key}
            queue = [root_key]
            while queue:
                key = queue.pop(0)
                node = self.graph.get(key)
                if node is None:
                    continue
                self._check_node_writes(node, root, directory, reported,
                                        is_root=(key == root_key))
                for dst, _ in node.edges:
                    if (dst in seen or dst in self.marker_keys
                            or dst in self.exempt_keys
                            or dst in self.exempt):
                        continue
                    if dst == "__indirect_call":
                        self.indirect_edges += 1
                        continue
                    target = self.graph.get(dst)
                    if target is None:
                        continue
                    if target.mangled.startswith(BUILTIN_PRUNE_MANGLED):
                        continue
                    seen.add(dst)
                    queue.append(dst)

    def _check_node_writes(self, node, root, directory, reported,
                           is_root=False):
        ff = self.facts.get(normalize_name(node.pretty))
        if ff is None:
            return
        for fname, line, col, var, kind in ff.writes:
            if var in self.lane_local:
                continue
            if kind == "captured" and not is_root:
                # By-reference captures of lambdas created INSIDE the
                # lane refer to that lane's stack; only the parallel
                # body's own closure spans lanes.
                continue
            loc = "%s:%d:%d" % (fname, line, col)
            if (loc, var) in reported:
                continue
            if self.src.waived(loc, directory, "race"):
                continue
            reported.add((loc, var))
            what = ("state captured by reference" if kind == "captured"
                    else "global/static state")
            self.diagnostics.append({
                "file": fname, "line": line, "col": col, "loc": loc,
                "category": "race",
                "root": root.pretty,
                "var": var,
                "detail": "write to %s '%s'" % (what, var),
                "directory": directory,
            })

    # -- lock-order cycles ------------------------------------------------

    def check_lock_order(self, directory):
        # Transitive lock closure over the GIMPLE-level call graph.
        # Recursion is restricted to project-namespace callees: fact
        # nodes are keyed by template-stripped names, so one std node
        # (std::construct_at, std::vector::...) unions every
        # instantiation across the tree and would bridge unrelated
        # call chains into false cycles. Locks only live in project
        # wrappers, so project-to-project chains carry all real edges;
        # acquisitions reached only through std callbacks are out of
        # scope (as they already are for the indirect-call-free BFS).
        memo = {}

        def project_fn(fn):
            return fn.startswith(("longsight::", "@anon")) \
                or "::@anon" in fn or "@anon::" in fn

        def locks_tc(fn):
            done = memo.get(fn)
            if done is not None:
                return done
            memo[fn] = set()        # cycle guard
            ff = self.facts.get(fn)
            if ff is None:
                return memo[fn]
            acc = set(ff.direct_locks)
            for callee in ff.calls:
                if project_fn(callee):
                    acc |= locks_tc(callee)
            memo[fn] = acc
            return acc

        # Edge set: (held, acquired) -> first (file, line, col)
        edges = {}

        def add_edge(a, b, fname, line, col):
            if a == b:
                return   # re-entry of one lock: left to TSA/runtime
            loc = "%s:%d:%d" % (fname, line, col)
            if self.src.waived(loc, directory, "lockorder"):
                return
            edges.setdefault((a, b), (fname, line, col))

        for ff in self.facts.values():
            for a, b, fname, line, col in ff.acquire_edges:
                add_edge(a, b, fname, line, col)
            for held, callee, fname, line, col in ff.held_calls:
                for b in locks_tc(callee):
                    for a in held:
                        add_edge(a, b, fname, line, col)

        adj = {}
        for (a, b) in edges:
            adj.setdefault(a, set()).add(b)

        # Report every edge that lies on a cycle: b reaches a.
        def reaches(start, goal):
            seen = set()
            stack = [start]
            while stack:
                x = stack.pop()
                if x == goal:
                    return True
                if x in seen:
                    continue
                seen.add(x)
                stack.extend(adj.get(x, ()))
            return False

        for (a, b), (fname, line, col) in sorted(edges.items()):
            if reaches(b, a):
                self.diagnostics.append({
                    "file": fname, "line": line, "col": col,
                    "loc": "%s:%d:%d" % (fname, line, col),
                    "category": "lockorder",
                    "root": a,
                    "var": b,
                    "detail": "'%s' acquired while holding '%s', but the "
                              "reverse order also exists" % (b, a),
                    "directory": directory,
                })

    # -- parallel-root coverage -------------------------------------------

    PARALLEL_CALL_RE = re.compile(r"(?:\.|->)parallelFor(?:Each)?\s*\(")
    ROOT_WINDOW = 8

    def check_parallel_roots(self, paths, directory):
        for path in paths:
            base = os.path.basename(path)
            if base.startswith("thread_pool."):
                continue   # the implementation itself
            lines = self.src.lines_of(path)
            for idx, line in enumerate(lines):
                m = self.PARALLEL_CALL_RE.search(line)
                if m is None:
                    continue
                window = lines[idx:idx + self.ROOT_WINDOW]
                if any("LS_PARALLEL_BODY" in w for w in window):
                    continue
                loc = "%s:%d:%d" % (path, idx + 1, m.start() + 1)
                if self.src.waived(loc, directory, "parallel-root"):
                    continue
                self.diagnostics.append({
                    "file": path, "line": idx + 1, "col": m.start() + 1,
                    "loc": loc,
                    "category": "parallel-root",
                    "root": "", "var": "",
                    "detail": "parallelFor body without LS_PARALLEL_BODY()"
                              " within %d lines" % self.ROOT_WINDOW,
                    "directory": directory,
                })

    def run(self, directory, source_paths):
        self.check_shared_writes(directory)
        self.check_lock_order(directory)
        self.check_parallel_roots(source_paths, directory)
        self.diagnostics.sort(
            key=lambda d: (d["file"], d["line"], d["col"], d["category"]))
        return self.diagnostics


def print_diagnostics(diags, stream=sys.stdout):
    for d in diags:
        print("%s: error: [ls-race:%s] %s"
              % (d["loc"], d["category"], d["detail"]), file=stream)
        if d.get("root"):
            if d["category"] == "race":
                print("    parallel root: %s" % d["root"], file=stream)
            elif d["category"] == "lockorder":
                print("    cycle through: %s -> %s -> ... -> %s"
                      % (d["root"], d["var"], d["root"]), file=stream)


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------

def analyze(artifacts, project_root, source_paths, verbose):
    """Build graph + facts from compile artifacts and run all checks."""
    graph = {}
    facts = {}
    for path, art in sorted(artifacts.items()):
        callgraph.parse_ci(art["ci"], os.path.basename(path), graph)
        GimpleParser(project_root, os.path.dirname(path),
                     facts).parse(art["gimple"])
    callgraph.finalize_graph(graph)
    lane_local = collect_lane_local(source_paths)
    checker = RaceChecker(graph, facts, project_root, lane_local, verbose)
    if verbose:
        print("race-lint: %d TUs, %d graph nodes, %d GIMPLE functions, "
              "%d parallel roots, %d lane-local names"
              % (len(artifacts), len(graph), len(facts),
                 len(checker.roots), len(lane_local)), file=sys.stderr)
        for k in sorted(checker.roots):
            print("  root: %s" % graph[k].pretty, file=sys.stderr)
    diags = checker.run(project_root, source_paths)
    return diags, checker


def lint_build(build_dir, project_root, jobs, verbose, only=None):
    build_dir = os.path.realpath(build_dir)
    root = os.path.realpath(project_root)
    tus = callgraph.project_tus(build_dir, root, only)
    cache_dir = os.path.join(build_dir, "lint-cache")
    artifacts, _stats = callgraph.compile_all(tus, cache_dir, jobs, verbose)
    sources = project_sources(root)
    diags, checker = analyze(artifacts, root, sources, verbose)
    return diags, checker, len(tus)


def lint_fixture(path, project_root, verbose):
    path = os.path.realpath(path)
    directory = os.path.dirname(path)
    args = ["g++" if "CXX" not in os.environ else os.environ["CXX"],
            "-std=c++20", "-I",
            os.path.join(os.path.realpath(project_root), "src"), path]
    cache_dir = os.path.join(directory, ".lint-cache")
    os.makedirs(cache_dir, exist_ok=True)
    art = callgraph.compile_tu(args, directory, verbose=verbose,
                               cache_dir=cache_dir)
    # The fixture directory is the analysis root: only writes and lock
    # sites inside the fixture itself are considered.
    diags, checker = analyze({path: art}, directory, [path], verbose)
    return diags, checker, 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--build-dir", help="CMake build dir with "
                                        "compile_commands.json")
    ap.add_argument("--fixture", help="lint one standalone fixture file")
    ap.add_argument("--project-root",
                    default=os.path.realpath(
                        os.path.join(os.path.dirname(__file__),
                                     os.pardir, os.pardir)))
    ap.add_argument("--json", help="write diagnostics as JSON to this file")
    ap.add_argument("--jobs", type=int,
                    default=max(1, (os.cpu_count() or 1)))
    ap.add_argument("--only", action="append",
                    help="restrict to TUs whose path contains SUBSTR")
    ap.add_argument("-v", "--verbose", action="store_true")
    opts = ap.parse_args()

    if bool(opts.build_dir) == bool(opts.fixture):
        ap.error("exactly one of --build-dir / --fixture is required")

    if opts.fixture:
        diags, checker, ntus = lint_fixture(
            opts.fixture, opts.project_root, opts.verbose)
    else:
        diags, checker, ntus = lint_build(
            opts.build_dir, opts.project_root, opts.jobs, opts.verbose,
            opts.only)

    print_diagnostics(diags)
    if opts.json:
        with open(opts.json, "w") as f:
            json.dump({"diagnostics": diags,
                       "roots": sorted(
                           checker.graph[k].pretty for k in checker.roots),
                       "tus": ntus}, f, indent=1)
    if diags:
        print("ls-race-lint: %d parallel-safety violation(s) across %d "
              "parallel root(s) in %d TU(s)"
              % (len(diags), len(checker.roots), ntus), file=sys.stderr)
        return 1
    print("ls-race-lint: OK (%d parallel roots, %d TUs, %d indirect "
          "edges not traversed)" % (len(checker.roots), ntus,
                                    checker.indirect_edges))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Self-test for the lint passes over their fixture corpora.

Two suites share one protocol, selected with --suite:

  contract  ls_contract_lint.py over fixtures/{pass,fail}
  race      ls_race_lint.py     over fixtures/race/{pass,fail}

Every pass fixture must lint clean (exit 0, no diagnostics).
Every fail fixture must produce EXACTLY the diagnostics its
`// EXPECT(category)` comments declare: one diagnostic of that
category anchored at that line, no extras, no misses — so both false
negatives AND false positives (and wrong locations) fail the suite.

Usage: run_fixture_tests.py [--suite contract|race] [--project-root DIR]
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.realpath(__file__))

SUITES = {
    "contract": {
        "lint": os.path.join(HERE, "ls_contract_lint.py"),
        "fixtures": os.path.join(HERE, "fixtures"),
        "categories": ("alloc", "determinism", "lock"),
    },
    "race": {
        "lint": os.path.join(HERE, "ls_race_lint.py"),
        "fixtures": os.path.join(HERE, "fixtures", "race"),
        "categories": ("race", "lockorder", "parallel-root"),
    },
}


def run_lint(lint, fixture, project_root):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        out = tf.name
    try:
        proc = subprocess.run(
            [sys.executable, lint, "--fixture", fixture,
             "--project-root", project_root, "--json", out],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        with open(out) as f:
            diags = json.load(f)["diagnostics"]
    finally:
        os.unlink(out)
    return proc, diags


def expected_of(fixture, expect_re):
    expected = set()
    with open(fixture) as f:
        for lineno, line in enumerate(f, 1):
            m = expect_re.search(line)
            if m:
                expected.add((lineno, m.group(1)))
    return expected


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--suite", choices=sorted(SUITES), default="contract")
    ap.add_argument("--project-root",
                    default=os.path.realpath(
                        os.path.join(HERE, os.pardir, os.pardir)))
    opts = ap.parse_args()

    suite = SUITES[opts.suite]
    expect_re = re.compile(r"//\s*EXPECT\((%s)\)"
                           % "|".join(re.escape(c)
                                      for c in suite["categories"]))

    failures = []
    checked = 0

    for kind in ("pass", "fail"):
        d = os.path.join(suite["fixtures"], kind)
        files = sorted(f for f in os.listdir(d) if f.endswith(".cc"))
        if not files:
            failures.append("%s corpus is empty" % kind)
        for name in files:
            fixture = os.path.join(d, name)
            checked += 1
            proc, diags = run_lint(suite["lint"], fixture,
                                   opts.project_root)
            got = {(dg["line"], dg["category"]) for dg in diags}
            # Diagnostics must also point into the fixture itself.
            stray = [dg for dg in diags
                     if os.path.realpath(dg["file"]) != fixture]
            if stray:
                failures.append("%s: diagnostic outside fixture: %s"
                                % (name, stray[0]["loc"]))
            if kind == "pass":
                if proc.returncode != 0 or got:
                    failures.append(
                        "%s: expected clean, exit=%d, diagnostics=%s\n%s"
                        % (name, proc.returncode, sorted(got),
                           proc.stdout + proc.stderr))
            else:
                expected = expected_of(fixture, expect_re)
                if not expected:
                    failures.append("%s: fail fixture with no EXPECT "
                                    "comments" % name)
                if proc.returncode == 0:
                    failures.append("%s: expected nonzero exit" % name)
                if got != expected:
                    failures.append(
                        "%s: diagnostic mismatch\n  expected: %s\n"
                        "  got:      %s\n%s"
                        % (name, sorted(expected), sorted(got),
                           proc.stdout + proc.stderr))
                for dg in diags:
                    if dg["col"] <= 0:
                        failures.append("%s: diagnostic without a "
                                        "column: %s" % (name, dg["loc"]))

    if failures:
        for f in failures:
            print("FAIL: %s" % f, file=sys.stderr)
        print("%d fixture check(s) failed" % len(failures),
              file=sys.stderr)
        return 1
    print("%s lint fixtures OK (%d files)" % (opts.suite, checked))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Contract-enforcement static analysis for the LongSight hot paths.

Walks the compiler's own call graph from annotated roots (see
src/util/annotations.hh) and rejects, at analysis time, the classes of
calls that would break the repo's core guarantees:

  LS_HOT_PATH       -> no heap allocation reachable: operator new /
                       malloc, growing std containers, std::function
                       construction.
  LS_DETERMINISTIC  -> no nondeterminism reachable: rand()/time()/
                       chrono clocks, std::random_device,
                       unordered-container iteration order.
  LS_NO_LOCK        -> no blocking or IO reachable: mutex / condition
                       variable operations, stdio and iostream writes.

Mechanism
---------
There is no libclang in the toolchain image, so the checker leans on
the compiler itself: every TU is recompiled at -O0 with GCC's
-fcallgraph-info=su,da, which emits a VCG call graph per TU with exact
call-site locations (file:line:col) on every edge. Annotation macros
expand to calls to empty marker functions; a function with an edge to
a marker is an annotated root (or an exempt node). The per-TU graphs
are merged on mangled symbol names, so cross-TU reachability (e.g.
decode_pipeline.cc -> kernels.cc) is resolved exactly like the linker
would. Indirect calls (function pointers, std::function dispatch) are
opaque placeholders and are not traversed; hot lambda bodies dispatched
through the thread pool are therefore annotated directly (the
"parallelFor bodies" roots).

The compile/cache/graph-merge machinery is shared with the
parallel-safety race lint (ls_race_lint.py) and lives in callgraph.py.

Violations are reported at the deepest project-source call site on the
offending path, which is where a waiver comment can be placed:

    // LS_LINT_ALLOW(alloc): capacity persists across decode steps

on the call's own line or the line directly above suppresses that one
edge for that one category (alloc | determinism | lock).

Compiles are cached under <build>/lint-cache keyed on a hash of the
preprocessed TU, so incremental runs only recompile what changed; the
cache is pruned of entries for deleted or changed TUs after every
build-tree run, and -v reports hit/miss counts.

Usage:
  ls_contract_lint.py --build-dir BUILD [--json OUT] [--jobs N] [-v]
  ls_contract_lint.py --fixture FILE.cc [--project-root DIR] [--json OUT]
"""

import argparse
import json
import os
import re
import sys

import callgraph
from callgraph import BUILTIN_PRUNE_MANGLED, EXEMPT_MARKER

# --------------------------------------------------------------------------
# Contract definitions
# --------------------------------------------------------------------------

# Marker functions are identified by mangled name (pretty names carry
# return types and vary with the pretty-printer; mangles do not).
MARKERS = {
    "_ZN9longsight8contract18ls_hot_path_markerEv": "alloc",
    "_ZN9longsight8contract23ls_deterministic_markerEv": "determinism",
    "_ZN9longsight8contract17ls_no_lock_markerEv": "lock",
}

# GCC's call-graph labels carry the return type before the function
# name ("void std::mutex::lock()"); sink patterns therefore match at a
# token boundary anywhere in the label, not only at the start.
BOUND = r"(?:^|[\s*&(,])"

# Allocating operator new by mangled name. _Znwm/_Znam (+ _Znwj/_Znaj
# on 32-bit, + St11align_val_t aligned forms) allocate; every other
# overload (placement, nothrow placement) takes extra arguments and is
# excluded by the exact/anchored match.
MANGLED_ALLOC = re.compile(r"^_Zn[wa][jm](St11align_val_t)?$")

C_ALLOC = {
    "malloc", "calloc", "realloc", "aligned_alloc", "posix_memalign",
    "valloc", "strdup", "strndup",
}

# Growth entry points on allocating std containers. Matching the entry
# point (rather than only the eventual operator new deep inside
# libstdc++) keeps the diagnostic at a call site in project code where
# it can be fixed or waived.
STD_CONTAINER = (
    r"std::(__cxx11::)?(vector|basic_string|deque|list|forward_list|"
    r"map|set|multimap|multiset|unordered_map|unordered_set|"
    r"unordered_multimap|unordered_multiset)<"
)
ALLOC_ENTRY = re.compile(
    BOUND + STD_CONTAINER + r".*>::("
    r"push_back|emplace_back|push_front|emplace_front|resize|reserve|"
    # "[<(" not "(": allocating members taking iterator pairs (insert,
    # assign, append) are member TEMPLATES and demangle with their
    # template arguments, e.g. vector<float>::insert<float const*, void>.
    r"insert|emplace|emplace_hint|assign|append|operator\+=)[<(]")
ALLOC_SUBSCRIPT = re.compile(
    BOUND + r"std::(unordered_)?map<.*>::operator\[\]\(")
# Container constructors taking a size, range, or initializer list
# allocate eagerly. The lookahead exempts the non-allocating forms:
# default, allocator-only (which libstdc++'s move-assign path
# instantiates internally), and the move constructor (sole argument
# "std::...&&"). Constructor templates (range ctors) demangle with
# their template arguments, hence "[<(]".
ALLOC_CTOR = re.compile(
    BOUND + STD_CONTAINER + r".*>::("
    r"vector|deque|list|forward_list|map|set|multimap|multiset|"
    r"unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset)[<(]"
    r"(?!\)|std::allocator<.*> const&\)|std::.*&&\))")
# Constructor sinks match "::name<(" because converting constructors
# (std::function from a lambda, basic_string from iterators) are
# constructor templates and demangle with their template arguments.
ALLOC_MISC = re.compile(
    BOUND + r"(std::function<.*>::function[<(]|"
    r"std::(__cxx11::)?basic_string<.*>::basic_string[<(]|"
    r"std::allocator<.*>::allocate\(|"
    r"std::make_unique<|"
    r"std::make_shared<|"
    r"__cxa_allocate_exception$)")

NONDET_C = {
    "rand", "rand_r", "random", "srand", "srandom",
    "lrand48", "mrand48", "drand48", "erand48", "nrand48", "jrand48",
    "time", "gettimeofday", "clock_gettime", "clock", "timespec_get",
    "getrandom", "getentropy",
}
NONDET_CXX = re.compile(
    BOUND + r"(std::chrono::(_V2::)?(system_clock|steady_clock|"
    r"high_resolution_clock)::now\(|"
    r"std::random_device::)")
# Iterating an unordered container makes results depend on hash-bucket
# layout (libstdc++ implementation detail), which is exactly the class
# of thread-count/platform-dependent behaviour LS_DETERMINISTIC bans.
NONDET_UNORDERED = re.compile(
    BOUND + r"std::unordered_(map|set|multimap|multiset)<.*>::"
    r"(begin|cbegin)\(")

LOCK_C = {
    "pthread_mutex_lock", "pthread_mutex_trylock", "pthread_mutex_timedlock",
    "pthread_rwlock_rdlock", "pthread_rwlock_wrlock",
    "pthread_rwlock_tryrdlock", "pthread_rwlock_trywrlock",
    "pthread_cond_wait", "pthread_cond_timedwait",
    "pthread_spin_lock", "sem_wait", "sem_timedwait", "flock", "lockf",
    "sleep", "usleep", "nanosleep",
}
LOCK_CXX = re.compile(
    BOUND + r"(std::(mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex)::(lock|try_lock|lock_shared)|"
    r"std::lock_guard<.*>::lock_guard\(|"
    r"std::unique_lock<.*>::unique_lock\(|"
    r"std::scoped_lock<.*>::scoped_lock\(|"
    r"std::shared_lock<.*>::shared_lock\(|"
    r"std::condition_variable(_any)?::wait|"
    r"std::this_thread::sleep_|"
    r"longsight::Mutex::lock\(|"
    r"longsight::MutexLock::MutexLock\(|"
    r"longsight::CondVar::wait|"
    r"longsight::SpinLock::lock\(|"
    r"longsight::SpinGuard::SpinGuard\()")
IO_C = {
    "printf", "fprintf", "vfprintf", "sprintf", "snprintf",
    "puts", "fputs", "putc", "fputc", "putchar", "fwrite", "fread",
    "fgets", "fgetc", "getchar", "scanf", "fscanf",
    "write", "read", "open", "openat", "fopen", "fflush",
}
IO_CXX = re.compile(
    BOUND + r"(std::basic_ostream<.*>::(operator<<|write|put|flush)|"
    r"std::basic_istream<.*>::|"
    r"std::(__cxx11::)?basic_[io]?fstream<|"
    r"std::basic_filebuf<|"
    r"std::operator<<\s*[<(])")

CATEGORY_WHY = {
    "alloc": "heap allocation",
    "determinism": "nondeterminism",
    "lock": "blocking/IO",
}

CATEGORIES = ("alloc", "determinism", "lock")


def base_name(pretty):
    """Unqualified-or-qualified name token before the parameter list.

    "long time(long*)" -> "time"; "void std::mutex::lock()" ->
    "std::mutex::lock". Only used for exact C-identifier lookups, so
    qualified results simply never match those sets.
    """
    pre = pretty.split("(", 1)[0].strip()
    if not pre:
        return pretty
    return pre.split()[-1].lstrip("*&")


def sink_category(mangled, pretty):
    """Categories (possibly several) a callee violates when reached."""
    cats = []
    names = {base_name(pretty)}
    if not mangled.startswith("_Z"):
        # Plain C symbols sometimes come with truncated labels
        # (variadic declarations render as ")"); the symbol itself is
        # the reliable name.
        names.add(mangled)
    if (MANGLED_ALLOC.match(mangled) or names & C_ALLOC
            or ALLOC_ENTRY.search(pretty) or ALLOC_SUBSCRIPT.search(pretty)
            or ALLOC_CTOR.search(pretty) or ALLOC_MISC.search(pretty)):
        cats.append("alloc")
    if (names & NONDET_C or NONDET_CXX.search(pretty)
            or NONDET_UNORDERED.search(pretty)):
        cats.append("determinism")
    if (names & LOCK_C or LOCK_CXX.search(pretty)
            or names & IO_C or IO_CXX.search(pretty)):
        cats.append("lock")
    return cats


# --------------------------------------------------------------------------
# Contract walk
# --------------------------------------------------------------------------

class Checker:
    def __init__(self, graph, project_root, verbose=False):
        self.graph = graph
        self.src = callgraph.SourceIndex(project_root, CATEGORIES)
        self.verbose = verbose
        self.diagnostics = []
        self.indirect_edges = 0
        # Classify marker / exempt nodes once.
        self.marker_cat = {}
        self.exempt_keys = set()
        for key, node in graph.items():
            cat = MARKERS.get(node.mangled)
            if cat:
                self.marker_cat[key] = cat
            elif node.mangled == EXEMPT_MARKER:
                self.exempt_keys.add(key)
        # Roots and exempt callers.
        self.roots = {}      # key -> set of categories
        self.exempt = set()  # keys whose subgraph is never traversed
        for key, node in graph.items():
            for dst, _ in node.edges:
                cat = self.marker_cat.get(dst)
                if cat:
                    self.roots.setdefault(key, set()).add(cat)
                if dst in self.exempt_keys:
                    self.exempt.add(key)

    # -- traversal --------------------------------------------------------

    def check_root(self, root_key, category, directory):
        """BFS from one root for one contract category."""
        graph = self.graph
        seen = {root_key}
        # queue entries: (node key, path of (pretty, callsite) hops)
        queue = [(root_key, ())]
        while queue:
            key, path = queue.pop(0)
            node = graph.get(key)
            if node is None:
                continue
            for dst, callsite in node.edges:
                if dst in self.marker_cat or dst in self.exempt_keys:
                    continue
                target = graph.get(dst)
                if target is None:
                    continue
                if dst == "__indirect_call":
                    self.indirect_edges += 1
                    continue
                if target.mangled.startswith(BUILTIN_PRUNE_MANGLED):
                    continue
                cats = sink_category(target.mangled, target.pretty)
                if category in cats:
                    if not self.src.waived(callsite, directory, category):
                        self.report(root_key, category, key, dst,
                                    callsite, path, directory)
                    continue  # never descend into a sink
                if dst in self.exempt or dst in seen:
                    continue
                seen.add(dst)
                queue.append(
                    (dst, path + ((target.pretty, callsite),)))

    def report(self, root_key, category, caller_key, sink_key,
               callsite, path, directory):
        root = self.graph[root_key]
        caller = self.graph[caller_key]
        sink = self.graph[sink_key]
        loc = callsite or caller.loc or "<unknown>"
        chain = [root.pretty] + [p for p, _ in path] + [sink.pretty]
        self.diagnostics.append({
            "file": loc.rsplit(":", 2)[0] if loc.count(":") >= 2 else loc,
            "line": int(loc.rsplit(":", 2)[1]) if loc.count(":") >= 2 else 0,
            "col": int(loc.rsplit(":", 2)[2]) if loc.count(":") >= 2 else 0,
            "loc": loc,
            "category": category,
            "root": root.pretty,
            "caller": caller.pretty,
            "sink": sink.pretty,
            "path": chain,
            "directory": directory,
        })

    def run(self, directory):
        for root_key, cats in sorted(self.roots.items()):
            for cat in sorted(cats):
                self.check_root(root_key, cat, directory)
        # One diagnostic per (site, category, sink): several roots often
        # funnel through the same call.
        uniq = {}
        for d in self.diagnostics:
            uniq.setdefault((d["loc"], d["category"], d["sink"]), d)
        self.diagnostics = sorted(
            uniq.values(),
            key=lambda d: (d["file"], d["line"], d["col"], d["category"]))
        return self.diagnostics


def print_diagnostics(diags, stream=sys.stdout):
    for d in diags:
        print("%s: error: [ls-lint:%s] %s reachable from %s root '%s'"
              % (d["loc"], d["category"], CATEGORY_WHY[d["category"]],
                 "LS_HOT_PATH" if d["category"] == "alloc"
                 else "LS_DETERMINISTIC" if d["category"] == "determinism"
                 else "LS_NO_LOCK", d["root"]), file=stream)
        print("    sink: %s" % d["sink"], file=stream)
        chain = d["path"]
        if len(chain) > 2:
            print("    via:  %s" % " -> ".join(chain[1:-1]), file=stream)


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------

def lint_build(build_dir, project_root, jobs, verbose, only=None):
    # Compiles run from each entry's own directory; every path this
    # function hands them must therefore be absolute.
    build_dir = os.path.realpath(build_dir)
    root = os.path.realpath(project_root)
    tus = callgraph.project_tus(build_dir, root, only)
    cache_dir = os.path.join(build_dir, "lint-cache")
    artifacts, _stats = callgraph.compile_all(tus, cache_dir, jobs, verbose)

    graph = {}
    for path, art in artifacts.items():
        callgraph.parse_ci(art["ci"], os.path.basename(path), graph)

    callgraph.finalize_graph(graph)
    checker = Checker(graph, root, verbose)
    if verbose:
        names = sorted(checker.graph[k].pretty for k in checker.roots)
        print("lint: %d TUs, %d nodes, %d annotated roots"
              % (len(tus), len(graph), len(names)), file=sys.stderr)
        for n in names:
            print("  root: %s" % n, file=sys.stderr)
    diags = checker.run(root)
    return diags, checker, len(tus)


def lint_fixture(path, project_root, verbose):
    path = os.path.realpath(path)
    directory = os.path.dirname(path)
    args = ["g++" if "CXX" not in os.environ else os.environ["CXX"],
            "-std=c++20", "-I", os.path.join(project_root, "src"), path]
    cache_dir = os.path.join(directory, ".lint-cache")
    os.makedirs(cache_dir, exist_ok=True)
    graph = {}
    art = callgraph.compile_tu(args, directory, cache_dir, verbose)
    callgraph.parse_ci(art["ci"], os.path.basename(path), graph)
    callgraph.finalize_graph(graph)
    # Fixtures may reference project sources; their own graph is enough
    # because fixtures are single self-contained TUs.
    checker = Checker(graph, os.path.dirname(path), verbose)
    return checker.run(directory), checker, 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--build-dir", help="CMake build dir with "
                                        "compile_commands.json")
    ap.add_argument("--fixture", help="lint one standalone fixture file")
    ap.add_argument("--project-root",
                    default=os.path.realpath(
                        os.path.join(os.path.dirname(__file__),
                                     os.pardir, os.pardir)))
    ap.add_argument("--json", help="write diagnostics as JSON to this file")
    ap.add_argument("--jobs", type=int,
                    default=max(1, (os.cpu_count() or 1)))
    ap.add_argument("--only", action="append",
                    help="restrict to TUs whose path contains SUBSTR")
    ap.add_argument("-v", "--verbose", action="store_true")
    opts = ap.parse_args()

    if bool(opts.build_dir) == bool(opts.fixture):
        ap.error("exactly one of --build-dir / --fixture is required")

    if opts.fixture:
        diags, checker, ntus = lint_fixture(
            opts.fixture, opts.project_root, opts.verbose)
    else:
        diags, checker, ntus = lint_build(
            opts.build_dir, opts.project_root, opts.jobs, opts.verbose,
            opts.only)

    print_diagnostics(diags)
    if opts.json:
        with open(opts.json, "w") as f:
            json.dump({"diagnostics": diags,
                       "roots": sorted(
                           checker.graph[k].pretty for k in checker.roots),
                       "tus": ntus}, f, indent=1)
    if diags:
        print("ls-lint: %d contract violation(s) across %d annotated "
              "root(s) in %d TU(s)" % (len(diags), len(checker.roots),
                                       ntus), file=sys.stderr)
        return 1
    print("ls-lint: OK (%d annotated roots, %d TUs, %d indirect edges "
          "not traversed)" % (len(checker.roots), ntus,
                              checker.indirect_edges))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Merge per-pass lint reports into one lint-report.json artifact.

Each lint pass (contract lint, race lint) writes its own JSON with a
`diagnostics` array; clang's -Wthread-safety output arrives as plain
compiler text. CI uploads ONE artifact per lint job, so this script
folds them together:

  merge_reports.py --out lint-report.json \\
      --pass contract=contract-lint.json \\
      --pass race=race-lint.json \\
      --text thread-safety=tsa-warnings.txt

Output shape:
  {
    "passes": {name: {"diagnostics": N, ...pass-level keys...}},
    "diagnostics": [ {..., "pass": name}, ... ],
    "attachments": {name: "<raw text>"},
    "total": N
  }

Missing --pass files are an error (the pass did not run — that is a
pipeline bug, not a clean result); missing --text files merge as an
empty attachment since the TSA capture is best-effort on non-clang
rows. Exit status is 0 even when diagnostics are present: each pass
already gated the job with its own exit code, the merged report is
the human-facing artifact.
"""

import argparse
import json
import sys


def parse_kv(arg, flag):
    if "=" not in arg:
        raise SystemExit("%s expects NAME=PATH, got %r" % (flag, arg))
    return arg.split("=", 1)


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--out", required=True)
    ap.add_argument("--pass", dest="passes", action="append", default=[],
                    metavar="NAME=REPORT.json")
    ap.add_argument("--text", dest="texts", action="append", default=[],
                    metavar="NAME=FILE.txt")
    opts = ap.parse_args()

    merged = {"passes": {}, "diagnostics": [], "attachments": {}}
    for arg in opts.passes:
        name, path = parse_kv(arg, "--pass")
        try:
            with open(path) as f:
                report = json.load(f)
        except (OSError, ValueError) as exc:
            print("merge-reports: cannot read pass %r (%s): %s"
                  % (name, path, exc), file=sys.stderr)
            return 1
        diags = report.pop("diagnostics", [])
        for d in diags:
            d = dict(d)
            d["pass"] = name
            merged["diagnostics"].append(d)
        summary = {"diagnostics": len(diags)}
        summary.update(report)
        merged["passes"][name] = summary

    for arg in opts.texts:
        name, path = parse_kv(arg, "--text")
        try:
            with open(path) as f:
                merged["attachments"][name] = f.read()
        except OSError:
            merged["attachments"][name] = ""

    merged["total"] = len(merged["diagnostics"])
    with open(opts.out, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print("merge-reports: %d pass(es), %d diagnostic(s) -> %s"
          % (len(merged["passes"]), merged["total"], opts.out))
    return 0


if __name__ == "__main__":
    sys.exit(main())

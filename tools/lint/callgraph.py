#!/usr/bin/env python3
"""Shared compiler-call-graph machinery for the tools/lint analyses.

Both static-analysis passes — the hot-path contract lint
(ls_contract_lint.py) and the parallel-safety race lint
(ls_race_lint.py) — lean on the compiler itself instead of a parser
library: every TU is recompiled at -O0 with

  -fcallgraph-info=su,da     one VCG call graph per TU, exact call-site
                             locations (file:line:col) on every edge,
  -fdump-tree-gimple-lineno  the GIMPLE statement stream per TU, which
                             is where write-sets and lock acquisitions
                             are read from.

This module owns everything the two passes share:

  * compile_tu()        one cached compile producing BOTH artifacts,
                        so running the second lint after the first is a
                        pure cache hit;
  * the lint cache      content-addressed on a hash of the preprocessed
                        TU + the compile command, with a manifest
                        (manifest.json) mapping each TU to its live
                        key.  prune_cache() drops entries whose TU no
                        longer exists or whose preprocess-hash went
                        stale, so the cache no longer grows without
                        bound across rebuilds;
  * VCG parsing         parse_ci() merges per-TU graphs on mangled
                        symbol names (cross-TU reachability resolves
                        exactly like the linker would), finalize_graph()
                        demangles labels through c++filt and redirects
                        C1/D1 ctor-dtor aliases to their defined C2/D2
                        bodies;
  * project TU listing  from compile_commands.json.

The contract lint reads only the .ci side; the race lint reads both.
"""

import concurrent.futures
import hashlib
import json
import os
import re
import shlex
import subprocess
import sys

# Bump when the compile flags or artifact set change: old cache entries
# stop matching and the next prune_cache() sweeps them out.
CACHE_VERSION = "v2-ci+gimple"

MANIFEST_NAME = "manifest.json"

# Annotation-ABI marker functions shared by both lints (see
# src/util/annotations.hh). Markers are identified by mangled name:
# pretty labels carry return types and vary with the pretty-printer,
# mangles do not.
EXEMPT_MARKER = "_ZN9longsight8contract25ls_contract_exempt_markerEv"
PARALLEL_BODY_MARKER = "_ZN9longsight8contract23ls_parallel_body_markerEv"

# [[noreturn]] failure handlers: reachable from everywhere via
# LS_ASSERT, cold by definition (the process is about to die), so
# whatever they do is never steady-state behaviour. Matched by mangled
# prefix: GCC truncates the pretty label of long template
# instantiations, so the label cannot be relied on here.
BUILTIN_PRUNE_MANGLED = ("_ZN9longsight5panicI", "_ZN9longsight5fatalI")


# --------------------------------------------------------------------------
# VCG call-graph parsing
# --------------------------------------------------------------------------

NODE_RE = re.compile(r'^node: \{ title: "((?:[^"\\]|\\.)*)" '
                     r'label: "((?:[^"\\]|\\.)*)"')
EDGE_RE = re.compile(r'^edge: \{ sourcename: "((?:[^"\\]|\\.)*)" '
                     r'targetname: "((?:[^"\\]|\\.)*)"'
                     r'(?: label: "((?:[^"\\]|\\.)*)")?')

SYMBOL_RE = re.compile(r"^[A-Za-z_$.][A-Za-z0-9_$.]*$")


class Node:
    __slots__ = ("key", "mangled", "pretty", "loc", "edges", "defined")

    def __init__(self, key, mangled, pretty, loc, defined):
        self.key = key
        self.mangled = mangled
        self.pretty = pretty
        self.loc = loc          # "file:line" of the definition, or ""
        self.edges = []         # list of (target_key, callsite "f:l:c")
        self.defined = defined


def split_title(title, tu_tag):
    """Return (canonical key, mangled) for a VCG node title.

    Titles are either a plain symbol (external / global) or
    "<aux>:<symbol>" for symbols local to the TU. TU-local statics
    (_ZL..., or unmangled C names behind the aux prefix) must stay
    TU-scoped to avoid cross-TU collisions; everything else merges on
    the bare mangled name so cross-TU calls resolve.
    """
    mangled = title
    local = False
    if ":" in title:
        head, tail = title.rsplit(":", 1)
        if SYMBOL_RE.match(tail):
            mangled = tail
            local = True
    if local and (mangled.startswith("_ZL") or mangled.startswith("_ZZ")
                  or not mangled.startswith("_Z")):
        return (tu_tag + ":" + mangled, mangled)
    return (mangled, mangled)


def unescape(s):
    return s.replace('\\"', '"').replace("\\\\", "\\")


def parse_ci(path, tu_tag, graph):
    """Merge one .ci file into `graph` (dict key -> Node)."""
    with open(path, "r", errors="replace") as f:
        for line in f:
            m = NODE_RE.match(line)
            if m:
                key, mangled = split_title(m.group(1), tu_tag)
                label = unescape(m.group(2)).split("\\n")
                pretty = label[0]
                loc = label[1] if len(label) > 1 else ""
                node = graph.get(key)
                if node is None:
                    graph[key] = Node(key, mangled, pretty, loc, True)
                elif not node.defined:
                    node.pretty = pretty
                    node.loc = loc
                    node.defined = True
                continue
            m = EDGE_RE.match(line)
            if m:
                src, _ = split_title(m.group(1), tu_tag)
                dst, dmangled = split_title(m.group(2), tu_tag)
                callsite = unescape(m.group(3) or "")
                if src not in graph:
                    graph[src] = Node(src, src, src, "", False)
                if dst not in graph:
                    graph[dst] = Node(dst, dmangled, dmangled, "", False)
                graph[src].edges.append((dst, callsite))


def demangle_graph(graph):
    """Replace label prettys with c++filt demanglings where available.

    GCC's .ci labels truncate long template signatures (a variadic
    instantiation can render as ") [with Args = ...]"), and nodes that
    are only referenced, never defined, carry no label at all. The
    mangled name is always intact, so one batch c++filt run recovers a
    canonical signature for every C++ node; sink patterns then match a
    single, stable format.
    """
    nodes = [n for n in graph.values() if n.mangled.startswith("_Z")]
    if not nodes:
        return
    try:
        proc = subprocess.run(
            ["c++filt"], input="\n".join(n.mangled for n in nodes) + "\n",
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    except OSError:
        return  # no binutils: fall back to the raw labels
    if proc.returncode != 0:
        return
    out = proc.stdout.splitlines()
    if len(out) != len(nodes):
        return
    for node, dem in zip(nodes, out):
        if dem and dem != node.mangled:
            node.pretty = dem


def resolve_ctor_aliases(graph):
    """Redirect complete-object ctor/dtor references to the defined body.

    GCC emits one definition for a constructor (the base-object C2
    symbol) and aliases the complete-object C1 symbol to it; call
    edges, however, target C1. Without redirection the walk dead-ends
    in an undefined node and never sees the constructor body. Only
    verified aliases are installed: the candidate must exist, be
    defined, and demangle to the same signature.
    """
    alias = {}
    for key, node in graph.items():
        if node.defined:
            continue
        for a, b in (("C1", "C2"), ("D1", "D2"), ("D0", "D2")):
            if a not in key:
                continue
            cand = key.replace(a, b, 1)
            target = graph.get(cand)
            if (target is not None and target.defined
                    and target.pretty == node.pretty):
                alias[key] = cand
                break
    if not alias:
        return
    for node in graph.values():
        node.edges = [(alias.get(dst, dst), cs) for dst, cs in node.edges]


def finalize_graph(graph):
    demangle_graph(graph)
    resolve_ctor_aliases(graph)


# --------------------------------------------------------------------------
# Waivers and project-path classification
# --------------------------------------------------------------------------

class SourceIndex:
    """Caches source lines; answers waiver and in-project queries.

    A finding at file:line:col is waived by

        // LS_LINT_ALLOW(<category>): reason

    on the offending line or the line directly above. Each lint
    instantiates the index with its own category vocabulary, so a
    waiver for one category never silences another.
    """

    def __init__(self, project_root, categories):
        self.root = os.path.realpath(project_root)
        self.waiver_re = re.compile(
            r"//\s*LS_LINT_ALLOW\((%s)\)" % "|".join(categories))
        self.file_lines = {}

    def lines_of(self, path):
        if path not in self.file_lines:
            try:
                with open(path, "r", errors="replace") as f:
                    self.file_lines[path] = f.readlines()
            except OSError:
                self.file_lines[path] = []
        return self.file_lines[path]

    def resolve(self, callsite, directory):
        """(realpath, line) from a "file:line:col" location, or None."""
        parts = callsite.split(":")
        if len(parts) < 2:
            return None
        file_part = ":".join(parts[:-2]) if len(parts) >= 3 else parts[0]
        try:
            lineno = int(parts[-2])
        except ValueError:
            return None
        path = file_part
        if not os.path.isabs(path):
            path = os.path.join(directory, path)
        return os.path.realpath(path), lineno

    def waived(self, callsite, directory, category):
        loc = self.resolve(callsite, directory)
        if loc is None:
            return False
        path, lineno = loc
        if not path.startswith(self.root):
            return False
        lines = self.lines_of(path)
        for cand in (lineno, lineno - 1):
            if 1 <= cand <= len(lines):
                m = self.waiver_re.search(lines[cand - 1])
                if m and m.group(1) == category:
                    return True
        return False

    def in_project(self, callsite, directory):
        file_part = callsite.rsplit(":", 2)[0] \
            if callsite.count(":") >= 2 else callsite
        if not file_part:
            return False
        path = file_part
        if not os.path.isabs(path):
            path = os.path.join(directory, path)
        return os.path.realpath(path).startswith(self.root)


# --------------------------------------------------------------------------
# Compilation of TUs to .ci call graphs + .gimple statement dumps
# --------------------------------------------------------------------------

STRIP_ARGS = {"-c", "-S", "-E"}
STRIP_NEXT = {"-o", "-MF", "-MT", "-MQ"}


def base_command(entry):
    """Compiler argv from a compile_commands entry, minus output args."""
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = shlex.split(entry["command"])
    out = []
    skip = False
    for a in args:
        if skip:
            skip = False
            continue
        if a in STRIP_NEXT:
            skip = True
            continue
        if (a in STRIP_ARGS or a.startswith("-fcallgraph-info")
                or a.startswith("-fdump-tree")):
            continue
        out.append(a)
    return out


class CacheStats:
    """Hit/miss accounting for one lint run over the compile cache."""

    def __init__(self):
        self.hits = 0
        self.misses = 0

    def __str__(self):
        return "%d hit(s), %d miss(es)" % (self.hits, self.misses)


def compile_tu(args, directory, cache_dir, verbose, stats=None):
    """Compile one TU for analysis; returns {"ci": path, "gimple": path}.

    One compile produces both artifacts, cached on a hash of the
    preprocessed TU (so edits to any transitively included header
    invalidate it) plus the command, so whichever lint runs second
    reuses the first one's work.
    """
    # The analyses need every call edge and statement to survive: -O0
    # disables inlining, -fno-inline guards against flags in the
    # original command re-enabling it.
    lint_args = args + ["-O0", "-fno-inline", "-w"]
    pre = subprocess.run(lint_args + ["-E", "-o", "-"],
                         cwd=directory, stdout=subprocess.PIPE,
                         stderr=subprocess.PIPE)
    if pre.returncode != 0:
        raise RuntimeError("preprocess failed: %s\n%s" %
                           (" ".join(lint_args),
                            pre.stderr.decode(errors="replace")))
    h = hashlib.sha256()
    h.update(CACHE_VERSION.encode())
    h.update(" ".join(lint_args).encode())
    h.update(pre.stdout)
    key = h.hexdigest()[:24]
    ci = os.path.join(cache_dir, key + ".ci")
    gimple = os.path.join(cache_dir, key + ".gimple")
    if os.path.exists(ci) and os.path.exists(gimple):
        if stats is not None:
            stats.hits += 1
        return {"key": key, "ci": ci, "gimple": gimple}
    asm = os.path.join(cache_dir, key + ".s")
    cc = subprocess.run(lint_args +
                        ["-fcallgraph-info=su,da",
                         "-fdump-tree-gimple-lineno=" + gimple,
                         "-S", "-o", asm],
                        cwd=directory, stdout=subprocess.PIPE,
                        stderr=subprocess.PIPE)
    if cc.returncode != 0:
        raise RuntimeError("lint compile failed: %s\n%s" %
                           (" ".join(lint_args),
                            cc.stderr.decode(errors="replace")))
    produced = os.path.splitext(asm)[0] + ".ci"
    if not os.path.exists(produced):
        raise RuntimeError("no .ci produced for " + " ".join(lint_args))
    if not os.path.exists(gimple):
        raise RuntimeError("no GIMPLE dump produced for " +
                           " ".join(lint_args))
    try:
        os.remove(asm)
    except OSError:
        pass
    if stats is not None:
        stats.misses += 1
    if verbose:
        print("  compiled %s" % args[-1], file=sys.stderr)
    return {"key": key, "ci": ci, "gimple": gimple}


def load_manifest(cache_dir):
    path = os.path.join(cache_dir, MANIFEST_NAME)
    try:
        with open(path) as f:
            data = json.load(f)
        if isinstance(data, dict):
            return data
    except (OSError, ValueError):
        pass
    return {}


def prune_cache(cache_dir, live_keys, tu_keys, verbose=False):
    """Garbage-collect the lint cache after a successful run.

    `tu_keys` maps each TU path compiled this run to its live cache
    key; entries for TUs that no longer exist on disk are dropped from
    the manifest, and any cache artifact whose key is not live for some
    existing TU (i.e. its preprocess-hash went stale, or its TU was
    deleted) is removed. Returns the number of files deleted.
    """
    manifest = load_manifest(cache_dir)
    manifest.update(tu_keys)
    manifest = {tu: key for tu, key in manifest.items()
                if os.path.exists(tu)}
    keep = set(live_keys) | set(manifest.values())
    removed = 0
    try:
        entries = os.listdir(cache_dir)
    except OSError:
        entries = []
    for name in entries:
        stem, ext = os.path.splitext(name)
        if ext not in (".ci", ".gimple", ".s"):
            continue
        if stem in keep:
            continue
        try:
            os.remove(os.path.join(cache_dir, name))
            removed += 1
        except OSError:
            pass
    try:
        with open(os.path.join(cache_dir, MANIFEST_NAME), "w") as f:
            json.dump(manifest, f, indent=1, sort_keys=True)
    except OSError:
        pass
    if verbose and removed:
        print("lint-cache: pruned %d stale artifact(s)" % removed,
              file=sys.stderr)
    return removed


def project_tus(build_dir, project_root, only=None):
    """(argv, directory, source-path) for every src/ TU in the build."""
    build_dir = os.path.realpath(build_dir)
    ccj = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(ccj):
        raise SystemExit("error: %s not found (configure with "
                         "CMAKE_EXPORT_COMPILE_COMMANDS=ON)" % ccj)
    with open(ccj) as f:
        entries = json.load(f)
    root = os.path.realpath(project_root)
    src_root = os.path.join(root, "src") + os.sep
    tus = []
    for e in entries:
        path = os.path.realpath(os.path.join(e["directory"], e["file"]))
        if not path.startswith(src_root) or not path.endswith(".cc"):
            continue
        if only and not any(sub in path for sub in only):
            continue
        tus.append((base_command(e), e["directory"], path))
    if not tus:
        raise SystemExit("error: no src/ TUs in compile_commands.json")
    return tus


def compile_all(tus, cache_dir, jobs, verbose):
    """Compile every TU concurrently; returns ({path: artifacts}, stats).

    Prunes stale cache entries afterwards, so the cache holds exactly
    one artifact pair per live TU.
    """
    os.makedirs(cache_dir, exist_ok=True)
    stats = CacheStats()
    results = {}
    errors = []

    def one(tu):
        args, directory, path = tu
        return path, compile_tu(args, directory, cache_dir, verbose, stats)

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as ex:
        for fut in concurrent.futures.as_completed(
                [ex.submit(one, tu) for tu in tus]):
            try:
                path, art = fut.result()
            except RuntimeError as err:
                errors.append(str(err))
                continue
            results[path] = art
    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        raise SystemExit("error: %d TU(s) failed to compile for lint"
                         % len(errors))
    prune_cache(cache_dir,
                [a["key"] for a in results.values()],
                {path: a["key"] for path, a in results.items()},
                verbose)
    if verbose:
        print("lint-cache: %s" % stats, file=sys.stderr)
    return results, stats

// LS_ASSERT on a hot path: the failure branch formats a message and
// aborts, but panic() is a [[noreturn]] failure handler the checker
// prunes as cold by construction. Must produce zero diagnostics.
#include <cstddef>

#include "util/annotations.hh"
#include "util/logging.hh"

int
hotChecked(const int *v, size_t n)
{
    LS_HOT_PATH();
    LS_NO_LOCK();
    LS_ASSERT(v != nullptr, "null input of length ", n);
    int s = 0;
    for (size_t i = 0; i < n; ++i)
        s += v[i];
    return s;
}

// Exempt cold path: the grow() slow path allocates, but it is marked
// LS_CONTRACT_EXEMPT (warmup-only by design), so traversal from the
// hot root stops at its boundary. Must produce zero diagnostics.
#include <cstddef>
#include <cstdint>

#include "util/annotations.hh"

namespace fixture {

struct Arena
{
    unsigned char *base = nullptr;
    size_t size = 0;
    size_t used = 0;
};

void
grow(Arena &a, size_t need)
{
    // Cold warmup path: one-time growth, never steady-state.
    LS_CONTRACT_EXEMPT();
    unsigned char *bigger = new unsigned char[a.size + need];
    delete[] a.base;
    a.base = bigger;
    a.size += need;
}

} // namespace fixture

void *
hotAlloc(fixture::Arena &a, size_t bytes)
{
    LS_HOT_PATH();
    if (a.used + bytes > a.size)
        fixture::grow(a, bytes);
    void *p = a.base + a.used;
    a.used += bytes;
    return p;
}

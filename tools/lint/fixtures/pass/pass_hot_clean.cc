// Clean hot path: arithmetic, caller-storage writes, transitive calls
// into equally clean helpers. Must produce zero diagnostics.
#include <cstddef>
#include <cstdint>

#include "util/annotations.hh"

namespace fixture {

int
accumulate(const int *v, size_t n)
{
    int s = 0;
    for (size_t i = 0; i < n; ++i)
        s += v[i];
    return s;
}

void
scale(int *v, size_t n, int k)
{
    for (size_t i = 0; i < n; ++i)
        v[i] *= k;
}

} // namespace fixture

int
hotKernel(int *v, size_t n)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    fixture::scale(v, n, 3);
    return fixture::accumulate(v, n);
}

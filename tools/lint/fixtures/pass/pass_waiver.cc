// Waived amortized growth: the push_back below allocates only until
// the vector reaches its steady capacity, which the runtime allocation
// regression gate verifies. The LS_LINT_ALLOW comments suppress the
// two growth entry points; the file must lint clean.
#include <cstddef>
#include <vector>

#include "util/annotations.hh"

void
hotAppend(std::vector<int> &scratch, int x)
{
    LS_HOT_PATH();
    // LS_LINT_ALLOW(alloc): capacity persists across steps
    scratch.push_back(x);
}

void
hotRefill(std::vector<int> &scratch, size_t n)
{
    LS_HOT_PATH();
    scratch.resize(n); // LS_LINT_ALLOW(alloc): capacity persists
}

// Correct-category waivers suppress both a shared write (race) and a
// deliberate cross-order acquisition (lockorder).
#include <cstddef>
#include <mutex>

#include "util/annotations.hh"

namespace fixture {

long g_debugCounter = 0;

std::mutex mu_a;
std::mutex mu_b;

void
body(size_t)
{
    LS_PARALLEL_BODY();
    // LS_LINT_ALLOW(race): debug-only counter, torn writes acceptable
    g_debugCounter += 1;
}

int
forward()
{
    std::lock_guard<std::mutex> la(mu_a);
    std::lock_guard<std::mutex> lb(mu_b);
    return 1;
}

int
reverse()
{
    std::lock_guard<std::mutex> lb(mu_b);
    // LS_LINT_ALLOW(lockorder): drain path, forward() cannot run concurrently
    std::lock_guard<std::mutex> la(mu_a);
    return 2;
}

} // namespace fixture

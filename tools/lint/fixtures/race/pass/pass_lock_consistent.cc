// Two mutexes always acquired in the same order (including via a
// nested helper call) form an acyclic acquisition graph: no finding.
#include <mutex>

namespace fixture {

std::mutex mu_a;
std::mutex mu_b;

int
inner()
{
    std::lock_guard<std::mutex> lb(mu_b);
    return 1;
}

int
direct()
{
    std::lock_guard<std::mutex> la(mu_a);
    std::lock_guard<std::mutex> lb(mu_b);
    return 2;
}

int
nested()
{
    std::lock_guard<std::mutex> la(mu_a);
    return inner();
}

} // namespace fixture

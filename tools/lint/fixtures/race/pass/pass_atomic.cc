// Atomic read-modify-write lowers to __atomic_* builtins, which the
// lint treats as safe: a shared atomic counter must not be flagged.
#include <atomic>
#include <cstddef>

#include "util/annotations.hh"

namespace fixture {

std::atomic<long> g_total{0};

void
body(size_t i)
{
    LS_PARALLEL_BODY();
    g_total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
}

} // namespace fixture

// The idiomatic safe parallel body: each lane writes only its own
// slot through a parameter pointer, and a NESTED serial lambda may
// freely capture locals by reference (its captures are lane-local,
// unlike the root body's).
#include <cstddef>

#include "util/annotations.hh"

namespace fixture {

void
fill(long *out, size_t i)
{
    LS_PARALLEL_BODY();
    long acc = 0;
    auto add = [&](long v) { acc += v; };
    add(static_cast<long>(i));
    add(1);
    out[i] = acc;
}

} // namespace fixture

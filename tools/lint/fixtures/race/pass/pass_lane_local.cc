// Lane-partitioned global state (one slot per lane, declared
// LS_LANE_LOCAL) and thread_local scratch are both race-free by
// construction and must stay silent.
#include <cstddef>

#include "util/annotations.hh"

namespace fixture {

long g_laneSums[64];
LS_LANE_LOCAL(g_laneSums);

thread_local long t_scratch = 0;
LS_LANE_LOCAL(t_scratch);

void
body(size_t i)
{
    LS_PARALLEL_BODY();
    g_laneSums[i % 64] += static_cast<long>(i);
    t_scratch += 1;
}

} // namespace fixture

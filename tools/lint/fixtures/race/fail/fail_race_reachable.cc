// The racing write is NOT in the body itself but in a helper two
// calls away: the BFS over the compiler's call graph must reach it.
#include <cstddef>

#include "util/annotations.hh"

namespace fixture {

long g_hits = 0;

void
record(long v)
{
    g_hits += v; // EXPECT(race)
}

void
classify(size_t i)
{
    if (i % 2 == 0)
        record(1);
}

void
body(size_t i)
{
    LS_PARALLEL_BODY();
    classify(i);
}

} // namespace fixture

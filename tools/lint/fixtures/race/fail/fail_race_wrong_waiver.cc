// A waiver of the WRONG category must not suppress: the lockorder
// waiver below does nothing for a shared-write finding.
#include <cstddef>

#include "util/annotations.hh"

namespace fixture {

long g_count = 0;

void
body(size_t)
{
    LS_PARALLEL_BODY();
    // LS_LINT_ALLOW(lockorder): wrong category, must not waive race
    g_count += 1; // EXPECT(race)
}

} // namespace fixture

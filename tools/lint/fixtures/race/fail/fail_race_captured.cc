// The parallel body's own closure captures a stack variable by
// reference and accumulates into it: every lane shares that one slot.
#include <cstddef>

#include "util/annotations.hh"

namespace fixture {

long
sumBroken(size_t n)
{
    long sum = 0;
    auto body = [&](size_t i) {
        LS_PARALLEL_BODY();
        sum += static_cast<long>(i); // EXPECT(race)
    };
    for (size_t i = 0; i < n; ++i)
        body(i);
    return sum;
}

} // namespace fixture

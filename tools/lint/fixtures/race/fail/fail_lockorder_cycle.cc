// Two mutexes taken in opposite orders on two paths: a classic ABBA
// deadlock. Both edges lie on the cycle, so both acquisition sites
// are reported.
#include <mutex>

namespace fixture {

std::mutex mu_a;
std::mutex mu_b;

int
forward()
{
    std::lock_guard<std::mutex> la(mu_a);
    std::lock_guard<std::mutex> lb(mu_b); // EXPECT(lockorder)
    return 1;
}

int
reverse()
{
    std::lock_guard<std::mutex> lb(mu_b);
    std::lock_guard<std::mutex> la(mu_a); // EXPECT(lockorder)
    return 2;
}

} // namespace fixture

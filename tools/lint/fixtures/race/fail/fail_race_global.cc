// A parallel body writing a namespace-scope global: the canonical
// shared-write race the lint exists to catch.
#include <cstddef>

#include "util/annotations.hh"

namespace fixture {

long g_total = 0;

void
body(size_t i)
{
    LS_PARALLEL_BODY();
    g_total += static_cast<long>(i); // EXPECT(race)
}

} // namespace fixture

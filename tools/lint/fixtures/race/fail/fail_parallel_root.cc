// A parallelFor body without LS_PARALLEL_BODY() as its opening
// statement: the coverage check rejects the unannotated root, since
// an unmarked body silently escapes the shared-write analysis.
#include <cstddef>

#include "util/annotations.hh"

namespace fixture {

struct Pool
{
    template <class Fn>
    void parallelFor(size_t begin, size_t end, Fn &&fn)
    {
        for (size_t i = begin; i < end; ++i)
            fn(i);
    }
};

void
run(long *out)
{
    Pool pool;
    pool.parallelFor(0, 8, [&](size_t i) { // EXPECT(parallel-root)
        out[i] = static_cast<long>(i);
    });
}

} // namespace fixture

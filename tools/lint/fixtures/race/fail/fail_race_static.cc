// Function-local static state is shared across lanes exactly like a
// global; the body bumping a static call counter must be flagged.
#include <cstddef>

#include "util/annotations.hh"

namespace fixture {

size_t
nextTicket()
{
    static size_t counter = 0;
    counter += 1; // EXPECT(race)
    return counter;
}

void
body(size_t)
{
    LS_PARALLEL_BODY();
    nextTicket();
}

} // namespace fixture

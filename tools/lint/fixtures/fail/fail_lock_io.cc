// Mutex acquisition and stdio/iostream writes under LS_NO_LOCK.
#include <cstdio>
#include <iostream>
#include <mutex>

#include "util/annotations.hh"

namespace fixture {

std::mutex gate;
int shared_total;

void
addLocked(int x)
{
    std::lock_guard<std::mutex> hold(gate); // EXPECT(lock)
    shared_total += x;
}

void
trace(int x)
{
    std::printf("x=%d\n", x); // EXPECT(lock)
}

void
traceStream(int x)
{
    std::cout << x << '\n'; // EXPECT(lock)
}

} // namespace fixture

void
lockFreeStep(int x)
{
    LS_NO_LOCK();
    fixture::addLocked(x);
    fixture::trace(x);
    fixture::traceStream(x);
}

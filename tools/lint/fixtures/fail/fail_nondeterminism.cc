// rand()/time() and unordered-container iteration under
// LS_DETERMINISTIC.
#include <cstdlib>
#include <ctime>
#include <unordered_map>

#include "util/annotations.hh"

namespace fixture {

int
jitter()
{
    return rand() % 7; // EXPECT(determinism)
}

long
stamp()
{
    return static_cast<long>(time(nullptr)); // EXPECT(determinism)
}

int
sumValues(const std::unordered_map<int, int> &m)
{
    int s = 0;
    for (auto it = m.begin(); it != m.end(); ++it) // EXPECT(determinism)
        s += it->second;
    return s;
}

} // namespace fixture

long
deterministicStep(const std::unordered_map<int, int> &m)
{
    LS_DETERMINISTIC();
    return fixture::jitter() + fixture::stamp() + fixture::sumValues(m);
}

// Growing std containers and std::function construction under
// LS_HOT_PATH, two levels below the annotated root.
#include <cstddef>
#include <functional>
#include <vector>

#include "util/annotations.hh"

namespace fixture {

void
record(std::vector<int> &log, int x)
{
    log.push_back(x); // EXPECT(alloc)
}

int
dispatch(int x)
{
    std::function<int(int)> f = [](int y) { return y * 2; }; // EXPECT(alloc)
    return f(x);
}

} // namespace fixture

void
hotStep(std::vector<int> &log, int x)
{
    LS_HOT_PATH();
    fixture::record(log, x);
    fixture::record(log, fixture::dispatch(x));
}

// Container constructors that allocate eagerly (sized, copy) under
// LS_HOT_PATH. The default and moved-from constructions in normalize()
// must NOT be flagged: neither touches the heap.
#include <cstddef>
#include <utility>
#include <vector>

#include "util/annotations.hh"

namespace fixture {

float
sumFresh(std::size_t n)
{
    std::vector<float> v(n, 1.0f); // EXPECT(alloc)
    float s = 0.0f;
    for (float x : v)
        s += x;
    return s;
}

std::vector<float>
normalize(std::vector<float> in)
{
    // Default construction + move assignment: no heap traffic, no
    // diagnostic expected on either line.
    std::vector<float> out;
    out = std::move(in);
    for (float &x : out)
        x *= 0.5f;
    return out;
}

float
duplicate(const std::vector<float> &src)
{
    std::vector<float> copy(src); // EXPECT(alloc)
    return copy.empty() ? 0.0f : copy.front();
}

} // namespace fixture

float
hotStep(std::vector<float> &data, std::size_t n)
{
    LS_HOT_PATH();
    data = fixture::normalize(std::move(data));
    return fixture::sumFresh(n) + fixture::duplicate(data);
}

// Direct and transitive operator new under LS_HOT_PATH.
#include <cstddef>

#include "util/annotations.hh"

namespace fixture {

int *
makeBuffer(size_t n)
{
    return new int[n]; // EXPECT(alloc)
}

} // namespace fixture

int
hotLeaky(size_t n)
{
    LS_HOT_PATH();
    int *v = fixture::makeBuffer(n);
    int s = 0;
    for (size_t i = 0; i < n; ++i)
        s += v[i];
    delete[] v;
    return s;
}

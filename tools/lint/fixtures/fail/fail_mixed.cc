// One root carrying all three contracts, violating each once; also
// checks that a waiver for the WRONG category does not suppress.
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/annotations.hh"

namespace fixture {

std::mutex gate;

int
unsafe(std::vector<int> &v)
{
    // LS_LINT_ALLOW(determinism): wrong category, must not waive alloc
    v.push_back(1); // EXPECT(alloc)
    std::lock_guard<std::mutex> hold(gate); // EXPECT(lock)
    return rand(); // EXPECT(determinism)
}

} // namespace fixture

int
fullContract(std::vector<int> &v)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    return fixture::unsafe(v);
}

/**
 * @file
 * Tests for the continuous-batching scheduler: conservation, FIFO
 * admission, batching benefit, capacity limits, and determinism.
 */

#include <gtest/gtest.h>

#include "sim/batch_scheduler.hh"

namespace longsight {
namespace {

EngineModel
constantEngine(Tick prefill, Tick step, uint32_t max_batch)
{
    EngineModel e;
    e.prefillTime = [prefill](uint64_t) { return prefill; };
    e.stepTime = [step](const std::vector<uint64_t> &) { return step; };
    e.maxBatch = max_batch;
    return e;
}

std::vector<ServingJob>
burst(uint32_t n, uint64_t prompt, uint32_t out)
{
    std::vector<ServingJob> jobs;
    for (uint32_t i = 0; i < n; ++i)
        jobs.push_back({i, 0, prompt, out});
    return jobs;
}

TEST(Scheduler, EveryJobGetsItsTokens)
{
    const auto r = runBatchSchedule(burst(5, 100, 7),
                                    constantEngine(kMillisecond,
                                                   kMillisecond, 4));
    ASSERT_EQ(r.jobs.size(), 5u);
    for (const auto &j : r.jobs)
        EXPECT_EQ(j.tokens, 7u);
    EXPECT_EQ(r.totalTokens, 35u);
}

TEST(Scheduler, SingleJobTimeline)
{
    const Tick prefill = 10 * kMillisecond;
    const Tick step = 2 * kMillisecond;
    const auto r =
        runBatchSchedule(burst(1, 50, 3), constantEngine(prefill, step, 4));
    ASSERT_EQ(r.jobs.size(), 1u);
    EXPECT_EQ(r.jobs[0].ttft, prefill + step);
    EXPECT_EQ(r.jobs[0].completion, prefill + 3 * step);
    EXPECT_EQ(r.makespan, prefill + 3 * step);
}

TEST(Scheduler, FifoAdmissionByArrival)
{
    std::vector<ServingJob> jobs = {
        {0, 5 * kMillisecond, 10, 2},
        {1, 0, 10, 2},
        {2, 2 * kMillisecond, 10, 2},
    };
    // Batch of 1 serializes jobs fully: completion order = arrival.
    const auto r = runBatchSchedule(
        jobs, constantEngine(kMillisecond, kMillisecond, 1));
    ASSERT_EQ(r.jobs.size(), 3u);
    EXPECT_EQ(r.jobs[0].id, 1u);
    EXPECT_EQ(r.jobs[1].id, 2u);
    EXPECT_EQ(r.jobs[2].id, 0u);
}

TEST(Scheduler, BatchingRaisesThroughput)
{
    auto engine_narrow = constantEngine(kMillisecond, kMillisecond, 1);
    auto engine_wide = constantEngine(kMillisecond, kMillisecond, 8);
    const auto jobs = burst(8, 100, 16);
    const auto narrow = runBatchSchedule(jobs, engine_narrow);
    const auto wide = runBatchSchedule(jobs, engine_wide);
    EXPECT_GT(wide.throughputTokensPerSec,
              4.0 * narrow.throughputTokensPerSec);
    EXPECT_LT(wide.makespan, narrow.makespan);
}

TEST(Scheduler, CapacityDelaysExcessJobs)
{
    const auto r = runBatchSchedule(burst(4, 100, 4),
                                    constantEngine(kMillisecond,
                                                   kMillisecond, 2));
    // Jobs 2 and 3 wait for slots: their TTFT exceeds the first two.
    Tick early = 0, late = 0;
    for (const auto &j : r.jobs) {
        if (j.id < 2)
            early = std::max(early, j.ttft);
        else
            late = std::max(late, j.ttft);
    }
    EXPECT_GT(late, early);
}

TEST(Scheduler, StepTimeSeesGrowingContexts)
{
    std::vector<std::vector<uint64_t>> seen;
    EngineModel e;
    e.prefillTime = [](uint64_t) { return kMillisecond; };
    e.stepTime = [&seen](const std::vector<uint64_t> &c) {
        seen.push_back(c);
        return Tick(kMillisecond);
    };
    e.maxBatch = 1;
    runBatchSchedule(burst(1, 10, 3), e);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], std::vector<uint64_t>{10});
    EXPECT_EQ(seen[2], std::vector<uint64_t>{12});
}

TEST(Scheduler, LoadDependentStepsSlowTheBatch)
{
    EngineModel e;
    e.prefillTime = [](uint64_t) { return Tick(0); };
    // Sublinear in batch size, as for a weight-streaming-bound step.
    e.stepTime = [](const std::vector<uint64_t> &c) {
        return Tick(kMillisecond + c.size() * kMillisecond / 2);
    };
    e.maxBatch = 8;
    const auto solo = runBatchSchedule(burst(1, 10, 8), e);
    const auto packed = runBatchSchedule(burst(8, 10, 8), e);
    EXPECT_GT(packed.tbtMs.mean(), solo.tbtMs.mean());
    // ...but batch throughput still wins.
    EXPECT_GT(packed.throughputTokensPerSec,
              solo.throughputTokensPerSec);
}

TEST(Scheduler, Deterministic)
{
    const auto jobs = burst(6, 64, 9);
    const auto e = constantEngine(2 * kMillisecond, kMillisecond, 3);
    const auto a = runBatchSchedule(jobs, e);
    const auto b = runBatchSchedule(jobs, e);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.ttftMs.mean(), b.ttftMs.mean());
}

TEST(Scheduler, IdleGapsJumpToNextArrival)
{
    std::vector<ServingJob> jobs = {
        {0, 0, 10, 1},
        {1, kSecond, 10, 1}, // long idle gap
    };
    const auto r = runBatchSchedule(
        jobs, constantEngine(kMillisecond, kMillisecond, 4));
    EXPECT_GE(r.makespan, kSecond);
    // Second job's TTFT is measured from ITS arrival, not time zero.
    for (const auto &j : r.jobs)
        if (j.id == 1)
            EXPECT_LT(j.ttft, 10 * kMillisecond);
}

} // namespace
} // namespace longsight

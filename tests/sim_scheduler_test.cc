/**
 * @file
 * Tests for the continuous-batching scheduler: conservation, FIFO
 * admission, batching benefit, capacity limits, and determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/batch_scheduler.hh"

namespace longsight {
namespace {

EngineModel
constantEngine(Tick prefill, Tick step, uint32_t max_batch)
{
    EngineModel e;
    e.prefillTime = [prefill](uint64_t) { return prefill; };
    e.stepTime = [step](const std::vector<uint64_t> &) { return step; };
    e.maxBatch = max_batch;
    return e;
}

std::vector<ServingJob>
burst(uint32_t n, uint64_t prompt, uint32_t out)
{
    std::vector<ServingJob> jobs;
    for (uint32_t i = 0; i < n; ++i)
        jobs.push_back({i, 0, prompt, out});
    return jobs;
}

TEST(Scheduler, EveryJobGetsItsTokens)
{
    const auto r = runBatchSchedule(burst(5, 100, 7),
                                    constantEngine(kMillisecond,
                                                   kMillisecond, 4));
    ASSERT_EQ(r.jobs.size(), 5u);
    for (const auto &j : r.jobs)
        EXPECT_EQ(j.tokens, 7u);
    EXPECT_EQ(r.totalTokens, 35u);
}

TEST(Scheduler, SingleJobTimeline)
{
    const Tick prefill = 10 * kMillisecond;
    const Tick step = 2 * kMillisecond;
    const auto r =
        runBatchSchedule(burst(1, 50, 3), constantEngine(prefill, step, 4));
    ASSERT_EQ(r.jobs.size(), 1u);
    EXPECT_EQ(r.jobs[0].ttft, prefill + step);
    EXPECT_EQ(r.jobs[0].completion, prefill + 3 * step);
    EXPECT_EQ(r.makespan, prefill + 3 * step);
}

TEST(Scheduler, FifoAdmissionByArrival)
{
    std::vector<ServingJob> jobs = {
        {0, 5 * kMillisecond, 10, 2},
        {1, 0, 10, 2},
        {2, 2 * kMillisecond, 10, 2},
    };
    // Batch of 1 serializes jobs fully: completion order = arrival.
    const auto r = runBatchSchedule(
        jobs, constantEngine(kMillisecond, kMillisecond, 1));
    ASSERT_EQ(r.jobs.size(), 3u);
    EXPECT_EQ(r.jobs[0].id, 1u);
    EXPECT_EQ(r.jobs[1].id, 2u);
    EXPECT_EQ(r.jobs[2].id, 0u);
}

TEST(Scheduler, BatchingRaisesThroughput)
{
    auto engine_narrow = constantEngine(kMillisecond, kMillisecond, 1);
    auto engine_wide = constantEngine(kMillisecond, kMillisecond, 8);
    const auto jobs = burst(8, 100, 16);
    const auto narrow = runBatchSchedule(jobs, engine_narrow);
    const auto wide = runBatchSchedule(jobs, engine_wide);
    EXPECT_GT(wide.throughputTokensPerSec,
              4.0 * narrow.throughputTokensPerSec);
    EXPECT_LT(wide.makespan, narrow.makespan);
}

TEST(Scheduler, CapacityDelaysExcessJobs)
{
    const auto r = runBatchSchedule(burst(4, 100, 4),
                                    constantEngine(kMillisecond,
                                                   kMillisecond, 2));
    // Jobs 2 and 3 wait for slots: their TTFT exceeds the first two.
    Tick early = 0, late = 0;
    for (const auto &j : r.jobs) {
        if (j.id < 2)
            early = std::max(early, j.ttft);
        else
            late = std::max(late, j.ttft);
    }
    EXPECT_GT(late, early);
}

TEST(Scheduler, StepTimeSeesGrowingContexts)
{
    std::vector<std::vector<uint64_t>> seen;
    EngineModel e;
    e.prefillTime = [](uint64_t) { return kMillisecond; };
    e.stepTime = [&seen](const std::vector<uint64_t> &c) {
        seen.push_back(c);
        return Tick(kMillisecond);
    };
    e.maxBatch = 1;
    runBatchSchedule(burst(1, 10, 3), e);
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], std::vector<uint64_t>{10});
    EXPECT_EQ(seen[2], std::vector<uint64_t>{12});
}

TEST(Scheduler, LoadDependentStepsSlowTheBatch)
{
    EngineModel e;
    e.prefillTime = [](uint64_t) { return Tick(0); };
    // Sublinear in batch size, as for a weight-streaming-bound step.
    e.stepTime = [](const std::vector<uint64_t> &c) {
        return Tick(kMillisecond + c.size() * kMillisecond / 2);
    };
    e.maxBatch = 8;
    const auto solo = runBatchSchedule(burst(1, 10, 8), e);
    const auto packed = runBatchSchedule(burst(8, 10, 8), e);
    EXPECT_GT(packed.tbtMs.mean(), solo.tbtMs.mean());
    // ...but batch throughput still wins.
    EXPECT_GT(packed.throughputTokensPerSec,
              solo.throughputTokensPerSec);
}

TEST(Scheduler, Deterministic)
{
    const auto jobs = burst(6, 64, 9);
    const auto e = constantEngine(2 * kMillisecond, kMillisecond, 3);
    const auto a = runBatchSchedule(jobs, e);
    const auto b = runBatchSchedule(jobs, e);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.ttftMs.mean(), b.ttftMs.mean());
}

TEST(Scheduler, MixedContextLengthsReachStepTime)
{
    // Wildly mixed prompt lengths in one batch: the engine must see
    // each job's own (growing) context, not a shared one.
    std::vector<ServingJob> jobs = {
        {0, 0, 16, 3},
        {1, 0, 4096, 3},
        {2, 0, 131072, 3},
    };
    std::vector<std::vector<uint64_t>> seen;
    EngineModel e;
    e.prefillTime = [](uint64_t) { return Tick(kMillisecond); };
    e.stepTime = [&seen](const std::vector<uint64_t> &c) {
        seen.push_back(c);
        return Tick(kMillisecond);
    };
    e.maxBatch = 4;
    const auto r = runBatchSchedule(jobs, e);
    EXPECT_EQ(r.totalTokens, 9u);
    // First full-batch step sees all three distinct contexts, each
    // advanced by however many tokens that job has already produced.
    bool saw_full_batch = false;
    for (const auto &c : seen) {
        if (c.size() != 3)
            continue;
        saw_full_batch = true;
        std::vector<uint64_t> sorted = c;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_GE(sorted[0], 16u);
        EXPECT_LT(sorted[0], 16u + 3u);
        EXPECT_GE(sorted[1], 4096u);
        EXPECT_LT(sorted[1], 4096u + 3u);
        EXPECT_GE(sorted[2], 131072u);
        EXPECT_LT(sorted[2], 131072u + 3u);
    }
    EXPECT_TRUE(saw_full_batch);
}

TEST(Scheduler, BurstBeyondCapacityDrainsCompletely)
{
    // A 12-request burst into 3 slots: everyone is eventually served,
    // and admission order is FIFO (completion order of a constant
    // engine tracks admission).
    const auto r = runBatchSchedule(burst(12, 64, 2),
                                    constantEngine(kMillisecond,
                                                   kMillisecond, 3));
    ASSERT_EQ(r.jobs.size(), 12u);
    EXPECT_EQ(r.totalTokens, 24u);
    uint32_t prev = 0;
    for (const auto &j : r.jobs) {
        EXPECT_EQ(j.tokens, 2u);
        EXPECT_GE(j.id, prev);
        prev = j.id;
    }
}

TEST(Scheduler, RetireRefillsSlotMidBatch)
{
    // Job 0 finishes long before jobs 1 and 2; its departure must free
    // the slot for job 3, which arrived after capacity was exhausted.
    // The onAdmit/onRetire hooks let us watch the residency churn the
    // functional batched-decode engine mirrors with real pipelines.
    std::vector<ServingJob> jobs = {
        {0, 0, 10, 1},  // leaves after one token
        {1, 0, 10, 12}, // long-running
        {2, 0, 10, 12}, // long-running
        {3, 0, 10, 1},  // waits for job 0's slot
    };
    std::vector<std::pair<char, uint32_t>> events;
    std::vector<uint32_t> resident;
    uint32_t max_resident = 0;
    EngineModel e = constantEngine(kMillisecond, kMillisecond, 3);
    e.onAdmit = [&](const ServingJob &j) {
        events.push_back({'A', j.id});
        resident.push_back(j.id);
        max_resident = std::max(
            max_resident, static_cast<uint32_t>(resident.size()));
    };
    e.onRetire = [&](uint32_t id) {
        events.push_back({'R', id});
        auto it = std::find(resident.begin(), resident.end(), id);
        ASSERT_NE(it, resident.end());
        resident.erase(it);
    };
    const auto r = runBatchSchedule(jobs, e);
    ASSERT_EQ(r.jobs.size(), 4u);
    EXPECT_TRUE(resident.empty()); // every admit got its retire
    EXPECT_EQ(max_resident, 3u);   // never above maxBatch
    // Each job admitted exactly once and retired exactly once.
    for (uint32_t id = 0; id < 4; ++id) {
        EXPECT_EQ(std::count(events.begin(), events.end(),
                             std::make_pair('A', id)),
                  1);
        EXPECT_EQ(std::count(events.begin(), events.end(),
                             std::make_pair('R', id)),
                  1);
    }
    // Job 3 joins only after job 0 drains: retire(0) precedes
    // admit(3) in the event log.
    const auto retire0 = std::find(events.begin(), events.end(),
                                   std::make_pair('R', 0u));
    const auto admit3 = std::find(events.begin(), events.end(),
                                  std::make_pair('A', 3u));
    ASSERT_NE(retire0, events.end());
    ASSERT_NE(admit3, events.end());
    EXPECT_LT(retire0 - events.begin(), admit3 - events.begin());
}

TEST(Scheduler, StaggeredBurstsKeepBatchFull)
{
    // Two bursts a while apart; the second lands while the first is
    // still decoding. Conservation holds and the second burst's TTFT
    // is measured from its own arrival.
    std::vector<ServingJob> jobs;
    for (uint32_t i = 0; i < 4; ++i)
        jobs.push_back({i, 0, 32, 6});
    for (uint32_t i = 4; i < 8; ++i)
        jobs.push_back({i, 3 * kMillisecond, 32, 6});
    const auto r = runBatchSchedule(jobs, constantEngine(kMillisecond,
                                                         kMillisecond,
                                                         4));
    ASSERT_EQ(r.jobs.size(), 8u);
    EXPECT_EQ(r.totalTokens, 48u);
    for (const auto &j : r.jobs) {
        EXPECT_EQ(j.tokens, 6u);
        EXPECT_GT(j.ttft, Tick(0));
    }
}

TEST(Scheduler, BurstAtDrainTickRetiresBeforeAdmitting)
{
    // A second burst lands exactly at the tick where the whole first
    // batch drains. Same-tick ordering must be retire-then-admit: the
    // slots free first, the newcomers fill them, and residency never
    // exceeds maxBatch even transiently.
    const Tick prefill = kMillisecond;
    const Tick step = kMillisecond;
    // First burst: 2 jobs, 2 tokens each -> all retire at the same
    // decode tick (prefill*2 + step*2). Second burst arrives then.
    const Tick drain_tick = 2 * prefill + 2 * step;
    std::vector<ServingJob> jobs = {
        {0, 0, 8, 2},
        {1, 0, 8, 2},
        {2, drain_tick, 8, 1},
        {3, drain_tick, 8, 1},
    };
    std::vector<std::pair<char, uint32_t>> events;
    int resident = 0, max_resident = 0;
    EngineModel e = constantEngine(prefill, step, 2);
    e.onAdmit = [&](const ServingJob &j) {
        events.push_back({'A', j.id});
        max_resident = std::max(max_resident, ++resident);
    };
    e.onRetire = [&](uint32_t id) {
        events.push_back({'R', id});
        --resident;
    };
    const auto r = runBatchSchedule(jobs, e);
    ASSERT_EQ(r.jobs.size(), 4u);
    EXPECT_EQ(resident, 0);
    EXPECT_EQ(max_resident, 2); // never above maxBatch, even same-tick
    // Both first-burst retires precede both second-burst admits.
    const auto pos = [&](char k, uint32_t id) {
        return std::find(events.begin(), events.end(),
                         std::make_pair(k, id)) -
            events.begin();
    };
    EXPECT_LT(pos('R', 0), pos('A', 2));
    EXPECT_LT(pos('R', 1), pos('A', 2));
    EXPECT_LT(pos('R', 0), pos('A', 3));
}

TEST(Scheduler, ZeroOutputJobRetiresWithoutDecoding)
{
    // outputTokens == 0 (e.g. a prefill-only scoring request) must
    // retire immediately after admission: no spurious generated token,
    // no decode iteration charged to it.
    std::vector<ServingJob> jobs = {
        {0, 0, 32, 0},
        {1, 0, 32, 3},
    };
    std::vector<uint32_t> retired;
    EngineModel e = constantEngine(kMillisecond, kMillisecond, 4);
    e.onRetire = [&](uint32_t id) { retired.push_back(id); };
    const auto r = runBatchSchedule(jobs, e);
    ASSERT_EQ(r.jobs.size(), 2u);
    EXPECT_EQ(r.totalTokens, 3u); // job 0 contributes nothing
    for (const auto &j : r.jobs) {
        if (j.id == 0) {
            EXPECT_EQ(j.tokens, 0u);
            EXPECT_EQ(j.ttft, Tick(0));
        } else {
            EXPECT_EQ(j.tokens, 3u);
        }
    }
    // Job 0 retires first -- before any decode step ran.
    ASSERT_EQ(retired.size(), 2u);
    EXPECT_EQ(retired[0], 0u);
}

TEST(Scheduler, AdmissionGateHoldsQueueUntilBudgetFrees)
{
    // canAdmit models a KV block budget: jobs 1 and 2 are refused
    // while job 0 holds the "memory", then admitted after it retires.
    // FIFO is preserved and the gate is bypassed for an empty batch.
    std::vector<ServingJob> jobs = {
        {0, 0, 64, 2},
        {1, 0, 64, 1},
        {2, 0, 64, 1},
    };
    int in_flight = 0;
    uint32_t gate_rejections = 0;
    EngineModel e = constantEngine(kMillisecond, kMillisecond, 4);
    // Budget: one resident job's worth of blocks.
    e.canAdmit = [&](const ServingJob &) {
        if (in_flight >= 1) {
            ++gate_rejections;
            return false;
        }
        return true;
    };
    e.onAdmit = [&](const ServingJob &) { ++in_flight; };
    e.onRetire = [&](uint32_t) { --in_flight; };
    const auto r = runBatchSchedule(jobs, e);
    ASSERT_EQ(r.jobs.size(), 3u);
    EXPECT_GT(gate_rejections, 0u);
    // With a one-job budget the schedule serializes: completion order
    // is FIFO despite maxBatch = 4.
    EXPECT_EQ(r.jobs[0].id, 0u);
    EXPECT_EQ(r.jobs[1].id, 1u);
    EXPECT_EQ(r.jobs[2].id, 2u);
    EXPECT_EQ(r.totalTokens, 4u);
}

TEST(Scheduler, IdleGapsJumpToNextArrival)
{
    std::vector<ServingJob> jobs = {
        {0, 0, 10, 1},
        {1, kSecond, 10, 1}, // long idle gap
    };
    const auto r = runBatchSchedule(
        jobs, constantEngine(kMillisecond, kMillisecond, 4));
    EXPECT_GE(r.makespan, kSecond);
    // Second job's TTFT is measured from ITS arrival, not time zero.
    for (const auto &j : r.jobs) {
        if (j.id == 1) {
            EXPECT_LT(j.ttft, 10 * kMillisecond);
        }
    }
}

} // namespace
} // namespace longsight

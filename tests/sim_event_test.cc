/**
 * @file
 * Tests for the discrete-event kernel: ordering, same-tick FIFO,
 * runUntil semantics, and the runaway guard.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace longsight {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleAt(30, [&] { order.push_back(3); });
    q.scheduleAt(10, [&] { order.push_back(1); });
    q.scheduleAt(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.scheduleAt(100, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Tick fired_at = 0;
    q.scheduleAt(50, [&] {
        q.scheduleAfter(25, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_EQ(fired_at, 75u);
}

TEST(EventQueue, RunUntilLeavesLaterEvents)
{
    EventQueue q;
    int fired = 0;
    q.scheduleAt(10, [&] { ++fired; });
    q.scheduleAt(100, [&] { ++fired; });
    q.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.now(), 50u);
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            q.scheduleAfter(5, chain);
    };
    q.scheduleAt(0, chain);
    q.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(q.now(), 45u);
}

TEST(EventQueue, RunawayGuardTrips)
{
    EventQueue q;
    std::function<void()> forever = [&] { q.scheduleAfter(1, forever); };
    q.scheduleAt(0, forever);
    EXPECT_DEATH({ q.run(1000); }, "event cap");
}

TEST(EventQueue, SchedulingIntoPastDies)
{
    EventQueue q;
    q.scheduleAt(100, [] {});
    q.run();
    EXPECT_DEATH({ q.scheduleAt(50, [] {}); }, "past");
}

TEST(EventQueue, EmptyQueueRunsToNoop)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.run(), 0u);
}

} // namespace
} // namespace longsight

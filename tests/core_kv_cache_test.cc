/**
 * @file
 * Dedicated tests for KvCache: growth, sign maintenance, ITQ
 * rotation install/reinstall, filter-space mapping, and error paths.
 */

#include <gtest/gtest.h>

#include "core/kv_cache.hh"
#include "tensor/linalg.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

constexpr uint32_t kDim = 16;

TEST(KvCache, StartsEmpty)
{
    KvCache c(kDim);
    EXPECT_EQ(c.size(), 0u);
    EXPECT_EQ(c.headDim(), kDim);
    EXPECT_FALSE(c.hasItqRotation());
}

TEST(KvCache, AppendStoresRows)
{
    Rng rng(1);
    KvCache c(kDim);
    const auto k = rng.gaussianVec(kDim);
    const auto v = rng.gaussianVec(kDim);
    c.append(k, v);
    ASSERT_EQ(c.size(), 1u);
    for (uint32_t i = 0; i < kDim; ++i) {
        EXPECT_EQ(c.keys()(0, i), k[i]);
        EXPECT_EQ(c.values()(0, i), v[i]);
    }
}

TEST(KvCache, RawSignsTrackKeys)
{
    Rng rng(2);
    KvCache c(kDim);
    for (int i = 0; i < 20; ++i)
        c.append(rng.gaussianVec(kDim), rng.gaussianVec(kDim));
    for (size_t i = 0; i < 20; ++i)
        EXPECT_EQ(c.rawSigns(i), SignBits(c.keys().row(i), kDim));
}

TEST(KvCache, FilterSignsAreRawWithoutRotation)
{
    Rng rng(3);
    KvCache c(kDim);
    c.append(rng.gaussianVec(kDim), rng.gaussianVec(kDim));
    EXPECT_EQ(c.filterSigns(0), c.rawSigns(0));
}

TEST(KvCache, RotationChangesFilterSignsNotKeys)
{
    Rng rng(4);
    KvCache c(kDim);
    for (int i = 0; i < 10; ++i)
        c.append(rng.gaussianVec(kDim), rng.gaussianVec(kDim));
    const float key_before = c.keys()(3, 5);
    c.setItqRotation(randomOrthogonal(kDim, rng));
    EXPECT_TRUE(c.hasItqRotation());
    EXPECT_EQ(c.keys()(3, 5), key_before) << "scoring keys untouched";

    // Rotated signs equal signs of k * R.
    for (size_t i = 0; i < 10; ++i) {
        const auto rk = gemvT(c.itqRotation(), c.keys().rowVec(i));
        EXPECT_EQ(c.filterSigns(i), SignBits(rk.data(), kDim));
    }
}

TEST(KvCache, AppendsAfterRotationStayRotated)
{
    Rng rng(5);
    KvCache c(kDim);
    c.append(rng.gaussianVec(kDim), rng.gaussianVec(kDim));
    c.setItqRotation(randomOrthogonal(kDim, rng));
    c.append(rng.gaussianVec(kDim), rng.gaussianVec(kDim));
    const auto rk = gemvT(c.itqRotation(), c.keys().rowVec(1));
    EXPECT_EQ(c.filterSigns(1), SignBits(rk.data(), kDim));
}

TEST(KvCache, RotationReinstallRecomputes)
{
    Rng rng(6);
    KvCache c(kDim);
    for (int i = 0; i < 5; ++i)
        c.append(rng.gaussianVec(kDim), rng.gaussianVec(kDim));
    c.setItqRotation(randomOrthogonal(kDim, rng));
    const SignBits first = c.filterSigns(2);
    c.setItqRotation(randomOrthogonal(kDim, rng));
    const SignBits second = c.filterSigns(2);
    EXPECT_NE(first == second, true) << "new rotation, new signs";
}

TEST(KvCache, ToFilterSpaceIdentityWithoutRotation)
{
    Rng rng(7);
    KvCache c(kDim);
    const auto q = rng.gaussianVec(kDim);
    EXPECT_EQ(c.toFilterSpace(q), q);
}

TEST(KvCache, ToFilterSpacePreservesDotProducts)
{
    Rng rng(8);
    KvCache c(kDim);
    c.append(rng.gaussianVec(kDim), rng.gaussianVec(kDim));
    c.setItqRotation(randomOrthogonal(kDim, rng));
    const auto a = rng.gaussianVec(kDim);
    const auto b = rng.gaussianVec(kDim);
    const auto ra = c.toFilterSpace(a);
    const auto rb = c.toFilterSpace(b);
    EXPECT_NEAR(dot(a.data(), b.data(), kDim),
                dot(ra.data(), rb.data(), kDim), 1e-3);
}

TEST(KvCache, AppendAllMatchesLoop)
{
    Rng rng(9);
    Matrix keys(7, kDim, rng.gaussianVec(7 * kDim));
    Matrix values(7, kDim, rng.gaussianVec(7 * kDim));
    KvCache bulk(kDim), loop(kDim);
    bulk.appendAll(keys, values);
    for (size_t i = 0; i < 7; ++i)
        loop.append(keys.rowVec(i), values.rowVec(i));
    ASSERT_EQ(bulk.size(), loop.size());
    for (size_t i = 0; i < 7; ++i) {
        EXPECT_EQ(bulk.rawSigns(i), loop.rawSigns(i));
        EXPECT_EQ(bulk.keys()(i, 3), loop.keys()(i, 3));
    }
}

TEST(KvCache, DimensionMismatchDies)
{
    KvCache c(kDim);
    std::vector<float> wrong(kDim + 1, 0.0f);
    std::vector<float> right(kDim, 0.0f);
    EXPECT_DEATH({ c.append(wrong, right); }, "dim mismatch");
    EXPECT_DEATH(
        { c.setItqRotation(Matrix::identity(kDim + 1)); },
        "headDim");
}

TEST(KvCache, RotationQueryWithoutInstallDies)
{
    KvCache c(kDim);
    EXPECT_DEATH({ c.itqRotation(); }, "no ITQ rotation");
}

} // namespace
} // namespace longsight

/**
 * @file
 * Batch-kernel parity tests: every compiled-in backend (scalar, and
 * AVX2/NEON when the host supports them) must produce BIT-IDENTICAL
 * results — concordance counts, survivor sets, PFU bitmaps, and
 * scaled dot products — across awkward shapes: dims that are not a
 * multiple of 64, row counts that are not a multiple of the vector
 * width, nonzero begin offsets, and empty regions. Dot kernels are
 * additionally checked bit-for-bit against the pre-existing scalar
 * linalg dot(), which defines the accumulation contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/kernels.hh"
#include "tensor/linalg.hh"
#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

/** Backends available on this host (scalar always is). */
std::vector<KernelBackend>
availableBackends()
{
    std::vector<KernelBackend> out{KernelBackend::Scalar};
    for (auto b : {KernelBackend::Avx2, KernelBackend::Neon})
        if (kernelBackendAvailable(b))
            out.push_back(b);
    return out;
}

/** Force a backend for the current scope, restoring on exit. */
class ScopedBackend
{
  public:
    explicit ScopedBackend(KernelBackend b) : prev_(activeKernelBackend())
    {
        setKernelBackend(b);
    }
    ~ScopedBackend() { setKernelBackend(prev_); }

  private:
    KernelBackend prev_;
};

struct Shape
{
    size_t dim;
    size_t rows;
};

const Shape kShapes[] = {
    {1, 5},    {37, 13},  {64, 1},    {64, 129}, {100, 77},
    {128, 4},  {128, 130}, {129, 33}, {200, 50}, {256, 257},
};

TEST(Kernels, BackendPlumbing)
{
    EXPECT_TRUE(kernelBackendAvailable(KernelBackend::Scalar));
    const KernelBackend best = detectKernelBackend();
    EXPECT_TRUE(kernelBackendAvailable(best));
    EXPECT_STREQ(kernelBackendName(KernelBackend::Scalar), "scalar");
    EXPECT_STREQ(kernelBackendName(KernelBackend::Avx2), "avx2");
    EXPECT_STREQ(kernelBackendName(KernelBackend::Neon), "neon");
    const KernelBackend prev = activeKernelBackend();
    setKernelBackend(KernelBackend::Scalar);
    EXPECT_EQ(activeKernelBackend(), KernelBackend::Scalar);
    setKernelBackend(prev);
    EXPECT_EQ(activeKernelBackend(), prev);
}

TEST(Kernels, ConcordanceMatchesSignBitsAllBackends)
{
    Rng rng(101);
    for (const Shape &sh : kShapes) {
        const auto flat = rng.gaussianVec(sh.rows * sh.dim);
        const SignMatrix m = SignMatrix::pack(flat.data(), sh.rows, sh.dim);
        const auto qv = rng.gaussianVec(sh.dim);
        const SignBits q(qv.data(), sh.dim);

        std::vector<int32_t> ref(sh.rows);
        for (size_t i = 0; i < sh.rows; ++i)
            ref[i] = q.concordance(m.extract(i));

        for (KernelBackend b : availableBackends()) {
            ScopedBackend guard(b);
            std::vector<int32_t> got(sh.rows, -1);
            batchConcordance(q, m, 0, sh.rows, got.data());
            EXPECT_EQ(got, ref) << kernelBackendName(b) << " dim "
                                << sh.dim << " rows " << sh.rows;
        }
    }
}

TEST(Kernels, ConcordanceSubrange)
{
    Rng rng(102);
    const size_t dim = 128, rows = 200;
    const auto flat = rng.gaussianVec(rows * dim);
    const SignMatrix m = SignMatrix::pack(flat.data(), rows, dim);
    const auto qv = rng.gaussianVec(dim);
    const SignBits q(qv.data(), dim);

    const size_t begin = 17, end = 161;
    std::vector<int32_t> ref(end - begin);
    for (size_t i = begin; i < end; ++i)
        ref[i - begin] = q.concordance(m.extract(i));

    for (KernelBackend b : availableBackends()) {
        ScopedBackend guard(b);
        std::vector<int32_t> got(end - begin, -1);
        batchConcordance(q, m, begin, end, got.data());
        EXPECT_EQ(got, ref) << kernelBackendName(b);
    }
}

TEST(Kernels, ScanSurvivorsBitIdenticalAcrossBackends)
{
    Rng rng(103);
    for (const Shape &sh : kShapes) {
        const auto flat = rng.gaussianVec(sh.rows * sh.dim);
        const SignMatrix m = SignMatrix::pack(flat.data(), sh.rows, sh.dim);
        const auto qv = rng.gaussianVec(sh.dim);
        const SignBits q(qv.data(), sh.dim);

        // Sweep thresholds from keep-everything to keep-nothing.
        const int dim_i = static_cast<int>(sh.dim);
        for (int th : {0, dim_i / 3, dim_i / 2, 2 * dim_i / 3, dim_i + 1}) {
            std::vector<uint32_t> ref;
            for (size_t i = 0; i < sh.rows; ++i)
                if (q.concordance(m.extract(i)) >= th)
                    ref.push_back(static_cast<uint32_t>(i));

            for (KernelBackend b : availableBackends()) {
                ScopedBackend guard(b);
                std::vector<uint32_t> got;
                const size_t n =
                    batchConcordanceScan(q, m, 0, sh.rows, th, got);
                EXPECT_EQ(n, got.size());
                EXPECT_EQ(got, ref)
                    << kernelBackendName(b) << " dim " << sh.dim
                    << " rows " << sh.rows << " th " << th;
            }
        }
    }
}

TEST(Kernels, ScanAppendsWithOffsets)
{
    Rng rng(104);
    const size_t dim = 64, rows = 300;
    const auto flat = rng.gaussianVec(rows * dim);
    const SignMatrix m = SignMatrix::pack(flat.data(), rows, dim);
    const auto qv = rng.gaussianVec(dim);
    const SignBits q(qv.data(), dim);
    const int th = 36;
    const size_t begin = 43, end = 291;

    std::vector<uint32_t> ref{9999}; // scan must append, not clear
    for (size_t i = begin; i < end; ++i)
        if (q.concordance(m.extract(i)) >= th)
            ref.push_back(static_cast<uint32_t>(i));

    for (KernelBackend b : availableBackends()) {
        ScopedBackend guard(b);
        std::vector<uint32_t> got{9999};
        batchConcordanceScan(q, m, begin, end, th, got);
        EXPECT_EQ(got, ref) << kernelBackendName(b);
    }
}

TEST(Kernels, EmptyRegionYieldsNothing)
{
    Rng rng(105);
    const size_t dim = 128;
    const auto flat = rng.gaussianVec(10 * dim);
    const SignMatrix m = SignMatrix::pack(flat.data(), 10, dim);
    const auto qv = rng.gaussianVec(dim);
    const SignBits q(qv.data(), dim);
    for (KernelBackend b : availableBackends()) {
        ScopedBackend guard(b);
        std::vector<uint32_t> got;
        EXPECT_EQ(batchConcordanceScan(q, m, 4, 4, 0, got), 0u);
        EXPECT_TRUE(got.empty());
        uint64_t bits[2] = {~0ULL, ~0ULL};
        concordanceBitmap(q, m, 4, 0, 0, bits);
        EXPECT_EQ(bits[0], 0u);
        EXPECT_EQ(bits[1], 0u);
    }
}

TEST(Kernels, BitmapAgreesWithScan)
{
    Rng rng(106);
    for (uint32_t num_keys : {1u, 63u, 64u, 65u, 127u, 128u}) {
        const size_t dim = 100, rows = 140;
        const auto flat = rng.gaussianVec(rows * dim);
        const SignMatrix m = SignMatrix::pack(flat.data(), rows, dim);
        const auto qv = rng.gaussianVec(dim);
        const SignBits q(qv.data(), dim);
        const int th = 52;
        const size_t begin = 7;

        for (KernelBackend b : availableBackends()) {
            ScopedBackend guard(b);
            std::vector<uint32_t> surv;
            batchConcordanceScan(q, m, begin, begin + num_keys, th, surv);
            uint64_t bits[2];
            concordanceBitmap(q, m, begin, num_keys, th, bits);
            for (uint32_t j = 0; j < num_keys; ++j) {
                const bool in_bitmap = (bits[j >> 6] >> (j & 63)) & 1;
                const bool in_scan = std::binary_search(
                    surv.begin(), surv.end(),
                    static_cast<uint32_t>(begin + j));
                EXPECT_EQ(in_bitmap, in_scan)
                    << kernelBackendName(b) << " keys " << num_keys
                    << " j " << j;
            }
            // No stray bits above num_keys.
            if (num_keys < 64) {
                EXPECT_EQ(bits[0] >> num_keys, 0u);
            }
            if (num_keys <= 64) {
                EXPECT_EQ(bits[1], 0u);
            } else if (num_keys < 128) {
                EXPECT_EQ(bits[1] >> (num_keys - 64), 0u);
            }
        }
    }
}

TEST(Kernels, DotRangeBitIdenticalToLinalgDot)
{
    Rng rng(107);
    for (const Shape &sh : kShapes) {
        Matrix keys(sh.rows, sh.dim, rng.gaussianVec(sh.rows * sh.dim));
        const auto qv = rng.gaussianVec(sh.dim);
        const float scale = 0.125f;

        std::vector<float> ref(sh.rows);
        for (size_t i = 0; i < sh.rows; ++i)
            ref[i] = dot(qv.data(), keys.row(i), sh.dim) * scale;

        for (KernelBackend b : availableBackends()) {
            ScopedBackend guard(b);
            std::vector<float> got(sh.rows, -1e30f);
            batchDotScaleRange(qv.data(), keys, 0, sh.rows, scale,
                               got.data());
            for (size_t i = 0; i < sh.rows; ++i) {
                // Bit-identical, not approximately equal.
                EXPECT_EQ(got[i], ref[i])
                    << kernelBackendName(b) << " dim " << sh.dim
                    << " row " << i;
            }
        }
    }
}

TEST(Kernels, DotAtGathersArbitraryIndices)
{
    Rng rng(108);
    const size_t dim = 128, rows = 250;
    Matrix keys(rows, dim, rng.gaussianVec(rows * dim));
    const auto qv = rng.gaussianVec(dim);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));

    // Unsorted, duplicated, awkward-count index list.
    std::vector<uint32_t> idx;
    for (size_t i = 0; i < 101; ++i)
        idx.push_back(static_cast<uint32_t>((i * 37 + 11) % rows));
    idx.push_back(idx.front());

    std::vector<float> ref(idx.size());
    for (size_t j = 0; j < idx.size(); ++j)
        ref[j] = dot(qv.data(), keys.row(idx[j]), dim) * scale;

    for (KernelBackend b : availableBackends()) {
        ScopedBackend guard(b);
        std::vector<float> got(idx.size(), -1e30f);
        batchDotScaleAt(qv.data(), keys, idx.data(), idx.size(), scale,
                        got.data());
        for (size_t j = 0; j < idx.size(); ++j)
            EXPECT_EQ(got[j], ref[j])
                << kernelBackendName(b) << " j " << j;
    }
}

TEST(Kernels, DotHandlesEmptyAndTinyCounts)
{
    Rng rng(109);
    const size_t dim = 64;
    Matrix keys(8, dim, rng.gaussianVec(8 * dim));
    const auto qv = rng.gaussianVec(dim);
    for (KernelBackend b : availableBackends()) {
        ScopedBackend guard(b);
        batchDotScaleAt(qv.data(), keys, nullptr, 0, 1.0f, nullptr);
        batchDotScaleRange(qv.data(), keys, 3, 3, 1.0f, nullptr);
        // Counts 1..5 exercise the 4-key-group tail handling.
        for (size_t count = 1; count <= 5; ++count) {
            std::vector<float> got(count, -1e30f);
            batchDotScaleRange(qv.data(), keys, 1, 1 + count, 2.0f,
                               got.data());
            for (size_t i = 0; i < count; ++i)
                EXPECT_EQ(got[i],
                          dot(qv.data(), keys.row(1 + i), dim) * 2.0f);
        }
    }
}

} // namespace
} // namespace longsight

/**
 * @file
 * Multi-query (GQA query group) kernel parity tests. The contract
 * under test is the whole point of the grouped scan layer: for every
 * compiled-in backend, batchScanMulti, concordanceBitmapMulti, and
 * batchScoreSelectMulti must produce BIT-IDENTICAL per-query results
 * to running the single-query kernel once per query — across awkward
 * dims, row counts, thresholds, subranges, query counts (including
 * one query, non-multiples of the SIMD chunk width, and more than
 * kMaxScanQueries to force driver chunking), and empty regions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/kernels.hh"
#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"
#include "tensor/tensor.hh"
#include "tensor/topk_heap.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

/** Backends available on this host (scalar always is). */
std::vector<KernelBackend>
availableBackends()
{
    std::vector<KernelBackend> out{KernelBackend::Scalar};
    for (auto b : {KernelBackend::Avx2, KernelBackend::Neon})
        if (kernelBackendAvailable(b))
            out.push_back(b);
    return out;
}

/** Force a backend for the current scope, restoring on exit. */
class ScopedBackend
{
  public:
    explicit ScopedBackend(KernelBackend b) : prev_(activeKernelBackend())
    {
        setKernelBackend(b);
    }
    ~ScopedBackend() { setKernelBackend(prev_); }

  private:
    KernelBackend prev_;
};

struct Shape
{
    size_t dim;
    size_t rows;
};

const Shape kShapes[] = {
    {1, 5},     {37, 13},  {64, 129}, {100, 77},
    {128, 130}, {129, 33}, {200, 50},
};

/** A group of queries plus their packed filter-space sign words. */
struct QueryGroup
{
    Matrix q;
    std::vector<uint64_t> words;
    std::vector<SignBits> bits;
};

QueryGroup
makeQueries(Rng &rng, size_t nq, size_t dim, size_t wpr)
{
    QueryGroup g;
    g.q.resize(nq, dim);
    g.words.resize(nq * wpr);
    for (size_t i = 0; i < nq; ++i) {
        const auto v = rng.gaussianVec(dim);
        g.q.setRow(i, v.data());
        packSigns(v.data(), dim, g.words.data() + i * wpr);
        g.bits.emplace_back(v.data(), dim);
    }
    return g;
}

TEST(MultiScan, SurvivorsMatchSingleQueryAllBackends)
{
    Rng rng(201);
    for (const Shape &sh : kShapes) {
        const auto flat = rng.gaussianVec(sh.rows * sh.dim);
        const SignMatrix m =
            SignMatrix::pack(flat.data(), sh.rows, sh.dim);
        const int dim_i = static_cast<int>(sh.dim);
        for (size_t nq : {size_t{1}, size_t{3}, size_t{4}, size_t{16}}) {
            const QueryGroup g = makeQueries(rng, nq, sh.dim,
                                             m.wordsPerRow());
            for (int th : {0, dim_i / 3, dim_i / 2 + 2, dim_i + 1}) {
                // Per-query reference: the (already cross-verified)
                // single-query scan on the same backend.
                for (KernelBackend b : availableBackends()) {
                    ScopedBackend guard(b);
                    std::vector<std::vector<uint32_t>> ref(nq);
                    for (size_t i = 0; i < nq; ++i)
                        batchConcordanceScan(g.bits[i], m, 0, sh.rows,
                                             th, ref[i]);
                    // Awkward stride: wider than the row count.
                    const size_t stride = sh.rows + 3;
                    std::vector<uint32_t> got(nq * stride, 0xdeadu);
                    std::vector<size_t> counts(nq, 777);
                    batchScanMulti(g.words.data(), nq, m, 0, sh.rows,
                                   th, got.data(), stride,
                                   counts.data());
                    for (size_t i = 0; i < nq; ++i) {
                        ASSERT_EQ(counts[i], ref[i].size())
                            << kernelBackendName(b) << " dim " << sh.dim
                            << " nq " << nq << " th " << th << " q "
                            << i;
                        for (size_t j = 0; j < counts[i]; ++j)
                            ASSERT_EQ(got[i * stride + j], ref[i][j])
                                << kernelBackendName(b) << " q " << i
                                << " j " << j;
                    }
                }
            }
        }
    }
}

TEST(MultiScan, SubrangeKeepsAbsoluteIndices)
{
    Rng rng(202);
    const size_t dim = 128, rows = 300;
    const auto flat = rng.gaussianVec(rows * dim);
    const SignMatrix m = SignMatrix::pack(flat.data(), rows, dim);
    const QueryGroup g = makeQueries(rng, 4, dim, m.wordsPerRow());
    const int th = 66;
    const size_t begin = 17, end = 261;
    for (KernelBackend b : availableBackends()) {
        ScopedBackend guard(b);
        std::vector<std::vector<uint32_t>> ref(4);
        for (size_t i = 0; i < 4; ++i)
            batchConcordanceScan(g.bits[i], m, begin, end, th, ref[i]);
        const size_t stride = end - begin;
        std::vector<uint32_t> got(4 * stride);
        std::vector<size_t> counts(4);
        batchScanMulti(g.words.data(), 4, m, begin, end, th, got.data(),
                       stride, counts.data());
        for (size_t i = 0; i < 4; ++i) {
            ASSERT_EQ(counts[i], ref[i].size()) << kernelBackendName(b);
            for (size_t j = 0; j < counts[i]; ++j) {
                ASSERT_EQ(got[i * stride + j], ref[i][j]);
                ASSERT_GE(got[i * stride + j], begin);
            }
        }
    }
}

TEST(MultiScan, ChunksBeyondMaxQueries)
{
    // 19 queries forces the public driver to split into
    // kMaxScanQueries-sized streaming chunks; results must be
    // indistinguishable from one pass per query.
    Rng rng(203);
    const size_t dim = 128, rows = 200, nq = kMaxScanQueries + 3;
    const auto flat = rng.gaussianVec(rows * dim);
    const SignMatrix m = SignMatrix::pack(flat.data(), rows, dim);
    const QueryGroup g = makeQueries(rng, nq, dim, m.wordsPerRow());
    const int th = 64;
    for (KernelBackend b : availableBackends()) {
        ScopedBackend guard(b);
        std::vector<uint32_t> got(nq * rows);
        std::vector<size_t> counts(nq);
        batchScanMulti(g.words.data(), nq, m, 0, rows, th, got.data(),
                       rows, counts.data());
        for (size_t i = 0; i < nq; ++i) {
            std::vector<uint32_t> ref;
            batchConcordanceScan(g.bits[i], m, 0, rows, th, ref);
            ASSERT_EQ(counts[i], ref.size())
                << kernelBackendName(b) << " q " << i;
            for (size_t j = 0; j < ref.size(); ++j)
                ASSERT_EQ(got[i * rows + j], ref[j]);
        }
    }
}

TEST(MultiScan, EmptyRangeZeroesCounts)
{
    Rng rng(204);
    const size_t dim = 64, rows = 40;
    const auto flat = rng.gaussianVec(rows * dim);
    const SignMatrix m = SignMatrix::pack(flat.data(), rows, dim);
    const QueryGroup g = makeQueries(rng, 5, dim, m.wordsPerRow());
    for (KernelBackend b : availableBackends()) {
        ScopedBackend guard(b);
        std::vector<uint32_t> got(5 * rows, 0xdeadu);
        std::vector<size_t> counts(5, 777);
        batchScanMulti(g.words.data(), 5, m, 9, 9, 0, got.data(), rows,
                       counts.data());
        for (size_t i = 0; i < 5; ++i)
            EXPECT_EQ(counts[i], 0u) << kernelBackendName(b);
    }
}

TEST(BitmapMulti, MatchesSingleQueryBitmap)
{
    Rng rng(205);
    const size_t dim = 100, rows = 140;
    const auto flat = rng.gaussianVec(rows * dim);
    const SignMatrix m = SignMatrix::pack(flat.data(), rows, dim);
    const int th = 52;
    for (uint32_t num_keys : {1u, 63u, 64u, 65u, 127u, 128u}) {
        for (size_t nq : {size_t{1}, size_t{4}, size_t{16}}) {
            const QueryGroup g = makeQueries(rng, nq, dim,
                                             m.wordsPerRow());
            for (KernelBackend b : availableBackends()) {
                ScopedBackend guard(b);
                std::vector<uint64_t> got(2 * nq, ~uint64_t{0});
                concordanceBitmapMulti(g.words.data(), nq, m, 7,
                                       num_keys, th, got.data());
                for (size_t i = 0; i < nq; ++i) {
                    uint64_t ref[2];
                    concordanceBitmap(g.bits[i], m, 7, num_keys, th,
                                      ref);
                    EXPECT_EQ(got[i * 2 + 0], ref[0])
                        << kernelBackendName(b) << " keys " << num_keys
                        << " q " << i;
                    EXPECT_EQ(got[i * 2 + 1], ref[1])
                        << kernelBackendName(b) << " keys " << num_keys
                        << " q " << i;
                }
            }
        }
    }
}

TEST(ScoreSelectMulti, TopKMatchesSingleQueryAllBackends)
{
    Rng rng(206);
    for (const size_t dim : {size_t{64}, size_t{100}, size_t{128}}) {
        const size_t rows = 300;
        Matrix keys(rows, dim, rng.gaussianVec(rows * dim));
        const SignMatrix m = SignMatrix::pack(keys.data(), rows, dim);
        const float scale =
            1.0f / std::sqrt(static_cast<float>(dim));
        const int th = static_cast<int>(dim) / 2;
        const size_t wpr = m.wordsPerRow();
        const QueryGroup g = makeQueries(rng, 4, dim, wpr);
        for (const size_t k : {size_t{8}, size_t{64}, size_t{1000}}) {
            const size_t kcap = std::min(k, rows);
            for (KernelBackend b : availableBackends()) {
                ScopedBackend guard(b);
                std::vector<ScoredIndex> ref(4 * kcap);
                std::vector<size_t> ref_n(4);
                for (size_t i = 0; i < 4; ++i)
                    ref_n[i] = batchScoreSelect(
                        g.words.data() + i * wpr, m, 3, rows, th,
                        g.q.row(i), keys, scale, k,
                        ref.data() + i * kcap);
                std::vector<ScoredIndex> got(4 * kcap);
                std::vector<size_t> got_n(4);
                std::vector<size_t> surv(4);
                batchScoreSelectMulti(g.words.data(), 4, m, 3, rows, th,
                                      g.q.row(0), g.q.cols(), keys,
                                      scale, k, got.data(), kcap,
                                      got_n.data(), surv.data());
                for (size_t i = 0; i < 4; ++i) {
                    ASSERT_EQ(got_n[i], ref_n[i])
                        << kernelBackendName(b) << " dim " << dim
                        << " k " << k << " q " << i;
                    EXPECT_GE(surv[i], got_n[i]);
                    for (size_t j = 0; j < got_n[i]; ++j) {
                        ASSERT_EQ(got[i * kcap + j].index,
                                  ref[i * kcap + j].index)
                            << kernelBackendName(b) << " q " << i
                            << " j " << j;
                        ASSERT_EQ(got[i * kcap + j].score,
                                  ref[i * kcap + j].score)
                            << kernelBackendName(b) << " q " << i
                            << " j " << j;
                    }
                }
            }
        }
    }
}

TEST(ScoreSelectMulti, SurvivorCountsMatchScan)
{
    Rng rng(207);
    const size_t dim = 128, rows = 256;
    Matrix keys(rows, dim, rng.gaussianVec(rows * dim));
    const SignMatrix m = SignMatrix::pack(keys.data(), rows, dim);
    const int th = 64;
    const QueryGroup g = makeQueries(rng, 4, dim, m.wordsPerRow());
    for (KernelBackend b : availableBackends()) {
        ScopedBackend guard(b);
        std::vector<ScoredIndex> out(4 * rows);
        std::vector<size_t> nsel(4), surv(4);
        batchScoreSelectMulti(g.words.data(), 4, m, 0, rows, th,
                              g.q.row(0), g.q.cols(), keys, 0.125f,
                              rows, out.data(), rows, nsel.data(),
                              surv.data());
        for (size_t i = 0; i < 4; ++i) {
            std::vector<uint32_t> ref;
            batchConcordanceScan(g.bits[i], m, 0, rows, th, ref);
            EXPECT_EQ(surv[i], ref.size()) << kernelBackendName(b);
            // k >= rows: the top-k IS the survivor set.
            EXPECT_EQ(nsel[i], ref.size()) << kernelBackendName(b);
        }
    }
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the §7.3.1 wire formats: request-descriptor round trips,
 * BF16 rounding behaviour, size accounting, and response-descriptor
 * capacity math.
 */

#include <gtest/gtest.h>

#include "drex/descriptors.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

RequestDescriptor
sampleDescriptor(Rng &rng)
{
    RequestDescriptor d;
    d.uid = 42;
    d.layer = 17;
    d.k = 512;
    d.numQueryHeads = 4;
    d.headDim = 64;
    d.thresholds = {10, 20, 30, 40, 50, 60, 70, 80};
    d.queries = Matrix(4, 64, rng.gaussianVec(4 * 64));
    // Pre-round to BF16 so serialization is lossless for the test.
    for (size_t i = 0; i < d.queries.size(); ++i)
        d.queries.data()[i] = toBf16(d.queries.data()[i]);
    return d;
}

TEST(Descriptors, RoundTrip)
{
    Rng rng(1);
    const RequestDescriptor d = sampleDescriptor(rng);
    const auto bytes = d.serialize();
    const RequestDescriptor back = RequestDescriptor::deserialize(bytes);
    EXPECT_EQ(back, d);
}

TEST(Descriptors, ByteSizeMatchesSerialization)
{
    Rng rng(2);
    const RequestDescriptor d = sampleDescriptor(rng);
    EXPECT_EQ(d.serialize().size(), d.byteSize());
    // Header (5 u32) + 8 thresholds + 4x64 BF16 queries.
    EXPECT_EQ(d.byteSize(), 20u + 32u + 512u);
}

TEST(Descriptors, Bf16RoundingIsIdempotent)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const float v = static_cast<float>(rng.gaussian(0.0, 10.0));
        const float r = toBf16(v);
        EXPECT_EQ(toBf16(r), r);
        // BF16 keeps ~3 significant decimal digits.
        if (v != 0.0f)
            EXPECT_NEAR(r / v, 1.0, 0.01);
    }
}

TEST(Descriptors, QueriesSurviveAsBf16)
{
    Rng rng(4);
    RequestDescriptor d = sampleDescriptor(rng);
    // Write full-precision values; the wire format rounds them.
    d.queries(0, 0) = 1.23456789f;
    const auto back = RequestDescriptor::deserialize(d.serialize());
    EXPECT_EQ(back.queries(0, 0), toBf16(1.23456789f));
}

TEST(Descriptors, TruncatedInputDies)
{
    Rng rng(5);
    auto bytes = sampleDescriptor(rng).serialize();
    bytes.resize(bytes.size() - 3);
    EXPECT_DEATH(
        { RequestDescriptor::deserialize(bytes); }, "descriptor");
}

TEST(Descriptors, ResponseLayoutMatchesPaperScale)
{
    // §7.3.1: "a list of 1,024 x H top Keys and Values".
    ResponseDescriptorLayout r;
    r.k = 1024;
    r.numKvHeads = 8;
    r.headDim = 128;
    EXPECT_EQ(r.entryBytes(), 4u + 4u + 256u);
    EXPECT_EQ(r.maxBytes(), 264ULL * 1024 * 8);
    // Must fit a plausible response buffer (a few MiB).
    EXPECT_LT(r.maxBytes(), 4ULL * 1024 * 1024);
}

TEST(Descriptors, EmptyThresholdsAllowed)
{
    RequestDescriptor d;
    d.numQueryHeads = 1;
    d.headDim = 8;
    d.queries = Matrix(1, 8);
    const auto back = RequestDescriptor::deserialize(d.serialize());
    EXPECT_TRUE(back.thresholds.empty());
    EXPECT_EQ(back.headDim, 8u);
}

} // namespace
} // namespace longsight

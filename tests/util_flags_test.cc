/**
 * @file
 * Tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "util/flags.hh"

namespace longsight {
namespace {

Flags
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv = {"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax)
{
    const Flags f = parse({"--count=42", "--name=widget"});
    EXPECT_EQ(f.getInt("count", 0), 42);
    EXPECT_EQ(f.getString("name", ""), "widget");
}

TEST(Flags, SpaceSyntax)
{
    const Flags f = parse({"--count", "7", "--ratio", "2.5"});
    EXPECT_EQ(f.getInt("count", 0), 7);
    EXPECT_DOUBLE_EQ(f.getDouble("ratio", 0.0), 2.5);
}

TEST(Flags, BareSwitchIsTrue)
{
    const Flags f = parse({"--verbose"});
    EXPECT_TRUE(f.getBool("verbose"));
    EXPECT_FALSE(f.getBool("quiet"));
}

TEST(Flags, ExplicitBooleans)
{
    const Flags f = parse({"--a=true", "--b=false", "--c=1", "--d=0"});
    EXPECT_TRUE(f.getBool("a"));
    EXPECT_FALSE(f.getBool("b"));
    EXPECT_TRUE(f.getBool("c"));
    EXPECT_FALSE(f.getBool("d"));
}

TEST(Flags, PositionalCollected)
{
    const Flags f = parse({"serve", "--users=3", "extra"});
    ASSERT_EQ(f.positional().size(), 2u);
    EXPECT_EQ(f.positional()[0], "serve");
    EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, DefaultsWhenAbsent)
{
    const Flags f = parse({});
    EXPECT_EQ(f.getInt("missing", -5), -5);
    EXPECT_EQ(f.getString("missing", "d"), "d");
    EXPECT_DOUBLE_EQ(f.getDouble("missing", 1.5), 1.5);
}

TEST(Flags, HasTracksPresence)
{
    const Flags f = parse({"--x=1"});
    EXPECT_TRUE(f.has("x"));
    EXPECT_FALSE(f.has("y"));
}

TEST(Flags, UnconsumedReportsTypos)
{
    const Flags f = parse({"--right=1", "--wrnog=2"});
    f.getInt("right", 0);
    const auto leftover = f.unconsumed();
    ASSERT_EQ(leftover.size(), 1u);
    EXPECT_EQ(leftover[0], "wrnog");
}

TEST(Flags, BadIntegerDies)
{
    const Flags f = parse({"--n=abc"});
    EXPECT_DEATH({ f.getInt("n", 0); }, "integer");
}

TEST(Flags, NegativeNumberAsValue)
{
    // "--n -3": -3 does not start with "--" so it binds as the value.
    const Flags f = parse({"--n", "-3"});
    EXPECT_EQ(f.getInt("n", 0), -3);
}

} // namespace
} // namespace longsight

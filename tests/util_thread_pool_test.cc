/**
 * @file
 * Tests for the parallel execution layer: parallelFor coverage,
 * exception propagation, nested calls, pool reuse, and the
 * bit-determinism contract — attention outputs and filter stats must
 * be identical for every thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/multi_head.hh"
#include "sim/decode_pipeline.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace longsight {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SerialPoolRunsInCallerOrder)
{
    ThreadPool pool(1);
    std::vector<size_t> order;
    pool.parallelFor(3, 8, [&](size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 5u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], 3 + i);
}

TEST(ThreadPool, EmptyRangeIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(5, 5, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [&](size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, PoolUsableAfterException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(
                     0, 16, [](size_t) { throw std::logic_error("x"); }),
                 std::logic_error);
    std::atomic<int> sum{0};
    pool.parallelFor(0, 64, [&](size_t) { ++sum; });
    EXPECT_EQ(sum.load(), 64);
}

TEST(ThreadPool, NestedParallelForCompletes)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(16 * 16);
    pool.parallelFor(0, 16, [&](size_t outer) {
        // Nested calls run serially inline on the worker; they must
        // neither deadlock nor skip indices.
        pool.parallelFor(0, 16, [&](size_t inner) {
            ++hits[outer * 16 + inner];
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyLoops)
{
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(0, 100, [&](size_t i) {
            sum += static_cast<long>(i);
        });
    EXPECT_EQ(sum.load(), 50L * (99 * 100 / 2));
}

TEST(ThreadPool, GlobalIsReconfigurable)
{
    ThreadPool::configureGlobal(2);
    EXPECT_EQ(ThreadPool::global().threads(), 2u);
    ThreadPool::configureGlobal(1);
    EXPECT_EQ(ThreadPool::global().threads(), 1u);
    ThreadPool::configureGlobal(0);
    EXPECT_GE(ThreadPool::global().threads(), 1u);
}

// --- Determinism across thread counts ------------------------------

LayerAttentionResult
computeLayerAt(unsigned threads)
{
    ThreadPool::configureGlobal(threads);
    const uint32_t kv_heads = 2, query_heads = 8, d = 64;
    LongSightConfig cfg;
    cfg.windowSize = 128;
    cfg.sinkTokens = 8;
    cfg.topK = 32;
    cfg.defaultThreshold = 16;
    MultiHeadLongSight mh(cfg, query_heads, kv_heads, d);

    std::vector<KvCache> caches;
    Rng rng(99);
    for (uint32_t h = 0; h < kv_heads; ++h) {
        caches.emplace_back(d);
        for (int i = 0; i < 700; ++i)
            caches.back().append(rng.gaussianVec(d), rng.gaussianVec(d));
    }
    Matrix queries(query_heads, d);
    for (uint32_t q = 0; q < query_heads; ++q)
        queries.setRow(q, rng.gaussianVec(d).data());
    return mh.compute(queries, caches);
}

TEST(ThreadPoolDeterminism, MultiHeadBitIdenticalAcrossThreadCounts)
{
    const auto ref = computeLayerAt(1);
    for (unsigned threads : {2u, 8u}) {
        const auto got = computeLayerAt(threads);
        ASSERT_EQ(got.perQuery.size(), ref.perQuery.size());
        for (size_t q = 0; q < ref.perQuery.size(); ++q) {
            EXPECT_EQ(got.perQuery[q].attended, ref.perQuery[q].attended)
                << "query " << q;
            ASSERT_EQ(got.perQuery[q].output.size(),
                      ref.perQuery[q].output.size());
            for (size_t i = 0; i < ref.perQuery[q].output.size(); ++i)
                EXPECT_EQ(got.perQuery[q].output[i],
                          ref.perQuery[q].output[i])
                    << "query " << q << " dim " << i;
        }
        EXPECT_EQ(got.stats.rawKeys, ref.stats.rawKeys);
        EXPECT_EQ(got.stats.survivorKeys, ref.stats.survivorKeys);
        EXPECT_EQ(got.stats.selectedKeys, ref.stats.selectedKeys);
        EXPECT_EQ(got.stats.evaluations, ref.stats.evaluations);
    }
    ThreadPool::configureGlobal(0);
}

std::vector<PipelineStepResult>
runPipelineAt(unsigned threads)
{
    ThreadPool::configureGlobal(threads);
    DrexConfig dcfg;
    dcfg.numKvHeads = 2;
    dcfg.numLayers = 2;
    dcfg.headDim = 64;
    DrexDevice dev(dcfg);

    PipelineConfig cfg;
    cfg.numLayers = 2;
    cfg.numQueryHeads = 4;
    cfg.numKvHeads = 2;
    cfg.headDim = 64;
    cfg.hybrid.windowSize = 256;
    cfg.hybrid.sinkTokens = 8;
    cfg.hybrid.topK = 64;
    cfg.hybrid.defaultThreshold = 24;
    cfg.trainItq = true;
    DecodePipeline pipe(cfg, dev, 0);
    pipe.prefill(900);
    std::vector<PipelineStepResult> steps;
    for (int i = 0; i < 4; ++i)
        steps.push_back(pipe.decodeStep());
    return steps;
}

TEST(ThreadPoolDeterminism, PipelineBitIdenticalAcrossThreadCounts)
{
    const auto ref = runPipelineAt(1);
    const auto par = runPipelineAt(8);
    ASSERT_EQ(par.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(par[i].offloadsIssued, ref[i].offloadsIssued);
        EXPECT_EQ(par[i].tokensFlushed, ref[i].tokensFlushed);
        EXPECT_EQ(par[i].deviceMatchedSoftware,
                  ref[i].deviceMatchedSoftware);
        EXPECT_EQ(par[i].minRetainedMass, ref[i].minRetainedMass)
            << "step " << i;
    }
    ThreadPool::configureGlobal(0);
}

} // namespace
} // namespace longsight

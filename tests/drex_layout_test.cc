/**
 * @file
 * Tests for the §7.3 data layout: address encode/decode round trips,
 * Key Block / Context Slice / User Partition placement invariants,
 * channel striping, and the capacity formulas.
 */

#include <gtest/gtest.h>

#include <set>

#include "drex/layout.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

DataLayout
layout8b()
{
    return DataLayout(DrexGeometry{}, LpddrTimings{}, 8, 32, 128);
}

TEST(Layout, KeysPerGroupIs1024)
{
    // 128 keys per block x 8 channels (§7.3.3).
    EXPECT_EQ(layout8b().keysPerGroup(), 1024u);
}

TEST(Layout, SliceCapacityIs131072)
{
    // 1024 x 128 banks (§7.3.3).
    EXPECT_EQ(layout8b().maxTokensPerSlice(), 131072u);
}

TEST(Layout, SignObjectFitsOneBankRowFor128Dim)
{
    const DataLayout l = layout8b();
    // 128 keys x 128 dims / 8 = 2048 B = exactly one LPDDR5X row.
    EXPECT_EQ(l.signBytesPerBlock(), 2048u);
    EXPECT_EQ(l.signRowsPerGroup(), 1u);
}

TEST(Layout, AddressRoundTrip)
{
    const DataLayout l = layout8b();
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        DrexAddress a;
        a.package = static_cast<uint32_t>(rng.below(8));
        a.channel = static_cast<uint32_t>(rng.below(8));
        a.bank = static_cast<uint32_t>(rng.below(128));
        a.row = rng.below(LpddrTimings{}.rowsPerBank());
        a.column = static_cast<uint32_t>(rng.below(2048));
        EXPECT_EQ(l.decodeAddress(l.encodeAddress(a)), a);
    }
}

TEST(Layout, ContiguousAddressesMapToColumnsFirst)
{
    const DataLayout l = layout8b();
    const DrexAddress a0 = l.decodeAddress(0);
    const DrexAddress a1 = l.decodeAddress(1);
    EXPECT_EQ(a0.column + 1, a1.column);
    EXPECT_EQ(a0.row, a1.row);
    EXPECT_EQ(a0.bank, a1.bank);
    // Crossing a row boundary bumps the row, not the bank.
    const DrexAddress a2048 = l.decodeAddress(2048);
    EXPECT_EQ(a2048.column, 0u);
    EXPECT_EQ(a2048.row, 1u);
    EXPECT_EQ(a2048.bank, 0u);
}

TEST(Layout, PlaceAssignsGroupBank)
{
    const DataLayout l = layout8b();
    // Token 0 -> group 0 / bank 0; token 1024 -> group 1 / bank 1.
    EXPECT_EQ(l.place(0, 0, 0, 0).bank, 0u);
    EXPECT_EQ(l.place(0, 0, 0, 1024).bank, 1u);
    EXPECT_EQ(l.place(0, 0, 0, 1024).group, 1u);
    // Group wraps at 128 banks.
    EXPECT_EQ(l.place(0, 0, 0, 128 * 1024).bank, 0u);
}

TEST(Layout, SignChannelCyclesWithinGroup)
{
    const DataLayout l = layout8b();
    std::set<uint32_t> channels;
    for (uint64_t t = 0; t < 1024; t += 128)
        channels.insert(l.place(0, 0, 0, t).signChannel);
    EXPECT_EQ(channels.size(), 8u) << "all 8 channels hold sign blocks";
}

TEST(Layout, IndexInBlockCovers0To127)
{
    const DataLayout l = layout8b();
    for (uint64_t t = 0; t < 128; ++t)
        EXPECT_EQ(l.place(0, 0, 0, t).indexInBlock, t);
    EXPECT_EQ(l.place(0, 0, 0, 128).indexInBlock, 0u);
}

TEST(Layout, LayersDoNotOverlapRows)
{
    const DataLayout l = layout8b();
    const TokenPlace l0 = l.place(0, 0, 0, 0);
    const TokenPlace l1 = l.place(0, 1, 0, 0);
    EXPECT_EQ(l1.signRow - l0.signRow, l.rowsPerLayerGroup());
    // Sign, key, value regions of one layer are disjoint.
    EXPECT_LT(l0.signRow, l0.keyRow);
    EXPECT_LT(l0.keyRow, l0.valueRow);
    EXPECT_LE(l0.valueRow + l.valueRowsPerGroup(), l1.signRow);
}

TEST(Layout, HeadsMapToDistinctPackages)
{
    const DataLayout l = layout8b();
    std::set<uint32_t> pkgs;
    for (uint32_t h = 0; h < 8; ++h)
        pkgs.insert(l.packageFor(0, h));
    EXPECT_EQ(pkgs.size(), 8u) << "8 KV heads spread over 8 packages";
}

TEST(Layout, UsersRotatePackages)
{
    const DataLayout l = layout8b();
    EXPECT_NE(l.packageFor(0, 0), l.packageFor(1, 0));
}

TEST(Layout, PackagesForContextMatchesPaperFormula)
{
    const DataLayout l = layout8b();
    // Packages = h_kv * ceil(L / 131072) (§7.3.3).
    EXPECT_EQ(l.packagesForContext(131072), 8u);
    EXPECT_EQ(l.packagesForContext(131073), 16u);
    EXPECT_EQ(l.packagesForContext(1'000'000), 8u * 8u);
}

TEST(Layout, BytesPerTokenIncludesSignOverhead)
{
    const DataLayout l = layout8b();
    // Per (layer, head): K (256 B) + V (256 B) + signs (16 B).
    EXPECT_EQ(l.bytesPerToken(), (256u + 256u + 16u) * 8u * 32u);
}

TEST(Layout, SegmentSpillKeepsDistinctRows)
{
    const DataLayout l = layout8b();
    const uint64_t per_slice = l.maxTokensPerSlice();
    const TokenPlace seg0 = l.place(0, 0, 0, 0);
    const TokenPlace seg1 = l.place(0, 0, 0, per_slice);
    EXPECT_EQ(seg0.bank, seg1.bank);
    EXPECT_GT(seg1.signRow, seg0.signRow);
}

TEST(Layout, SmallHeadDimStillRowAligned)
{
    DataLayout l(DrexGeometry{}, LpddrTimings{}, 8, 16, 64);
    // 128 keys x 64 dims / 8 = 1024 B -> still 1 row (2048 B rows).
    EXPECT_EQ(l.signBytesPerBlock(), 1024u);
    EXPECT_EQ(l.signRowsPerGroup(), 1u);
    EXPECT_EQ(l.keyRowsPerGroup(), 8u); // 1024*128/8 = 16 KiB / 2 KiB
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the §7.3.3 partition manager: slot accounting, exact
 * admission, head spreading, temporal expansion, reclamation, and
 * agreement with the byte-level capacity approximation.
 */

#include <gtest/gtest.h>

#include <set>

#include "drex/drex_device.hh"
#include "drex/partition_manager.hh"

namespace longsight {
namespace {

DataLayout
layout8b()
{
    return DataLayout(DrexGeometry{}, LpddrTimings{}, 8, 32, 128);
}

TEST(Partition, SlotGeometryFor8B)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    // rowsPerLayerGroup = 1 + 16 + 16 = 33; x32 layers = 1056 rows;
    // 32768 rows per bank -> 31 slots per package, 248 device-wide.
    EXPECT_EQ(pm.slotsPerPackage(), 31u);
    EXPECT_EQ(pm.totalSlots(), 248u);
}

TEST(Partition, SlotsForContext)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    EXPECT_EQ(pm.slotsForContext(0), 0u);
    EXPECT_EQ(pm.slotsForContext(1), 8u);       // 1 segment x 8 heads
    EXPECT_EQ(pm.slotsForContext(131072), 8u);
    EXPECT_EQ(pm.slotsForContext(131073), 16u); // temporal expansion
    EXPECT_EQ(pm.slotsForContext(1'000'000), 64u);
}

TEST(Partition, ExactAdmissionMatchesPaperScale)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    // 1M tokens: 64 slots -> 3 users on a 248-slot device.
    EXPECT_EQ(pm.maxUsersExact(1'000'000), 3u);
    // 128K tokens: 8 slots -> 31 users.
    EXPECT_EQ(pm.maxUsersExact(131072), 31u);
}

TEST(Partition, ExactCapacityTracksByteApproximation)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    DrexConfig cfg;
    cfg.numKvHeads = 8;
    cfg.numLayers = 32;
    cfg.headDim = 128;
    DrexDevice dev(cfg);
    for (uint64_t ctx : {131072ull, 262144ull, 524288ull, 1'000'000ull}) {
        const uint32_t exact = pm.maxUsersExact(ctx);
        const uint32_t approx = dev.maxUsers(ctx);
        // The byte model ignores slot rounding; stay within 1 user or
        // 20 %, whichever is larger.
        EXPECT_NEAR(static_cast<double>(exact),
                    static_cast<double>(approx),
                    std::max(1.0, 0.2 * approx))
            << "ctx " << ctx;
    }
}

TEST(Partition, SingleUserHeadsSpreadAcrossPackages)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    const auto part = pm.allocate(0, 100'000);
    ASSERT_TRUE(part.has_value());
    ASSERT_EQ(part->grants.size(), 8u);
    std::set<uint32_t> pkgs;
    for (const auto &g : part->grants)
        pkgs.insert(g.package);
    EXPECT_EQ(pkgs.size(), 8u) << "one head per package";
}

TEST(Partition, NoSlotDoubleAssignment)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    std::set<std::pair<uint32_t, uint32_t>> seen;
    for (uint32_t u = 0; u < 10; ++u) {
        const auto part = pm.allocate(u, 200'000);
        ASSERT_TRUE(part.has_value()) << "user " << u;
        for (const auto &g : part->grants) {
            const auto key = std::make_pair(g.package, g.slot);
            EXPECT_TRUE(seen.insert(key).second)
                << "package " << g.package << " slot " << g.slot;
        }
    }
}

TEST(Partition, AdmissionFailsAtCapacityWithoutLeaks)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    uint32_t admitted = 0;
    while (pm.allocate(admitted, 1'000'000).has_value())
        ++admitted;
    EXPECT_EQ(admitted, pm.maxUsersExact(1'000'000));
    const uint32_t used_at_full = pm.usedSlots();
    // Failed allocation must not consume slots.
    EXPECT_FALSE(pm.allocate(999, 1'000'000).has_value());
    EXPECT_EQ(pm.usedSlots(), used_at_full);
}

TEST(Partition, ReleaseReclaimsEverything)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    pm.allocate(1, 500'000);
    pm.allocate(2, 500'000);
    EXPECT_GT(pm.usedSlots(), 0u);
    pm.release(1);
    pm.release(2);
    EXPECT_EQ(pm.usedSlots(), 0u);
    EXPECT_DOUBLE_EQ(pm.utilization(), 0.0);
    // Full capacity is available again.
    EXPECT_TRUE(pm.allocate(3, 1'000'000).has_value());
}

TEST(Partition, ReleaseUnknownUserIsNoop)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    pm.release(42);
    EXPECT_EQ(pm.usedSlots(), 0u);
}

TEST(Partition, LoadStaysBalanced)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    for (uint32_t u = 0; u < 12; ++u)
        pm.allocate(u, 131072);
    const auto &load = pm.packageLoad();
    const uint32_t mn = *std::min_element(load.begin(), load.end());
    const uint32_t mx = *std::max_element(load.begin(), load.end());
    EXPECT_LE(mx - mn, 1u) << "least-loaded placement keeps balance";
}

TEST(Partition, DoubleAllocateDies)
{
    const DataLayout l = layout8b();
    PartitionManager pm(l, 8, 32);
    pm.allocate(5, 1000);
    EXPECT_DEATH({ pm.allocate(5, 1000); }, "already has");
}

} // namespace
} // namespace longsight

/**
 * @file
 * Unit tests for the util substrate: deterministic RNG, running
 * statistics, histograms, and table rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/units.hh"

namespace longsight {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformBoundsRespected)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, BelowCoversRangeWithoutOverflow)
{
    Rng r(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const uint64_t v = r.below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMomentsReasonable)
{
    Rng r(13);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.add(r.gaussian());
    EXPECT_NEAR(s.mean(), 0.0, 0.05);
    EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(Rng, GaussianWithParams)
{
    Rng r(17);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.add(r.gaussian(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng r(19);
    const auto p = r.permutation(100);
    std::set<uint32_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic)
{
    Rng a(23);
    Rng fork1 = a.fork();
    Rng b(23);
    Rng fork2 = b.fork();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(fork1.next(), fork2.next());
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, KnownValues)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance: sum of squared deviations (32) over n-1 (7).
    EXPECT_DOUBLE_EQ(s.variance(), 32.0 / 7.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance)
{
    RunningStat s;
    s.add(3.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeMatchesCombinedStream)
{
    Rng r(29);
    RunningStat all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double v = r.gaussian(3.0, 1.5);
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsOutOfRangeSeparately)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0); // below lo: underflow, not the first bin
    h.add(15.0); // above hi: overflow, not the last bin
    h.add(5.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bins().front(), 0u);
    EXPECT_EQ(h.bins().back(), 0u);
}

TEST(Histogram, OverflowTailPushesHighQuantilesToHi)
{
    // 90 in-range samples plus a 10% tail far above hi_. Folding the
    // tail into the top bin used to report p99 as the top bin's
    // midpoint; the tail's rank must pin p99 at hi_ instead.
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 90; ++i)
        h.add(static_cast<double>(i));
    for (int i = 0; i < 10; ++i)
        h.add(1000.0);
    EXPECT_EQ(h.overflow(), 10u);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
    EXPECT_LT(h.quantile(0.5), 60.0);
    EXPECT_NE(h.summary().find("over=10"), std::string::npos);
}

TEST(Histogram, UnderflowRanksAtLo)
{
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(-5.0);
    for (int i = 0; i < 10; ++i)
        h.add(50.0);
    EXPECT_EQ(h.underflow(), 10u);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.0);
    EXPECT_NEAR(h.quantile(0.75), 55.0, 10.0);
}

TEST(Histogram, QuantileOrdering)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_LT(h.quantile(0.1), h.quantile(0.5));
    EXPECT_LT(h.quantile(0.5), h.quantile(0.9));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
}

TEST(Histogram, QuantileInterpolatesWithinBin)
{
    // Pin the exact interpolation rule: the (target - cum)-th sample
    // of a bin sits (rank + 0.5) / count of the way through the bin's
    // width. The old code snapped every in-bin quantile to the bin
    // midpoint, which for a single wide bin made p25 == p50 == p75.
    Histogram one(0.0, 10.0, 1);
    for (double x : {1.0, 3.0, 5.0, 7.0})
        one.add(x);
    EXPECT_DOUBLE_EQ(one.quantile(0.0), 1.25);
    EXPECT_DOUBLE_EQ(one.quantile(0.25), 3.75);
    EXPECT_DOUBLE_EQ(one.quantile(0.5), 6.25);
    EXPECT_DOUBLE_EQ(one.quantile(0.75), 8.75);

    // Two bins of four samples each (width 4): the rank walks smoothly
    // across the bin boundary instead of jumping midpoint-to-midpoint.
    Histogram two(0.0, 8.0, 2);
    for (double x : {0.5, 1.0, 2.0, 3.0, 4.5, 5.0, 6.0, 7.0})
        two.add(x);
    EXPECT_DOUBLE_EQ(two.quantile(0.125), 1.5); // 2nd of 4 in bin 0
    EXPECT_DOUBLE_EQ(two.quantile(0.5), 4.5);   // 1st of 4 in bin 1
    EXPECT_DOUBLE_EQ(two.quantile(1.0), 8.0);   // rank past the end: hi
}

TEST(Histogram, OneSamplePerBinReportsMidpoints)
{
    // A one-sample bin must still report its midpoint (frac = 0.5), so
    // finely-binned histograms keep their historical quantile values.
    Histogram h(0.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(10.0 * i + 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 55.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
}

TEST(Table, RendersAllRows)
{
    TextTable t("demo");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    t.addRow({"3", "4"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("3"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Units, Conversions)
{
    EXPECT_EQ(fromNanoseconds(1.0), kNanosecond);
    EXPECT_DOUBLE_EQ(toNanoseconds(kMicrosecond), 1000.0);
    EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
}

TEST(Units, TransferTime)
{
    // 1 GB at 1 GB/s = 1 s.
    EXPECT_EQ(transferTime(1'000'000'000ULL, 1.0), kSecond);
    // 64 B at 64 GB/s = 1 ns.
    EXPECT_EQ(transferTime(64, 64.0), kNanosecond);
}

} // namespace
} // namespace longsight

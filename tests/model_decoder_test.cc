/**
 * @file
 * End-to-end tests of the numeric transformer stack with swappable
 * attention: determinism, stability, cache growth, and the model-
 * level exactness property — a LongSight decoder with generous
 * settings produces the same hidden states as the dense decoder,
 * while aggressive filtering perturbs them only boundedly.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/decoder.hh"

namespace longsight {
namespace {

std::vector<float>
embedding(uint64_t step, uint32_t dim)
{
    // Deterministic pseudo-embedding stream.
    Rng rng(0xE0B0 + step);
    auto v = rng.gaussianVec(dim);
    return v;
}

double
maxAbs(const std::vector<float> &a, const std::vector<float> &b)
{
    double m = 0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
    return m;
}

TEST(Decoder, DeterministicForSeed)
{
    DecoderConfig cfg;
    SyntheticDecoder a(cfg, AttentionMode::Dense);
    SyntheticDecoder b(cfg, AttentionMode::Dense);
    for (int t = 0; t < 5; ++t) {
        const auto e = embedding(t, cfg.hiddenDim);
        EXPECT_EQ(a.step(e), b.step(e)) << "step " << t;
    }
}

TEST(Decoder, OutputsStayFinite)
{
    DecoderConfig cfg;
    SyntheticDecoder dec(cfg, AttentionMode::Dense);
    for (int t = 0; t < 64; ++t) {
        const auto out = dec.step(embedding(t, cfg.hiddenDim));
        double norm = 0;
        for (float v : out) {
            ASSERT_TRUE(std::isfinite(v)) << "step " << t;
            norm += static_cast<double>(v) * v;
        }
        EXPECT_LT(std::sqrt(norm), 1e4) << "step " << t;
        EXPECT_GT(std::sqrt(norm), 1e-4) << "step " << t;
    }
}

TEST(Decoder, CachesGrowOneTokenPerStep)
{
    DecoderConfig cfg;
    SyntheticDecoder dec(cfg, AttentionMode::Dense);
    EXPECT_EQ(dec.contextLength(), 0u);
    dec.step(embedding(0, cfg.hiddenDim));
    dec.step(embedding(1, cfg.hiddenDim));
    EXPECT_EQ(dec.contextLength(), 2u);
    EXPECT_EQ(dec.layerCaches(0).size(), cfg.numKvHeads);
    EXPECT_EQ(dec.layerCaches(cfg.numLayers - 1)[0].size(), 2u);
}

TEST(Decoder, LongSightWithGenerousSettingsMatchesDense)
{
    // The model-level exactness degeneration: window + unbounded k +
    // threshold 0 must reproduce the dense decoder's hidden states.
    DecoderConfig cfg;
    LongSightConfig hybrid;
    hybrid.windowSize = 16;
    hybrid.sinkTokens = 2;
    hybrid.topK = 100000;
    hybrid.defaultThreshold = 0;
    SyntheticDecoder dense(cfg, AttentionMode::Dense);
    SyntheticDecoder sparse(cfg, AttentionMode::LongSight, hybrid);
    for (int t = 0; t < 48; ++t) {
        const auto e = embedding(t, cfg.hiddenDim);
        const auto a = dense.step(e);
        const auto b = sparse.step(e);
        EXPECT_LT(maxAbs(a, b), 1e-3) << "step " << t;
    }
}

TEST(Decoder, AggressiveFilteringPerturbsBoundedly)
{
    DecoderConfig cfg;
    LongSightConfig hybrid;
    hybrid.windowSize = 8;
    hybrid.sinkTokens = 2;
    hybrid.topK = 8;
    hybrid.defaultThreshold = static_cast<int>(cfg.headDim / 2);
    SyntheticDecoder dense(cfg, AttentionMode::Dense);
    SyntheticDecoder sparse(cfg, AttentionMode::LongSight, hybrid);
    double total_rel = 0.0;
    const int steps = 48;
    for (int t = 0; t < steps; ++t) {
        const auto e = embedding(t, cfg.hiddenDim);
        const auto a = dense.step(e);
        const auto b = sparse.step(e);
        double diff = 0, ref = 0;
        for (size_t i = 0; i < a.size(); ++i) {
            diff += (static_cast<double>(a[i]) - b[i]) *
                (static_cast<double>(a[i]) - b[i]);
            ref += static_cast<double>(a[i]) * a[i];
        }
        total_rel += std::sqrt(diff / ref);
    }
    // Perturbed but not diverged: the residual stream dominates.
    EXPECT_GT(total_rel / steps, 0.0);
    EXPECT_LT(total_rel / steps, 0.5);
}

TEST(Decoder, ThresholdAffectsHiddenStates)
{
    DecoderConfig cfg;
    LongSightConfig gentle, harsh;
    gentle.windowSize = harsh.windowSize = 8;
    gentle.topK = harsh.topK = 8;
    gentle.defaultThreshold = 0;
    harsh.defaultThreshold = static_cast<int>(cfg.headDim);
    SyntheticDecoder a(cfg, AttentionMode::LongSight, gentle);
    SyntheticDecoder b(cfg, AttentionMode::LongSight, harsh);
    double diff = 0.0;
    for (int t = 0; t < 32; ++t) {
        const auto e = embedding(t, cfg.hiddenDim);
        diff += maxAbs(a.step(e), b.step(e));
    }
    EXPECT_GT(diff, 1e-4);
}

TEST(Decoder, ItqInstallationKeepsStackRunning)
{
    DecoderConfig cfg;
    LongSightConfig hybrid;
    hybrid.windowSize = 8;
    hybrid.topK = 16;
    SyntheticDecoder dec(cfg, AttentionMode::LongSight, hybrid);
    for (int t = 0; t < 40; ++t)
        dec.step(embedding(t, cfg.hiddenDim));
    // Install identity "rotations" mid-stream; outputs stay finite
    // and the rotated-sign path engages.
    for (uint32_t l = 0; l < cfg.numLayers; ++l)
        for (auto &cache : dec.layerCaches(l))
            cache.setItqRotation(Matrix::identity(cfg.headDim));
    const auto out = dec.step(embedding(40, cfg.hiddenDim));
    for (float v : out)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(RmsNorm, UnitRms)
{
    std::vector<float> x = {3.0f, -4.0f, 0.0f, 5.0f};
    const auto y = rmsNorm(x);
    double ms = 0;
    for (float v : y)
        ms += static_cast<double>(v) * v;
    EXPECT_NEAR(std::sqrt(ms / y.size()), 1.0, 1e-4);
}

} // namespace
} // namespace longsight

/**
 * @file
 * FilterBackend contract-parity suite: every filter family (SCF, INT8
 * estimation, centroid) must produce IDENTICAL survivor counts and
 * selected sets across kernel backends (scalar / AVX2 / NEON) and
 * across flat vs paged KV layouts — on a dimension that is not a
 * multiple of 64, over sub-ranges, and with empty sparse regions. Plus
 * the degeneracy pins: FilterKind::Scf must reproduce the raw
 * span-driver results (the pre-pluggable hybrid pipeline) bit-exactly,
 * and a centroid filter that keeps every block must equal exact top-k.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/filter_backend.hh"
#include "core/hybrid_attention.hh"
#include "core/kv_block_pool.hh"
#include "core/kv_cache.hh"
#include "core/multi_head.hh"
#include "tensor/kernels.hh"
#include "tensor/signbits.hh"
#include "tensor/topk_heap.hh"
#include "util/rng.hh"
#include "util/scratch_arena.hh"

namespace longsight {
namespace {

constexpr uint32_t kDim = 70; // deliberately NOT a multiple of 64

std::vector<KernelBackend>
availableBackends()
{
    std::vector<KernelBackend> out{KernelBackend::Scalar};
    for (auto b : {KernelBackend::Avx2, KernelBackend::Neon})
        if (kernelBackendAvailable(b))
            out.push_back(b);
    return out;
}

/** Two caches over one token stream: flat, and paged with an odd
 *  block size, both with the INT8 key arena enabled. */
struct CachePair
{
    KvBlockPool pool{kDim, 48, 64};
    KvCache flat{kDim};
    KvCache paged{pool};

    explicit CachePair(size_t n, uint64_t seed = 7)
    {
        Rng rng(seed);
        for (size_t i = 0; i < n; ++i) {
            const auto k = rng.gaussianVec(kDim);
            const auto v = rng.gaussianVec(kDim);
            flat.append(k.data(), v.data());
            paged.append(k.data(), v.data());
        }
        flat.enableKeyQuantization();
        paged.enableKeyQuantization();
    }
};

std::vector<float>
makeQueries(uint32_t nq, uint64_t seed = 11)
{
    Rng rng(seed);
    std::vector<float> out(nq * kDim);
    for (uint32_t g = 0; g < nq; ++g) {
        const auto q = rng.gaussianVec(kDim);
        std::copy(q.begin(), q.end(), out.begin() + g * kDim);
    }
    return out;
}

struct SelectResult
{
    size_t kcap = 0;
    std::vector<ScoredIndex> sel; // nq * kcap, valid up to nsel[g]
    std::vector<size_t> nsel, surv;
};

SelectResult
runFilter(FilterKind kind, const KvCache &cache,
          const std::vector<float> &queries, uint32_t nq, size_t lo,
          size_t hi, int threshold, float scale, size_t k,
          bool quantized_scoring, double keep_fraction = 0.25)
{
    SelectResult r;
    r.kcap = std::min(k, hi - lo);
    r.sel.assign(nq * r.kcap, ScoredIndex{0.0f, 0});
    r.nsel.assign(nq, 0);
    r.surv.assign(nq, 0);

    FilterArgs fa;
    fa.queries = queries.data();
    fa.queryStride = kDim;
    fa.numQueries = nq;
    fa.cache = &cache;
    fa.lo = lo;
    fa.hi = hi;
    fa.threshold = threshold;
    fa.scale = scale;
    fa.k = k;
    fa.kcap = r.kcap;
    fa.quantizedScoring = quantized_scoring;
    fa.centroidBlockTokens = 48; // odd on purpose, != pool block size
    fa.centroidKeepFraction = keep_fraction;

    ScratchFrame frame(ScratchArena::forThisThread());
    const FilterSelection out{r.sel.data(), r.nsel.data(), r.surv.data()};
    filterBackendFor(kind).select(fa, frame, out);
    return r;
}

void
expectSameSelection(const SelectResult &a, const SelectResult &b,
                    const char *what)
{
    ASSERT_EQ(a.kcap, b.kcap) << what;
    ASSERT_EQ(a.nsel, b.nsel) << what;
    EXPECT_EQ(a.surv, b.surv) << what;
    for (size_t g = 0; g < a.nsel.size(); ++g)
        for (size_t j = 0; j < a.nsel[g]; ++j) {
            const ScoredIndex &x = a.sel[g * a.kcap + j];
            const ScoredIndex &y = b.sel[g * b.kcap + j];
            EXPECT_EQ(x.index, y.index)
                << what << " query " << g << " slot " << j;
            EXPECT_EQ(0, std::memcmp(&x.score, &y.score, sizeof(float)))
                << what << " query " << g << " slot " << j;
        }
}

/** Every kind x kernel backend x flat/paged combination must agree
 *  with the scalar/flat reference, over a sub-range of an odd-sized
 *  context. */
void
expectParityAcrossBackends(FilterKind kind, bool quantized_scoring)
{
    const size_t n = 333;
    const uint32_t nq = 3;
    CachePair caches(n);
    const auto queries = makeQueries(nq);
    const size_t lo = 9, hi = n - 62; // sub-range with ragged edges
    const int th = kDim / 2 - 3;
    const float scale = 0.25f;
    const size_t k = 40;

    const KernelBackend prev = activeKernelBackend();
    setKernelBackend(KernelBackend::Scalar);
    const SelectResult ref = runFilter(kind, caches.flat, queries, nq, lo,
                                       hi, th, scale, k,
                                       quantized_scoring);
    // A sub-range must never select outside [lo, hi).
    for (uint32_t g = 0; g < nq; ++g)
        for (size_t j = 0; j < ref.nsel[g]; ++j) {
            EXPECT_GE(ref.sel[g * ref.kcap + j].index, lo);
            EXPECT_LT(ref.sel[g * ref.kcap + j].index, hi);
        }

    for (KernelBackend b : availableBackends()) {
        setKernelBackend(b);
        const SelectResult f = runFilter(kind, caches.flat, queries, nq,
                                         lo, hi, th, scale, k,
                                         quantized_scoring);
        const SelectResult p = runFilter(kind, caches.paged, queries, nq,
                                         lo, hi, th, scale, k,
                                         quantized_scoring);
        expectSameSelection(ref, f, kernelBackendName(b));
        expectSameSelection(ref, p, kernelBackendName(b));
    }
    setKernelBackend(prev);
}

TEST(FilterBackend, ScfParityAcrossKernelsAndLayouts)
{
    expectParityAcrossBackends(FilterKind::Scf, false);
}

TEST(FilterBackend, ScfQuantizedParityAcrossKernelsAndLayouts)
{
    expectParityAcrossBackends(FilterKind::Scf, true);
}

TEST(FilterBackend, Int8ParityAcrossKernelsAndLayouts)
{
    expectParityAcrossBackends(FilterKind::Int8, false);
}

TEST(FilterBackend, CentroidParityAcrossKernelsAndLayouts)
{
    expectParityAcrossBackends(FilterKind::Centroid, false);
}

/** FilterKind::Scf must equal the raw span-driver call the
 *  pre-pluggable hybrid pipeline issued — the "today's scan results"
 *  degeneracy knob. */
TEST(FilterBackend, ScfDegeneratesToRawSpanDriver)
{
    const size_t n = 290;
    const uint32_t nq = 4;
    CachePair caches(n);
    const auto queries = makeQueries(nq, 23);
    const size_t lo = 4, hi = n - 80;
    const int th = kDim / 2 - 1;
    const float scale = 0.11f;
    const size_t k = 32, kcap = std::min(k, hi - lo);

    for (const KvCache *cache : {&caches.flat, &caches.paged}) {
        // Pre-refactor call site: pack filter-space sign words, collect
        // spans, one fused scan->score->select driver call.
        const size_t wpr = (kDim + 63) / 64;
        std::vector<float> fq(kDim);
        std::vector<uint64_t> qwords(nq * wpr);
        for (uint32_t g = 0; g < nq; ++g) {
            cache->toFilterSpace(queries.data() + g * kDim, fq.data());
            packSigns(fq.data(), kDim, qwords.data() + g * wpr);
        }
        std::vector<ScanSpan> spans(cache->maxSpans(lo, hi));
        const size_t nspans = cache->collectSpans(lo, hi, spans.data());
        std::vector<ScoredIndex> want_sel(nq * kcap);
        std::vector<size_t> want_n(nq), want_surv(nq);
        batchScoreSelectMultiSpans(
            qwords.data(), nq, cache->filterSignsStorage(), spans.data(),
            nspans, th, queries.data(), kDim, cache->keysStorage(), scale,
            k, want_sel.data(), kcap, want_n.data(), want_surv.data());

        const SelectResult got = runFilter(FilterKind::Scf, *cache,
                                           queries, nq, lo, hi, th, scale,
                                           k, false);
        ASSERT_EQ(got.nsel, want_n);
        EXPECT_EQ(got.surv, want_surv);
        for (uint32_t g = 0; g < nq; ++g)
            for (size_t j = 0; j < want_n[g]; ++j) {
                EXPECT_EQ(got.sel[g * kcap + j].index,
                          want_sel[g * kcap + j].index);
                EXPECT_EQ(got.sel[g * kcap + j].score,
                          want_sel[g * kcap + j].score);
            }
    }
}

/** Keeping every centroid block degenerates to exact top-k over the
 *  whole region (every candidate is exact-scored). */
TEST(FilterBackend, CentroidKeepAllEqualsExactTopK)
{
    const size_t n = 300;
    const uint32_t nq = 2;
    CachePair caches(n);
    const auto queries = makeQueries(nq, 31);
    const size_t lo = 10, hi = n - 50;
    const float scale = 0.2f;
    const size_t k = 24, kcap = k;

    const SelectResult got =
        runFilter(FilterKind::Centroid, caches.flat, queries, nq, lo, hi,
                  0, scale, k, false, /*keep_fraction=*/1.0);
    for (uint32_t g = 0; g < nq; ++g) {
        // Exact reference: score the whole region with the same kernel
        // and keep the top k through the same heap.
        std::vector<uint32_t> ids(hi - lo);
        for (size_t i = lo; i < hi; ++i)
            ids[i - lo] = static_cast<uint32_t>(i);
        std::vector<float> scores(ids.size());
        batchDotScaleAt(queries.data() + g * kDim, caches.flat.keys(),
                        ids.data(), ids.size(), scale, scores.data());
        std::vector<ScoredIndex> heap(k);
        size_t hs = 0;
        for (size_t j = 0; j < ids.size(); ++j)
            hs = topk_heap::push(heap.data(), hs, k,
                                 ScoredIndex{scores[j], ids[j]});
        topk_heap::sortBestFirst(heap.data(), hs);

        ASSERT_EQ(got.nsel[g], hs);
        EXPECT_EQ(got.surv[g], hi - lo); // every token was a candidate
        for (size_t j = 0; j < hs; ++j) {
            EXPECT_EQ(got.sel[g * kcap + j].index, heap[j].index);
            EXPECT_EQ(got.sel[g * kcap + j].score, heap[j].score);
        }
    }
}

/** INT8 estimation retrieves exactly its selections: survivors ==
 *  selected, and estimates rank plausibly (top-1 exact vs estimated
 *  overlap is not required, ordering determinism is). */
TEST(FilterBackend, Int8SurvivorsEqualSelections)
{
    const size_t n = 260;
    const uint32_t nq = 3;
    CachePair caches(n);
    const auto queries = makeQueries(nq, 5);
    const SelectResult r = runFilter(FilterKind::Int8, caches.flat,
                                     queries, nq, 8, n - 70, 0, 0.3f, 16,
                                     false);
    for (uint32_t g = 0; g < nq; ++g) {
        EXPECT_EQ(r.surv[g], r.nsel[g]);
        EXPECT_EQ(r.nsel[g], 16u); // region >> k: heap always fills
        // Best-first contract: scores non-increasing.
        for (size_t j = 1; j < r.nsel[g]; ++j)
            EXPECT_GE(r.sel[g * r.kcap + j - 1].score,
                      r.sel[g * r.kcap + j].score);
    }
}

/** Through the full hybrid-attention stack: an empty sparse region
 *  (window covers the whole context) must behave identically for
 *  every filter kind, and each kind must run end-to-end. */
TEST(FilterBackend, HybridEmptyRegionIdenticalAcrossKinds)
{
    const size_t n = 100;
    const uint32_t kv_heads = 1, q_heads = 2;
    LongSightConfig base;
    base.windowSize = 256; // > n: no sparse region at all
    base.sinkTokens = 4;
    base.topK = 16;

    Rng rng(3);
    Matrix queries(q_heads, kDim);
    for (uint32_t q = 0; q < q_heads; ++q)
        queries.setRow(q, rng.gaussianVec(kDim).data());

    std::vector<LayerAttentionResult> results;
    for (FilterKind kind :
         {FilterKind::Scf, FilterKind::Int8, FilterKind::Centroid}) {
        CachePair caches(n);
        LongSightConfig cfg = base;
        cfg.filter = kind;
        MultiHeadLongSight mh(cfg, q_heads, kv_heads, kDim);
        std::vector<KvCache> layer;
        layer.emplace_back(caches.flat);
        results.push_back(mh.compute(queries, layer));
        for (uint32_t q = 0; q < q_heads; ++q) {
            EXPECT_FALSE(results.back().perQuery[q].usedSparse);
            EXPECT_EQ(results.back().perQuery[q].sparseSelected, 0u);
        }
    }
    for (size_t i = 1; i < results.size(); ++i) {
        ASSERT_EQ(results[0].outputs.size(), results[i].outputs.size());
        EXPECT_EQ(0, std::memcmp(results[0].outputs.data(),
                                 results[i].outputs.data(),
                                 results[0].outputs.size() *
                                     sizeof(float)));
    }
}

/** End-to-end hybrid runs for the estimation kinds: sane attended
 *  sets, flat == paged outputs byte-identical. */
TEST(FilterBackend, HybridFlatPagedIdenticalPerKind)
{
    const size_t n = 400;
    const uint32_t kv_heads = 2, q_heads = 4;
    LongSightConfig cfg;
    cfg.windowSize = 96;
    cfg.sinkTokens = 4;
    cfg.topK = 32;
    cfg.defaultThreshold = kDim / 2;

    Rng rng(17);
    Matrix queries(q_heads, kDim);
    for (uint32_t q = 0; q < q_heads; ++q)
        queries.setRow(q, rng.gaussianVec(kDim).data());

    for (FilterKind kind :
         {FilterKind::Scf, FilterKind::Int8, FilterKind::Centroid}) {
        cfg.filter = kind;
        MultiHeadLongSight mh(cfg, q_heads, kv_heads, kDim);
        KvBlockPool pool(kDim, 48, 64);
        std::vector<KvCache> flat, paged;
        Rng toks(9);
        for (uint32_t h = 0; h < kv_heads; ++h) {
            flat.emplace_back(kDim);
            paged.emplace_back(pool);
        }
        for (size_t i = 0; i < n; ++i) {
            const auto kv = toks.gaussianVec(kDim);
            const auto vv = toks.gaussianVec(kDim);
            for (uint32_t h = 0; h < kv_heads; ++h) {
                flat[h].append(kv.data(), vv.data());
                paged[h].append(kv.data(), vv.data());
            }
        }
        for (uint32_t h = 0; h < kv_heads; ++h) {
            flat[h].enableKeyQuantization();
            paged[h].enableKeyQuantization();
        }

        const LayerAttentionResult a = mh.compute(queries, flat);
        const LayerAttentionResult b = mh.compute(queries, paged);
        ASSERT_EQ(a.outputs.size(), b.outputs.size()) << int(kind);
        EXPECT_EQ(0, std::memcmp(a.outputs.data(), b.outputs.data(),
                                 a.outputs.size() * sizeof(float)))
            << filterKindName(kind);
        for (uint32_t q = 0; q < q_heads; ++q) {
            EXPECT_EQ(a.perQuery[q].attended, b.perQuery[q].attended)
                << filterKindName(kind);
            EXPECT_TRUE(a.perQuery[q].usedSparse);
            EXPECT_GT(a.perQuery[q].sparseSelected, 0u);
        }
    }
}

} // namespace
} // namespace longsight

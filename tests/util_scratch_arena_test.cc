/**
 * @file
 * Tests for the per-thread scratch arena: bump allocation and
 * alignment, frame nesting and rewind, growth across overflow blocks,
 * high-water coalescing back to a single block, and per-thread
 * instance isolation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>

#include "util/scratch_arena.hh"

namespace longsight {
namespace {

TEST(ScratchArena, AllocatesAlignedTypedSpans)
{
    ScratchArena arena;
    ScratchFrame frame(arena);
    auto *bytes = frame.alloc<uint8_t>(3);
    auto *doubles = frame.alloc<double>(4);
    auto *words = frame.alloc<uint64_t>(2);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(doubles) % alignof(double), 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(words) % alignof(uint64_t), 0u);
    // Spans are disjoint and writable end to end.
    std::memset(bytes, 0xa1, 3);
    for (int i = 0; i < 4; ++i)
        doubles[i] = i;
    words[0] = words[1] = ~uint64_t{0};
    EXPECT_EQ(doubles[3], 3.0);
    EXPECT_EQ(bytes[2], 0xa1);
}

TEST(ScratchArena, FrameRewindsUsage)
{
    ScratchArena arena;
    {
        ScratchFrame outer(arena);
        outer.alloc<float>(100);
        const size_t outer_used = arena.used();
        {
            ScratchFrame inner(arena);
            inner.alloc<float>(200);
            EXPECT_GT(arena.used(), outer_used);
        }
        EXPECT_EQ(arena.used(), outer_used);
    }
    EXPECT_EQ(arena.used(), 0u);
}

TEST(ScratchArena, RewoundMemoryIsReusedWithoutGrowth)
{
    ScratchArena arena;
    {
        ScratchFrame warmup(arena);
        warmup.alloc<float>(10000);
    }
    const uint64_t growths = arena.growths();
    const size_t cap = arena.capacity();
    for (int rep = 0; rep < 50; ++rep) {
        ScratchFrame frame(arena);
        auto *p = frame.alloc<float>(10000);
        p[0] = 1.0f;
        p[9999] = 2.0f;
    }
    EXPECT_EQ(arena.growths(), growths);
    EXPECT_EQ(arena.capacity(), cap);
}

TEST(ScratchArena, GrowsAcrossBlocksAndCoalesces)
{
    ScratchArena arena(1024);
    {
        ScratchFrame frame(arena);
        // Far beyond the initial block: must chain overflow blocks,
        // and every span must still be fully usable.
        for (int i = 0; i < 8; ++i) {
            auto *p = frame.alloc<uint64_t>(64 * 1024);
            p[0] = static_cast<uint64_t>(i);
            p[64 * 1024 - 1] = ~static_cast<uint64_t>(i);
        }
    }
    EXPECT_GT(arena.growths(), 0u);
    const size_t high = arena.highWater();
    EXPECT_GE(high, 8u * 64 * 1024 * sizeof(uint64_t));
    // After the full rewind the arena coalesced: the same load now
    // fits without any further growth.
    const uint64_t growths_after_coalesce = arena.growths();
    {
        ScratchFrame frame(arena);
        for (int i = 0; i < 8; ++i)
            frame.alloc<uint64_t>(64 * 1024);
    }
    EXPECT_EQ(arena.growths(), growths_after_coalesce);
    EXPECT_GE(arena.capacity(), high);
}

TEST(ScratchArena, HighWaterTracksPeakNotCurrent)
{
    ScratchArena arena;
    {
        ScratchFrame frame(arena);
        frame.alloc<uint8_t>(5000);
    }
    {
        ScratchFrame frame(arena);
        frame.alloc<uint8_t>(10);
    }
    EXPECT_GE(arena.highWater(), 5000u);
    EXPECT_EQ(arena.used(), 0u);
}

TEST(ScratchArena, PerThreadInstancesAreDistinct)
{
    ScratchArena *main_arena = &ScratchArena::forThisThread();
    ScratchArena *worker_arena = nullptr;
    std::thread t([&] { worker_arena = &ScratchArena::forThisThread(); });
    t.join();
    ASSERT_NE(worker_arena, nullptr);
    EXPECT_NE(main_arena, worker_arena);
    // And stable within a thread.
    EXPECT_EQ(main_arena, &ScratchArena::forThisThread());
}

} // namespace
} // namespace longsight

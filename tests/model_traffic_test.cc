/**
 * @file
 * Open-loop traffic generator: determinism for a seed, arrival-order
 * invariants, the statistical shape of both arrival processes
 * (Poisson mean gap, diurnal rate modulation), heavy-tailed request
 * sizes within clamps, and the interactive-priority mix.
 */

#include "model/traffic.hh"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace longsight {
namespace {

bool
sameTrace(const std::vector<ServingRequest> &a,
          const std::vector<ServingRequest> &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i].id != b[i].id || a[i].arrival != b[i].arrival ||
            a[i].promptLen != b[i].promptLen ||
            a[i].outputTokens != b[i].outputTokens ||
            a[i].priority != b[i].priority)
            return false;
    return true;
}

TEST(Traffic, DeterministicForSeed)
{
    TrafficConfig cfg;
    cfg.requests = 512;
    cfg.seed = 42;
    EXPECT_TRUE(sameTrace(generateTraffic(cfg), generateTraffic(cfg)));

    cfg.process = ArrivalProcess::Diurnal;
    EXPECT_TRUE(sameTrace(generateTraffic(cfg), generateTraffic(cfg)));
}

TEST(Traffic, SeedsProduceDistinctTraces)
{
    TrafficConfig a, b;
    a.requests = b.requests = 64;
    a.seed = 1;
    b.seed = 2;
    EXPECT_FALSE(sameTrace(generateTraffic(a), generateTraffic(b)));
}

TEST(Traffic, ArrivalsSortedIdsSequential)
{
    TrafficConfig cfg;
    cfg.requests = 256;
    cfg.process = ArrivalProcess::Diurnal;
    const auto trace = generateTraffic(cfg);
    ASSERT_EQ(trace.size(), 256u);
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].id, i);
        if (i)
            EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
    }
}

TEST(Traffic, PoissonMeanGapMatchesRate)
{
    TrafficConfig cfg;
    cfg.requests = 4000;
    cfg.arrivalsPerSec = 10.0;
    const auto trace = generateTraffic(cfg);
    const double span_s = toSeconds(trace.back().arrival);
    const double rate = static_cast<double>(trace.size() - 1) / span_s;
    EXPECT_NEAR(rate, cfg.arrivalsPerSec, 0.15 * cfg.arrivalsPerSec);
}

TEST(Traffic, SizesHeavyTailedWithinClamps)
{
    TrafficConfig cfg;
    cfg.requests = 4000;
    auto trace = generateTraffic(cfg);
    std::vector<uint64_t> prompts;
    for (const auto &r : trace) {
        EXPECT_GE(r.promptLen, cfg.promptMin);
        EXPECT_LE(r.promptLen, cfg.promptMax);
        EXPECT_GE(r.outputTokens, cfg.outputMin);
        EXPECT_LE(r.outputTokens, cfg.outputMax);
        prompts.push_back(r.promptLen);
    }
    std::sort(prompts.begin(), prompts.end());
    const uint64_t median = prompts[prompts.size() / 2];
    const uint64_t p99 = prompts[prompts.size() * 99 / 100];
    // Lognormal sigma 1.1: p99/median = e^(2.33 sigma) ~ 13. Anything
    // close to a light tail (< 4x) means the generator lost its shape.
    EXPECT_GT(p99, 4 * median);
}

TEST(Traffic, DiurnalRateFollowsTheSinusoid)
{
    TrafficConfig cfg;
    cfg.requests = 6000;
    cfg.process = ArrivalProcess::Diurnal;
    cfg.arrivalsPerSec = 20.0;
    cfg.diurnalPeakToTrough = 8.0;
    cfg.diurnalPeriod = 60 * kSecond;
    const auto trace = generateTraffic(cfg);
    // The rate multiplier is 1 + a sin(2 pi t / T): the first half of
    // each period runs above the mean rate, the second below.
    uint64_t first_half = 0, second_half = 0;
    for (const auto &r : trace)
        (r.arrival % cfg.diurnalPeriod < cfg.diurnalPeriod / 2
             ? first_half
             : second_half)++;
    EXPECT_GT(first_half, 2 * second_half)
        << "peak half-period should see several times the trough's "
           "arrivals at peak/trough 8";
}

TEST(Traffic, InteractiveFractionRespected)
{
    TrafficConfig cfg;
    cfg.requests = 4000;
    cfg.interactiveFraction = 0.125;
    const auto trace = generateTraffic(cfg);
    uint64_t interactive = 0;
    for (const auto &r : trace)
        interactive += r.priority == Priority::Interactive;
    const double frac =
        static_cast<double>(interactive) / static_cast<double>(trace.size());
    EXPECT_NEAR(frac, cfg.interactiveFraction, 0.03);
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the functional decode pipeline: staging-buffer flush
 * semantics (§6 bulk updates), device/software top-k consistency as
 * both states evolve token by token, retained-mass quality, the
 * DReX write-path timing, and the event-driven SLO study.
 */

#include <gtest/gtest.h>

#include "sim/decode_pipeline.hh"
#include "sim/slo_sim.hh"

namespace longsight {
namespace {

DrexConfig
deviceConfig()
{
    DrexConfig cfg;
    cfg.numKvHeads = 2;
    cfg.numLayers = 2;
    cfg.headDim = 64;
    return cfg;
}

PipelineConfig
pipelineConfig()
{
    PipelineConfig cfg;
    cfg.numLayers = 2;
    cfg.numQueryHeads = 4;
    cfg.numKvHeads = 2;
    cfg.headDim = 64;
    cfg.hybrid.windowSize = 256;
    cfg.hybrid.sinkTokens = 8;
    cfg.hybrid.topK = 64;
    cfg.hybrid.defaultThreshold = 24;
    cfg.flushGranularity = 128;
    return cfg;
}

TEST(Pipeline, PrefillFlushesWholeGroupsOnly)
{
    DrexDevice dev(deviceConfig());
    DecodePipeline pipe(pipelineConfig(), dev, 0);
    pipe.prefill(1000);
    // Eligible: 1000 - 256 = 744 -> 5 groups of 128 = 640.
    EXPECT_EQ(pipe.flushedTokens(), 640u);
    EXPECT_EQ(pipe.stagedTokens(), 360u);
    EXPECT_TRUE(dev.hasContext(0, 0, 0));
    EXPECT_EQ(dev.context(0, 1, 1).size(), 640u);
}

TEST(Pipeline, ZeroLayerConfigHasEmptyContext)
{
    // Regression: contextLength() dereferenced gpuCaches_.front() and
    // was UB for a config that owns no (layer, head) groups.
    DrexDevice dev(deviceConfig());
    PipelineConfig cfg = pipelineConfig();
    cfg.numLayers = 0;
    DecodePipeline pipe(cfg, dev, 0);
    EXPECT_EQ(pipe.contextLength(), 0u);
    EXPECT_EQ(pipe.stagedTokens(), 0u);
    pipe.prefill(100); // nothing to generate; must not crash
    EXPECT_EQ(pipe.flushedTokens(), 0u);
}

TEST(Pipeline, ShortContextFlushesNothing)
{
    DrexDevice dev(deviceConfig());
    DecodePipeline pipe(pipelineConfig(), dev, 0);
    pipe.prefill(300);
    EXPECT_EQ(pipe.flushedTokens(), 0u);
    EXPECT_FALSE(dev.hasContext(0, 0, 0));
}

TEST(Pipeline, ChunkedPrefillMatchesOneShot)
{
    // The serving engine's chunked-prefill hook: building a context
    // in uneven chunks must leave the pipeline bit-identical to one
    // monolithic prefill — same flushed prefix, same device state,
    // same decode-step results afterwards.
    DrexDevice dev_one(deviceConfig()), dev_chunks(deviceConfig());
    DecodePipeline one(pipelineConfig(), dev_one, 0);
    DecodePipeline chunks(pipelineConfig(), dev_chunks, 0);

    one.prefill(900);
    chunks.prefill(300);
    chunks.prefillChunk(0); // no-op chunk must be harmless
    chunks.prefillChunk(257);
    chunks.prefillChunk(343);
    ASSERT_EQ(chunks.contextLength(), 900u);

    EXPECT_EQ(chunks.flushedTokens(), one.flushedTokens());
    EXPECT_EQ(dev_chunks.context(0, 1, 1).size(),
              dev_one.context(0, 1, 1).size());
    for (int step = 0; step < 3; ++step) {
        const PipelineStepResult a = one.decodeStep();
        const PipelineStepResult b = chunks.decodeStep();
        EXPECT_EQ(a.offloadsIssued, b.offloadsIssued);
        EXPECT_EQ(a.tokensFlushed, b.tokensFlushed);
        EXPECT_DOUBLE_EQ(a.minRetainedMass, b.minRetainedMass);
        EXPECT_TRUE(a.deviceMatchedSoftware);
        EXPECT_TRUE(b.deviceMatchedSoftware);
    }
}

TEST(Pipeline, DecodeStepsFlushAtGroupBoundaries)
{
    DrexDevice dev(deviceConfig());
    DecodePipeline pipe(pipelineConfig(), dev, 0);
    pipe.prefill(1000); // flushed = 640, eligible backlog 104
    uint64_t flush_events = 0;
    for (int i = 0; i < 40; ++i) {
        const auto r = pipe.decodeStep();
        if (r.tokensFlushed > 0) {
            ++flush_events;
            // One group per (layer, head): 128 x 2 x 2.
            EXPECT_EQ(r.tokensFlushed, 128u * 4u);
        }
    }
    // 40 new tokens + backlog of 104 crosses one 128 boundary.
    EXPECT_EQ(flush_events, 1u);
    EXPECT_EQ(pipe.flushedTokens(), 768u);
}

TEST(Pipeline, DeviceMatchesSoftwareEveryStep)
{
    DrexDevice dev(deviceConfig());
    DecodePipeline pipe(pipelineConfig(), dev, 0);
    pipe.prefill(900);
    for (int i = 0; i < 12; ++i) {
        const auto r = pipe.decodeStep();
        EXPECT_TRUE(r.deviceMatchedSoftware) << "step " << i;
        EXPECT_EQ(r.offloadsIssued, 2u); // one per layer
    }
}

TEST(Pipeline, DeviceMatchesSoftwareWithItq)
{
    DrexDevice dev(deviceConfig());
    PipelineConfig cfg = pipelineConfig();
    cfg.trainItq = true;
    DecodePipeline pipe(cfg, dev, 0);
    pipe.prefill(900);
    for (int i = 0; i < 6; ++i) {
        const auto r = pipe.decodeStep();
        EXPECT_TRUE(r.deviceMatchedSoftware) << "step " << i;
    }
}

TEST(Pipeline, PagedKvMatchesFlatStepForStep)
{
    // Same seed, same prefill, one pipeline on flat caches and one on
    // a shared block pool: every decode step must agree exactly — the
    // paged cache is a layout change, not an algorithm change. The
    // device's top-k must also keep matching the paged software path.
    DrexDevice dev_flat(deviceConfig()), dev_paged(deviceConfig());
    PipelineConfig cfg = pipelineConfig();
    DecodePipeline flat(cfg, dev_flat, 0);
    cfg.pagedKv = true;
    cfg.pagedBlockTokens = 128;
    cfg.pagedMaxContext = 1024; // prefill 900 + 24 steps
    DecodePipeline paged(cfg, dev_paged, 0);
    ASSERT_NE(paged.blockPool(), nullptr);
    EXPECT_EQ(flat.blockPool(), nullptr);

    flat.prefill(900);
    paged.prefill(900);
    for (int i = 0; i < 24; ++i) {
        const auto a = flat.decodeStep();
        const auto b = paged.decodeStep();
        EXPECT_TRUE(b.deviceMatchedSoftware) << "step " << i;
        EXPECT_EQ(a.offloadsIssued, b.offloadsIssued) << "step " << i;
        EXPECT_EQ(a.tokensFlushed, b.tokensFlushed) << "step " << i;
        EXPECT_EQ(a.minRetainedMass, b.minRetainedMass) << "step " << i;
    }
    EXPECT_EQ(flat.contextLength(), paged.contextLength());
    EXPECT_GT(paged.blockPool()->usedBlocks(), 0u);
}

TEST(Pipeline, PagedKvMatchesFlatWithItq)
{
    DrexDevice dev_flat(deviceConfig()), dev_paged(deviceConfig());
    PipelineConfig cfg = pipelineConfig();
    cfg.trainItq = true;
    DecodePipeline flat(cfg, dev_flat, 0);
    cfg.pagedKv = true;
    cfg.pagedBlockTokens = 64;
    cfg.pagedMaxContext = 1024;
    DecodePipeline paged(cfg, dev_paged, 0);

    flat.prefill(900);
    paged.prefill(900);
    for (int i = 0; i < 8; ++i) {
        const auto a = flat.decodeStep();
        const auto b = paged.decodeStep();
        EXPECT_TRUE(b.deviceMatchedSoftware) << "step " << i;
        EXPECT_EQ(a.minRetainedMass, b.minRetainedMass) << "step " << i;
    }
}

TEST(Pipeline, RetainedMassHighAtGenerousSettings)
{
    DrexDevice dev(deviceConfig());
    PipelineConfig cfg = pipelineConfig();
    cfg.hybrid.defaultThreshold = 0;
    cfg.hybrid.topK = 1024;
    DecodePipeline pipe(cfg, dev, 0);
    pipe.prefill(800);
    const auto r = pipe.decodeStep();
    EXPECT_GT(r.minRetainedMass, 0.999);
}

TEST(Pipeline, WriteTimingScalesWithTokens)
{
    DrexDevice dev(deviceConfig());
    const Tick t128 = dev.chargeContextWrite(0, 0, 0, 0, 0, 128);
    DrexDevice dev2(deviceConfig());
    const Tick t1024 = dev2.chargeContextWrite(0, 0, 0, 0, 0, 1024);
    EXPECT_GT(t1024, t128);
    EXPECT_LT(t1024, 16 * t128) << "bulk writes amortize row activates";
}

TEST(Pipeline, WriteTimingOffCriticalPathIsCheap)
{
    // Shipping one 128-token group must cost far less than a decode
    // step (§6 benefit 3) — microseconds, not milliseconds.
    DrexDevice dev(deviceConfig());
    const Tick t = dev.chargeContextWrite(0, 0, 0, 0, 0, 128);
    EXPECT_LT(t, 100 * kMicrosecond);
}

TEST(SloSim, AllTokensAccounted)
{
    SloConfig cfg;
    cfg.users = 8;
    cfg.tokensPerUser = 16;
    const SloResult r = runSloSimulation(
        cfg, [](uint32_t) { return Tick(10 * kMillisecond); });
    EXPECT_EQ(r.tokenLatencyMs.count(), 8u * 16u);
    EXPECT_EQ(r.peakConcurrency <= 8u, true);
    EXPECT_GT(r.makespan, 0u);
}

TEST(SloSim, ConstantServiceMeetsSlo)
{
    SloConfig cfg;
    cfg.users = 4;
    cfg.tokensPerUser = 8;
    cfg.sloMs = 50.0;
    const SloResult r = runSloSimulation(
        cfg, [](uint32_t) { return Tick(10 * kMillisecond); });
    EXPECT_DOUBLE_EQ(r.sloAttainment, 1.0);
}

TEST(SloSim, LoadDependentServiceViolatesUnderBursts)
{
    SloConfig cfg;
    cfg.users = 16;
    cfg.tokensPerUser = 32;
    cfg.meanInterarrival = kMillisecond; // near-simultaneous arrivals
    cfg.sloMs = 20.0;
    const SloResult r = runSloSimulation(cfg, [](uint32_t active) {
        return Tick((2 + 2 * active) * kMillisecond);
    });
    EXPECT_LT(r.sloAttainment, 1.0);
    EXPECT_GT(r.sloAttainment, 0.0);
    EXPECT_GT(r.peakConcurrency, 4u);
    // The tail must be no better than the median, and ramp-up/drain
    // phases must produce real latency spread.
    EXPECT_GE(r.latencyHist.quantile(0.99),
              r.latencyHist.quantile(0.5));
    EXPECT_GT(r.tokenLatencyMs.max(), r.tokenLatencyMs.min());
}

TEST(SloSim, HistogramSizedFromSloTarget)
{
    // A 2-second SLO used to saturate the fixed [0, 200) ms histogram
    // silently; the histogram now spans kSloHistogramSpan x the SLO,
    // so slow-but-within-target latencies land in real bins.
    SloConfig cfg;
    cfg.users = 4;
    cfg.tokensPerUser = 8;
    cfg.sloMs = 2000.0;
    const SloResult r = runSloSimulation(
        cfg, [](uint32_t) { return Tick(900 * kMillisecond); });
    EXPECT_DOUBLE_EQ(r.sloAttainment, 1.0);
    EXPECT_DOUBLE_EQ(r.tailOverflowFraction, 0.0);
    // 900 ms samples would have pinned at the old 200 ms edge; with a
    // [0, 10000) ms range the median resolves near the true latency.
    EXPECT_GT(r.latencyHist.quantile(0.5), 500.0);
    EXPECT_LT(r.latencyHist.quantile(0.5), 2000.0);
}

TEST(SloSim, TailOverflowFractionReported)
{
    // Latencies beyond the histogram span still saturate — but the
    // result now says so instead of quietly reporting p99 at the edge.
    SloConfig cfg;
    cfg.users = 4;
    cfg.tokensPerUser = 8;
    cfg.sloMs = 50.0; // span = 250 ms
    const SloResult r = runSloSimulation(
        cfg, [](uint32_t) { return Tick(400 * kMillisecond); });
    EXPECT_DOUBLE_EQ(r.sloAttainment, 0.0);
    EXPECT_DOUBLE_EQ(r.tailOverflowFraction, 1.0);
    EXPECT_DOUBLE_EQ(r.latencyHist.quantile(0.99),
                     kSloHistogramSpan * cfg.sloMs);
}

TEST(SloSim, DeterministicForSeed)
{
    SloConfig cfg;
    cfg.users = 6;
    cfg.tokensPerUser = 10;
    auto service = [](uint32_t active) {
        return Tick((1 + active) * kMillisecond);
    };
    const SloResult a = runSloSimulation(cfg, service);
    const SloResult b = runSloSimulation(cfg, service);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_DOUBLE_EQ(a.tokenLatencyMs.mean(), b.tokenLatencyMs.mean());
}

} // namespace
} // namespace longsight

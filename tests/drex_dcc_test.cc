/**
 * @file
 * Tests for the DReX CXL Controller: FIFO request ordering, queue
 * depth limits, response-buffer CAM behaviour, and aggregation across
 * per-head offloads on multiple NMAs.
 */

#include <gtest/gtest.h>

#include "drex/drex_device.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

DrexConfig
tinyConfig()
{
    DrexConfig cfg;
    cfg.numKvHeads = 2;
    cfg.numLayers = 1;
    cfg.headDim = 64;
    return cfg;
}

AttentionRequest
timingRequest(uint32_t uid, uint64_t region, Tick arrival,
              uint32_t num_heads = 2)
{
    AttentionRequest req;
    req.uid = uid;
    req.arrivalTick = arrival;
    for (uint32_t h = 0; h < num_heads; ++h) {
        OffloadSpec spec;
        spec.user = uid;
        spec.kvHead = h;
        spec.sparseEnd = region;
        spec.survivorFraction = 0.1;
        req.headOffloads.push_back(spec);
    }
    return req;
}

TEST(Dcc, ProcessesInFifoOrder)
{
    DrexDevice dev(tinyConfig());
    dev.submit(timingRequest(5, 10'000, 0));
    dev.submit(timingRequest(3, 10'000, 0));
    dev.submit(timingRequest(9, 10'000, 0));
    const auto responses = dev.processAll();
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_EQ(responses[0].uid, 5u);
    EXPECT_EQ(responses[1].uid, 3u);
    EXPECT_EQ(responses[2].uid, 9u);
    // FIFO also in time: each later request finishes no earlier.
    EXPECT_LE(responses[0].readyTick, responses[1].readyTick);
    EXPECT_LE(responses[1].readyTick, responses[2].readyTick);
}

TEST(Dcc, ResponseBufferCamIsStablePerUser)
{
    DrexDevice dev(tinyConfig());
    Dcc &dcc = dev.dcc();
    const uint32_t b7 = dcc.responseBufferFor(7);
    const uint32_t b9 = dcc.responseBufferFor(9);
    EXPECT_NE(b7, b9);
    EXPECT_EQ(dcc.responseBufferFor(7), b7);
    EXPECT_EQ(dcc.activeUsers(), 2u);
}

TEST(Dcc, QueueDepthEnforced)
{
    DrexConfig cfg = tinyConfig();
    cfg.dcc.queueDepth = 2;
    DrexDevice dev(cfg);
    dev.submit(timingRequest(0, 1000, 0));
    dev.submit(timingRequest(1, 1000, 0));
    EXPECT_DEATH({ dev.submit(timingRequest(2, 1000, 0)); },
                 "queue overflow");
}

TEST(Dcc, ResponseBufferExhaustionDies)
{
    DrexConfig cfg = tinyConfig();
    cfg.dcc.responseBuffers = 2;
    DrexDevice dev(cfg);
    dev.dcc().responseBufferFor(0);
    dev.dcc().responseBufferFor(1);
    EXPECT_DEATH({ dev.dcc().responseBufferFor(2); }, "exhausted");
}

TEST(Dcc, HeadsRunOnDistinctNmasInParallel)
{
    // Two heads -> two packages: request completion must be close to
    // one offload's service time, not two.
    DrexConfig cfg = tinyConfig();
    DrexDevice single_head(cfg), both_heads(cfg);

    single_head.submit(timingRequest(0, 100'000, 0, 1));
    const auto r1 = single_head.processAll();
    both_heads.submit(timingRequest(0, 100'000, 0, 2));
    const auto r2 = both_heads.processAll();

    const Tick t1 = r1[0].readyTick;
    const Tick t2 = r2[0].readyTick;
    EXPECT_LT(t2, t1 + t1 / 4) << "parallel heads should not serialize";
}

TEST(Dcc, ResponseAggregatesAllHeads)
{
    DrexDevice dev(tinyConfig());
    dev.submit(timingRequest(0, 10'000, 0, 2));
    const auto r = dev.processAll();
    ASSERT_EQ(r[0].headResults.size(), 2u);
    EXPECT_GT(r[0].responseBytes, 0u);
    EXPECT_EQ(r[0].responseBytes,
              r[0].headResults[0].valueBytes +
                  r[0].headResults[1].valueBytes);
}

TEST(Dcc, ArrivalTickDelaysProcessing)
{
    DrexDevice dev(tinyConfig());
    const Tick arrival = 50 * kMicrosecond;
    dev.submit(timingRequest(0, 10'000, arrival));
    const auto r = dev.processAll();
    EXPECT_GT(r[0].readyTick, arrival);
}

TEST(Dcc, PollingRegisterBitOps)
{
    PollingRegister reg;
    EXPECT_EQ(reg.popcount(), 0u);
    reg.set(0);
    reg.set(63);
    reg.set(64);
    reg.set(511);
    EXPECT_TRUE(reg.test(0));
    EXPECT_TRUE(reg.test(511));
    EXPECT_FALSE(reg.test(1));
    EXPECT_EQ(reg.popcount(), 4u);
    reg.clear(64);
    EXPECT_FALSE(reg.test(64));
    EXPECT_EQ(reg.popcount(), 3u);
}

TEST(Dcc, CompletionSetsPollingBitAcknowledgeClears)
{
    DrexDevice dev(tinyConfig());
    Dcc &dcc = dev.dcc();
    dev.submit(timingRequest(7, 5000, 0));
    EXPECT_EQ(dcc.pollingRegister().popcount(), 0u);
    const auto responses = dev.processAll();
    const uint32_t buf = responses[0].responseBuffer;
    EXPECT_TRUE(dcc.pollingRegister().test(buf));
    dcc.acknowledge(7);
    EXPECT_FALSE(dcc.pollingRegister().test(buf));
}

TEST(Dcc, PollingBitsIndependentAcrossUsers)
{
    DrexDevice dev(tinyConfig());
    dev.submit(timingRequest(1, 2000, 0));
    dev.submit(timingRequest(2, 2000, 0));
    dev.processAll();
    EXPECT_EQ(dev.dcc().pollingRegister().popcount(), 2u);
    dev.dcc().acknowledge(1);
    EXPECT_EQ(dev.dcc().pollingRegister().popcount(), 1u);
}

TEST(Dcc, SequentialUsersShareNmasFairly)
{
    // Two users' requests: the second user's offloads queue behind the
    // first on the same NMAs (packageFor rotates, but with 2 heads on
    // an 8-package device they land on disjoint NMAs — so completion
    // should overlap substantially).
    DrexDevice dev(tinyConfig());
    dev.submit(timingRequest(0, 50'000, 0));
    dev.submit(timingRequest(1, 50'000, 0));
    const auto r = dev.processAll();
    // User 1's heads are on packages {1, 2}; user 0 on {0, 1}: head
    // overlap on package 1 partially serializes.
    EXPECT_GE(r[1].readyTick, r[0].readyTick);
}

} // namespace
} // namespace longsight

/**
 * @file
 * Coverage for smaller surfaces: CSV output, histogram summaries,
 * dataset presets, token formatting, device write-path stats, TTFT /
 * descriptor accounting, and ServingResult finalization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench/bench_util.hh"
#include "drex/drex_device.hh"
#include "model/workload.hh"
#include "sim/longsight_system.hh"
#include "sim/serving.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace longsight {
namespace {

TEST(TableCsv, WritesHeaderAndRows)
{
    TextTable t("csv");
    t.setHeader({"a", "b"});
    t.addRow({"1", "x"});
    t.addRow({"2", "y"});
    const std::string path = "/tmp/longsight_csv_test.csv";
    t.writeCsv(path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,x");
    std::getline(in, line);
    EXPECT_EQ(line, "2,y");
    std::remove(path.c_str());
}

TEST(HistogramSummary, ContainsQuantiles)
{
    Histogram h(0, 100, 20);
    for (int i = 0; i < 100; ++i)
        h.add(i);
    const std::string s = h.summary();
    EXPECT_NE(s.find("n=100"), std::string::npos);
    EXPECT_NE(s.find("p99"), std::string::npos);
}

TEST(FmtTokens, HumanReadable)
{
    EXPECT_EQ(fmtTokens(2048), "2K");
    EXPECT_EQ(fmtTokens(131072), "128K");
    EXPECT_EQ(fmtTokens(1'000'000), "1M");
    EXPECT_EQ(fmtTokens(1000), "1000");
}

TEST(DatasetPresets, DifferentStatistics)
{
    const auto pg = WorkloadConfig::pgLike(64);
    const auto wiki = WorkloadConfig::wiki2Like(64);
    EXPECT_GT(pg.stickiness, wiki.stickiness);
    EXPECT_LT(pg.numClusters, wiki.numClusters);
    EXPECT_LT(pg.queryLocalProb, wiki.queryLocalProb);
}

TEST(DatasetPresets, PgHasLongerSegments)
{
    HeadWorkload pg(WorkloadConfig::pgLike(64), Rng(1));
    HeadWorkload wiki(WorkloadConfig::wiki2Like(64), Rng(1));
    pg.generate(4000);
    wiki.generate(4000);
    EXPECT_LT(pg.segments().back(), wiki.segments().back())
        << "fewer segment switches in book-like text";
}

TEST(DeviceWriteStats, BytesLandInChannels)
{
    DrexConfig cfg;
    cfg.numKvHeads = 1;
    cfg.numLayers = 1;
    cfg.headDim = 64;
    DrexDevice dev(cfg);
    dev.chargeContextWrite(0, 0, 0, 0, 0, 128);
    const uint32_t pkg = dev.layout().packageFor(0, 0);
    // 128 keys + values striped over 8 channels, plus sign bytes.
    const uint64_t expect =
        128ULL * (2 * 128 /*K+V bytes*/ + 64 / 8 /*signs*/);
    EXPECT_EQ(dev.package(pkg).totalBytesTransferred(), expect);
}

TEST(ServingResultFinalize, ZeroSafe)
{
    ServingResult r;
    r.finalize();
    EXPECT_EQ(r.tokensPerSecond, 0.0);
    r.feasible = true;
    r.users = 4;
    r.stepTime = 2 * kMillisecond;
    r.finalize();
    EXPECT_NEAR(r.tokensPerSecond, 2000.0, 1e-6);
    EXPECT_NEAR(r.perTokenLatencyUs, 2000.0, 1e-6);
}

TEST(DescriptorBytes, MatchesModelShape)
{
    const auto m = ModelConfig::llama3_8b();
    LongSightSystem ls(LongSightSystemConfig{}, m);
    // 256 B header + 32 query heads x 128 dims x 2 B.
    EXPECT_EQ(ls.descriptorBytes(), 256u + 32u * 128u * 2u);
}

TEST(SparseTokens, WindowAndSinksExcluded)
{
    const auto m = ModelConfig::llama3_8b();
    LongSightSystem ls(LongSightSystemConfig{}, m);
    EXPECT_EQ(ls.sparseTokens(1040), 0u);
    EXPECT_EQ(ls.sparseTokens(1041), 1u);
    EXPECT_EQ(ls.sparseTokens(10000), 10000u - 1040u);
}

TEST(StepBreakdownTotal, SumsComponents)
{
    StepBreakdown b;
    b.gpuNonAttention = 10;
    b.itq = 1;
    b.gpuWindowExposed = 2;
    b.drexExposed = 3;
    b.submit = 4;
    b.poll = 5;
    b.softmax = 6;
    EXPECT_EQ(b.total(), 31u);
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the model layer: Table-1 configs, RoPE, the synthetic
 * workload generator's statistical properties, and the perplexity
 * proxy.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/attention.hh"
#include "model/model_config.hh"
#include "model/perplexity.hh"
#include "model/rope.hh"
#include "model/workload.hh"
#include "tensor/linalg.hh"
#include "tensor/softmax.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

TEST(ModelConfig, Table1Shapes)
{
    const auto m1 = ModelConfig::llama3_1b();
    EXPECT_EQ(m1.numQueryHeads, 32u);
    EXPECT_EQ(m1.numKvHeads, 8u);
    EXPECT_EQ(m1.headDim, 64u);
    EXPECT_EQ(m1.numLayers, 16u);
    EXPECT_EQ(m1.groupSize(), 4u);

    const auto m8 = ModelConfig::llama3_8b();
    EXPECT_EQ(m8.numQueryHeads, 32u);
    EXPECT_EQ(m8.numKvHeads, 8u);
    EXPECT_EQ(m8.headDim, 128u);
    EXPECT_EQ(m8.numLayers, 32u);
    // 8 KV heads x 32 layers = 256 databases per user (§4).
    EXPECT_EQ(m8.kvDatabasesPerUser(), 256u);
}

TEST(ModelConfig, KvBytesPerToken)
{
    const auto m8 = ModelConfig::llama3_8b();
    // 2 (K+V) * 8 heads * 128 dim * 2 B * 32 layers = 131072 B.
    EXPECT_EQ(m8.kvBytesPerToken(), 131072u);
    const auto m1 = ModelConfig::llama3_1b();
    // 2 * 8 * 64 * 2 * 16 = 32768 B.
    EXPECT_EQ(m1.kvBytesPerToken(), 32768u);
}

TEST(ModelConfig, WeightBytesInExpectedRange)
{
    // BF16 Llama-3-8B is ~16 GB (the paper's §8.2 data-parallel math);
    // 1B is ~2.5 GB with embeddings.
    const double gb8 =
        static_cast<double>(ModelConfig::llama3_8b().weightBytes()) / 1e9;
    EXPECT_GT(gb8, 13.0);
    EXPECT_LT(gb8, 18.0);
    const double gb1 =
        static_cast<double>(ModelConfig::llama3_1b().weightBytes()) / 1e9;
    EXPECT_GT(gb1, 1.5);
    EXPECT_LT(gb1, 3.5);
}

TEST(ModelConfig, AttentionFlopsScaleWithContext)
{
    const auto m = ModelConfig::llama3_8b();
    EXPECT_EQ(m.attentionFlopsPerToken(2000),
              2 * m.attentionFlopsPerToken(1000));
}

TEST(Rope, PreservesNorm)
{
    Rope rope(64);
    Rng rng(1);
    const auto v = rng.gaussianVec(64);
    for (uint64_t pos : {0ULL, 1ULL, 1000ULL, 1000000ULL}) {
        const auto r = rope.rotated(v, pos);
        EXPECT_NEAR(norm2(r.data(), 64), norm2(v.data(), 64), 1e-3)
            << "pos " << pos;
    }
}

TEST(Rope, PositionZeroIsIdentity)
{
    Rope rope(32);
    Rng rng(2);
    const auto v = rng.gaussianVec(32);
    const auto r = rope.rotated(v, 0);
    for (size_t i = 0; i < 32; ++i)
        EXPECT_NEAR(r[i], v[i], 1e-6);
}

TEST(Rope, RelativePositionProperty)
{
    // <rope(q, a), rope(k, b)> depends only on a - b.
    Rope rope(64);
    Rng rng(3);
    const auto q = rng.gaussianVec(64);
    const auto k = rng.gaussianVec(64);
    const auto qa = rope.rotated(q, 100);
    const auto kb = rope.rotated(k, 60);
    const auto qa2 = rope.rotated(q, 1100);
    const auto kb2 = rope.rotated(k, 1060);
    EXPECT_NEAR(dot(qa.data(), kb.data(), 64),
                dot(qa2.data(), kb2.data(), 64), 1e-2);
}

TEST(Rope, DifferentPositionsProduceDifferentVectors)
{
    Rope rope(64);
    Rng rng(4);
    const auto v = rng.gaussianVec(64);
    const auto a = rope.rotated(v, 5);
    const auto b = rope.rotated(v, 6);
    float diff = 0;
    for (size_t i = 0; i < 64; ++i)
        diff += std::abs(a[i] - b[i]);
    EXPECT_GT(diff, 1e-3f);
}

TEST(Workload, GeneratesRequestedShape)
{
    WorkloadConfig cfg;
    cfg.headDim = 64;
    HeadWorkload wl(cfg, Rng(7));
    wl.generate(500);
    EXPECT_EQ(wl.contextLength(), 500u);
    EXPECT_EQ(wl.keys().rows(), 500u);
    EXPECT_EQ(wl.keys().cols(), 64u);
    EXPECT_EQ(wl.values().rows(), 500u);
    EXPECT_EQ(wl.topics().size(), 500u);
}

TEST(Workload, TopicsAreSticky)
{
    WorkloadConfig cfg;
    cfg.stickiness = 0.98;
    HeadWorkload wl(cfg, Rng(8));
    wl.generate(2000);
    const auto &topics = wl.topics();
    size_t switches = 0;
    for (size_t i = 1; i < topics.size(); ++i)
        switches += (topics[i] != topics[i - 1]);
    // Expected switches ~ 2000 * 0.02 * (1 - 1/12) ≈ 37.
    EXPECT_LT(switches, 90u);
    EXPECT_GT(switches, 5u);
}

TEST(Workload, MultipleTopicsAppear)
{
    WorkloadConfig cfg;
    HeadWorkload wl(cfg, Rng(9));
    wl.generate(3000);
    std::set<uint32_t> seen(wl.topics().begin(), wl.topics().end());
    EXPECT_GE(seen.size(), 4u);
}

TEST(Workload, AppendExtendsContext)
{
    WorkloadConfig cfg;
    HeadWorkload wl(cfg, Rng(10));
    wl.generate(50);
    wl.appendToken();
    wl.appendToken();
    EXPECT_EQ(wl.contextLength(), 52u);
}

TEST(Workload, QueriesPreferTheirTopic)
{
    // A query drawn for topic z must, on average, score same-topic
    // keys above other keys — the planted-relevance property.
    WorkloadConfig cfg;
    cfg.headDim = 64;
    cfg.applyRope = false; // isolate cluster geometry
    HeadWorkload wl(cfg, Rng(11));
    wl.generate(2000);

    const float scale = wl.attentionScale();
    double same = 0, other = 0;
    size_t same_n = 0, other_n = 0;
    for (int trial = 0; trial < 10; ++trial) {
        const uint32_t topic = wl.topics()[trial * 150];
        const auto q = wl.drawQueryForTopic(topic);
        const auto scores =
            attentionScores(q.data(), wl.keys(), 0, 2000, scale);
        for (size_t i = 0; i < 2000; ++i) {
            if (wl.topics()[i] == topic) {
                same += scores[i];
                ++same_n;
            } else {
                other += scores[i];
                ++other_n;
            }
        }
    }
    EXPECT_GT(same / same_n, other / other_n + 0.5);
}

TEST(Workload, DenseAttentionMassReachesLongRange)
{
    // With queryLocalProb < 1, a nontrivial share of softmax mass must
    // land outside the most recent window — otherwise sliding-window
    // attention would already be exact and the paper's problem
    // wouldn't exist.
    WorkloadConfig cfg;
    cfg.headDim = 64;
    cfg.queryLocalProb = 0.0; // force long-range queries
    HeadWorkload wl(cfg, Rng(12));
    const size_t n = 4096;
    wl.generate(n);
    const float scale = wl.attentionScale();

    double outside = 0.0;
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
        const auto q = wl.drawQuery();
        auto scores = attentionScores(q.data(), wl.keys(), 0, n, scale);
        softmaxInPlace(scores);
        for (size_t i = 0; i + 1024 < n; ++i)
            outside += scores[i];
    }
    EXPECT_GT(outside / trials, 0.15);
}

TEST(Workload, HeadsAreIndependent)
{
    WorkloadConfig cfg;
    auto heads = makeHeadWorkloads(cfg, 4, 99);
    ASSERT_EQ(heads.size(), 4u);
    heads[0].generate(100);
    heads[1].generate(100);
    float diff = 0;
    for (size_t i = 0; i < 100; ++i)
        for (size_t j = 0; j < cfg.headDim; ++j)
            diff += std::abs(heads[0].keys()(i, j) - heads[1].keys()(i, j));
    EXPECT_GT(diff, 1.0f);
}

TEST(Workload, DeterministicForSameSeed)
{
    WorkloadConfig cfg;
    HeadWorkload a(cfg, Rng(123)), b(cfg, Rng(123));
    a.generate(200);
    b.generate(200);
    for (size_t i = 0; i < 200; ++i)
        for (size_t j = 0; j < cfg.headDim; ++j)
            EXPECT_EQ(a.keys()(i, j), b.keys()(i, j));
}

TEST(Perplexity, FullCoverageIsZeroLoss)
{
    PerplexityProxy p;
    std::vector<float> probs = {0.25f, 0.25f, 0.25f, 0.25f};
    p.record(probs, {0, 1, 2, 3});
    EXPECT_NEAR(p.meanLostMass(), 0.0, 1e-6);
    EXPECT_NEAR(p.relPplIncreasePct(), 0.0, 1e-4);
}

TEST(Perplexity, PartialCoverageLosesMass)
{
    PerplexityProxy p;
    std::vector<float> probs = {0.5f, 0.3f, 0.1f, 0.1f};
    p.record(probs, {0, 1});
    EXPECT_NEAR(p.meanLostMass(), 0.2, 1e-6);
    EXPECT_NEAR(p.relPplIncreasePct(1.0), 100.0 * (std::exp(0.2) - 1.0),
                1e-3);
}

TEST(Perplexity, OutputErrorRecorded)
{
    PerplexityProxy p;
    std::vector<float> probs = {1.0f};
    p.record(probs, {0}, {1.0f, 0.0f}, {0.0f, 1.0f});
    EXPECT_NEAR(p.meanOutputError(), std::sqrt(2.0), 1e-5);
}

TEST(Perplexity, MergeCombinesStreams)
{
    PerplexityProxy a, b;
    a.recordLostMass(0.1);
    b.recordLostMass(0.3);
    a.merge(b);
    EXPECT_EQ(a.evaluations(), 2u);
    EXPECT_NEAR(a.meanLostMass(), 0.2, 1e-9);
}

} // namespace
} // namespace longsight

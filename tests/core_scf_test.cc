/**
 * @file
 * Tests for Sign-Concordance Filtering: semantics, monotonicity in
 * the threshold, and equivalence of the packed and row-wise paths.
 */

#include <gtest/gtest.h>

#include "core/scf.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

TEST(Scf, ThresholdZeroKeepsEverything)
{
    Rng rng(1);
    const size_t d = 64, n = 200;
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const auto q = rng.gaussianVec(d);
    const auto survivors = scfFilterRows(q.data(), keys, 0, n, 0);
    EXPECT_EQ(survivors.size(), n);
}

TEST(Scf, MaxThresholdKeepsOnlySignIdentical)
{
    Rng rng(2);
    const size_t d = 32;
    const auto q = rng.gaussianVec(d);
    Matrix keys(3, d);
    // Key 0: same signs as q (scaled copy).
    for (size_t i = 0; i < d; ++i)
        keys(0, i) = 2.0f * q[i];
    // Key 1: negated.
    for (size_t i = 0; i < d; ++i)
        keys(1, i) = -q[i] - (q[i] == 0.0f ? 1.0f : 0.0f);
    // Key 2: random.
    const auto r = rng.gaussianVec(d);
    keys.setRow(2, r.data());

    const auto survivors =
        scfFilterRows(q.data(), keys, 0, 3, static_cast<int>(d));
    ASSERT_EQ(survivors.size(), 1u);
    EXPECT_EQ(survivors[0], 0u);
}

TEST(Scf, MonotoneInThreshold)
{
    Rng rng(3);
    const size_t d = 64, n = 500;
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const auto q = rng.gaussianVec(d);
    size_t prev = n + 1;
    for (int th = 0; th <= static_cast<int>(d); th += 4) {
        const auto s = scfFilterRows(q.data(), keys, 0, n, th);
        EXPECT_LE(s.size(), prev) << "threshold " << th;
        prev = s.size();
    }
}

TEST(Scf, PackedMatchesRowWise)
{
    Rng rng(4);
    const size_t d = 128, n = 300;
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const auto q = rng.gaussianVec(d);
    const SignBits qs(q.data(), d);
    const auto key_signs = packSignRows(keys.data(), n, d);

    for (int th : {0, 32, 64, 80, 128}) {
        const auto a = scfFilter(qs, key_signs, th);
        const auto b = scfFilterRows(q.data(), keys, 0, n, th);
        EXPECT_EQ(a, b) << "threshold " << th;
    }
}

TEST(Scf, SignMatrixOverloadMatchesSignBitsOverload)
{
    Rng rng(41);
    const size_t d = 100, n = 257;
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const auto q = rng.gaussianVec(d);
    const SignBits qs(q.data(), d);
    const auto key_signs = packSignRows(keys.data(), n, d);
    const SignMatrix packed = SignMatrix::pack(keys.data(), n, d);

    for (int th : {0, 25, 50, 75, 101}) {
        const auto ref = scfFilter(qs, key_signs, th);
        const auto got = scfFilter(qs, packed, th);
        EXPECT_EQ(got, ref) << "threshold " << th;
    }
    // base_index offsets both overloads identically.
    const auto ref7 = scfFilter(qs, key_signs, 50, 7);
    const auto got7 = scfFilter(qs, packed, 50, 7);
    EXPECT_EQ(got7, ref7);
}

TEST(Scf, BaseIndexOffsetsResults)
{
    Rng rng(5);
    const size_t d = 16, n = 10;
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const auto q = rng.gaussianVec(d);
    const SignBits qs(q.data(), d);
    const auto signs = packSignRows(keys.data(), n, d);
    const auto base0 = scfFilter(qs, signs, 0, 0);
    const auto base5 = scfFilter(qs, signs, 0, 5);
    ASSERT_EQ(base0.size(), base5.size());
    for (size_t i = 0; i < base0.size(); ++i)
        EXPECT_EQ(base5[i], base0[i] + 5);
}

TEST(Scf, RangeRestriction)
{
    Rng rng(6);
    const size_t d = 16, n = 50;
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const auto q = rng.gaussianVec(d);
    const auto s = scfFilterRows(q.data(), keys, 10, 20, 0);
    ASSERT_EQ(s.size(), 10u);
    EXPECT_EQ(s.front(), 10u);
    EXPECT_EQ(s.back(), 19u);
}

TEST(Scf, AverageSurvivalNearExpectedForRandomSigns)
{
    // For iid random sign bits, concordance ~ Binomial(d, 1/2);
    // threshold d/2 keeps slightly more than half (>= is inclusive).
    Rng rng(7);
    const size_t d = 64, n = 4000;
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const auto q = rng.gaussianVec(d);
    const auto s = scfFilterRows(q.data(), keys, 0, n, d / 2);
    const double frac = static_cast<double>(s.size()) / n;
    EXPECT_GT(frac, 0.45);
    EXPECT_LT(frac, 0.65);
}

/**
 * Correlation property: keys aligned with the query survive high
 * thresholds more often than anti-aligned keys.
 */
TEST(Scf, AlignedKeysSurviveMoreOften)
{
    Rng rng(8);
    const size_t d = 64, n = 400;
    const auto q = rng.gaussianVec(d);
    Matrix keys(2 * n, d);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < d; ++j) {
            const float noise = static_cast<float>(rng.gaussian()) * 0.8f;
            keys(i, j) = q[j] + noise;       // aligned
            keys(n + i, j) = -q[j] + noise;  // anti-aligned
        }
    }
    const int th = static_cast<int>(d * 3 / 4);
    const auto s = scfFilterRows(q.data(), keys, 0, 2 * n, th);
    size_t aligned = 0, anti = 0;
    for (uint32_t idx : s)
        (idx < n ? aligned : anti)++;
    EXPECT_GT(aligned, 5 * std::max<size_t>(anti, 1));
}

} // namespace
} // namespace longsight

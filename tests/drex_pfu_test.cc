/**
 * @file
 * Tests for the PIM Filtering Unit: bitmap mechanics and the central
 * hardware/software equivalence — PFU bitmaps must match software SCF
 * bit-exactly for any data and threshold.
 */

#include <gtest/gtest.h>

#include "core/scf.hh"
#include "drex/pfu.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

TEST(Bitmap, SetAndTest)
{
    Bitmap128 b;
    EXPECT_FALSE(b.test(0));
    b.set(0);
    b.set(63);
    b.set(64);
    b.set(127);
    EXPECT_TRUE(b.test(0));
    EXPECT_TRUE(b.test(63));
    EXPECT_TRUE(b.test(64));
    EXPECT_TRUE(b.test(127));
    EXPECT_FALSE(b.test(1));
    EXPECT_EQ(b.popcount(), 4u);
}

TEST(Bitmap, SetIndicesWithBase)
{
    Bitmap128 b;
    b.set(2);
    b.set(100);
    const auto idx = b.setIndices(1000);
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1002u);
    EXPECT_EQ(idx[1], 1100u);
}

TEST(Pfu, SignMatrixOverloadMatchesScalarReference)
{
    Rng rng(77);
    const size_t d = 128, total = 300;
    const Matrix keys(total, d, rng.gaussianVec(total * d));
    const auto key_signs = packSignRows(keys.data(), total, d);
    const SignMatrix packed = SignMatrix::pack(keys.data(), total, d);
    const auto q1 = rng.gaussianVec(d);
    const auto q2 = rng.gaussianVec(d);
    const std::vector<SignBits> queries = {SignBits(q1.data(), d),
                                           SignBits(q2.data(), d)};

    const struct
    {
        size_t begin;
        uint32_t num;
    } regions[] = {{0, 128}, {100, 128}, {172, 128}, {40, 77}, {5, 1}};
    for (int th : {0, 36, 64, 129}) {
        for (const auto &reg : regions) {
            const auto ref = Pfu::filterBlock(
                queries, key_signs.data() + reg.begin, reg.num, th);
            const auto got =
                Pfu::filterBlock(queries, packed, reg.begin, reg.num, th);
            ASSERT_EQ(got.size(), ref.size());
            for (size_t qi = 0; qi < ref.size(); ++qi)
                for (uint32_t i = 0; i < 128; ++i)
                    EXPECT_EQ(got[qi].test(i), ref[qi].test(i))
                        << "query " << qi << " key " << i << " begin "
                        << reg.begin << " num " << reg.num
                        << " threshold " << th;
        }
    }
}

class PfuEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(PfuEquivalence, BitmapMatchesSoftwareScf)
{
    const int threshold = GetParam();
    Rng rng(42 + threshold);
    const size_t d = 128;
    const Matrix keys(128, d, rng.gaussianVec(128 * d));
    const auto q = rng.gaussianVec(d);
    const SignBits qs(q.data(), d);
    const auto key_signs = packSignRows(keys.data(), 128, d);

    const auto bitmaps =
        Pfu::filterBlock({qs}, key_signs.data(), 128, threshold);
    ASSERT_EQ(bitmaps.size(), 1u);

    const auto sw = scfFilter(qs, key_signs, threshold);
    for (uint32_t i = 0; i < 128; ++i) {
        const bool in_sw =
            std::find(sw.begin(), sw.end(), i) != sw.end();
        EXPECT_EQ(bitmaps[0].test(i), in_sw)
            << "key " << i << " threshold " << threshold;
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PfuEquivalence,
                         ::testing::Values(0, 32, 56, 64, 72, 96, 128));

TEST(Pfu, MultiQueryBitmapsIndependent)
{
    Rng rng(7);
    const size_t d = 64;
    const Matrix keys(128, d, rng.gaussianVec(128 * d));
    const auto key_signs = packSignRows(keys.data(), 128, d);
    const auto q1 = rng.gaussianVec(d);
    const auto q2 = rng.gaussianVec(d);
    const SignBits s1(q1.data(), d), s2(q2.data(), d);

    const auto bitmaps =
        Pfu::filterBlock({s1, s2}, key_signs.data(), 128, 36);
    ASSERT_EQ(bitmaps.size(), 2u);
    const auto solo1 = Pfu::filterBlock({s1}, key_signs.data(), 128, 36);
    const auto solo2 = Pfu::filterBlock({s2}, key_signs.data(), 128, 36);
    EXPECT_EQ(bitmaps[0], solo1[0]);
    EXPECT_EQ(bitmaps[1], solo2[0]);
}

TEST(Pfu, PartialBlockOnlyFiltersPresentKeys)
{
    Rng rng(8);
    const size_t d = 32;
    const Matrix keys(40, d, rng.gaussianVec(40 * d));
    const auto key_signs = packSignRows(keys.data(), 40, d);
    const auto q = rng.gaussianVec(d);
    const SignBits qs(q.data(), d);
    const auto bitmaps = Pfu::filterBlock({qs}, key_signs.data(), 40, 0);
    EXPECT_EQ(bitmaps[0].popcount(), 40u);
    for (uint32_t i = 40; i < 128; ++i)
        EXPECT_FALSE(bitmaps[0].test(i));
}

TEST(Pfu, BitmapGenTimeMatchesRtlConstant)
{
    // d x 1.25 ns per query (§8.2).
    EXPECT_EQ(Pfu::bitmapGenTime(128, 1), fromNanoseconds(160.0));
    EXPECT_EQ(Pfu::bitmapGenTime(64, 4), fromNanoseconds(320.0));
}

TEST(Pfu, HardwareLimitsEnforced)
{
    Rng rng(9);
    const Matrix keys(128, 16, rng.gaussianVec(128 * 16));
    const auto signs = packSignRows(keys.data(), 128, 16);
    std::vector<SignBits> too_many(17, signs[0]);
    EXPECT_DEATH(
        { Pfu::filterBlock(too_many, signs.data(), 128, 0); },
        "1..16 queries");
}

} // namespace
} // namespace longsight

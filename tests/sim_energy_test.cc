/**
 * @file
 * Tests for prefill/TTFT modeling and the energy-per-token extension.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_model.hh"
#include "model/model_config.hh"
#include "sim/energy.hh"
#include "sim/longsight_system.hh"

namespace longsight {
namespace {

TEST(Prefill, SuperlinearInPromptLength)
{
    // Causal attention makes prefill grow faster than linearly.
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_8b());
    const Tick t8k = g.prefillTime(8192);
    const Tick t32k = g.prefillTime(32768);
    EXPECT_GT(t32k, 4 * t8k - 4 * g.gpu().kernelLaunchOverhead);
}

TEST(Prefill, MuchFasterPerTokenThanDecode)
{
    // §8.1.2: prefill has far higher per-token throughput than decode.
    const auto m = ModelConfig::llama3_8b();
    GpuModel g(GpuConfig::h100(), m);
    const uint64_t n = 8192;
    const double prefill_per_token =
        toSeconds(g.prefillTime(n)) / static_cast<double>(n);
    const double decode_per_token = toSeconds(
        g.decodeNonAttentionTime(1) + g.denseAttentionTime(n, 1));
    EXPECT_LT(prefill_per_token, decode_per_token / 20.0);
}

TEST(Prefill, ZeroPromptIsFree)
{
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_1b());
    EXPECT_EQ(g.prefillTime(0), 0u);
}

TEST(Ttft, IncludesPrefillAndFirstStep)
{
    const auto m = ModelConfig::llama3_8b();
    LongSightSystem ls(LongSightSystemConfig{}, m);
    GpuModel g(GpuConfig::h100(), m);
    const uint64_t prompt = 65536;
    const Tick ttft = ls.timeToFirstToken(prompt);
    EXPECT_GE(ttft, g.prefillTime(prompt));
    EXPECT_GE(ttft, ls.decode(prompt, 1).stepTime);
}

TEST(Ttft, GrowsWithPrompt)
{
    LongSightSystem ls(LongSightSystemConfig{}, ModelConfig::llama3_8b());
    EXPECT_LT(ls.timeToFirstToken(16384), ls.timeToFirstToken(262144));
}

TEST(Energy, DenseGrowsLinearlyWithContext)
{
    EnergyModel em(EnergyConstants{}, ModelConfig::llama3_8b());
    const double e1 = em.denseGpuToken(100'000).totalJ();
    const double e2 = em.denseGpuToken(200'000).totalJ();
    const double fixed = em.denseGpuToken(0).totalJ();
    EXPECT_NEAR(e2 - fixed, 2.0 * (e1 - fixed), 1e-6);
}

TEST(Energy, LongSightBeatsDenseAtLongContext)
{
    EnergyModel em(EnergyConstants{}, ModelConfig::llama3_8b());
    EnergyHybridConfig cfg;
    const uint64_t ctx = 1'000'000;
    EXPECT_LT(em.longSightToken(ctx, cfg).totalJ(),
              0.5 * em.denseGpuToken(ctx).totalJ());
}

TEST(Energy, ShortContextSkipsDrex)
{
    EnergyModel em(EnergyConstants{}, ModelConfig::llama3_1b());
    EnergyHybridConfig cfg;
    const TokenEnergy e = em.longSightToken(512, cfg);
    EXPECT_EQ(e.drexJ, 0.0);
    EXPECT_EQ(e.cxlJ, 0.0);
    EXPECT_GT(e.gpuJ, 0.0);
}

TEST(Energy, HigherFilterRatioLowersDrexEnergy)
{
    EnergyModel em(EnergyConstants{}, ModelConfig::llama3_8b());
    EnergyHybridConfig loose, tight;
    loose.filterRatio = 5.0;
    tight.filterRatio = 50.0;
    const uint64_t ctx = 500'000;
    EXPECT_GT(em.longSightToken(ctx, loose).drexJ,
              em.longSightToken(ctx, tight).drexJ);
}

TEST(Energy, ComponentsSumToTotal)
{
    EnergyModel em(EnergyConstants{}, ModelConfig::llama3_8b());
    const TokenEnergy e =
        em.longSightToken(200'000, EnergyHybridConfig{});
    EXPECT_DOUBLE_EQ(e.totalJ(), e.gpuJ + e.drexJ + e.cxlJ);
    EXPECT_GT(e.drexJ, 0.0);
    EXPECT_GT(e.cxlJ, 0.0);
}

} // namespace
} // namespace longsight

/**
 * @file
 * Allocation regression for the decode hot path: after warmup, a
 * steady-state software decode step — KV append into a reserved cache
 * plus MultiHeadLongSight::computeInto across every query head —
 * performs exactly zero heap allocations. This binary links
 * ls_alloc_hook, so the global operator new/delete are counting
 * wrappers; nothing else in the suite pays for that.
 *
 * Under ASan/TSan the sanitizer allocator changes allocation behaviour
 * (and its own bookkeeping would show up in the counters), so the
 * zero-allocation assertions are skipped there; the decode itself
 * still runs under the sanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/kv_block_pool.hh"
#include "core/kv_cache.hh"
#include "core/multi_head.hh"
#include "model/workload.hh"
#include "util/alloc_hook.hh"
#include "util/rng.hh"
#include "util/scratch_arena.hh"
#include "util/thread_pool.hh"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LS_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LS_SANITIZED 1
#endif
#endif

namespace longsight {
namespace {

struct DecodeRig
{
    static constexpr uint32_t kDim = 64;
    static constexpr uint32_t kKvHeads = 2;
    static constexpr uint32_t kQHeads = 4;
    static constexpr size_t kContext = 1024;
    static constexpr size_t kSteps = 48;

    std::vector<HeadWorkload> workloads;
    std::unique_ptr<KvBlockPool> pool; //!< set in paged mode
    std::vector<KvCache> caches;
    MultiHeadLongSight mh;
    std::vector<Matrix> queries; //!< pregenerated, one per step
    LayerAttentionResult result;
    size_t pos = kContext;

    explicit DecodeRig(bool paged = false)
        : mh(config(), kQHeads, kKvHeads, kDim)
    {
        if (paged) {
            const uint32_t bt = 128;
            const uint32_t per_cache =
                (kContext + kSteps + bt - 1) / bt + 1;
            pool = std::make_unique<KvBlockPool>(kDim, bt,
                                                 per_cache * kKvHeads);
        }
        WorkloadConfig wcfg;
        wcfg.headDim = kDim;
        Rng root(3);
        caches.reserve(kKvHeads);
        for (uint32_t h = 0; h < kKvHeads; ++h) {
            workloads.emplace_back(wcfg, root.fork());
            workloads[h].generate(kContext + kSteps);
            if (pool)
                caches.emplace_back(*pool);
            else
                caches.emplace_back(kDim);
            caches[h].reserve(kContext + kSteps);
            for (size_t i = 0; i < kContext; ++i)
                caches[h].append(workloads[h].keys().row(i),
                                 workloads[h].values().row(i));
        }
        const uint32_t group = kQHeads / kKvHeads;
        queries.resize(kSteps);
        for (auto &m : queries) {
            m.resize(kQHeads, kDim);
            for (uint32_t q = 0; q < kQHeads; ++q) {
                const auto v = workloads[q / group].drawQuery();
                m.setRow(q, v.data());
            }
        }
    }

    static LongSightConfig config()
    {
        LongSightConfig cfg;
        cfg.windowSize = 256;
        cfg.sinkTokens = 8;
        cfg.topK = 128;
        cfg.defaultThreshold = kDim / 2;
        return cfg;
    }

    void step(size_t s)
    {
        for (uint32_t h = 0; h < kKvHeads; ++h)
            caches[h].append(workloads[h].keys().row(pos),
                             workloads[h].values().row(pos));
        ++pos;
        mh.computeInto(queries[s], caches, result);
    }
};

/**
 * Grow every lane's scratch arena past the per-head peak. Lane/index
 * assignment inside parallelFor is racy, so an ordinary warmup loop
 * cannot guarantee that each lane's arena has seen its worst case —
 * a barrier pins one index to each lane while all of them allocate.
 */
void
prewarmLaneArenas(unsigned lanes)
{
    std::atomic<unsigned> arrived{0};
    ThreadPool::global().parallelForEach(0, lanes, [&](size_t) {
        arrived.fetch_add(1);
        while (arrived.load() < lanes) {
        }
        ScratchFrame frame(ScratchArena::forThisThread());
        frame.alloc<std::byte>(1 << 20);
    });
}

void
expectZeroSteadyStateAllocs(unsigned threads, bool paged = false)
{
    ThreadPool::configureGlobal(threads);
    prewarmLaneArenas(threads);
    DecodeRig rig(paged);

    // Warmup: vector capacities, per-lane scratch arenas, and the
    // thread-pool queue all reach their steady footprint here.
    const size_t warmup = 16;
    for (size_t s = 0; s < warmup; ++s)
        rig.step(s);

    const AllocCounters before = allocSnapshot();
    for (size_t s = warmup; s < DecodeRig::kSteps; ++s)
        rig.step(s);
    const AllocCounters during = allocSnapshot() - before;

#ifdef LS_SANITIZED
    GTEST_SKIP() << "sanitizer allocator active; zero-alloc assertion "
                    "not meaningful";
#else
    ASSERT_TRUE(allocHookActive());
    EXPECT_EQ(during.allocs, 0u)
        << during.allocs << " heap allocations ("
        << during.bytes << " bytes) leaked into "
        << DecodeRig::kSteps - warmup
        << " steady-state decode steps at " << threads << " lane(s)";
    EXPECT_EQ(during.bytes, 0u);
#endif
    // Sanity either way: the steps actually computed something.
    EXPECT_EQ(rig.result.outputs.rows(), DecodeRig::kQHeads);
    EXPECT_EQ(rig.result.perQuery.size(), DecodeRig::kQHeads);
    EXPECT_GT(rig.result.stats.rawKeys, 0u);
}

TEST(AllocRegression, DecodeStepIsAllocationFreeSerial)
{
    expectZeroSteadyStateAllocs(1);
}

TEST(AllocRegression, DecodeStepIsAllocationFreeParallel)
{
    expectZeroSteadyStateAllocs(2);
    // Restore the default pool for any test run after this one.
    ThreadPool::configureGlobal(0);
}

TEST(AllocRegression, PagedDecodeStepIsAllocationFreeSerial)
{
    expectZeroSteadyStateAllocs(1, /*paged=*/true);
}

TEST(AllocRegression, PagedDecodeStepIsAllocationFreeParallel)
{
    expectZeroSteadyStateAllocs(2, /*paged=*/true);
    ThreadPool::configureGlobal(0);
}

/**
 * reserve() before enabling ITQ rotation / key quantization must still
 * cover the stores those features add: the remembered ceiling is
 * re-applied inside both enable paths, so the reserve-then-enable
 * ordering keeps steady-state appends allocation-free too. (The old
 * code reserved rotatedSigns_/quantizedKeys_ only when the feature was
 * already on, so this ordering used to reallocate on every append
 * window.)
 */
TEST(AllocRegression, ReserveThenEnableOrderingStaysAllocationFree)
{
    constexpr uint32_t dim = 64;
    constexpr size_t total = 2048;
    Rng rng(17);
    std::vector<std::vector<float>> kv;
    for (size_t i = 0; i < total; ++i)
        kv.push_back(rng.gaussianVec(dim));

    KvCache cache(dim);
    cache.reserve(total);
    // Enable AFTER the reserve, with a few rows already present.
    for (size_t i = 0; i < 8; ++i)
        cache.append(kv[i].data(), kv[i].data());
    cache.setItqRotation(Matrix::identity(dim));
    cache.enableKeyQuantization();

    // Warmup one append (rotation scratch sizes itself once).
    cache.append(kv[8].data(), kv[8].data());

    const AllocCounters before = allocSnapshot();
    for (size_t i = 9; i < total; ++i)
        cache.append(kv[i].data(), kv[i].data());
    const AllocCounters during = allocSnapshot() - before;

#ifdef LS_SANITIZED
    GTEST_SKIP() << "sanitizer allocator active";
#else
    ASSERT_TRUE(allocHookActive());
    EXPECT_EQ(during.allocs, 0u)
        << during.allocs << " allocations in reserve-then-enable appends";
#endif
    EXPECT_EQ(cache.size(), total);
}

} // namespace
} // namespace longsight

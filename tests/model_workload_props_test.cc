/**
 * @file
 * Parameterized property tests for the workload generator across head
 * dimensions and dataset presets — the statistical contract the
 * quality experiments rest on (DESIGN.md "Substitutions").
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/attention.hh"
#include "model/workload.hh"
#include "tensor/softmax.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

struct Case
{
    uint32_t headDim;
    const char *preset; // "default", "pg", "wiki2"
};

WorkloadConfig
configFor(const Case &c)
{
    if (std::string(c.preset) == "pg")
        return WorkloadConfig::pgLike(c.headDim);
    if (std::string(c.preset) == "wiki2")
        return WorkloadConfig::wiki2Like(c.headDim);
    WorkloadConfig cfg;
    cfg.headDim = c.headDim;
    return cfg;
}

class WorkloadProps : public ::testing::TestWithParam<Case>
{
};

TEST_P(WorkloadProps, SegmentsAreMonotoneRuns)
{
    HeadWorkload wl(configFor(GetParam()), Rng(1));
    wl.generate(2000);
    const auto &segs = wl.segments();
    const auto &topics = wl.topics();
    for (size_t i = 1; i < segs.size(); ++i) {
        EXPECT_GE(segs[i], segs[i - 1]);
        EXPECT_LE(segs[i], segs[i - 1] + 1);
        if (segs[i] == segs[i - 1])
            EXPECT_EQ(topics[i], topics[i - 1])
                << "a segment never changes topic";
    }
}

TEST_P(WorkloadProps, KeysAndQueriesFinite)
{
    HeadWorkload wl(configFor(GetParam()), Rng(2));
    wl.generate(500);
    for (size_t i = 0; i < wl.keys().size(); ++i)
        ASSERT_TRUE(std::isfinite(wl.keys().data()[i]));
    for (int t = 0; t < 5; ++t) {
        const auto q = wl.drawQuery();
        for (float v : q)
            ASSERT_TRUE(std::isfinite(v));
    }
}

TEST_P(WorkloadProps, TargetSegmentCapturesRealMass)
{
    // A query aimed at a specific past segment must put substantially
    // more softmax mass on that segment than its share of the context
    // — the planted-relevance contract behind every quality figure.
    const auto cfg = configFor(GetParam());
    HeadWorkload wl(cfg, Rng(3));
    const size_t n = 3000;
    wl.generate(n);
    const uint32_t target = wl.segments()[n / 2];
    const auto q = wl.drawQueryForSegment(target);
    auto probs =
        attentionScores(q.data(), wl.keys(), 0, n, wl.attentionScale());
    softmaxInPlace(probs);
    double seg_mass = 0.0;
    size_t seg_tokens = 0;
    for (size_t i = 0; i < n; ++i) {
        if (wl.segments()[i] == target) {
            seg_mass += probs[i];
            ++seg_tokens;
        }
    }
    const double share = static_cast<double>(seg_tokens) / n;
    // Large segments (pg-like) can't exceed mass 1; cap the bound.
    EXPECT_GT(seg_mass, std::min(0.8, 5.0 * share))
        << "segment of " << seg_tokens << " tokens";
}

TEST_P(WorkloadProps, RopeChangesKeysButNotPlantedStructure)
{
    Case c = GetParam();
    auto with = configFor(c);
    auto without = configFor(c);
    without.applyRope = false;
    HeadWorkload a(with, Rng(4));
    HeadWorkload b(without, Rng(4));
    a.generate(300);
    b.generate(300);
    // Same latent structure...
    EXPECT_EQ(a.topics(), b.topics());
    EXPECT_EQ(a.segments(), b.segments());
    // ...different key values (except position 0, RoPE identity).
    float diff = 0;
    for (size_t i = 1; i < 300; ++i)
        for (uint32_t d = 0; d < c.headDim; ++d)
            diff += std::abs(a.keys()(i, d) - b.keys()(i, d));
    EXPECT_GT(diff, 1.0f);
}

TEST_P(WorkloadProps, AppendMatchesGenerate)
{
    // generate(n) and generate(n-5) + 5 x appendToken must agree on
    // the latent structure (keys involve the same rng stream order).
    const auto cfg = configFor(GetParam());
    HeadWorkload full(cfg, Rng(5));
    full.generate(100);
    HeadWorkload grown(cfg, Rng(5));
    grown.generate(95);
    for (int i = 0; i < 5; ++i)
        grown.appendToken();
    EXPECT_EQ(full.topics(), grown.topics());
    for (size_t i = 0; i < 100; ++i)
        for (uint32_t d = 0; d < cfg.headDim; ++d)
            ASSERT_EQ(full.keys()(i, d), grown.keys()(i, d))
                << "token " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WorkloadProps,
    ::testing::Values(Case{64, "default"}, Case{128, "default"},
                      Case{64, "pg"}, Case{64, "wiki2"},
                      Case{128, "wiki2"}));

} // namespace
} // namespace longsight

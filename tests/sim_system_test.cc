/**
 * @file
 * Tests for the system-level serving simulators: baseline scaling
 * behaviours, capacity walls, LongSight crossovers, and breakdown
 * accounting — the shape constraints behind Figures 7 and 9.
 */

#include <gtest/gtest.h>

#include "model/model_config.hh"
#include "sim/attacc_system.hh"
#include "sim/baseline_gpu.hh"
#include "sim/longsight_system.hh"

namespace longsight {
namespace {

LongSightSystemConfig
defaultLsConfig()
{
    return LongSightSystemConfig{};
}

TEST(Baseline, TwoGpusDoubleCapacityAndThroughput)
{
    const auto m = ModelConfig::llama3_8b();
    BaselineGpuSystem one(GpuConfig::h100(), m, 1);
    BaselineGpuSystem two(GpuConfig::h100(), m, 2);
    const uint64_t ctx = 65536;
    EXPECT_EQ(two.maxUsers(ctx), 2 * one.maxUsers(ctx));

    const uint32_t users = one.maxUsers(ctx);
    const auto r1 = one.decode(ctx, users);
    const auto r2 = two.decode(ctx, 2 * users);
    ASSERT_TRUE(r1.feasible);
    ASSERT_TRUE(r2.feasible);
    EXPECT_NEAR(r2.tokensPerSecond / r1.tokensPerSecond, 2.0, 0.05);
}

TEST(Baseline, InfeasibleBeyondCapacity)
{
    const auto m = ModelConfig::llama3_8b();
    BaselineGpuSystem sys(GpuConfig::h100(), m, 1);
    const auto r = sys.decode(1'000'000, 1);
    EXPECT_FALSE(r.feasible);
    EXPECT_FALSE(r.limitedBy.empty());
}

TEST(Baseline, LatencyGrowsWithContext)
{
    const auto m = ModelConfig::llama3_1b();
    BaselineGpuSystem sys(GpuConfig::h100(), m, 1);
    const auto short_ctx = sys.decode(32768, 1);
    const auto long_ctx = sys.decode(131072, 1);
    ASSERT_TRUE(short_ctx.feasible && long_ctx.feasible);
    EXPECT_GT(long_ctx.perTokenLatencyUs, short_ctx.perTokenLatencyUs);
}

TEST(Baseline, ThroughputGrowsWithUsersUntilSaturation)
{
    const auto m = ModelConfig::llama3_1b();
    BaselineGpuSystem sys(GpuConfig::h100(), m, 1);
    const uint64_t ctx = 32768;
    double prev = 0.0;
    for (uint32_t users : {1u, 2u, 4u, 8u, 16u}) {
        const auto r = sys.decode(ctx, users);
        ASSERT_TRUE(r.feasible) << users;
        EXPECT_GE(r.tokensPerSecond, prev * 0.999);
        prev = r.tokensPerSecond;
    }
}

TEST(AttAcc, FasterThanGpuForAttentionHeavyConfigs)
{
    const auto m = ModelConfig::llama3_8b();
    BaselineGpuSystem gpu(GpuConfig::h100(), m, 1);
    AttAccSystem attacc(GpuConfig::h100(), m);
    const uint64_t ctx = 131072;
    const auto rg = gpu.decode(ctx, 1);
    const auto ra = attacc.decode(ctx, 1);
    ASSERT_TRUE(rg.feasible && ra.feasible);
    EXPECT_LT(ra.perTokenLatencyUs, rg.perTokenLatencyUs);
}

TEST(AttAcc, SameCapacityWallAsGpu)
{
    const auto m = ModelConfig::llama3_8b();
    BaselineGpuSystem gpu(GpuConfig::h100(), m, 1);
    AttAccSystem attacc(GpuConfig::h100(), m);
    EXPECT_EQ(attacc.maxUsers(65536), gpu.maxUsers(65536));
}

TEST(SlidingWindow, ContextIndependentLatency)
{
    const auto m = ModelConfig::llama3_8b();
    SlidingWindowSystem sys(GpuConfig::h100(), m, 1024, 16);
    const auto a = sys.decode(32768, 4);
    const auto b = sys.decode(1'000'000, 4);
    ASSERT_TRUE(a.feasible && b.feasible);
    EXPECT_EQ(a.stepTime, b.stepTime);
}

TEST(LongSight, SupportsOneMillionTokens)
{
    // The paper's headline claim: 1 GPU + 1 DReX serves 1M-token
    // contexts for both Llama-3 models.
    for (const auto &m :
         {ModelConfig::llama3_1b(), ModelConfig::llama3_8b()}) {
        LongSightSystem sys(defaultLsConfig(), m);
        EXPECT_GE(sys.maxUsers(1'000'000), 1u) << m.name;
        const auto r = sys.decode(1'000'000, 1);
        EXPECT_TRUE(r.feasible) << m.name;
        EXPECT_GT(r.tokensPerSecond, 0.0) << m.name;
    }
}

TEST(LongSight, BeatsGpuAtMaxGpuContext)
{
    // At the largest context a single GPU supports, LongSight must
    // deliver higher throughput (Fig. 7's 8.1-9.6x claim; we assert
    // the direction and a conservative margin).
    for (const auto &m :
         {ModelConfig::llama3_1b(), ModelConfig::llama3_8b()}) {
        BaselineGpuSystem gpu(GpuConfig::h100(), m, 1);
        LongSightSystem ls(defaultLsConfig(), m);
        // Largest power-of-two context with >= 1 dense user.
        uint64_t ctx = 32768;
        while (gpu.maxUsers(ctx * 2) >= 1)
            ctx *= 2;
        const uint32_t gpu_users = gpu.maxUsers(ctx);
        const uint32_t ls_users = std::min(ls.maxUsers(ctx), 512u);
        const auto rg = gpu.decode(ctx, gpu_users);
        const auto rl = ls.decode(ctx, ls_users);
        ASSERT_TRUE(rg.feasible && rl.feasible) << m.name;
        EXPECT_GT(rl.tokensPerSecond, 2.0 * rg.tokensPerSecond)
            << m.name << " ctx=" << ctx;
    }
}

TEST(LongSight, MoreConcurrentUsersThanGpu)
{
    const auto m = ModelConfig::llama3_8b();
    BaselineGpuSystem gpu(GpuConfig::h100(), m, 1);
    LongSightSystem ls(defaultLsConfig(), m);
    const uint64_t ctx = 131072;
    EXPECT_GT(ls.maxUsers(ctx), 4 * gpu.maxUsers(ctx));
}

TEST(LongSight, BreakdownSumsToStepTime)
{
    const auto m = ModelConfig::llama3_8b();
    LongSightSystem ls(defaultLsConfig(), m);
    for (uint32_t users : {1u, 8u}) {
        const auto r = ls.decode(131072, users);
        ASSERT_TRUE(r.feasible);
        EXPECT_EQ(r.breakdown.total(), r.stepTime) << users << " users";
    }
}

TEST(LongSight, GpuDominatesFewUsersDrexShareGrowsWithUsers)
{
    // §9.2: with few users the GPU dominates the per-token time; as
    // users grow, the DReX/CXL share of the step grows until it is
    // the bottleneck.
    const auto m = ModelConfig::llama3_8b();
    LongSightSystem ls(defaultLsConfig(), m);
    const uint64_t ctx = 32768;

    auto shares = [](const ServingResult &r) {
        const double total = static_cast<double>(r.stepTime);
        const double gpu = static_cast<double>(
            r.breakdown.gpuNonAttention + r.breakdown.itq +
            r.breakdown.gpuWindowExposed + r.breakdown.softmax);
        const double drex = static_cast<double>(
            r.breakdown.drexExposed + r.breakdown.submit +
            r.breakdown.poll);
        return std::make_pair(gpu / total, drex / total);
    };

    const auto few = ls.decode(ctx, 1);
    ASSERT_TRUE(few.feasible);
    const auto [gpu_few, drex_few] = shares(few);
    EXPECT_GT(gpu_few, drex_few) << "single user should be GPU-bound";

    const uint32_t many = std::min(ls.maxUsers(ctx), 256u);
    const auto loaded = ls.decode(ctx, many);
    ASSERT_TRUE(loaded.feasible);
    const auto [gpu_many, drex_many] = shares(loaded);
    EXPECT_GT(drex_many, drex_few)
        << "DReX share must grow with load (" << many << " users)";
    EXPECT_GT(drex_many, gpu_many)
        << "fully loaded DReX should be the bottleneck";
}

TEST(LongSight, ShortContextSkipsOffload)
{
    const auto m = ModelConfig::llama3_1b();
    LongSightSystem ls(defaultLsConfig(), m);
    const auto r = ls.decode(512, 4);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.breakdown.drexExposed, 0u);
    EXPECT_EQ(r.breakdown.submit, 0u);
}

TEST(LongSight, OffloadObservationScalesSublinearly)
{
    // §9.1: "DReX offload time scales sub-linearly with context
    // length" per token — check service time grows, but less than
    // proportionally past the value-read fixed cost.
    const auto m = ModelConfig::llama3_8b();
    LongSightSystem ls(defaultLsConfig(), m);
    const auto small = ls.observeOffload(32768);
    const auto large = ls.observeOffload(131072);
    const Tick ts = small.result.doneTick - small.result.startTick;
    const Tick tl = large.result.doneTick - large.result.startTick;
    EXPECT_GT(tl, ts);
    EXPECT_LT(tl, 4 * ts);
}

TEST(LongSight, ValueReadDominatesShortContexts)
{
    // Fig. 8: short contexts are bottlenecked by value loading (a
    // fixed per-user cost), long contexts by scoring.
    const auto m = ModelConfig::llama3_8b();
    LongSightSystem ls(defaultLsConfig(), m);
    const auto small = ls.observeOffload(8192);
    EXPECT_GT(small.result.timing.valueRead + small.cxlValueTime,
              small.result.timing.score);
    const auto large = ls.observeOffload(1'000'000);
    EXPECT_GT(large.result.timing.score, large.result.timing.valueRead);
}

TEST(LongSight, ThroughputPlateausWithUsers)
{
    // §9.1: throughput eventually plateaus as users increase.
    const auto m = ModelConfig::llama3_8b();
    LongSightSystem ls(defaultLsConfig(), m);
    const uint64_t ctx = 131072;
    const uint32_t cap = std::min(ls.maxUsers(ctx), 512u);
    ASSERT_GE(cap, 16u);
    const auto mid = ls.decode(ctx, cap / 2);
    const auto full = ls.decode(ctx, cap);
    ASSERT_TRUE(mid.feasible && full.feasible);
    // Doubling users must NOT double throughput at saturation.
    EXPECT_LT(full.tokensPerSecond, 1.7 * mid.tokensPerSecond);
}

TEST(LongSight, PerTokenLatencyRisesModestlyWithUsers)
{
    const auto m = ModelConfig::llama3_1b();
    LongSightSystem ls(defaultLsConfig(), m);
    const uint64_t ctx = 65536;
    const auto r1 = ls.decode(ctx, 1);
    const auto r16 = ls.decode(ctx, 16);
    ASSERT_TRUE(r1.feasible && r16.feasible);
    EXPECT_GT(r16.perTokenLatencyUs, r1.perTokenLatencyUs * 0.99);
    EXPECT_LT(r16.perTokenLatencyUs, 16.0 * r1.perTokenLatencyUs);
}

TEST(LongSight, MultipleDrexDevicesScaleCapacityAndThroughput)
{
    const auto m = ModelConfig::llama3_8b();
    LongSightSystemConfig one_cfg, four_cfg;
    four_cfg.numDrexDevices = 4;
    LongSightSystem one(one_cfg, m);
    LongSightSystem four(four_cfg, m);

    const uint64_t ctx = 1'000'000;
    EXPECT_GE(four.maxUsers(ctx), 3 * one.maxUsers(ctx));

    // At a DReX-bound operating point, 4 devices serve the same batch
    // with a much shorter step.
    const uint32_t users = std::min(one.maxUsers(ctx), 4u);
    const auto r1 = one.decode(ctx, users);
    const auto r4 = four.decode(ctx, users);
    ASSERT_TRUE(r1.feasible && r4.feasible);
    EXPECT_LT(r4.stepTime, r1.stepTime);
}

TEST(LongSight, SurvivorFractionConsistentWithFilterRatio)
{
    const auto m = ModelConfig::llama3_8b();
    LongSightSystemConfig cfg;
    cfg.filterRatio = 20.0;
    LongSightSystem ls(cfg, m);
    const uint64_t region = 100'000;
    const double frac = ls.survivorFraction(region);
    // survivors + k == 2 * raw / ratio.
    const double survivors = frac * region;
    EXPECT_NEAR((survivors + cfg.topK) / (2.0 * region), 1.0 / 20.0,
                1e-3);
}

} // namespace
} // namespace longsight

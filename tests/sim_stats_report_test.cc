/**
 * @file
 * Tests for the uniform stats report.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/filter_stats.hh"
#include "cxl/link.hh"
#include "dram/package.hh"
#include "drex/drex_device.hh"
#include "sim/stats_report.hh"

namespace longsight {
namespace {

TEST(StatsReport, ChannelRowsRenderActivity)
{
    LpddrTimings t;
    DramChannel ch(t);
    ch.read(0, 0, 0, 64);
    ch.read(0, 0, 0, 64);
    ch.write(0, 1, 0, 32);
    StatsReport report("run");
    report.addChannel("ch0", ch);
    std::ostringstream os;
    report.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("ch0"), std::string::npos);
    EXPECT_NE(s.find("reads"), std::string::npos);
    EXPECT_NE(s.find("160"), std::string::npos); // 64+64+32 bytes
}

TEST(StatsReport, PackageAggregatesChannels)
{
    LpddrTimings t;
    DramPackage pkg(t, 4);
    pkg.readStriped(0, 0, 0, 256);
    StatsReport report("run");
    report.addPackage("pkg0", pkg);
    std::ostringstream os;
    report.print(os);
    EXPECT_NE(os.str().find("256"), std::string::npos);
}

TEST(StatsReport, DeviceSkipsIdlePackages)
{
    DrexConfig cfg;
    cfg.numKvHeads = 1;
    cfg.numLayers = 1;
    cfg.headDim = 64;
    DrexDevice dev(cfg);
    dev.chargeContextWrite(0, 0, 0, 0, 0, 16);
    StatsReport report("run");
    report.addDevice("drex", dev);
    std::ostringstream os;
    report.print(os);
    const std::string s = os.str();
    // Exactly one package saw traffic.
    size_t pkg_mentions = 0;
    for (size_t pos = 0; (pos = s.find(".pkg", pos)) != std::string::npos;
         ++pos)
        ++pkg_mentions;
    // 4 rows per active package.
    EXPECT_EQ(pkg_mentions, 4u);
}

TEST(StatsReport, LinkAndFilterAndScalar)
{
    CxlLink link(CxlConfig{});
    link.bulkRead(0, 1234);
    FilterStats fs;
    fs.record(100, 10, 5);
    StatsReport report("run");
    report.addLink("cxl", link);
    report.addFilterStats("scf", fs);
    report.addScalar("tokens", "42", "generated");
    EXPECT_GE(report.entries(), 7u);
    std::ostringstream os;
    report.print(os);
    EXPECT_NE(os.str().find("1234"), std::string::npos);
    EXPECT_NE(os.str().find("13.33x"), std::string::npos);
    EXPECT_NE(os.str().find("generated"), std::string::npos);
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the GPU roofline model: compute-vs-bandwidth regimes,
 * capacity accounting, and the decode-time scaling behaviours the
 * Fig. 7 baselines depend on.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_model.hh"
#include "model/model_config.hh"

namespace longsight {
namespace {

TEST(Gpu, RooflineTakesTheSlowerSide)
{
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_1b());
    const GpuConfig &cfg = g.gpu();
    // Memory-bound case: 1 GB, negligible flops.
    const Tick mem = g.rooflineTime(1.0, 1e9);
    EXPECT_NEAR(toSeconds(mem), 1e9 / (cfg.hbmBandwidth * cfg.bwEfficiency),
                1e-6);
    // Compute-bound case: 1 PFLOP, negligible bytes.
    const Tick comp = g.rooflineTime(1e15, 1.0);
    EXPECT_NEAR(toSeconds(comp),
                1e15 / (cfg.peakFlops * cfg.flopsEfficiency), 1e-6);
}

TEST(Gpu, DenseAttentionScalesLinearlyWithContext)
{
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_8b());
    const Tick t32k = g.denseAttentionTime(32768, 1);
    const Tick t64k = g.denseAttentionTime(65536, 1);
    const double ratio = static_cast<double>(t64k - g.gpu().kernelLaunchOverhead) /
        static_cast<double>(t32k - g.gpu().kernelLaunchOverhead);
    EXPECT_NEAR(ratio, 2.0, 0.05);
}

TEST(Gpu, DecodeAttentionIsMemoryBound)
{
    // For decode (one query), attention arithmetic intensity is ~1
    // FLOP/byte: the time must equal the KV streaming time.
    const auto m = ModelConfig::llama3_8b();
    GpuModel g(GpuConfig::h100(), m);
    const uint64_t ctx = 131072;
    const Tick t = g.denseAttentionTime(ctx, 1) -
        g.gpu().kernelLaunchOverhead;
    const double bytes = static_cast<double>(m.kvBytesPerToken()) * ctx;
    const double expect =
        bytes / (g.gpu().hbmBandwidth * g.gpu().bwEfficiency);
    EXPECT_NEAR(toSeconds(t), expect, expect * 0.01);
}

TEST(Gpu, NonAttentionAmortizesWeightsAcrossBatch)
{
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_8b());
    const Tick one = g.decodeNonAttentionTime(1);
    const Tick eight = g.decodeNonAttentionTime(8);
    // Weight streaming dominates at small batch: near-equal times.
    EXPECT_LT(static_cast<double>(eight),
              1.5 * static_cast<double>(one));
}

TEST(Gpu, NonAttentionEventuallyComputeBound)
{
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_8b());
    const Tick b64 = g.decodeNonAttentionTime(64);
    const Tick b512 = g.decodeNonAttentionTime(512);
    EXPECT_GT(b512, 4 * b64 / 2); // clearly growing with batch
}

TEST(Gpu, KvBudgetPositiveAndBelowCapacity)
{
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_8b());
    EXPECT_GT(g.kvBudgetBytes(), 0u);
    EXPECT_LT(g.kvBudgetBytes(), g.gpu().hbmCapacity);
}

TEST(Gpu, MaxUsersMatchesKvFootprint)
{
    const auto m = ModelConfig::llama3_8b();
    GpuModel g(GpuConfig::h100(), m);
    const uint64_t ctx = 131072; // 128K tokens x 128 KiB/token = 16 GiB
    const uint32_t users = g.maxUsersDense(ctx);
    EXPECT_EQ(users, g.kvBudgetBytes() / (m.kvBytesPerToken() * ctx));
    EXPECT_GE(users, 1u);
    EXPECT_LE(users, 8u);
}

TEST(Gpu, OneMillionTokensDoNotFitOn8B)
{
    // The paper's headline: 1M context on Llama-3-8B exceeds a single
    // H100's HBM (1M x 128 KiB = 128 GiB).
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_8b());
    EXPECT_EQ(g.maxUsersDense(1'000'000), 0u);
}

TEST(Gpu, WindowedFootprintSupportsManyUsers)
{
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_8b());
    EXPECT_GT(g.maxUsersWindowed(1024 + 16 + 128), 256u);
}

TEST(Gpu, ItqOverheadSmallVersusNonAttention)
{
    // §5.4: ITQ runtime overhead is a small fraction of a decode step.
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_1b());
    const Tick itq = g.itqRotationTime(1);
    const Tick step = g.decodeNonAttentionTime(1);
    EXPECT_LT(static_cast<double>(itq), 0.05 * static_cast<double>(step));
}

TEST(Gpu, SoftmaxCombineScalesWithCandidates)
{
    GpuModel g(GpuConfig::h100(), ModelConfig::llama3_8b());
    EXPECT_LT(g.softmaxCombineTime(1024, 1),
              g.softmaxCombineTime(8192, 1));
    EXPECT_EQ(g.softmaxCombineTime(0, 1), 0u);
}

TEST(Gpu, WeightsMustFit)
{
    // A model bigger than HBM must be rejected up front.
    ModelConfig huge = ModelConfig::llama3_8b();
    huge.hiddenDim = 16384;
    huge.ffnDim = 65536;
    huge.numLayers = 128;
    EXPECT_DEATH({ GpuModel g(GpuConfig::h100(), huge); (void)g; },
                 "do not fit");
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the §8.1.3 threshold tuner against synthetic evaluators
 * with known optima.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/threshold_tuner.hh"

namespace longsight {
namespace {

/**
 * Synthetic evaluator: per-head filter ratio grows exponentially with
 * its threshold, perplexity grows with the sum of thresholds past a
 * per-head "safe" level.
 */
struct SyntheticEvaluator
{
    std::vector<int> safeLevel;
    uint32_t calls = 0;

    ThresholdEval operator()(const std::vector<int> &th)
    {
        ++calls;
        ThresholdEval ev;
        double ppl = 0.0, ratio_sum = 0.0;
        ev.headFilterRatios.resize(th.size());
        for (size_t h = 0; h < th.size(); ++h) {
            ev.headFilterRatios[h] = std::exp(0.05 * th[h]);
            ratio_sum += ev.headFilterRatios[h];
            if (th[h] > safeLevel[h])
                ppl += 2.0 * (th[h] - safeLevel[h]);
        }
        ev.pplIncreasePct = ppl;
        ev.overallFilterRatio = ratio_sum / th.size();
        return ev;
    }
};

TEST(Tuner, StaysWithinBudget)
{
    SyntheticEvaluator eval{{16, 24, 8, 32}};
    ThresholdTuner tuner(5.0, 4, 200);
    const TuneResult r = tuner.tune(std::ref(eval), 4, 64);
    EXPECT_LE(r.pplIncreasePct, 5.0);
    EXPECT_EQ(r.thresholds.size(), 4u);
}

TEST(Tuner, RaisesThresholdsAboveZero)
{
    SyntheticEvaluator eval{{16, 24, 8, 32}};
    ThresholdTuner tuner(5.0, 4, 200);
    const TuneResult r = tuner.tune(std::ref(eval), 4, 64);
    int raised = 0;
    for (int t : r.thresholds)
        raised += (t > 0);
    EXPECT_GE(raised, 3) << "tuner should make progress on most heads";
    EXPECT_GT(r.filterRatio, 1.0);
}

TEST(Tuner, ApproachesSafeLevels)
{
    // With a tight budget the tuner should push each head near (but
    // not far past) its safe level.
    SyntheticEvaluator eval{{12, 20, 28, 36}};
    ThresholdTuner tuner(1.0, 4, 400);
    const TuneResult r = tuner.tune(std::ref(eval), 4, 64);
    for (size_t h = 0; h < 4; ++h) {
        EXPECT_LE(r.thresholds[h], eval.safeLevel[h] + 4) << "head " << h;
        EXPECT_GE(r.thresholds[h], eval.safeLevel[h] - 8) << "head " << h;
    }
}

TEST(Tuner, RespectsIterationCap)
{
    SyntheticEvaluator eval{{60, 60}};
    ThresholdTuner tuner(50.0, 1, 10);
    const TuneResult r = tuner.tune(std::ref(eval), 2, 64);
    EXPECT_LE(r.iterations, 10u);
}

TEST(Tuner, NeverExceedsHeadDim)
{
    SyntheticEvaluator eval{{1000, 1000}};
    ThresholdTuner tuner(100.0, 16, 500);
    const TuneResult r = tuner.tune(std::ref(eval), 2, 64);
    for (int t : r.thresholds)
        EXPECT_LE(t, 64);
}

TEST(Tuner, ZeroBudgetKeepsZeroThresholdsWhenAnyIncreaseHurts)
{
    SyntheticEvaluator eval{{0, 0}};
    // Any raise above level 0 costs 2% > 0.5% budget.
    ThresholdTuner tuner(0.5, 4, 100);
    const TuneResult r = tuner.tune(std::ref(eval), 2, 64);
    EXPECT_EQ(r.thresholds, std::vector<int>({0, 0}));
    EXPECT_DOUBLE_EQ(r.pplIncreasePct, 0.0);
}

TEST(Tuner, PrefersLowestRatioHeadFirst)
{
    // Head 1 starts with a much lower ratio; the tuner's first move
    // must target it. Track via call inspection.
    struct Probe
    {
        std::vector<std::vector<int>> seen;
        ThresholdEval operator()(const std::vector<int> &th)
        {
            seen.push_back(th);
            ThresholdEval ev;
            ev.headFilterRatios = {
                10.0 + th[0], 1.0 + th[1], 10.0 + th[2]};
            ev.overallFilterRatio =
                (ev.headFilterRatios[0] + ev.headFilterRatios[1] +
                 ev.headFilterRatios[2]) / 3.0;
            ev.pplIncreasePct = 0.0;
            return ev;
        }
    } probe;
    ThresholdTuner tuner(5.0, 2, 3);
    tuner.tune(std::ref(probe), 3, 64);
    ASSERT_GE(probe.seen.size(), 2u);
    // Second evaluation = first move: head 1 raised, others unchanged.
    EXPECT_EQ(probe.seen[1][0], 0);
    EXPECT_EQ(probe.seen[1][1], 2);
    EXPECT_EQ(probe.seen[1][2], 0);
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the clustering-ANNS and LSH baselines: candidate
 * correctness, recall behaviour on clustered data, and the cost
 * accounting that backs the §4 argument against indexed ANNS for the
 * KV cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "eval/sparse_baselines.hh"
#include "model/workload.hh"
#include "tensor/linalg.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

Matrix
clusteredKeys(size_t n, uint32_t dim, uint64_t seed)
{
    WorkloadConfig cfg;
    cfg.headDim = dim;
    cfg.applyRope = false;
    HeadWorkload wl(cfg, Rng(seed));
    wl.generate(n);
    return wl.keys();
}

TEST(KMeans, MembersPartitionTheKeys)
{
    Rng rng(1);
    const Matrix keys = clusteredKeys(500, 32, 2);
    KMeansIndex idx(keys, 8, 5, rng);
    // Probing every cluster returns every token exactly once.
    std::vector<float> q(32, 0.1f);
    const auto all = idx.candidates(q.data(), 8);
    EXPECT_EQ(all.size(), 500u);
    std::set<uint32_t> uniq(all.begin(), all.end());
    EXPECT_EQ(uniq.size(), 500u);
}

TEST(KMeans, FewerProbesFewerCandidates)
{
    Rng rng(2);
    const Matrix keys = clusteredKeys(800, 32, 3);
    KMeansIndex idx(keys, 16, 5, rng);
    std::vector<float> q(32, 0.1f);
    const auto one = idx.candidates(q.data(), 1);
    const auto four = idx.candidates(q.data(), 4);
    EXPECT_LT(one.size(), four.size());
    // Probe-1 candidates are a subset of probe-4 candidates.
    for (uint32_t tok : one)
        EXPECT_TRUE(std::binary_search(four.begin(), four.end(), tok));
}

TEST(KMeans, TopClusterContainsNearestKey)
{
    // The key most similar to the query should usually live in a
    // probed cluster on well-separated data.
    Rng rng(3);
    const Matrix keys = clusteredKeys(1000, 64, 4);
    KMeansIndex idx(keys, 12, 8, rng);
    int hits = 0;
    const int trials = 20;
    Rng qrng(5);
    for (int t = 0; t < trials; ++t) {
        // Query = a perturbed existing key.
        const auto base = static_cast<size_t>(qrng.below(1000));
        std::vector<float> q = keys.rowVec(base);
        for (auto &x : q)
            x += 0.05f * static_cast<float>(qrng.gaussian());
        uint32_t best = 0;
        float best_s = -1e30f;
        for (size_t i = 0; i < 1000; ++i) {
            const float s = dot(q.data(), keys.row(i), 64);
            if (s > best_s) {
                best_s = s;
                best = static_cast<uint32_t>(i);
            }
        }
        const auto cand = idx.candidates(q.data(), 3);
        hits += std::binary_search(cand.begin(), cand.end(), best);
    }
    EXPECT_GE(hits, trials * 7 / 10);
}

TEST(KMeans, UpdateCostIsPerCentroid)
{
    Rng rng(6);
    const Matrix keys = clusteredKeys(300, 32, 7);
    KMeansIndex idx(keys, 10, 3, rng);
    std::vector<float> k(32, 0.2f);
    EXPECT_EQ(idx.addKey(k.data(), 300), 10u);
    // The added token becomes findable.
    const auto all = idx.candidates(k.data(), 10);
    EXPECT_TRUE(std::binary_search(all.begin(), all.end(), 300u));
}

TEST(KMeans, BuildCostScalesWithIterations)
{
    Rng rng(8);
    const Matrix keys = clusteredKeys(400, 32, 9);
    KMeansIndex cheap(keys, 8, 2, rng);
    KMeansIndex costly(keys, 8, 10, rng);
    EXPECT_GT(costly.buildDistanceComputations(),
              2 * cheap.buildDistanceComputations());
}

TEST(Lsh, SameVectorAlwaysCollides)
{
    Rng rng(10);
    const Matrix keys = clusteredKeys(400, 32, 11);
    LshIndex idx(keys, 4, 8, rng);
    for (size_t i = 0; i < 20; ++i) {
        const auto cand = idx.candidates(keys.row(i));
        EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(),
                                       static_cast<uint32_t>(i)))
            << "key " << i;
    }
}

TEST(Lsh, MoreTablesMoreCandidates)
{
    Rng rng(12);
    const Matrix keys = clusteredKeys(1000, 32, 13);
    LshIndex small(keys, 2, 10, rng);
    LshIndex large(keys, 8, 10, rng);
    std::vector<float> q(32, 0.3f);
    EXPECT_LE(small.candidates(q.data()).size(),
              large.candidates(q.data()).size() + 50);
}

TEST(Lsh, NearbyVectorsCollideOftenerThanRandom)
{
    Rng rng(14);
    const Matrix keys = clusteredKeys(600, 64, 15);
    LshIndex idx(keys, 6, 10, rng);
    Rng qrng(16);
    int near_hits = 0, rand_hits = 0;
    const int trials = 25;
    for (int t = 0; t < trials; ++t) {
        const auto base = static_cast<size_t>(qrng.below(600));
        std::vector<float> nearby = keys.rowVec(base);
        for (auto &x : nearby)
            x += 0.02f * static_cast<float>(qrng.gaussian());
        const auto cn = idx.candidates(nearby.data());
        near_hits += std::binary_search(cn.begin(), cn.end(),
                                        static_cast<uint32_t>(base));
        const auto rv = qrng.gaussianVec(64);
        const auto cr = idx.candidates(rv.data());
        rand_hits += std::binary_search(cr.begin(), cr.end(),
                                        static_cast<uint32_t>(base));
    }
    EXPECT_GT(near_hits, rand_hits);
    EXPECT_GE(near_hits, trials * 7 / 10);
}

TEST(Lsh, UpdateCostIsPerTable)
{
    Rng rng(17);
    const Matrix keys = clusteredKeys(200, 32, 18);
    LshIndex idx(keys, 5, 8, rng);
    std::vector<float> k(32, -0.4f);
    EXPECT_EQ(idx.addKey(k.data(), 200), 5u);
    const auto cand = idx.candidates(k.data());
    EXPECT_TRUE(std::binary_search(cand.begin(), cand.end(), 200u));
}

} // namespace
} // namespace longsight

/**
 * @file
 * Paged-vs-flat differential suite for the block-pool KV cache: the
 * paged layout must be *bit-identical* to the flat layout through
 * every read path — per-row accessors, span-driver scans, hybrid
 * attention outputs — for any block size, including contexts that are
 * not block multiples. Plus the paged-only machinery: copy-on-write
 * fork isolation, prefix publish/adopt, and SCF-driven tier
 * promotion/eviction round-trips that never change an output.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/kv_block_pool.hh"
#include "core/kv_cache.hh"
#include "core/multi_head.hh"
#include "tensor/kernels.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

constexpr uint32_t kDim = 64;

/** Deterministic token stream shared by every cache under test. */
struct TokenStream
{
    std::vector<std::vector<float>> keys, values;

    explicit TokenStream(size_t n, uint64_t seed = 7)
    {
        Rng rng(seed);
        for (size_t i = 0; i < n; ++i) {
            keys.push_back(rng.gaussianVec(kDim));
            values.push_back(rng.gaussianVec(kDim));
        }
    }

    void fill(KvCache &cache, size_t begin, size_t end) const
    {
        for (size_t i = begin; i < end; ++i)
            cache.append(keys[i].data(), values[i].data());
    }
};

void
expectRowsIdentical(const KvCache &flat, const KvCache &paged)
{
    ASSERT_EQ(flat.size(), paged.size());
    for (size_t i = 0; i < flat.size(); ++i) {
        EXPECT_EQ(0, std::memcmp(flat.keyRow(i), paged.keyRow(i),
                                 kDim * sizeof(float)))
            << "key row " << i;
        EXPECT_EQ(0, std::memcmp(flat.valueRow(i), paged.valueRow(i),
                                 kDim * sizeof(float)))
            << "value row " << i;
        EXPECT_EQ(flat.rawSigns(i), paged.rawSigns(i)) << "signs " << i;
        EXPECT_EQ(flat.filterSigns(i), paged.filterSigns(i))
            << "filter signs " << i;
    }
}

TEST(PagedCache, RowAccessMatchesFlatAcrossBlockSizes)
{
    const size_t n = 233; // deliberately not a block multiple
    TokenStream tokens(n);
    KvCache flat(kDim);
    tokens.fill(flat, 0, n);

    for (uint32_t bt : {16u, 64u, 128u}) {
        KvBlockPool pool(kDim, bt, 64);
        KvCache paged(pool);
        EXPECT_TRUE(paged.paged());
        EXPECT_FALSE(flat.paged());
        tokens.fill(paged, 0, n);
        expectRowsIdentical(flat, paged);

        // scoreKey parity (full precision).
        Rng rng(99);
        const auto q = rng.gaussianVec(kDim);
        for (size_t i = 0; i < n; i += 17)
            EXPECT_EQ(flat.scoreKey(q.data(), i),
                      paged.scoreKey(q.data(), i));

        // The block table holds ceil(n / bt) blocks.
        EXPECT_EQ(pool.usedBlocks(), (n + bt - 1) / bt);
    }
}

TEST(PagedCache, CollectSpansTilesTheRange)
{
    const size_t n = 200;
    TokenStream tokens(n);
    KvBlockPool pool(kDim, 48, 16);
    KvCache cache(pool);
    tokens.fill(cache, 0, n);

    std::vector<ScanSpan> spans(cache.maxSpans(10, 190));
    const size_t nspans = cache.collectSpans(10, 190, spans.data());
    size_t logical = 10;
    for (size_t s = 0; s < nspans; ++s) {
        EXPECT_EQ(spans[s].logicalBase, logical);
        EXPECT_GT(spans[s].count, 0u);
        // Never crosses a block boundary.
        EXPECT_EQ(spans[s].physBegin / 48,
                  (spans[s].physBegin + spans[s].count - 1) / 48);
        // Every row maps where physRow says.
        for (size_t i = 0; i < spans[s].count; ++i)
            EXPECT_EQ(spans[s].physBegin + i,
                      cache.physRow(spans[s].logicalBase + i));
        logical += spans[s].count;
    }
    EXPECT_EQ(logical, 190u);

    // Flat mode: the single identity span.
    KvCache flat(kDim);
    tokens.fill(flat, 0, n);
    ScanSpan one;
    ASSERT_EQ(flat.collectSpans(10, 190, &one), 1u);
    EXPECT_EQ(one.physBegin, 10u);
    EXPECT_EQ(one.count, 180u);
    EXPECT_EQ(one.logicalBase, 10u);
}

TEST(PagedCache, SpanDriversMatchContiguousDrivers)
{
    const size_t n = 333;
    TokenStream tokens(n);
    KvCache flat(kDim);
    KvBlockPool pool(kDim, 80, 16);
    KvCache paged(pool);
    tokens.fill(flat, 0, n);
    tokens.fill(paged, 0, n);

    Rng rng(5);
    const size_t nq = 3, wpr = (kDim + 63) / 64;
    std::vector<float> queries(nq * kDim);
    std::vector<uint64_t> qwords(nq * wpr);
    for (size_t g = 0; g < nq; ++g) {
        const auto q = rng.gaussianVec(kDim);
        std::copy(q.begin(), q.end(), queries.begin() + g * kDim);
        packSigns(q.data(), kDim, qwords.data() + g * wpr);
    }

    const size_t lo = 8, hi = n - 64;
    const int th = kDim / 2 - 2;
    const float scale = 0.125f;
    const size_t k = 40, kcap = k;

    // Contiguous drivers over the flat cache.
    std::vector<ScoredIndex> ref_sel(nq * kcap);
    std::vector<size_t> ref_sizes(nq), ref_surv(nq);
    batchScoreSelectMulti(qwords.data(), nq, flat.filterSignsAll(), lo,
                          hi, th, queries.data(), kDim, flat.keys(),
                          scale, k, ref_sel.data(), kcap,
                          ref_sizes.data(), ref_surv.data());

    // Span drivers over the paged cache.
    std::vector<ScanSpan> spans(paged.maxSpans(lo, hi));
    const size_t nspans = paged.collectSpans(lo, hi, spans.data());
    std::vector<ScoredIndex> got_sel(nq * kcap);
    std::vector<size_t> got_sizes(nq), got_surv(nq), span_surv(nspans);
    batchScoreSelectMultiSpans(
        qwords.data(), nq, paged.filterSignsStorage(), spans.data(),
        nspans, th, queries.data(), kDim, paged.keysStorage(), scale, k,
        got_sel.data(), kcap, got_sizes.data(), got_surv.data(),
        span_surv.data());

    size_t total_surv = 0;
    for (size_t g = 0; g < nq; ++g) {
        EXPECT_EQ(ref_sizes[g], got_sizes[g]);
        EXPECT_EQ(ref_surv[g], got_surv[g]);
        for (size_t j = 0; j < ref_sizes[g]; ++j) {
            EXPECT_EQ(ref_sel[g * kcap + j].index,
                      got_sel[g * kcap + j].index);
            EXPECT_EQ(ref_sel[g * kcap + j].score,
                      got_sel[g * kcap + j].score);
        }
        total_surv += ref_surv[g];
    }
    size_t span_total = 0;
    for (size_t s = 0; s < nspans; ++s)
        span_total += span_surv[s];
    EXPECT_EQ(span_total, total_surv);

    // Scan-only driver parity: survivors arrive as logical ids.
    std::vector<uint32_t> ref_ids(nq * n), got_ids(nq * n);
    std::vector<size_t> ref_counts(nq), got_counts(nq);
    batchScanMulti(qwords.data(), nq, flat.filterSignsAll(), lo, hi, th,
                   ref_ids.data(), n, ref_counts.data());
    batchScanMultiSpans(qwords.data(), nq, paged.filterSignsStorage(),
                        spans.data(), nspans, th, got_ids.data(), n,
                        got_counts.data());
    for (size_t g = 0; g < nq; ++g) {
        ASSERT_EQ(ref_counts[g], got_counts[g]);
        for (size_t j = 0; j < ref_counts[g]; ++j)
            EXPECT_EQ(ref_ids[g * n + j], got_ids[g * n + j]);
    }
}

/** Hybrid attention outputs must be byte-identical flat vs. paged,
 *  across quantization and ITQ configurations. */
void
expectHybridIdentical(bool quantize, bool itq, uint32_t block_tokens)
{
    const size_t n = 517;
    const uint32_t kv_heads = 2, q_heads = 4;
    TokenStream tokens(n);

    LongSightConfig cfg;
    cfg.windowSize = 96;
    cfg.sinkTokens = 4;
    cfg.topK = 48;
    cfg.defaultThreshold = kDim / 2;
    cfg.quantizedScoring = quantize;
    MultiHeadLongSight mh(cfg, q_heads, kv_heads, kDim);

    KvBlockPool pool(kDim, block_tokens, 64);
    std::vector<KvCache> flat, paged;
    for (uint32_t h = 0; h < kv_heads; ++h) {
        flat.emplace_back(kDim);
        paged.emplace_back(pool);
    }
    for (uint32_t h = 0; h < kv_heads; ++h) {
        tokens.fill(flat[h], 0, n);
        tokens.fill(paged[h], 0, n);
        if (quantize) {
            flat[h].enableKeyQuantization();
            paged[h].enableKeyQuantization();
        }
        if (itq) {
            // Any orthogonal rotation works; identity keeps the test
            // focused on plumbing (rotated path is still exercised).
            flat[h].setItqRotation(Matrix::identity(kDim));
            paged[h].setItqRotation(Matrix::identity(kDim));
        }
    }

    Rng rng(11);
    Matrix queries(q_heads, kDim);
    for (uint32_t q = 0; q < q_heads; ++q)
        queries.setRow(q, rng.gaussianVec(kDim).data());

    const LayerAttentionResult a = mh.compute(queries, flat);
    const LayerAttentionResult b = mh.compute(queries, paged);
    ASSERT_EQ(a.outputs.rows(), b.outputs.rows());
    EXPECT_EQ(0, std::memcmp(a.outputs.data(), b.outputs.data(),
                             a.outputs.size() * sizeof(float)));
    for (uint32_t q = 0; q < q_heads; ++q) {
        EXPECT_EQ(a.perQuery[q].attended, b.perQuery[q].attended);
        EXPECT_EQ(a.perQuery[q].sparseSurvivors,
                  b.perQuery[q].sparseSurvivors);
    }
}

TEST(PagedCache, HybridAttentionIdenticalPlain)
{
    expectHybridIdentical(false, false, 64);
    expectHybridIdentical(false, false, 100);
}

TEST(PagedCache, HybridAttentionIdenticalQuantized)
{
    expectHybridIdentical(true, false, 64);
}

TEST(PagedCache, HybridAttentionIdenticalItq)
{
    expectHybridIdentical(false, true, 128);
}

TEST(PagedCache, HybridAttentionIdenticalQuantizedItq)
{
    expectHybridIdentical(true, true, 48);
}

TEST(PagedCache, ForkSharesFullBlocksAndIsolatesAppends)
{
    const uint32_t bt = 32;
    const size_t n = 80; // 2 full blocks + 16-token tail
    TokenStream tokens(n + 40);
    KvBlockPool pool(kDim, bt, 16);
    KvCache parent(pool);
    tokens.fill(parent, 0, n);
    EXPECT_EQ(pool.usedBlocks(), 3u);

    KvCache child(pool);
    child.forkFrom(parent);
    ASSERT_EQ(child.size(), n);
    expectRowsIdentical(parent, child);
    // Two full blocks shared, tail re-appended privately.
    EXPECT_EQ(pool.usedBlocks(), 4u);

    // Divergent appends: child takes tokens [n, n+40), parent stays.
    tokens.fill(child, n, n + 40);
    std::vector<std::vector<float>> parent_rows;
    for (size_t i = 0; i < n; ++i)
        parent_rows.emplace_back(parent.keyRow(i),
                                 parent.keyRow(i) + kDim);
    ASSERT_EQ(child.size(), n + 40);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(0, std::memcmp(parent.keyRow(i), parent_rows[i].data(),
                                 kDim * sizeof(float)));
        EXPECT_EQ(0, std::memcmp(child.keyRow(i), parent_rows[i].data(),
                                 kDim * sizeof(float)));
    }

    // Copy construction is the same share; destruction releases.
    const uint32_t used_before = pool.usedBlocks();
    {
        KvCache copy(parent);
        ASSERT_EQ(copy.size(), n);
        expectRowsIdentical(parent, copy);
        EXPECT_GT(pool.usedBlocks(), used_before);
    }
    EXPECT_EQ(pool.usedBlocks(), used_before);
}

TEST(PagedCache, ItqInstallUnsharesBlocks)
{
    const uint32_t bt = 32;
    const size_t n = 64; // exactly 2 full blocks
    TokenStream tokens(n);
    KvBlockPool pool(kDim, bt, 16);
    KvCache parent(pool);
    tokens.fill(parent, 0, n);
    KvCache child(pool);
    child.forkFrom(parent);
    EXPECT_EQ(pool.usedBlocks(), 2u); // fully shared

    // Child installs a rotation: its blocks must split off so the
    // parent's (raw) filter signs stay untouched.
    const SignBits before = parent.filterSigns(0);
    child.setItqRotation(Matrix::identity(kDim));
    EXPECT_EQ(pool.usedBlocks(), 4u);
    EXPECT_EQ(parent.filterSigns(0), before);
    // Identity rotation: child's filter signs equal raw signs.
    for (size_t i = 0; i < n; i += 7)
        EXPECT_EQ(child.filterSigns(i), child.rawSigns(i));
}

TEST(PagedCache, PrefixPublishAdoptRoundTrip)
{
    const uint32_t bt = 32;
    const size_t prefix = 96; // 3 full blocks
    TokenStream tokens(prefix + 16);
    KvBlockPool pool(kDim, bt, 16);

    const uint64_t hash = 0xfeedULL;
    {
        KvCache prompter(pool);
        tokens.fill(prompter, 0, prefix + 10); // partial 4th block
        EXPECT_EQ(prompter.publishPrefix(hash), prefix);
        // Re-publish under the same hash is refused.
        EXPECT_EQ(prompter.publishPrefix(hash), 0u);
    } // prompter retires; registry pins keep the prefix alive
    EXPECT_EQ(pool.usedBlocks(), 3u);

    KvCache adopter(pool);
    EXPECT_EQ(adopter.adoptPrefix(0xbeefULL), 0u); // miss
    EXPECT_EQ(adopter.adoptPrefix(hash), prefix);  // hit
    ASSERT_EQ(adopter.size(), prefix);
    KvCache reference(kDim);
    tokens.fill(reference, 0, prefix);
    expectRowsIdentical(reference, adopter);

    // Adopted context keeps growing privately.
    tokens.fill(adopter, prefix, prefix + 16);
    EXPECT_EQ(adopter.size(), prefix + 16);

    EXPECT_EQ(pool.prefixHits(), 1u);
    EXPECT_EQ(pool.prefixMisses(), 1u);
    EXPECT_EQ(pool.prefixSharedTokens(), prefix);

    pool.unpublishPrefix(hash);
    // Adopter still holds its references; blocks stay allocated.
    EXPECT_GE(pool.usedBlocks(), 4u);
}

TEST(PagedCache, RebalancePromotesHotBlocksWithoutChangingOutputs)
{
    const uint32_t bt = 32;
    const size_t n = 4 * bt;
    TokenStream tokens(n);
    KvBlockPool pool(kDim, bt, 8, /*hbm_budget_blocks=*/2);
    KvCache cache(pool);
    tokens.fill(cache, 0, n);

    // Everything starts in the expander tier.
    EXPECT_EQ(pool.hbmResident(), 0u);

    // Blocks 1 and 3 keep surviving the filter; 0 and 2 do not.
    std::vector<ScanSpan> spans(cache.maxSpans(0, n));
    const size_t nspans = cache.collectSpans(0, n, spans.data());
    ASSERT_EQ(nspans, 4u);
    cache.recordFilterScan(spans[1], bt, 30);
    cache.recordFilterScan(spans[3], bt, 20);
    cache.recordFilterScan(spans[0], bt, 1);

    Rng rng(123);
    const auto q = rng.gaussianVec(kDim);
    std::vector<float> before(n);
    for (size_t i = 0; i < n; ++i)
        before[i] = cache.scoreKey(q.data(), i);

    EXPECT_EQ(pool.rebalance(), 2u);
    EXPECT_EQ(pool.promotions(), 2u);
    EXPECT_EQ(pool.hbmResident(), 2u);
    EXPECT_EQ(pool.tier(cache.physRow(bt) / bt), Tier::Hbm);
    EXPECT_EQ(pool.tier(cache.physRow(3 * bt) / bt), Tier::Hbm);
    EXPECT_EQ(pool.tier(cache.physRow(0) / bt), Tier::Expander);

    // Residency is accounting only: every score is unchanged.
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(cache.scoreKey(q.data(), i), before[i]);

    // Popularity flips: block 0 becomes the hot one; 3 drops out.
    cache.recordFilterScan(spans[0], bt, 200);
    EXPECT_GT(pool.rebalance(), 0u);
    EXPECT_GT(pool.evictions(), 0u);
    EXPECT_EQ(pool.tier(cache.physRow(0) / bt), Tier::Hbm);
    EXPECT_EQ(pool.hbmResident(), 2u);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(cache.scoreKey(q.data(), i), before[i]);
}

TEST(PagedCache, PoolExhaustionAndReuse)
{
    KvBlockPool pool(kDim, 16, 4);
    std::vector<uint32_t> held;
    for (int i = 0; i < 4; ++i) {
        const uint32_t b = pool.allocBlock();
        ASSERT_NE(b, kInvalidBlock);
        held.push_back(b);
    }
    EXPECT_EQ(pool.allocBlock(), kInvalidBlock);
    EXPECT_EQ(pool.freeBlocks(), 0u);
    EXPECT_DOUBLE_EQ(pool.occupancy(), 1.0);
    pool.releaseBlock(held.back());
    held.pop_back();
    EXPECT_NE(pool.allocBlock(), kInvalidBlock);
}

TEST(PagedCache, QuantizedScoringMatchesFlat)
{
    const size_t n = 150;
    TokenStream tokens(n);
    KvCache flat(kDim);
    KvBlockPool pool(kDim, 64, 8);
    KvCache paged(pool);

    // Enable BEFORE half the appends and AFTER the other half: both
    // the backfill path and the append path must agree with flat.
    tokens.fill(flat, 0, n);
    flat.enableKeyQuantization();
    tokens.fill(paged, 0, n / 2);
    paged.enableKeyQuantization();
    tokens.fill(paged, n / 2, n);

    Rng rng(42);
    const auto q = rng.gaussianVec(kDim);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(flat.scoreKey(q.data(), i), paged.scoreKey(q.data(), i))
            << "row " << i;
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the fused scan -> score -> select kernel: element-for-
 * element identity with the unfused batchConcordanceScan +
 * batchDotScaleAt + topkSelect pipeline on every available backend,
 * deterministic index tie-breaking on equal scores, k larger than the
 * survivor count, sub-range scans, and the survivor-count side output.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/topk.hh"
#include "tensor/kernels.hh"
#include "tensor/sign_matrix.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

std::vector<KernelBackend>
availableBackends()
{
    std::vector<KernelBackend> out{KernelBackend::Scalar};
    for (auto b : {KernelBackend::Avx2, KernelBackend::Neon})
        if (kernelBackendAvailable(b))
            out.push_back(b);
    return out;
}

/** The unfused pipeline the fused kernel contracts to match. */
std::vector<ScoredIndex>
reference(const uint64_t *qw, const SignMatrix &signs, size_t begin,
          size_t end, int threshold, const float *q, const Matrix &keys,
          float scale, size_t k, size_t *survivors_out)
{
    std::vector<uint32_t> survivors(end - begin);
    const size_t n =
        batchConcordanceScan(qw, signs, begin, end, threshold,
                             survivors.data());
    survivors.resize(n);
    std::vector<float> scores(n);
    batchDotScaleAt(q, keys, survivors.data(), n, scale, scores.data());
    if (survivors_out)
        *survivors_out = n;
    return topkSelect(scores, survivors, k);
}

void
expectSame(const std::vector<ScoredIndex> &ref, const ScoredIndex *got,
           size_t got_n, const char *what)
{
    ASSERT_EQ(ref.size(), got_n) << what;
    for (size_t i = 0; i < got_n; ++i) {
        EXPECT_EQ(ref[i].index, got[i].index) << what << " rank " << i;
        EXPECT_EQ(ref[i].score, got[i].score) << what << " rank " << i;
    }
}

TEST(BatchScoreSelect, MatchesUnfusedPipelineAcrossBackends)
{
    const KernelBackend active = activeKernelBackend();
    Rng rng(11);
    for (size_t dim : {64u, 128u}) {
        for (size_t n : {1u, 100u, 700u, 2048u}) {
            const Matrix keys(n, dim, rng.gaussianVec(n * dim));
            const SignMatrix signs =
                SignMatrix::pack(keys.data(), n, dim);
            const auto q = rng.gaussianVec(dim);
            std::vector<uint64_t> qw(signs.wordsPerRow());
            packSigns(q.data(), dim, qw.data());
            const int threshold = static_cast<int>(dim) / 2;
            for (size_t k : {size_t{1}, size_t{13}, size_t{128}, n}) {
                size_t ref_survivors = 0;
                const auto ref = reference(
                    qw.data(), signs, 0, n, threshold, q.data(), keys,
                    0.125f, k, &ref_survivors);
                for (KernelBackend b : availableBackends()) {
                    setKernelBackend(b);
                    std::vector<ScoredIndex> sel(std::min(k, n));
                    size_t survivors = 0;
                    const size_t m = batchScoreSelect(
                        qw.data(), signs, 0, n, threshold, q.data(),
                        keys, 0.125f, k, sel.data(), &survivors);
                    expectSame(ref, sel.data(), m,
                               kernelBackendName(b));
                    EXPECT_EQ(survivors, ref_survivors)
                        << kernelBackendName(b);
                }
                setKernelBackend(active);
            }
        }
    }
}

TEST(BatchScoreSelect, TiedScoresBreakTowardLowerIndex)
{
    const KernelBackend active = activeKernelBackend();
    const size_t dim = 64;
    Rng rng(5);
    // 64 copies of 4 distinct keys: plenty of exactly-equal scores.
    const auto base = rng.gaussianVec(4 * dim);
    Matrix keys(256, dim);
    for (size_t i = 0; i < 256; ++i)
        keys.setRow(i, base.data() + (i % 4) * dim);
    const SignMatrix signs = SignMatrix::pack(keys.data(), 256, dim);
    const auto q = rng.gaussianVec(dim);
    std::vector<uint64_t> qw(signs.wordsPerRow());
    packSigns(q.data(), dim, qw.data());

    for (KernelBackend b : availableBackends()) {
        setKernelBackend(b);
        std::vector<ScoredIndex> sel(16);
        const size_t m = batchScoreSelect(qw.data(), signs, 0, 256, 0,
                                          q.data(), keys, 1.0f, 16,
                                          sel.data());
        ASSERT_EQ(m, 16u) << kernelBackendName(b);
        // Best-first: scores descend; equal scores order by index.
        for (size_t i = 1; i < m; ++i) {
            EXPECT_TRUE(sel[i - 1].betterThan(sel[i]))
                << kernelBackendName(b) << " rank " << i;
            if (sel[i - 1].score == sel[i].score)
                EXPECT_LT(sel[i - 1].index, sel[i].index)
                    << kernelBackendName(b) << " rank " << i;
        }
        // The winners are the 16 lowest indices of the best key class
        // (every 4th row scores identically).
        for (size_t i = 1; i < m; ++i)
            EXPECT_EQ(sel[i].index, sel[0].index + 4 * i)
                << kernelBackendName(b);
    }
    setKernelBackend(active);
}

TEST(BatchScoreSelect, KLargerThanSurvivorCountReturnsAll)
{
    const size_t dim = 64, n = 300;
    Rng rng(17);
    const Matrix keys(n, dim, rng.gaussianVec(n * dim));
    const SignMatrix signs = SignMatrix::pack(keys.data(), n, dim);
    const auto q = rng.gaussianVec(dim);
    std::vector<uint64_t> qw(signs.wordsPerRow());
    packSigns(q.data(), dim, qw.data());
    // A strict threshold keeps only a handful of survivors.
    const int threshold = static_cast<int>(dim) / 2 + 6;

    size_t survivors = 0;
    std::vector<ScoredIndex> sel(n);
    const size_t m =
        batchScoreSelect(qw.data(), signs, 0, n, threshold, q.data(),
                         keys, 0.125f, 10 * n, sel.data(), &survivors);
    EXPECT_EQ(m, survivors);
    EXPECT_LT(survivors, n);
    const auto ref = reference(qw.data(), signs, 0, n, threshold,
                               q.data(), keys, 0.125f, 10 * n, nullptr);
    expectSame(ref, sel.data(), m, "k >= survivors");
}

TEST(BatchScoreSelect, HonorsSubRange)
{
    const size_t dim = 64, n = 512;
    Rng rng(23);
    const Matrix keys(n, dim, rng.gaussianVec(n * dim));
    const SignMatrix signs = SignMatrix::pack(keys.data(), n, dim);
    const auto q = rng.gaussianVec(dim);
    std::vector<uint64_t> qw(signs.wordsPerRow());
    packSigns(q.data(), dim, qw.data());

    const size_t begin = 100, end = 400;
    std::vector<ScoredIndex> sel(end - begin);
    const size_t m = batchScoreSelect(qw.data(), signs, begin, end, 0,
                                      q.data(), keys, 0.125f, 64,
                                      sel.data());
    ASSERT_EQ(m, 64u);
    for (size_t i = 0; i < m; ++i) {
        EXPECT_GE(sel[i].index, begin);
        EXPECT_LT(sel[i].index, end);
    }
    const auto ref = reference(qw.data(), signs, begin, end, 0,
                               q.data(), keys, 0.125f, 64, nullptr);
    expectSame(ref, sel.data(), m, "sub-range");
}

TEST(BatchScoreSelect, EmptyRangeAndNoSurvivors)
{
    const size_t dim = 64, n = 64;
    Rng rng(29);
    const Matrix keys(n, dim, rng.gaussianVec(n * dim));
    const SignMatrix signs = SignMatrix::pack(keys.data(), n, dim);
    const auto q = rng.gaussianVec(dim);
    std::vector<uint64_t> qw(signs.wordsPerRow());
    packSigns(q.data(), dim, qw.data());

    ScoredIndex sel[8];
    size_t survivors = 123;
    EXPECT_EQ(batchScoreSelect(qw.data(), signs, 10, 10, 0, q.data(),
                               keys, 1.0f, 8, sel, &survivors),
              0u);
    EXPECT_EQ(survivors, 0u);
    // Impossible threshold: scan finds nothing.
    EXPECT_EQ(batchScoreSelect(qw.data(), signs, 0, n,
                               static_cast<int>(dim) + 1, q.data(),
                               keys, 1.0f, 8, sel, &survivors),
              0u);
    EXPECT_EQ(survivors, 0u);
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for INT8 key quantization and its integration into the
 * KvCache / hybrid-attention / NMA scoring paths.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/hybrid_attention.hh"
#include "core/kv_cache.hh"
#include "drex/drex_device.hh"
#include "tensor/linalg.hh"
#include "tensor/quantized.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

TEST(Quantized, RoundTripErrorBounded)
{
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 64;
        const auto v = rng.gaussianVec(n);
        const QuantizedVector q = quantizeInt8(v.data(), n);
        const auto back = dequantize(q);
        for (size_t i = 0; i < n; ++i)
            EXPECT_NEAR(back[i], v[i], q.scale * 0.5 + 1e-6);
    }
}

TEST(Quantized, ZeroVectorSafe)
{
    std::vector<float> zeros(16, 0.0f);
    const QuantizedVector q = quantizeInt8(zeros.data(), 16);
    for (int8_t b : q.data)
        EXPECT_EQ(b, 0);
    const auto back = dequantize(q);
    for (float x : back)
        EXPECT_EQ(x, 0.0f);
}

TEST(Quantized, DotCloseToFullPrecision)
{
    Rng rng(2);
    const size_t n = 128;
    for (int trial = 0; trial < 10; ++trial) {
        const auto a = rng.gaussianVec(n);
        const auto b = rng.gaussianVec(n);
        const QuantizedVector qa = quantizeInt8(a.data(), n);
        const float exact = dot(a.data(), b.data(), n);
        const float approx = dotQuantized(qa, b.data());
        EXPECT_NEAR(approx, exact, 0.05f * std::sqrt(static_cast<float>(n)));
    }
}

TEST(Quantized, ErrorMetricSmallForGaussians)
{
    Rng rng(3);
    const Matrix m(100, 64, rng.gaussianVec(100 * 64));
    EXPECT_LT(quantizationError(m), 0.02);
}

TEST(Quantized, ByteSizeHalvesBf16)
{
    Rng rng(4);
    const auto v = rng.gaussianVec(128);
    const QuantizedVector q = quantizeInt8(v.data(), 128);
    EXPECT_EQ(q.byteSize(), 128u + 4u); // vs 256 B BF16
}

TEST(QuantizedCache, ScoreKeyMatchesQuantizedDot)
{
    Rng rng(5);
    KvCache cache(32);
    for (int i = 0; i < 50; ++i)
        cache.append(rng.gaussianVec(32), rng.gaussianVec(32));
    cache.enableKeyQuantization();
    const auto q = rng.gaussianVec(32);
    for (size_t i = 0; i < 50; ++i)
        EXPECT_FLOAT_EQ(cache.scoreKey(q.data(), i),
                        dotQuantized(cache.quantizedKey(i), q.data()));
}

TEST(QuantizedCache, LateEnableQuantizesExistingAndFuture)
{
    Rng rng(6);
    KvCache cache(16);
    cache.append(rng.gaussianVec(16), rng.gaussianVec(16));
    cache.enableKeyQuantization();
    cache.append(rng.gaussianVec(16), rng.gaussianVec(16));
    EXPECT_EQ(cache.quantizedKey(0).data.size(), 16u);
    EXPECT_EQ(cache.quantizedKey(1).data.size(), 16u);
}

TEST(QuantizedHybrid, SelectionNearFullPrecision)
{
    Rng rng(7);
    const size_t n = 600;
    KvCache full(64), quant(64);
    for (size_t i = 0; i < n; ++i) {
        const auto k = rng.gaussianVec(64);
        const auto v = rng.gaussianVec(64);
        full.append(k, v);
        quant.append(k, v);
    }
    quant.enableKeyQuantization();

    LongSightConfig cfg;
    cfg.windowSize = 32;
    cfg.sinkTokens = 8;
    cfg.topK = 64;
    LongSightAttn exact(cfg, 1);
    cfg.quantizedScoring = true;
    LongSightAttn approx(cfg, 1);

    const auto q = rng.gaussianVec(64);
    const auto re = exact.computeHead(q, full, 0);
    const auto rq = approx.computeHead(q, quant, 0);

    // Selections overlap heavily (ordering perturbation only at the
    // boundary of the top-k set).
    size_t common = 0;
    for (uint32_t idx : rq.attended)
        common += std::binary_search(re.attended.begin(),
                                     re.attended.end(), idx);
    EXPECT_GT(static_cast<double>(common) / re.attended.size(), 0.9);
}

TEST(QuantizedNma, FunctionalScoringUsesInt8)
{
    DrexConfig dc;
    dc.numKvHeads = 1;
    dc.numLayers = 1;
    dc.headDim = 64;
    DrexDevice dev(dc);
    Rng rng(8);
    Matrix keys(300, 64, rng.gaussianVec(300 * 64));
    Matrix values(300, 64, rng.gaussianVec(300 * 64));
    KvCache &cache = dev.writeContext(0, 0, 0, keys, values);
    cache.enableKeyQuantization();
    Matrix q(1, 64, rng.gaussianVec(64));

    OffloadSpec spec;
    spec.sparseEnd = 300;
    spec.k = 16;
    spec.cache = &cache;
    spec.queries = &q;
    spec.filterQueries = &q;
    spec.quantizedScoring = true;
    const auto r = dev.nma(0).process(0, spec);
    ASSERT_EQ(r.topk.size(), 1u);
    // Scores must match the cache's quantized scorer exactly.
    const float scale = 0.125f;
    for (const auto &e : r.topk[0])
        EXPECT_FLOAT_EQ(e.score,
                        cache.scoreKey(q.row(0), e.index) * scale);
}

TEST(QuantizedNma, ScatteredFetchesSeeNoSpeedupButCxlPayloadHalves)
{
    // Architectural insight the ablation documents: scattered survivor
    // reads pay full DRAM burst granularity, so INT8 keys do not
    // accelerate the scoring fetch — but the CXL value payload (the
    // short-context bottleneck, Fig. 8) is nearly halved.
    DrexConfig dc;
    dc.numKvHeads = 1;
    dc.numLayers = 1;
    dc.headDim = 128;
    DrexDevice full_dev(dc), quant_dev(dc);
    OffloadSpec spec;
    spec.sparseEnd = 100'000;
    spec.survivorFraction = 0.2;
    OffloadSpec qspec = spec;
    qspec.quantizedScoring = true;
    const auto rf = full_dev.nma(0).process(0, spec);
    const auto rq = quant_dev.nma(0).process(0, qspec);
    EXPECT_EQ(rq.timing.score, rf.timing.score);
    EXPECT_LT(rq.valueBytes, 2 * rf.valueBytes / 3);
}

} // namespace
} // namespace longsight

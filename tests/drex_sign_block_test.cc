/**
 * @file
 * Tests for the bit-transposed Key Sign Object image: round trips,
 * size math (one LPDDR row for a 128-dim block), and bit-exact
 * agreement between the hardware's column-wise filter schedule and
 * the key-major software SCF.
 */

#include <gtest/gtest.h>

#include "core/scf.hh"
#include "drex/sign_block.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

std::vector<SignBits>
randomSigns(uint32_t count, uint32_t dim, uint64_t seed)
{
    Rng rng(seed);
    Matrix keys(count, dim, rng.gaussianVec(count * dim));
    return packSignRows(keys.data(), count, dim);
}

TEST(SignBlock, SizeMatchesPaperLayout)
{
    // 128 keys x 128 dims / 8 = 2048 B = exactly one LPDDR5X row.
    const auto signs = randomSigns(128, 128, 1);
    SignBlockImage img(signs.data(), 128);
    EXPECT_EQ(img.byteSize(), 2048u);
    // 64-dim blocks take half a row.
    const auto signs64 = randomSigns(128, 64, 2);
    SignBlockImage img64(signs64.data(), 128);
    EXPECT_EQ(img64.byteSize(), 1024u);
}

TEST(SignBlock, KeyRoundTrip)
{
    const auto signs = randomSigns(128, 64, 3);
    SignBlockImage img(signs.data(), 128);
    for (uint32_t k = 0; k < 128; ++k)
        EXPECT_EQ(img.extractKey(k), signs[k]) << "key " << k;
}

TEST(SignBlock, SignMatrixConstructorMatchesSignBitsConstructor)
{
    Rng rng(21);
    const uint32_t d = 90, total = 200;
    const Matrix keys(total, d, rng.gaussianVec(total * d));
    const auto signs = packSignRows(keys.data(), total, d);
    const SignMatrix packed = SignMatrix::pack(keys.data(), total, d);

    const struct
    {
        size_t begin;
        uint32_t num;
    } regions[] = {{0, 128}, {72, 128}, {150, 50}, {33, 1}};
    for (const auto &reg : regions) {
        const SignBlockImage ref(signs.data() + reg.begin, reg.num);
        const SignBlockImage got(packed, reg.begin, reg.num);
        EXPECT_EQ(got.byteSize(), ref.byteSize());
        for (uint32_t k = 0; k < reg.num; ++k)
            EXPECT_EQ(got.extractKey(k), signs[reg.begin + k])
                << "begin " << reg.begin << " key " << k;
    }
}

TEST(SignBlock, PartialBlockRoundTrip)
{
    const auto signs = randomSigns(37, 64, 4);
    SignBlockImage img(signs.data(), 37);
    EXPECT_EQ(img.numKeys(), 37u);
    for (uint32_t k = 0; k < 37; ++k)
        EXPECT_EQ(img.extractKey(k), signs[k]);
}

TEST(SignBlock, ColumnHoldsOneDimensionAcrossKeys)
{
    const auto signs = randomSigns(128, 32, 5);
    SignBlockImage img(signs.data(), 128);
    for (uint32_t d = 0; d < 32; ++d) {
        const uint64_t *col = img.column(d);
        for (uint32_t k = 0; k < 128; ++k) {
            const bool bit = (col[k >> 6] >> (k & 63)) & 1;
            EXPECT_EQ(bit, signs[k].bit(d)) << "dim " << d << " key " << k;
        }
    }
}

class SignBlockFilter : public ::testing::TestWithParam<int>
{
};

TEST_P(SignBlockFilter, ColumnwiseMatchesKeyMajorScf)
{
    const int threshold = GetParam();
    const uint32_t dim = 128;
    const auto signs = randomSigns(128, dim, 100 + threshold);
    SignBlockImage img(signs.data(), 128);
    Rng rng(200 + threshold);
    const auto qv = rng.gaussianVec(dim);
    const SignBits q(qv.data(), dim);

    const Bitmap128 hw = img.columnwiseFilter(q, threshold);
    const auto sw = scfFilter(q, signs, threshold);
    for (uint32_t k = 0; k < 128; ++k) {
        const bool in_sw = std::find(sw.begin(), sw.end(), k) != sw.end();
        EXPECT_EQ(hw.test(k), in_sw)
            << "key " << k << " threshold " << threshold;
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SignBlockFilter,
                         ::testing::Values(0, 40, 64, 72, 100, 128));

TEST(SignBlock, ColumnwiseMatchesPfuFilterBlock)
{
    const auto signs = randomSigns(90, 64, 6);
    SignBlockImage img(signs.data(), 90);
    Rng rng(7);
    const auto qv = rng.gaussianVec(64);
    const SignBits q(qv.data(), 64);
    const auto pfu = Pfu::filterBlock({q}, signs.data(), 90, 34);
    EXPECT_EQ(img.columnwiseFilter(q, 34), pfu[0]);
}

TEST(SignBlock, TailKeysBeyondBlockStayClear)
{
    const auto signs = randomSigns(50, 64, 8);
    SignBlockImage img(signs.data(), 50);
    const Bitmap128 bm = img.columnwiseFilter(signs[0], 0);
    EXPECT_EQ(bm.popcount(), 50u);
    for (uint32_t k = 50; k < 128; ++k)
        EXPECT_FALSE(bm.test(k));
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for LongSightAttn, including the central exactness property:
 * with threshold 0 and k >= context, hybrid attention equals dense
 * attention to fp tolerance, whatever the window/sink configuration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/attention.hh"
#include "core/hybrid_attention.hh"
#include "core/itq.hh"
#include "core/kv_cache.hh"
#include "model/workload.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

constexpr uint32_t kDim = 32;

KvCache
makeCache(size_t n, Rng &rng)
{
    KvCache cache(kDim);
    for (size_t i = 0; i < n; ++i)
        cache.append(rng.gaussianVec(kDim), rng.gaussianVec(kDim));
    return cache;
}

float
maxDiff(const std::vector<float> &a, const std::vector<float> &b)
{
    float m = 0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

/** Parameterized over (window, sinks, context). */
class HybridExactness
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, size_t>>
{
};

TEST_P(HybridExactness, DegeneratesToDenseAttention)
{
    const auto [window, sinks, n] = GetParam();
    Rng rng(1000 + window + sinks + n);
    KvCache cache = makeCache(n, rng);
    const auto q = rng.gaussianVec(kDim);

    LongSightConfig cfg;
    cfg.windowSize = window;
    cfg.sinkTokens = sinks;
    cfg.topK = static_cast<uint32_t>(n); // unbounded in effect
    cfg.defaultThreshold = 0;            // keep everything
    LongSightAttn attn(cfg, 1);

    const auto hybrid = attn.computeHead(q, cache, 0);
    const float scale = 1.0f / std::sqrt(static_cast<float>(kDim));
    const auto dense =
        denseAttention(q.data(), cache.keys(), cache.values(), scale);

    EXPECT_EQ(hybrid.attended.size(), n)
        << "threshold 0 + unbounded k must attend to every token";
    EXPECT_LT(maxDiff(hybrid.output, dense.output), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HybridExactness,
    ::testing::Values(std::make_tuple(8u, 2u, size_t{64}),
                      std::make_tuple(0u, 0u, size_t{64}),
                      std::make_tuple(16u, 0u, size_t{100}),
                      std::make_tuple(0u, 4u, size_t{50}),
                      std::make_tuple(1024u, 16u, size_t{40}), // all dense
                      std::make_tuple(4u, 4u, size_t{200})));

TEST(Hybrid, ShortContextIsPureDense)
{
    Rng rng(2);
    KvCache cache = makeCache(20, rng);
    LongSightConfig cfg;
    cfg.windowSize = 32;
    cfg.sinkTokens = 4;
    LongSightAttn attn(cfg, 1);
    const auto r = attn.computeHead(rng.gaussianVec(kDim), cache, 0);
    EXPECT_FALSE(r.usedSparse);
    EXPECT_EQ(r.sparseRaw, 0u);
    EXPECT_EQ(r.attended.size(), 20u);
}

TEST(Hybrid, WindowAndSinksAlwaysAttended)
{
    Rng rng(3);
    const size_t n = 100;
    KvCache cache = makeCache(n, rng);
    LongSightConfig cfg;
    cfg.windowSize = 10;
    cfg.sinkTokens = 3;
    cfg.topK = 5;
    cfg.defaultThreshold = kDim; // filter virtually everything
    LongSightAttn attn(cfg, 1);
    const auto r = attn.computeHead(rng.gaussianVec(kDim), cache, 0);
    // Sinks 0..2 and window 90..99 must be present.
    for (uint32_t i : {0u, 1u, 2u})
        EXPECT_NE(std::find(r.attended.begin(), r.attended.end(), i),
                  r.attended.end());
    for (uint32_t i = 90; i < 100; ++i)
        EXPECT_NE(std::find(r.attended.begin(), r.attended.end(), i),
                  r.attended.end());
}

TEST(Hybrid, TopKBoundsSparseSelections)
{
    Rng rng(4);
    const size_t n = 300;
    KvCache cache = makeCache(n, rng);
    LongSightConfig cfg;
    cfg.windowSize = 16;
    cfg.sinkTokens = 4;
    cfg.topK = 8;
    cfg.defaultThreshold = 0;
    LongSightAttn attn(cfg, 1);
    const auto r = attn.computeHead(rng.gaussianVec(kDim), cache, 0);
    EXPECT_TRUE(r.usedSparse);
    EXPECT_EQ(r.sparseRaw, n - 16 - 4);
    EXPECT_EQ(r.sparseSurvivors, r.sparseRaw); // threshold 0
    EXPECT_EQ(r.sparseSelected, 8u);
    EXPECT_EQ(r.attended.size(), 16u + 4u + 8u);
}

TEST(Hybrid, SelectionsAreHighestScoringSurvivors)
{
    Rng rng(5);
    const size_t n = 200;
    KvCache cache = makeCache(n, rng);
    const auto q = rng.gaussianVec(kDim);
    LongSightConfig cfg;
    cfg.windowSize = 8;
    cfg.sinkTokens = 0;
    cfg.topK = 4;
    LongSightAttn attn(cfg, 1);
    const auto r = attn.computeHead(q, cache, 0);

    const float scale = 1.0f / std::sqrt(static_cast<float>(kDim));
    const auto scores =
        attentionScores(q.data(), cache.keys(), 0, n, scale);
    // Every sparse-region token NOT attended must score <= the worst
    // attended sparse token.
    float worst_attended = 1e30f;
    for (uint32_t idx : r.attended)
        if (idx < n - 8)
            worst_attended = std::min(worst_attended, scores[idx]);
    for (uint32_t i = 0; i < n - 8; ++i) {
        if (std::find(r.attended.begin(), r.attended.end(), i) ==
            r.attended.end()) {
            EXPECT_LE(scores[i], worst_attended + 1e-6f);
        }
    }
}

TEST(Hybrid, ThresholdReducesSurvivors)
{
    Rng rng(6);
    const size_t n = 400;
    KvCache cache = makeCache(n, rng);
    const auto q = rng.gaussianVec(kDim);
    LongSightConfig cfg;
    cfg.windowSize = 8;
    cfg.sinkTokens = 0;
    cfg.topK = 1024;
    LongSightAttn attn(cfg, 1);

    attn.setThreshold(0, 0);
    const auto r0 = attn.computeHead(q, cache, 0);
    attn.setThreshold(0, kDim / 2);
    const auto r1 = attn.computeHead(q, cache, 0);
    attn.setThreshold(0, (3 * kDim) / 4);
    const auto r2 = attn.computeHead(q, cache, 0);

    EXPECT_GE(r0.sparseSurvivors, r1.sparseSurvivors);
    EXPECT_GE(r1.sparseSurvivors, r2.sparseSurvivors);
}

TEST(Hybrid, ItqRotationLeavesExactnessIntact)
{
    Rng rng(7);
    const size_t n = 120;
    KvCache cache = makeCache(n, rng);
    // Train a rotation on the keys and install it: with threshold 0
    // and unbounded k the output must still equal dense attention.
    Matrix train(n, kDim);
    for (size_t i = 0; i < n; ++i)
        train.setRow(i, cache.keys().row(i));
    cache.setItqRotation(trainItqRotation(train, 10, rng));

    const auto q = rng.gaussianVec(kDim);
    LongSightConfig cfg;
    cfg.windowSize = 8;
    cfg.sinkTokens = 2;
    cfg.topK = static_cast<uint32_t>(n);
    LongSightAttn attn(cfg, 1);
    const auto hybrid = attn.computeHead(q, cache, 0);

    const float scale = 1.0f / std::sqrt(static_cast<float>(kDim));
    const auto dense =
        denseAttention(q.data(), cache.keys(), cache.values(), scale);
    EXPECT_LT(maxDiff(hybrid.output, dense.output), 1e-4f);
}

TEST(Hybrid, StatsRecordingCountsOnlySparseEvaluations)
{
    Rng rng(8);
    KvCache small = makeCache(10, rng);
    KvCache large = makeCache(200, rng);
    LongSightConfig cfg;
    cfg.windowSize = 16;
    cfg.sinkTokens = 4;
    cfg.topK = 8;
    LongSightAttn attn(cfg, 1);
    FilterStats fs;

    const auto r_small = attn.computeHead(rng.gaussianVec(kDim), small, 0);
    LongSightAttn::recordStats(r_small, fs);
    EXPECT_EQ(fs.evaluations, 0u); // dense-only, nothing recorded

    const auto r_large = attn.computeHead(rng.gaussianVec(kDim), large, 0);
    LongSightAttn::recordStats(r_large, fs);
    EXPECT_EQ(fs.evaluations, 1u);
    EXPECT_EQ(fs.rawKeys, 200u - 20u);
}

TEST(Hybrid, PerHeadThresholdsIndependent)
{
    LongSightConfig cfg;
    cfg.defaultThreshold = 3;
    LongSightAttn attn(cfg, 4);
    EXPECT_EQ(attn.threshold(0), 3);
    attn.setThreshold(2, 17);
    EXPECT_EQ(attn.threshold(2), 17);
    EXPECT_EQ(attn.threshold(1), 3);
    attn.setAllThresholds({1, 2, 3, 4});
    EXPECT_EQ(attn.threshold(3), 4);
}

TEST(FilterStatsMetric, DegenerateRatioIsOne)
{
    FilterStats fs;
    fs.record(100, 100, 100); // no filtering, k = raw
    EXPECT_DOUBLE_EQ(fs.filterRatio(), 1.0);
    EXPECT_DOUBLE_EQ(fs.sparsity(), 0.0);
}

TEST(FilterStatsMetric, KnownRatio)
{
    FilterStats fs;
    // raw=1000; survivors=80, selected=20 -> 2000/100 = 20x.
    fs.record(1000, 80, 20);
    EXPECT_DOUBLE_EQ(fs.filterRatio(), 20.0);
    EXPECT_NEAR(fs.sparsity(), 0.95, 1e-9);
}

TEST(FilterStatsMetric, MergeAccumulates)
{
    FilterStats a, b;
    a.record(100, 10, 5);
    b.record(300, 30, 15);
    a.merge(b);
    EXPECT_EQ(a.rawKeys, 400u);
    EXPECT_EQ(a.evaluations, 2u);
    EXPECT_DOUBLE_EQ(a.filterRatio(), 800.0 / 60.0);
}

} // namespace
} // namespace longsight

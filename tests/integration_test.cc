/**
 * @file
 * Cross-module integration tests: the full algorithm pipeline
 * (workload -> KV cache -> ITQ -> hybrid attention -> perplexity
 * proxy) at small scale, asserting the qualitative claims behind
 * Figures 3 and 4, plus a GQA-grouped GPU+DReX round trip.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/attention.hh"
#include "core/hybrid_attention.hh"
#include "core/itq.hh"
#include "core/kv_cache.hh"
#include "drex/drex_device.hh"
#include "model/perplexity.hh"
#include "model/workload.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

constexpr uint32_t kDim = 64;

struct Pipeline
{
    Pipeline(size_t context, uint64_t seed) : wl(makeWorkload(seed))
    {
        wl.generate(context);
        cache = std::make_unique<KvCache>(kDim);
        cache->appendAll(wl.keys(), wl.values());
    }

    static HeadWorkload makeWorkload(uint64_t seed)
    {
        WorkloadConfig cfg;
        cfg.headDim = kDim;
        return HeadWorkload(cfg, Rng(seed));
    }

    void trainItq(Rng &rng)
    {
        // §5.4: train on ~1K post-RoPE keys and queries.
        const size_t nk = std::min<size_t>(cache->size(), 896);
        const size_t nq = 128;
        Matrix train(nk + nq, kDim);
        for (size_t i = 0; i < nk; ++i)
            train.setRow(i, cache->keys().row(i));
        for (size_t i = 0; i < nq; ++i) {
            const auto q = wl.drawQuery();
            train.setRow(nk + i, q.data());
        }
        cache->setItqRotation(trainItqRotation(train, 20, rng));
    }

    /** Evaluate a config over `trials` queries. */
    std::pair<double, double> // {lost mass, filter ratio}
    evaluate(const LongSightConfig &cfg, int trials)
    {
        LongSightAttn attn(cfg, 1);
        PerplexityProxy proxy;
        FilterStats fs;
        const float scale = wl.attentionScale();
        for (int t = 0; t < trials; ++t) {
            const auto q = wl.drawQuery();
            const auto r = attn.computeHead(q, *cache, 0);
            const auto dense = denseAttention(
                q.data(), cache->keys(), cache->values(), scale);
            proxy.record(dense.probs, r.attended, dense.output, r.output);
            LongSightAttn::recordStats(r, fs);
        }
        return {proxy.meanLostMass(), fs.filterRatio()};
    }

    HeadWorkload wl;
    std::unique_ptr<KvCache> cache;
};

TEST(Integration, SmallKLosesMoreMassAtLongerContext)
{
    // The Fig.-3a mechanism: fixed k restricts access to useful
    // context, so quality degrades as context grows.
    LongSightConfig cfg;
    cfg.windowSize = 0;
    cfg.sinkTokens = 0;
    cfg.topK = 32;
    cfg.defaultThreshold = 0; // isolate the k effect from filtering

    Pipeline short_ctx(1000, 1);
    Pipeline long_ctx(8000, 1);
    const auto [short_loss, sr] = short_ctx.evaluate(cfg, 12);
    const auto [long_loss, lr] = long_ctx.evaluate(cfg, 12);
    EXPECT_GT(long_loss, short_loss);
}

TEST(Integration, WindowImprovesQualityAtSameK)
{
    // The Fig.-3b mechanism: the dense sliding window reduces the
    // burden on the sparse path.
    LongSightConfig no_window;
    no_window.windowSize = 0;
    no_window.sinkTokens = 0;
    no_window.topK = 64;

    LongSightConfig hybrid = no_window;
    hybrid.windowSize = 512;
    hybrid.sinkTokens = 16;

    Pipeline p1(6000, 2), p2(6000, 2);
    const auto [loss_plain, r1] = p1.evaluate(no_window, 12);
    const auto [loss_hybrid, r2] = p2.evaluate(hybrid, 12);
    EXPECT_LT(loss_hybrid, loss_plain);
}

TEST(Integration, ItqAllowsHigherThresholdAtSameQuality)
{
    // The Fig.-3c mechanism, stated operationally: at a fixed
    // aggressive threshold, ITQ loses less softmax mass than raw sign
    // bits (equivalently, it reaches a higher filter ratio at matched
    // quality).
    const size_t context = 6000;
    const int threshold = static_cast<int>(kDim * 0.58);

    LongSightConfig cfg;
    cfg.windowSize = 512;
    cfg.sinkTokens = 16;
    cfg.topK = 64;
    cfg.defaultThreshold = threshold;

    Pipeline raw(context, 3);
    Pipeline itq(context, 3);
    Rng rng(99);
    itq.trainItq(rng);

    const auto [raw_loss, raw_ratio] = raw.evaluate(cfg, 16);
    const auto [itq_loss, itq_ratio] = itq.evaluate(cfg, 16);

    // ITQ must not trade meaningfully worse quality...
    EXPECT_LT(itq_loss, raw_loss + 0.02);
    // ...and must keep enough relevant keys that quality is usable
    // while raw signs at this threshold are materially worse.
    EXPECT_LT(itq_loss, raw_loss * 1.05 + 1e-3);
}

TEST(Integration, ThresholdSweepTracesParetoFrontier)
{
    // Fig. 4 mechanism: raising the threshold increases the filter
    // ratio and (weakly) the lost mass.
    Pipeline p(5000, 4);
    LongSightConfig cfg;
    cfg.windowSize = 256;
    cfg.sinkTokens = 16;
    cfg.topK = 128;

    double prev_ratio = 0.0;
    for (int th : {0, 28, 34, 40, 46}) {
        cfg.defaultThreshold = th;
        Pipeline fresh(5000, 4);
        const auto [loss, ratio] = fresh.evaluate(cfg, 10);
        EXPECT_GE(ratio, prev_ratio * 0.98) << "threshold " << th;
        prev_ratio = ratio;
    }
    EXPECT_GT(prev_ratio, 2.0) << "aggressive threshold must filter";
}

TEST(Integration, GqaGroupRoundTripThroughDevice)
{
    // Four query heads sharing one KV head (GQA 32/8), evaluated both
    // on the software path and as a single grouped DReX offload.
    const size_t n = 1200;
    const uint32_t window = 128, sinks = 16, k = 48;
    const int threshold = 34;

    Pipeline p(n, 5);
    Rng rng(55);
    p.trainItq(rng);

    DrexConfig dc;
    dc.numKvHeads = 1;
    dc.numLayers = 1;
    dc.headDim = kDim;
    DrexDevice dev(dc);
    KvCache &dev_cache =
        dev.writeContext(0, 0, 0, p.wl.keys(), p.wl.values());
    dev_cache.setItqRotation(p.cache->itqRotation());

    Matrix queries(4, kDim);
    Matrix filter_queries(4, kDim);
    for (uint32_t q = 0; q < 4; ++q) {
        const auto qv = p.wl.drawQuery();
        queries.setRow(q, qv.data());
        const auto qf = p.cache->toFilterSpace(qv);
        filter_queries.setRow(q, qf.data());
    }

    OffloadSpec spec;
    spec.sparseBegin = sinks;
    spec.sparseEnd = n - window;
    spec.numQueries = 4;
    spec.k = k;
    spec.threshold = threshold;
    spec.cache = &dev_cache;
    spec.queries = &queries;
    spec.filterQueries = &filter_queries;

    AttentionRequest req;
    req.headOffloads.push_back(spec);
    dev.submit(std::move(req));
    const auto resp = dev.processAll();
    const auto &head = resp[0].headResults[0];

    LongSightConfig cfg;
    cfg.windowSize = window;
    cfg.sinkTokens = sinks;
    cfg.topK = k;
    cfg.defaultThreshold = threshold;
    LongSightAttn attn(cfg, 1);

    ASSERT_EQ(head.topk.size(), 4u);
    for (uint32_t q = 0; q < 4; ++q) {
        const auto sw = attn.computeHead(queries.rowVec(q), *p.cache, 0);
        std::vector<uint32_t> sw_sparse;
        for (uint32_t idx : sw.attended)
            if (idx >= sinks && idx < n - window)
                sw_sparse.push_back(idx);
        std::vector<uint32_t> hw_sparse;
        for (const auto &e : head.topk[q])
            hw_sparse.push_back(e.index);
        std::sort(hw_sparse.begin(), hw_sparse.end());
        EXPECT_EQ(hw_sparse, sw_sparse) << "query " << q;
    }
}

TEST(Integration, HybridLosesAlmostNothingAtGenerousSettings)
{
    // W = 1024, k = 1024 at 4K context: the paper's default operating
    // point must retain nearly all softmax mass on this workload.
    Pipeline p(4000, 6);
    LongSightConfig cfg;
    cfg.windowSize = 1024;
    cfg.sinkTokens = 16;
    cfg.topK = 1024;
    cfg.defaultThreshold = 0;
    const auto [loss, ratio] = p.evaluate(cfg, 8);
    EXPECT_LT(loss, 0.01);
}

TEST(Integration, UnboundedKIsExactlyDense)
{
    // k >= sparse region and threshold 0: nothing is dropped at all.
    Pipeline p(3000, 6);
    LongSightConfig cfg;
    cfg.windowSize = 256;
    cfg.sinkTokens = 16;
    cfg.topK = 4096; // > context
    cfg.defaultThreshold = 0;
    const auto [loss, ratio] = p.evaluate(cfg, 4);
    EXPECT_LT(loss, 1e-6);
}

TEST(Integration, PerplexityProxyMapsBudgets)
{
    // 5% perplexity budget corresponds to ~4.9% lost mass under the
    // first-order mapping — sanity for the tuner's budget semantics.
    PerplexityProxy p;
    p.recordLostMass(0.0488);
    EXPECT_NEAR(p.relPplIncreasePct(), 5.0, 0.1);
}

} // namespace
} // namespace longsight

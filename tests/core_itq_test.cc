/**
 * @file
 * Tests for Iterative Quantization: orthogonality, monotone loss, and
 * the property the whole design rests on — on anisotropic clustered
 * data (the §5.4 failure mode of raw sign bits), the ITQ rotation
 * makes sign concordance a better proxy for dot-product similarity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/itq.hh"
#include "tensor/linalg.hh"
#include "tensor/signbits.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

/** Anisotropic data: few dominant axis-aligned dimensions. */
Matrix
anisotropicData(size_t n, size_t d, Rng &rng)
{
    Matrix m(n, d);
    std::vector<float> scale(d);
    for (size_t j = 0; j < d; ++j)
        scale[j] = static_cast<float>(
            std::max(std::pow(0.90, static_cast<double>(j)), 0.05));
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < d; ++j)
            m(i, j) = static_cast<float>(rng.gaussian()) * scale[j];
    return m;
}

TEST(Itq, RotationIsOrthogonal)
{
    Rng rng(1);
    const Matrix data = anisotropicData(256, 32, rng);
    const Matrix r = trainItqRotation(data, 20, rng);
    EXPECT_TRUE(isOrthogonal(r, 1e-3f));
}

TEST(Itq, LossNonIncreasingAcrossIterations)
{
    Rng rng(2);
    const Matrix data = anisotropicData(256, 32, rng);
    double prev = 1e30;
    // The alternation is monotone; check at several iteration counts
    // from the same initialization (same forked rng state).
    for (int iters : {1, 2, 5, 10, 20, 40}) {
        Rng local(777);
        const Matrix r = trainItqRotation(data, iters, local);
        const double loss = signQuantizationLoss(data, r);
        EXPECT_LE(loss, prev + 1e-6) << "iters " << iters;
        prev = loss;
    }
}

TEST(Itq, ReducesLossVersusIdentity)
{
    Rng rng(3);
    const Matrix data = anisotropicData(512, 64, rng);
    const double base = signQuantizationLoss(data, Matrix::identity(64));
    const Matrix r = trainItqRotation(data, 30, rng);
    EXPECT_LT(signQuantizationLoss(data, r), base);
}

TEST(Itq, RotationPreservesDotProducts)
{
    Rng rng(4);
    const Matrix data = anisotropicData(128, 32, rng);
    const Matrix r = trainItqRotation(data, 10, rng);
    const auto a = data.rowVec(0);
    const auto b = data.rowVec(1);
    const auto ra = gemvT(r, a);
    const auto rb = gemvT(r, b);
    EXPECT_NEAR(dot(a.data(), b.data(), 32), dot(ra.data(), rb.data(), 32),
                1e-2);
}

/**
 * The load-bearing property: rank correlation between sign
 * concordance and true dot product improves under ITQ on anisotropic
 * data. Measured as the mean concordance gap between each query's
 * true top-10% keys and the rest.
 */
TEST(Itq, ImprovesConcordanceSeparationOnAnisotropicData)
{
    Rng rng(5);
    const size_t d = 64, n = 600, queries = 24;
    const Matrix keys = anisotropicData(n, d, rng);
    const Matrix qs = anisotropicData(queries, d, rng);

    Matrix train(n + queries, d);
    for (size_t i = 0; i < n; ++i)
        train.setRow(i, keys.row(i));
    for (size_t i = 0; i < queries; ++i)
        train.setRow(n + i, qs.row(i));
    const Matrix rot = trainItqRotation(train, 30, rng);

    auto separation = [&](bool use_rot) {
        double total = 0.0;
        for (size_t qi = 0; qi < queries; ++qi) {
            std::vector<float> q = qs.rowVec(qi);
            std::vector<std::pair<float, int>> scored;
            for (size_t i = 0; i < n; ++i) {
                std::vector<float> k = keys.rowVec(i);
                const float s = dot(q.data(), k.data(), d);
                std::vector<float> qq = use_rot ? gemvT(rot, q) : q;
                std::vector<float> kk = use_rot ? gemvT(rot, k) : k;
                const SignBits sq(qq.data(), d), sk(kk.data(), d);
                scored.push_back({s, sq.concordance(sk)});
            }
            std::sort(scored.begin(), scored.end(),
                      [](auto &a, auto &b) { return a.first > b.first; });
            const size_t top = n / 10;
            double top_mean = 0, rest_mean = 0;
            for (size_t i = 0; i < n; ++i)
                (i < top ? top_mean : rest_mean) += scored[i].second;
            top_mean /= top;
            rest_mean /= (n - top);
            total += top_mean - rest_mean;
        }
        return total / queries;
    };

    const double raw_sep = separation(false);
    const double itq_sep = separation(true);
    EXPECT_GT(itq_sep, raw_sep)
        << "ITQ should widen the concordance gap between relevant and "
           "irrelevant keys";
}

TEST(Itq, SpreadsVarianceAcrossDimensions)
{
    // The mechanism behind §5.4: on anisotropic (outlier-dimension)
    // data, the ITQ rotation spreads variance so every sign bit
    // carries comparable information. Measured as the coefficient of
    // variation of per-dimension variances, which must shrink.
    Rng rng(6);
    const size_t d = 32, n = 1024;
    const Matrix data = anisotropicData(n, d, rng);

    auto variance_cv = [&](const Matrix &rot) {
        const Matrix v = matmul(data, rot);
        std::vector<double> var(d, 0.0);
        for (size_t j = 0; j < d; ++j) {
            double mean = 0.0;
            for (size_t i = 0; i < n; ++i)
                mean += v(i, j);
            mean /= n;
            for (size_t i = 0; i < n; ++i)
                var[j] += (v(i, j) - mean) * (v(i, j) - mean);
            var[j] /= n;
        }
        double m = 0.0, s = 0.0;
        for (double x : var)
            m += x;
        m /= d;
        for (double x : var)
            s += (x - m) * (x - m);
        return std::sqrt(s / d) / m;
    };

    const double raw_cv = variance_cv(Matrix::identity(d));
    const Matrix rot = trainItqRotation(data, 30, rng);
    const double itq_cv = variance_cv(rot);
    EXPECT_LT(itq_cv, 0.5 * raw_cv);
}

} // namespace
} // namespace longsight

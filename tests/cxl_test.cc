/**
 * @file
 * Tests for the CXL link model: latency/bandwidth math, link
 * occupancy under contention, and polling behaviour.
 */

#include <gtest/gtest.h>

#include "cxl/link.hh"

namespace longsight {
namespace {

TEST(Cxl, MmioWriteLatency)
{
    CxlConfig cfg;
    CxlLink link(cfg);
    const Tick done = link.mmioWrite(0, 64);
    EXPECT_EQ(done, cfg.mmioWriteLatency + transferTime(64, cfg.bandwidthGBps));
}

TEST(Cxl, BulkReadLatencyPlusBandwidth)
{
    CxlConfig cfg;
    cfg.bandwidthGBps = 50.0;
    CxlLink link(cfg);
    const uint64_t bytes = 1'000'000;
    const Tick done = link.bulkRead(0, bytes);
    const Tick expect = cfg.accessLatency + transferTime(bytes, 50.0);
    EXPECT_EQ(done, expect);
}

TEST(Cxl, LinkOccupancySerializesTransfers)
{
    CxlConfig cfg;
    CxlLink link(cfg);
    const uint64_t bytes = 10'000'000;
    const Tick t1 = link.bulkRead(0, bytes);
    const Tick t2 = link.bulkRead(0, bytes); // issued at 0, must queue
    EXPECT_GE(t2, t1);
    EXPECT_NEAR(static_cast<double>(t2 - t1),
                static_cast<double>(transferTime(bytes, cfg.bandwidthGBps)),
                static_cast<double>(kNanosecond));
}

TEST(Cxl, BytesAccounted)
{
    CxlLink link(CxlConfig{});
    link.mmioWrite(0, 100);
    link.bulkRead(0, 900);
    EXPECT_EQ(link.bytesTransferred(), 1000u);
}

TEST(Cxl, PollAfterCompletionIsOneRoundTrip)
{
    CxlConfig cfg;
    CxlLink link(cfg);
    const Tick observed = link.pollCompletion(1000 * kNanosecond,
                                              500 * kNanosecond);
    EXPECT_EQ(observed, 1000 * kNanosecond + 2 * cfg.accessLatency);
}

TEST(Cxl, PollWaitsInIntervals)
{
    CxlConfig cfg;
    cfg.pollInterval = fromNanoseconds(500);
    cfg.accessLatency = fromNanoseconds(250);
    CxlLink link(cfg);
    // Device done 1200 ns after polling starts: polls at 500, 1000,
    // 1500 -> completion observed at 1500 + RTT.
    const Tick observed = link.pollCompletion(0, fromNanoseconds(1200));
    EXPECT_EQ(observed, fromNanoseconds(1500) + 2 * cfg.accessLatency);
}

TEST(Cxl, PollExactBoundary)
{
    CxlConfig cfg;
    cfg.pollInterval = fromNanoseconds(500);
    CxlLink link(cfg);
    const Tick observed = link.pollCompletion(0, fromNanoseconds(1000));
    EXPECT_EQ(observed, fromNanoseconds(1000) + 2 * cfg.accessLatency);
}

TEST(Cxl, DescriptorDefaultsSane)
{
    CxlConfig cfg;
    EXPECT_GT(cfg.descriptorBytes, 0u);
    EXPECT_GT(cfg.bandwidthGBps, 0.0);
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the LPDDR5X channel/package timing model: protocol
 * invariants (row hits cheaper than misses, bank conflicts serialize,
 * bank-level parallelism overlaps), streaming bandwidth approaching
 * the configured peak, and the striped-vs-contiguous property §7.3.3
 * relies on.
 */

#include <gtest/gtest.h>

#include "dram/channel.hh"
#include "dram/package.hh"

namespace longsight {
namespace {

TEST(DramChannel, RowHitFasterThanMiss)
{
    LpddrTimings t;
    DramChannel ch(t);
    const Tick first = ch.read(0, 0, 10, 32); // cold miss
    const Tick hit_latency = ch.read(first, 0, 10, 32) - first;
    DramChannel ch2(t);
    ch2.read(0, 0, 10, 32);
    const Tick t2 = ch2.read(first, 0, 99, 32) - first; // row miss
    EXPECT_LT(hit_latency, t2);
}

TEST(DramChannel, ColdReadLatencyIncludesActivate)
{
    LpddrTimings t;
    DramChannel ch(t);
    const Tick done = ch.read(0, 0, 0, 32);
    EXPECT_EQ(done, t.tRCD + t.tRL + t.tBurst);
}

TEST(DramChannel, RowMissPaysPrecharge)
{
    LpddrTimings t;
    DramChannel ch(t);
    const Tick first = ch.read(0, 0, 0, 32);
    const Tick second = ch.read(first, 0, 1, 32);
    EXPECT_GE(second - first, t.tRP + t.tRCD + t.tRL + t.tBurst);
}

TEST(DramChannel, BankConflictSerializes)
{
    LpddrTimings t;
    DramChannel same(t), diff(t);
    // Two back-to-back reads to different rows of the same bank...
    Tick s = same.read(0, 0, 0, 32);
    s = same.read(0, 0, 1, 32);
    // ...vs two reads to different banks (both issued at 0).
    Tick d = diff.read(0, 0, 0, 32);
    d = diff.read(0, 1, 0, 32);
    EXPECT_GT(s, d);
}

TEST(DramChannel, DataBusSharedAcrossBanks)
{
    LpddrTimings t;
    DramChannel ch(t);
    // Many single-burst reads to distinct banks: bank work overlaps
    // but the data bus serializes the bursts.
    Tick done = 0;
    const int n = 64;
    for (int i = 0; i < n; ++i)
        done = ch.read(0, i, 0, t.burstBytes);
    EXPECT_GE(done, t.tRCD + t.tRL + n * t.tBurst);
    // And not much more than that (no spurious serialization).
    EXPECT_LE(done, t.tRCD + t.tRL + (n + 4) * t.tBurst);
}

TEST(DramChannel, StreamingBandwidthApproachesPeak)
{
    LpddrTimings t;
    DramChannel ch(t);
    // Stream 1 MiB from one row-hit-friendly region across banks.
    const uint64_t total = 1 * kMiB;
    const uint32_t per_read = t.rowBytes; // full-row reads
    Tick done = 0;
    uint64_t issued = 0;
    uint32_t bank = 0;
    uint64_t row = 0;
    while (issued < total) {
        done = ch.read(0, bank, row, per_read);
        issued += per_read;
        bank = (bank + 1) % t.banksPerChannel;
        if (bank == 0)
            ++row;
    }
    const double achieved =
        static_cast<double>(issued) / toSeconds(done);
    EXPECT_GT(achieved, 0.85 * t.peakBandwidth());
}

TEST(DramChannel, StatsCountHitsAndMisses)
{
    LpddrTimings t;
    DramChannel ch(t);
    ch.read(0, 0, 0, 32); // miss
    ch.read(0, 0, 0, 32); // hit
    ch.read(0, 0, 0, 32); // hit
    ch.read(0, 0, 5, 32); // miss
    EXPECT_EQ(ch.stats().reads, 4u);
    EXPECT_EQ(ch.stats().rowHits, 2u);
    EXPECT_EQ(ch.stats().rowMisses, 2u);
    EXPECT_DOUBLE_EQ(ch.stats().rowHitRate(), 0.5);
}

TEST(DramChannel, WriteCompletes)
{
    LpddrTimings t;
    DramChannel ch(t);
    const Tick done = ch.write(0, 3, 7, 64);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(ch.stats().writes, 1u);
    EXPECT_EQ(ch.stats().bytesTransferred, 64u);
}

TEST(DramChannel, ProbeReadyDoesNotMutate)
{
    LpddrTimings t;
    DramChannel ch(t);
    const Tick p1 = ch.probeReady(0, 0, 0);
    const Tick p2 = ch.probeReady(0, 0, 0);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(ch.stats().reads, 0u);
}

TEST(DramChannel, EarliestRespected)
{
    LpddrTimings t;
    DramChannel ch(t);
    const Tick done = ch.read(5 * kMicrosecond, 0, 0, 32);
    EXPECT_GE(done, 5 * kMicrosecond);
}

TEST(DramPackage, StripedBeatsContiguousForLargeReads)
{
    LpddrTimings t;
    DramPackage striped(t, 8), contiguous(t, 8);
    const uint32_t bytes = 4096;
    const Tick ts = striped.readStriped(0, 0, 0, bytes);
    const Tick tc = contiguous.readContiguous(0, 0, 0, 0, bytes);
    EXPECT_LT(ts, tc) << "channel interleaving must beat one channel";
}

TEST(DramPackage, StripedTouchesAllChannels)
{
    LpddrTimings t;
    DramPackage pkg(t, 8);
    pkg.readStriped(0, 0, 0, 8 * 32);
    for (uint32_t c = 0; c < 8; ++c)
        EXPECT_EQ(pkg.channel(c).stats().reads, 1u) << "channel " << c;
}

TEST(DramPackage, PeakBandwidthIsChannelsTimesChannel)
{
    LpddrTimings t;
    DramPackage pkg(t, 8);
    EXPECT_NEAR(pkg.peakBandwidth(), 8.0 * t.peakBandwidth(), 1.0);
}

TEST(DramPackage, SmallStripedReadSkipsIdleChannels)
{
    LpddrTimings t;
    DramPackage pkg(t, 8);
    pkg.readStriped(0, 0, 0, 40); // ceil(40/8)=5 bytes/channel
    uint64_t total = pkg.totalBytesTransferred();
    EXPECT_EQ(total, 40u);
}

TEST(DramChannel, RefreshStallsAndCounts)
{
    LpddrTimings t;
    DramChannel ch(t);
    // A read issued right at the refresh boundary must stall past it.
    const Tick at = t.tREFI;
    const Tick done = ch.read(at, 0, 0, 32);
    EXPECT_GE(done, at + t.tRFCab);
    EXPECT_EQ(ch.stats().refreshes, 1u);
}

TEST(DramChannel, RefreshReducesStreamingBandwidth)
{
    auto stream = [](bool refresh) {
        LpddrTimings t;
        t.refreshEnabled = refresh;
        DramChannel ch(t);
        Tick done = 0;
        uint64_t issued = 0;
        uint32_t bank = 0;
        uint64_t row = 0;
        while (issued < 4 * kMiB) {
            done = ch.read(done, bank, row, t.rowBytes);
            issued += t.rowBytes;
            bank = (bank + 1) % t.banksPerChannel;
            if (bank == 0)
                ++row;
        }
        return static_cast<double>(issued) / toSeconds(done);
    };
    const double with_refresh = stream(true);
    const double without = stream(false);
    EXPECT_LT(with_refresh, without);
    // Penalty is roughly tRFCab / tREFI ~ 4.6 %.
    EXPECT_GT(with_refresh, 0.90 * without);
}

TEST(DramChannel, FarFutureAccessSkipsRefreshEpochsInBulk)
{
    LpddrTimings t;
    DramChannel ch(t);
    // One second ahead: ~256K refresh epochs must be accounted in O(1).
    ch.read(kSecond, 0, 0, 32);
    EXPECT_GT(ch.stats().refreshes, 200'000u);
}

TEST(DramGeometry, DrexTotalsMatchPaper)
{
    DrexGeometry g;
    EXPECT_EQ(g.totalChannels(), 64u);
    EXPECT_EQ(g.totalBanks(), 8192u);
    EXPECT_EQ(g.totalPfus(), 8192u); // Table 2: 8,192 PFUs
}

TEST(DramGeometry, CapacityIs512GiB)
{
    DrexGeometry g;
    LpddrTimings t;
    const uint64_t cap =
        static_cast<uint64_t>(g.totalChannels()) * t.channelCapacity;
    EXPECT_EQ(cap, 512ULL * kGiB);
}

TEST(DramTimings, ChannelBandwidthMatchesLpddr5x)
{
    LpddrTimings t;
    // 32 B / 1.875 ns ≈ 17.07 GB/s per channel -> 1.09 TB/s for 64.
    EXPECT_NEAR(t.peakBandwidth() / 1e9, 17.07, 0.2);
}

} // namespace
} // namespace longsight

/**
 * @file
 * SLO-aware serving engine: conservation, chunked-prefill TBT
 * bounding, priority preemption with retained prefixes over a
 * BlockLedger, seeded reproducibility, thread-count invariance of
 * the metrics, and goodput accounting edge cases.
 */

#include "sim/serving_engine.hh"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "model/traffic.hh"
#include "util/thread_pool.hh"

namespace longsight {
namespace {

constexpr uint32_t kBlockTokens = 128;

/**
 * Simple affine cost model: a decode step costs a base plus a per-
 * user term, prefill costs per token, restore costs per token but
 * cheaper (it is a bulk transfer, not compute).
 */
ServingCostModel
affineCosts(Tick decode_base = 5 * kMillisecond,
            Tick decode_per_user = 100 * kMicrosecond,
            Tick prefill_per_token = 10 * kMicrosecond,
            Tick restore_per_token = 1 * kMicrosecond)
{
    ServingCostModel m;
    m.decodeStepTime = [=](const std::vector<uint64_t> &contexts) {
        return decode_base + decode_per_user * contexts.size();
    };
    m.prefillChunkTime = [=](uint64_t chunk, uint64_t) {
        return prefill_per_token * chunk;
    };
    m.restoreTime = [=](uint64_t ctx) { return restore_per_token * ctx; };
    return m;
}

ServingRequest
request(uint32_t id, Tick arrival, uint64_t prompt, uint32_t output,
        Priority prio = Priority::Batch)
{
    ServingRequest r;
    r.id = id;
    r.arrival = arrival;
    r.promptLen = prompt;
    r.outputTokens = output;
    r.priority = prio;
    return r;
}

const RequestMetrics &
metricsFor(const ServingEngineResult &res, uint32_t id)
{
    for (const auto &m : res.requests)
        if (m.id == id)
            return m;
    ADD_FAILURE() << "request " << id << " not in results";
    static RequestMetrics none;
    return none;
}

TEST(ServingEngine, ConservationAcrossAMixedTrace)
{
    TrafficConfig tcfg;
    tcfg.requests = 200;
    tcfg.promptMax = 8192;
    tcfg.outputMax = 64;
    tcfg.arrivalsPerSec = 20.0;
    const auto trace = generateTraffic(tcfg);
    uint64_t expected_tokens = 0;
    for (const auto &r : trace)
        expected_tokens += r.outputTokens;

    BlockLedger ledger(4096, kBlockTokens);
    ServingEngineConfig cfg;
    cfg.maxBatch = 16;
    ServingEngine engine(cfg, affineCosts(), &ledger);
    const auto res = engine.run(trace);

    EXPECT_EQ(res.requests.size(), trace.size());
    EXPECT_EQ(res.totalTokens, expected_tokens);
    EXPECT_EQ(ledger.inUse(), 0u) << "all blocks must be released";
    EXPECT_LE(res.peakBlocks, ledger.budget());
    EXPECT_GT(res.makespan, 0u);
    for (const auto &r : trace)
        EXPECT_EQ(metricsFor(res, r.id).tokens, r.outputTokens);
}

TEST(ServingEngine, ChunkedPrefillBoundsRunningStreamsTbt)
{
    // One long-output stream is decoding when a 32K-token prompt
    // arrives. With chunked prefill the stream's worst token gap is
    // one decode + one chunk; monolithically it absorbs the entire
    // 32K prefill (~328 ms at 10 us/token).
    const std::vector<ServingRequest> trace = {
        request(0, 0, 256, 400),
        request(1, kSecond, 32768, 8),
    };

    ServingEngineConfig chunked;
    chunked.maxBatch = 4;
    chunked.prefillChunkTokens = 2048;
    ServingEngineConfig mono = chunked;
    mono.prefillChunkTokens = 0;

    const auto cres = ServingEngine(chunked, affineCosts()).run(trace);
    const auto mres = ServingEngine(mono, affineCosts()).run(trace);

    // decode base 5 ms + 2 users * 0.1 ms + 2048-token chunk at
    // 10 us/token = 20.48 ms -> every gap stays under ~26 ms.
    EXPECT_LT(metricsFor(cres, 0).maxTbtMs, 30.0);
    EXPECT_GT(metricsFor(mres, 0).maxTbtMs, 300.0)
        << "monolithic prefill must stall the running stream";

    // The chunk count is exactly the prompts' chunk arithmetic: no
    // chunk is lost, none runs twice.
    EXPECT_EQ(cres.prefillChunks, (256 + 2047) / 2048 + 32768 / 2048);
    EXPECT_EQ(mres.prefillChunks, 2u);

    // Both schedules still deliver every token.
    EXPECT_EQ(cres.totalTokens, 408u);
    EXPECT_EQ(mres.totalTokens, 408u);
}

TEST(ServingEngine, PreemptionReleasesBlocksAndRestoresPrefix)
{
    // Ledger fits ~2 big batch jobs; an interactive request arriving
    // later cannot be admitted until a batch job is evicted.
    BlockLedger ledger(64, kBlockTokens);
    const uint64_t big = 24 * kBlockTokens; // 24 blocks reserved each
    const std::vector<ServingRequest> trace = {
        request(0, 0, big - 64, 64),
        request(1, 0, big - 64, 64),
        request(2, 100 * kMillisecond, 20 * kBlockTokens - 32, 32,
                Priority::Interactive),
    };

    ServingEngineConfig cfg;
    cfg.maxBatch = 4;
    cfg.prefillChunkTokens = 1024;
    ServingEngine engine(cfg, affineCosts(), &ledger);
    const auto res = engine.run(trace);

    EXPECT_GE(res.preemptions, 1u);
    EXPECT_GE(res.restores, 1u);
    EXPECT_LE(res.peakBlocks, ledger.budget());
    EXPECT_EQ(ledger.inUse(), 0u);

    // The newest batch job was the victim, resumed, and finished with
    // its full output; its prefix was retained (the engine never
    // re-prefills, so the chunk count stays the no-preemption sum).
    EXPECT_GE(metricsFor(res, 1).preemptions, 1u);
    EXPECT_EQ(metricsFor(res, 1).tokens, 64u);
    uint64_t chunks = 0;
    for (const auto &r : trace)
        chunks += (r.promptLen + 1023) / 1024;
    EXPECT_EQ(res.prefillChunks, chunks)
        << "a preempted request must resume, not re-prefill";

    // Preemption exists to serve the interactive class first: it must
    // beat the victim to completion despite arriving a second later.
    EXPECT_LT(metricsFor(res, 2).completion,
              metricsFor(res, 1).completion);

    // Without preemption the interactive request waits for a batch
    // job to drain instead: its first token comes strictly later.
    ServingEngineConfig no_preempt = cfg;
    no_preempt.preemption = false;
    BlockLedger ledger2(64, kBlockTokens);
    const auto res2 =
        ServingEngine(no_preempt, affineCosts(), &ledger2).run(trace);
    EXPECT_EQ(res2.preemptions, 0u);
    EXPECT_GT(metricsFor(res2, 2).ttft, metricsFor(res, 2).ttft);
}

TEST(ServingEngine, GateHoldsUnderPressureNeverOverCommit)
{
    TrafficConfig tcfg;
    tcfg.requests = 150;
    tcfg.promptMax = 4096;
    tcfg.outputMax = 32;
    tcfg.arrivalsPerSec = 50.0;
    BlockLedger ledger(512, kBlockTokens);
    ServingEngineConfig cfg;
    cfg.maxBatch = 64;
    const auto res =
        ServingEngine(cfg, affineCosts(), &ledger).run(generateTraffic(tcfg));
    EXPECT_GT(res.gateHolds, 0u) << "budget never bound; test is vacuous";
    EXPECT_LE(res.peakBlocks, ledger.budget());
    EXPECT_EQ(res.requests.size(), 150u);
}

TEST(ServingEngine, SeededTraceReproducible)
{
    TrafficConfig tcfg;
    tcfg.requests = 300;
    tcfg.promptMax = 16384;
    tcfg.process = ArrivalProcess::Diurnal;
    ServingEngineConfig cfg;
    const auto run = [&] {
        BlockLedger ledger(2048, kBlockTokens);
        return ServingEngine(cfg, affineCosts(), &ledger)
            .run(generateTraffic(tcfg));
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.totalTokens, b.totalTokens);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.gateHolds, b.gateHolds);
    EXPECT_EQ(a.peakBlocks, b.peakBlocks);
    EXPECT_EQ(a.ttftP99Ms, b.ttftP99Ms);
    EXPECT_EQ(a.tbtP99Ms, b.tbtP99Ms);
    EXPECT_EQ(a.goodputTokensPerSec, b.goodputTokensPerSec);
}

TEST(ServingEngine, MetricsBitIdenticalAcrossThreadCounts)
{
    // The engine loop is serial by contract; the cost model is where
    // a real system parallelizes. This one fans per-context work out
    // over the global pool with per-index result slots and a serial
    // reduction, so its Tick is bit-identical at any thread count —
    // and therefore so is every serving metric.
    ServingCostModel m = affineCosts();
    m.decodeStepTime = [](const std::vector<uint64_t> &contexts) {
        std::vector<Tick> per(contexts.size());
        ThreadPool::global().parallelFor(
            0, contexts.size(), [&](size_t i) {
                per[i] = kMicrosecond * (100 + contexts[i] / 64);
            });
        Tick sum = 2 * kMillisecond;
        for (Tick t : per)
            sum += t;
        return sum;
    };

    TrafficConfig tcfg;
    tcfg.requests = 200;
    tcfg.promptMax = 8192;
    ServingEngineConfig cfg;
    const auto run = [&] {
        BlockLedger ledger(2048, kBlockTokens);
        return ServingEngine(cfg, m, &ledger)
            .run(generateTraffic(tcfg));
    };

    ThreadPool::configureGlobal(1);
    const auto serial = run();
    ThreadPool::configureGlobal(8);
    const auto parallel = run();
    ThreadPool::configureGlobal(0); // restore the default pool

    EXPECT_EQ(serial.makespan, parallel.makespan);
    EXPECT_EQ(serial.totalTokens, parallel.totalTokens);
    EXPECT_EQ(serial.preemptions, parallel.preemptions);
    EXPECT_EQ(serial.gateHolds, parallel.gateHolds);
    EXPECT_EQ(serial.ttftP50Ms, parallel.ttftP50Ms);
    EXPECT_EQ(serial.ttftP99Ms, parallel.ttftP99Ms);
    EXPECT_EQ(serial.tbtP50Ms, parallel.tbtP50Ms);
    EXPECT_EQ(serial.tbtP99Ms, parallel.tbtP99Ms);
    EXPECT_EQ(serial.goodputTokensPerSec, parallel.goodputTokensPerSec);
    EXPECT_EQ(serial.sloAttainment, parallel.sloAttainment);
}

TEST(ServingEngine, GoodputCountsOnlySloAttainedTokens)
{
    const std::vector<ServingRequest> trace = {
        request(0, 0, 256, 16),
        request(1, 0, 256, 16),
    };

    // Generous SLO: everything attains, goodput == throughput.
    ServingEngineConfig generous;
    generous.slo.ttftMs = 1e6;
    generous.slo.tbtMs = 1e6;
    const auto g = ServingEngine(generous, affineCosts()).run(trace);
    EXPECT_DOUBLE_EQ(g.sloAttainment, 1.0);
    EXPECT_DOUBLE_EQ(g.goodputTokensPerSec, g.throughputTokensPerSec);

    // Impossible SLO: nothing attains, goodput is zero, throughput
    // is not.
    ServingEngineConfig impossible;
    impossible.slo.ttftMs = 1e-3;
    impossible.slo.tbtMs = 1e-3;
    const auto i = ServingEngine(impossible, affineCosts()).run(trace);
    EXPECT_DOUBLE_EQ(i.sloAttainment, 0.0);
    EXPECT_DOUBLE_EQ(i.goodputTokensPerSec, 0.0);
    EXPECT_GT(i.throughputTokensPerSec, 0.0);
}

TEST(ServingEngine, HistogramsSizedFromSloWithOverflowReported)
{
    // TTFT far beyond the histogram span (5 x slo): the quantile
    // saturates at the top edge and the overflow fraction says so.
    ServingEngineConfig cfg;
    cfg.slo.ttftMs = 10.0;
    cfg.prefillChunkTokens = 0;
    const std::vector<ServingRequest> trace = {
        request(0, 0, 65536, 4), // 655 ms monolithic prefill
    };
    const auto res = ServingEngine(cfg, affineCosts()).run(trace);
    EXPECT_GT(res.ttftOverflow, 0.0);
    EXPECT_DOUBLE_EQ(res.ttftP99Ms, kSloHistogramSpan * cfg.slo.ttftMs);
    EXPECT_DOUBLE_EQ(res.sloAttainment, 0.0);
}

TEST(ServingEngine, LedgerChargesOnlyPrivateTailForSharedPrefix)
{
    BlockLedger ledger(69, kBlockTokens, /*num_kv_heads=*/2);

    // 4096-token prompt + 64 output = 4160 tokens = 33 blocks x 2
    // heads. A 3968-token shared prefix covers 31 FULL blocks, so the
    // private charge is (33 - 31) x 2 = 4.
    EXPECT_EQ(ledger.blocksFor(4160), 66u);
    EXPECT_EQ(ledger.privateBlocksFor(4160, 3968), 4u);
    // A ragged shared prefix only discounts its whole blocks.
    EXPECT_EQ(ledger.privateBlocksFor(4160, 3968 + 100), 4u);
    // Shared prefix clamps to the context; never negative.
    EXPECT_EQ(ledger.privateBlocksFor(256, 100000), 0u);
    // Zero shared prefix degenerates to the plain charge.
    EXPECT_EQ(ledger.privateBlocksFor(4160, 0), ledger.blocksFor(4160));

    // Reserve/release with the same shared arg stays symmetric.
    ASSERT_TRUE(ledger.canReserve(4160, 3968));
    ledger.reserve(4160, 3968);
    EXPECT_EQ(ledger.inUse(), 4u);
    // The full-charge flavour no longer fits beside the reservation
    // (4 + 66 > 69); the prefix-aware one has room for many more.
    EXPECT_FALSE(ledger.canReserve(4160));
    EXPECT_TRUE(ledger.canReserve(4160, 3968));
    ledger.release(4160, 3968);
    EXPECT_EQ(ledger.inUse(), 0u);
}

TEST(ServingEngine, SharedPrefixAdmitsMoreContextUnderOneBudget)
{
    // Sixteen identical 4K-prompt requests against a budget that fits
    // only TWO private prompts at a time. With a published 3968-token
    // system prefix (31 full blocks shared), each request charges 2
    // blocks instead of 33, so the whole fleet becomes concurrently
    // admissible and the shared tokens skip prefill compute.
    std::vector<ServingRequest> trace;
    for (uint32_t i = 0; i < 16; ++i)
        trace.push_back(request(i, 0, 4096, 64));

    ServingEngineConfig cfg;
    cfg.maxBatch = 32;

    BlockLedger private_ledger(66, kBlockTokens);
    const auto base =
        ServingEngine(cfg, affineCosts(), &private_ledger).run(trace);
    EXPECT_EQ(private_ledger.inUse(), 0u);
    EXPECT_LE(base.peakActive, 2u);
    EXPECT_GT(base.gateHolds, 0u);
    EXPECT_EQ(base.prefixBlocksSaved, 0u);

    for (auto &r : trace)
        r.sharedPrefixTokens = 3968;
    BlockLedger shared_ledger(66, kBlockTokens);
    const auto shared =
        ServingEngine(cfg, affineCosts(), &shared_ledger).run(trace);
    EXPECT_EQ(shared_ledger.inUse(), 0u);

    // The admitted-context gain: every request resident at once under
    // the SAME 66-block budget (16 x 2 = 32 blocks), peak context
    // 16 x 4160 tokens vs 2 x 4160 before.
    EXPECT_EQ(shared.peakActive, 16u);
    EXPECT_EQ(shared.peakBlocks, 32u);
    EXPECT_EQ(shared.prefixBlocksSaved, 16u * 31u);
    // Shared tokens are not re-prefilled: only the 128-token private
    // tails pay chunks, and the fleet finishes much sooner.
    EXPECT_LT(shared.prefillChunks, base.prefillChunks);
    EXPECT_LT(shared.makespan, base.makespan);
    EXPECT_EQ(shared.totalTokens, base.totalTokens);
}

TEST(ServingEngine, FullySharedPromptSkipsPrefillEntirely)
{
    ServingEngineConfig cfg;
    std::vector<ServingRequest> trace = {request(0, 0, 4096, 8)};
    trace[0].sharedPrefixTokens = 4096;
    BlockLedger ledger(64, kBlockTokens);
    const auto res = ServingEngine(cfg, affineCosts(), &ledger).run(trace);
    EXPECT_EQ(res.prefillChunks, 0u);
    EXPECT_EQ(res.totalTokens, 8u);
    // Only the output tail is charged: ceil(4160/128)=33 minus 32
    // whole shared blocks.
    EXPECT_EQ(res.peakBlocks, 1u);
    EXPECT_EQ(ledger.inUse(), 0u);
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the AlgoEvaluator sweep harness — the figures depend on
 * it, so its semantics are pinned here: degenerate exactness,
 * monotonicity in thresholds/k/W, ITQ fallback, determinism, and
 * agreement between the sliding-window helper and a window-only
 * configuration.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "eval/algo_eval.hh"

namespace longsight {
namespace {

WorkloadConfig
smallWorkload()
{
    WorkloadConfig cfg;
    cfg.headDim = 64;
    return cfg;
}

TEST(Eval, DegenerateConfigLosesNothing)
{
    AlgoEvaluator eval(smallWorkload(), 2, 1500, 6, 1, 0);
    EvalConfig cfg;
    cfg.windowSize = 0;
    cfg.sinkTokens = 0;
    cfg.topK = 2000; // >= context
    cfg.thresholds = {0, 0};
    const EvalResult r = eval.evaluate(cfg);
    EXPECT_LT(r.lostMass, 1e-6);
    EXPECT_NEAR(r.filterRatio, 1.0, 1e-9);
    EXPECT_NEAR(r.sparsity, 0.0, 1e-9);
}

TEST(Eval, ThresholdMonotonicity)
{
    AlgoEvaluator eval(smallWorkload(), 2, 2000, 8, 2, 0);
    double prev_ratio = 0.0, prev_lost = -1.0;
    for (int th : {0, 16, 28, 36, 44}) {
        EvalConfig cfg;
        cfg.windowSize = 256;
        cfg.topK = 128;
        cfg.thresholds = {th, th};
        const EvalResult r = eval.evaluate(cfg);
        EXPECT_GE(r.filterRatio, prev_ratio - 1e-9) << th;
        EXPECT_GE(r.lostMass, prev_lost - 1e-9) << th;
        prev_ratio = r.filterRatio;
        prev_lost = r.lostMass;
    }
}

TEST(Eval, LargerKNeverHurtsQuality)
{
    AlgoEvaluator eval(smallWorkload(), 2, 3000, 8, 3, 0);
    EvalConfig small, large;
    small.windowSize = large.windowSize = 256;
    small.topK = 32;
    large.topK = 512;
    const EvalResult rs = eval.evaluate(small);
    const EvalResult rl = eval.evaluate(large);
    EXPECT_LE(rl.lostMass, rs.lostMass + 1e-9);
}

TEST(Eval, LargerWindowNeverHurtsQuality)
{
    AlgoEvaluator eval(smallWorkload(), 2, 3000, 8, 4, 0);
    EvalConfig narrow, wide;
    narrow.topK = wide.topK = 64;
    narrow.windowSize = 128;
    wide.windowSize = 1024;
    EXPECT_LE(eval.evaluate(wide).lostMass,
              eval.evaluate(narrow).lostMass + 1e-9);
}

TEST(Eval, ItqRequestWithoutTrainingFallsBackToRaw)
{
    AlgoEvaluator eval(smallWorkload(), 2, 1200, 6, 5, /*itq=*/0);
    EvalConfig raw, itq;
    raw.thresholds = itq.thresholds = {24, 24};
    raw.useItq = false;
    itq.useItq = true;
    const EvalResult a = eval.evaluate(raw);
    const EvalResult b = eval.evaluate(itq);
    EXPECT_EQ(a.stats.survivorKeys, b.stats.survivorKeys);
    EXPECT_DOUBLE_EQ(a.lostMass, b.lostMass);
}

TEST(Eval, ItqChangesFilteringWhenTrained)
{
    AlgoEvaluator eval(smallWorkload(), 2, 1200, 6, 6, /*itq=*/10);
    EvalConfig raw, itq;
    raw.thresholds = itq.thresholds = {36, 36};
    raw.useItq = false;
    itq.useItq = true;
    const EvalResult a = eval.evaluate(raw);
    const EvalResult b = eval.evaluate(itq);
    EXPECT_NE(a.stats.survivorKeys, b.stats.survivorKeys);
}

TEST(Eval, DeterministicForSeed)
{
    AlgoEvaluator a(smallWorkload(), 2, 1000, 4, 42, 5);
    AlgoEvaluator b(smallWorkload(), 2, 1000, 4, 42, 5);
    EvalConfig cfg;
    cfg.thresholds = {20, 20};
    cfg.useItq = true;
    EXPECT_DOUBLE_EQ(a.evaluate(cfg).lostMass, b.evaluate(cfg).lostMass);
}

TEST(Eval, SlidingWindowHelperMatchesWindowOnlyConfig)
{
    AlgoEvaluator eval(smallWorkload(), 2, 2000, 6, 7, 0);
    // Window-only = hybrid with a threshold that filters everything.
    EvalConfig cfg;
    cfg.windowSize = 512;
    cfg.sinkTokens = 16;
    cfg.topK = 1;
    cfg.thresholds = {65, 65}; // > headDim: nothing survives
    const EvalResult r = eval.evaluate(cfg);
    const double helper = eval.slidingWindowLostMass(512, 16);
    EXPECT_NEAR(r.lostMass, helper, 1e-9);
}

TEST(Eval, PerHeadRatiosReported)
{
    AlgoEvaluator eval(smallWorkload(), 3, 1500, 4, 8, 0);
    EvalConfig cfg;
    cfg.thresholds = {0, 30, 60};
    const EvalResult r = eval.evaluate(cfg);
    ASSERT_EQ(r.headFilterRatios.size(), 3u);
    // Monotone thresholds across heads -> monotone per-head ratios.
    EXPECT_LE(r.headFilterRatios[0], r.headFilterRatios[1]);
    EXPECT_LE(r.headFilterRatios[1], r.headFilterRatios[2]);
}

TEST(Eval, RecallPerfectWithoutFiltering)
{
    // With threshold 0 the top-k by score equals the top-k by dense
    // probability (softmax is monotone), so recall is exactly 1.
    AlgoEvaluator eval(smallWorkload(), 2, 2000, 6, 10, 0);
    EvalConfig cfg;
    cfg.windowSize = 256;
    cfg.topK = 64;
    cfg.thresholds = {0, 0};
    EXPECT_DOUBLE_EQ(eval.evaluate(cfg).recallAtK, 1.0);
}

TEST(Eval, RecallDegradesWithAggressiveFiltering)
{
    AlgoEvaluator eval(smallWorkload(), 2, 2000, 6, 11, 0);
    EvalConfig gentle, harsh;
    gentle.windowSize = harsh.windowSize = 256;
    gentle.topK = harsh.topK = 64;
    gentle.thresholds = {0, 0};
    harsh.thresholds = {44, 44};
    const double r_gentle = eval.evaluate(gentle).recallAtK;
    const double r_harsh = eval.evaluate(harsh).recallAtK;
    EXPECT_LT(r_harsh, r_gentle);
    EXPECT_GT(r_harsh, 0.0);
}

TEST(Eval, PplProxyConsistentWithLostMass)
{
    AlgoEvaluator eval(smallWorkload(), 2, 1000, 4, 9, 0);
    EvalConfig cfg;
    cfg.windowSize = 64;
    cfg.topK = 16;
    const EvalResult r = eval.evaluate(cfg);
    EXPECT_NEAR(r.pplIncreasePct,
                100.0 * (std::exp(r.lostMass) - 1.0), 1e-9);
}

} // namespace
} // namespace longsight

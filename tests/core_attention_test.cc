/**
 * @file
 * Tests for the exact attention primitives.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/attention.hh"
#include "tensor/linalg.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

struct Fixture
{
    Fixture() : rng(42), keys(16, 8, rng.gaussianVec(16 * 8)),
                values(16, 8, rng.gaussianVec(16 * 8)),
                q(rng.gaussianVec(8))
    {
    }
    Rng rng;
    Matrix keys;
    Matrix values;
    std::vector<float> q;
    static constexpr float scale = 0.3535534f; // 1/sqrt(8)
};

TEST(Attention, ScoresMatchManualDot)
{
    Fixture f;
    const auto s = attentionScores(f.q.data(), f.keys, 0, 16, f.scale);
    ASSERT_EQ(s.size(), 16u);
    for (size_t i = 0; i < 16; ++i)
        EXPECT_NEAR(s[i],
                    dot(f.q.data(), f.keys.row(i), 8) * f.scale, 1e-5);
}

TEST(Attention, ScoresAtSubset)
{
    Fixture f;
    const std::vector<uint32_t> idx = {3, 7, 11};
    const auto s = attentionScoresAt(f.q.data(), f.keys, idx, f.scale);
    const auto full = attentionScores(f.q.data(), f.keys, 0, 16, f.scale);
    ASSERT_EQ(s.size(), 3u);
    for (size_t j = 0; j < idx.size(); ++j)
        EXPECT_FLOAT_EQ(s[j], full[idx[j]]);
}

TEST(Attention, DenseProbsSumToOne)
{
    Fixture f;
    const auto r = denseAttention(f.q.data(), f.keys, f.values, f.scale);
    const double sum = std::accumulate(r.probs.begin(), r.probs.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-5);
    EXPECT_EQ(r.output.size(), 8u);
}

TEST(Attention, SubsetOverAllIndicesEqualsDense)
{
    Fixture f;
    std::vector<uint32_t> all(16);
    std::iota(all.begin(), all.end(), 0u);
    const auto dense = denseAttention(f.q.data(), f.keys, f.values, f.scale);
    const auto sub =
        subsetAttention(f.q.data(), f.keys, f.values, all, f.scale);
    for (size_t d = 0; d < 8; ++d)
        EXPECT_NEAR(dense.output[d], sub.output[d], 1e-5);
}

TEST(Attention, SingleTokenSubsetReturnsItsValue)
{
    Fixture f;
    const auto r =
        subsetAttention(f.q.data(), f.keys, f.values, {5}, f.scale);
    for (size_t d = 0; d < 8; ++d)
        EXPECT_NEAR(r.output[d], f.values(5, d), 1e-6);
    EXPECT_NEAR(r.probs[0], 1.0f, 1e-6);
}

TEST(Attention, OutputIsConvexCombinationBound)
{
    // Attention output components are bounded by min/max value entries.
    Fixture f;
    const auto r = denseAttention(f.q.data(), f.keys, f.values, f.scale);
    for (size_t d = 0; d < 8; ++d) {
        float lo = f.values(0, d), hi = f.values(0, d);
        for (size_t i = 1; i < 16; ++i) {
            lo = std::min(lo, f.values(i, d));
            hi = std::max(hi, f.values(i, d));
        }
        EXPECT_GE(r.output[d], lo - 1e-5f);
        EXPECT_LE(r.output[d], hi + 1e-5f);
    }
}

TEST(Attention, HighScaleConcentratesOnArgmax)
{
    Fixture f;
    const auto scores = attentionScores(f.q.data(), f.keys, 0, 16, 1.0f);
    size_t best = 0;
    for (size_t i = 1; i < 16; ++i)
        if (scores[i] > scores[best])
            best = i;
    const auto r = denseAttention(f.q.data(), f.keys, f.values, 50.0f);
    EXPECT_GT(r.probs[best], 0.99f);
}

TEST(Attention, WeightedValueSumMatchesManual)
{
    Fixture f;
    const std::vector<uint32_t> idx = {1, 4};
    const std::vector<float> probs = {0.25f, 0.75f};
    const auto out = weightedValueSum(f.values, idx, probs);
    for (size_t d = 0; d < 8; ++d)
        EXPECT_NEAR(out[d],
                    0.25f * f.values(1, d) + 0.75f * f.values(4, d), 1e-6);
}

TEST(Attention, ProbsAlignWithSubsetOrder)
{
    Fixture f;
    const std::vector<uint32_t> idx = {9, 2, 14};
    const auto r =
        subsetAttention(f.q.data(), f.keys, f.values, idx, f.scale);
    ASSERT_EQ(r.probs.size(), 3u);
    // Higher raw score must map to higher probability within subset.
    const auto s = attentionScoresAt(f.q.data(), f.keys, idx, f.scale);
    for (size_t a = 0; a < 3; ++a)
        for (size_t b = 0; b < 3; ++b)
            if (s[a] > s[b])
                EXPECT_GT(r.probs[a], r.probs[b]);
}

} // namespace
} // namespace longsight

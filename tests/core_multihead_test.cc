/**
 * @file
 * Tests for MultiHeadLongSight: GQA group routing, per-head threshold
 * independence, shape checks, and the exactness degeneration across a
 * whole layer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/attention.hh"
#include "core/multi_head.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

constexpr uint32_t kDim = 32;

std::vector<KvCache>
makeCaches(uint32_t heads, size_t n, Rng &rng)
{
    std::vector<KvCache> caches;
    for (uint32_t h = 0; h < heads; ++h) {
        caches.emplace_back(kDim);
        for (size_t i = 0; i < n; ++i)
            caches.back().append(rng.gaussianVec(kDim),
                                 rng.gaussianVec(kDim));
    }
    return caches;
}

TEST(MultiHead, ShapeAndGrouping)
{
    LongSightConfig cfg;
    MultiHeadLongSight mh(cfg, 8, 2, kDim);
    EXPECT_EQ(mh.groupSize(), 4u);
    EXPECT_EQ(mh.numQueryHeads(), 8u);
    EXPECT_EQ(mh.numKvHeads(), 2u);
}

TEST(MultiHead, OutputsMatchPerHeadCalls)
{
    Rng rng(1);
    auto caches = makeCaches(2, 100, rng);
    LongSightConfig cfg;
    cfg.windowSize = 16;
    cfg.sinkTokens = 4;
    cfg.topK = 8;
    MultiHeadLongSight mh(cfg, 8, 2, kDim);

    Matrix queries(8, kDim, rng.gaussianVec(8 * kDim));
    const auto layer = mh.compute(queries, caches);
    ASSERT_EQ(layer.outputs.rows(), 8u);
    ASSERT_EQ(layer.perQuery.size(), 8u);

    for (uint32_t q = 0; q < 8; ++q) {
        const uint32_t kv = q / 4;
        const auto solo =
            mh.attention().computeHead(queries.rowVec(q), caches[kv], kv);
        for (uint32_t d = 0; d < kDim; ++d)
            EXPECT_EQ(layer.outputs(q, d), solo.output[d])
                << "query " << q;
    }
}

TEST(MultiHead, StatsAggregateAcrossQueries)
{
    Rng rng(2);
    auto caches = makeCaches(2, 200, rng);
    LongSightConfig cfg;
    cfg.windowSize = 16;
    cfg.sinkTokens = 0;
    cfg.topK = 8;
    MultiHeadLongSight mh(cfg, 8, 2, kDim);
    Matrix queries(8, kDim, rng.gaussianVec(8 * kDim));
    const auto layer = mh.compute(queries, caches);
    EXPECT_EQ(layer.stats.evaluations, 8u);
    EXPECT_EQ(layer.stats.rawKeys, 8u * (200 - 16));
}

TEST(MultiHead, PerKvHeadThresholdsRouteToGroups)
{
    Rng rng(3);
    auto caches = makeCaches(2, 300, rng);
    LongSightConfig cfg;
    cfg.windowSize = 8;
    cfg.sinkTokens = 0;
    cfg.topK = 1024;
    MultiHeadLongSight mh(cfg, 4, 2, kDim);
    // Head 0 keeps everything; head 1 filters hard.
    mh.attention().setThreshold(0, 0);
    mh.attention().setThreshold(1, kDim);

    Matrix queries(4, kDim, rng.gaussianVec(4 * kDim));
    const auto layer = mh.compute(queries, caches);
    // Queries 0-1 (KV head 0) see all survivors; 2-3 see ~none.
    EXPECT_EQ(layer.perQuery[0].sparseSurvivors, 292u);
    EXPECT_EQ(layer.perQuery[1].sparseSurvivors, 292u);
    EXPECT_LE(layer.perQuery[2].sparseSurvivors, 2u);
    EXPECT_LE(layer.perQuery[3].sparseSurvivors, 2u);
}

TEST(MultiHead, LayerExactnessDegeneration)
{
    Rng rng(4);
    const size_t n = 80;
    auto caches = makeCaches(2, n, rng);
    LongSightConfig cfg;
    cfg.windowSize = 8;
    cfg.sinkTokens = 2;
    cfg.topK = static_cast<uint32_t>(n);
    cfg.defaultThreshold = 0;
    MultiHeadLongSight mh(cfg, 4, 2, kDim);
    Matrix queries(4, kDim, rng.gaussianVec(4 * kDim));
    const auto layer = mh.compute(queries, caches);

    const float scale = 1.0f / std::sqrt(static_cast<float>(kDim));
    for (uint32_t q = 0; q < 4; ++q) {
        const uint32_t kv = q / 2;
        const auto dense = denseAttention(queries.row(q),
                                          caches[kv].keys(),
                                          caches[kv].values(), scale);
        for (uint32_t d = 0; d < kDim; ++d)
            EXPECT_NEAR(layer.outputs(q, d), dense.output[d], 1e-4f);
    }
}

TEST(MultiHead, RejectsNonDivisibleGrouping)
{
    LongSightConfig cfg;
    EXPECT_DEATH({ MultiHeadLongSight mh(cfg, 6, 4, kDim); (void)mh; },
                 "multiple");
}

} // namespace
} // namespace longsight

/**
 * @file
 * Block-sparse prefill attention tests: the blockSignReduce kernel
 * contract across backends, knob=Dense bit-identity with the dense
 * causal prompt pass (including non-multiple block sizes and chunked
 * streams), the forced-dense accuracy contract (sink / window /
 * frontier blocks are never skipped), estimate-only stat equivalence,
 * the DecodePipeline wiring, and the serving-engine cost wrapper.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/prefill_attention.hh"
#include "model/workload.hh"
#include "sim/decode_pipeline.hh"
#include "sim/serving_engine.hh"
#include "tensor/kernels.hh"
#include "util/thread_pool.hh"

namespace longsight {
namespace {

std::vector<KernelBackend>
availableBackends()
{
    std::vector<KernelBackend> out{KernelBackend::Scalar};
    for (auto b : {KernelBackend::Avx2, KernelBackend::Neon})
        if (kernelBackendAvailable(b))
            out.push_back(b);
    return out;
}

class ScopedBackend
{
  public:
    explicit ScopedBackend(KernelBackend b) : prev_(activeKernelBackend())
    {
        setKernelBackend(b);
    }
    ~ScopedBackend() { setKernelBackend(prev_); }

  private:
    KernelBackend prev_;
};

TEST(SignReduce, MajorityAndTieRule)
{
    // dim 3 -> one word, bits 0..2. Rows: 0b101, 0b100, 0b001.
    // Per-bit counts: bit0 = 2/3 (majority -> set), bit1 = 0/3
    // (clear), bit2 = 2/3 (set).
    const std::vector<uint64_t> rows{0b101, 0b100, 0b001};
    for (KernelBackend b : availableBackends()) {
        ScopedBackend sb(b);
        uint64_t out = ~uint64_t{0};
        blockSignReduce(rows.data(), 1, rows.size(), &out);
        EXPECT_EQ(out, uint64_t{0b101}) << "backend " << int(b);

        // Even row count: exactly half set must round UP (the tie
        // lands on the packSigns v >= 0 convention). Rows 0b01, 0b10:
        // both bits are 1-of-2 -> both set.
        const std::vector<uint64_t> tie{0b01, 0b10};
        blockSignReduce(tie.data(), 1, tie.size(), &out);
        EXPECT_EQ(out, uint64_t{0b11}) << "backend " << int(b);

        // A single row reduces to itself.
        blockSignReduce(rows.data(), 1, 1, &out);
        EXPECT_EQ(out, rows[0]) << "backend " << int(b);
    }
}

TEST(SignReduce, BackendsBitIdentical)
{
    // 200 rows x 3 words with a mixed bit pattern; every backend must
    // produce the scalar oracle's words exactly, and padding bits
    // (zero in every row) must stay zero.
    const size_t wpr = 3, rows = 200;
    std::vector<uint64_t> signs(rows * wpr);
    uint64_t x = 0x9e3779b97f4a7c15ull;
    for (auto &w : signs) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        w = x;
    }
    for (auto &w : signs)
        w &= ~(0xffull << 56); // simulated padding in the top byte
    std::vector<uint64_t> ref(wpr, 0);
    {
        ScopedBackend sb(KernelBackend::Scalar);
        blockSignReduce(signs.data(), wpr, rows, ref.data());
    }
    EXPECT_EQ(ref[wpr - 1] & (0xffull << 56), 0u);
    for (KernelBackend b : availableBackends()) {
        ScopedBackend sb(b);
        std::vector<uint64_t> got(wpr, ~uint64_t{0});
        blockSignReduce(signs.data(), wpr, rows, got.data());
        EXPECT_EQ(got, ref) << "backend " << int(b);
    }
}

TEST(SignReduce, SignMatrixFlavourMatchesRaw)
{
    const size_t dim = 70;
    SignMatrix m(dim);
    m.resizeRows(9);
    std::vector<float> v(dim);
    for (size_t r = 0; r < 9; ++r) {
        for (size_t d = 0; d < dim; ++d)
            v[d] = ((r * 31 + d * 7) % 5) - 2.0f;
        packSigns(v.data(), dim, m.data() + r * m.wordsPerRow());
    }
    std::vector<uint64_t> a(m.wordsPerRow()), b(m.wordsPerRow());
    blockSignReduce(m, 2, 8, a.data());
    blockSignReduce(m.data() + 2 * m.wordsPerRow(), m.wordsPerRow(), 6,
                    b.data());
    EXPECT_EQ(a, b);
}

/** Self-query prompt stream from the synthetic workload. */
struct Stream
{
    Matrix keys, values;
    float scale;
};

Stream
makeStream(uint32_t dim, size_t n, uint64_t seed)
{
    HeadWorkload wl(WorkloadConfig::pgLike(dim), Rng(seed));
    wl.generate(n);
    return Stream{wl.keys(), wl.values(), wl.attentionScale()};
}

PrefillSparsityConfig
smallKnob(size_t block_tokens)
{
    PrefillSparsityConfig cfg;
    cfg.blockTokens = block_tokens;
    cfg.sinkTokens = 16;
    cfg.windowTokens = 128;
    return cfg;
}

TEST(PrefillAttention, DenseKnobBitIdentical)
{
    const uint32_t dim = 64;
    const size_t n = 517; // not a multiple of any tested block size
    const Stream s = makeStream(dim, n, 5);
    Matrix ref(n, dim);
    densePrefillReference(s.keys, s.keys, s.values, s.scale, n, ref);

    for (size_t B : {size_t{64}, size_t{100}, size_t{128}, n + 64}) {
        PrefillSparsityConfig cfg = smallKnob(B);
        cfg.mode = PrefillSparsityMode::Dense;
        BlockSparsePrefill pass(dim, cfg);
        Matrix out(n, dim);
        pass.advance(s.keys, s.keys, s.values, s.scale, n, true, out);
        EXPECT_EQ(pass.processedTokens(), n);
        EXPECT_EQ(std::memcmp(ref.data(), out.data(),
                              n * dim * sizeof(float)),
                  0)
            << "block size " << B;
        // Dense knob skips nothing and attends the full prefix.
        EXPECT_EQ(pass.stats().attendedTokens, pass.stats().denseTokens);
        EXPECT_EQ(pass.stats().candidateBlocks, 0u);
    }
}

TEST(PrefillAttention, ChunkedMatchesMonolithic)
{
    const uint32_t dim = 64;
    const size_t n = 611;
    const Stream s = makeStream(dim, n, 9);
    for (auto mode : {PrefillSparsityMode::Dense,
                      PrefillSparsityMode::Threshold,
                      PrefillSparsityMode::TopFraction}) {
        PrefillSparsityConfig cfg = smallKnob(64);
        cfg.mode = mode;
        cfg.threshold = static_cast<int>(dim / 2 + 4);
        cfg.keepFraction = 0.3;

        BlockSparsePrefill mono(dim, cfg);
        Matrix a(n, dim);
        mono.advance(s.keys, s.keys, s.values, s.scale, n, true, a);

        BlockSparsePrefill chunked(dim, cfg);
        Matrix b(n, dim);
        // Irregular chunks; the partial tail only lands on flush.
        for (size_t upTo : {size_t{1}, size_t{63}, size_t{64},
                            size_t{200}, size_t{201}, size_t{512}, n}) {
            chunked.advance(s.keys, s.keys, s.values, s.scale, upTo,
                            upTo == n, b);
            if (upTo < n)
                EXPECT_EQ(chunked.processedTokens(),
                          upTo / cfg.blockTokens * cfg.blockTokens);
        }
        EXPECT_EQ(std::memcmp(a.data(), b.data(),
                              n * dim * sizeof(float)),
                  0)
            << "mode " << int(mode);
        EXPECT_EQ(mono.stats().attendedTokens,
                  chunked.stats().attendedTokens);
        EXPECT_EQ(mono.stats().keptBlocks, chunked.stats().keptBlocks);
    }
}

TEST(PrefillAttention, ForcedBlocksNeverSkipped)
{
    const uint32_t dim = 64;
    const size_t n = 700;
    const Stream s = makeStream(dim, n, 13);
    PrefillSparsityConfig cfg = smallKnob(64);
    // Impossible threshold: the knob keeps nothing, so every attended
    // token must come from the forced sink/window/frontier regions.
    cfg.threshold = static_cast<int>(dim) + 1;
    cfg.recordDecisions = true;
    BlockSparsePrefill pass(dim, cfg);
    Matrix out(n, dim);
    pass.advance(s.keys, s.keys, s.values, s.scale, n, true, out);
    EXPECT_EQ(pass.stats().keptBlocks, 0u);

    const size_t B = cfg.blockTokens;
    const size_t sink_blocks = (cfg.sinkTokens + B - 1) / B;
    uint64_t forced_pairs = 0;
    ASSERT_EQ(pass.decisions().size(), (n + B - 1) / B);
    for (const PrefillBlockDecision &d : pass.decisions()) {
        // Window anchoring: the block's first query sees at least
        // windowTokens of dense local context.
        const size_t expect_ws = d.qBegin < cfg.windowTokens
            ? 0
            : (d.qBegin - cfg.windowTokens) / B;
        EXPECT_EQ(d.windowStart, expect_ws);
        EXPECT_EQ(d.sinkBlocks,
                  std::min<size_t>(sink_blocks, d.windowStart));
        EXPECT_TRUE(d.keptBlocks.empty());
        // Count the forced pairs this decision implies: query i
        // attends token t iff t <= i and t's block is a sink or at or
        // past the window start.
        for (size_t i = d.qBegin; i < d.qEnd; ++i)
            for (size_t t = 0; t <= i; ++t) {
                const size_t tb = t / B;
                if (tb < d.sinkBlocks || tb >= d.windowStart)
                    ++forced_pairs;
            }
    }
    // The real pass attended exactly the forced set — nothing was
    // dropped from it, and nothing beyond it was added.
    EXPECT_EQ(pass.stats().attendedTokens, forced_pairs);
    // Sanity: some skipping actually happened (the contract is not
    // vacuous at this context/window).
    EXPECT_LT(pass.stats().attendedTokens, pass.stats().denseTokens);
}

TEST(PrefillAttention, EstimateOnlyMatchesRealStats)
{
    const uint32_t dim = 64;
    const size_t n = 640;
    const Stream s = makeStream(dim, n, 21);
    PrefillSparsityConfig cfg = smallKnob(64);
    cfg.threshold = static_cast<int>(dim / 2);
    cfg.recordDecisions = true;

    BlockSparsePrefill real(dim, cfg);
    Matrix out(n, dim);
    real.advance(s.keys, s.keys, s.values, s.scale, n, true, out);

    cfg.estimateOnly = true;
    BlockSparsePrefill est(dim, cfg);
    Matrix none(0, dim);
    est.advance(s.keys, s.keys, s.values, s.scale, n, true, none);

    EXPECT_EQ(real.stats().attendedTokens, est.stats().attendedTokens);
    EXPECT_EQ(real.stats().keptBlocks, est.stats().keptBlocks);
    EXPECT_EQ(real.stats().candidateBlocks, est.stats().candidateBlocks);
    ASSERT_EQ(real.decisions().size(), est.decisions().size());
    for (size_t i = 0; i < real.decisions().size(); ++i)
        EXPECT_EQ(real.decisions()[i].keptBlocks,
                  est.decisions()[i].keptBlocks);
}

TEST(PrefillAttention, ThreadCountInvariant)
{
    const uint32_t dim = 64;
    const size_t n = 523;
    const Stream s = makeStream(dim, n, 33);
    PrefillSparsityConfig cfg = smallKnob(64);
    cfg.threshold = static_cast<int>(dim / 2 + 2);
    Matrix a(n, dim), b(n, dim);
    ThreadPool::configureGlobal(1);
    {
        BlockSparsePrefill pass(dim, cfg);
        pass.advance(s.keys, s.keys, s.values, s.scale, n, true, a);
    }
    ThreadPool::configureGlobal(4);
    {
        BlockSparsePrefill pass(dim, cfg);
        pass.advance(s.keys, s.keys, s.values, s.scale, n, true, b);
    }
    ThreadPool::configureGlobal(0);
    EXPECT_EQ(
        std::memcmp(a.data(), b.data(), n * dim * sizeof(float)), 0);
}

PipelineConfig
pipelineConfig(bool sparse)
{
    PipelineConfig cfg;
    cfg.numLayers = 2;
    cfg.numQueryHeads = 4;
    cfg.numKvHeads = 2;
    cfg.headDim = 64;
    cfg.hybrid.windowSize = 128;
    cfg.hybrid.sinkTokens = 8;
    cfg.hybrid.topK = 64;
    cfg.seed = 3;
    cfg.prefillAttention = true;
    cfg.prefillSparsity = PrefillSparsityConfig{};
    cfg.prefillSparsity.blockTokens = 64;
    cfg.prefillSparsity.windowTokens = 128;
    cfg.prefillSparsity.mode = sparse ? PrefillSparsityMode::Threshold
                                      : PrefillSparsityMode::Dense;
    cfg.prefillSparsity.threshold = 36;
    return cfg;
}

DrexConfig
drexFor(const PipelineConfig &cfg)
{
    DrexConfig d;
    d.numKvHeads = cfg.numKvHeads;
    d.numLayers = cfg.numLayers;
    d.headDim = cfg.headDim;
    return d;
}

TEST(PipelinePrefill, ChunkedMatchesMonolithicAndDecodeUnperturbed)
{
    const size_t n = 421;
    const PipelineConfig cfg = pipelineConfig(true);

    DrexDevice devA(drexFor(cfg));
    DecodePipeline mono(cfg, devA, 0);
    mono.prefill(n);
    mono.flushPrefillAttention();

    DrexDevice devB(drexFor(cfg));
    DecodePipeline chunked(cfg, devB, 0);
    for (size_t done = 0; done < n;) {
        const size_t step = std::min<size_t>(97, n - done);
        chunked.prefillChunk(step);
        done += step;
    }
    // No explicit flush: the first decode step must flush the tail.
    const PipelineStepResult r1 = chunked.decodeStep();
    const PipelineStepResult r2 = mono.decodeStep();
    EXPECT_EQ(r1.deviceMatchedSoftware, r2.deviceMatchedSoftware);
    EXPECT_EQ(r1.minRetainedMass, r2.minRetainedMass);

    for (uint32_t l = 0; l < cfg.numLayers; ++l)
        for (uint32_t h = 0; h < cfg.numKvHeads; ++h) {
            const Matrix &a = mono.prefillAttentionOutput(l, h);
            const Matrix &b = chunked.prefillAttentionOutput(l, h);
            ASSERT_EQ(a.rows(), n);
            ASSERT_EQ(b.rows(), n);
            EXPECT_EQ(std::memcmp(a.data(), b.data(),
                                  n * cfg.headDim * sizeof(float)),
                      0)
                << "layer " << l << " head " << h;
            EXPECT_EQ(
                mono.prefillAttentionHead(l, h).processedTokens(), n);
        }
    const PrefillStats st = mono.prefillAttentionStats();
    EXPECT_EQ(st.qBlocks,
              uint64_t{cfg.numLayers} * cfg.numKvHeads *
                  ((n + 63) / 64));
    EXPECT_GT(st.denseTokens, st.attendedTokens);
}

TEST(PipelinePrefill, SparsePassDoesNotPerturbDecode)
{
    // The prompt pass rides along read-only: decode results with it
    // enabled (any knob) are bit-identical to a pipeline without it.
    const size_t n = 300;
    PipelineConfig off = pipelineConfig(true);
    off.prefillAttention = false;
    PipelineConfig on = pipelineConfig(true);

    DrexDevice devA(drexFor(off)), devB(drexFor(on));
    DecodePipeline base(off, devA, 0), sparse(on, devB, 0);
    base.prefill(n);
    sparse.prefill(n);
    for (int i = 0; i < 3; ++i) {
        const PipelineStepResult a = base.decodeStep();
        const PipelineStepResult b = sparse.decodeStep();
        EXPECT_EQ(a.offloadsIssued, b.offloadsIssued);
        EXPECT_EQ(a.tokensFlushed, b.tokensFlushed);
        EXPECT_EQ(a.minRetainedMass, b.minRetainedMass);
        EXPECT_EQ(a.deviceMatchedSoftware, b.deviceMatchedSoftware);
    }
    // Decode-time context growth never reopens the frozen prompt pass.
    EXPECT_EQ(sparse.prefillAttentionHead(0, 0).processedTokens(), n);
}

TEST(PipelinePrefill, PerHeadThresholdKnob)
{
    const size_t n = 256;
    PipelineConfig cfg = pipelineConfig(true);
    cfg.prefillSparsity.windowTokens = 64;
    cfg.prefillHeadThresholds = {20, 60}; // loose head 0, tight head 1
    DrexDevice dev(drexFor(cfg));
    DecodePipeline pipe(cfg, dev, 0);
    pipe.prefill(n);
    pipe.flushPrefillAttention();
    const auto &loose = pipe.prefillAttentionHead(0, 0);
    const auto &tight = pipe.prefillAttentionHead(0, 1);
    EXPECT_EQ(loose.config().threshold, 20);
    EXPECT_EQ(tight.config().threshold, 60);
    // A looser threshold keeps at least as many candidate blocks.
    EXPECT_GE(loose.stats().keptBlocks, tight.stats().keptBlocks);
}

TEST(ServingCosts, SparsePrefillWrapper)
{
    auto dense = [](uint64_t chunk, uint64_t done) {
        return Tick((chunk + done) * 100);
    };
    // Degenerate parameters reproduce the dense callback exactly.
    SparsePrefillCostParams ident;
    auto same = sparsePrefillChunkTime(dense, ident);
    EXPECT_EQ(same(2048, 4096), dense(2048, 4096));

    // 60% attention share at 25% attended + 5% estimation overhead:
    // scale = 0.4 + 0.6 * 0.30 = 0.58.
    SparsePrefillCostParams p;
    p.attentionShare = 0.6;
    p.attendedFraction = 0.25;
    p.estimationOverhead = 0.05;
    auto sparse = sparsePrefillChunkTime(dense, p);
    EXPECT_EQ(sparse(1000, 0),
              static_cast<Tick>(double(dense(1000, 0)) * 0.58 + 0.5));
}

} // namespace
} // namespace longsight

/**
 * @file
 * Randomized differential test: for many random configurations
 * (context length, threshold, k, query-group size, ITQ on/off,
 * quantized scoring on/off), the DReX device's functional offload
 * must agree with the independent software reference (filter ->
 * score -> rank), and its timing must satisfy basic sanity
 * invariants. This is the broad-spectrum check behind the targeted
 * equivalence tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/attention.hh"
#include "core/itq.hh"
#include "core/scf.hh"
#include "core/topk.hh"
#include "drex/drex_device.hh"
#include "tensor/linalg.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

class DrexFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DrexFuzz, DeviceAgreesWithSoftwareReference)
{
    Rng rng(GetParam());
    const uint32_t dim = rng.uniform() < 0.5 ? 64 : 128;
    const size_t n = 100 + rng.below(2500);
    const int threshold = static_cast<int>(rng.below(dim * 3 / 4));
    const uint32_t k = 1 + static_cast<uint32_t>(rng.below(200));
    const auto num_queries = 1 + static_cast<uint32_t>(rng.below(4));
    const bool use_itq = rng.uniform() < 0.4;
    const bool quantized = rng.uniform() < 0.3;
    const uint64_t begin = rng.below(n / 2);
    const uint64_t end = begin + 1 + rng.below(n - begin);

    DrexConfig dc;
    dc.numKvHeads = 1;
    dc.numLayers = 1;
    dc.headDim = dim;
    DrexDevice dev(dc);
    Matrix keys(n, dim, rng.gaussianVec(n * dim));
    Matrix values(n, dim, rng.gaussianVec(n * dim));
    KvCache &cache = dev.writeContext(0, 0, 0, keys, values);
    if (use_itq)
        cache.setItqRotation(trainItqRotation(keys, 5, rng));
    if (quantized)
        cache.enableKeyQuantization();

    Matrix queries(num_queries, dim, rng.gaussianVec(num_queries * dim));
    Matrix filter_queries(num_queries, dim);
    for (uint32_t q = 0; q < num_queries; ++q) {
        const auto qf = cache.toFilterSpace(queries.rowVec(q));
        filter_queries.setRow(q, qf.data());
    }

    OffloadSpec spec;
    spec.sparseBegin = begin;
    spec.sparseEnd = end;
    spec.numQueries = num_queries;
    spec.k = k;
    spec.threshold = threshold;
    spec.cache = &cache;
    spec.queries = &queries;
    spec.filterQueries = &filter_queries;
    spec.quantizedScoring = quantized;

    const OffloadResult r = dev.nma(0).process(0, spec);

    // Timing sanity.
    EXPECT_EQ(r.timing.total(), r.doneTick - r.startTick);
    EXPECT_EQ(r.regionTokens, end - begin);
    EXPECT_LE(r.survivors, r.regionTokens);

    // Functional agreement per query.
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
    ASSERT_EQ(r.topk.size(), num_queries);
    for (uint32_t q = 0; q < num_queries; ++q) {
        const SignBits qs(filter_queries.row(q), dim);
        std::vector<uint32_t> survivors;
        // Scalar reference on purpose: extract() + SignBits keeps this
        // check independent of the batch kernels the device now uses.
        const SignMatrix &signs = cache.filterSignsAll();
        for (uint64_t i = begin; i < end; ++i)
            if (qs.concordance(signs.extract(i)) >= threshold)
                survivors.push_back(static_cast<uint32_t>(i));
        std::vector<float> scores(survivors.size());
        for (size_t j = 0; j < survivors.size(); ++j) {
            scores[j] = quantized
                ? cache.scoreKey(queries.row(q), survivors[j]) * scale
                : dot(queries.row(q), cache.keys().row(survivors[j]),
                      dim) * scale;
        }
        const auto expect = topkSelect(scores, survivors, k);
        ASSERT_EQ(r.topk[q].size(), expect.size())
            << "seed " << GetParam() << " query " << q;
        for (size_t i = 0; i < expect.size(); ++i)
            EXPECT_EQ(r.topk[q][i].index, expect[i].index)
                << "seed " << GetParam() << " query " << q << " rank "
                << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DrexFuzz,
                         ::testing::Range<uint64_t>(1, 25));

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for top-k selection: the one-shot selector, the streaming
 * bounded accumulator (NMA behaviour), and their equivalence.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/topk.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

std::vector<ScoredIndex>
referenceTopk(std::vector<float> scores, std::vector<uint32_t> indices,
              size_t k)
{
    std::vector<ScoredIndex> all(scores.size());
    for (size_t i = 0; i < scores.size(); ++i)
        all[i] = {scores[i], indices[i]};
    std::sort(all.begin(), all.end(),
              [](const ScoredIndex &a, const ScoredIndex &b) {
                  return a.betterThan(b);
              });
    all.resize(std::min(k, all.size()));
    return all;
}

TEST(TopkSelect, MatchesSortReference)
{
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 1 + rng.below(500);
        std::vector<float> scores(n);
        std::vector<uint32_t> idx(n);
        for (size_t i = 0; i < n; ++i) {
            scores[i] = static_cast<float>(rng.gaussian());
            idx[i] = static_cast<uint32_t>(i);
        }
        const size_t k = 1 + rng.below(n + 10);
        const auto got = topkSelect(scores, idx, k);
        const auto want = referenceTopk(scores, idx, k);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].index, want[i].index);
            EXPECT_EQ(got[i].score, want[i].score);
        }
    }
}

TEST(TopkSelect, KLargerThanInputReturnsAllSorted)
{
    const std::vector<float> scores = {1.0f, 3.0f, 2.0f};
    const std::vector<uint32_t> idx = {10, 20, 30};
    const auto got = topkSelect(scores, idx, 100);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].index, 20u);
    EXPECT_EQ(got[1].index, 30u);
    EXPECT_EQ(got[2].index, 10u);
}

TEST(TopkSelect, TiesBreakTowardLowerIndex)
{
    const std::vector<float> scores = {5.0f, 5.0f, 5.0f, 1.0f};
    const std::vector<uint32_t> idx = {30, 10, 20, 5};
    const auto got = topkSelect(scores, idx, 2);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].index, 10u);
    EXPECT_EQ(got[1].index, 20u);
}

TEST(TopkSelect, EmptyInput)
{
    const auto got = topkSelect({}, {}, 5);
    EXPECT_TRUE(got.empty());
}

TEST(TopK, StreamingMatchesOneShot)
{
    Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 1 + rng.below(800);
        const size_t k = 1 + rng.below(64);
        std::vector<float> scores(n);
        std::vector<uint32_t> idx(n);
        TopK acc(k);
        for (size_t i = 0; i < n; ++i) {
            scores[i] = static_cast<float>(rng.gaussian());
            idx[i] = static_cast<uint32_t>(i * 3);
            acc.push(scores[i], idx[i]);
        }
        const auto want = topkSelect(scores, idx, k);
        const auto got = acc.sortedResults();
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i].index, want[i].index) << "trial " << trial;
    }
}

TEST(TopK, CapacityBoundsSize)
{
    TopK acc(4);
    for (uint32_t i = 0; i < 100; ++i)
        acc.push(static_cast<float>(i), i);
    EXPECT_EQ(acc.size(), 4u);
    const auto res = acc.sortedResults();
    EXPECT_EQ(res[0].index, 99u);
    EXPECT_EQ(res[3].index, 96u);
}

TEST(TopK, WorstRetainedIsEvictionBoundary)
{
    TopK acc(3);
    acc.push(5.0f, 0);
    acc.push(7.0f, 1);
    acc.push(6.0f, 2);
    EXPECT_FLOAT_EQ(acc.worstRetained(), 5.0f);
    acc.push(8.0f, 3); // evicts 5
    EXPECT_FLOAT_EQ(acc.worstRetained(), 6.0f);
    acc.push(1.0f, 4); // ignored
    EXPECT_FLOAT_EQ(acc.worstRetained(), 6.0f);
}

TEST(TopK, MergeEqualsCombinedStream)
{
    Rng rng(3);
    const size_t k = 16;
    TopK a(k), b(k), combined(k);
    for (int i = 0; i < 500; ++i) {
        const float s = static_cast<float>(rng.gaussian());
        const auto idx = static_cast<uint32_t>(i);
        (i % 2 ? a : b).push(s, idx);
        combined.push(s, idx);
    }
    a.merge(b);
    const auto got = a.sortedResults();
    const auto want = combined.sortedResults();
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].index, want[i].index);
}

TEST(TopK, SelfMergeIsANoOp)
{
    // Regression: merge(*this) used to push into heap_ while
    // range-iterating it, invalidating the iterator on reallocation.
    Rng rng(7);
    TopK acc(8);
    for (int i = 0; i < 64; ++i)
        acc.push(static_cast<float>(rng.gaussian()),
                 static_cast<uint32_t>(i));
    const auto before = acc.sortedResults();
    acc.merge(acc);
    const auto after = acc.sortedResults();
    ASSERT_EQ(after.size(), before.size());
    for (size_t i = 0; i < after.size(); ++i) {
        EXPECT_EQ(after[i].index, before[i].index);
        EXPECT_FLOAT_EQ(after[i].score, before[i].score);
    }
}

TEST(TopK, SelfMergeWhileFillingKeepsContents)
{
    TopK acc(16);
    acc.push(1.0f, 1);
    acc.push(2.0f, 2);
    acc.merge(acc); // below capacity: must not duplicate entries
    const auto res = acc.sortedResults();
    ASSERT_EQ(res.size(), 2u);
    EXPECT_EQ(res[0].index, 2u);
    EXPECT_EQ(res[1].index, 1u);
}

TEST(TopK, DuplicateScoresKeepDeterministicWinners)
{
    // All-equal scores: the k lowest indices must win, regardless of
    // arrival order.
    TopK acc(3);
    for (uint32_t idx : {50u, 10u, 40u, 20u, 30u})
        acc.push(1.0f, idx);
    const auto res = acc.sortedResults();
    ASSERT_EQ(res.size(), 3u);
    EXPECT_EQ(res[0].index, 10u);
    EXPECT_EQ(res[1].index, 20u);
    EXPECT_EQ(res[2].index, 30u);
}

TEST(TopK, DrainSortedMatchesSortedResults)
{
    Rng rng(13);
    for (size_t k : {size_t{1}, size_t{8}, size_t{100}}) {
        TopK acc(k);
        const size_t n = 1 + rng.below(300);
        for (size_t i = 0; i < n; ++i)
            acc.push(static_cast<float>(rng.gaussian()),
                     static_cast<uint32_t>(i));
        const auto want = acc.sortedResults();
        std::vector<ScoredIndex> got(acc.size());
        const size_t m = acc.drainSorted(got.data());
        ASSERT_EQ(m, want.size());
        for (size_t i = 0; i < m; ++i) {
            EXPECT_EQ(got[i].index, want[i].index);
            EXPECT_EQ(got[i].score, want[i].score);
        }
        // Drained: empty but immediately reusable.
        EXPECT_EQ(acc.size(), 0u);
        acc.push(1.0f, 7);
        ScoredIndex one;
        EXPECT_EQ(acc.drainSorted(&one), 1u);
        EXPECT_EQ(one.index, 7u);
    }
}

TEST(TopK, DrainSortedBreaksTiesByIndex)
{
    TopK acc(4);
    for (uint32_t idx : {9u, 3u, 12u, 1u, 6u})
        acc.push(2.5f, idx);
    ScoredIndex out[4];
    ASSERT_EQ(acc.drainSorted(out), 4u);
    EXPECT_EQ(out[0].index, 1u);
    EXPECT_EQ(out[1].index, 3u);
    EXPECT_EQ(out[2].index, 6u);
    EXPECT_EQ(out[3].index, 9u);
}

TEST(TopK, DrainSortedEmptyIsZero)
{
    TopK acc(5);
    EXPECT_EQ(acc.drainSorted(nullptr), 0u);
}

} // namespace
} // namespace longsight

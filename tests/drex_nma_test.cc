/**
 * @file
 * Tests for the Near-Memory Accelerator: functional equivalence with
 * the software SCF -> score -> top-k reference (bit-exact), epoch
 * accounting, timing monotonicity, and timing-only mode.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/attention.hh"
#include "core/hybrid_attention.hh"
#include "core/scf.hh"
#include "core/topk.hh"
#include "drex/drex_device.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

DrexConfig
smallConfig(uint32_t head_dim)
{
    DrexConfig cfg;
    cfg.numKvHeads = 2;
    cfg.numLayers = 2;
    cfg.headDim = head_dim;
    return cfg;
}

/** Build a device + cache with n random tokens for one head. */
struct NmaFixture
{
    NmaFixture(size_t n, uint32_t dim, uint64_t seed)
        : rng(seed), device(smallConfig(dim))
    {
        Matrix keys(n, dim, rng.gaussianVec(n * dim));
        Matrix values(n, dim, rng.gaussianVec(n * dim));
        cache = &device.writeContext(0, 0, 0, keys, values);
        query = Matrix(1, dim, rng.gaussianVec(dim));
    }

    OffloadSpec spec(uint64_t begin, uint64_t end, uint32_t k, int th)
    {
        OffloadSpec s;
        s.sparseBegin = begin;
        s.sparseEnd = end;
        s.numQueries = 1;
        s.k = k;
        s.threshold = th;
        s.cache = cache;
        s.queries = &query;
        s.filterQueries = &query;
        return s;
    }

    Rng rng;
    DrexDevice device;
    KvCache *cache;
    Matrix query;
};

class NmaEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, int, uint32_t>>
{
};

TEST_P(NmaEquivalence, MatchesSoftwareReference)
{
    const auto [n, threshold, k] = GetParam();
    const uint32_t dim = 64;
    NmaFixture f(n, dim, 1000 + n + threshold + k);

    auto spec = f.spec(0, n, k, threshold);
    const OffloadResult r = f.device.nma(0).process(0, spec);

    // Software reference: SCF filter -> score -> top-k.
    const auto survivors = scfFilterRows(
        f.query.row(0), f.cache->keys(), 0, n, threshold);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
    const auto scores = attentionScoresAt(f.query.row(0), f.cache->keys(),
                                          survivors, scale);
    const auto expect = topkSelect(scores, survivors, k);

    EXPECT_EQ(r.survivors, survivors.size());
    ASSERT_EQ(r.topk.size(), 1u);
    ASSERT_EQ(r.topk[0].size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(r.topk[0][i].index, expect[i].index) << "rank " << i;
        EXPECT_FLOAT_EQ(r.topk[0][i].score, expect[i].score);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, NmaEquivalence,
    ::testing::Values(std::make_tuple(size_t{64}, 0, 8u),
                      std::make_tuple(size_t{200}, 32, 16u),
                      std::make_tuple(size_t{500}, 36, 64u),
                      std::make_tuple(size_t{1500}, 30, 128u),
                      std::make_tuple(size_t{3000}, 40, 32u),
                      std::make_tuple(size_t{128}, 64, 8u)));

TEST(Nma, MultiQueryGroupRanksPerQuery)
{
    const uint32_t dim = 32;
    const size_t n = 400;
    NmaFixture f(n, dim, 7);
    Matrix queries(4, dim, f.rng.gaussianVec(4 * dim));

    OffloadSpec spec = f.spec(0, n, 16, 14);
    spec.numQueries = 4;
    spec.queries = &queries;
    spec.filterQueries = &queries;
    const OffloadResult r = f.device.nma(0).process(0, spec);
    ASSERT_EQ(r.topk.size(), 4u);

    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
    for (uint32_t q = 0; q < 4; ++q) {
        const auto survivors = scfFilterRows(
            queries.row(q), f.cache->keys(), 0, n, 14);
        const auto scores = attentionScoresAt(
            queries.row(q), f.cache->keys(), survivors, scale);
        const auto expect = topkSelect(scores, survivors, 16);
        ASSERT_EQ(r.topk[q].size(), expect.size()) << "query " << q;
        for (size_t i = 0; i < expect.size(); ++i)
            EXPECT_EQ(r.topk[q][i].index, expect[i].index)
                << "query " << q << " rank " << i;
    }
}

TEST(Nma, ValueTokensAreUnionOfSelections)
{
    const uint32_t dim = 32;
    NmaFixture f(300, dim, 8);
    Matrix queries(2, dim, f.rng.gaussianVec(2 * dim));
    OffloadSpec spec = f.spec(0, 300, 8, 0);
    spec.numQueries = 2;
    spec.queries = &queries;
    spec.filterQueries = &queries;
    const OffloadResult r = f.device.nma(0).process(0, spec);

    std::set<uint32_t> expect;
    for (const auto &list : r.topk)
        for (const auto &e : list)
            expect.insert(e.index);
    EXPECT_EQ(std::set<uint32_t>(r.valueTokens.begin(),
                                 r.valueTokens.end()),
              expect);
}

TEST(Nma, SubRangeRespected)
{
    NmaFixture f(600, 64, 9);
    auto spec = f.spec(100, 500, 1024, 0);
    const OffloadResult r = f.device.nma(0).process(0, spec);
    EXPECT_EQ(r.regionTokens, 400u);
    EXPECT_EQ(r.survivors, 400u); // threshold 0
    for (const auto &e : r.topk[0]) {
        EXPECT_GE(e.index, 100u);
        EXPECT_LT(e.index, 500u);
    }
}

TEST(Nma, EpochCountMatchesRegionSize)
{
    // One epoch covers banks x 1024 tokens (full device geometry).
    NmaFixture f(64, 64, 10);
    auto spec = f.spec(0, 64, 8, 0);
    const OffloadResult r = f.device.nma(0).process(0, spec);
    EXPECT_EQ(r.epochs, 1u);
}

TEST(Nma, TimingGrowsWithRegion)
{
    DrexConfig cfg = smallConfig(64);
    DrexDevice d1(cfg), d2(cfg);
    OffloadSpec small;
    small.sparseEnd = 10'000;
    small.survivorFraction = 0.1;
    OffloadSpec large = small;
    large.sparseEnd = 100'000;
    const auto r1 = d1.nma(0).process(0, small);
    const auto r2 = d2.nma(0).process(0, large);
    EXPECT_GT(r2.doneTick - r2.startTick, 4 * (r1.doneTick - r1.startTick));
}

TEST(Nma, TimingOnlyModeCountsModelledSurvivors)
{
    DrexConfig cfg = smallConfig(64);
    DrexDevice dev(cfg);
    OffloadSpec spec;
    spec.sparseEnd = 50'000;
    spec.survivorFraction = 0.2;
    spec.k = 1024;
    const auto r = dev.nma(0).process(0, spec);
    EXPECT_NEAR(static_cast<double>(r.survivors), 10'000.0, 10.0);
    EXPECT_TRUE(r.topk.empty()); // no functional output
    EXPECT_GT(r.valueBytes, 0u);
}

TEST(Nma, BusyUntilSerializesOffloads)
{
    DrexConfig cfg = smallConfig(64);
    DrexDevice dev(cfg);
    OffloadSpec spec;
    spec.sparseEnd = 20'000;
    const auto r1 = dev.nma(0).process(0, spec);
    const auto r2 = dev.nma(0).process(0, spec);
    EXPECT_GE(r2.startTick, r1.doneTick);
}

TEST(Nma, BreakdownSumsToServiceTime)
{
    DrexConfig cfg = smallConfig(128);
    DrexDevice dev(cfg);
    OffloadSpec spec;
    spec.sparseEnd = 300'000; // multi-epoch
    spec.k = 1024;
    const auto r = dev.nma(0).process(0, spec);
    EXPECT_GT(r.epochs, 1u);
    EXPECT_EQ(r.timing.total(), r.doneTick - r.startTick);
}

TEST(Nma, HardwareTopKCapEnforced)
{
    DrexConfig cfg = smallConfig(64);
    cfg.nma.maxTopK = 16;
    DrexDevice dev(cfg);
    Rng rng(11);
    Matrix keys(200, 64, rng.gaussianVec(200 * 64));
    Matrix values(200, 64, rng.gaussianVec(200 * 64));
    KvCache &cache = dev.writeContext(0, 0, 0, keys, values);
    Matrix q(1, 64, rng.gaussianVec(64));
    OffloadSpec spec;
    spec.sparseEnd = 200;
    spec.k = 1024; // request more than hardware supports
    spec.cache = &cache;
    spec.queries = &q;
    spec.filterQueries = &q;
    const auto r = dev.nma(0).process(0, spec);
    EXPECT_EQ(r.topk[0].size(), 16u);
}

} // namespace
} // namespace longsight

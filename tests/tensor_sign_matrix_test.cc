/**
 * @file
 * SignMatrix unit tests: packing semantics against SignBits (the
 * scalar reference), append/extract round-trips, alignment of the
 * backing store, and the pack() batch constructor.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

std::vector<float>
randomVec(Rng &rng, size_t dim)
{
    return rng.gaussianVec(dim);
}

TEST(SignMatrix, EmptyMatrix)
{
    SignMatrix m(64);
    EXPECT_EQ(m.dim(), 64u);
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.wordsPerRow(), 1u);
}

TEST(SignMatrix, WordsPerRowRoundsUp)
{
    EXPECT_EQ(SignMatrix(1).wordsPerRow(), 1u);
    EXPECT_EQ(SignMatrix(63).wordsPerRow(), 1u);
    EXPECT_EQ(SignMatrix(64).wordsPerRow(), 1u);
    EXPECT_EQ(SignMatrix(65).wordsPerRow(), 2u);
    EXPECT_EQ(SignMatrix(128).wordsPerRow(), 2u);
    EXPECT_EQ(SignMatrix(129).wordsPerRow(), 3u);
}

TEST(SignMatrix, AppendRowMatchesSignBits)
{
    Rng rng(11);
    for (size_t dim : {7u, 37u, 64u, 100u, 128u, 200u}) {
        SignMatrix m(dim);
        std::vector<std::vector<float>> data;
        for (int r = 0; r < 33; ++r) {
            data.push_back(randomVec(rng, dim));
            m.appendRow(data.back().data());
        }
        ASSERT_EQ(m.rows(), data.size());
        for (size_t r = 0; r < data.size(); ++r) {
            const SignBits ref(data[r].data(), dim);
            const SignBits got = m.extract(r);
            EXPECT_EQ(got.words(), ref.words())
                << "dim " << dim << " row " << r;
        }
    }
}

TEST(SignMatrix, RowWordsMatchSignBitsWords)
{
    Rng rng(12);
    const size_t dim = 100; // tail bits beyond dim must be zero
    SignMatrix m(dim);
    std::vector<std::vector<float>> data;
    for (int r = 0; r < 9; ++r) {
        data.push_back(randomVec(rng, dim));
        m.appendRow(data.back().data());
    }
    for (size_t r = 0; r < data.size(); ++r) {
        const SignBits ref(data[r].data(), dim);
        const uint64_t *row = m.row(r);
        ASSERT_EQ(ref.words().size(), m.wordsPerRow());
        for (size_t w = 0; w < m.wordsPerRow(); ++w)
            EXPECT_EQ(row[w], ref.words()[w]) << "row " << r;
    }
}

TEST(SignMatrix, AppendSignsRoundTrip)
{
    Rng rng(13);
    const size_t dim = 128;
    SignMatrix m(dim);
    std::vector<SignBits> refs;
    for (int r = 0; r < 17; ++r) {
        const auto v = randomVec(rng, dim);
        refs.emplace_back(v.data(), dim);
        m.appendSigns(refs.back());
    }
    for (size_t r = 0; r < refs.size(); ++r)
        EXPECT_EQ(m.extract(r).words(), refs[r].words());
}

TEST(SignMatrix, PackMatchesAppendLoop)
{
    Rng rng(14);
    const size_t dim = 96, count = 41;
    const auto flat = rng.gaussianVec(count * dim);
    const SignMatrix packed = SignMatrix::pack(flat.data(), count, dim);
    SignMatrix appended(dim);
    for (size_t r = 0; r < count; ++r)
        appended.appendRow(flat.data() + r * dim);
    EXPECT_EQ(packed, appended);
}

TEST(SignMatrix, ConcordanceRowMatchesSignBits)
{
    Rng rng(15);
    const size_t dim = 100;
    const auto qv = randomVec(rng, dim);
    const SignBits q(qv.data(), dim);
    SignMatrix m(dim);
    std::vector<SignBits> refs;
    for (int r = 0; r < 25; ++r) {
        const auto v = randomVec(rng, dim);
        refs.emplace_back(v.data(), dim);
        m.appendRow(v.data());
    }
    for (size_t r = 0; r < refs.size(); ++r)
        EXPECT_EQ(m.concordanceRow(q, r), q.concordance(refs[r]));
}

TEST(SignMatrix, ClearKeepsDimension)
{
    Rng rng(16);
    SignMatrix m(64);
    const auto v = randomVec(rng, 64);
    m.appendRow(v.data());
    ASSERT_EQ(m.rows(), 1u);
    m.clear();
    EXPECT_EQ(m.rows(), 0u);
    EXPECT_EQ(m.dim(), 64u);
    m.appendRow(v.data());
    EXPECT_EQ(m.rows(), 1u);
}

TEST(SignMatrix, ReserveDoesNotChangeContents)
{
    Rng rng(17);
    SignMatrix a(80), b(80);
    b.reserveRows(512);
    for (int r = 0; r < 20; ++r) {
        const auto v = randomVec(rng, 80);
        a.appendRow(v.data());
        b.appendRow(v.data());
    }
    EXPECT_EQ(a, b);
}

TEST(SignMatrix, BufferIs64ByteAligned)
{
    Rng rng(18);
    SignMatrix m(128);
    // Across several growth reallocations the buffer must stay
    // 64-byte aligned (the kernels rely on it for aligned loads).
    for (int r = 0; r < 300; ++r) {
        const auto v = randomVec(rng, 128);
        m.appendRow(v.data());
        EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % 64, 0u);
    }
}

TEST(SignMatrix, RowsAreContiguous)
{
    Rng rng(19);
    SignMatrix m(128);
    for (int r = 0; r < 10; ++r) {
        const auto v = randomVec(rng, 128);
        m.appendRow(v.data());
    }
    for (size_t r = 0; r < m.rows(); ++r)
        EXPECT_EQ(m.row(r), m.data() + r * m.wordsPerRow());
}

} // namespace
} // namespace longsight

/**
 * @file
 * Tests for the assembled DReX device: capacity accounting, context
 * storage, and the end-to-end functional equivalence of a full
 * GPU-write -> request -> offload -> response round trip against the
 * software LongSightAttn reference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/hybrid_attention.hh"
#include "core/itq.hh"
#include "drex/drex_device.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

TEST(Device, CapacityIs512GiB)
{
    DrexConfig cfg;
    DrexDevice dev(cfg);
    EXPECT_EQ(dev.capacityBytes(), 512ULL * kGiB);
}

TEST(Device, MaxUsersBoundedByQueueDepth)
{
    DrexConfig cfg;
    cfg.numKvHeads = 8;
    cfg.numLayers = 32;
    cfg.headDim = 128;
    DrexDevice dev(cfg);
    // Tiny context: capacity allows huge counts, queue depth caps 512.
    EXPECT_EQ(dev.maxUsers(1024), 512u);
}

TEST(Device, MaxUsersShrinksWithContext)
{
    DrexConfig cfg;
    cfg.numKvHeads = 8;
    cfg.numLayers = 32;
    cfg.headDim = 128;
    DrexDevice dev(cfg);
    const uint32_t at_128k = dev.maxUsers(131072);
    const uint32_t at_1m = dev.maxUsers(1'000'000);
    EXPECT_GT(at_128k, at_1m);
    EXPECT_GE(at_1m, 1u) << "paper headline: 1M context fits on DReX";
}

TEST(Device, MaxUsersIncludesSignOverhead)
{
    DrexConfig cfg;
    cfg.numKvHeads = 8;
    cfg.numLayers = 32;
    cfg.headDim = 128;
    DrexDevice dev(cfg);
    // bytesPerToken = (256 + 256 + 16) * 8 * 32 = 135168.
    const uint64_t per_token = dev.layout().bytesPerToken();
    EXPECT_EQ(per_token, 135168u);
    const uint64_t ctx = 500'000;
    EXPECT_EQ(dev.maxUsers(ctx),
              std::min<uint64_t>(512, dev.capacityBytes() /
                                          (per_token * ctx)));
}

TEST(Device, ContextStorageRoundTrip)
{
    DrexConfig cfg;
    cfg.numKvHeads = 2;
    cfg.numLayers = 2;
    cfg.headDim = 32;
    DrexDevice dev(cfg);
    Rng rng(1);
    Matrix keys(50, 32, rng.gaussianVec(50 * 32));
    Matrix values(50, 32, rng.gaussianVec(50 * 32));
    dev.writeContext(1, 0, 1, keys, values);
    EXPECT_TRUE(dev.hasContext(1, 0, 1));
    EXPECT_FALSE(dev.hasContext(1, 1, 1));
    const KvCache &c = dev.context(1, 0, 1);
    EXPECT_EQ(c.size(), 50u);
    EXPECT_EQ(c.keys()(10, 3), keys(10, 3));
}

TEST(Device, IncrementalWritesAppend)
{
    DrexConfig cfg;
    cfg.numKvHeads = 1;
    cfg.numLayers = 1;
    cfg.headDim = 32;
    DrexDevice dev(cfg);
    Rng rng(2);
    Matrix k1(30, 32, rng.gaussianVec(30 * 32));
    Matrix v1(30, 32, rng.gaussianVec(30 * 32));
    Matrix k2(20, 32, rng.gaussianVec(20 * 32));
    Matrix v2(20, 32, rng.gaussianVec(20 * 32));
    dev.writeContext(0, 0, 0, k1, v1);
    dev.writeContext(0, 0, 0, k2, v2);
    EXPECT_EQ(dev.context(0, 0, 0).size(), 50u);
}

/**
 * The end-to-end equivalence: device offload selections == software
 * hybrid attention sparse selections, with and without ITQ.
 */
class DeviceEquivalence : public ::testing::TestWithParam<bool>
{
};

TEST_P(DeviceEquivalence, OffloadMatchesLongSightAttn)
{
    const bool use_itq = GetParam();
    const uint32_t dim = 64;
    const size_t n = 800;
    const uint32_t window = 64, sinks = 8, k = 32;
    const int threshold = 30;

    DrexConfig cfg;
    cfg.numKvHeads = 1;
    cfg.numLayers = 1;
    cfg.headDim = dim;
    DrexDevice dev(cfg);

    Rng rng(77 + use_itq);
    Matrix keys(n, dim, rng.gaussianVec(n * dim));
    Matrix values(n, dim, rng.gaussianVec(n * dim));

    // GPU-side reference cache.
    KvCache gpu_cache(dim);
    gpu_cache.appendAll(keys, values);
    // Device-side copy (the GPU's Key/Value Object writes).
    KvCache &dev_cache = dev.writeContext(0, 0, 0, keys, values);

    Matrix rotation;
    if (use_itq) {
        rotation = trainItqRotation(keys, 15, rng);
        gpu_cache.setItqRotation(rotation);
        dev_cache.setItqRotation(rotation);
    }

    const std::vector<float> q = rng.gaussianVec(dim);

    // Software reference.
    LongSightConfig sw_cfg;
    sw_cfg.windowSize = window;
    sw_cfg.sinkTokens = sinks;
    sw_cfg.topK = k;
    sw_cfg.defaultThreshold = threshold;
    LongSightAttn attn(sw_cfg, 1);
    const auto sw = attn.computeHead(q, gpu_cache, 0);

    // Device request over the same sparse region.
    Matrix qmat(1, dim);
    qmat.setRow(0, q.data());
    const std::vector<float> qf = dev_cache.toFilterSpace(q);
    Matrix qfmat(1, dim);
    qfmat.setRow(0, qf.data());

    AttentionRequest req;
    req.uid = 0;
    OffloadSpec spec;
    spec.sparseBegin = sinks;
    spec.sparseEnd = n - window;
    spec.k = k;
    spec.threshold = threshold;
    spec.cache = &dev_cache;
    spec.queries = &qmat;
    spec.filterQueries = &qfmat;
    req.headOffloads.push_back(spec);
    dev.submit(std::move(req));
    const auto responses = dev.processAll();
    ASSERT_EQ(responses.size(), 1u);
    const auto &topk = responses[0].headResults[0].topk[0];

    // The software attended set minus sinks/window must equal the
    // device's top-k selection set.
    std::vector<uint32_t> sw_sparse;
    for (uint32_t idx : sw.attended)
        if (idx >= sinks && idx < n - window)
            sw_sparse.push_back(idx);
    std::vector<uint32_t> hw_sparse;
    for (const auto &e : topk)
        hw_sparse.push_back(e.index);
    std::sort(hw_sparse.begin(), hw_sparse.end());
    EXPECT_EQ(hw_sparse, sw_sparse)
        << (use_itq ? "with" : "without") << " ITQ";
    EXPECT_EQ(responses[0].headResults[0].survivors, sw.sparseSurvivors);
}

INSTANTIATE_TEST_SUITE_P(ItqModes, DeviceEquivalence,
                         ::testing::Values(false, true));

TEST(Device, PowerAreaMatchesPaper)
{
    const DrexPowerArea pa = DrexDevice::powerArea();
    const DrexGeometry g;
    // §9.4: 8 x (18.7 + 1.072) ≈ 158.2 W.
    EXPECT_NEAR(pa.totalPeakWatts(g), 158.2, 0.1);
    EXPECT_NEAR(pa.nmaAreaMm2, 15.1, 1e-9);
    EXPECT_NEAR(pa.pfuDieAreaOverhead, 0.067, 1e-9);
}

} // namespace
} // namespace longsight

/**
 * @file
 * Unit and property tests for the tensor substrate: Matrix, linalg
 * kernels, Jacobi SVD, softmax, and packed sign bits.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tensor/linalg.hh"
#include "tensor/signbits.hh"
#include "tensor/softmax.hh"
#include "tensor/svd.hh"
#include "tensor/tensor.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

Matrix
randomMatrix(size_t r, size_t c, Rng &rng)
{
    return Matrix(r, c, rng.gaussianVec(r * c));
}

TEST(Matrix, ZeroInitialized)
{
    Matrix m(3, 4);
    for (size_t i = 0; i < m.size(); ++i)
        EXPECT_EQ(m.data()[i], 0.0f);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
}

TEST(Matrix, RowAccess)
{
    Matrix m(2, 3);
    m(1, 2) = 7.0f;
    EXPECT_EQ(m.row(1)[2], 7.0f);
    const auto v = m.rowVec(1);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2], 7.0f);
}

TEST(Matrix, AppendRowGrows)
{
    Matrix m(0, 3);
    const float r0[3] = {1, 2, 3};
    const float r1[3] = {4, 5, 6};
    m.appendRow(r0);
    m.appendRow(r1);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m(1, 0), 4.0f);
}

TEST(Matrix, IdentityDiagonal)
{
    const Matrix eye = Matrix::identity(5);
    for (size_t i = 0; i < 5; ++i)
        for (size_t j = 0; j < 5; ++j)
            EXPECT_EQ(eye(i, j), i == j ? 1.0f : 0.0f);
}

TEST(Linalg, DotMatchesManual)
{
    const float a[] = {1, 2, 3};
    const float b[] = {4, -5, 6};
    EXPECT_FLOAT_EQ(dot(a, b, 3), 1 * 4 - 2 * 5 + 3 * 6);
}

TEST(Linalg, MatmulIdentity)
{
    Rng rng(5);
    const Matrix a = randomMatrix(4, 4, rng);
    const Matrix c = matmul(a, Matrix::identity(4));
    EXPECT_LT(maxAbsDiff(a, c), 1e-6f);
}

TEST(Linalg, MatmulKnown)
{
    Matrix a(2, 2, {1, 2, 3, 4});
    Matrix b(2, 2, {5, 6, 7, 8});
    const Matrix c = matmul(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 19);
    EXPECT_FLOAT_EQ(c(0, 1), 22);
    EXPECT_FLOAT_EQ(c(1, 0), 43);
    EXPECT_FLOAT_EQ(c(1, 1), 50);
}

TEST(Linalg, MatmulBtMatchesMatmulTranspose)
{
    Rng rng(6);
    const Matrix a = randomMatrix(3, 5, rng);
    const Matrix b = randomMatrix(4, 5, rng);
    const Matrix c1 = matmulBt(a, b);
    const Matrix c2 = matmul(a, transpose(b));
    EXPECT_LT(maxAbsDiff(c1, c2), 1e-4f);
}

TEST(Linalg, GemvMatchesMatmul)
{
    Rng rng(7);
    const Matrix a = randomMatrix(4, 6, rng);
    const std::vector<float> x = rng.gaussianVec(6);
    const auto y = gemv(a, x);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(y[i], dot(a.row(i), x.data(), 6), 1e-4);
}

TEST(Linalg, GemvTMatchesTransposedGemv)
{
    Rng rng(8);
    const Matrix a = randomMatrix(5, 3, rng);
    const std::vector<float> x = rng.gaussianVec(5);
    const auto y1 = gemvT(a, x);
    const auto y2 = gemv(transpose(a), x);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(y1[i], y2[i], 1e-4);
}

TEST(Linalg, TransposeInvolution)
{
    Rng rng(9);
    const Matrix a = randomMatrix(3, 7, rng);
    EXPECT_LT(maxAbsDiff(a, transpose(transpose(a))), 1e-7f);
}

TEST(Linalg, RandomOrthogonalIsOrthogonal)
{
    Rng rng(10);
    for (size_t n : {4u, 16u, 64u}) {
        const Matrix q = randomOrthogonal(n, rng);
        EXPECT_TRUE(isOrthogonal(q, 1e-3f)) << "n=" << n;
    }
}

TEST(Linalg, OrthogonalPreservesDotProducts)
{
    Rng rng(11);
    const size_t n = 32;
    const Matrix q = randomOrthogonal(n, rng);
    const std::vector<float> a = rng.gaussianVec(n);
    const std::vector<float> b = rng.gaussianVec(n);
    const auto qa = gemvT(q, a);
    const auto qb = gemvT(q, b);
    EXPECT_NEAR(dot(a.data(), b.data(), n), dot(qa.data(), qb.data(), n),
                1e-3);
}

class SvdShapes : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(SvdShapes, ReconstructsInput)
{
    const auto [m, n] = GetParam();
    Rng rng(100 + m * 17 + n);
    const Matrix a = randomMatrix(m, n, rng);
    const SvdResult f = svd(a);

    // u * diag(s) * v^T == a
    Matrix us(m, n);
    for (size_t i = 0; i < m; ++i)
        for (size_t j = 0; j < n; ++j)
            us(i, j) = f.u(i, j) * f.s[j];
    const Matrix rec = matmul(us, transpose(f.v));
    EXPECT_LT(maxAbsDiff(a, rec), 1e-3f);

    // Singular values descending and non-negative.
    for (size_t j = 0; j + 1 < n; ++j) {
        EXPECT_GE(f.s[j], f.s[j + 1]);
        EXPECT_GE(f.s[j + 1], 0.0f);
    }
    // V orthogonal.
    EXPECT_TRUE(isOrthogonal(f.v, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapes,
                         ::testing::Values(std::pair<size_t, size_t>{4, 4},
                                           std::pair<size_t, size_t>{8, 8},
                                           std::pair<size_t, size_t>{16, 8},
                                           std::pair<size_t, size_t>{64, 64},
                                           std::pair<size_t, size_t>{32, 16}));

TEST(Svd, ProcrustesRecoversKnownRotation)
{
    Rng rng(12);
    const size_t n = 16;
    const Matrix b = randomMatrix(64, n, rng);
    const Matrix r_true = randomOrthogonal(n, rng);
    const Matrix a = matmul(b, r_true);
    const Matrix r = procrustesRotation(a, b);
    EXPECT_TRUE(isOrthogonal(r, 1e-3f));
    EXPECT_LT(maxAbsDiff(matmul(b, r), a), 1e-2f);
}

TEST(Softmax, SumsToOne)
{
    std::vector<float> s = {1.0f, 2.0f, 3.0f, -1.0f};
    softmaxInPlace(s);
    const double sum = std::accumulate(s.begin(), s.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-6);
    for (float p : s)
        EXPECT_GT(p, 0.0f);
}

TEST(Softmax, ShiftInvariant)
{
    std::vector<float> a = {0.5f, 1.5f, -2.0f};
    std::vector<float> b = {100.5f, 101.5f, 98.0f};
    softmaxInPlace(a);
    softmaxInPlace(b);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a[i], b[i], 1e-5);
}

TEST(Softmax, StableForLargeScores)
{
    std::vector<float> s = {1000.0f, 999.0f};
    softmaxInPlace(s);
    EXPECT_FALSE(std::isnan(s[0]));
    EXPECT_GT(s[0], s[1]);
    EXPECT_NEAR(s[0] + s[1], 1.0, 1e-6);
}

TEST(Softmax, MonotoneInScores)
{
    std::vector<float> s = {1.0f, 3.0f, 2.0f};
    softmaxInPlace(s);
    EXPECT_GT(s[1], s[2]);
    EXPECT_GT(s[2], s[0]);
}

TEST(Softmax, EmptyIsNoop)
{
    std::vector<float> s;
    softmaxInPlace(s);
    EXPECT_TRUE(s.empty());
}

TEST(SignBits, PacksAndReadsBack)
{
    const float v[] = {1.0f, -2.0f, 0.0f, -0.5f, 3.0f};
    SignBits s(v, 5);
    EXPECT_TRUE(s.bit(0));
    EXPECT_FALSE(s.bit(1));
    EXPECT_TRUE(s.bit(2)); // zero counts as non-negative
    EXPECT_FALSE(s.bit(3));
    EXPECT_TRUE(s.bit(4));
}

TEST(SignBits, SelfConcordanceIsDim)
{
    Rng rng(13);
    const auto v = rng.gaussianVec(128);
    SignBits s(v.data(), 128);
    EXPECT_EQ(s.concordance(s), 128);
}

TEST(SignBits, NegationConcordanceIsZero)
{
    Rng rng(14);
    auto v = rng.gaussianVec(64);
    // Ensure no exact zeros (zero keeps its "positive" bit under
    // negation of -0.0f... avoid by nudging).
    for (auto &x : v)
        if (x == 0.0f)
            x = 0.1f;
    std::vector<float> neg(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        neg[i] = -v[i];
    SignBits a(v.data(), 64), b(neg.data(), 64);
    EXPECT_EQ(a.concordance(b), 0);
}

TEST(SignBits, ConcordanceMatchesNaive)
{
    Rng rng(15);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t d = 1 + rng.below(200);
        const auto a = rng.gaussianVec(d);
        const auto b = rng.gaussianVec(d);
        SignBits sa(a.data(), d), sb(b.data(), d);
        int naive = 0;
        for (size_t i = 0; i < d; ++i)
            naive += ((a[i] >= 0) == (b[i] >= 0));
        EXPECT_EQ(sa.concordance(sb), naive) << "d=" << d;
    }
}

TEST(SignBits, PackRowsMatchesSingle)
{
    Rng rng(16);
    const Matrix m(4, 32, rng.gaussianVec(4 * 32));
    const auto rows = packSignRows(m.data(), 4, 32);
    ASSERT_EQ(rows.size(), 4u);
    for (size_t r = 0; r < 4; ++r)
        EXPECT_EQ(rows[r], SignBits(m.row(r), 32));
}

} // namespace
} // namespace longsight

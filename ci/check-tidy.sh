#!/usr/bin/env bash
# Advisory clang-tidy gate (non-blocking in CI).
#
# Runs the checked-in .clang-tidy profile over the project sources
# using the compilation database the build exports unconditionally
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON in CMakeLists.txt). The gate is
# advisory: findings are reported and uploaded as a CI artifact, but
# the exit status is always 0 when clang-tidy ran — tidy versions skew
# across distros and a blocking gate would make CI green depend on the
# runner image. The BLOCKING contract checks are tools/lint/ (see
# `cmake --build build --target lint`).
#
# When clang-tidy is not installed (e.g. a gcc-only container), the
# script prints a notice and exits 0 so local pipelines do not break.
#
# Usage: ci/check-tidy.sh [build-dir] [file...]
#   build-dir defaults to ./build; files default to all tracked .cc
#   under src/ and tools/.
set -u
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
shift || true

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "check-tidy: clang-tidy not installed; skipping (advisory gate)"
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "check-tidy: $build_dir/compile_commands.json missing;" \
        "configure with cmake first" >&2
    exit 1
fi

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    mapfile -t files < <(git ls-files 'src/*.cc' 'src/**/*.cc' \
        'tools/*.cc' 'tools/**/*.cc')
fi

echo "check-tidy: $(clang-tidy --version | head -n 2 | tail -n 1)"
warnings=0
for f in "${files[@]}"; do
    out=$(clang-tidy -p "$build_dir" --quiet "$f" 2> /dev/null)
    if [ -n "$out" ]; then
        printf '%s\n' "$out"
        warnings=$((warnings + 1))
    fi
done

if [ "$warnings" -ne 0 ]; then
    echo "check-tidy: findings in $warnings file(s) (advisory, not blocking)"
else
    echo "check-tidy: clean (${#files[@]} files)"
fi
exit 0

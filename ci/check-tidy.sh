#!/usr/bin/env bash
# clang-tidy gate, two profiles:
#
#   ci/check-tidy.sh [build-dir] [file...]             advisory (full profile)
#   ci/check-tidy.sh --blocking [build-dir] [file...]  blocking (curated subset)
#
# Advisory mode runs the checked-in .clang-tidy profile over the
# project sources using the compilation database the build exports
# unconditionally (CMAKE_EXPORT_COMPILE_COMMANDS is ON). Findings are
# reported and uploaded as a CI artifact, but the exit status is
# always 0 when clang-tidy ran — tidy output skews across versions
# and a blocking full profile would make CI green depend on the
# runner image.
#
# Blocking mode restricts to a curated subset whose findings are
# stable across tidy versions and map to real defects:
#   bugprone-*, concurrency-*
# Unwaived findings fail the run. Waivers live in ci/tidy-waivers.txt
# (committed, reviewed); see that file for the grammar. Unused waivers
# are reported so stale entries get pruned.
#
# When clang-tidy is not installed (e.g. a gcc-only container), both
# modes print a notice and exit 0 so local pipelines do not break.
set -u
cd "$(dirname "$0")/.."

blocking=0
if [ "${1:-}" = "--blocking" ]; then
    blocking=1
    shift
fi

build_dir="${1:-build}"
shift || true

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "check-tidy: clang-tidy not installed; skipping"
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "check-tidy: $build_dir/compile_commands.json missing;" \
        "configure with cmake first" >&2
    exit 1
fi

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    mapfile -t files < <(git ls-files 'src/*.cc' 'src/**/*.cc' \
        'tools/*.cc' 'tools/**/*.cc')
fi

echo "check-tidy: $(clang-tidy --version | head -n 2 | tail -n 1)"

if [ "$blocking" -eq 0 ]; then
    warnings=0
    for f in "${files[@]}"; do
        out=$(clang-tidy -p "$build_dir" --quiet "$f" 2> /dev/null)
        if [ -n "$out" ]; then
            printf '%s\n' "$out"
            warnings=$((warnings + 1))
        fi
    done
    if [ "$warnings" -ne 0 ]; then
        echo "check-tidy: findings in $warnings file(s)" \
            "(advisory, not blocking)"
    else
        echo "check-tidy: clean (${#files[@]} files)"
    fi
    exit 0
fi

# ---- blocking mode ---------------------------------------------------------

subset='-*,bugprone-*,concurrency-*'
waivers_file="ci/tidy-waivers.txt"
declare -A waivers used
if [ -f "$waivers_file" ]; then
    while IFS= read -r line; do
        line="${line%%#*}"
        line="$(printf '%s' "$line" | tr -d '[:space:]')"
        [ -n "$line" ] && waivers["$line"]=1
    done < "$waivers_file"
fi

fail=0
for f in "${files[@]}"; do
    out=$(clang-tidy -p "$build_dir" --quiet \
        --checks="$subset" --warnings-as-errors='' "$f" 2> /dev/null)
    [ -z "$out" ] && continue
    # Finding lines look like: path:LINE:COL: warning: msg [check-name]
    while IFS= read -r line; do
        case "$line" in
            *" warning: "*"["*"]")
                check="${line##*\[}"
                check="${check%]}"
                file="${line%%:*}"
                rel="${file#"$PWD"/}"
                if [ -n "${waivers[$check]:-}" ]; then
                    used["$check"]=1
                elif [ -n "${waivers[$rel:$check]:-}" ]; then
                    used["$rel:$check"]=1
                else
                    printf '%s\n' "$line"
                    fail=$((fail + 1))
                fi
                ;;
        esac
    done <<< "$out"
done

for w in "${!waivers[@]}"; do
    if [ -z "${used[$w]:-}" ]; then
        echo "check-tidy: note: unused waiver '$w' (prune it?)"
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "check-tidy: $fail unwaived blocking finding(s)" \
        "(subset: bugprone-*, concurrency-*)." \
        "Fix them or add a reviewed waiver to $waivers_file" >&2
    exit 1
fi
echo "check-tidy: blocking subset clean (${#files[@]} files)"
exit 0

#!/usr/bin/env bash
# Mechanical formatting gate for C++ sources (blocking in CI).
#
# These checks are tool-free on purpose: they run identically on any
# developer machine and in CI without needing a specific clang-format
# version installed. Full clang-format conformance (.clang-format) is
# checked by CI as a separate advisory step whose diff is uploaded as
# an artifact; see .github/workflows/ci.yml.
#
# Usage: ci/check-format.sh [file...]     (defaults to all tracked C++)
set -u
cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    mapfile -t files < <(git ls-files '*.cc' '*.hh')
fi

fail=0

for f in "${files[@]}"; do
    if grep -nP '[ \t]+$' "$f" /dev/null; then
        echo "error: trailing whitespace in $f" >&2
        fail=1
    fi
    if grep -nP '\t' "$f" /dev/null > /dev/null; then
        echo "error: hard tabs in $f (indent is 4 spaces)" >&2
        fail=1
    fi
    if grep -nP '\r' "$f" /dev/null > /dev/null; then
        echo "error: CRLF line endings in $f" >&2
        fail=1
    fi
    if [ -n "$(tail -c1 "$f")" ]; then
        echo "error: $f does not end with a newline" >&2
        fail=1
    fi
    long=$(awk 'length > 100 {print FILENAME ":" FNR ": line longer than 100 columns"}' "$f")
    if [ -n "$long" ]; then
        echo "$long" >&2
        echo "error: overlong lines in $f" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "format check FAILED" >&2
    exit 1
fi
echo "format check OK (${#files[@]} files)"

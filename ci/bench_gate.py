#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json artifacts.

Compares freshly produced bench JSONs against the checked-in
baselines in bench/baselines/ under a per-metric policy manifest.
Only metrics that are DETERMINISTIC for a fixed seed — simulated
times, schedule counters, identity booleans — are gated; wall-clock
measurements (tokens_per_s on the host CPU, scan keys/s, *_s kernel
timings) vary across runners and are deliberately absent from the
manifest, so a noisy CI machine cannot fail the gate.

Policy kinds:
  exact         values must compare equal (counters, config echoes)
  true          fresh value must be literally true (identity gates)
  close         relative difference <= 1e-4 (deterministic floats
                that only wobble through decimal printing)
  min_ratio X   fresh >= X * baseline (throughput-like: fail on a
                >(1-X) drop)
  max_ratio X   fresh <= X * baseline (latency-like: fail on a
                >(X-1) regression)

Keys are dotted paths into the JSON. Keys absent from the manifest
are ignored; keys in the manifest but absent from either file fail.

Usage: bench_gate.py --baseline-dir DIR --fresh-dir DIR [names...]
"""

import argparse
import json
import os
import sys

# Tolerance bands: a >10% throughput drop or >15% p99 latency
# regression fails; deterministic counters and identity checks are
# exact. A deliberate scheduling-policy change that legitimately
# shifts counters is accepted by refreshing the baselines
# (ci/check-bench.sh refresh) in the same commit.
THROUGHPUT = ("min_ratio", 0.90)
TAIL_LATENCY = ("max_ratio", 1.15)
EXACT = ("exact",)
TRUE = ("true",)
CLOSE = ("close",)


def serving_policy():
    policy = {
        "requests": EXACT,
        "prefill_chunk_tokens": EXACT,
        "max_batch": EXACT,
        "ttft_slo_ms": EXACT,
        "tbt_slo_ms": EXACT,
        "block_budget": EXACT,
    }
    for s in ("poisson", "diurnal"):
        policy.update(
            {
                f"{s}.requests": EXACT,
                f"{s}.total_tokens": EXACT,
                f"{s}.prefill_chunks": EXACT,
                f"{s}.preemptions": EXACT,
                f"{s}.restores": EXACT,
                f"{s}.gate_holds": EXACT,
                f"{s}.peak_blocks": EXACT,
                f"{s}.block_budget": EXACT,
                f"{s}.deterministic": TRUE,
                f"{s}.makespan_s": TAIL_LATENCY,
                f"{s}.throughput_tokens_per_s": THROUGHPUT,
                f"{s}.goodput_tokens_per_s": THROUGHPUT,
                f"{s}.slo_attainment": THROUGHPUT,
                f"{s}.ttft_p99_ms": TAIL_LATENCY,
                f"{s}.tbt_p99_ms": TAIL_LATENCY,
            }
        )
    return policy


POLICIES = {
    "BENCH_serving.json": serving_policy(),
    # Block-sparse prefill: identity booleans, the best knob's
    # deterministic counts (block-skip and attended fractions, quality
    # proxies), and the SIMULATED speedups — all count- or Tick-domain,
    # never wall clock (timed_* fields are deliberately ungated).
    "BENCH_prefill.json": {
        "context_tokens": EXACT,
        "quality_samples": EXACT,
        "sampled_kv_heads": EXACT,
        "recall_k": EXACT,
        "ppl_budget_pct": EXACT,
        "knob_dense_identical": TRUE,
        "chunked_dense_identical": TRUE,
        "chunked_sparse_identical": TRUE,
        "decision_counts_consistent": TRUE,
        "speedup_target_met": TRUE,
        "best.name": EXACT,
        "best.block_tokens": EXACT,
        "best.mode": EXACT,
        "best.threshold": EXACT,
        "best.block_skip_fraction": CLOSE,
        "best.attended_fraction": CLOSE,
        "best.est_overhead": CLOSE,
        "best.ppl_increase_pct": CLOSE,
        "best.recall_at_k": CLOSE,
        "best.simulated_speedup": THROUGHPUT,
        "ttft.attention_share": CLOSE,
        "ttft.speedup_32k": THROUGHPUT,
        "ttft.speedup_p50": THROUGHPUT,
        "ttft.speedup_p99": THROUGHPUT,
    },
    "BENCH_decode.json": {
        "context": EXACT,
        "steps": EXACT,
        "threshold": EXACT,
        "top_k": EXACT,
        "alloc_hook_active": TRUE,
        "grouped_scan.bit_identical": TRUE,
        # Allocation counts are a perf contract: the fused step's 0.5
        # allocs/token is structural; the baseline step's count may
        # drift slightly with toolchain library versions.
        "fused.allocs_per_token": EXACT,
        "fused.bytes_per_token": EXACT,
        "baseline.allocs_per_token": ("max_ratio", 1.10),
    },
    # Unified filter-backend Pareto harness: everything gated is in
    # the count/identity domain — point counts per backend family, the
    # INT8-vs-SCF frontier booleans, and the DynaX sparsity repro.
    # simulated tokens/s per point is deterministic too but summarized
    # by the frontier booleans; no wall clock exists in this artifact.
    "BENCH_pareto.json": {
        "context": EXACT,
        "eval_heads": EXACT,
        "eval_queries_per_head": EXACT,
        "gate.points_scf": EXACT,
        "gate.points_int8": EXACT,
        "gate.points_centroid": EXACT,
        "gate.points_anns": EXACT,
        "gate.int8_beats_scf_quality_per_retrieved_token": TRUE,
        "gate.int8_on_or_above_scf_throughput_frontier": TRUE,
        "gate.best_scf_sparsity_at_1pct_ppl": CLOSE,
    },
    "BENCH_paged.json": {
        "results_identical": TRUE,
        "block_tokens": EXACT,
        "pool_blocks": EXACT,
        "budget_tokens": EXACT,
        "hbm_resident_blocks": EXACT,
        "promotions": EXACT,
        "evictions": EXACT,
        "flat_admitted": EXACT,
        "paged_admitted": EXACT,
        "prefix_shared_tokens": EXACT,
        "trace_block_budget": EXACT,
        "trace_peak_blocks": EXACT,
        "trace_gate_rejections": EXACT,
        "trace_jobs": EXACT,
        "identity_occupancy": CLOSE,
        "prefix_hit_rate": CLOSE,
        "capacity_ratio": THROUGHPUT,
        # Simulated (Tick-domain) trace metrics: deterministic, so
        # gated like the serving metrics, unlike the wall-clock
        # flat_s/paged_s fields which are not compared at all.
        "trace_makespan_s": TAIL_LATENCY,
        "trace_throughput_tps": THROUGHPUT,
    },
}


def lookup(obj, path):
    for part in path.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None, False
        obj = obj[part]
    return obj, True


def check_metric(path, policy, base, fresh):
    """Returns an error string, or None when the metric passes."""
    bval, bok = lookup(base, path)
    fval, fok = lookup(fresh, path)
    if not fok:
        return f"{path}: missing from fresh output"
    if policy[0] == "true":
        return None if fval is True else f"{path}: expected true, got {fval!r}"
    if not bok:
        return f"{path}: missing from baseline (refresh baselines?)"
    if policy[0] == "exact":
        if fval != bval:
            return f"{path}: {fval!r} != baseline {bval!r}"
        return None
    try:
        b, f = float(bval), float(fval)
    except (TypeError, ValueError):
        return f"{path}: non-numeric ({bval!r} vs {fval!r})"
    if policy[0] == "close":
        scale = max(abs(b), 1e-12)
        if abs(f - b) / scale > 1e-4:
            return f"{path}: {f} differs from baseline {b} (> 1e-4 rel)"
        return None
    if policy[0] == "min_ratio":
        if f < policy[1] * b:
            return (
                f"{path}: {f:.6g} < {policy[1]:.2f} x baseline {b:.6g} "
                f"(>{(1 - policy[1]) * 100:.0f}% drop)"
            )
        return None
    if policy[0] == "max_ratio":
        if f > policy[1] * b:
            return (
                f"{path}: {f:.6g} > {policy[1]:.2f} x baseline {b:.6g} "
                f"(>{(policy[1] - 1) * 100:.0f}% regression)"
            )
        return None
    return f"{path}: unknown policy {policy!r}"


def check_file(name, baseline_dir, fresh_dir):
    base_path = os.path.join(baseline_dir, name)
    fresh_path = os.path.join(fresh_dir, name)
    if not os.path.exists(base_path):
        return [f"{name}: no baseline at {base_path} (run refresh)"]
    if not os.path.exists(fresh_path):
        return [f"{name}: no fresh output at {fresh_path}"]
    with open(base_path) as fp:
        base = json.load(fp)
    with open(fresh_path) as fp:
        fresh = json.load(fp)
    errors = []
    for path, policy in sorted(POLICIES[name].items()):
        err = check_metric(path, policy, base, fresh)
        if err:
            errors.append(f"{name}: {err}")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--fresh-dir", default=".")
    ap.add_argument("names", nargs="*", default=None,
                    help="bench JSON names (default: all known)")
    args = ap.parse_args()
    names = args.names or sorted(POLICIES)
    for name in names:
        if name not in POLICIES:
            print(f"error: no policy for {name}", file=sys.stderr)
            return 2
    failures = []
    checked = 0
    for name in names:
        errs = check_file(name, args.baseline_dir, args.fresh_dir)
        checked += len(POLICIES[name])
        for e in errs:
            print(f"FAIL {e}", file=sys.stderr)
        failures.extend(errs)
    if failures:
        print(
            f"bench gate: {len(failures)} failure(s) across "
            f"{len(names)} artifact(s). If the change is intentional, "
            f"refresh baselines with: ci/check-bench.sh refresh",
            file=sys.stderr,
        )
        return 1
    print(f"bench gate: {checked} metrics OK across {len(names)} artifact(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

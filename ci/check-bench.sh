#!/usr/bin/env bash
# Perf-regression gate over the deterministic bench artifacts.
#
# The five gated benches (serving_engine, decode_hotpath,
# paged_cache, sparse_prefill, pareto_harness) are run with CANONICAL
# smoke flags — defined once,
# here — and their BENCH_*.json outputs are diffed against the
# checked-in baselines in bench/baselines/ by ci/bench_gate.py:
# simulated throughput may not drop >10%, simulated p99 latency may
# not regress >15%, schedule counters and identity booleans must
# match exactly. Wall-clock metrics are not compared (CI runners are
# noisy); see the policy manifest in ci/bench_gate.py.
#
# Usage:
#   ci/check-bench.sh run [build_dir [out_dir]]
#       Run the gated benches with canonical flags; JSONs land in
#       out_dir (default: current directory).
#   ci/check-bench.sh check [fresh_dir]
#       Diff fresh JSONs (default: current directory) against
#       bench/baselines/.
#   ci/check-bench.sh refresh [build_dir]
#       One-command local baseline update: build the gated benches,
#       run them, write the JSONs straight into bench/baselines/.
#       Commit the result together with the change that shifted it.
set -eu
cd "$(dirname "$0")/.."

BASELINE_DIR=bench/baselines

run_benches() {
    local build_dir=$1 out_dir=$2
    mkdir -p "$out_dir"
    for bench in serving_engine decode_hotpath paged_cache sparse_prefill \
        pareto_harness; do
        [ -x "$build_dir/bench/$bench" ] || {
            echo "error: $build_dir/bench/$bench not built" >&2
            echo "hint: cmake --build $build_dir --target $bench" >&2
            return 1
        }
    done
    # Canonical smoke flags. ci.yml's bench-smoke job and the
    # committed baselines both come from exactly these invocations.
    "$build_dir/bench/serving_engine" --requests 600 --seed 1 \
        --out "$out_dir/BENCH_serving.json"
    "$build_dir/bench/decode_hotpath" --context 4096 --steps 8 \
        --warmup 4 --out "$out_dir/BENCH_decode.json"
    "$build_dir/bench/paged_cache" --steps 12 \
        --out "$out_dir/BENCH_paged.json"
    "$build_dir/bench/sparse_prefill" --context 32768 --samples 64 \
        --seed 1 --out "$out_dir/BENCH_prefill.json"
    "$build_dir/bench/pareto_harness" --context 32768 --heads 4 \
        --queries 16 --out "$out_dir/BENCH_pareto.json"
}

case "${1:-check}" in
run)
    run_benches "${2:-build}" "${3:-.}"
    ;;
check)
    python3 ci/bench_gate.py --baseline-dir "$BASELINE_DIR" \
        --fresh-dir "${2:-.}"
    ;;
refresh)
    build_dir=${2:-build}
    cmake --build "$build_dir" \
        --target serving_engine decode_hotpath paged_cache sparse_prefill \
        pareto_harness
    run_benches "$build_dir" "$BASELINE_DIR"
    echo "refreshed baselines in $BASELINE_DIR:"
    ls -l "$BASELINE_DIR"
    ;;
*)
    echo "usage: $0 {run [build_dir [out_dir]] | check [fresh_dir] |" \
        "refresh [build_dir]}" >&2
    exit 2
    ;;
esac

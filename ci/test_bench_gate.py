#!/usr/bin/env python3
"""Self-test for the perf-regression gate (ci/bench_gate.py).

The gate itself guards every other perf contract in CI, so its own
failure modes are pinned here with synthetic baseline/fresh JSON
pairs: the >10% throughput-drop band, the >15% tail-latency band,
counter drift under `exact`, identity booleans under `true`, the
1e-4 `close` tolerance, and both missing-metric directions. Boundary
values sit exactly ON the band edges so a silent tolerance change
fails this suite before it waves a real regression through.

Runs as the tier-1 ctest entry `ci_bench_gate_selftest`.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.realpath(__file__)))
import bench_gate  # noqa: E402


def metric(policy, base, fresh, path="m"):
    return bench_gate.check_metric(path, policy, {"m": base}, {"m": fresh})


class ThroughputBandTest(unittest.TestCase):
    """min_ratio 0.90: fail on a >10% drop, pass anything milder."""

    P = bench_gate.THROUGHPUT

    def test_equal_passes(self):
        self.assertIsNone(metric(self.P, 100.0, 100.0))

    def test_improvement_passes(self):
        self.assertIsNone(metric(self.P, 100.0, 140.0))

    def test_nine_percent_drop_passes(self):
        self.assertIsNone(metric(self.P, 100.0, 91.0))

    def test_exactly_ten_percent_drop_passes(self):
        # The band edge is inclusive: fresh == 0.90 * baseline holds.
        self.assertIsNone(metric(self.P, 100.0, 90.0))

    def test_eleven_percent_drop_fails(self):
        err = metric(self.P, 100.0, 89.0)
        self.assertIsNotNone(err)
        self.assertIn("drop", err)

    def test_non_numeric_fails(self):
        self.assertIsNotNone(metric(self.P, "fast", 90.0))


class TailLatencyBandTest(unittest.TestCase):
    """max_ratio 1.15: fail on a >15% regression."""

    P = bench_gate.TAIL_LATENCY

    def test_equal_passes(self):
        self.assertIsNone(metric(self.P, 20.0, 20.0))

    def test_improvement_passes(self):
        self.assertIsNone(metric(self.P, 20.0, 12.0))

    def test_fourteen_percent_regression_passes(self):
        self.assertIsNone(metric(self.P, 100.0, 114.0))

    def test_nominal_band_edge_is_conservative(self):
        # 1.15 * 100.0 rounds DOWN in binary floating point, so an
        # exactly-15% regression fails. Conservative is the right
        # side to land on; this pins it so a "fix" that widens the
        # band past 15% shows up here.
        self.assertIsNotNone(metric(self.P, 100.0, 115.0))

    def test_sixteen_percent_regression_fails(self):
        err = metric(self.P, 100.0, 116.0)
        self.assertIsNotNone(err)
        self.assertIn("regression", err)


class ExactAndTruePolicyTest(unittest.TestCase):
    def test_counter_match_passes(self):
        self.assertIsNone(metric(bench_gate.EXACT, 4242, 4242))

    def test_counter_drift_fails(self):
        err = metric(bench_gate.EXACT, 4242, 4243)
        self.assertIsNotNone(err)
        self.assertIn("!= baseline", err)

    def test_string_echo_drift_fails(self):
        self.assertIsNotNone(metric(bench_gate.EXACT, "scf", "int8"))

    def test_identity_true_passes(self):
        self.assertIsNone(metric(bench_gate.TRUE, None, True))

    def test_identity_false_fails(self):
        self.assertIsNotNone(metric(bench_gate.TRUE, None, False))

    def test_identity_truthy_nonbool_fails(self):
        # 1 == True in Python; the gate must demand the literal.
        self.assertIsNotNone(metric(bench_gate.TRUE, None, "true"))


class ClosePolicyTest(unittest.TestCase):
    def test_print_wobble_passes(self):
        self.assertIsNone(metric(bench_gate.CLOSE, 0.731, 0.73100004))

    def test_real_drift_fails(self):
        self.assertIsNotNone(metric(bench_gate.CLOSE, 0.731, 0.733))

    def test_zero_baseline_uses_absolute_floor(self):
        self.assertIsNotNone(metric(bench_gate.CLOSE, 0.0, 0.5))
        self.assertIsNone(metric(bench_gate.CLOSE, 0.0, 0.0))


class MissingMetricTest(unittest.TestCase):
    def test_missing_from_fresh_fails(self):
        err = bench_gate.check_metric("a.b", bench_gate.EXACT,
                                      {"a": {"b": 1}}, {"a": {}})
        self.assertIsNotNone(err)
        self.assertIn("missing from fresh", err)

    def test_missing_from_baseline_fails(self):
        err = bench_gate.check_metric("a.b", bench_gate.EXACT,
                                      {"a": {}}, {"a": {"b": 1}})
        self.assertIsNotNone(err)
        self.assertIn("missing from baseline", err)

    def test_true_policy_needs_no_baseline(self):
        err = bench_gate.check_metric("a.b", bench_gate.TRUE,
                                      {}, {"a": {"b": True}})
        self.assertIsNone(err)

    def test_dotted_path_through_non_dict_fails(self):
        err = bench_gate.check_metric("a.b.c", bench_gate.EXACT,
                                      {"a": {"b": {"c": 1}}},
                                      {"a": {"b": 7}})
        self.assertIsNotNone(err)
        self.assertIn("missing from fresh", err)


class CheckFileTest(unittest.TestCase):
    """End-to-end over real files with a synthetic policy entry."""

    NAME = "BENCH_selftest.json"
    POLICY = {
        "tokens_per_s": bench_gate.THROUGHPUT,
        "p99_ms": bench_gate.TAIL_LATENCY,
        "preemptions": bench_gate.EXACT,
        "deterministic": bench_gate.TRUE,
    }
    GOOD = {"tokens_per_s": 1000.0, "p99_ms": 40.0,
            "preemptions": 17, "deterministic": True}

    def setUp(self):
        self._saved = dict(bench_gate.POLICIES)
        bench_gate.POLICIES[self.NAME] = self.POLICY
        self.tmp = tempfile.TemporaryDirectory()
        self.base_dir = os.path.join(self.tmp.name, "baseline")
        self.fresh_dir = os.path.join(self.tmp.name, "fresh")
        os.makedirs(self.base_dir)
        os.makedirs(self.fresh_dir)

    def tearDown(self):
        bench_gate.POLICIES.clear()
        bench_gate.POLICIES.update(self._saved)
        self.tmp.cleanup()

    def write(self, directory, payload):
        with open(os.path.join(directory, self.NAME), "w") as fp:
            json.dump(payload, fp)

    def run_gate(self, fresh):
        self.write(self.base_dir, self.GOOD)
        self.write(self.fresh_dir, fresh)
        return bench_gate.check_file(self.NAME, self.base_dir,
                                     self.fresh_dir)

    def test_identical_run_passes(self):
        self.assertEqual(self.run_gate(dict(self.GOOD)), [])

    def test_throughput_collapse_fails(self):
        errs = self.run_gate({**self.GOOD, "tokens_per_s": 500.0})
        self.assertEqual(len(errs), 1)
        self.assertIn("tokens_per_s", errs[0])

    def test_tail_blowup_fails(self):
        errs = self.run_gate({**self.GOOD, "p99_ms": 80.0})
        self.assertEqual(len(errs), 1)
        self.assertIn("p99_ms", errs[0])

    def test_counter_drift_fails(self):
        errs = self.run_gate({**self.GOOD, "preemptions": 18})
        self.assertEqual(len(errs), 1)
        self.assertIn("preemptions", errs[0])

    def test_determinism_break_fails(self):
        errs = self.run_gate({**self.GOOD, "deterministic": False})
        self.assertEqual(len(errs), 1)
        self.assertIn("deterministic", errs[0])

    def test_multiple_failures_all_reported(self):
        errs = self.run_gate({"tokens_per_s": 1.0, "p99_ms": 999.0,
                              "preemptions": 0, "deterministic": False})
        self.assertEqual(len(errs), 4)

    def test_missing_baseline_file_fails(self):
        self.write(self.fresh_dir, self.GOOD)
        errs = bench_gate.check_file(self.NAME, self.base_dir,
                                     self.fresh_dir)
        self.assertEqual(len(errs), 1)
        self.assertIn("no baseline", errs[0])

    def test_missing_fresh_file_fails(self):
        self.write(self.base_dir, self.GOOD)
        errs = bench_gate.check_file(self.NAME, self.base_dir,
                                     self.fresh_dir)
        self.assertEqual(len(errs), 1)
        self.assertIn("no fresh output", errs[0])


class ManifestSanityTest(unittest.TestCase):
    """The committed policy manifest itself stays wall-clock-free."""

    WALL_CLOCK_SUFFIXES = ("_s", "flat_s", "paged_s")
    BANNED = {"tokens_per_s_host", "scan_keys_per_s"}

    def test_policies_are_known_kinds(self):
        kinds = {"exact", "true", "close", "min_ratio", "max_ratio"}
        for name, policy in bench_gate.POLICIES.items():
            for path, p in policy.items():
                self.assertIn(p[0], kinds, f"{name}:{path}")

    def test_ratio_policies_carry_a_band(self):
        for name, policy in bench_gate.POLICIES.items():
            for path, p in policy.items():
                if p[0] in ("min_ratio", "max_ratio"):
                    self.assertEqual(len(p), 2, f"{name}:{path}")
                    self.assertGreater(p[1], 0.0, f"{name}:{path}")


if __name__ == "__main__":
    unittest.main(verbosity=2)

/**
 * @file
 * Multi-tenant serving scenario: an operator wants to know how many
 * concurrent long-context users a single GPU + DReX box can serve
 * under a per-token latency SLO (§4 "latency sensitivity", §9.1).
 * Sweeps the user count at several context lengths, reports
 * throughput and latency, and finds the largest batch meeting the
 * SLO for LongSight and the 1-GPU dense baseline.
 *
 * Run:  ./build/examples/multi_tenant_serving
 */

#include <algorithm>
#include <iostream>

#include "model/model_config.hh"
#include "sim/baseline_gpu.hh"
#include "sim/longsight_system.hh"
#include "util/table.hh"

namespace {

constexpr double kSloMsPerToken = 50.0;

template <typename System>
uint32_t
maxUsersUnderSlo(const System &sys, uint64_t ctx, uint32_t cap)
{
    uint32_t best = 0;
    for (uint32_t lo = 1, hi = std::min(cap, 512u); lo <= hi;) {
        const uint32_t mid = lo + (hi - lo) / 2;
        const auto r = sys.decode(ctx, mid);
        if (r.feasible && r.perTokenLatencyUs / 1000.0 <= kSloMsPerToken) {
            best = mid;
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return best;
}

} // namespace

int
main()
{
    using namespace longsight;
    const auto model = ModelConfig::llama3_8b();
    BaselineGpuSystem gpu(GpuConfig::h100(), model, 1);
    LongSightSystem ls(LongSightSystemConfig{}, model);

    TextTable t("Users served under a " +
                TextTable::num(kSloMsPerToken, 0) +
                " ms/token SLO (" + model.name + ")");
    t.setHeader({"Context", "1-GPU users", "1-GPU tok/s",
                 "LongSight users", "LongSight tok/s", "Capacity gain"});
    for (uint64_t ctx : {32768ull, 65536ull, 131072ull, 262144ull}) {
        const uint32_t gu = maxUsersUnderSlo(gpu, ctx, gpu.maxUsers(ctx));
        const uint32_t lu = maxUsersUnderSlo(ls, ctx, ls.maxUsers(ctx));
        const double gtput =
            gu ? gpu.decode(ctx, gu).tokensPerSecond : 0.0;
        const double ltput = lu ? ls.decode(ctx, lu).tokensPerSecond : 0.0;
        t.addRow({std::to_string(ctx / 1024) + "K",
                  gu ? std::to_string(gu) : "-",
                  gu ? TextTable::num(gtput, 0) : "-",
                  lu ? std::to_string(lu) : "-",
                  lu ? TextTable::num(ltput, 0) : "-",
                  (gu && lu)
                      ? TextTable::num(static_cast<double>(lu) / gu, 1) + "x"
                      : "-"});
    }
    t.print(std::cout);

    // Latency vs load curve at 128K context.
    TextTable c("Latency vs load at 128K context");
    c.setHeader({"Users", "LongSight [ms/tok]", "LongSight tok/s"});
    const uint64_t ctx = 131072;
    for (uint32_t users : {1u, 4u, 8u, 16u, 24u, 31u}) {
        const auto r = ls.decode(ctx, users);
        if (!r.feasible)
            break;
        c.addRow({std::to_string(users),
                  TextTable::num(r.perTokenLatencyUs / 1000.0, 1),
                  TextTable::num(r.tokensPerSecond, 0)});
    }
    c.print(std::cout);
    std::cout << "LongSight trades a modest latency increase for several\n"
                 "times the tenant capacity of a dense 1-GPU deployment\n"
                 "(Fig. 7's SLO argument).\n";
    return 0;
}

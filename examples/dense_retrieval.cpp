/**
 * @file
 * Dense retrieval on DReX — the device's *original* job (§2, [34]),
 * which LongSight repurposes for attention. Stores a corpus of
 * document embeddings in the device, trains an ITQ rotation, and
 * serves top-k similarity queries through the same SCF -> score ->
 * rank pipeline the attention offloads use. Reports recall against
 * exhaustive search and the share of the corpus the sign filter
 * pruned in memory — the RAG workload a LongSight deployment can
 * co-host on idle DReX capacity.
 *
 * Run:  ./build/examples/dense_retrieval
 */

#include <algorithm>
#include <iostream>

#include "core/attention.hh"
#include "core/itq.hh"
#include "core/topk.hh"
#include "drex/drex_device.hh"
#include "util/rng.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    constexpr uint32_t kDim = 128;
    constexpr size_t kCorpus = 20000;
    constexpr uint32_t kTopK = 10;

    // Clustered embeddings: documents group into topics, queries seek
    // a topic — the geometry dense retrieval actually faces.
    Rng rng(11);
    const uint32_t topics = 64;
    Matrix centers(topics, kDim, rng.gaussianVec(topics * kDim));
    Matrix corpus(kCorpus, kDim);
    std::vector<uint32_t> doc_topic(kCorpus);
    for (size_t i = 0; i < kCorpus; ++i) {
        const auto topic = static_cast<uint32_t>(rng.below(topics));
        doc_topic[i] = topic;
        for (uint32_t d = 0; d < kDim; ++d)
            corpus(i, d) = centers(topic, d) +
                0.6f * static_cast<float>(rng.gaussian());
    }

    // Load the corpus into DReX as one "context" (values unused here;
    // store the embeddings themselves so the response could return
    // them).
    DrexConfig cfg;
    cfg.numKvHeads = 1;
    cfg.numLayers = 1;
    cfg.headDim = kDim;
    DrexDevice dev(cfg);
    KvCache &db = dev.writeContext(0, 0, 0, corpus, corpus);
    db.setItqRotation(trainItqRotation(corpus, 20, rng));

    TextTable t("Dense retrieval on DReX (corpus " +
                std::to_string(kCorpus) + ", top-" +
                std::to_string(kTopK) + ")");
    t.setHeader({"SCF threshold", "Pruned in-DRAM", "Recall@10",
                 "Keys scored"});
    for (int th : {0, 72, 80, 86}) {
        double recall = 0.0, pruned = 0.0;
        uint64_t scored = 0;
        const int queries = 20;
        for (int qi = 0; qi < queries; ++qi) {
            const auto topic = static_cast<uint32_t>(rng.below(topics));
            std::vector<float> q(kDim);
            for (uint32_t d = 0; d < kDim; ++d)
                q[d] = centers(topic, d) +
                    0.6f * static_cast<float>(rng.gaussian());

            // Ground truth: exhaustive dot-product search.
            const auto scores =
                attentionScores(q.data(), corpus, 0, kCorpus, 1.0f);
            std::vector<uint32_t> ids(kCorpus);
            for (uint32_t i = 0; i < kCorpus; ++i)
                ids[i] = i;
            const auto truth = topkSelect(scores, ids, kTopK);

            // Device path: one offload over the whole corpus.
            Matrix qmat(1, kDim);
            qmat.setRow(0, q.data());
            const auto qf = db.toFilterSpace(q);
            Matrix qfmat(1, kDim);
            qfmat.setRow(0, qf.data());
            OffloadSpec spec;
            spec.sparseEnd = kCorpus;
            spec.numQueries = 1;
            spec.k = kTopK;
            spec.threshold = th;
            spec.cache = &db;
            spec.queries = &qmat;
            spec.filterQueries = &qfmat;
            AttentionRequest req;
            req.headOffloads.push_back(spec);
            dev.submit(std::move(req));
            const auto resp = dev.processAll();
            const auto &got = resp[0].headResults[0].topk[0];
            scored += resp[0].headResults[0].survivors;
            pruned += 1.0 -
                static_cast<double>(resp[0].headResults[0].survivors) /
                    kCorpus;

            int hits = 0;
            for (const auto &g : got)
                for (const auto &tr : truth)
                    hits += (g.index == tr.index);
            recall += static_cast<double>(hits) / kTopK;
        }
        t.addRow({std::to_string(th),
                  TextTable::num(100.0 * pruned / queries, 1) + "%",
                  TextTable::num(recall / queries, 3),
                  std::to_string(scored / queries)});
    }
    t.print(std::cout);
    std::cout << "The same PFU/NMA pipeline LongSight uses for attention "
                 "serves RAG-style\nretrieval: the sign filter prunes most "
                 "of the corpus in memory while the\nexhaustive rescoring "
                 "of survivors keeps recall high — DReX's original\n"
                 "design point, which is why repurposing it for the KV "
                 "cache works.\n";
    return 0;
}

/**
 * @file
 * Long-context assistant scenario: a single user whose conversation
 * (plus retrieved documents) keeps growing — the workload class the
 * paper's introduction motivates. Simulates steady-state decode at
 * checkpoints from 16K to 1M tokens on a 1-GPU baseline, a 2-GPU
 * data-parallel system, and LongSight (1 GPU + 1 DReX), printing
 * per-token latency, the LongSight latency breakdown, and where each
 * baseline hits its memory wall.
 *
 * Run:  ./build/examples/long_context_chat
 */

#include <iostream>

#include "model/model_config.hh"
#include "sim/baseline_gpu.hh"
#include "sim/longsight_system.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    const auto model = ModelConfig::llama3_8b();
    BaselineGpuSystem gpu1(GpuConfig::h100(), model, 1);
    BaselineGpuSystem gpu2(GpuConfig::h100(), model, 2);
    LongSightSystem ls(LongSightSystemConfig{}, model);

    TextTable t("Growing conversation, single user (" + model.name + ")");
    t.setHeader({"Context", "1-GPU [ms/tok]", "2-GPU [ms/tok]",
                 "LongSight [ms/tok]", "LS offload share"});
    for (uint64_t ctx : {16384ull, 65536ull, 262144ull, 524288ull,
                         1'000'000ull}) {
        auto cell = [&](auto &sys) -> std::string {
            const ServingResult r = sys.decode(ctx, 1);
            if (!r.feasible)
                return "OOM";
            return TextTable::num(r.perTokenLatencyUs / 1000.0, 2);
        };
        const ServingResult r = ls.decode(ctx, 1);
        const double share = r.feasible
            ? 100.0 *
                static_cast<double>(r.breakdown.drexExposed +
                                    r.breakdown.submit + r.breakdown.poll) /
                static_cast<double>(r.stepTime)
            : 0.0;
        t.addRow({std::to_string(ctx / 1024) + "K", cell(gpu1), cell(gpu2),
                  cell(ls), TextTable::num(share, 1) + "%"});
    }
    t.print(std::cout);

    // Detailed breakdown at the 1M-token checkpoint.
    const ServingResult r = ls.decode(1'000'000, 1);
    if (r.feasible) {
        TextTable b("LongSight per-token breakdown at 1M tokens [us]");
        b.setHeader({"Component", "Time", "Share"});
        auto row = [&](const char *name, Tick v) {
            b.addRow({name, TextTable::num(toMicroseconds(v)),
                      TextTable::num(100.0 * v / r.stepTime, 1) + "%"});
        };
        row("GPU non-attention (QKV/FFN/LM head)",
            r.breakdown.gpuNonAttention);
        row("runtime ITQ", r.breakdown.itq);
        row("GPU window attention (exposed)", r.breakdown.gpuWindowExposed);
        row("DReX offload (exposed)", r.breakdown.drexExposed);
        row("descriptor submit", r.breakdown.submit);
        row("completion polling", r.breakdown.poll);
        row("combined softmax + SV", r.breakdown.softmax);
        b.print(std::cout);
        std::cout << "A single GPU cannot hold this context at all; with "
                     "DReX the per-token\nlatency stays interactive ("
                  << TextTable::num(r.perTokenLatencyUs / 1000.0, 1)
                  << " ms) because only the window plus top-k\nvalues ever "
                     "cross back over CXL.\n";
    }
    return 0;
}

/**
 * @file
 * Tail-latency study: users arrive over time and decode concurrently,
 * so per-token latency varies with instantaneous load (§4: attention
 * requests sit on the critical path of generation). Runs the
 * event-driven session simulator against LongSight and the 1-GPU
 * dense baseline at a 128K context and reports the latency
 * distribution and SLO attainment.
 *
 * Run:  ./build/examples/slo_study
 */

#include <iostream>
#include <map>

#include "model/model_config.hh"
#include "sim/baseline_gpu.hh"
#include "sim/longsight_system.hh"
#include "sim/slo_sim.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    const auto model = ModelConfig::llama3_8b();
    const uint64_t ctx = 131072;

    LongSightSystem ls(LongSightSystemConfig{}, model);
    BaselineGpuSystem gpu(GpuConfig::h100(), model, 1);

    SloConfig scfg;
    scfg.users = 12;
    scfg.tokensPerUser = 48;
    scfg.meanInterarrival = 200 * kMillisecond;
    scfg.sloMs = 40.0;

    // Memoized service-time curves (decode() is deterministic per
    // user count).
    // Over-capacity batches are infeasible (KV does not fit); model
    // the resulting swap/requeue pain as a one-second step so SLO
    // attainment reflects the admission wall.
    auto service_for = [](auto &sys, uint64_t context) {
        auto cache = std::make_shared<std::map<uint32_t, Tick>>();
        return [&sys, context, cache](uint32_t active) -> Tick {
            const uint32_t users = std::max(active, 1u);
            auto it = cache->find(users);
            if (it != cache->end())
                return it->second;
            const ServingResult r = sys.decode(context, users);
            const Tick t = r.feasible ? r.stepTime : Tick(1) * kSecond;
            cache->emplace(users, t);
            return t;
        };
    };

    TextTable t("Tail latency at " + std::to_string(ctx / 1024) +
                "K context, " + std::to_string(scfg.users) +
                " arriving users (SLO " + TextTable::num(scfg.sloMs, 0) +
                " ms/token)");
    t.setHeader({"System", "p50 [ms]", "p99 [ms]", "tail>range",
                 "max [ms]", "SLO attainment", "Peak users"});

    struct Row
    {
        const char *name;
        SloResult r;
    };
    std::vector<Row> rows;
    rows.push_back(
        {"LongSight", runSloSimulation(scfg, service_for(ls, ctx))});
    rows.push_back(
        {"1-GPU dense", runSloSimulation(scfg, service_for(gpu, ctx))});

    for (const auto &row : rows) {
        // tail>range: fraction of samples beyond the histogram span;
        // nonzero means the p99 column is a lower bound.
        t.addRow({row.name,
                  TextTable::num(row.r.latencyHist.quantile(0.5), 1),
                  TextTable::num(row.r.latencyHist.quantile(0.99), 1),
                  TextTable::num(100.0 * row.r.tailOverflowFraction, 1) +
                      "%",
                  TextTable::num(row.r.tokenLatencyMs.max(), 1),
                  TextTable::num(100.0 * row.r.sloAttainment, 1) + "%",
                  std::to_string(row.r.peakConcurrency)});
    }
    t.print(std::cout);
    std::cout << "The dense baseline fits only " << gpu.maxUsers(ctx)
              << " users' KV at this context — excess arrivals queue and\n"
                 "blow the tail — while LongSight absorbs the whole burst\n"
                 "with DReX holding every context.\n";
    return 0;
}

/**
 * @file
 * Threshold-tuning walkthrough: runs the §8.1.3 loop — start with all
 * per-KV-head SCF thresholds at zero, repeatedly raise the threshold
 * of the head filtering worst, stop at the perplexity budget — and
 * prints the per-head result plus the quality/ratio trajectory.
 *
 * Run:  ./build/examples/threshold_tuning
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/threshold_tuner.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    constexpr uint32_t kDim = 64;
    constexpr size_t kContext = 8192;

    std::cout << "Building evaluation corpus (4 KV heads, "
              << kContext << " tokens)...\n";
    WorkloadConfig wcfg;
    wcfg.headDim = kDim;
    AlgoEvaluator eval(wcfg, 4, kContext, 16, 2024, 20);

    EvalConfig base;
    base.windowSize = 1024;
    base.sinkTokens = 16;
    base.topK = 256;
    base.useItq = true;

    // Trace the tuner's trajectory by wrapping the evaluator.
    TextTable trace("Tuning trajectory (budget: +5% perplexity)");
    trace.setHeader({"Eval#", "Thresholds", "dPPL%", "FilterRatio"});
    uint32_t calls = 0;
    auto evaluate = [&](const std::vector<int> &th) {
        EvalConfig cfg = base;
        cfg.thresholds = th;
        const EvalResult r = eval.evaluate(cfg);
        ++calls;
        if (calls % 8 == 1) {
            std::string ths;
            for (int t : th)
                ths += std::to_string(t) + " ";
            trace.addRow({std::to_string(calls), ths,
                          TextTable::num(r.pplIncreasePct, 2),
                          TextTable::num(r.filterRatio, 1) + "x"});
        }
        ThresholdEval ev;
        ev.pplIncreasePct = r.pplIncreasePct;
        ev.overallFilterRatio = r.filterRatio;
        ev.headFilterRatios = r.headFilterRatios;
        return ev;
    };

    ThresholdTuner tuner(5.0, static_cast<int>(kDim) / 16, 72);
    const TuneResult result = tuner.tune(evaluate, eval.numHeads(), kDim);
    trace.print(std::cout);

    TextTable t("Tuned per-KV-head thresholds");
    t.setHeader({"KV head", "Threshold (of " + std::to_string(kDim) + ")"});
    for (size_t h = 0; h < result.thresholds.size(); ++h)
        t.addRow({std::to_string(h),
                  std::to_string(result.thresholds[h])});
    t.print(std::cout);

    std::cout << "Final: filter ratio "
              << TextTable::num(result.filterRatio, 1) << "x at +"
              << TextTable::num(result.pplIncreasePct, 2)
              << "% perplexity (" << result.iterations
              << " evaluator calls).\n"
              << "Per-head thresholds differ because each head's score\n"
                 "distribution differs — the granularity §5.1 found stable.\n";
    return 0;
}

/**
 * @file
 * Module-replacement demo, mirroring the paper's artifact (§A.1):
 * two numerically identical transformer decoders — one with exact
 * dense attention, one with the LongSightAttn module swapped in —
 * process the same token stream. Shows per-step hidden-state
 * divergence at three sparsity settings and the filter work saved.
 *
 * Run:  ./build/examples/module_swap
 */

#include <cmath>
#include <iostream>

#include "model/decoder.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    DecoderConfig cfg;
    cfg.hiddenDim = 256;
    cfg.numLayers = 4;
    cfg.numQueryHeads = 8;
    cfg.numKvHeads = 2;
    cfg.headDim = 32;

    struct Setting
    {
        const char *name;
        uint32_t window, k;
        int threshold;
    };
    const Setting settings[] = {
        {"exact (k unbounded, TH=0)", 32, 1 << 20, 0},
        {"moderate (k=32, TH=12)", 32, 32, 12},
        {"aggressive (k=8, TH=20)", 8, 8, 20},
    };

    TextTable t("Dense decoder vs LongSight-swapped decoder "
                "(256 steps, 4 layers)");
    t.setHeader({"Setting", "Mean rel. divergence", "Max rel. divergence"});

    for (const Setting &s : settings) {
        LongSightConfig hybrid;
        hybrid.windowSize = s.window;
        hybrid.sinkTokens = 4;
        hybrid.topK = s.k;
        hybrid.defaultThreshold = s.threshold;

        SyntheticDecoder dense(cfg, AttentionMode::Dense);
        SyntheticDecoder sparse(cfg, AttentionMode::LongSight, hybrid);

        double sum_rel = 0.0, max_rel = 0.0;
        const int steps = 256;
        for (int step = 0; step < steps; ++step) {
            Rng erng(1000 + step);
            const auto e = erng.gaussianVec(cfg.hiddenDim);
            const auto a = dense.step(e);
            const auto b = sparse.step(e);
            double diff = 0, ref = 0;
            for (size_t i = 0; i < a.size(); ++i) {
                diff += (static_cast<double>(a[i]) - b[i]) *
                    (static_cast<double>(a[i]) - b[i]);
                ref += static_cast<double>(a[i]) * a[i];
            }
            const double rel = std::sqrt(diff / ref);
            sum_rel += rel;
            max_rel = std::max(max_rel, rel);
        }
        t.addRow({s.name, TextTable::num(sum_rel / steps, 5),
                  TextTable::num(max_rel, 5)});
    }
    t.print(std::cout);
    std::cout << "With generous settings the swapped module is numerically "
                 "transparent;\ntightening k and the SCF threshold trades "
                 "bounded hidden-state drift for\nthe filter ratios the "
                 "figures report — the same trade the paper makes on\n"
                 "real Llama-3 checkpoints.\n";
    return 0;
}

/**
 * @file
 * Quickstart: the LongSight hybrid attention API in ~60 lines.
 *
 * Builds a synthetic 8K-token context for one KV head, trains an ITQ
 * rotation, runs hybrid dense-sparse attention at several thresholds,
 * and compares against exact dense attention: retained softmax mass,
 * output error, and the Fig.-3 filter ratio.
 *
 * Run:  ./build/examples/quickstart
 */

#include <cmath>
#include <iostream>

#include "core/attention.hh"
#include "core/hybrid_attention.hh"
#include "core/itq.hh"
#include "core/kv_cache.hh"
#include "model/workload.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    constexpr uint32_t kDim = 64;
    constexpr size_t kContext = 8192;

    // 1. A synthetic context with LLM-like key statistics.
    WorkloadConfig wcfg;
    wcfg.headDim = kDim;
    HeadWorkload workload(wcfg, Rng(7));
    workload.generate(kContext);

    // 2. Load it into a KV cache and install an ITQ rotation trained
    //    on ~1K post-RoPE keys and queries (§5.4).
    KvCache cache(kDim);
    cache.appendAll(workload.keys(), workload.values());
    Matrix train(1024, kDim);
    for (size_t i = 0; i < 896; ++i)
        train.setRow(i, cache.keys().row(i * kContext / 896));
    for (size_t i = 0; i < 128; ++i) {
        const auto q = workload.drawQuery();
        train.setRow(896 + i, q.data());
    }
    Rng itq_rng(42);
    cache.setItqRotation(trainItqRotation(train, 20, itq_rng));

    // 3. Hybrid attention: 1024-token window, 16 sinks, top-256.
    LongSightConfig cfg;
    cfg.windowSize = 1024;
    cfg.sinkTokens = 16;
    cfg.topK = 256;
    LongSightAttn attn(cfg, /*num_kv_heads=*/1);

    TextTable t("LongSight quickstart: hybrid vs dense attention (" +
                std::to_string(kContext) + " tokens)");
    t.setHeader({"SCF threshold", "FilterRatio", "RetainedMass",
                 "OutputErr", "KeysScored"});
    const float scale = workload.attentionScale();
    for (int th : {0, 32, 40, 44}) {
        attn.setThreshold(0, th);
        FilterStats fs;
        double retained = 0.0, err = 0.0;
        const int trials = 8;
        // Re-draw the same query stream per threshold for fairness.
        HeadWorkload probe(wcfg, Rng(7));
        probe.generate(kContext);
        for (int i = 0; i < trials; ++i) {
            const auto q = probe.drawQuery();
            const auto hybrid = attn.computeHead(q, cache, 0);
            LongSightAttn::recordStats(hybrid, fs);
            const auto dense = denseAttention(q.data(), cache.keys(),
                                              cache.values(), scale);
            double mass = 0.0;
            for (uint32_t idx : hybrid.attended)
                mass += dense.probs[idx];
            retained += mass;
            double e2 = 0.0, ref = 0.0;
            for (size_t d = 0; d < kDim; ++d) {
                const double diff = hybrid.output[d] - dense.output[d];
                e2 += diff * diff;
                ref += dense.output[d] * dense.output[d];
            }
            err += std::sqrt(e2 / ref);
        }
        t.addRow({std::to_string(th),
                  TextTable::num(fs.filterRatio(), 1) + "x",
                  TextTable::num(retained / trials, 4),
                  TextTable::num(err / trials, 4),
                  std::to_string(fs.survivorKeys / trials)});
    }
    t.print(std::cout);
    std::cout << "Higher thresholds filter more keys (higher ratio) while\n"
                 "the ITQ-rotated sign bits keep the retained softmax mass\n"
                 "near 1.0 — the core LongSight trade-off.\n";
    return 0;
}

/**
 * @file
 * Command-line driver over the simulation stack — the "what would
 * this deployment do" tool. Subcommands:
 *
 *   serve    --model 8b --context 131072 --users 16 --system longsight
 *            decode throughput / latency / breakdown for one config
 *   capacity --model 8b --context 1000000
 *            max users per system at a context length
 *   offload  --model 8b --context 131072
 *            single DReX offload latency breakdown (Fig. 8 style)
 *   quality  --context 8192 --window 1024 --k 256 --threshold 40 --itq
 *            algorithm quality/filter ratio for one configuration
 *
 * Run:  ./build/examples/longsight_cli serve --model 8b --users 8
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "sim/attacc_system.hh"
#include "sim/baseline_gpu.hh"
#include "sim/longsight_system.hh"
#include "sim/stats_report.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace longsight {
namespace {

ModelConfig
modelFor(const std::string &name)
{
    if (name == "1b")
        return ModelConfig::llama3_1b();
    if (name == "8b")
        return ModelConfig::llama3_8b();
    fatal("unknown --model '", name, "' (use 1b or 8b)");
}

int
cmdServe(const Flags &flags)
{
    const auto model = modelFor(flags.getString("model", "8b"));
    const auto ctx =
        static_cast<uint64_t>(flags.getInt("context", 131072));
    const auto users = static_cast<uint32_t>(flags.getInt("users", 8));
    const std::string system = flags.getString("system", "longsight");

    ServingResult r;
    if (system == "longsight") {
        LongSightSystem sys(LongSightSystemConfig{}, model);
        r = sys.decode(ctx, users);
    } else if (system == "1gpu" || system == "2gpu") {
        BaselineGpuSystem sys(GpuConfig::h100(), model,
                              system == "2gpu" ? 2 : 1);
        r = sys.decode(ctx, users);
    } else if (system == "attacc") {
        AttAccSystem sys(GpuConfig::h100(), model);
        r = sys.decode(ctx, users);
    } else if (system == "window") {
        SlidingWindowSystem sys(GpuConfig::h100(), model, 1024, 16);
        r = sys.decode(ctx, users);
    } else {
        fatal("unknown --system '", system, "'");
    }

    if (!r.feasible) {
        std::cout << "infeasible: " << r.limitedBy << "\n";
        return 1;
    }
    TextTable t("serve: " + model.name + ", " + fmtTokens(ctx) + " ctx, " +
                std::to_string(users) + " users, " + system);
    t.setHeader({"Metric", "Value"});
    t.addRow({"throughput", TextTable::num(r.tokensPerSecond, 1) +
                                " tokens/s"});
    t.addRow({"per-token latency",
              TextTable::num(r.perTokenLatencyUs / 1000.0, 2) + " ms"});
    t.addRow({"GPU non-attention",
              TextTable::num(toMicroseconds(r.breakdown.gpuNonAttention)) +
                  " us"});
    t.addRow({"DReX exposed",
              TextTable::num(toMicroseconds(r.breakdown.drexExposed)) +
                  " us"});
    t.addRow({"softmax+SV",
              TextTable::num(toMicroseconds(r.breakdown.softmax)) + " us"});
    t.print(std::cout);
    return 0;
}

int
cmdCapacity(const Flags &flags)
{
    const auto model = modelFor(flags.getString("model", "8b"));
    const auto ctx =
        static_cast<uint64_t>(flags.getInt("context", 1'000'000));
    BaselineGpuSystem g1(GpuConfig::h100(), model, 1);
    BaselineGpuSystem g2(GpuConfig::h100(), model, 2);
    AttAccSystem aa(GpuConfig::h100(), model);
    LongSightSystem ls(LongSightSystemConfig{}, model);
    TextTable t("capacity at " + fmtTokens(ctx) + " (" + model.name + ")");
    t.setHeader({"System", "Max users"});
    t.addRow({"1-GPU", std::to_string(g1.maxUsers(ctx))});
    t.addRow({"2-GPU", std::to_string(g2.maxUsers(ctx))});
    t.addRow({"AttAcc", std::to_string(aa.maxUsers(ctx))});
    t.addRow({"LongSight", std::to_string(ls.maxUsers(ctx))});
    t.print(std::cout);
    return 0;
}

int
cmdOffload(const Flags &flags)
{
    const auto model = modelFor(flags.getString("model", "8b"));
    const auto ctx =
        static_cast<uint64_t>(flags.getInt("context", 131072));
    LongSightSystem ls(LongSightSystemConfig{}, model);
    if (ls.sparseTokens(ctx) == 0) {
        std::cout << "context fits in the dense window; no offload\n";
        return 0;
    }
    const OffloadObservation o = ls.observeOffload(ctx);
    const OffloadTiming &b = o.result.timing;
    TextTable t("offload at " + fmtTokens(ctx) + " (" + model.name + ")");
    t.setHeader({"Phase", "us"});
    t.addRow({"address gen", TextTable::num(toMicroseconds(b.addrGen))});
    t.addRow({"PFU filter", TextTable::num(toMicroseconds(b.filter))});
    t.addRow({"bitmap read",
              TextTable::num(toMicroseconds(b.bitmapRead))});
    t.addRow({"scoring", TextTable::num(toMicroseconds(b.score))});
    t.addRow({"ranking", TextTable::num(toMicroseconds(b.rank))});
    t.addRow({"value read", TextTable::num(toMicroseconds(b.valueRead))});
    t.addRow({"value CXL",
              TextTable::num(toMicroseconds(o.cxlValueTime))});
    t.print(std::cout);

    if (flags.getBool("stats")) {
        // Re-run the offload against a visible device so its DRAM
        // activity can be dumped (observeOffload uses a private one).
        DrexConfig dc;
        dc.numKvHeads = model.numKvHeads;
        dc.numLayers = model.numLayers;
        dc.headDim = model.headDim;
        DrexDevice dev(dc);
        OffloadSpec spec;
        spec.sparseEnd = ls.sparseTokens(ctx);
        spec.survivorFraction =
            ls.survivorFraction(ls.sparseTokens(ctx));
        dev.nma(0).process(0, spec);
        StatsReport report("offload DRAM activity");
        report.addDevice("drex", dev);
        report.print(std::cout);
    }
    return 0;
}

int
cmdQuality(const Flags &flags)
{
    WorkloadConfig wcfg;
    wcfg.headDim = static_cast<uint32_t>(flags.getInt("dim", 64));
    const auto ctx = static_cast<size_t>(flags.getInt("context", 8192));
    AlgoEvaluator eval(wcfg, 2, ctx, 12,
                       static_cast<uint64_t>(flags.getInt("seed", 1)),
                       flags.getBool("itq") ? 20 : 0);
    EvalConfig cfg;
    cfg.windowSize = static_cast<uint32_t>(flags.getInt("window", 1024));
    cfg.topK = static_cast<uint32_t>(flags.getInt("k", 1024));
    cfg.sinkTokens = static_cast<uint32_t>(flags.getInt("sinks", 16));
    cfg.useItq = flags.getBool("itq");
    cfg.thresholds.assign(
        eval.numHeads(),
        static_cast<int>(flags.getInt("threshold", 0)));
    const EvalResult r = eval.evaluate(cfg);
    TextTable t("quality at " + fmtTokens(ctx));
    t.setHeader({"Metric", "Value"});
    t.addRow({"filter ratio", TextTable::num(r.filterRatio, 1) + "x"});
    t.addRow({"sparsity", TextTable::num(100 * r.sparsity, 2) + "%"});
    t.addRow({"lost softmax mass", TextTable::num(r.lostMass, 4)});
    t.addRow({"perplexity increase",
              TextTable::num(r.pplIncreasePct, 2) + "%"});
    t.print(std::cout);
    return 0;
}

int
usage()
{
    std::cout <<
        "usage: longsight_cli <serve|capacity|offload|quality> [flags]\n"
        "  serve    --model 1b|8b --context N --users N --system "
        "longsight|1gpu|2gpu|attacc|window\n"
        "  capacity --model 1b|8b --context N\n"
        "  offload  --model 1b|8b --context N\n"
        "  quality  --context N --window N --k N --threshold N [--itq]\n"
        "  common   --threads N (host worker threads; default = all "
        "cores, 1 = serial)\n";
    return 2;
}

} // namespace
} // namespace longsight

int
main(int argc, char **argv)
{
    using namespace longsight;
    Flags flags(argc, argv);
    // 0 = all hardware threads; 1 = exact serial execution. Results
    // are bit-identical for any value (see DESIGN.md).
    ThreadPool::configureGlobal(
        static_cast<unsigned>(flags.getInt("threads", 0)));
    if (flags.positional().empty())
        return usage();
    const std::string cmd = flags.positional()[0];
    int rc;
    if (cmd == "serve")
        rc = cmdServe(flags);
    else if (cmd == "capacity")
        rc = cmdCapacity(flags);
    else if (cmd == "offload")
        rc = cmdOffload(flags);
    else if (cmd == "quality")
        rc = cmdQuality(flags);
    else
        return usage();
    for (const auto &name : flags.unconsumed())
        warn("unused flag --", name);
    return rc;
}

/**
 * @file
 * Reproduces Figure 3: non-window KV-cache filter ratios for
 * LongSight's sparse attention at a <= 5 % perplexity budget, in three
 * algorithm variants —
 *
 *   (a) baseline sparse attention (raw sign bits, no window),
 *   (b) hybrid: + 1024-token dense sliding window and 16 sinks,
 *   (c) hybrid + ITQ rotation,
 *
 * each at k = 128 and k = 1024, across context lengths, for both
 * Table-1 model shapes. Cells the budget cannot be met in are marked
 * 'X' exactly as in the paper. Also prints Table 1 for reference.
 *
 * Contexts are scaled down from the paper's 4K-128K sweep (see
 * DESIGN.md "Scaling honesty"); the qualitative claims under test:
 *   - k=128 fails the budget at long contexts without a window (3a),
 *   - the hybrid window restores feasibility and raises the ratio (3b),
 *   - ITQ multiplies the achievable ratio several-fold (3c).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "util/table.hh"

namespace longsight {
namespace {

struct Variant
{
    const char *name;
    uint32_t window;
    uint32_t sinks;
    uint32_t k;
    bool itq;
};

void
printTable1()
{
    TextTable t("Table 1: model parameters");
    t.setHeader({"Model", "Attention", "Q/KV heads", "Head dim", "Layers",
                 "Quant."});
    for (const auto &m :
         {ModelConfig::llama3_1b(), ModelConfig::llama3_8b()}) {
        t.addRow({m.name, "GQA",
                  std::to_string(m.numQueryHeads) + "/" +
                      std::to_string(m.numKvHeads),
                  std::to_string(m.headDim), std::to_string(m.numLayers),
                  "BF16"});
    }
    t.print(std::cout);
}

void
runModel(const ModelConfig &model, const std::vector<size_t> &contexts)
{
    const Variant variants[] = {
        {"sparse k=128", 0, 0, 128, false},
        {"sparse k=1024", 0, 0, 1024, false},
        {"hybrid k=128", 1024, 16, 128, false},
        {"hybrid k=1024", 1024, 16, 1024, false},
        {"hybrid+ITQ k=128", 1024, 16, 128, true},
        {"hybrid+ITQ k=1024", 1024, 16, 1024, true},
    };

    TextTable t("Figure 3 (" + model.name +
                "): KV cache filter ratio at <= 5% perplexity increase");
    std::vector<std::string> header = {"Variant"};
    for (size_t ctx : contexts)
        header.push_back(fmtTokens(ctx));
    t.setHeader(header);

    // One evaluator per context, shared by all variants. The default
    // workload statistics sit between the pgLike/wiki2Like presets —
    // Fig. 7's "averaged across both datasets" regime.
    std::vector<AlgoEvaluator> evals;
    WorkloadConfig wcfg;
    wcfg.headDim = model.headDim;
    for (size_t ctx : contexts)
        evals.emplace_back(wcfg, 4, ctx, 16,
                           0xF16'3000 + model.headDim + ctx, 20);

    const int step = static_cast<int>(model.headDim) / 16;
    for (const Variant &v : variants) {
        std::vector<std::string> row = {v.name};
        for (size_t c = 0; c < contexts.size(); ++c) {
            EvalConfig base;
            base.windowSize = v.window;
            base.sinkTokens = v.sinks;
            base.topK = v.k;
            base.useItq = v.itq;
            const auto tuned =
                tuneThresholds(evals[c], base, 5.0, step, 72);
            if (!tuned) {
                row.push_back("X");
            } else {
                row.push_back(TextTable::num(tuned->filterRatio, 1) + "x");
            }
        }
        t.addRow(row);
    }
    t.print(std::cout);
}

} // namespace
} // namespace longsight

int
main()
{
    using namespace longsight;
    printTable1();
    std::cout << "(contexts scaled from the paper's 4K-128K sweep; "
                 "'X' = perplexity budget unreachable)\n\n";
    runModel(ModelConfig::llama3_1b(), {2048, 8192, 32768});
    runModel(ModelConfig::llama3_8b(), {2048, 8192, 32768});
    return 0;
}

/**
 * @file
 * Energy-per-token extension of §9.4: decode energy for the dense
 * 1-GPU baseline vs LongSight across context lengths, broken into
 * GPU / DReX / CXL components. The paper reports only peak power;
 * this bench shows the consequence for serving cost — dense attention
 * energy grows linearly with context (full KV streamed from HBM per
 * token), while LongSight's grows with the filtered survivor count.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "sim/energy.hh"
#include "util/table.hh"

namespace longsight {
namespace {

void
runModel(const ModelConfig &model)
{
    EnergyModel em(EnergyConstants{}, model);
    EnergyHybridConfig hybrid;

    TextTable t("Energy per generated token (" + model.name +
                ") [mJ], 20x filter ratio");
    t.setHeader({"Context", "Dense GPU", "LongSight total", "LS GPU",
                 "LS DReX", "LS CXL", "LS vs dense"});
    for (uint64_t ctx : {32768ull, 131072ull, 524288ull, 1'000'000ull}) {
        const TokenEnergy dense = em.denseGpuToken(ctx);
        const TokenEnergy ls = em.longSightToken(ctx, hybrid);
        t.addRow({fmtTokens(ctx), TextTable::num(dense.totalJ() * 1e3, 1),
                  TextTable::num(ls.totalJ() * 1e3, 1),
                  TextTable::num(ls.gpuJ * 1e3, 1),
                  TextTable::num(ls.drexJ * 1e3, 1),
                  TextTable::num(ls.cxlJ * 1e3, 1),
                  TextTable::num(dense.totalJ() / ls.totalJ(), 1) + "x"});
    }
    t.print(std::cout);
}

} // namespace
} // namespace longsight

int
main()
{
    using namespace longsight;
    runModel(ModelConfig::llama3_1b());
    runModel(ModelConfig::llama3_8b());
    std::cout << "Dense decode streams the full KV cache from HBM every "
                 "token; LongSight\ntouches sign bits for the whole "
                 "history but full-precision data only for\nsurvivors — "
                 "the energy gap widens with context like the latency gap "
                 "in Fig. 7.\n";
    return 0;
}

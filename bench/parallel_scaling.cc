/**
 * @file
 * Host-parallelism scaling bench: end-to-end functional decode
 * pipeline throughput (prefill + decode steps) versus `--threads`, at
 * 8k and 32k contexts for the Table-1 model shapes. Emits
 * BENCH_parallel.json with tokens/sec per (model, context, thread
 * count) plus a bit-identity verdict: every thread count must produce
 * exactly the same attention verification results and filter
 * statistics as the serial run (the parallel execution layer's
 * determinism contract).
 *
 * Speedup is relative to --threads 1 and is only meaningful on a
 * multi-core host; the JSON records hardware_threads so a single-core
 * CI container's ~1x numbers are self-explaining.
 *
 * Run:  ./build/bench/parallel_scaling
 *       ./build/bench/parallel_scaling --model 8b --contexts 32768 \
 *           --threads 1,8 --steps 2
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "sim/decode_pipeline.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace longsight {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

std::vector<uint64_t>
parseList(const std::string &csv)
{
    std::vector<uint64_t> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(std::stoull(item));
    LS_ASSERT(!out.empty(), "empty list '", csv, "'");
    return out;
}

/** What one (model, context, threads) run produced. */
struct RunResult
{
    double prefillSec = 0.0;
    double decodeSec = 0.0;
    std::vector<PipelineStepResult> steps;
    uint64_t flushed = 0;
};

/** The cross-thread-count identity check covers every step verdict. */
bool
identical(const RunResult &a, const RunResult &b)
{
    if (a.flushed != b.flushed || a.steps.size() != b.steps.size())
        return false;
    for (size_t i = 0; i < a.steps.size(); ++i) {
        const auto &x = a.steps[i];
        const auto &y = b.steps[i];
        if (x.offloadsIssued != y.offloadsIssued ||
            x.tokensFlushed != y.tokensFlushed ||
            x.deviceMatchedSoftware != y.deviceMatchedSoftware ||
            x.minRetainedMass != y.minRetainedMass)
            return false;
    }
    return true;
}

RunResult
runOnce(const ModelConfig &model, uint64_t context, unsigned threads,
        uint32_t steps, bool train_itq)
{
    ThreadPool::configureGlobal(threads);

    DrexConfig dcfg;
    dcfg.numKvHeads = model.numKvHeads;
    dcfg.numLayers = model.numLayers;
    dcfg.headDim = model.headDim;
    DrexDevice dev(dcfg);

    PipelineConfig cfg;
    cfg.numLayers = model.numLayers;
    cfg.numQueryHeads = model.numQueryHeads;
    cfg.numKvHeads = model.numKvHeads;
    cfg.headDim = model.headDim;
    cfg.hybrid.windowSize = 1024;
    cfg.hybrid.sinkTokens = 16;
    cfg.hybrid.topK = 1024;
    cfg.hybrid.defaultThreshold = static_cast<int>(model.headDim / 4);
    cfg.trainItq = train_itq;
    cfg.seed = 7;
    DecodePipeline pipe(cfg, dev, 0);

    RunResult r;
    auto t0 = std::chrono::steady_clock::now();
    pipe.prefill(context);
    r.prefillSec = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    for (uint32_t s = 0; s < steps; ++s)
        r.steps.push_back(pipe.decodeStep());
    r.decodeSec = secondsSince(t0);
    r.flushed = pipe.flushedTokens();
    return r;
}

struct Row
{
    std::string model;
    uint64_t context;
    unsigned threads;
    RunResult run;
    double speedup;
    bool bitIdentical;
};

void
writeJson(const std::string &path, const std::vector<Row> &rows,
          uint32_t steps)
{
    std::ofstream os(path);
    LS_ASSERT(os.good(), "cannot write ", path);
    // benchMeta's thread count reflects the last configured pool; the
    // per-row "threads" field is the one that varies by design.
    os << "{\n" << benchMeta("parallel_scaling")
       << "  \"hardware_threads\": " << ThreadPool::hardwareThreads()
       << ",\n  \"decode_steps\": " << steps << ",\n  \"results\": [\n";
    // A multi-thread row on a single-core host measures scheduling
    // contention, not scaling; tag it so downstream tooling can drop
    // it instead of reading the ~1x "speedup" as a regression. The
    // bit-identity verdicts stay meaningful (and enforced) regardless.
    const bool single_core = ThreadPool::hardwareThreads() == 1;
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const double total = r.run.prefillSec + r.run.decodeSec;
        os << "    {\"model\": \"" << r.model << "\", \"context\": "
           << r.context << ", \"threads\": " << r.threads
           << ", \"oversubscribed\": "
           << (single_core && r.threads > 1 ? "true" : "false")
           << ", \"prefill_s\": " << r.run.prefillSec
           << ", \"decode_s\": " << r.run.decodeSec
           << ", \"prefill_tok_per_s\": "
           << static_cast<double>(r.context) / r.run.prefillSec
           << ", \"decode_tok_per_s\": "
           << static_cast<double>(steps) / r.run.decodeSec
           << ", \"total_s\": " << total << ", \"speedup_vs_1\": "
           << r.speedup << ", \"bit_identical\": "
           << (r.bitIdentical ? "true" : "false") << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace
} // namespace longsight

int
main(int argc, char **argv)
{
    using namespace longsight;
    Flags flags(argc, argv);
    const std::string model_sel = flags.getString("model", "both");
    const auto contexts =
        parseList(flags.getString("contexts", "8192,32768"));
    const auto thread_list =
        parseList(flags.getString("threads", "1,2,4,8"));
    const auto steps =
        static_cast<uint32_t>(flags.getInt("steps", 2));
    const bool train_itq = flags.getBool("itq", false);
    const std::string out =
        flags.getString("out", "BENCH_parallel.json");
    const auto leftover = flags.unconsumed();
    LS_ASSERT(leftover.empty(), "unknown flag --", leftover.front());

    std::vector<ModelConfig> models;
    if (model_sel == "1b" || model_sel == "both")
        models.push_back(ModelConfig::llama3_1b());
    if (model_sel == "8b" || model_sel == "both")
        models.push_back(ModelConfig::llama3_8b());
    LS_ASSERT(!models.empty(), "unknown --model '", model_sel,
              "' (use 1b, 8b, or both)");

    std::vector<Row> rows;
    for (const auto &model : models) {
        for (uint64_t ctx : contexts) {
            TextTable t("parallel scaling: " + model.name + ", " +
                        fmtTokens(ctx) + " ctx, " +
                        std::to_string(steps) + " decode steps");
            t.setHeader({"Threads", "Prefill [s]", "Decode [s]",
                         "Prefill tok/s", "Speedup", "BitIdentical"});
            RunResult ref;
            bool have_ref = false;
            double ref_total = 0.0;
            for (unsigned threads : thread_list) {
                Row row;
                row.model = model.name;
                row.context = ctx;
                row.threads = threads;
                row.run = runOnce(model, ctx, threads, steps, train_itq);
                const double total =
                    row.run.prefillSec + row.run.decodeSec;
                if (!have_ref) {
                    row.speedup = 1.0;
                    row.bitIdentical = true;
                    ref = row.run;
                    ref_total = total;
                    have_ref = true;
                } else {
                    row.speedup = ref_total / total;
                    row.bitIdentical = identical(ref, row.run);
                }
                rows.push_back(row);
                const Row &r = rows.back();
                t.addRow({std::to_string(threads),
                          TextTable::num(r.run.prefillSec, 2),
                          TextTable::num(r.run.decodeSec, 2),
                          TextTable::num(static_cast<double>(ctx) /
                                             r.run.prefillSec,
                                         0),
                          TextTable::num(r.speedup, 2),
                          r.bitIdentical ? "yes" : "NO"});
            }
            t.print(std::cout);
        }
    }

    writeJson(out, rows, steps);
    std::cout << "wrote " << out << "\n";
    if (ThreadPool::hardwareThreads() == 1)
        std::cout << "note: single-core host; speedups are expected "
                     "to be ~1x here and only meaningful on "
                     "multi-core hardware\n";

    for (const Row &r : rows)
        if (!r.bitIdentical) {
            std::cerr << "FAIL: thread count " << r.threads
                      << " diverged from the serial run\n";
            return 1;
        }
    return 0;
}

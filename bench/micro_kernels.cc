/**
 * @file
 * google-benchmark micro-kernels for LongSight's hot paths: sign
 * concordance, SCF filtering, top-k maintenance, ITQ training steps,
 * PFU block filtering, DRAM channel streaming, striped package reads,
 * CXL transfers, softmax, and the dense-attention reference kernel.
 *
 * After the google benchmarks, a scalar-vs-SIMD comparison pass times
 * the batch scan, survivor-scoring, fused scan->score->select,
 * GQA-group multi-query (batchScanMulti / batchScoreSelectMulti, four
 * queries per pass), and INT8 quantized-scoring (quant_dot, int8_dot,
 * fused int8_score_select — scalar / AVX2 maddubs / AVX-512 VNNI)
 * kernels on every backend this host supports,
 * verifies the results are bit-identical to the scalar backend (the
 * fused kernel against the unfused scan + dot + topkSelect pipeline,
 * and every multi-query output against the scalar single-query result
 * for the same query), and writes BENCH_kernels.json. Exits nonzero
 * if any backend's survivor set, score vector, fused top-k, or
 * grouped per-query result differs from scalar — this is the
 * bit-identity gate CI's bench-smoke job enforces.
 *
 * Run:  ./build/bench/micro_kernels
 *       ./build/bench/micro_kernels --keys 4096 --reps 3 \
 *           --benchmark_filter=BM_Batch --out BENCH_kernels.json
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/attention.hh"
#include "core/itq.hh"
#include "core/scf.hh"
#include "core/topk.hh"
#include "cxl/link.hh"
#include "dram/package.hh"
#include "drex/pfu.hh"
#include "tensor/kernels.hh"
#include "tensor/quantized.hh"
#include "tensor/sign_matrix.hh"
#include "tensor/softmax.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

void
BM_SignConcordance(benchmark::State &state)
{
    const size_t d = static_cast<size_t>(state.range(0));
    Rng rng(1);
    const auto a = rng.gaussianVec(d);
    const auto b = rng.gaussianVec(d);
    const SignBits sa(a.data(), d), sb(b.data(), d);
    for (auto _ : state)
        benchmark::DoNotOptimize(sa.concordance(sb));
}
BENCHMARK(BM_SignConcordance)->Arg(64)->Arg(128);

void
BM_ScfFilter4K(benchmark::State &state)
{
    const size_t d = static_cast<size_t>(state.range(0));
    const size_t n = 4096;
    Rng rng(2);
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const auto signs = packSignRows(keys.data(), n, d);
    const auto q = rng.gaussianVec(d);
    const SignBits qs(q.data(), d);
    for (auto _ : state) {
        auto survivors = scfFilter(qs, signs, static_cast<int>(d) / 2);
        benchmark::DoNotOptimize(survivors);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScfFilter4K)->Arg(64)->Arg(128);

void
BM_TopKStream(benchmark::State &state)
{
    const size_t n = 65536;
    Rng rng(3);
    std::vector<float> scores(n);
    for (auto &s : scores)
        s = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        TopK acc(static_cast<size_t>(state.range(0)));
        for (size_t i = 0; i < n; ++i)
            acc.push(scores[i], static_cast<uint32_t>(i));
        benchmark::DoNotOptimize(acc.size());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopKStream)->Arg(128)->Arg(1024);

void
BM_ItqIteration(benchmark::State &state)
{
    const size_t d = static_cast<size_t>(state.range(0));
    Rng rng(4);
    const Matrix data(1024, d, rng.gaussianVec(1024 * d));
    for (auto _ : state) {
        Rng local(5);
        benchmark::DoNotOptimize(trainItqRotation(data, 1, local));
    }
}
BENCHMARK(BM_ItqIteration)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void
BM_PfuFilterBlock(benchmark::State &state)
{
    const size_t d = 128;
    Rng rng(6);
    const Matrix keys(128, d, rng.gaussianVec(128 * d));
    const auto signs = packSignRows(keys.data(), 128, d);
    const auto q = rng.gaussianVec(d);
    const std::vector<SignBits> qs = {SignBits(q.data(), d)};
    for (auto _ : state) {
        auto bm = Pfu::filterBlock(qs, signs.data(), 128, 64);
        benchmark::DoNotOptimize(bm);
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_PfuFilterBlock);

void
BM_DramStreamingReads(benchmark::State &state)
{
    const LpddrTimings t;
    for (auto _ : state) {
        DramChannel ch(t);
        Tick done = 0;
        for (uint32_t i = 0; i < 1024; ++i)
            done = ch.read(0, i % t.banksPerChannel, i / 64, 256);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DramStreamingReads);

void
BM_PackageStripedRead(benchmark::State &state)
{
    const LpddrTimings t;
    for (auto _ : state) {
        DramPackage pkg(t, 8);
        Tick done = 0;
        for (uint32_t i = 0; i < 512; ++i)
            done = pkg.readStriped(0, i % 128, i / 128, 256);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_PackageStripedRead);

void
BM_CxlBulkRead(benchmark::State &state)
{
    for (auto _ : state) {
        CxlLink link(CxlConfig{});
        Tick done = 0;
        for (int i = 0; i < 256; ++i)
            done = link.bulkRead(0, 4096);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_CxlBulkRead);

void
BM_Softmax(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Rng rng(7);
    std::vector<float> base(n);
    for (auto &x : base)
        x = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        std::vector<float> s = base;
        softmaxInPlace(s);
        benchmark::DoNotOptimize(s.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Softmax)->Arg(1024)->Arg(4096);

void
BM_DenseAttention(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    const size_t d = 64;
    Rng rng(8);
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const Matrix values(n, d, rng.gaussianVec(n * d));
    const auto q = rng.gaussianVec(d);
    for (auto _ : state) {
        auto r = denseAttention(q.data(), keys, values, 0.125f);
        benchmark::DoNotOptimize(r.output.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DenseAttention)->Arg(1024)->Arg(8192);

void
BM_BatchScan4K(benchmark::State &state)
{
    const size_t d = static_cast<size_t>(state.range(0));
    const size_t n = 4096;
    Rng rng(2);
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const SignMatrix signs = SignMatrix::pack(keys.data(), n, d);
    const auto q = rng.gaussianVec(d);
    const SignBits qs(q.data(), d);
    std::vector<uint32_t> survivors;
    survivors.reserve(n);
    for (auto _ : state) {
        survivors.clear();
        batchConcordanceScan(qs, signs, 0, n, static_cast<int>(d) / 2,
                             survivors);
        benchmark::DoNotOptimize(survivors);
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetLabel(kernelBackendName(activeKernelBackend()));
}
BENCHMARK(BM_BatchScan4K)->Arg(64)->Arg(128);

void
BM_BatchDotGather(benchmark::State &state)
{
    const size_t d = static_cast<size_t>(state.range(0));
    const size_t n = 4096;
    Rng rng(9);
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const auto q = rng.gaussianVec(d);
    // Every other key survives: the typical post-SCF gather shape.
    std::vector<uint32_t> idx;
    for (size_t i = 0; i < n; i += 2)
        idx.push_back(static_cast<uint32_t>(i));
    std::vector<float> out(idx.size());
    for (auto _ : state) {
        batchDotScaleAt(q.data(), keys, idx.data(), idx.size(), 0.125f,
                        out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * idx.size());
    state.SetLabel(kernelBackendName(activeKernelBackend()));
}
BENCHMARK(BM_BatchDotGather)->Arg(64)->Arg(128);

void
BM_FusedScoreSelect(benchmark::State &state)
{
    const size_t d = static_cast<size_t>(state.range(0));
    const size_t n = 4096;
    const size_t k = 128;
    Rng rng(2);
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const SignMatrix signs = SignMatrix::pack(keys.data(), n, d);
    const auto q = rng.gaussianVec(d);
    std::vector<uint64_t> qw(signs.wordsPerRow());
    packSigns(q.data(), d, qw.data());
    std::vector<ScoredIndex> out(k);
    for (auto _ : state) {
        const size_t m = batchScoreSelect(
            qw.data(), signs, 0, n, static_cast<int>(d) / 2, q.data(),
            keys, 0.125f, k, out.data());
        benchmark::DoNotOptimize(m);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.SetLabel(kernelBackendName(activeKernelBackend()));
}
BENCHMARK(BM_FusedScoreSelect)->Arg(64)->Arg(128);

// ---------------------------------------------------------------------
// Scalar-vs-SIMD comparison: keys/sec per backend + bit-identity gate.
// ---------------------------------------------------------------------

struct KernelRow
{
    std::string kernel;
    size_t dim;
    size_t keys;
    KernelBackend backend;
    double keysPerSec;
    double speedup; // vs scalar, same kernel+shape
    bool bitIdentical;
};

/** Best-of-reps throughput of fn() (which processes `keys` items),
 *  with one warmup call and the inner loop sized so each timed
 *  sample does enough work for the clock. */
template <class F>
double
bestKeysPerSec(size_t keys, int reps, F &&fn)
{
    const size_t inner = std::max<size_t>(1, (1u << 22) / keys);
    double best = 0.0;
    for (int r = 0; r <= reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < inner; ++i)
            fn();
        const double sec =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (r == 0)
            continue; // warmup
        best = std::max(best,
                        static_cast<double>(inner * keys) / sec);
    }
    return best;
}

std::vector<KernelBackend>
availableBackends()
{
    std::vector<KernelBackend> out{KernelBackend::Scalar};
    for (auto b : {KernelBackend::Avx2, KernelBackend::Neon})
        if (kernelBackendAvailable(b))
            out.push_back(b);
    return out;
}

int
runKernelComparison(size_t keys, int reps, const std::string &out_path)
{
    const KernelBackend active = activeKernelBackend();
    std::vector<KernelRow> rows;
    bool all_identical = true;

    for (size_t dim : {64u, 128u}) {
        Rng rng(42);
        const Matrix key_mat(keys, dim, rng.gaussianVec(keys * dim));
        const SignMatrix signs =
            SignMatrix::pack(key_mat.data(), keys, dim);
        const auto q = rng.gaussianVec(dim);
        const SignBits qs(q.data(), dim);
        const int threshold = static_cast<int>(dim) / 2;
        const float scale = 0.125f;

        // Scalar reference results (survivors + their scores).
        setKernelBackend(KernelBackend::Scalar);
        std::vector<uint32_t> ref_survivors;
        batchConcordanceScan(qs, signs, 0, keys, threshold,
                             ref_survivors);
        std::vector<float> ref_scores(ref_survivors.size());
        batchDotScaleAt(q.data(), key_mat, ref_survivors.data(),
                        ref_survivors.size(), scale, ref_scores.data());

        // Fused-kernel reference: the unfused pipeline's exact top-k
        // (batchScoreSelect contracts to match it bit for bit).
        const size_t k = 1024;
        const auto ref_sel = topkSelect(ref_scores, ref_survivors, k);
        std::vector<uint64_t> qw(signs.wordsPerRow());
        packSigns(q.data(), dim, qw.data());

        // GQA-group multi-query shape: 4 queries, one pass. References
        // are the scalar backend's per-query single-kernel results, so
        // the gate closes the whole contract — multi on any backend
        // must equal single-query scalar, query by query.
        const size_t nq = 4;
        const size_t wpr = signs.wordsPerRow();
        Matrix qm(nq, dim);
        std::vector<uint64_t> qwm(nq * wpr);
        for (size_t g = 0; g < nq; ++g) {
            const auto v = rng.gaussianVec(dim);
            qm.setRow(g, v.data());
            packSigns(v.data(), dim, qwm.data() + g * wpr);
        }
        std::vector<std::vector<uint32_t>> ref_msurv(nq);
        std::vector<std::vector<ScoredIndex>> ref_msel(nq);
        const size_t kcap = std::min(k, keys);
        for (size_t g = 0; g < nq; ++g) {
            ref_msurv[g].resize(keys);
            std::vector<size_t> one(1);
            batchScanMulti(qwm.data() + g * wpr, 1, signs, 0, keys,
                           threshold, ref_msurv[g].data(), keys,
                           one.data());
            ref_msurv[g].resize(one[0]);
            ref_msel[g].resize(kcap);
            one[0] = 0;
            batchScoreSelectMulti(qwm.data() + g * wpr, 1, signs, 0,
                                  keys, threshold, qm.row(g), dim,
                                  key_mat, scale, k, ref_msel[g].data(),
                                  kcap, one.data());
            ref_msel[g].resize(one[0]);
        }

        // INT8 arena (the KvCache enableKeyQuantization layout) plus
        // scalar references for the quantized-scoring kernels: the
        // mixed float x int8 survivor dot, the exact int8 x int8
        // estimation dot, and the fused estimate -> top-k select.
        std::vector<int8_t> kq(keys * dim);
        std::vector<float> kscales(keys);
        for (size_t i = 0; i < keys; ++i)
            quantizeInt8Into(key_mat.row(i), dim, kq.data() + i * dim,
                             &kscales[i]);
        std::vector<int8_t> q8(dim);
        float q8_scale = 0.0f;
        quantizeInt8Into(q.data(), dim, q8.data(), &q8_scale);

        std::vector<float> ref_qdot(ref_survivors.size());
        batchQuantDotAt(q.data(), kq.data(), kscales.data(), dim,
                        ref_survivors.data(), ref_survivors.size(),
                        scale, ref_qdot.data());
        std::vector<int32_t> ref_idot(keys);
        batchInt8DotRange(q8.data(), kq.data(), dim, 0, keys,
                          ref_idot.data());
        std::vector<ScoredIndex> ref_isel(std::min(k, keys));
        const size_t ref_isel_n = batchInt8ScoreSelect(
            q8.data(), q8_scale, kq.data(), kscales.data(), dim, 0,
            keys, scale, k, ref_isel.data());
        ref_isel.resize(ref_isel_n);

        double scalar_scan = 0.0, scalar_dot = 0.0, scalar_fused = 0.0;
        double scalar_mscan = 0.0, scalar_mfused = 0.0;
        double scalar_qdot = 0.0, scalar_idot = 0.0, scalar_isel = 0.0;
        for (KernelBackend b : availableBackends()) {
            setKernelBackend(b);

            std::vector<uint32_t> survivors;
            survivors.reserve(keys);
            const double scan_rate =
                bestKeysPerSec(keys, reps, [&] {
                    survivors.clear();
                    batchConcordanceScan(qs, signs, 0, keys, threshold,
                                         survivors);
                });
            const bool scan_same = survivors == ref_survivors;

            std::vector<float> scores(ref_survivors.size());
            const double dot_rate =
                bestKeysPerSec(ref_survivors.size(), reps, [&] {
                    batchDotScaleAt(q.data(), key_mat,
                                    ref_survivors.data(),
                                    ref_survivors.size(), scale,
                                    scores.data());
                });
            const bool dot_same = scores == ref_scores;

            std::vector<ScoredIndex> sel(std::min(k, keys));
            size_t nsel = 0;
            const double fused_rate =
                bestKeysPerSec(keys, reps, [&] {
                    nsel = batchScoreSelect(qw.data(), signs, 0, keys,
                                            threshold, q.data(),
                                            key_mat, scale, k,
                                            sel.data());
                });
            bool fused_same = nsel == ref_sel.size();
            for (size_t i = 0; fused_same && i < nsel; ++i)
                fused_same = sel[i].score == ref_sel[i].score &&
                    sel[i].index == ref_sel[i].index;

            // Grouped 4-query pass; rates count key-query tests so
            // they compare directly with the single-query rows.
            std::vector<uint32_t> msurv(nq * keys);
            std::vector<size_t> mcounts(nq);
            const double mscan_rate =
                bestKeysPerSec(nq * keys, reps, [&] {
                    batchScanMulti(qwm.data(), nq, signs, 0, keys,
                                   threshold, msurv.data(), keys,
                                   mcounts.data());
                });
            bool mscan_same = true;
            for (size_t g = 0; g < nq; ++g) {
                bool same = mcounts[g] == ref_msurv[g].size();
                for (size_t i = 0; same && i < mcounts[g]; ++i)
                    same = msurv[g * keys + i] == ref_msurv[g][i];
                mscan_same = mscan_same && same;
            }

            std::vector<ScoredIndex> msel(nq * kcap);
            std::vector<size_t> mnsel(nq);
            const double mfused_rate =
                bestKeysPerSec(nq * keys, reps, [&] {
                    batchScoreSelectMulti(qwm.data(), nq, signs, 0,
                                          keys, threshold, qm.row(0),
                                          dim, key_mat, scale, k,
                                          msel.data(), kcap,
                                          mnsel.data());
                });
            bool mfused_same = true;
            for (size_t g = 0; g < nq; ++g) {
                bool same = mnsel[g] == ref_msel[g].size();
                for (size_t i = 0; same && i < mnsel[g]; ++i)
                    same = msel[g * kcap + i].score ==
                            ref_msel[g][i].score &&
                        msel[g * kcap + i].index == ref_msel[g][i].index;
                mfused_same = mfused_same && same;
            }

            // INT8 scoring kernels (dispatch-routed: scalar contract
            // reference, AVX2 maddubs, AVX-512 VNNI where available).
            std::vector<float> qdot(ref_survivors.size());
            const double qdot_rate =
                bestKeysPerSec(ref_survivors.size(), reps, [&] {
                    batchQuantDotAt(q.data(), kq.data(),
                                    kscales.data(), dim,
                                    ref_survivors.data(),
                                    ref_survivors.size(), scale,
                                    qdot.data());
                });
            const bool qdot_same = qdot == ref_qdot;

            std::vector<int32_t> idot(keys);
            const double idot_rate = bestKeysPerSec(keys, reps, [&] {
                batchInt8DotRange(q8.data(), kq.data(), dim, 0, keys,
                                  idot.data());
            });
            const bool idot_same = idot == ref_idot;

            std::vector<ScoredIndex> isel(std::min(k, keys));
            size_t nisel = 0;
            const double isel_rate = bestKeysPerSec(keys, reps, [&] {
                nisel = batchInt8ScoreSelect(
                    q8.data(), q8_scale, kq.data(), kscales.data(),
                    dim, 0, keys, scale, k, isel.data());
            });
            bool isel_same = nisel == ref_isel.size();
            for (size_t i = 0; isel_same && i < nisel; ++i)
                isel_same = isel[i].score == ref_isel[i].score &&
                    isel[i].index == ref_isel[i].index;

            if (b == KernelBackend::Scalar) {
                scalar_scan = scan_rate;
                scalar_dot = dot_rate;
                scalar_fused = fused_rate;
                scalar_mscan = mscan_rate;
                scalar_mfused = mfused_rate;
                scalar_qdot = qdot_rate;
                scalar_idot = idot_rate;
                scalar_isel = isel_rate;
            }
            all_identical = all_identical && scan_same && dot_same &&
                fused_same && mscan_same && mfused_same && qdot_same &&
                idot_same && isel_same;
            rows.push_back({"scan", dim, keys, b, scan_rate,
                            scan_rate / scalar_scan, scan_same});
            rows.push_back({"dot", dim, ref_survivors.size(), b,
                            dot_rate, dot_rate / scalar_dot, dot_same});
            rows.push_back({"score_select", dim, keys, b, fused_rate,
                            fused_rate / scalar_fused, fused_same});
            rows.push_back({"scan_multi_q4", dim, keys, b, mscan_rate,
                            mscan_rate / scalar_mscan, mscan_same});
            rows.push_back({"score_select_multi_q4", dim, keys, b,
                            mfused_rate, mfused_rate / scalar_mfused,
                            mfused_same});
            rows.push_back({"quant_dot", dim, ref_survivors.size(), b,
                            qdot_rate, qdot_rate / scalar_qdot,
                            qdot_same});
            rows.push_back({"int8_dot", dim, keys, b, idot_rate,
                            idot_rate / scalar_idot, idot_same});
            rows.push_back({"int8_score_select", dim, keys, b,
                            isel_rate, isel_rate / scalar_isel,
                            isel_same});
            if (!scan_same)
                std::cerr << "FAIL: " << kernelBackendName(b)
                          << " scan survivors differ from scalar (dim "
                          << dim << ")\n";
            if (!dot_same)
                std::cerr << "FAIL: " << kernelBackendName(b)
                          << " dot scores differ from scalar (dim "
                          << dim << ")\n";
            if (!fused_same)
                std::cerr << "FAIL: " << kernelBackendName(b)
                          << " fused score_select differs from the "
                             "unfused scalar pipeline (dim "
                          << dim << ")\n";
            if (!mscan_same)
                std::cerr << "FAIL: " << kernelBackendName(b)
                          << " grouped scan differs per query from the "
                             "scalar single-query scan (dim "
                          << dim << ")\n";
            if (!mfused_same)
                std::cerr << "FAIL: " << kernelBackendName(b)
                          << " grouped score_select differs per query "
                             "from the scalar single-query kernel (dim "
                          << dim << ")\n";
            if (!qdot_same)
                std::cerr << "FAIL: " << kernelBackendName(b)
                          << " quant_dot differs from the scalar "
                             "dotQuantized contract (dim "
                          << dim << ")\n";
            if (!idot_same)
                std::cerr << "FAIL: " << kernelBackendName(b)
                          << " int8_dot differs from the scalar exact "
                             "integer dot (dim "
                          << dim << ")\n";
            if (!isel_same)
                std::cerr << "FAIL: " << kernelBackendName(b)
                          << " fused int8_score_select differs from "
                             "scalar (dim "
                          << dim << ")\n";
        }
    }
    setKernelBackend(active);

    std::ofstream os(out_path);
    LS_ASSERT(os.good(), "cannot write ", out_path);
    os << "{\n" << benchMeta("micro_kernels") << "  \"results\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const KernelRow &r = rows[i];
        os << "    {\"kernel\": \"" << r.kernel << "\", \"dim\": "
           << r.dim << ", \"keys\": " << r.keys << ", \"backend\": \""
           << kernelBackendName(r.backend) << "\", \"keys_per_s\": "
           << r.keysPerSec << ", \"speedup_vs_scalar\": " << r.speedup
           << ", \"bit_identical\": "
           << (r.bitIdentical ? "true" : "false") << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";

    std::cout << "\nscalar-vs-SIMD (" << keys << " keys, best of "
              << reps << "):\n";
    for (const KernelRow &r : rows)
        std::cout << "  " << r.kernel << " d" << r.dim << " "
                  << kernelBackendName(r.backend) << ": "
                  << static_cast<uint64_t>(r.keysPerSec / 1e6)
                  << " Mkeys/s (" << r.speedup << "x scalar, "
                  << (r.bitIdentical ? "bit-identical" : "MISMATCH")
                  << ")\n";
    std::cout << "wrote " << out_path << "\n";
    return all_identical ? 0 : 1;
}

} // namespace
} // namespace longsight

int
main(int argc, char **argv)
{
    using namespace longsight;
    // google-benchmark strips the --benchmark_* flags it recognizes;
    // whatever remains is ours.
    benchmark::Initialize(&argc, argv);
    Flags flags(argc, argv);
    const auto keys =
        static_cast<size_t>(flags.getInt("keys", 65536));
    const int reps = static_cast<int>(flags.getInt("reps", 5));
    const bool gbench = flags.getBool("gbench", true);
    const std::string out =
        flags.getString("out", "BENCH_kernels.json");
    const auto leftover = flags.unconsumed();
    LS_ASSERT(leftover.empty(), "unknown flag --", leftover.front());

    if (gbench)
        benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return runKernelComparison(keys, reps, out);
}

/**
 * @file
 * google-benchmark micro-kernels for LongSight's hot paths: sign
 * concordance, SCF filtering, top-k maintenance, ITQ training steps,
 * PFU block filtering, DRAM channel streaming, striped package reads,
 * CXL transfers, softmax, and the dense-attention reference kernel.
 */

#include <benchmark/benchmark.h>

#include "core/attention.hh"
#include "core/itq.hh"
#include "core/scf.hh"
#include "core/topk.hh"
#include "cxl/link.hh"
#include "dram/package.hh"
#include "drex/pfu.hh"
#include "tensor/softmax.hh"
#include "util/rng.hh"

namespace longsight {
namespace {

void
BM_SignConcordance(benchmark::State &state)
{
    const size_t d = static_cast<size_t>(state.range(0));
    Rng rng(1);
    const auto a = rng.gaussianVec(d);
    const auto b = rng.gaussianVec(d);
    const SignBits sa(a.data(), d), sb(b.data(), d);
    for (auto _ : state)
        benchmark::DoNotOptimize(sa.concordance(sb));
}
BENCHMARK(BM_SignConcordance)->Arg(64)->Arg(128);

void
BM_ScfFilter4K(benchmark::State &state)
{
    const size_t d = static_cast<size_t>(state.range(0));
    const size_t n = 4096;
    Rng rng(2);
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const auto signs = packSignRows(keys.data(), n, d);
    const auto q = rng.gaussianVec(d);
    const SignBits qs(q.data(), d);
    for (auto _ : state) {
        auto survivors = scfFilter(qs, signs, static_cast<int>(d) / 2);
        benchmark::DoNotOptimize(survivors);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScfFilter4K)->Arg(64)->Arg(128);

void
BM_TopKStream(benchmark::State &state)
{
    const size_t n = 65536;
    Rng rng(3);
    std::vector<float> scores(n);
    for (auto &s : scores)
        s = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        TopK acc(static_cast<size_t>(state.range(0)));
        for (size_t i = 0; i < n; ++i)
            acc.push(scores[i], static_cast<uint32_t>(i));
        benchmark::DoNotOptimize(acc.size());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopKStream)->Arg(128)->Arg(1024);

void
BM_ItqIteration(benchmark::State &state)
{
    const size_t d = static_cast<size_t>(state.range(0));
    Rng rng(4);
    const Matrix data(1024, d, rng.gaussianVec(1024 * d));
    for (auto _ : state) {
        Rng local(5);
        benchmark::DoNotOptimize(trainItqRotation(data, 1, local));
    }
}
BENCHMARK(BM_ItqIteration)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void
BM_PfuFilterBlock(benchmark::State &state)
{
    const size_t d = 128;
    Rng rng(6);
    const Matrix keys(128, d, rng.gaussianVec(128 * d));
    const auto signs = packSignRows(keys.data(), 128, d);
    const auto q = rng.gaussianVec(d);
    const std::vector<SignBits> qs = {SignBits(q.data(), d)};
    for (auto _ : state) {
        auto bm = Pfu::filterBlock(qs, signs.data(), 128, 64);
        benchmark::DoNotOptimize(bm);
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_PfuFilterBlock);

void
BM_DramStreamingReads(benchmark::State &state)
{
    const LpddrTimings t;
    for (auto _ : state) {
        DramChannel ch(t);
        Tick done = 0;
        for (uint32_t i = 0; i < 1024; ++i)
            done = ch.read(0, i % t.banksPerChannel, i / 64, 256);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_DramStreamingReads);

void
BM_PackageStripedRead(benchmark::State &state)
{
    const LpddrTimings t;
    for (auto _ : state) {
        DramPackage pkg(t, 8);
        Tick done = 0;
        for (uint32_t i = 0; i < 512; ++i)
            done = pkg.readStriped(0, i % 128, i / 128, 256);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_PackageStripedRead);

void
BM_CxlBulkRead(benchmark::State &state)
{
    for (auto _ : state) {
        CxlLink link(CxlConfig{});
        Tick done = 0;
        for (int i = 0; i < 256; ++i)
            done = link.bulkRead(0, 4096);
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_CxlBulkRead);

void
BM_Softmax(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    Rng rng(7);
    std::vector<float> base(n);
    for (auto &x : base)
        x = static_cast<float>(rng.gaussian());
    for (auto _ : state) {
        std::vector<float> s = base;
        softmaxInPlace(s);
        benchmark::DoNotOptimize(s.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Softmax)->Arg(1024)->Arg(4096);

void
BM_DenseAttention(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    const size_t d = 64;
    Rng rng(8);
    const Matrix keys(n, d, rng.gaussianVec(n * d));
    const Matrix values(n, d, rng.gaussianVec(n * d));
    const auto q = rng.gaussianVec(d);
    for (auto _ : state) {
        auto r = denseAttention(q.data(), keys, values, 0.125f);
        benchmark::DoNotOptimize(r.output.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DenseAttention)->Arg(1024)->Arg(8192);

} // namespace
} // namespace longsight

BENCHMARK_MAIN();

/**
 * @file
 * Shared helpers for the figure-reproduction benches: threshold
 * tuning against an AlgoEvaluator corpus and scaled-context notes.
 *
 * Scaling honesty (see DESIGN.md): quality benches run the full
 * algorithm at reduced context lengths chosen to finish in seconds on
 * one core; the sweep still spans multiple octaves so the paper's
 * qualitative shapes are visible. Performance benches simulate one
 * steady-state decode step in full detail, as the paper's own
 * framework does.
 */

#ifndef LONGSIGHT_BENCH_BENCH_UTIL_HH
#define LONGSIGHT_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/threshold_tuner.hh"
#include "eval/algo_eval.hh"

namespace longsight {

/** Model shape recorded in every bench's provenance stamp. */
struct BenchModelShape
{
    uint32_t queryHeads = 0;
    uint32_t kvHeads = 0;
    uint32_t headDim = 0;
};

/**
 * Provenance stamp shared by every BENCH_*.json: bench name, the git
 * commit the binary was built from (baked in at configure time;
 * "unknown" outside a git checkout), worker thread count, active
 * kernel backend, and — when a shape is given — the model shape.
 *
 * Returns the leading lines of a JSON object body (no surrounding
 * braces, two-space indent, trailing comma + newline), so a bench
 * opens its file with
 *
 *     os << "{\n" << benchMeta("decode_hotpath", shape) << ...
 *
 * and every artifact is self-describing enough to compare across
 * commits, hosts, and backends.
 */
std::string benchMeta(const std::string &bench,
                      const BenchModelShape &shape = {});

/**
 * Tune per-head SCF thresholds for one (evaluator, base config) pair
 * to the given perplexity budget. Returns nullopt when even threshold
 * zero exceeds the budget (the paper's 'X' cells in Fig. 3).
 */
std::optional<TuneResult>
tuneThresholds(const AlgoEvaluator &eval, EvalConfig base,
               double ppl_budget_pct, int step, uint32_t max_iters);

/** "32K"-style human-readable token count. */
std::string fmtTokens(uint64_t tokens);

} // namespace longsight

#endif // LONGSIGHT_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Shared helpers for the figure-reproduction benches: threshold
 * tuning against an AlgoEvaluator corpus and scaled-context notes.
 *
 * Scaling honesty (see DESIGN.md): quality benches run the full
 * algorithm at reduced context lengths chosen to finish in seconds on
 * one core; the sweep still spans multiple octaves so the paper's
 * qualitative shapes are visible. Performance benches simulate one
 * steady-state decode step in full detail, as the paper's own
 * framework does.
 */

#ifndef LONGSIGHT_BENCH_BENCH_UTIL_HH
#define LONGSIGHT_BENCH_BENCH_UTIL_HH

#include <functional>
#include <optional>
#include <string>

#include "core/threshold_tuner.hh"
#include "eval/algo_eval.hh"

namespace longsight {

/**
 * Tune per-head SCF thresholds for one (evaluator, base config) pair
 * to the given perplexity budget. Returns nullopt when even threshold
 * zero exceeds the budget (the paper's 'X' cells in Fig. 3).
 */
std::optional<TuneResult>
tuneThresholds(const AlgoEvaluator &eval, EvalConfig base,
               double ppl_budget_pct, int step, uint32_t max_iters);

/** "32K"-style human-readable token count. */
std::string fmtTokens(uint64_t tokens);

} // namespace longsight

#endif // LONGSIGHT_BENCH_BENCH_UTIL_HH

/**
 * @file
 * Reproduces Figure 9: system-level per-token latency breakdown of
 * LongSight across workloads (context length x user count). Exposed
 * (non-overlapped) components per decode step: GPU non-attention
 * (QKV/FFN/projection/LM head), runtime ITQ, GPU window attention,
 * DReX offload (incl. CXL value path), descriptor submission,
 * polling, and the combined softmax.
 *
 * The §9.2 claims under test: few users -> GPU-bound at any context;
 * many users + short context -> DReX-bound via per-user value
 * loading; long contexts -> fewer users fit, GPU utilization drops,
 * GPU becomes the bottleneck again.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "sim/longsight_system.hh"
#include "util/table.hh"

namespace longsight {
namespace {

void
runModel(const ModelConfig &model)
{
    LongSightSystem ls(LongSightSystemConfig{}, model);
    const std::vector<uint64_t> contexts = {32768, 131072, 1'000'000};

    TextTable t("Figure 9 (" + model.name +
                "): per-token latency breakdown [us]");
    t.setHeader({"Context", "Users", "GPU-other", "ITQ", "GPU-window",
                 "DReX", "Submit", "Poll", "Softmax", "Total",
                 "Bottleneck"});
    for (uint64_t ctx : contexts) {
        const uint32_t cap = std::min(ls.maxUsers(ctx), 512u);
        std::vector<uint32_t> user_counts = {1};
        if (cap >= 4)
            user_counts.push_back(cap / 4);
        if (cap >= 2)
            user_counts.push_back(cap);
        for (uint32_t users : user_counts) {
            const ServingResult r = ls.decode(ctx, users);
            if (!r.feasible)
                continue;
            const StepBreakdown &b = r.breakdown;
            const Tick gpu_side = b.gpuNonAttention + b.itq +
                b.gpuWindowExposed + b.softmax;
            const Tick drex_side = b.drexExposed + b.submit + b.poll;
            t.addRow({fmtTokens(ctx), std::to_string(users),
                      TextTable::num(toMicroseconds(b.gpuNonAttention)),
                      TextTable::num(toMicroseconds(b.itq)),
                      TextTable::num(toMicroseconds(b.gpuWindowExposed)),
                      TextTable::num(toMicroseconds(b.drexExposed)),
                      TextTable::num(toMicroseconds(b.submit)),
                      TextTable::num(toMicroseconds(b.poll)),
                      TextTable::num(toMicroseconds(b.softmax)),
                      TextTable::num(toMicroseconds(r.stepTime)),
                      gpu_side >= drex_side ? "GPU" : "DReX/CXL"});
        }
    }
    t.print(std::cout);
}

} // namespace
} // namespace longsight

int
main()
{
    using namespace longsight;
    runModel(ModelConfig::llama3_1b());
    runModel(ModelConfig::llama3_8b());
    return 0;
}

/**
 * @file
 * Paged KV cache benchmark: the three claims the block-pool refactor
 * stands on, each checked functionally and reported to
 * BENCH_paged.json.
 *
 * 1. Bit-identity — a paged cache run through full multi-head hybrid
 *    attention (ITQ rotation + INT8 scoring on) produces byte-for-byte
 *    the outputs of the flat cache, at non-block-multiple contexts.
 *    Any divergence exits nonzero. Decode steps are also timed both
 *    ways so the span-indirection overhead is on record.
 *
 * 2. Capacity — at a fixed block budget, requests that share a long
 *    system prefix through the pool's prefix registry admit >= 2x the
 *    concurrent contexts of a flat layout that duplicates the prefix
 *    per request (the gate this binary enforces). The flat baseline is
 *    charged exact tokens, no block rounding — generous to flat.
 *
 * 3. Residency — the SCF survivor counters the attention scans record
 *    drive rebalance(): the hot window is promoted to the HBM tier,
 *    cold blocks demote, and outputs are unchanged (tier moves are
 *    accounting only; the expander is compute-enabled).
 *
 * A trace section runs the continuous-batching scheduler with its
 * canAdmit gate wired to PartitionManager's block budget, the way a
 * paged serving stack admits against memory instead of request count.
 *
 * Run:  ./build/bench/paged_cache
 *       ./build/bench/paged_cache --steps 32 --out BENCH_paged.json
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "core/kv_block_pool.hh"
#include "core/kv_cache.hh"
#include "core/multi_head.hh"
#include "drex/partition_manager.hh"
#include "sim/batch_scheduler.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace longsight {
namespace {

constexpr uint32_t kDim = 64;
constexpr uint32_t kKvHeads = 2;
constexpr uint32_t kQHeads = 4;
constexpr uint32_t kBlockTokens = 128;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Section 1+3 payload: identity, step timings, residency counters. */
struct IdentityResult
{
    bool identical = true;
    size_t context = 0;
    uint32_t steps = 0;
    double flatSec = 0.0;
    double pagedSec = 0.0;
    double occupancy = 0.0;
    uint32_t hbmResident = 0;
    uint64_t promotions = 0;
    uint64_t evictions = 0;
};

/**
 * Decode `steps` tokens over flat and paged cache fleets with the full
 * hybrid pipeline (rotation + INT8 scoring), comparing outputs
 * byte-for-byte each step. The paged pool's scan counters then drive a
 * residency rebalance, which must not perturb the next step's output.
 */
IdentityResult
runIdentity(uint32_t steps)
{
    IdentityResult r;
    const size_t n = 3001; // not a block multiple
    r.context = n;
    r.steps = steps;

    LongSightConfig cfg;
    cfg.windowSize = 256;
    cfg.sinkTokens = 8;
    cfg.topK = 128;
    cfg.defaultThreshold = kDim / 2;
    cfg.quantizedScoring = true;
    MultiHeadLongSight mh(cfg, kQHeads, kKvHeads, kDim);

    const uint32_t blocks_per_cache =
        (n + steps + kBlockTokens - 1) / kBlockTokens + 1;
    KvBlockPool pool(kDim, kBlockTokens, blocks_per_cache * kKvHeads);

    Rng root(21);
    std::vector<std::vector<float>> keys, values;
    for (size_t i = 0; i < n + steps; ++i) {
        keys.push_back(root.gaussianVec(kDim));
        values.push_back(root.gaussianVec(kDim));
    }
    std::vector<KvCache> flat, paged;
    for (uint32_t h = 0; h < kKvHeads; ++h) {
        flat.emplace_back(kDim);
        paged.emplace_back(pool);
        for (auto *c : {&flat[h], &paged[h]}) {
            c->reserve(n + steps);
            c->enableKeyQuantization();
            c->setItqRotation(Matrix::identity(kDim));
            for (size_t i = 0; i < n; ++i)
                c->append(keys[i].data(), values[i].data());
        }
    }

    std::vector<Matrix> queries(steps);
    for (auto &m : queries) {
        m.resize(kQHeads, kDim);
        for (uint32_t q = 0; q < kQHeads; ++q)
            m.setRow(q, root.gaussianVec(kDim).data());
    }

    LayerAttentionResult out_flat, out_paged;
    const auto decode = [&](std::vector<KvCache> &caches,
                            LayerAttentionResult &out, uint32_t s) {
        for (uint32_t h = 0; h < kKvHeads; ++h)
            caches[h].append(keys[n + s].data(), values[n + s].data());
        mh.computeInto(queries[s], caches, out);
    };
    const auto check = [&](uint32_t s) {
        if (std::memcmp(out_flat.outputs.data(), out_paged.outputs.data(),
                        out_flat.outputs.size() * sizeof(float)) != 0) {
            std::cerr << "FAIL: paged attention diverged from flat at "
                         "decode step "
                      << s << "\n";
            r.identical = false;
        }
    };

    // Interleaved timing is deliberately coarse (whole fleets, not
    // per-call) — the payload is the ratio, not absolute numbers.
    double flat_s = 0.0, paged_s = 0.0;
    for (uint32_t s = 0; s < steps; ++s) {
        auto t0 = std::chrono::steady_clock::now();
        decode(flat, out_flat, s);
        flat_s += secondsSince(t0);
        t0 = std::chrono::steady_clock::now();
        decode(paged, out_paged, s);
        paged_s += secondsSince(t0);
        check(s);
        // Mid-stream residency churn: rebalance to a half-size HBM
        // window and verify the next step still matches (tier moves
        // never change outputs).
        if (s == steps / 2) {
            pool.setHbmBudget(pool.usedBlocks() / 2);
            pool.rebalance();
        }
    }
    pool.rebalance();
    r.flatSec = flat_s;
    r.pagedSec = paged_s;
    r.occupancy = pool.occupancy();
    r.hbmResident = pool.hbmResident();
    r.promotions = pool.promotions();
    r.evictions = pool.evictions();
    return r;
}

/** Section 2 payload: concurrent contexts admitted at a fixed budget. */
struct CapacityResult
{
    uint32_t poolBlocks = 0;
    uint64_t budgetTokens = 0;
    uint64_t prefixTokens = 0;
    uint64_t tailTokens = 0;
    uint32_t flatAdmitted = 0;
    uint32_t pagedAdmitted = 0;
    double occupancy = 0.0;
    double prefixHitRate = 0.0;
    uint64_t sharedTokens = 0;

    double ratio() const
    {
        return flatAdmitted
            ? static_cast<double>(pagedAdmitted) / flatAdmitted
            : 0.0;
    }
};

/**
 * Fixed budget of pool blocks; every request = one shared system
 * prefix + a private tail. Flat duplicates the prefix per request
 * (charged exact tokens, no block rounding); paged requests adopt the
 * published prefix pages and allocate blocks only for their tails.
 * Requests are held resident until allocation fails, so the counts are
 * true concurrent capacity.
 */
CapacityResult
runCapacity()
{
    CapacityResult r;
    r.poolBlocks = 512;
    r.prefixTokens = 2048; // 16 blocks of shared system prompt
    r.tailTokens = 512;    // 4 blocks of per-request context
    KvBlockPool pool(kDim, kBlockTokens, r.poolBlocks);
    r.budgetTokens = uint64_t{r.poolBlocks} * kBlockTokens;

    // Flat baseline: every request privately stores prefix + tail.
    r.flatAdmitted = static_cast<uint32_t>(
        r.budgetTokens / (r.prefixTokens + r.tailTokens));

    Rng rng(33);
    std::vector<std::vector<float>> prefix_kv;
    for (size_t i = 0; i < r.prefixTokens; ++i)
        prefix_kv.push_back(rng.gaussianVec(kDim));

    constexpr uint64_t kPrefixHash = 0x10065ee7;
    {
        KvCache prompter(pool);
        for (const auto &v : prefix_kv)
            prompter.append(v.data(), v.data());
        const size_t published = prompter.publishPrefix(kPrefixHash);
        LS_ASSERT(published == r.prefixTokens,
                  "prefix publish covered ", published, " of ",
                  r.prefixTokens, " tokens");
        // The prompter retires; the registry pins keep the pages live.
    }

    std::vector<KvCache> resident;
    for (;;) {
        // A request needs its tail's blocks beyond the shared pages.
        if (pool.freeBlocks() < r.tailTokens / kBlockTokens)
            break;
        KvCache cache(pool);
        if (cache.adoptPrefix(kPrefixHash) != r.prefixTokens)
            break;
        for (uint64_t i = 0; i < r.tailTokens; ++i) {
            const auto v = rng.gaussianVec(kDim);
            cache.append(v.data(), v.data());
        }
        resident.push_back(std::move(cache));
    }
    r.pagedAdmitted = static_cast<uint32_t>(resident.size());
    r.occupancy = pool.occupancy();
    const uint64_t lookups = pool.prefixHits() + pool.prefixMisses();
    r.prefixHitRate = lookups
        ? static_cast<double>(pool.prefixHits()) /
            static_cast<double>(lookups)
        : 0.0;
    r.sharedTokens = pool.prefixSharedTokens();
    return r;
}

/** Section 4 payload: block-budget admission on a serving trace. */
struct TraceResult
{
    uint64_t blockBudget = 0;
    uint64_t peakBlocks = 0;
    uint64_t gateRejections = 0;
    double makespanSec = 0.0;
    double throughput = 0.0;
    uint32_t jobs = 0;
};

/**
 * Continuous batching with canAdmit wired to PartitionManager's block
 * budget: a job is admitted only when prompt + output budget fits the
 * free blocks, so peak residency is bounded by memory, not by a guess
 * at maxBatch.
 */
TraceResult
runTrace()
{
    TraceResult r;
    const DataLayout layout(DrexGeometry{}, LpddrTimings{}, 8, 32, 128);
    PartitionManager pm(layout, 8, 32);
    r.blockBudget = pm.blockBudget(kBlockTokens);

    // 24 long-context jobs: together they want ~3x the device budget.
    std::vector<ServingJob> jobs;
    const uint64_t prompt =
        r.blockBudget * kBlockTokens / (8 * 8); // /heads, /8 co-resident
    for (uint32_t i = 0; i < 24; ++i)
        jobs.push_back({i, Tick(i) * kMillisecond, prompt, 64});
    r.jobs = static_cast<uint32_t>(jobs.size());

    uint64_t in_use = 0;
    EngineModel e;
    e.prefillTime = [](uint64_t p) {
        return Tick(p / 1000 + 1) * kMillisecond;
    };
    e.stepTime = [](const std::vector<uint64_t> &c) {
        return Tick(1 + c.size() / 8) * kMillisecond;
    };
    e.maxBatch = 64; // memory, not the cap, should bind
    e.canAdmit = [&](const ServingJob &j) {
        if (pm.canAdmitBlocks(in_use, j.promptLen + j.outputTokens,
                              kBlockTokens))
            return true;
        ++r.gateRejections;
        return false;
    };
    e.onAdmit = [&](const ServingJob &j) {
        in_use +=
            pm.blocksForContext(j.promptLen + j.outputTokens, kBlockTokens);
        r.peakBlocks = std::max(r.peakBlocks, in_use);
    };
    e.onRetire = [&](uint32_t id) {
        in_use -= pm.blocksForContext(
            jobs[id].promptLen + jobs[id].outputTokens, kBlockTokens);
    };
    const ScheduleResult sr = runBatchSchedule(jobs, e);
    r.makespanSec = toSeconds(sr.makespan);
    r.throughput = sr.throughputTokensPerSec;
    return r;
}

void
writeJson(const std::string &path, const IdentityResult &id,
          const CapacityResult &cap, const TraceResult &tr)
{
    std::ofstream os(path);
    LS_ASSERT(os.good(), "cannot write ", path);
    os << "{\n"
       << benchMeta("paged_cache", {kQHeads, kKvHeads, kDim})
       << "  \"block_tokens\": " << kBlockTokens << ",\n"
       << "  \"identity_context\": " << id.context << ",\n"
       << "  \"identity_steps\": " << id.steps << ",\n"
       << "  \"flat_s\": " << id.flatSec << ",\n"
       << "  \"paged_s\": " << id.pagedSec << ",\n"
       << "  \"paged_overhead\": " << id.pagedSec / id.flatSec << ",\n"
       << "  \"results_identical\": "
       << (id.identical ? "true" : "false") << ",\n"
       << "  \"identity_occupancy\": " << id.occupancy << ",\n"
       << "  \"hbm_resident_blocks\": " << id.hbmResident << ",\n"
       << "  \"promotions\": " << id.promotions << ",\n"
       << "  \"evictions\": " << id.evictions << ",\n"
       << "  \"pool_blocks\": " << cap.poolBlocks << ",\n"
       << "  \"budget_tokens\": " << cap.budgetTokens << ",\n"
       << "  \"prefix_tokens\": " << cap.prefixTokens << ",\n"
       << "  \"tail_tokens\": " << cap.tailTokens << ",\n"
       << "  \"flat_admitted\": " << cap.flatAdmitted << ",\n"
       << "  \"paged_admitted\": " << cap.pagedAdmitted << ",\n"
       << "  \"capacity_ratio\": " << cap.ratio() << ",\n"
       << "  \"capacity_occupancy\": " << cap.occupancy << ",\n"
       << "  \"prefix_hit_rate\": " << cap.prefixHitRate << ",\n"
       << "  \"prefix_shared_tokens\": " << cap.sharedTokens << ",\n"
       << "  \"trace_block_budget\": " << tr.blockBudget << ",\n"
       << "  \"trace_peak_blocks\": " << tr.peakBlocks << ",\n"
       << "  \"trace_gate_rejections\": " << tr.gateRejections << ",\n"
       << "  \"trace_jobs\": " << tr.jobs << ",\n"
       << "  \"trace_makespan_s\": " << tr.makespanSec << ",\n"
       << "  \"trace_throughput_tps\": " << tr.throughput << "\n}\n";
}

} // namespace
} // namespace longsight

int
main(int argc, char **argv)
{
    using namespace longsight;
    Flags flags(argc, argv);
    const auto steps = static_cast<uint32_t>(flags.getInt("steps", 24));
    const std::string out = flags.getString("out", "BENCH_paged.json");
    const auto leftover = flags.unconsumed();
    LS_ASSERT(leftover.empty(), "unknown flag --", leftover.front());

    const IdentityResult id = runIdentity(steps);
    const CapacityResult cap = runCapacity();
    const TraceResult tr = runTrace();

    TextTable t("Paged KV cache: identity, capacity, admission");
    t.setHeader({"Section", "Metric", "Value"});
    t.addRow({"identity", "outputs identical",
              id.identical ? "yes" : "NO"});
    t.addRow({"identity", "paged/flat step time",
              TextTable::num(id.pagedSec / id.flatSec, 2) + "x"});
    t.addRow({"residency", "promotions / evictions",
              std::to_string(id.promotions) + " / " +
                  std::to_string(id.evictions)});
    t.addRow({"residency", "HBM-resident blocks",
              std::to_string(id.hbmResident)});
    t.addRow({"capacity", "flat admitted",
              std::to_string(cap.flatAdmitted)});
    t.addRow({"capacity", "paged admitted",
              std::to_string(cap.pagedAdmitted)});
    t.addRow({"capacity", "ratio",
              TextTable::num(cap.ratio(), 2) + "x"});
    t.addRow({"capacity", "prefix hit rate",
              TextTable::num(cap.prefixHitRate, 3)});
    t.addRow({"trace", "peak blocks / budget",
              std::to_string(tr.peakBlocks) + " / " +
                  std::to_string(tr.blockBudget)});
    t.addRow({"trace", "gate rejections",
              std::to_string(tr.gateRejections)});
    t.print(std::cout);

    writeJson(out, id, cap, tr);
    std::cout << "wrote " << out << "\n";

    bool ok = id.identical;
    if (cap.ratio() < 2.0) {
        std::cerr << "FAIL: paged capacity ratio " << cap.ratio()
                  << " < 2.0 at fixed " << cap.budgetTokens
                  << "-token budget\n";
        ok = false;
    }
    if (tr.peakBlocks > tr.blockBudget) {
        std::cerr << "FAIL: admission gate exceeded the block budget ("
                  << tr.peakBlocks << " > " << tr.blockBudget << ")\n";
        ok = false;
    }
    return ok ? 0 : 1;
}

/**
 * @file
 * Unified filter-backend Pareto harness — the merge of the old
 * fig4_pareto bench and the eval/sparse_baselines comparison into one
 * sweep. Every candidate-filter family the repo ships is evaluated on
 * the same 8B-shape 32K corpus and placed on two charts:
 *
 *   1. accuracy vs simulated decode throughput (a deterministic,
 *      count-domain bandwidth model — no wall clock), and
 *   2. accuracy vs retrieved tokens per step (full-precision key
 *      reads: SCF survivors, INT8 selections, centroid candidates) —
 *      the quality-per-retrieved-token frontier the paper's §5.4
 *      DynaX comparison lives on.
 *
 * Swept backends: SCF (W x k x threshold, ITQ signs — the paper's
 * Figure 4 sweep, reproduced verbatim including the three example
 * tables and the DynaX row), INT8 quantized-score estimation (W x k),
 * centroid block scoring (W x k x keep fraction), plus the §3.1/§4
 * ANNS software baselines (k-means probes, LSH) as reference points.
 *
 * Writes BENCH_pareto.json; ci/bench_gate.py checks its count and
 * frontier-identity fields (never wall clock) against
 * bench/baselines/.
 *
 * Run:  ./build/bench/pareto_harness --out BENCH_pareto.json
 */

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/attention.hh"
#include "core/topk.hh"
#include "eval/sparse_baselines.hh"
#include "model/model_config.hh"
#include "model/workload.hh"
#include "tensor/softmax.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace longsight {
namespace {

struct Point
{
    std::string backend; //!< scf | int8 | centroid | kmeans | lsh
    uint32_t window;
    uint32_t k;
    int threshold;       //!< scf only; -1 elsewhere
    double keepFraction; //!< centroid/anns probe fraction; 0 elsewhere
    double accuracy;     //!< relative to dense = 1 / (1 + dPPL)
    double pplPct;
    double filterRatio;
    double sparsity;
    double recall;
    double retrievedPerStep; //!< full-precision key reads / (query, head)
    double simTokensPerS;
};

double
accuracyOf(double ppl_pct)
{
    return 1.0 / (1.0 + ppl_pct / 100.0);
}

/**
 * Deterministic decode-throughput model, count domain only: bytes
 * moved per (query, KV head) step at dim d —
 *
 *   scf:      region * d/8 (sign plane) + retrieved * 2d (BF16 keys
 *             scored) + selected * 2d (values)
 *   int8:     region * d (INT8 estimate scan) + selected * 2d (keys
 *             re-read full precision for the combined softmax)
 *             + selected * 2d (values)
 *   centroid: blocks * 2d (centroid reads) + retrieved * 2d
 *             (candidate keys) + selected * 2d (values)
 *   anns:     index * 2d (probe reads) + retrieved * 2d + selected*2d
 *
 * divided into a fixed expander bandwidth across the model's
 * layers x KV-head databases. Constants are arbitrary but fixed, so
 * the OUTPUT is a deterministic function of the sweep counts — the CI
 * gate can hold frontier shape without touching wall clock.
 */
double
simTokensPerSecond(const std::string &backend, double region,
                   double retrieved, double selected, double index_rows,
                   uint32_t dim)
{
    constexpr double kExpanderBytesPerS = 64.0e9;
    const double d = static_cast<double>(dim);
    const double bf16 = 2.0 * d;
    double bytes = selected * bf16; // value fetch, every backend
    if (backend == "scf")
        bytes += region * d / 8.0 + retrieved * bf16;
    else if (backend == "int8")
        bytes += region * d + selected * bf16;
    else
        bytes += index_rows * bf16 + retrieved * bf16;
    const auto model = ModelConfig::llama3_8b();
    const double databases = model.kvDatabasesPerUser();
    return kExpanderBytesPerS / (bytes * databases);
}

Point
pointOf(const std::string &backend, const EvalConfig &cfg,
        const EvalResult &r, double index_rows, uint32_t dim)
{
    Point p;
    p.backend = backend;
    p.window = cfg.windowSize;
    p.k = cfg.topK;
    p.threshold = backend == "scf" && !cfg.thresholds.empty()
        ? cfg.thresholds[0]
        : -1;
    p.keepFraction =
        backend == "centroid" ? cfg.centroidKeepFraction : 0.0;
    p.accuracy = accuracyOf(r.pplIncreasePct);
    p.pplPct = r.pplIncreasePct;
    p.filterRatio = r.filterRatio;
    p.sparsity = r.sparsity;
    p.recall = r.recallAtK;
    const double evals =
        std::max<double>(1, r.stats.evaluations);
    const double region = static_cast<double>(r.stats.rawKeys) / evals;
    p.retrievedPerStep =
        static_cast<double>(r.stats.survivorKeys) / evals;
    const double selected =
        static_cast<double>(r.stats.selectedKeys) / evals;
    p.simTokensPerS = simTokensPerSecond(backend, region,
                                         p.retrievedPerStep, selected,
                                         index_rows, dim);
    return p;
}

/** Keep only Pareto-optimal points under (cost asc, accuracy desc). */
template <class CostFn>
std::vector<Point>
paretoFrontier(std::vector<Point> pts, CostFn cost)
{
    std::sort(pts.begin(), pts.end(),
              [&](const Point &a, const Point &b) {
                  return cost(a) < cost(b);
              });
    std::vector<Point> front;
    double best_acc = -1.0;
    for (const Point &p : pts) {
        if (p.accuracy > best_acc) {
            best_acc = p.accuracy;
            front.push_back(p);
        }
    }
    return front;
}

/** True when some `challenger` point strictly dominates some point on
 *  `incumbent_frontier`: cost <= and accuracy >=, one strict. */
template <class CostFn>
bool
beatsFrontier(const std::vector<Point> &challengers,
              const std::vector<Point> &incumbent_frontier, CostFn cost)
{
    for (const Point &c : challengers)
        for (const Point &f : incumbent_frontier)
            if (cost(c) <= cost(f) && c.accuracy >= f.accuracy &&
                (cost(c) < cost(f) || c.accuracy > f.accuracy))
                return true;
    return false;
}

/** True when some challenger is NOT dominated by any incumbent point
 *  (it sits on or above the incumbent frontier). */
template <class CostFn>
bool
onOrAboveFrontier(const std::vector<Point> &challengers,
                  const std::vector<Point> &incumbents, CostFn cost)
{
    for (const Point &c : challengers) {
        bool dominated = false;
        for (const Point &q : incumbents)
            if (cost(q) <= cost(c) && q.accuracy >= c.accuracy &&
                (cost(q) < cost(c) || q.accuracy > c.accuracy)) {
                dominated = true;
                break;
            }
        if (!dominated)
            return true;
    }
    return false;
}

std::vector<const Point *>
ofBackend(const std::vector<Point> &all, const std::string &backend)
{
    std::vector<const Point *> out;
    for (const Point &p : all)
        if (p.backend == backend)
            out.push_back(&p);
    return out;
}

std::vector<Point>
deref(const std::vector<const Point *> &ps)
{
    std::vector<Point> out;
    for (const Point *p : ps)
        out.push_back(*p);
    return out;
}

/**
 * ANNS reference points (the old eval/sparse_baselines comparison):
 * k-means probes and LSH candidate generation on one head's keys,
 * scored with the same retained-mass -> ppl -> accuracy pipeline as
 * the evaluator corpus.
 */
void
annsPoints(uint32_t dim, size_t context, std::vector<Point> &out)
{
    WorkloadConfig wcfg;
    wcfg.headDim = dim;
    HeadWorkload wl(wcfg, Rng(0xA115'0001ULL));
    wl.generate(context);
    const Matrix &keys = wl.keys();
    const float scale = wl.attentionScale();

    Rng rng(0xA115'0002ULL);
    const uint32_t clusters = 128;
    KMeansIndex kmeans(keys, clusters, 4, rng);
    const uint32_t tables = 6, bits = 10;
    LshIndex lsh(keys, tables, bits, rng);

    const uint32_t window = 1024, k = 1024, sinks = 16;
    const size_t win_start = context - window;
    const size_t region = win_start - sinks;
    const int trials = 8;

    struct Acc
    {
        std::string backend;
        double keep;   // probes / clusters for kmeans, 0 for lsh
        double lost = 0.0, retrieved = 0.0, selected = 0.0;
        double indexRows;
    };
    std::vector<Acc> accs = {{"kmeans", 4.0 / clusters, 0, 0, 0,
                              static_cast<double>(clusters)},
                             {"kmeans", 8.0 / clusters, 0, 0, 0,
                              static_cast<double>(clusters)},
                             {"kmeans", 16.0 / clusters, 0, 0, 0,
                              static_cast<double>(clusters)},
                             {"lsh", 0.0, 0, 0, 0,
                              static_cast<double>(tables)}};

    for (int t = 0; t < trials; ++t) {
        const auto q = wl.drawQuery();
        auto probs = attentionScores(q.data(), keys, 0, context, scale);
        softmaxInPlace(probs);
        double dense_part = 0.0;
        for (size_t i = 0; i < sinks; ++i)
            dense_part += probs[i];
        for (size_t i = win_start; i < context; ++i)
            dense_part += probs[i];

        for (Acc &a : accs) {
            const auto cand = a.backend == "kmeans"
                ? kmeans.candidates(
                      q.data(),
                      static_cast<uint32_t>(a.keep * clusters + 0.5))
                : lsh.candidates(q.data());
            // Exact-score the in-region candidates, keep top k.
            std::vector<uint32_t> cidx;
            std::vector<float> cscores;
            for (uint32_t idx : cand) {
                if (idx < sinks || idx >= win_start)
                    continue;
                cidx.push_back(idx);
                cscores.push_back(attentionScores(q.data(), keys, idx,
                                                  idx + 1, scale)[0]);
            }
            const auto sel = topkSelect(cscores, cidx, k);
            double retained = dense_part;
            for (const ScoredIndex &si : sel)
                retained += probs[si.index];
            a.lost += std::max(0.0, 1.0 - retained);
            a.retrieved += static_cast<double>(cidx.size());
            a.selected += static_cast<double>(sel.size());
        }
    }

    for (const Acc &a : accs) {
        const double lost = a.lost / trials;
        const double ppl = 100.0 * (std::exp(lost) - 1.0);
        Point p;
        p.backend = a.backend;
        p.window = window;
        p.k = k;
        p.threshold = -1;
        p.keepFraction = a.keep;
        p.accuracy = accuracyOf(ppl);
        p.pplPct = ppl;
        p.retrievedPerStep = a.retrieved / trials;
        const double selected = a.selected / trials;
        p.filterRatio = 2.0 * static_cast<double>(region) /
            std::max(1.0, p.retrievedPerStep + selected);
        p.sparsity = 1.0 - 1.0 / p.filterRatio;
        p.recall = 0.0; // not measured for the reference points
        p.simTokensPerS = simTokensPerSecond(
            a.backend, static_cast<double>(region), p.retrievedPerStep,
            selected, a.indexRows, dim);
        out.push_back(p);
    }
}

} // namespace
} // namespace longsight

int
main(int argc, char **argv)
{
    using namespace longsight;
    Flags flags(argc, argv);
    const auto context =
        static_cast<size_t>(flags.getInt("context", 32768));
    const auto heads =
        static_cast<uint32_t>(flags.getInt("heads", 4));
    const auto queries =
        static_cast<uint32_t>(flags.getInt("queries", 16));
    const std::string out_path =
        flags.getString("out", "BENCH_pareto.json");
    const auto leftover = flags.unconsumed();
    LS_ASSERT(leftover.empty(), "unknown flag --", leftover.front());

    const auto model = ModelConfig::llama3_8b();
    std::cout << "Building " << fmtTokens(context)
              << " evaluation corpus (" << model.name
              << " shape, Wiki2-like statistics)...\n";
    const WorkloadConfig wcfg = WorkloadConfig::wiki2Like(model.headDim);
    AlgoEvaluator eval(wcfg, heads, context, queries, 0xF14'0001, 20);
    const uint32_t dim = model.headDim;
    const int d = static_cast<int>(dim);

    const std::vector<uint32_t> windows = {256, 1024, 4096};
    const std::vector<uint32_t> ks = {128, 256, 1024};

    std::vector<Point> all;

    // --- SCF: the paper's Figure 4 sweep (W x k x threshold, ITQ). --
    for (uint32_t w : windows) {
        for (uint32_t k : ks) {
            for (int th = 0; th <= d; th += d / 16) {
                EvalConfig cfg;
                cfg.windowSize = w;
                cfg.sinkTokens = 16;
                cfg.topK = k;
                cfg.useItq = true;
                cfg.thresholds.assign(eval.numHeads(), th);
                const EvalResult r = eval.evaluate(cfg);
                if (r.filterRatio <= 0.0)
                    continue;
                all.push_back(pointOf("scf", cfg, r, 0.0, dim));
            }
        }
    }

    // --- INT8 quantized-score estimation (W x k). -------------------
    for (uint32_t w : windows) {
        for (uint32_t k : ks) {
            EvalConfig cfg;
            cfg.windowSize = w;
            cfg.sinkTokens = 16;
            cfg.topK = k;
            cfg.filter = FilterKind::Int8;
            const EvalResult r = eval.evaluate(cfg);
            if (r.filterRatio <= 0.0)
                continue;
            all.push_back(pointOf("int8", cfg, r, 0.0, dim));
        }
    }

    // --- Centroid block scoring (W x k x keep fraction). ------------
    for (uint32_t w : windows) {
        for (uint32_t k : ks) {
            for (double keep : {0.125, 0.25, 0.5}) {
                EvalConfig cfg;
                cfg.windowSize = w;
                cfg.sinkTokens = 16;
                cfg.topK = k;
                cfg.filter = FilterKind::Centroid;
                cfg.centroidKeepFraction = keep;
                const EvalResult r = eval.evaluate(cfg);
                if (r.filterRatio <= 0.0)
                    continue;
                const double blocks = static_cast<double>(
                    (context + AlgoEvaluator::kCentroidBlockTokens - 1) /
                    AlgoEvaluator::kCentroidBlockTokens);
                all.push_back(pointOf("centroid", cfg, r, blocks, dim));
            }
        }
    }

    // --- ANNS software baselines (§3.1/§4 reference points). --------
    annsPoints(dim, context, all);

    // --- Figure 4 example tables + frontier (SCF, as the paper). ----
    const auto scf_ptr = ofBackend(all, "scf");
    const std::pair<uint32_t, uint32_t> examples[] = {
        {256, 128}, {1024, 1024}, {4096, 256}};
    for (const auto &[w, k] : examples) {
        TextTable t("Figure 4 example config: W=" + std::to_string(w) +
                    ", k=" + std::to_string(k) + " (ITQ), " +
                    fmtTokens(context) + " context");
        t.setHeader({"Threshold", "FilterRatio", "Accuracy(rel.dense)"});
        for (const Point *p : scf_ptr) {
            if (p->window == w && p->k == k)
                t.addRow({std::to_string(p->threshold),
                          TextTable::num(p->filterRatio, 1) + "x",
                          TextTable::num(p->accuracy, 4)});
        }
        t.print(std::cout);
    }

    const auto retrievedOf = [](const Point &p) {
        return p.retrievedPerStep;
    };
    const auto negTokensOf = [](const Point &p) {
        return -p.simTokensPerS;
    };

    // --- Cross-backend frontier on accuracy vs retrieved tokens. ----
    TextTable front("Quality per retrieved token: all-backend Pareto "
                    "frontier (" + fmtTokens(context) + " ctx)");
    front.setHeader({"Backend", "Retrieved/step", "Accuracy", "Tokens/s",
                     "Config"});
    for (const Point &p : paretoFrontier(all, retrievedOf)) {
        std::string cfg = "W=" + std::to_string(p.window) +
            " k=" + std::to_string(p.k);
        if (p.threshold >= 0)
            cfg += " TH=" + std::to_string(p.threshold);
        if (p.keepFraction > 0)
            cfg += " keep=" + TextTable::num(p.keepFraction, 3);
        front.addRow({p.backend, TextTable::num(p.retrievedPerStep, 0),
                      TextTable::num(p.accuracy, 4),
                      TextTable::num(p.simTokensPerS, 1), cfg});
    }
    front.print(std::cout);

    // --- §5.4 DynaX comparison (SCF points, as the paper). ----------
    double best_sparsity = 0.0;
    const Point *best = nullptr;
    for (const Point *p : scf_ptr) {
        if (p->pplPct <= 1.0 && p->sparsity > best_sparsity) {
            best_sparsity = p->sparsity;
            best = p;
        }
    }
    TextTable dynax("Sec. 5.4 comparison vs DynaX (sparsity at +1% ppl)");
    dynax.setHeader({"System", "Sparsity", "FilterRatio", "Config"});
    dynax.addRow({"DynaX (reported)", "91.77%", "12.2x", "-"});
    dynax.addRow({"LongSight (paper)", "91.92%", "12.4x", "-"});
    if (best)
        dynax.addRow({"LongSight (this repro)",
                      TextTable::num(100.0 * best_sparsity, 2) + "%",
                      TextTable::num(best->filterRatio, 1) + "x",
                      "W=" + std::to_string(best->window) +
                          " k=" + std::to_string(best->k) +
                          " TH=" + std::to_string(best->threshold)});
    dynax.print(std::cout);

    // --- Headline booleans: where INT8 estimation lands. ------------
    const auto scf_pts = deref(scf_ptr);
    const auto int8_pts = deref(ofBackend(all, "int8"));
    const auto scf_retr_front = paretoFrontier(scf_pts, retrievedOf);
    const bool int8_beats_retrieved =
        beatsFrontier(int8_pts, scf_retr_front, retrievedOf);
    const bool int8_on_throughput_front =
        onOrAboveFrontier(int8_pts, scf_pts, negTokensOf);
    std::cout << "\nINT8 estimation vs packed-sign SCF:\n"
              << "  strictly dominates a quality-per-retrieved-token "
                 "frontier point: "
              << (int8_beats_retrieved ? "YES" : "NO") << "\n"
              << "  on/above the quality-vs-throughput frontier: "
              << (int8_on_throughput_front ? "YES" : "NO") << "\n";

    // --- BENCH_pareto.json ------------------------------------------
    std::ofstream os(out_path);
    LS_ASSERT(os.good(), "cannot write ", out_path);
    BenchModelShape shape{model.numQueryHeads, model.numKvHeads,
                          model.headDim};
    os << "{\n"
       << benchMeta("pareto_harness", shape) << "  \"context\": "
       << context << ",\n  \"eval_heads\": " << heads
       << ",\n  \"eval_queries_per_head\": " << queries
       << ",\n  \"points\": [\n";
    for (size_t i = 0; i < all.size(); ++i) {
        const Point &p = all[i];
        os << "    {\"backend\": \"" << p.backend << "\", \"window\": "
           << p.window << ", \"k\": " << p.k << ", \"threshold\": "
           << p.threshold << ", \"keep_fraction\": " << p.keepFraction
           << ", \"accuracy\": " << p.accuracy
           << ", \"ppl_increase_pct\": " << p.pplPct
           << ", \"filter_ratio\": " << p.filterRatio
           << ", \"sparsity\": " << p.sparsity << ", \"recall_at_k\": "
           << p.recall << ", \"retrieved_per_step\": "
           << p.retrievedPerStep << ", \"sim_tokens_per_s\": "
           << p.simTokensPerS << "}"
           << (i + 1 < all.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"gate\": {\n"
       << "    \"points_scf\": " << scf_pts.size() << ",\n"
       << "    \"points_int8\": " << int8_pts.size() << ",\n"
       << "    \"points_centroid\": "
       << ofBackend(all, "centroid").size() << ",\n"
       << "    \"points_anns\": "
       << ofBackend(all, "kmeans").size() +
            ofBackend(all, "lsh").size()
       << ",\n"
       << "    \"int8_beats_scf_quality_per_retrieved_token\": "
       << (int8_beats_retrieved ? "true" : "false") << ",\n"
       << "    \"int8_on_or_above_scf_throughput_frontier\": "
       << (int8_on_throughput_front ? "true" : "false") << ",\n"
       << "    \"best_scf_sparsity_at_1pct_ppl\": " << best_sparsity
       << "\n  }\n}\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
}

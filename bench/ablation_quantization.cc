/**
 * @file
 * Ablation: INT8 Key Objects for NMA scoring (the "any signed data
 * type" capability of in-memory filtering, §4, applied to the scoring
 * stage the way DynaX applies low-bit keys, §3.2), timing-only.
 *
 * The quality side of this ablation — selection overlap and retained
 * mass under INT8-perturbed scores, and where INT8 estimation lands
 * against the sign-plane scan — lives in bench/pareto_harness now,
 * which sweeps every FilterBackend on one corpus instead of
 * duplicating a per-bench scoring loop here.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "drex/drex_device.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    constexpr uint32_t kDim = 128;

    // Timing: where INT8 does and does not help at DReX scale.
    DrexConfig dc;
    dc.numKvHeads = 8;
    dc.numLayers = 32;
    dc.headDim = kDim;
    TextTable t("Ablation: INT8 effect on offload phases (timing-only)");
    t.setHeader({"Context", "BF16 score [us]", "INT8 score [us]",
                 "BF16 resp [KB]", "INT8 resp [KB]"});
    for (uint64_t ctx : {65536ull, 262144ull, 1'000'000ull}) {
        DrexDevice d1(dc), d2(dc);
        OffloadSpec spec;
        spec.sparseEnd = ctx;
        spec.survivorFraction = 0.09;
        OffloadSpec qspec = spec;
        qspec.quantizedScoring = true;
        const auto rf = d1.nma(0).process(0, spec);
        const auto rq = d2.nma(0).process(0, qspec);
        t.addRow({fmtTokens(ctx),
                  TextTable::num(toMicroseconds(rf.timing.score)),
                  TextTable::num(toMicroseconds(rq.timing.score)),
                  TextTable::num(rf.valueBytes / 1024.0, 1),
                  TextTable::num(rq.valueBytes / 1024.0, 1)});
    }
    t.print(std::cout);
    std::cout << "Two findings: (1) INT8 keys do NOT speed the scoring "
                 "fetch — SCF\nsurvivors are scattered, so every key pays "
                 "full DRAM burst granularity\nregardless of its payload "
                 "width; (2) INT8 *values* nearly halve the CXL\nresponse "
                 "payload, which Fig. 8 shows is the short-context and "
                 "full-\nutilization bottleneck. Quantization helps the "
                 "link, not the banks.\n";
    return 0;
}

/**
 * @file
 * Ablation: INT8 Key Objects for NMA scoring (the "any signed data
 * type" capability of in-memory filtering, §4, applied to the scoring
 * stage the way DynaX applies low-bit keys, §3.2). Measures the
 * scoring-phase speedup from halving the per-survivor fetch and the
 * quality cost of selecting top-k from perturbed scores.
 */

#include <cmath>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/attention.hh"
#include "core/hybrid_attention.hh"
#include "core/kv_cache.hh"
#include "drex/drex_device.hh"
#include "model/workload.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    constexpr uint32_t kDim = 128;
    constexpr size_t kContext = 16384;

    // Quality: retained softmax mass with exact vs INT8 scoring.
    WorkloadConfig wcfg;
    wcfg.headDim = kDim;
    HeadWorkload wl(wcfg, Rng(21));
    wl.generate(kContext);
    KvCache full(kDim), quant(kDim);
    full.appendAll(wl.keys(), wl.values());
    quant.appendAll(wl.keys(), wl.values());
    quant.enableKeyQuantization();

    LongSightConfig cfg;
    cfg.windowSize = 1024;
    cfg.sinkTokens = 16;
    cfg.topK = 256;
    LongSightAttn exact(cfg, 1);
    cfg.quantizedScoring = true;
    LongSightAttn int8(cfg, 1);

    const float scale = wl.attentionScale();
    double mass_exact = 0.0, mass_int8 = 0.0, overlap = 0.0;
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
        const auto q = wl.drawQuery();
        const auto dense =
            denseAttention(q.data(), full.keys(), full.values(), scale);
        const auto re = exact.computeHead(q, full, 0);
        const auto rq = int8.computeHead(q, quant, 0);
        for (uint32_t idx : re.attended)
            mass_exact += dense.probs[idx];
        for (uint32_t idx : rq.attended)
            mass_int8 += dense.probs[idx];
        size_t common = 0;
        for (uint32_t idx : rq.attended)
            common += std::binary_search(re.attended.begin(),
                                         re.attended.end(), idx);
        overlap += static_cast<double>(common) / re.attended.size();
    }

    TextTable q("Ablation: INT8 key scoring quality (" +
                fmtTokens(kContext) + " ctx, k=256)");
    q.setHeader({"Scoring", "RetainedMass", "SelectionOverlap"});
    q.addRow({"BF16 (exact)", TextTable::num(mass_exact / trials, 4), "-"});
    q.addRow({"INT8", TextTable::num(mass_int8 / trials, 4),
              TextTable::num(100.0 * overlap / trials, 1) + "%"});
    q.print(std::cout);

    // Timing: where INT8 does and does not help at DReX scale.
    DrexConfig dc;
    dc.numKvHeads = 8;
    dc.numLayers = 32;
    dc.headDim = kDim;
    TextTable t("Ablation: INT8 effect on offload phases (timing-only)");
    t.setHeader({"Context", "BF16 score [us]", "INT8 score [us]",
                 "BF16 resp [KB]", "INT8 resp [KB]"});
    for (uint64_t ctx : {65536ull, 262144ull, 1'000'000ull}) {
        DrexDevice d1(dc), d2(dc);
        OffloadSpec spec;
        spec.sparseEnd = ctx;
        spec.survivorFraction = 0.09;
        OffloadSpec qspec = spec;
        qspec.quantizedScoring = true;
        const auto rf = d1.nma(0).process(0, spec);
        const auto rq = d2.nma(0).process(0, qspec);
        t.addRow({fmtTokens(ctx),
                  TextTable::num(toMicroseconds(rf.timing.score)),
                  TextTable::num(toMicroseconds(rq.timing.score)),
                  TextTable::num(rf.valueBytes / 1024.0, 1),
                  TextTable::num(rq.valueBytes / 1024.0, 1)});
    }
    t.print(std::cout);
    std::cout << "Two findings: (1) INT8 keys do NOT speed the scoring "
                 "fetch — SCF\nsurvivors are scattered, so every key pays "
                 "full DRAM burst granularity\nregardless of its payload "
                 "width; (2) INT8 *values* nearly halve the CXL\nresponse "
                 "payload, which Fig. 8 shows is the short-context and "
                 "full-\nutilization bottleneck. Quantization helps the "
                 "link, not the banks.\n";
    return 0;
}

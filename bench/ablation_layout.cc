/**
 * @file
 * Ablation for the §7.3.3 channel-interleaving claim: "This
 * interleaving is essential: if surviving Keys after filtering are
 * accessed from only one memory channel, the result would be
 * bandwidth imbalance and NMA stalls." Compares the scoring-phase
 * key-fetch time with keys striped across all 8 channels of a
 * package vs stored contiguously in a single channel, and shows the
 * end-to-end effect on a full offload.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "dram/package.hh"
#include "drex/drex_device.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    const LpddrTimings timings;
    const uint32_t key_bytes = 256; // d=128 BF16

    TextTable t("Ablation: channel-interleaved vs contiguous key fetch");
    t.setHeader({"Survivor keys", "Striped [us]", "Contiguous [us]",
                 "Speedup"});
    for (uint32_t keys : {1024u, 8192u, 65536u}) {
        DramPackage striped(timings, 8), contiguous(timings, 8);
        Tick ts = 0, tc = 0;
        for (uint32_t i = 0; i < keys; ++i) {
            const uint32_t bank = i % timings.banksPerChannel;
            const uint64_t row = i / 8;
            ts = striped.readStriped(0, bank, row, key_bytes);
            tc = contiguous.readContiguous(0, 0, bank, row, key_bytes);
        }
        t.addRow({std::to_string(keys),
                  TextTable::num(toMicroseconds(ts)),
                  TextTable::num(toMicroseconds(tc)),
                  TextTable::num(static_cast<double>(tc) / ts, 2) + "x"});
    }
    t.print(std::cout);

    // End-to-end: the scoring phase share of a long-context offload.
    DrexConfig cfg;
    cfg.numKvHeads = 8;
    cfg.numLayers = 32;
    cfg.headDim = 128;
    DrexDevice dev(cfg);
    OffloadSpec spec;
    spec.sparseEnd = 131072;
    spec.survivorFraction = 0.09;
    const auto r = dev.nma(0).process(0, spec);
    TextTable e("Context: scoring share of a 128K offload (striped layout)");
    e.setHeader({"Phase", "Time [us]", "Share"});
    const Tick total = r.doneTick - r.startTick;
    auto row = [&](const char *name, Tick v) {
        e.addRow({name, TextTable::num(toMicroseconds(v)),
                  TextTable::num(100.0 * v / total, 1) + "%"});
    };
    row("score (key fetch + dot)", r.timing.score);
    row("value read", r.timing.valueRead);
    row("filter+bitmap+addr",
        r.timing.filter + r.timing.bitmapRead + r.timing.addrGen);
    e.print(std::cout);
    std::cout << "Without interleaving the dominant scoring phase would "
                 "slow by ~8x (single-channel bandwidth), stalling the "
                 "NMA exactly as §7.3.3 argues.\n";
    return 0;
}

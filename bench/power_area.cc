/**
 * @file
 * Reproduces the §9.4 power and area analysis: per-component and
 * total peak power of a DReX unit, NMA area, and PFU die-area
 * overhead, plus derived efficiency figures against the H100 the
 * device is paired with.
 */

#include <iostream>

#include "drex/drex_device.hh"
#include "gpu/gpu_model.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    const DrexGeometry g;
    const DrexPowerArea pa = DrexDevice::powerArea();
    const LpddrTimings timings;

    TextTable t("Sec. 9.4: DReX power and area");
    t.setHeader({"Component", "Count", "Peak power [W]", "Area"});
    t.addRow({"LPDDR5X package (PIM-enabled)", std::to_string(g.numPackages),
              TextTable::num(pa.packagePeakWatts, 1), "-"});
    t.addRow({"NMA (16 nm)", std::to_string(g.numPackages),
              TextTable::num(pa.nmaPeakWatts, 3),
              TextTable::num(pa.nmaAreaMm2, 1) + " mm^2"});
    t.addRow({"PFU array", std::to_string(g.totalPfus()), "(in package)",
              TextTable::num(100.0 * pa.pfuDieAreaOverhead, 1) +
                  "% of DRAM die"});
    t.addRow({"DCC extensions", "1", "negligible", "negligible"});
    t.addRow({"Total DReX unit", "1",
              TextTable::num(pa.totalPeakWatts(g), 1), "-"});
    t.print(std::cout);

    const double total_bw =
        timings.peakBandwidth() * g.totalChannels() / 1e9; // GB/s
    TextTable d("Derived efficiency figures");
    d.setHeader({"Metric", "Value"});
    d.addRow({"DReX peak power / H100 SXM TDP (700 W)",
              TextTable::num(100.0 * pa.totalPeakWatts(g) / 700.0, 1) + "%"});
    d.addRow({"DReX NMA-visible bandwidth",
              TextTable::num(total_bw / 1000.0, 2) + " TB/s"});
    d.addRow({"Bandwidth per watt (DReX)",
              TextTable::num(total_bw / pa.totalPeakWatts(g), 1) +
                  " GB/s/W"});
    d.addRow({"Capacity per watt (DReX)",
              TextTable::num(512.0 / pa.totalPeakWatts(g), 2) + " GB/W"});
    d.print(std::cout);
    return 0;
}

/**
 * @file
 * Reproduces Figure 4: accuracy vs KV-cache filter-ratio Pareto
 * frontiers for LongSight's hybrid, ITQ-enhanced sparse attention at
 * a fixed context length, sweeping window size W, top-k, and SCF
 * thresholds. Shows three example (W, k) configurations plus the
 * frontier across every configuration tested, as the paper does.
 *
 * Also reproduces the §5.4 DynaX comparison: the sparsity LongSight
 * reaches at a 1 % perplexity increase (paper: 91.92 % vs DynaX's
 * 91.77 %).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "util/table.hh"

namespace longsight {
namespace {

struct Point
{
    double ratio;
    double accuracy; // relative to dense = 1 / (1 + dPPL)
    uint32_t window;
    uint32_t k;
    int threshold;
};

double
accuracyOf(const EvalResult &r)
{
    return 1.0 / (1.0 + r.pplIncreasePct / 100.0);
}

/** Keep only Pareto-optimal points (max accuracy for given ratio). */
std::vector<Point>
paretoFrontier(std::vector<Point> pts)
{
    std::sort(pts.begin(), pts.end(), [](const Point &a, const Point &b) {
        return a.ratio < b.ratio;
    });
    std::vector<Point> front;
    double best_acc = -1.0;
    for (auto it = pts.rbegin(); it != pts.rend(); ++it) {
        if (it->accuracy > best_acc) {
            best_acc = it->accuracy;
            front.push_back(*it);
        }
    }
    std::reverse(front.begin(), front.end());
    return front;
}

} // namespace
} // namespace longsight

int
main()
{
    using namespace longsight;
    const auto model = ModelConfig::llama3_8b();
    const size_t context = 32768;

    std::cout << "Building " << fmtTokens(context) << " evaluation corpus ("
              << model.name << " shape, Wiki2-like statistics as in the "
              << "paper's DynaX setup)...\n";
    const WorkloadConfig wcfg = WorkloadConfig::wiki2Like(model.headDim);
    AlgoEvaluator eval(wcfg, 4, context, 16, 0xF14'0001, 20);

    const std::vector<uint32_t> windows = {256, 1024, 4096};
    const std::vector<uint32_t> ks = {128, 256, 1024};
    const int d = static_cast<int>(model.headDim);

    std::vector<Point> all;
    for (uint32_t w : windows) {
        for (uint32_t k : ks) {
            for (int th = 0; th <= d; th += d / 16) {
                EvalConfig cfg;
                cfg.windowSize = w;
                cfg.sinkTokens = 16;
                cfg.topK = k;
                cfg.useItq = true;
                cfg.thresholds.assign(eval.numHeads(), th);
                const EvalResult r = eval.evaluate(cfg);
                if (r.filterRatio <= 0.0)
                    continue;
                all.push_back({r.filterRatio, accuracyOf(r), w, k, th});
            }
        }
    }

    // Three example configurations (paper shows three curves).
    const std::pair<uint32_t, uint32_t> examples[] = {
        {256, 128}, {1024, 1024}, {4096, 256}};
    for (const auto &[w, k] : examples) {
        TextTable t("Figure 4 example config: W=" + std::to_string(w) +
                    ", k=" + std::to_string(k) + " (ITQ), " +
                    fmtTokens(context) + " context");
        t.setHeader({"Threshold", "FilterRatio", "Accuracy(rel.dense)"});
        for (const Point &p : all) {
            if (p.window == w && p.k == k)
                t.addRow({std::to_string(p.threshold),
                          TextTable::num(p.ratio, 1) + "x",
                          TextTable::num(p.accuracy, 4)});
        }
        t.print(std::cout);
    }

    TextTable front("Figure 4 'All Configs' Pareto frontier");
    front.setHeader({"FilterRatio", "Accuracy", "W", "k", "TH"});
    for (const Point &p : paretoFrontier(all)) {
        front.addRow({TextTable::num(p.ratio, 1) + "x",
                      TextTable::num(p.accuracy, 4), std::to_string(p.window),
                      std::to_string(p.k), std::to_string(p.threshold)});
    }
    front.print(std::cout);

    // §5.4 DynaX comparison: best sparsity at <= 1 % ppl increase.
    double best_sparsity = 0.0;
    Point best{};
    for (const Point &p : all) {
        const double ppl_pct = (1.0 / p.accuracy - 1.0) * 100.0;
        const double sparsity = 1.0 - 1.0 / p.ratio;
        if (ppl_pct <= 1.0 && sparsity > best_sparsity) {
            best_sparsity = sparsity;
            best = p;
        }
    }
    TextTable dynax("Sec. 5.4 comparison vs DynaX (sparsity at +1% ppl)");
    dynax.setHeader({"System", "Sparsity", "FilterRatio", "Config"});
    dynax.addRow({"DynaX (reported)", "91.77%", "12.2x", "-"});
    dynax.addRow({"LongSight (paper)", "91.92%", "12.4x", "-"});
    dynax.addRow({"LongSight (this repro)",
                  TextTable::num(100.0 * best_sparsity, 2) + "%",
                  TextTable::num(best.ratio, 1) + "x",
                  "W=" + std::to_string(best.window) +
                      " k=" + std::to_string(best.k) +
                      " TH=" + std::to_string(best.threshold)});
    dynax.print(std::cout);
    return 0;
}

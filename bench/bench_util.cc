#include "bench/bench_util.hh"

#include <sstream>

#include "tensor/kernels.hh"
#include "util/thread_pool.hh"

// Injected by bench/CMakeLists.txt from `git rev-parse --short HEAD`.
#ifndef LONGSIGHT_GIT_COMMIT
#define LONGSIGHT_GIT_COMMIT "unknown"
#endif

namespace longsight {

std::string
benchMeta(const std::string &bench, const BenchModelShape &shape)
{
    std::ostringstream os;
    os << "  \"bench\": \"" << bench << "\",\n"
       << "  \"git_commit\": \"" << LONGSIGHT_GIT_COMMIT << "\",\n"
       << "  \"threads\": " << ThreadPool::global().threads() << ",\n"
       << "  \"kernel_backend\": \""
       << kernelBackendName(activeKernelBackend()) << "\",\n";
    if (shape.queryHeads != 0)
        os << "  \"model_shape\": {\"query_heads\": " << shape.queryHeads
           << ", \"kv_heads\": " << shape.kvHeads
           << ", \"head_dim\": " << shape.headDim << "},\n";
    return os.str();
}

std::optional<TuneResult>
tuneThresholds(const AlgoEvaluator &eval, EvalConfig base,
               double ppl_budget_pct, int step, uint32_t max_iters)
{
    // Feasibility probe: thresholds all zero.
    base.thresholds.assign(eval.numHeads(), 0);
    const EvalResult at_zero = eval.evaluate(base);
    if (at_zero.pplIncreasePct > ppl_budget_pct)
        return std::nullopt;

    ThresholdTuner tuner(ppl_budget_pct, step, max_iters);
    auto evaluate = [&](const std::vector<int> &th) {
        EvalConfig cfg = base;
        cfg.thresholds = th;
        const EvalResult r = eval.evaluate(cfg);
        ThresholdEval ev;
        ev.pplIncreasePct = r.pplIncreasePct;
        ev.overallFilterRatio = r.filterRatio;
        ev.headFilterRatios = r.headFilterRatios;
        return ev;
    };
    return tuner.tune(evaluate, eval.numHeads(), eval.headDim());
}

std::string
fmtTokens(uint64_t tokens)
{
    std::ostringstream os;
    if (tokens >= 1'000'000 && tokens % 1'000'000 == 0)
        os << tokens / 1'000'000 << "M";
    else if (tokens >= 1024 && tokens % 1024 == 0)
        os << tokens / 1024 << "K";
    else
        os << tokens;
    return os.str();
}

} // namespace longsight

#include "bench/bench_util.hh"

#include <sstream>

namespace longsight {

std::optional<TuneResult>
tuneThresholds(const AlgoEvaluator &eval, EvalConfig base,
               double ppl_budget_pct, int step, uint32_t max_iters)
{
    // Feasibility probe: thresholds all zero.
    base.thresholds.assign(eval.numHeads(), 0);
    const EvalResult at_zero = eval.evaluate(base);
    if (at_zero.pplIncreasePct > ppl_budget_pct)
        return std::nullopt;

    ThresholdTuner tuner(ppl_budget_pct, step, max_iters);
    auto evaluate = [&](const std::vector<int> &th) {
        EvalConfig cfg = base;
        cfg.thresholds = th;
        const EvalResult r = eval.evaluate(cfg);
        ThresholdEval ev;
        ev.pplIncreasePct = r.pplIncreasePct;
        ev.overallFilterRatio = r.filterRatio;
        ev.headFilterRatios = r.headFilterRatios;
        return ev;
    };
    return tuner.tune(evaluate, eval.numHeads(), eval.headDim());
}

std::string
fmtTokens(uint64_t tokens)
{
    std::ostringstream os;
    if (tokens >= 1'000'000 && tokens % 1'000'000 == 0)
        os << tokens / 1'000'000 << "M";
    else if (tokens >= 1024 && tokens % 1024 == 0)
        os << tokens / 1024 << "K";
    else
        os << tokens;
    return os.str();
}

} // namespace longsight

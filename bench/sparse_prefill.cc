/**
 * @file
 * Block-sparse prefill bench (ROADMAP item 3): the claims the
 * packed-sign Q/K block estimation path stands on, checked
 * functionally and reported to BENCH_prefill.json.
 *
 * 1. Identity — knob = Dense produces byte-for-byte the dense causal
 *    prompt pass (densePrefillReference), monolithic AND chunked, at a
 *    non-block-multiple context and a non-power-of-two block size. Any
 *    divergence exits nonzero.
 *
 * 2. Knob sweep at the 8B/32K shape — block size x threshold (and a
 *    TopFraction point) swept with the estimate-only pass over the
 *    full 32K-token synthetic workload, so every count (block-skip
 *    fraction, attended token pairs) is exactly what the real pass
 *    would produce. Quality is probed on sampled query positions
 *    against the dense softmax: lost probability mass -> the
 *    AlgoEvaluator perplexity proxy (100*(exp(lost)-1)) plus dense
 *    top-k recall. The headline metric is a *simulated* speedup,
 *    deliberately count-based so CI can gate it on any machine:
 *
 *        dense_pairs / (attended_pairs + estimation_pair_equivalents)
 *
 *    where one "pair" is one d-dim dot product and the estimation
 *    charge uses fixed documented constants (packing a vector's signs
 *    = 1 pair; one block-signature concordance = 1/16 pair, generous
 *    for d=128 where XOR+popcount touches 2 words vs 128 FMAs).
 *
 * 3. Wall-clock spot check — dense vs sparse prompt pass, real
 *    attention, at a reduced context (scaling honesty: see
 *    bench_util.hh); reported but never gated.
 *
 * 4. TTFT — the ServingEngine runs the same Poisson trace under the
 *    dense prefill cost model and under sparsePrefillChunkTime wired
 *    to the sweep's best knob; TTFT p50/p99 speedups are deterministic
 *    and gated. A single-request 32K TTFT ratio is reported alongside.
 *
 * The bench exits nonzero unless: identity holds, the decision-record
 * reconstruction of attended counts matches the real pass, and some
 * knob with ppl increase <= 1% reaches >= 2x simulated speedup.
 *
 * Run:  ./build/bench/sparse_prefill
 *       ./build/bench/sparse_prefill --context 32768 --samples 64 \
 *           --out BENCH_prefill.json
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/prefill_attention.hh"
#include "gpu/gpu_model.hh"
#include "model/model_config.hh"
#include "model/traffic.hh"
#include "model/workload.hh"
#include "sim/serving_engine.hh"
#include "tensor/kernels.hh"
#include "tensor/softmax.hh"
#include "tensor/topk_heap.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace longsight {
namespace {

/** Estimation charge constants (see file comment). */
constexpr double kPackPairEquiv = 1.0;
constexpr double kScanPairEquiv = 1.0 / 16.0;
/** Dense-recall probe depth. */
constexpr size_t kRecallK = 64;
/** Quality/acceptance budgets for selecting the best knob. */
constexpr double kPplBudgetPct = 1.0;
constexpr double kSpeedupTarget = 2.0;

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** One synthetic KV head's prompt stream (self-query convention). */
struct HeadStream
{
    Matrix keys;   //!< doubles as the query matrix
    Matrix values;
    float scale = 1.0f;
};

std::vector<HeadStream>
makeStreams(uint32_t head_dim, uint32_t heads, size_t n, uint64_t seed)
{
    std::vector<HeadStream> out;
    auto workloads =
        makeHeadWorkloads(WorkloadConfig::pgLike(head_dim), heads, seed);
    for (auto &wl : workloads) {
        wl.generate(n);
        HeadStream s;
        s.keys = wl.keys();
        s.values = wl.values();
        s.scale = wl.attentionScale();
        out.push_back(std::move(s));
    }
    return out;
}

/**
 * Token-membership test reconstructed from a Q-block's decision
 * record, mirroring runTask's assembly: whole sink blocks, knob
 * survivors, and the forced window + frontier region. Validated
 * against the real pass's attended counts in runConsistency().
 */
struct DecisionMembership
{
    const PrefillBlockDecision &d;
    size_t blockTokens;
    std::vector<uint8_t> kept;

    DecisionMembership(const PrefillBlockDecision &dec, size_t B)
        : d(dec), blockTokens(B), kept(dec.qBlock + 1, 0)
    {
        for (uint32_t kb : d.keptBlocks)
            kept[kb] = 1;
    }

    bool attended(size_t token, size_t query) const
    {
        if (token > query)
            return false;
        const size_t tb = token / blockTokens;
        return tb < d.sinkBlocks || tb >= d.windowStart ||
            (tb < kept.size() && kept[tb]);
    }
};

/** Outcome of one sweep point, merged over heads. */
struct SweepRow
{
    std::string name;
    PrefillSparsityConfig cfg;
    PrefillStats stats;
    double estPairs = 0.0; //!< estimation charge, pair equivalents
    double lostMass = 0.0;
    double recallAtK = 0.0;

    double simulatedSpeedup() const
    {
        const double attended = static_cast<double>(stats.attendedTokens);
        const double dense = static_cast<double>(stats.denseTokens);
        return dense / (attended + estPairs);
    }

    double estOverhead() const
    {
        return estPairs / static_cast<double>(stats.denseTokens);
    }

    double pplIncreasePct() const
    {
        return 100.0 * (std::exp(lostMass) - 1.0);
    }
};

/**
 * Run one knob over every head stream with the estimate-only pass and
 * probe quality on `samples` query positions per head: lost dense
 * softmax mass outside the attended set, and dense top-k recall.
 */
SweepRow
runSweepPoint(const std::string &name, PrefillSparsityConfig cfg,
              const std::vector<HeadStream> &streams, size_t n,
              size_t samples)
{
    SweepRow row;
    row.name = name;
    cfg.estimateOnly = true;
    cfg.recordDecisions = true;
    row.cfg = cfg;

    double lost_total = 0.0, recall_total = 0.0;
    size_t evals = 0;
    std::vector<float> probs;
    std::vector<ScoredIndex> top;
    for (const HeadStream &s : streams) {
        BlockSparsePrefill pass(s.keys.cols(), cfg);
        Matrix none(0, s.keys.cols());
        pass.advance(s.keys, s.keys, s.values, s.scale, n, true, none);
        row.stats.merge(pass.stats());
        // Estimation charge: every token's signs packed once for the
        // K-block signature and once for the Q-block signature, plus
        // one concordance per (Q-block, candidate K-block).
        row.estPairs += kPackPairEquiv * 2.0 * static_cast<double>(n) +
            kScanPairEquiv *
                static_cast<double>(pass.stats().candidateBlocks);

        // Quality probe on evenly spaced query positions past the
        // forced window (earlier queries are fully dense by contract).
        const size_t lo = cfg.windowTokens + 2 * cfg.blockTokens;
        if (lo >= n || samples == 0)
            continue;
        for (size_t k = 0; k < samples; ++k) {
            const size_t i = lo +
                (n - 1 - lo) * k / std::max<size_t>(samples - 1, 1);
            const PrefillBlockDecision &d =
                pass.decisions()[i / cfg.blockTokens];
            LS_ASSERT(d.qBlock == i / cfg.blockTokens,
                      "decision record out of order");
            DecisionMembership mem(d, cfg.blockTokens);
            probs.resize(i + 1);
            batchDotScaleRange(s.keys.row(i), s.keys, 0, i + 1, s.scale,
                               probs.data());
            softmaxInPlace(probs.data(), i + 1);
            double lost = 0.0;
            for (size_t t = 0; t <= i; ++t)
                if (!mem.attended(t, i))
                    lost += probs[t];
            lost_total += lost;
            // Recall of the dense top-k inside the attended set.
            top.clear();
            top.resize(kRecallK);
            size_t hs = 0;
            for (size_t t = 0; t <= i; ++t)
                hs = topk_heap::push(
                    top.data(), hs, kRecallK,
                    ScoredIndex{probs[t], static_cast<uint32_t>(t)});
            size_t hit = 0;
            for (size_t j = 0; j < hs; ++j)
                if (mem.attended(top[j].index, i))
                    ++hit;
            recall_total +=
                static_cast<double>(hit) / static_cast<double>(hs);
            ++evals;
        }
    }
    if (evals) {
        row.lostMass = lost_total / static_cast<double>(evals);
        row.recallAtK = recall_total / static_cast<double>(evals);
    }
    return row;
}

/** Section 1 payload. */
struct IdentityResult
{
    bool denseIdentical = true;
    bool chunkedIdentical = true;
    size_t context = 0;
};

/**
 * knob = Dense must reproduce densePrefillReference bit for bit, both
 * monolithically and chunked at awkward boundaries, for a block size
 * dividing nothing in sight (96) and the default (128).
 */
IdentityResult
runIdentity(const HeadStream &s, size_t n)
{
    IdentityResult r;
    r.context = n;
    Matrix ref(n, s.keys.cols());
    densePrefillReference(s.keys, s.keys, s.values, s.scale, n, ref);
    const size_t bytes = n * s.keys.cols() * sizeof(float);

    for (size_t B : {size_t{128}, size_t{96}}) {
        PrefillSparsityConfig cfg;
        cfg.blockTokens = B;
        cfg.mode = PrefillSparsityMode::Dense;

        BlockSparsePrefill mono(s.keys.cols(), cfg);
        Matrix out(n, s.keys.cols());
        mono.advance(s.keys, s.keys, s.values, s.scale, n, true, out);
        if (std::memcmp(ref.data(), out.data(), bytes) != 0) {
            std::cerr << "FAIL: knob=Dense diverged from dense prefill "
                         "(block size "
                      << B << ")\n";
            r.denseIdentical = false;
        }

        BlockSparsePrefill chunked(s.keys.cols(), cfg);
        Matrix out2(n, s.keys.cols());
        for (size_t upTo = 0; upTo < n;) {
            upTo = std::min(n, upTo + 321); // awkward chunk quantum
            chunked.advance(s.keys, s.keys, s.values, s.scale, upTo,
                            upTo == n, out2);
        }
        if (std::memcmp(ref.data(), out2.data(), bytes) != 0) {
            std::cerr << "FAIL: chunked knob=Dense diverged (block size "
                      << B << ")\n";
            r.chunkedIdentical = false;
        }
    }
    return r;
}

/** Section 1b payload. */
struct ConsistencyResult
{
    bool countsConsistent = true;
    bool chunkedSparseIdentical = true;
};

/**
 * Cross-validate the bench's decision-record reconstruction (the
 * quality probe's membership test) against the REAL sparse pass: the
 * reconstructed attended count must equal stats().attendedTokens
 * exactly, and a chunked sparse pass must match the monolithic one
 * byte for byte.
 */
ConsistencyResult
runConsistency(const HeadStream &s, size_t n)
{
    ConsistencyResult r;
    PrefillSparsityConfig cfg;
    cfg.blockTokens = 128;
    cfg.mode = PrefillSparsityMode::Threshold;
    cfg.threshold = static_cast<int>(s.keys.cols() / 2);
    cfg.recordDecisions = true;

    BlockSparsePrefill pass(s.keys.cols(), cfg);
    Matrix out(n, s.keys.cols());
    pass.advance(s.keys, s.keys, s.values, s.scale, n, true, out);

    uint64_t reconstructed = 0;
    for (const PrefillBlockDecision &d : pass.decisions()) {
        DecisionMembership mem(d, cfg.blockTokens);
        for (size_t i = d.qBegin; i < d.qEnd; ++i)
            for (size_t t = 0; t <= i; ++t)
                if (mem.attended(t, i))
                    ++reconstructed;
    }
    if (reconstructed != pass.stats().attendedTokens) {
        std::cerr << "FAIL: decision-record reconstruction counted "
                  << reconstructed << " attended pairs, real pass "
                  << pass.stats().attendedTokens << "\n";
        r.countsConsistent = false;
    }

    BlockSparsePrefill chunked(s.keys.cols(), cfg);
    Matrix out2(n, s.keys.cols());
    for (size_t upTo = 0; upTo < n;) {
        upTo = std::min(n, upTo + 517);
        chunked.advance(s.keys, s.keys, s.values, s.scale, upTo,
                        upTo == n, out2);
    }
    if (std::memcmp(out.data(), out2.data(),
                    n * s.keys.cols() * sizeof(float)) != 0) {
        std::cerr << "FAIL: chunked sparse prefill diverged from "
                     "monolithic at threshold knob\n";
        r.chunkedSparseIdentical = false;
    }
    return r;
}

/** Section 3 payload (wall clock; reported, never gated). */
struct TimedResult
{
    size_t context = 0;
    double denseSec = 0.0;
    double sparseSec = 0.0;
    double denseTokensPerSec = 0.0;
    double sparseTokensPerSec = 0.0;
    double measuredSpeedup = 0.0;
};

TimedResult
runTimed(const HeadStream &s, size_t n, const PrefillSparsityConfig &best)
{
    TimedResult r;
    r.context = n;
    Matrix out(n, s.keys.cols());

    auto t0 = std::chrono::steady_clock::now();
    densePrefillReference(s.keys, s.keys, s.values, s.scale, n, out);
    r.denseSec = secondsSince(t0);

    PrefillSparsityConfig cfg = best;
    cfg.estimateOnly = false;
    cfg.recordDecisions = false;
    BlockSparsePrefill pass(s.keys.cols(), cfg);
    t0 = std::chrono::steady_clock::now();
    pass.advance(s.keys, s.keys, s.values, s.scale, n, true, out);
    r.sparseSec = secondsSince(t0);

    r.denseTokensPerSec = static_cast<double>(n) / r.denseSec;
    r.sparseTokensPerSec = static_cast<double>(n) / r.sparseSec;
    r.measuredSpeedup = r.denseSec / r.sparseSec;
    return r;
}

/** Section 4 payload. */
struct TtftResult
{
    double attentionShare = 0.0;
    double densePrefill32kMs = 0.0;
    double sparsePrefill32kMs = 0.0;
    double speedup32k = 0.0;
    double denseP50 = 0.0, denseP99 = 0.0;
    double sparseP50 = 0.0, sparseP99 = 0.0;
    double speedupP50 = 0.0, speedupP99 = 0.0;
};

/**
 * Serve one Poisson trace twice — dense prefill cost vs the same cost
 * wrapped by sparsePrefillChunkTime at the best knob's measured
 * attended fraction and estimation overhead. Both runs are
 * deterministic, so the speedups are gateable.
 */
TtftResult
runTtft(const SweepRow &best, uint32_t requests, uint64_t seed)
{
    TtftResult r;
    const auto model = ModelConfig::llama3_8b();
    const GpuModel gpu(GpuConfig::h100(), model);
    const uint64_t maxPrompt = 32768;

    // Attention's share of dense prefill compute at the 32K prompt:
    // causal attention flops (averaged over positions) vs the
    // weight-streaming flops per token, straight from the model shape.
    const double attn = static_cast<double>(maxPrompt) *
        static_cast<double>(
            model.attentionFlopsPerToken((maxPrompt + 1) / 2));
    const double rest = static_cast<double>(maxPrompt) *
        static_cast<double>(model.decodeFlopsPerTokenNoAttn());
    r.attentionShare = attn / (attn + rest);

    SparsePrefillCostParams params;
    params.attentionShare = r.attentionShare;
    params.attendedFraction = best.stats.attendedFraction();
    params.estimationOverhead = best.estOverhead();

    auto densePrefill = [&gpu](uint64_t chunk, uint64_t done) {
        return gpu.prefillTime(done + chunk) - gpu.prefillTime(done);
    };
    auto sparsePrefill = sparsePrefillChunkTime(densePrefill, params);

    r.densePrefill32kMs = toSeconds(densePrefill(maxPrompt, 0)) * 1e3;
    r.sparsePrefill32kMs = toSeconds(sparsePrefill(maxPrompt, 0)) * 1e3;
    r.speedup32k = r.densePrefill32kMs / r.sparsePrefill32kMs;

    TrafficConfig traffic;
    traffic.requests = requests;
    traffic.arrivalsPerSec = 2.0;
    traffic.seed = seed;
    traffic.promptLogSigma = 1.3;
    traffic.promptMax = maxPrompt;
    traffic.outputMax = 1024;

    ServingEngineConfig ecfg;
    ecfg.maxBatch = 64;
    ecfg.prefillChunkTokens = 2048;

    ServingCostModel cost;
    cost.decodeStepTime =
        [&gpu](const std::vector<uint64_t> &contexts) {
            uint64_t max_ctx = 1;
            for (uint64_t c : contexts)
                max_ctx = std::max(max_ctx, c);
            const auto users = static_cast<uint32_t>(contexts.size());
            return gpu.decodeNonAttentionTime(users) +
                gpu.denseAttentionTime(max_ctx, users);
        };

    const auto serve = [&](bool sparse) {
        cost.prefillChunkTime = sparse
            ? sparsePrefill
            : std::function<Tick(uint64_t, uint64_t)>(densePrefill);
        ServingEngine engine(ecfg, cost);
        return engine.run(generateTraffic(traffic));
    };
    const ServingEngineResult dense = serve(false);
    const ServingEngineResult spar = serve(true);
    r.denseP50 = dense.ttftP50Ms;
    r.denseP99 = dense.ttftP99Ms;
    r.sparseP50 = spar.ttftP50Ms;
    r.sparseP99 = spar.ttftP99Ms;
    r.speedupP50 = r.denseP50 / r.sparseP50;
    r.speedupP99 = r.denseP99 / r.sparseP99;
    return r;
}

const char *
modeName(PrefillSparsityMode m)
{
    switch (m) {
    case PrefillSparsityMode::Dense:
        return "dense";
    case PrefillSparsityMode::Threshold:
        return "threshold";
    case PrefillSparsityMode::TopFraction:
        return "top_fraction";
    }
    return "?";
}

void
writeJson(const std::string &path, const BenchModelShape &shape,
          size_t context, size_t samples, uint32_t heads,
          const IdentityResult &id, const ConsistencyResult &con,
          const std::vector<SweepRow> &sweep, const SweepRow *best,
          bool target_met, const TimedResult &tm, const TtftResult &tt)
{
    std::ofstream os(path);
    LS_ASSERT(os.good(), "cannot write ", path);
    os << "{\n"
       << benchMeta("sparse_prefill", shape)
       << "  \"context_tokens\": " << context << ",\n"
       << "  \"quality_samples\": " << samples << ",\n"
       << "  \"sampled_kv_heads\": " << heads << ",\n"
       << "  \"recall_k\": " << kRecallK << ",\n"
       << "  \"ppl_budget_pct\": " << kPplBudgetPct << ",\n"
       << "  \"knob_dense_identical\": "
       << (id.denseIdentical ? "true" : "false") << ",\n"
       << "  \"chunked_dense_identical\": "
       << (id.chunkedIdentical ? "true" : "false") << ",\n"
       << "  \"chunked_sparse_identical\": "
       << (con.chunkedSparseIdentical ? "true" : "false") << ",\n"
       << "  \"decision_counts_consistent\": "
       << (con.countsConsistent ? "true" : "false") << ",\n"
       << "  \"sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
        const SweepRow &r = sweep[i];
        os << "    {\"name\": \"" << r.name << "\", \"block_tokens\": "
           << r.cfg.blockTokens << ", \"mode\": \""
           << modeName(r.cfg.mode) << "\", \"threshold\": "
           << r.cfg.threshold << ", \"keep_fraction\": "
           << r.cfg.keepFraction << ", \"block_skip_fraction\": "
           << r.stats.blockSkipFraction() << ", \"attended_fraction\": "
           << r.stats.attendedFraction() << ", \"est_overhead\": "
           << r.estOverhead() << ", \"simulated_speedup\": "
           << r.simulatedSpeedup() << ", \"ppl_increase_pct\": "
           << r.pplIncreasePct() << ", \"recall_at_k\": " << r.recallAtK
           << "}" << (i + 1 == sweep.size() ? "\n" : ",\n");
    }
    os << "  ],\n";
    if (best) {
        os << "  \"best\": {\n"
           << "    \"name\": \"" << best->name << "\",\n"
           << "    \"block_tokens\": " << best->cfg.blockTokens << ",\n"
           << "    \"mode\": \"" << modeName(best->cfg.mode) << "\",\n"
           << "    \"threshold\": " << best->cfg.threshold << ",\n"
           << "    \"block_skip_fraction\": "
           << best->stats.blockSkipFraction() << ",\n"
           << "    \"attended_fraction\": "
           << best->stats.attendedFraction() << ",\n"
           << "    \"est_overhead\": " << best->estOverhead() << ",\n"
           << "    \"simulated_speedup\": " << best->simulatedSpeedup()
           << ",\n"
           << "    \"ppl_increase_pct\": " << best->pplIncreasePct()
           << ",\n"
           << "    \"recall_at_k\": " << best->recallAtK << "\n"
           << "  },\n";
    }
    os << "  \"speedup_target\": " << kSpeedupTarget << ",\n"
       << "  \"speedup_target_met\": " << (target_met ? "true" : "false")
       << ",\n"
       << "  \"timed_context\": " << tm.context << ",\n"
       << "  \"timed_dense_tokens_per_s\": " << tm.denseTokensPerSec
       << ",\n"
       << "  \"timed_sparse_tokens_per_s\": " << tm.sparseTokensPerSec
       << ",\n"
       << "  \"timed_measured_speedup\": " << tm.measuredSpeedup << ",\n"
       << "  \"ttft\": {\n"
       << "    \"attention_share\": " << tt.attentionShare << ",\n"
       << "    \"dense_prefill_32k_ms\": " << tt.densePrefill32kMs
       << ",\n"
       << "    \"sparse_prefill_32k_ms\": " << tt.sparsePrefill32kMs
       << ",\n"
       << "    \"speedup_32k\": " << tt.speedup32k << ",\n"
       << "    \"dense_ttft_p50_ms\": " << tt.denseP50 << ",\n"
       << "    \"dense_ttft_p99_ms\": " << tt.denseP99 << ",\n"
       << "    \"sparse_ttft_p50_ms\": " << tt.sparseP50 << ",\n"
       << "    \"sparse_ttft_p99_ms\": " << tt.sparseP99 << ",\n"
       << "    \"speedup_p50\": " << tt.speedupP50 << ",\n"
       << "    \"speedup_p99\": " << tt.speedupP99 << "\n"
       << "  }\n}\n";
}

} // namespace
} // namespace longsight

int
main(int argc, char **argv)
{
    using namespace longsight;
    Flags flags(argc, argv);
    const auto context =
        static_cast<size_t>(flags.getInt("context", 32768));
    const auto samples =
        static_cast<size_t>(flags.getInt("samples", 64));
    const auto heads = static_cast<uint32_t>(flags.getInt("heads", 2));
    const auto seed = static_cast<uint64_t>(flags.getInt("seed", 1));
    const auto timedContext =
        static_cast<size_t>(flags.getInt("timed-context", 8192));
    const auto ttftRequests =
        static_cast<uint32_t>(flags.getInt("ttft-requests", 400));
    const std::string out =
        flags.getString("out", "BENCH_prefill.json");
    const auto leftover = flags.unconsumed();
    LS_ASSERT(leftover.empty(), "unknown flag --", leftover.front());

    const auto model = ModelConfig::llama3_8b();
    const BenchModelShape shape{model.numQueryHeads, model.numKvHeads,
                                model.headDim};
    LS_ASSERT(context >= 4096, "sweep context too small to estimate");

    // Identity + consistency at a small, awkward context (2113 is not
    // a multiple of any swept block size); sweep at the full shape.
    const std::vector<HeadStream> smallStreams =
        makeStreams(model.headDim, 1, 2113, seed + 17);
    const IdentityResult id = runIdentity(smallStreams[0], 2113);
    const ConsistencyResult con = runConsistency(smallStreams[0], 2113);

    const std::vector<HeadStream> streams =
        makeStreams(model.headDim, heads, context, seed);

    const int d = static_cast<int>(model.headDim);
    std::vector<SweepRow> sweep;
    const auto thresholdPoint = [&](size_t B, int thr) {
        PrefillSparsityConfig cfg;
        cfg.blockTokens = B;
        cfg.mode = PrefillSparsityMode::Threshold;
        cfg.threshold = thr;
        sweep.push_back(runSweepPoint(
            "b" + std::to_string(B) + "_thr" + std::to_string(thr), cfg,
            streams, context, samples));
    };
    const auto topFractionPoint = [&](size_t B, double f) {
        PrefillSparsityConfig cfg;
        cfg.blockTokens = B;
        cfg.mode = PrefillSparsityMode::TopFraction;
        cfg.keepFraction = f;
        sweep.push_back(runSweepPoint(
            "b" + std::to_string(B) + "_top" +
                std::to_string(static_cast<int>(f * 100)),
            cfg, streams, context, samples));
    };
    // Threshold knob around the random-sign midpoint d/2, across the
    // block-size octaves; two TopFraction points for the other mode.
    for (int thr : {d / 2, d / 2 + 2, d / 2 + 4, d / 2 + 6, d / 2 + 8})
        thresholdPoint(64, thr);
    for (int thr : {d / 2 + 4, d / 2 + 8})
        thresholdPoint(32, thr);
    thresholdPoint(128, d / 2 + 4);
    thresholdPoint(256, d / 2 + 4);
    topFractionPoint(64, 0.10);
    topFractionPoint(64, 0.25);

    // Best knob: max simulated speedup subject to the ppl budget.
    const SweepRow *best = nullptr;
    for (const SweepRow &r : sweep)
        if (r.pplIncreasePct() <= kPplBudgetPct &&
            (!best || r.simulatedSpeedup() > best->simulatedSpeedup()))
            best = &r;

    bool ok = id.denseIdentical && id.chunkedIdentical &&
        con.countsConsistent && con.chunkedSparseIdentical;
    bool target_met = false;
    if (!best) {
        std::cerr << "FAIL: no knob met the " << kPplBudgetPct
                  << "% ppl budget\n";
        ok = false;
    } else {
        target_met = best->simulatedSpeedup() >= kSpeedupTarget;
        if (!target_met) {
            std::cerr << "FAIL: best in-budget knob " << best->name
                      << " reaches only " << best->simulatedSpeedup()
                      << "x simulated speedup (target "
                      << kSpeedupTarget << "x)\n";
            ok = false;
        }
    }

    const TimedResult tm = runTimed(
        streams[0], std::min(timedContext, context),
        best ? best->cfg : sweep.front().cfg);
    const TtftResult tt =
        runTtft(best ? *best : sweep.front(), ttftRequests, seed);

    TextTable t("Block-sparse prefill: " + model.name + ", " +
                fmtTokens(context) + " context, " +
                std::to_string(heads) + " sampled KV heads");
    t.setHeader({"Knob", "Skip frac", "Attend frac", "Sim speedup",
                 "dPPL %", "Recall@" + std::to_string(kRecallK)});
    for (const SweepRow &r : sweep)
        t.addRow({r.name + (best == &r ? " *" : ""),
                  TextTable::num(r.stats.blockSkipFraction(), 3),
                  TextTable::num(r.stats.attendedFraction(), 3),
                  TextTable::num(r.simulatedSpeedup(), 2) + "x",
                  TextTable::num(r.pplIncreasePct(), 3),
                  TextTable::num(r.recallAtK, 3)});
    t.print(std::cout);
    std::cout << "identity: knob=Dense "
              << (id.denseIdentical ? "bit-identical" : "DIVERGED")
              << ", chunked "
              << (id.chunkedIdentical && con.chunkedSparseIdentical
                      ? "bit-identical"
                      : "DIVERGED")
              << "\nmeasured at " << fmtTokens(tm.context) << ": dense "
              << TextTable::num(tm.denseTokensPerSec, 0)
              << " tok/s, sparse "
              << TextTable::num(tm.sparseTokensPerSec, 0) << " tok/s ("
              << TextTable::num(tm.measuredSpeedup, 2) << "x wall)\n"
              << "TTFT (32K, simulated): "
              << TextTable::num(tt.densePrefill32kMs, 0) << " ms -> "
              << TextTable::num(tt.sparsePrefill32kMs, 0) << " ms ("
              << TextTable::num(tt.speedup32k, 2) << "x); trace p99 "
              << TextTable::num(tt.denseP99, 0) << " -> "
              << TextTable::num(tt.sparseP99, 0) << " ms ("
              << TextTable::num(tt.speedupP99, 2) << "x)\n";

    writeJson(out, shape, context, samples, heads, id, con, sweep, best,
              target_met, tm, tt);
    std::cout << (ok ? "PASS" : "FAIL") << ": wrote " << out << "\n";
    return ok ? 0 : 1;
}

/**
 * @file
 * Scale-out study beyond the paper's single-expander evaluation:
 * LongSight with 1, 2, and 4 DReX devices attached to one GPU (each
 * device bringing its own 512 GB, 8 NMAs, and CXL link). Shows where
 * added devices buy capacity and throughput and where the shared GPU
 * becomes the ceiling — the natural question after Fig. 9's
 * bottleneck analysis.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "sim/longsight_system.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    const auto model = ModelConfig::llama3_8b();

    TextTable t("LongSight scale-out: 1 GPU + N DReX (" + model.name +
                ")");
    t.setHeader({"Context", "Devices", "Max users", "Throughput t/s",
                 "ms/token", "Bottleneck"});
    for (uint64_t ctx : {131072ull, 524288ull, 1'000'000ull}) {
        for (uint32_t devices : {1u, 2u, 4u}) {
            LongSightSystemConfig cfg;
            cfg.numDrexDevices = devices;
            LongSightSystem sys(cfg, model);
            const uint32_t users = std::min(sys.maxUsers(ctx), 512u);
            const ServingResult r = sys.decode(ctx, users);
            if (!r.feasible)
                continue;
            const Tick gpu_side = r.breakdown.gpuNonAttention +
                r.breakdown.itq + r.breakdown.gpuWindowExposed +
                r.breakdown.softmax;
            const Tick drex_side = r.breakdown.drexExposed +
                r.breakdown.submit + r.breakdown.poll;
            t.addRow({fmtTokens(ctx), std::to_string(devices),
                      std::to_string(users),
                      TextTable::num(r.tokensPerSecond, 0),
                      TextTable::num(r.perTokenLatencyUs / 1000.0, 1),
                      gpu_side >= drex_side ? "GPU" : "DReX/CXL"});
        }
    }
    t.print(std::cout);
    std::cout << "Extra expanders multiply resident users and offload "
                 "bandwidth until the\nshared GPU's weight streaming and "
                 "combine work become the ceiling —\nthen throughput "
                 "flattens and the bottleneck column flips to GPU.\n";
    return 0;
}

/**
 * @file
 * Reproduces Figure 7: decode-phase throughput (across all users) and
 * per-token latency for 1-GPU, 2-GPU (data-parallel), AttAcc-like,
 * and LongSight systems at various context lengths, for both Table-1
 * models. Also prints Table 2 (system configuration).
 *
 * As in the paper, missing entries ('-') mean the system's memory
 * cannot hold the context; entries above 128K carry the 'P' marker
 * (sparse offload performance projected from the 128K-detail regime —
 * our simulator runs them directly, the marker is kept for
 * comparability).
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "sim/attacc_system.hh"
#include "sim/baseline_gpu.hh"
#include "sim/longsight_system.hh"
#include "util/table.hh"

namespace longsight {
namespace {

void
printTable2()
{
    const GpuConfig g = GpuConfig::h100();
    const LpddrTimings t;
    const DrexGeometry geom;
    TextTable tab("Table 2: system configuration");
    tab.setHeader({"Device", "Description"});
    tab.addRow({"GPU", "NVIDIA H100 SXM, " +
                           TextTable::num(g.peakFlops / 1e12, 0) +
                           " TF/s, 80 GB HBM3 @ " +
                           TextTable::num(g.hbmBandwidth / 1e12, 2) +
                           " TB/s"});
    tab.addRow({"DReX", std::to_string(geom.numPackages) + " NMA, " +
                            std::to_string(geom.totalPfus()) +
                            " PFU, 512 GB LPDDR5X, " +
                            TextTable::num(t.peakBandwidth() *
                                               geom.totalChannels() / 1e12,
                                           2) +
                            " TB/s (NMAs)"});
    tab.print(std::cout);
}

struct Cell
{
    bool feasible = false;
    double tput = 0.0;     // tokens/s at max users
    double lat_us = 0.0;   // per-token latency at max users
    uint32_t users = 0;
};

std::string
fmtCell(const Cell &c, bool projected)
{
    if (!c.feasible)
        return "-";
    std::string s = TextTable::num(c.tput, 0) + " t/s / " +
        TextTable::num(c.lat_us / 1000.0, 1) + " ms @" +
        std::to_string(c.users) + "u";
    if (projected)
        s += " P";
    return s;
}

template <typename System>
Cell
runAtMaxUsers(const System &sys, uint64_t ctx, uint32_t cap)
{
    Cell c;
    const uint32_t users = std::min(cap, 512u);
    if (users == 0)
        return c;
    const ServingResult r = sys.decode(ctx, users);
    if (!r.feasible)
        return c;
    c.feasible = true;
    c.tput = r.tokensPerSecond;
    c.lat_us = r.perTokenLatencyUs;
    c.users = users;
    return c;
}

void
runModel(const ModelConfig &model)
{
    const std::vector<uint64_t> contexts = {32768, 65536, 131072, 262144,
                                            524288, 1'000'000};
    BaselineGpuSystem gpu1(GpuConfig::h100(), model, 1);
    BaselineGpuSystem gpu2(GpuConfig::h100(), model, 2);
    AttAccSystem attacc(GpuConfig::h100(), model);
    LongSightSystem ls(LongSightSystemConfig{}, model);

    TextTable t("Figure 7 (" + model.name +
                "): decode throughput / per-token latency at max users");
    t.setHeader({"Context", "1-GPU", "2-GPU", "AttAcc", "LongSight",
                 "LS vs 1-GPU"});
    for (uint64_t ctx : contexts) {
        const bool projected = ctx > 131072;
        const Cell c1 = runAtMaxUsers(gpu1, ctx, gpu1.maxUsers(ctx));
        const Cell c2 = runAtMaxUsers(gpu2, ctx, gpu2.maxUsers(ctx));
        const Cell ca = runAtMaxUsers(attacc, ctx, attacc.maxUsers(ctx));
        const Cell cl = runAtMaxUsers(ls, ctx, ls.maxUsers(ctx));
        std::string speedup = "-";
        if (c1.feasible && cl.feasible)
            speedup = TextTable::num(cl.tput / c1.tput, 1) + "x";
        t.addRow({fmtTokens(ctx), fmtCell(c1, false), fmtCell(c2, false),
                  fmtCell(ca, false), fmtCell(cl, projected), speedup});
    }
    t.print(std::cout);

    // User sweep at a fixed context (the per-context columns of
    // Fig. 7): "increasing the number of users leads to higher
    // per-token latency ... the latency increase is substantially
    // more modest with LongSight" (§9.1).
    {
        const uint64_t ctx = 65536;
        TextTable sweep("Figure 7 (" + model.name + "): latency vs users at " +
                        fmtTokens(ctx) + " [ms/token]");
        sweep.setHeader({"Users", "1-GPU", "LongSight",
                         "LongSight tok/s"});
        for (uint32_t users : {1u, 2u, 4u, 8u, 16u, 32u, 63u}) {
            const auto rg = gpu1.decode(ctx, users);
            const auto rl = ls.decode(ctx, users);
            if (!rl.feasible)
                break;
            sweep.addRow(
                {std::to_string(users),
                 rg.feasible
                     ? TextTable::num(rg.perTokenLatencyUs / 1000.0, 2)
                     : "-",
                 TextTable::num(rl.perTokenLatencyUs / 1000.0, 2),
                 TextTable::num(rl.tokensPerSecond, 0)});
        }
        sweep.print(std::cout);
    }

    // Single-user per-token latency (the latency panel of Fig. 7).
    TextTable lat("Figure 7 (" + model.name +
                  "): single-user per-token latency [ms]");
    lat.setHeader({"Context", "1-GPU", "2-GPU", "AttAcc", "LongSight"});
    for (uint64_t ctx : contexts) {
        auto one = [&](auto &sys) -> std::string {
            const ServingResult r = sys.decode(ctx, 1);
            return r.feasible
                ? TextTable::num(r.perTokenLatencyUs / 1000.0, 2)
                : "-";
        };
        lat.addRow({fmtTokens(ctx), one(gpu1), one(gpu2), one(attacc),
                    one(ls)});
    }
    lat.print(std::cout);
}

} // namespace
} // namespace longsight

int
main()
{
    using namespace longsight;
    printTable2();
    runModel(ModelConfig::llama3_1b());
    runModel(ModelConfig::llama3_8b());
    return 0;
}

/**
 * @file
 * SLO-aware serving-engine bench: open-loop Poisson and diurnal
 * arrival traces of heavy-tailed long-context requests served by the
 * continuous-batching ServingEngine (chunked prefill, block-budget
 * admission, priority preemption) over the LongSight system model.
 * Reports the operator-facing metrics of §4's rate/SLO discussion:
 * p50/p99 time-to-first-token and time-between-tokens against the
 * configured SLO targets, goodput (tokens of SLO-attained requests
 * per second), and the schedule counters (preemptions, prefill
 * chunks, restores, admission holds).
 *
 * The engine is deterministic by contract: every scenario runs twice
 * and the run exits nonzero if any metric differs bit-for-bit, or if
 * peak block usage ever exceeds the ledger budget. That makes the
 * emitted BENCH_serving.json stable across machines and thread
 * counts, so ci/check-bench.sh can diff it against a checked-in
 * baseline with tight tolerances.
 *
 * Run:  ./build/bench/serving_engine
 *       ./build/bench/serving_engine --requests 600 --seed 1 \
 *           --out BENCH_serving.json
 */

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "drex/partition_manager.hh"
#include "gpu/gpu_model.hh"
#include "model/model_config.hh"
#include "model/traffic.hh"
#include "sim/longsight_system.hh"
#include "sim/serving_engine.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace longsight {
namespace {

Tick
fromSecondsTick(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kSecond));
}

/**
 * Deterministic cost model over the LongSight system model. Decode
 * steps are priced by the steady-state simulator at (context bucket,
 * users) granularity and memoized — the detailed device simulation
 * runs once per distinct operating point, not once per engine step.
 * When the batch exceeds the system's feasible user count at a
 * context, the step serializes into ceil(users / feasible)
 * sub-batches, the way a scheduler splits an oversized iteration.
 */
struct LongSightCosts
{
    const LongSightSystem &ls;
    const GpuModel &gpu;
    uint64_t kvBytesPerToken = 0;
    double cxlGBps = 56.0;
    uint64_t contextBucket = 4096;
    mutable std::map<std::pair<uint64_t, uint32_t>, Tick> memo;

    Tick decodeStep(const std::vector<uint64_t> &contexts) const
    {
        uint64_t max_ctx = 1;
        for (uint64_t c : contexts)
            max_ctx = std::max(max_ctx, c);
        const uint64_t bucket =
            (max_ctx + contextBucket - 1) / contextBucket *
            contextBucket;
        const auto users = static_cast<uint32_t>(contexts.size());
        const uint32_t feasible =
            std::max(1u, std::min(users, ls.maxUsers(bucket)));
        const auto key = std::make_pair(bucket, feasible);
        auto it = memo.find(key);
        if (it == memo.end()) {
            const ServingResult r = ls.decode(bucket, feasible);
            LS_ASSERT(r.feasible, "decode infeasible at bucket ",
                      bucket, " users ", feasible);
            it = memo.emplace(key, r.stepTime).first;
        }
        const uint64_t sub_batches = (users + feasible - 1) / feasible;
        return it->second * sub_batches;
    }

    Tick prefillChunk(uint64_t chunk, uint64_t done) const
    {
        // Incremental roofline cost of extending the prefix: the
        // chunk's attention runs against everything already resident.
        return gpu.prefillTime(done + chunk) - gpu.prefillTime(done);
    }

    Tick restore(uint64_t context_tokens) const
    {
        // Bulk CXL read of the retained prefix from the expander tier.
        const double bytes = static_cast<double>(context_tokens) *
            static_cast<double>(kvBytesPerToken);
        return fromSecondsTick(bytes / (cxlGBps * 1e9));
    }

    ServingCostModel model() const
    {
        ServingCostModel m;
        m.decodeStepTime = [this](const std::vector<uint64_t> &c) {
            return decodeStep(c);
        };
        m.prefillChunkTime = [this](uint64_t chunk, uint64_t done) {
            return prefillChunk(chunk, done);
        };
        m.restoreTime = [this](uint64_t ctx) { return restore(ctx); };
        return m;
    }
};

/** The metrics a scenario contributes to BENCH_serving.json. */
struct ScenarioRow
{
    std::string name;
    uint32_t requests = 0;
    double makespanS = 0.0;
    double throughput = 0.0;
    double goodput = 0.0;
    double sloAttainment = 0.0;
    double ttftP50 = 0.0, ttftP99 = 0.0, ttftOverflow = 0.0;
    double tbtP50 = 0.0, tbtP99 = 0.0, tbtOverflow = 0.0;
    uint64_t totalTokens = 0;
    uint64_t prefillChunks = 0;
    uint64_t preemptions = 0;
    uint64_t restores = 0;
    uint64_t gateHolds = 0;
    uint32_t peakActive = 0;
    uint64_t peakBlocks = 0;
    uint64_t blockBudget = 0;
    bool deterministic = true;
    bool budgetRespected = true;

    static ScenarioRow from(const std::string &name,
                            const ServingEngineResult &r)
    {
        ScenarioRow s;
        s.name = name;
        s.requests = static_cast<uint32_t>(r.requests.size());
        s.makespanS = toSeconds(r.makespan);
        s.throughput = r.throughputTokensPerSec;
        s.goodput = r.goodputTokensPerSec;
        s.sloAttainment = r.sloAttainment;
        s.ttftP50 = r.ttftP50Ms;
        s.ttftP99 = r.ttftP99Ms;
        s.ttftOverflow = r.ttftOverflow;
        s.tbtP50 = r.tbtP50Ms;
        s.tbtP99 = r.tbtP99Ms;
        s.tbtOverflow = r.tbtOverflow;
        s.totalTokens = r.totalTokens;
        s.prefillChunks = r.prefillChunks;
        s.preemptions = r.preemptions;
        s.restores = r.restores;
        s.gateHolds = r.gateHolds;
        s.peakActive = r.peakActive;
        s.peakBlocks = r.peakBlocks;
        s.blockBudget = r.blockBudget;
        s.budgetRespected = r.peakBlocks <= r.blockBudget;
        return s;
    }

    bool sameMetrics(const ScenarioRow &o) const
    {
        return requests == o.requests && makespanS == o.makespanS &&
            throughput == o.throughput && goodput == o.goodput &&
            sloAttainment == o.sloAttainment && ttftP50 == o.ttftP50 &&
            ttftP99 == o.ttftP99 && tbtP50 == o.tbtP50 &&
            tbtP99 == o.tbtP99 && totalTokens == o.totalTokens &&
            prefillChunks == o.prefillChunks &&
            preemptions == o.preemptions && restores == o.restores &&
            gateHolds == o.gateHolds && peakBlocks == o.peakBlocks;
    }
};

void
writeScenario(std::ofstream &os, const ScenarioRow &s, bool last)
{
    os << "  \"" << s.name << "\": {\n"
       << "    \"requests\": " << s.requests << ",\n"
       << "    \"makespan_s\": " << s.makespanS << ",\n"
       << "    \"throughput_tokens_per_s\": " << s.throughput << ",\n"
       << "    \"goodput_tokens_per_s\": " << s.goodput << ",\n"
       << "    \"slo_attainment\": " << s.sloAttainment << ",\n"
       << "    \"ttft_p50_ms\": " << s.ttftP50 << ",\n"
       << "    \"ttft_p99_ms\": " << s.ttftP99 << ",\n"
       << "    \"ttft_overflow_frac\": " << s.ttftOverflow << ",\n"
       << "    \"tbt_p50_ms\": " << s.tbtP50 << ",\n"
       << "    \"tbt_p99_ms\": " << s.tbtP99 << ",\n"
       << "    \"tbt_overflow_frac\": " << s.tbtOverflow << ",\n"
       << "    \"total_tokens\": " << s.totalTokens << ",\n"
       << "    \"prefill_chunks\": " << s.prefillChunks << ",\n"
       << "    \"preemptions\": " << s.preemptions << ",\n"
       << "    \"restores\": " << s.restores << ",\n"
       << "    \"gate_holds\": " << s.gateHolds << ",\n"
       << "    \"peak_active\": " << s.peakActive << ",\n"
       << "    \"peak_blocks\": " << s.peakBlocks << ",\n"
       << "    \"block_budget\": " << s.blockBudget << ",\n"
       << "    \"deterministic\": "
       << (s.deterministic ? "true" : "false") << "\n"
       << "  }" << (last ? "\n" : ",\n");
}

} // namespace
} // namespace longsight

int
main(int argc, char **argv)
{
    using namespace longsight;
    Flags flags(argc, argv);
    const auto requests =
        static_cast<uint32_t>(flags.getInt("requests", 2000));
    const auto seed = static_cast<uint64_t>(flags.getInt("seed", 1));
    const double rate = flags.getDouble("rate", 2.0);
    const auto chunk =
        static_cast<uint32_t>(flags.getInt("chunk", 2048));
    const auto budgetDiv =
        static_cast<uint64_t>(flags.getInt("budget-div", 64));
    const double ttftSlo = flags.getDouble("ttft-slo-ms", 2000.0);
    const double tbtSlo = flags.getDouble("tbt-slo-ms", 150.0);
    const std::string out =
        flags.getString("out", "BENCH_serving.json");
    const auto leftover = flags.unconsumed();
    LS_ASSERT(leftover.empty(), "unknown flag --", leftover.front());

    const auto model = ModelConfig::llama3_8b();
    LongSightSystem ls(LongSightSystemConfig{}, model);
    GpuModel gpu(GpuConfig::h100(), model);

    LongSightCosts costs{ls, gpu};
    costs.kvBytesPerToken = 2ull * model.numLayers * model.numKvHeads *
        model.headDim * 2ull; // K+V, fp16
    costs.cxlGBps = ls.config().cxl.bandwidthGBps;

    // Block budget: one serving replica's slice of the DReX device
    // (the full expander admits ~1800 median requests, far beyond one
    // engine's batch; a slice keeps the admission gate honest against
    // the heavy tail). The slice must still fit the largest request.
    const DataLayout layout(DrexGeometry{}, LpddrTimings{},
                            model.numKvHeads, model.numLayers,
                            model.headDim);
    PartitionManager pm(layout, model.numKvHeads, model.numLayers);
    constexpr uint32_t kBlockTokens = 128;
    const uint64_t deviceBudget = pm.blockBudget(kBlockTokens);

    TrafficConfig traffic;
    traffic.requests = requests;
    traffic.arrivalsPerSec = rate;
    traffic.seed = seed;
    traffic.promptLogSigma = 1.3; // fatter tail than the default
    traffic.promptMax = 32768;
    traffic.outputMax = 1024;

    const uint64_t maxRequestTokens =
        traffic.promptMax + traffic.outputMax;
    BlockLedger sizing(1, kBlockTokens, model.numKvHeads);
    const uint64_t sliceBudget =
        std::max(deviceBudget / budgetDiv,
                 sizing.blocksFor(maxRequestTokens));

    ServingEngineConfig ecfg;
    ecfg.maxBatch = 64;
    ecfg.prefillChunkTokens = chunk;
    ecfg.slo.ttftMs = ttftSlo;
    ecfg.slo.tbtMs = tbtSlo;

    const ServingCostModel cost = costs.model();

    const auto serve = [&](ArrivalProcess process,
                           const ServingEngineConfig &cfg) {
        TrafficConfig t = traffic;
        t.process = process;
        BlockLedger ledger(sliceBudget, kBlockTokens,
                           model.numKvHeads);
        ServingEngine engine(cfg, cost, &ledger);
        return engine.run(generateTraffic(t));
    };

    bool ok = true;
    std::vector<ScenarioRow> rows;
    for (const auto &[name, process] :
         {std::pair<std::string, ArrivalProcess>{
              "poisson", ArrivalProcess::Poisson},
          {"diurnal", ArrivalProcess::Diurnal}}) {
        ScenarioRow row =
            ScenarioRow::from(name, serve(process, ecfg));
        // Determinism gate: the same trace served again must
        // reproduce every metric bit-for-bit.
        const ScenarioRow again =
            ScenarioRow::from(name, serve(process, ecfg));
        row.deterministic = row.sameMetrics(again);
        if (!row.deterministic) {
            std::cerr << "FAIL: scenario " << name
                      << " is not deterministic across runs\n";
            ok = false;
        }
        if (!row.budgetRespected) {
            std::cerr << "FAIL: scenario " << name
                      << " exceeded the block budget (peak "
                      << row.peakBlocks << " > " << row.blockBudget
                      << ")\n";
            ok = false;
        }
        if (row.requests != requests) {
            std::cerr << "FAIL: scenario " << name << " completed "
                      << row.requests << " of " << requests
                      << " requests\n";
            ok = false;
        }
        rows.push_back(row);
    }

    // Chunked-vs-monolithic prefill, stdout only: the engine property
    // the chunk quantum buys is a bounded decode TBT tail while long
    // prompts prefill.
    ServingEngineConfig mono = ecfg;
    mono.prefillChunkTokens = 0;
    const ScenarioRow monoRow = ScenarioRow::from(
        "poisson_monolithic", serve(ArrivalProcess::Poisson, mono));

    TextTable t("SLO-aware serving engine: " + std::to_string(requests) +
                " requests, " + model.name + ", SLO ttft<" +
                TextTable::num(ttftSlo, 0) + "ms tbt<" +
                TextTable::num(tbtSlo, 0) + "ms");
    t.setHeader({"Scenario", "Goodput t/s", "SLO att.", "TTFT p99 [ms]",
                 "TBT p99 [ms]", "Preempt", "Gate holds"});
    for (const auto &r : rows)
        t.addRow({r.name, TextTable::num(r.goodput, 1),
                  TextTable::num(r.sloAttainment, 3),
                  TextTable::num(r.ttftP99, 0),
                  TextTable::num(r.tbtP99, 1),
                  std::to_string(r.preemptions),
                  std::to_string(r.gateHolds)});
    t.addRow({monoRow.name, TextTable::num(monoRow.goodput, 1),
              TextTable::num(monoRow.sloAttainment, 3),
              TextTable::num(monoRow.ttftP99, 0),
              TextTable::num(monoRow.tbtP99, 1),
              std::to_string(monoRow.preemptions),
              std::to_string(monoRow.gateHolds)});
    t.print(std::cout);
    std::cout << "chunked prefill holds the decode-TBT tail at "
              << TextTable::num(rows[0].tbtP99, 1) << " ms vs "
              << TextTable::num(monoRow.tbtP99, 1)
              << " ms monolithic (p99, Poisson trace)\n";

    std::ofstream os(out);
    LS_ASSERT(os.good(), "cannot write ", out);
    os << "{\n"
       << benchMeta("serving_engine",
                    {model.numQueryHeads, model.numKvHeads,
                     model.headDim})
       << "  \"requests\": " << requests << ",\n"
       << "  \"arrivals_per_sec\": " << rate << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"prefill_chunk_tokens\": " << chunk << ",\n"
       << "  \"max_batch\": " << ecfg.maxBatch << ",\n"
       << "  \"ttft_slo_ms\": " << ttftSlo << ",\n"
       << "  \"tbt_slo_ms\": " << tbtSlo << ",\n"
       << "  \"block_budget\": " << sliceBudget << ",\n";
    for (size_t i = 0; i < rows.size(); ++i)
        writeScenario(os, rows[i], i + 1 == rows.size());
    os << "}\n";
    std::cout << (ok ? "PASS" : "FAIL") << ": wrote " << out << "\n";
    return ok ? 0 : 1;
}

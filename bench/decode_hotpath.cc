/**
 * @file
 * Decode hot-path benchmark: one representative Table-1 8B layer
 * (32 query heads / 8 KV heads, d = 128) decoding at long context.
 * Each step appends one KV pair per head and runs hybrid attention
 * for every query head, two ways:
 *
 *  - *baseline*: the pre-fusion allocating pipeline — SignBits
 *    construction, survivor vector, full score vector, topkSelect,
 *    sort + subsetAttention, all on fresh heap buffers; and
 *  - *fused*: MultiHeadLongSight::computeInto over reserved caches —
 *    scratch-arena buffers and the fused batchScoreSelect kernel,
 *    which never materializes survivor or score vectors.
 *
 * Both paths are verified element-identical before timing. With the
 * ls_alloc_hook library linked, the bench also reports heap
 * allocations and bytes per decoded token for each path; the fused
 * steady state is expected to be zero (the allocation-regression test
 * asserts exactly that).
 *
 * A final grouped-scan section isolates the scan stage for one KV
 * head's whole GQA query group at the current cache state: one
 * multi-query pass (batchScanMulti / batchScoreSelectMulti) against
 * the group-size single-query passes the pre-grouping decode issued.
 * Per-query results must be bit-identical — any mismatch exits
 * nonzero (CI's bench-smoke gate) — and the measured speedups land in
 * BENCH_decode.json under "grouped_scan".
 *
 * Writes BENCH_decode.json.
 *
 * Run:  ./build/bench/decode_hotpath
 *       ./build/bench/decode_hotpath --context 4096 --steps 16 \
 *           --out BENCH_decode.json
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/attention.hh"
#include "core/kv_cache.hh"
#include "core/multi_head.hh"
#include "core/topk.hh"
#include "model/workload.hh"
#include "tensor/kernels.hh"
#include "util/alloc_hook.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace longsight {
namespace {

struct BenchShape
{
    size_t context;
    size_t steps;
    size_t warmup;
    uint32_t qheads;
    uint32_t kvheads;
    uint32_t dim;
    int threshold;
    LongSightConfig hybrid;
};

double
seconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** One decode step through the pre-fusion allocating pipeline. */
void
baselineStep(const BenchShape &sh, const Matrix &queries,
             const std::vector<KvCache> &caches, Matrix &out)
{
    const uint32_t group = sh.qheads / sh.kvheads;
    const float scale =
        1.0f / std::sqrt(static_cast<float>(sh.dim));
    ThreadPool::global().parallelFor(0, sh.qheads, [&](size_t qh) {
        const KvCache &cache = caches[qh / group];
        const float *q = queries.row(qh);
        const size_t n = cache.size();
        const size_t sinks =
            std::min<size_t>(sh.hybrid.sinkTokens, n);
        size_t win_start =
            n > sh.hybrid.windowSize ? n - sh.hybrid.windowSize : 0;
        win_start = std::max(win_start, sinks);

        std::vector<uint32_t> attended;
        for (size_t i = 0; i < sinks; ++i)
            attended.push_back(static_cast<uint32_t>(i));
        if (win_start > sinks) {
            std::vector<float> qf(sh.dim);
            cache.toFilterSpace(q, qf.data());
            const SignBits qs(qf.data(), sh.dim);
            std::vector<uint32_t> survivors;
            batchConcordanceScan(qs, cache.filterSignsAll(), sinks,
                                 win_start, sh.threshold, survivors);
            const auto scores =
                attentionScoresAt(q, cache.keys(), survivors, scale);
            const auto sel =
                topkSelect(scores, survivors, sh.hybrid.topK);
            for (const auto &e : sel)
                attended.push_back(e.index);
        }
        for (size_t i = win_start; i < n; ++i)
            attended.push_back(static_cast<uint32_t>(i));
        std::sort(attended.begin(), attended.end());
        if (attended.empty())
            attended.push_back(static_cast<uint32_t>(n - 1));
        const auto r = subsetAttention(q, cache.keys(),
                                       cache.values(), attended, scale);
        out.setRow(qh, r.output.data());
    });
}

/** What the grouped-scan comparison measured (rates in key-query
 *  tests per second; both paths do group x keys of them). */
struct GroupedScanNumbers
{
    size_t keys = 0;
    double scanGrouped = 0.0;
    double scanUngrouped = 0.0;
    double fusedGrouped = 0.0;
    double fusedUngrouped = 0.0;
    bool bitIdentical = true;
};

/** Best-of-reps rate of fn(), which performs `work` key-query tests;
 *  rep 0 is warmup and the inner loop sizes each timed sample to
 *  enough work for the clock. */
template <class F>
double
bestRate(size_t work, int reps, F &&fn)
{
    const size_t inner = std::max<size_t>(1, (1u << 22) / work);
    double best = 0.0;
    for (int r = 0; r <= reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < inner; ++i)
            fn();
        const double sec = seconds(t0);
        if (r > 0)
            best = std::max(best,
                            static_cast<double>(inner * work) / sec);
    }
    return best;
}

/**
 * Scan-stage comparison on KV head 0's query group: one grouped
 * multi-query pass over the sparse region versus the `group`
 * single-query passes the ungrouped decode issued, for both the raw
 * concordance scan and the fused scan->score->select kernel.
 */
GroupedScanNumbers
groupedScanComparison(const BenchShape &sh, const Matrix &queries,
                      const KvCache &cache, int reps)
{
    GroupedScanNumbers gn;
    const uint32_t group = sh.qheads / sh.kvheads;
    const float scale = 1.0f / std::sqrt(static_cast<float>(sh.dim));
    const size_t n = cache.size();
    const size_t sinks = std::min<size_t>(sh.hybrid.sinkTokens, n);
    size_t win_start =
        n > sh.hybrid.windowSize ? n - sh.hybrid.windowSize : 0;
    win_start = std::max(win_start, sinks);
    if (win_start <= sinks + group)
        return gn; // context too small for a meaningful sparse region
    gn.keys = win_start - sinks;

    const SignMatrix &signs = cache.filterSignsAll();
    const size_t wpr = signs.wordsPerRow();
    std::vector<float> qf(sh.dim);
    std::vector<uint64_t> qw(group * wpr);
    std::vector<SignBits> qbits;
    for (uint32_t g = 0; g < group; ++g) {
        cache.toFilterSpace(queries.row(g), qf.data());
        packSigns(qf.data(), sh.dim, qw.data() + g * wpr);
        qbits.emplace_back(qf.data(), sh.dim);
    }
    const size_t work = static_cast<size_t>(group) * gn.keys;

    // Raw scan: group single passes vs one grouped pass.
    std::vector<std::vector<uint32_t>> single(group);
    for (auto &v : single)
        v.reserve(gn.keys);
    gn.scanUngrouped = bestRate(work, reps, [&] {
        for (uint32_t g = 0; g < group; ++g) {
            single[g].clear();
            batchConcordanceScan(qbits[g], signs, sinks, win_start,
                                 sh.threshold, single[g]);
        }
    });
    std::vector<uint32_t> multi(work);
    std::vector<size_t> counts(group);
    gn.scanGrouped = bestRate(work, reps, [&] {
        batchScanMulti(qw.data(), group, signs, sinks, win_start,
                       sh.threshold, multi.data(), gn.keys,
                       counts.data());
    });
    for (uint32_t g = 0; g < group; ++g) {
        bool same = counts[g] == single[g].size();
        for (size_t i = 0; same && i < counts[g]; ++i)
            same = multi[g * gn.keys + i] == single[g][i];
        if (!same) {
            std::cerr << "FAIL: grouped scan diverged from the "
                         "single-query scan for group query "
                      << g << "\n";
            gn.bitIdentical = false;
        }
    }

    // Fused scan->score->select: same comparison through the top-k.
    const size_t kcap = std::min<size_t>(sh.hybrid.topK, gn.keys);
    std::vector<ScoredIndex> sel_single(group * kcap);
    std::vector<size_t> nsel_single(group);
    gn.fusedUngrouped = bestRate(work, reps, [&] {
        for (uint32_t g = 0; g < group; ++g)
            nsel_single[g] = batchScoreSelect(
                qw.data() + g * wpr, signs, sinks, win_start,
                sh.threshold, queries.row(g), cache.keys(), scale,
                sh.hybrid.topK, sel_single.data() + g * kcap);
    });
    std::vector<ScoredIndex> sel_multi(group * kcap);
    std::vector<size_t> nsel_multi(group);
    gn.fusedGrouped = bestRate(work, reps, [&] {
        batchScoreSelectMulti(qw.data(), group, signs, sinks, win_start,
                              sh.threshold, queries.row(0),
                              queries.cols(), cache.keys(), scale,
                              sh.hybrid.topK, sel_multi.data(), kcap,
                              nsel_multi.data());
    });
    for (uint32_t g = 0; g < group; ++g) {
        bool same = nsel_multi[g] == nsel_single[g];
        for (size_t i = 0; same && i < nsel_multi[g]; ++i)
            same = sel_multi[g * kcap + i].index ==
                    sel_single[g * kcap + i].index &&
                sel_multi[g * kcap + i].score ==
                    sel_single[g * kcap + i].score;
        if (!same) {
            std::cerr << "FAIL: grouped score-select diverged from the "
                         "single-query kernel for group query "
                      << g << "\n";
            gn.bitIdentical = false;
        }
    }
    return gn;
}

int
run(const BenchShape &sh, const std::string &out_path)
{
    const uint32_t group = sh.qheads / sh.kvheads;
    LS_ASSERT(sh.qheads % sh.kvheads == 0, "GQA shape mismatch");

    // Pregenerate context + every step's token and queries so the
    // timed loops contain only append + attention.
    const size_t verify_steps = 1;
    const size_t total =
        sh.context + verify_steps + 2 * (sh.warmup + sh.steps);
    WorkloadConfig wcfg;
    wcfg.headDim = sh.dim;
    Rng root(7);
    std::vector<HeadWorkload> workloads;
    std::vector<KvCache> caches;
    caches.reserve(sh.kvheads);
    for (uint32_t h = 0; h < sh.kvheads; ++h) {
        workloads.emplace_back(wcfg, root.fork());
        caches.emplace_back(sh.dim);
    }
    std::cout << "generating " << total << " tokens x " << sh.kvheads
              << " KV heads (d=" << sh.dim << ")...\n";
    ThreadPool::global().parallelFor(0, sh.kvheads, [&](size_t h) {
        workloads[h].generate(total);
    });
    for (uint32_t h = 0; h < sh.kvheads; ++h) {
        caches[h].reserve(total);
        for (size_t i = 0; i < sh.context; ++i)
            caches[h].append(workloads[h].keys().row(i),
                             workloads[h].values().row(i));
    }
    const size_t num_steps = verify_steps + 2 * (sh.warmup + sh.steps);
    std::vector<Matrix> step_queries(num_steps);
    for (auto &m : step_queries) {
        m.resize(sh.qheads, sh.dim);
        for (uint32_t qh = 0; qh < sh.qheads; ++qh) {
            const auto q = workloads[qh / group].drawQuery();
            m.setRow(qh, q.data());
        }
    }

    MultiHeadLongSight mh(sh.hybrid, sh.qheads, sh.kvheads, sh.dim);
    for (uint32_t h = 0; h < sh.kvheads; ++h)
        mh.attention().setThreshold(h, sh.threshold);

    // Element-identical cross-check of the two paths on one step.
    LayerAttentionResult fused;
    Matrix base_out(sh.qheads, sh.dim);
    baselineStep(sh, step_queries[0], caches, base_out);
    mh.computeInto(step_queries[0], caches, fused);
    for (uint32_t qh = 0; qh < sh.qheads; ++qh)
        for (uint32_t d = 0; d < sh.dim; ++d)
            LS_ASSERT(base_out.row(qh)[d] == fused.outputs.row(qh)[d],
                      "fused path diverged from baseline at head ", qh,
                      " dim ", d);
    std::cout << "paths bit-identical on " << sh.qheads
              << " heads; timing...\n";

    size_t pos = sh.context;
    size_t step_at = verify_steps;
    const auto appendToken = [&] {
        for (uint32_t h = 0; h < sh.kvheads; ++h)
            caches[h].append(workloads[h].keys().row(pos),
                             workloads[h].values().row(pos));
        ++pos;
    };

    // Baseline phase.
    for (size_t s = 0; s < sh.warmup; ++s) {
        appendToken();
        baselineStep(sh, step_queries[step_at++], caches, base_out);
    }
    const AllocCounters b0 = allocSnapshot();
    const auto bt0 = std::chrono::steady_clock::now();
    for (size_t s = 0; s < sh.steps; ++s) {
        appendToken();
        baselineStep(sh, step_queries[step_at++], caches, base_out);
    }
    const double base_sec = seconds(bt0);
    const AllocCounters base_alloc = allocSnapshot() - b0;

    // Fused phase (warmup settles every capacity and arena).
    for (size_t s = 0; s < sh.warmup; ++s) {
        appendToken();
        mh.computeInto(step_queries[step_at++], caches, fused);
    }
    const AllocCounters f0 = allocSnapshot();
    const auto ft0 = std::chrono::steady_clock::now();
    for (size_t s = 0; s < sh.steps; ++s) {
        appendToken();
        mh.computeInto(step_queries[step_at++], caches, fused);
    }
    const double fused_sec = seconds(ft0);
    const AllocCounters fused_alloc = allocSnapshot() - f0;

    // Scan-stage isolation: KV head 0's group at the final cache state.
    const GroupedScanNumbers gn =
        groupedScanComparison(sh, step_queries[0], caches[0], 3);

    const double steps_d = static_cast<double>(sh.steps);
    const double base_tps = steps_d / base_sec;
    const double fused_tps = steps_d / fused_sec;
    const bool hook = allocHookActive();

    std::ofstream os(out_path);
    LS_ASSERT(os.good(), "cannot write ", out_path);
    os << "{\n"
       << benchMeta("decode_hotpath", {sh.qheads, sh.kvheads, sh.dim})
       << "  \"context\": " << sh.context << ",\n"
       << "  \"steps\": " << sh.steps << ",\n"
       << "  \"threshold\": " << sh.threshold << ",\n"
       << "  \"top_k\": " << sh.hybrid.topK << ",\n"
       << "  \"alloc_hook_active\": " << (hook ? "true" : "false")
       << ",\n"
       << "  \"baseline\": {\"tokens_per_s\": " << base_tps
       << ", \"allocs_per_token\": "
       << static_cast<double>(base_alloc.allocs) / steps_d
       << ", \"bytes_per_token\": "
       << static_cast<double>(base_alloc.bytes) / steps_d << "},\n"
       << "  \"fused\": {\"tokens_per_s\": " << fused_tps
       << ", \"allocs_per_token\": "
       << static_cast<double>(fused_alloc.allocs) / steps_d
       << ", \"bytes_per_token\": "
       << static_cast<double>(fused_alloc.bytes) / steps_d << "},\n"
       << "  \"speedup\": " << fused_tps / base_tps << ",\n"
       << "  \"grouped_scan\": {\"queries\": " << group
       << ", \"keys\": " << gn.keys
       << ", \"scan_grouped_keys_per_s\": " << gn.scanGrouped
       << ", \"scan_ungrouped_keys_per_s\": " << gn.scanUngrouped
       << ", \"scan_speedup\": "
       << (gn.scanUngrouped > 0 ? gn.scanGrouped / gn.scanUngrouped : 0)
       << ", \"fused_grouped_keys_per_s\": " << gn.fusedGrouped
       << ", \"fused_ungrouped_keys_per_s\": " << gn.fusedUngrouped
       << ", \"fused_speedup\": "
       << (gn.fusedUngrouped > 0 ? gn.fusedGrouped / gn.fusedUngrouped
                                 : 0)
       << ", \"bit_identical\": "
       << (gn.bitIdentical ? "true" : "false") << "}\n}\n";

    std::cout << "baseline: " << base_tps << " tokens/s, "
              << static_cast<double>(base_alloc.allocs) / steps_d
              << " allocs/token\n"
              << "fused:    " << fused_tps << " tokens/s, "
              << static_cast<double>(fused_alloc.allocs) / steps_d
              << " allocs/token (" << fused_tps / base_tps
              << "x)\n"
              << (hook ? "" : "note: alloc hook inactive; "
                              "allocation counts are zero-valued\n");
    if (gn.keys > 0)
        std::cout << "grouped scan (" << group << " queries, " << gn.keys
                  << " keys): scan "
                  << gn.scanGrouped / gn.scanUngrouped
                  << "x, fused select "
                  << gn.fusedGrouped / gn.fusedUngrouped << "x ("
                  << (gn.bitIdentical ? "bit-identical" : "MISMATCH")
                  << ")\n";
    std::cout << "wrote " << out_path << "\n";
    return gn.bitIdentical ? 0 : 1;
}

} // namespace
} // namespace longsight

int
main(int argc, char **argv)
{
    using namespace longsight;
    Flags flags(argc, argv);
    BenchShape sh;
    sh.context = static_cast<size_t>(flags.getInt("context", 32768));
    sh.steps = static_cast<size_t>(flags.getInt("steps", 32));
    sh.warmup = static_cast<size_t>(flags.getInt("warmup", 8));
    sh.qheads = static_cast<uint32_t>(flags.getInt("qheads", 32));
    sh.kvheads = static_cast<uint32_t>(flags.getInt("kvheads", 8));
    sh.dim = static_cast<uint32_t>(flags.getInt("dim", 128));
    // d/2 + 4 keeps a realistic post-SCF survivor fraction on the
    // synthetic workload (roughly a quarter of the sparse region).
    sh.threshold = static_cast<int>(
        flags.getInt("threshold", static_cast<int64_t>(sh.dim) / 2 + 4));
    sh.hybrid.topK = static_cast<uint32_t>(flags.getInt("topk", 1024));
    sh.hybrid.windowSize =
        static_cast<uint32_t>(flags.getInt("window", 1024));
    sh.hybrid.sinkTokens =
        static_cast<uint32_t>(flags.getInt("sinks", 16));
    const auto threads =
        static_cast<unsigned>(flags.getInt("threads", 0));
    const std::string out =
        flags.getString("out", "BENCH_decode.json");
    const auto leftover = flags.unconsumed();
    LS_ASSERT(leftover.empty(), "unknown flag --", leftover.front());
    if (threads != 0)
        ThreadPool::configureGlobal(threads);
    return run(sh, out);
}

/**
 * @file
 * Reproduces Figure 8: per-token latency breakdown inside a DReX
 * offload, for a single user and for a fully utilized device, across
 * context lengths. Components: address generation, PFU filtering,
 * bitmap readout, full-precision scoring (dot products), top-k
 * ranking, value reads from LPDDR, and the CXL value transfer.
 *
 * The paper's observations under test: value loading (DRAM + CXL)
 * dominates short contexts as a fixed per-user cost, the dot-product
 * phase grows to dominate at long contexts, and under full
 * utilization the CXL value path can become the pipeline bound while
 * overlapping NMA compute of later users (§9.2).
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "sim/longsight_system.hh"
#include "util/table.hh"

namespace longsight {
namespace {

void
runModel(const ModelConfig &model)
{
    LongSightSystem ls(LongSightSystemConfig{}, model);
    const std::vector<uint64_t> contexts = {8192, 32768, 131072, 524288,
                                            1'000'000};

    TextTable t("Figure 8 (" + model.name +
                "): single-offload latency breakdown [us]");
    t.setHeader({"Context", "AddrGen", "Filter", "BitmapRd", "Score",
                 "Rank", "ValueRd", "ValueCXL", "Total", "DominatedBy"});
    for (uint64_t ctx : contexts) {
        const OffloadObservation o = ls.observeOffload(ctx);
        const OffloadTiming &b = o.result.timing;
        const Tick total =
            o.result.doneTick - o.result.startTick + o.cxlValueTime;
        const Tick phases[] = {b.addrGen, b.filter,   b.bitmapRead,
                               b.score,   b.rank,     b.valueRead,
                               o.cxlValueTime};
        const char *names[] = {"addr-gen", "filter", "bitmap-read",
                               "score",    "rank",   "value-read",
                               "value-CXL"};
        size_t dom = 0;
        for (size_t i = 1; i < 7; ++i)
            if (phases[i] > phases[dom])
                dom = i;
        t.addRow({fmtTokens(ctx), TextTable::num(toMicroseconds(b.addrGen)),
                  TextTable::num(toMicroseconds(b.filter)),
                  TextTable::num(toMicroseconds(b.bitmapRead)),
                  TextTable::num(toMicroseconds(b.score)),
                  TextTable::num(toMicroseconds(b.rank)),
                  TextTable::num(toMicroseconds(b.valueRead)),
                  TextTable::num(toMicroseconds(o.cxlValueTime)),
                  TextTable::num(toMicroseconds(total)), names[dom]});
    }
    t.print(std::cout);

    // Full utilization: all NMAs busy with maxUsers offloads per layer.
    TextTable full("Figure 8 (" + model.name +
                   "): fully-utilized DReX, per-user offload cost [us]");
    full.setHeader({"Context", "Users", "NMA busy/user", "CXL/user",
                    "PipelineBound"});
    for (uint64_t ctx : contexts) {
        const uint32_t users = std::min(ls.maxUsers(ctx), 512u);
        if (users == 0)
            continue;
        const OffloadObservation o = ls.observeOffload(ctx);
        const Tick nma = o.result.doneTick - o.result.startTick;
        // Every user contributes responses for all KV heads to the
        // shared link; NMA work per head runs on its own package.
        const Tick cxl_per_user = transferTime(
            o.result.valueBytes * model.numKvHeads,
            LongSightSystemConfig{}.cxl.bandwidthGBps);
        full.addRow({fmtTokens(ctx), std::to_string(users),
                     TextTable::num(toMicroseconds(nma)),
                     TextTable::num(toMicroseconds(cxl_per_user)),
                     cxl_per_user > nma ? "CXL value path" : "NMA compute"});
    }
    full.print(std::cout);
}

} // namespace
} // namespace longsight

int
main()
{
    using namespace longsight;
    runModel(ModelConfig::llama3_1b());
    runModel(ModelConfig::llama3_8b());
    return 0;
}

/**
 * @file
 * Trace-driven serving comparison: a Poisson arrival trace of
 * long-context requests run through the continuous-batching scheduler
 * on top of the LongSight and 1-GPU system models. Extends Fig. 7's
 * steady-state points with the dynamic metrics an operator sees:
 * time-to-first-token, time-between-tokens, and makespan.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "sim/baseline_gpu.hh"
#include "sim/batch_scheduler.hh"
#include "sim/longsight_system.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace longsight {
namespace {

std::vector<ServingJob>
makeTrace(uint32_t n, uint64_t prompt, uint32_t out, Tick mean_gap,
          uint64_t seed)
{
    Rng rng(seed);
    std::vector<ServingJob> jobs;
    Tick at = 0;
    for (uint32_t i = 0; i < n; ++i) {
        jobs.push_back({i, at, prompt, out});
        at += static_cast<Tick>(-std::log(1.0 - rng.uniform()) *
                                static_cast<double>(mean_gap));
    }
    return jobs;
}

template <typename System>
EngineModel
engineFor(System &sys, const GpuModel &gpu, uint32_t max_batch)
{
    EngineModel e;
    e.prefillTime = [&gpu](uint64_t prompt) {
        return gpu.prefillTime(prompt);
    };
    e.stepTime = [&sys](const std::vector<uint64_t> &contexts) {
        uint64_t max_ctx = 0;
        for (uint64_t c : contexts)
            max_ctx = std::max(max_ctx, c);
        const ServingResult r = sys.decode(
            max_ctx, static_cast<uint32_t>(contexts.size()));
        return r.feasible ? r.stepTime : Tick(1) * kSecond;
    };
    e.maxBatch = max_batch;
    return e;
}

} // namespace
} // namespace longsight

int
main()
{
    using namespace longsight;
    const auto model = ModelConfig::llama3_8b();
    const uint64_t prompt = 65536;
    GpuModel gpu_model(GpuConfig::h100(), model);

    LongSightSystem ls(LongSightSystemConfig{}, model);
    BaselineGpuSystem gpu(GpuConfig::h100(), model, 1);

    const auto trace =
        makeTrace(12, prompt, 256, 2 * kSecond, 77);

    TextTable t("Trace-driven serving: 12 x " + fmtTokens(prompt) +
                "-token prompts, 256 output tokens each (" + model.name +
                ")");
    t.setHeader({"System", "Batch cap", "Makespan [s]", "Throughput t/s",
                 "TTFT p-mean [ms]", "TBT mean [ms]"});

    {
        const uint32_t cap = std::min(ls.maxUsers(prompt + 64), 64u);
        const auto r = runBatchSchedule(
            trace, engineFor(ls, gpu_model, cap));
        t.addRow({"LongSight", std::to_string(cap),
                  TextTable::num(toSeconds(r.makespan), 2),
                  TextTable::num(r.throughputTokensPerSec, 1),
                  TextTable::num(r.ttftMs.mean(), 0),
                  TextTable::num(r.tbtMs.mean(), 1)});
    }
    {
        const uint32_t cap = std::max(gpu.maxUsers(prompt + 64), 1u);
        const auto r = runBatchSchedule(
            trace, engineFor(gpu, gpu_model, cap));
        t.addRow({"1-GPU dense", std::to_string(cap),
                  TextTable::num(toSeconds(r.makespan), 2),
                  TextTable::num(r.throughputTokensPerSec, 1),
                  TextTable::num(r.ttftMs.mean(), 0),
                  TextTable::num(r.tbtMs.mean(), 1)});
    }
    t.print(std::cout);
    std::cout << "Both systems pay identical (serialized) prefill costs — "
                 "LongSight does not\naccelerate prefill (§8.1.2) — so the "
                 "makespan gap is pure decode-phase\nadvantage: the dense "
                 "box can co-resident only a few contexts, while\n"
                 "LongSight decodes the whole admitted trace in parallel "
                 "at a slightly\nhigher per-token time.\n";
    return 0;
}

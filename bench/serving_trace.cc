/**
 * @file
 * Trace-driven serving comparison: a Poisson arrival trace of
 * long-context requests run through the continuous-batching scheduler
 * on top of the LongSight and 1-GPU system models. Extends Fig. 7's
 * steady-state points with the dynamic metrics an operator sees:
 * time-to-first-token, time-between-tokens, and makespan.
 *
 * A second, functional section steps a fleet of real DecodePipelines
 * (mixed context lengths, one per concurrent request) two ways: each
 * request alone via decodeStep(), and the whole batch through
 * DecodePipeline::decodeStepBatch, which groups every request's
 * queries by (layer, KV head) so each KV-cache pass serves a whole
 * GQA group. The two must produce identical step results — any
 * divergence exits nonzero — and the grouped pass's scan-amortization
 * accounting (KV-cache passes saved vs the one-pass-per-query-head
 * decode) lands in BENCH_batch.json.
 *
 * Run:  ./build/bench/serving_trace
 *       ./build/bench/serving_trace --requests 4 --steps 8 \
 *           --out BENCH_batch.json
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "sim/baseline_gpu.hh"
#include "sim/batch_scheduler.hh"
#include "sim/decode_pipeline.hh"
#include "sim/longsight_system.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace longsight {
namespace {

std::vector<ServingJob>
makeTrace(uint32_t n, uint64_t prompt, uint32_t out, Tick mean_gap,
          uint64_t seed)
{
    Rng rng(seed);
    std::vector<ServingJob> jobs;
    Tick at = 0;
    for (uint32_t i = 0; i < n; ++i) {
        jobs.push_back({i, at, prompt, out});
        at += static_cast<Tick>(-std::log(1.0 - rng.uniform()) *
                                static_cast<double>(mean_gap));
    }
    return jobs;
}

template <typename System>
EngineModel
engineFor(System &sys, const GpuModel &gpu, uint32_t max_batch)
{
    EngineModel e;
    e.prefillTime = [&gpu](uint64_t prompt) {
        return gpu.prefillTime(prompt);
    };
    e.stepTime = [&sys](const std::vector<uint64_t> &contexts) {
        uint64_t max_ctx = 0;
        for (uint64_t c : contexts)
            max_ctx = std::max(max_ctx, c);
        const ServingResult r = sys.decode(
            max_ctx, static_cast<uint32_t>(contexts.size()));
        return r.feasible ? r.stepTime : Tick(1) * kSecond;
    };
    e.maxBatch = max_batch;
    return e;
}

/** Outcome of the functional grouped-vs-sequential batch decode. */
struct BatchCompare
{
    uint32_t requests = 0;
    uint32_t steps = 0;
    std::vector<size_t> contexts;
    double sequentialSec = 0.0;
    double batchedSec = 0.0;
    GroupedScanStats stats;
    bool identical = true;
};

bool
sameStep(const PipelineStepResult &a, const PipelineStepResult &b)
{
    return a.offloadsIssued == b.offloadsIssued &&
        a.tokensFlushed == b.tokensFlushed &&
        a.minRetainedMass == b.minRetainedMass &&
        a.deviceMatchedSoftware == b.deviceMatchedSoftware;
}

/**
 * Step two identically-seeded pipeline fleets with mixed context
 * lengths: one request-at-a-time, one through the grouped batch step.
 * Results must match step for step; wall times and the grouped pass's
 * scan amortization are the payload.
 */
BatchCompare
runFunctionalBatch(uint32_t requests, uint32_t steps,
                   PipelineConfig cfg)
{
    BatchCompare bc;
    bc.requests = requests;
    bc.steps = steps;

    DrexConfig dcfg;
    dcfg.numKvHeads = cfg.numKvHeads;
    dcfg.numLayers = cfg.numLayers;
    dcfg.headDim = cfg.headDim;

    auto makeFleet = [&](DrexDevice &dev,
                         std::vector<std::unique_ptr<DecodePipeline>>
                             &fleet) {
        for (uint32_t i = 0; i < requests; ++i) {
            PipelineConfig c = cfg;
            c.seed = cfg.seed + i;
            fleet.push_back(
                std::make_unique<DecodePipeline>(c, dev, i));
            // Mixed context lengths straddling flush-group boundaries.
            fleet.back()->prefill(512 + 97 * i);
        }
    };
    DrexDevice dev_seq(dcfg), dev_batch(dcfg);
    std::vector<std::unique_ptr<DecodePipeline>> seq, batch;
    makeFleet(dev_seq, seq);
    makeFleet(dev_batch, batch);
    for (const auto &p : seq)
        bc.contexts.push_back(p->contextLength());

    std::vector<std::vector<PipelineStepResult>> seq_results(
        steps, std::vector<PipelineStepResult>(requests));
    auto t0 = std::chrono::steady_clock::now();
    for (uint32_t s = 0; s < steps; ++s)
        for (uint32_t i = 0; i < requests; ++i)
            seq_results[s][i] = seq[i]->decodeStep();
    bc.sequentialSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::vector<DecodePipeline *> ptrs;
    for (auto &p : batch)
        ptrs.push_back(p.get());
    std::vector<PipelineStepResult> step_results;
    t0 = std::chrono::steady_clock::now();
    for (uint32_t s = 0; s < steps; ++s) {
        bc.stats.merge(
            DecodePipeline::decodeStepBatch(ptrs, step_results));
        for (uint32_t i = 0; i < requests; ++i)
            if (!sameStep(step_results[i], seq_results[s][i])) {
                std::cerr << "FAIL: batched decode step " << s
                          << " diverged from the sequential decode for "
                             "request "
                          << i << "\n";
                bc.identical = false;
            }
    }
    bc.batchedSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return bc;
}

void
writeBatchJson(const std::string &path, const BatchCompare &bc,
               const PipelineConfig &cfg)
{
    std::ofstream os(path);
    LS_ASSERT(os.good(), "cannot write ", path);
    os << "{\n"
       << benchMeta("serving_batch",
                    {cfg.numQueryHeads, cfg.numKvHeads, cfg.headDim})
       << "  \"requests\": " << bc.requests << ",\n"
       << "  \"decode_steps\": " << bc.steps << ",\n"
       << "  \"contexts\": [";
    for (size_t i = 0; i < bc.contexts.size(); ++i)
        os << bc.contexts[i] << (i + 1 < bc.contexts.size() ? ", " : "");
    os << "],\n"
       << "  \"sequential_s\": " << bc.sequentialSec << ",\n"
       << "  \"batched_s\": " << bc.batchedSec << ",\n"
       << "  \"batched_speedup\": " << bc.sequentialSec / bc.batchedSec
       << ",\n"
       << "  \"grouped_items\": " << bc.stats.groupedItems << ",\n"
       << "  \"scan_passes\": " << bc.stats.scanPasses << ",\n"
       << "  \"ungrouped_equivalent_passes\": "
       << bc.stats.ungroupedEquivalent << ",\n"
       << "  \"scan_amortization\": " << bc.stats.amortization() << ",\n"
       << "  \"results_identical\": "
       << (bc.identical ? "true" : "false") << "\n}\n";
}

} // namespace
} // namespace longsight

int
main(int argc, char **argv)
{
    using namespace longsight;
    Flags flags(argc, argv);
    const auto requests =
        static_cast<uint32_t>(flags.getInt("requests", 4));
    const auto fsteps = static_cast<uint32_t>(flags.getInt("steps", 6));
    const std::string out =
        flags.getString("out", "BENCH_batch.json");
    const auto leftover = flags.unconsumed();
    LS_ASSERT(leftover.empty(), "unknown flag --", leftover.front());
    const auto model = ModelConfig::llama3_8b();
    const uint64_t prompt = 65536;
    GpuModel gpu_model(GpuConfig::h100(), model);

    LongSightSystem ls(LongSightSystemConfig{}, model);
    BaselineGpuSystem gpu(GpuConfig::h100(), model, 1);

    const auto trace =
        makeTrace(12, prompt, 256, 2 * kSecond, 77);

    TextTable t("Trace-driven serving: 12 x " + fmtTokens(prompt) +
                "-token prompts, 256 output tokens each (" + model.name +
                ")");
    t.setHeader({"System", "Batch cap", "Makespan [s]", "Throughput t/s",
                 "TTFT p-mean [ms]", "TBT mean [ms]"});

    {
        const uint32_t cap = std::min(ls.maxUsers(prompt + 64), 64u);
        const auto r = runBatchSchedule(
            trace, engineFor(ls, gpu_model, cap));
        t.addRow({"LongSight", std::to_string(cap),
                  TextTable::num(toSeconds(r.makespan), 2),
                  TextTable::num(r.throughputTokensPerSec, 1),
                  TextTable::num(r.ttftMs.mean(), 0),
                  TextTable::num(r.tbtMs.mean(), 1)});
    }
    {
        const uint32_t cap = std::max(gpu.maxUsers(prompt + 64), 1u);
        const auto r = runBatchSchedule(
            trace, engineFor(gpu, gpu_model, cap));
        t.addRow({"1-GPU dense", std::to_string(cap),
                  TextTable::num(toSeconds(r.makespan), 2),
                  TextTable::num(r.throughputTokensPerSec, 1),
                  TextTable::num(r.ttftMs.mean(), 0),
                  TextTable::num(r.tbtMs.mean(), 1)});
    }
    t.print(std::cout);
    std::cout << "Both systems pay identical (serialized) prefill costs — "
                 "LongSight does not\naccelerate prefill (§8.1.2) — so the "
                 "makespan gap is pure decode-phase\nadvantage: the dense "
                 "box can co-resident only a few contexts, while\n"
                 "LongSight decodes the whole admitted trace in parallel "
                 "at a slightly\nhigher per-token time.\n";

    // Functional grouped-vs-sequential batch decode on a small GQA
    // shape (group size 4, like the 8B Table-1 ratio).
    PipelineConfig pcfg;
    pcfg.numLayers = 2;
    pcfg.numQueryHeads = 8;
    pcfg.numKvHeads = 2;
    pcfg.headDim = 64;
    pcfg.hybrid.windowSize = 256;
    pcfg.hybrid.sinkTokens = 8;
    pcfg.hybrid.topK = 128;
    pcfg.hybrid.defaultThreshold =
        static_cast<int>(pcfg.headDim / 4);
    pcfg.seed = 7;
    const BatchCompare bc = runFunctionalBatch(requests, fsteps, pcfg);
    std::cout << "\nfunctional batch decode: " << bc.requests
              << " requests x " << bc.steps << " steps, grouped "
              << bc.stats.scanPasses << " scan passes vs "
              << bc.stats.ungroupedEquivalent
              << " ungrouped (amortization "
              << bc.stats.amortization() << "x, "
              << (bc.identical ? "results identical" : "DIVERGED")
              << ")\n";
    writeBatchJson(out, bc, pcfg);
    std::cout << "wrote " << out << "\n";
    return bc.identical ? 0 : 1;
}

/**
 * @file
 * Reproduces Figure 10: accuracy (relative to dense attention) vs
 * normalized decode throughput Pareto frontiers for LongSight and for
 * sliding-window-only attention at a 32K-token context, with window
 * size, k, and thresholds tuned per point. Throughput is normalized
 * to the 1-GPU dense baseline at the same context and batch, as in
 * the paper.
 *
 * The claim under test: LongSight substantially expands the Pareto
 * frontier — sliding window can be fast but gives up accuracy that
 * no window size recovers, while LongSight holds near-dense accuracy
 * at several times the dense throughput.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "model/model_config.hh"
#include "sim/baseline_gpu.hh"
#include "sim/longsight_system.hh"
#include "util/table.hh"

namespace longsight {
namespace {

struct Point
{
    double accuracy;
    double norm_tput;
    std::string config;
};

std::vector<Point>
paretoFrontier(std::vector<Point> pts)
{
    std::sort(pts.begin(), pts.end(), [](const Point &a, const Point &b) {
        return a.norm_tput < b.norm_tput;
    });
    std::vector<Point> front;
    double best = -1.0;
    for (auto it = pts.rbegin(); it != pts.rend(); ++it) {
        if (it->accuracy > best) {
            best = it->accuracy;
            front.push_back(*it);
        }
    }
    std::reverse(front.begin(), front.end());
    return front;
}

} // namespace
} // namespace longsight

int
main()
{
    using namespace longsight;
    const auto model = ModelConfig::llama3_8b();
    const uint64_t context = 32768;
    const uint32_t users = 8;

    std::cout << "Building " << fmtTokens(context)
              << " evaluation corpus...\n";
    WorkloadConfig wcfg;
    wcfg.headDim = model.headDim;
    AlgoEvaluator eval(wcfg, 4, context, 16, 0xF10'0001, 20);

    // Dense 1-GPU reference throughput at this context and batch.
    BaselineGpuSystem gpu(GpuConfig::h100(), model, 1);
    const uint32_t dense_users = std::min(users, gpu.maxUsers(context));
    const ServingResult dense = gpu.decode(context, dense_users);
    const double dense_tput = dense.tokensPerSecond;
    std::cout << "Dense baseline: " << dense_tput << " tokens/s at "
              << dense_users << " users\n";

    // Sliding-window points: W sweep, accuracy from retained mass.
    std::vector<Point> window_pts;
    for (uint32_t w : {512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
        const double lost = eval.slidingWindowLostMass(w, 16);
        const double acc = 1.0 / (1.0 + (std::exp(lost) - 1.0));
        SlidingWindowSystem sys(GpuConfig::h100(), model, w, 16);
        const ServingResult r = sys.decode(context, users);
        if (!r.feasible)
            continue;
        window_pts.push_back({acc, r.tokensPerSecond / dense_tput,
                              "W=" + std::to_string(w)});
    }

    // LongSight points: (W, k, TH) sweep; quality from the evaluator,
    // performance from the system model with the measured filter ratio.
    std::vector<Point> ls_pts;
    const int d = static_cast<int>(model.headDim);
    for (uint32_t w : {512u, 1024u, 4096u}) {
        for (uint32_t k : {128u, 256u, 1024u}) {
            for (int th = 0; th <= d * 3 / 4; th += d / 8) {
                EvalConfig cfg;
                cfg.windowSize = w;
                cfg.sinkTokens = 16;
                cfg.topK = k;
                cfg.useItq = true;
                cfg.thresholds.assign(eval.numHeads(), th);
                const EvalResult q = eval.evaluate(cfg);
                if (q.filterRatio < 1.0)
                    continue;
                LongSightSystemConfig scfg;
                scfg.windowSize = w;
                scfg.topK = k;
                scfg.filterRatio = std::max(1.0, q.filterRatio);
                LongSightSystem sys(scfg, model);
                const ServingResult r = sys.decode(context, users);
                if (!r.feasible)
                    continue;
                const double acc = 1.0 / (1.0 + q.pplIncreasePct / 100.0);
                ls_pts.push_back(
                    {acc, r.tokensPerSecond / dense_tput,
                     "W=" + std::to_string(w) + " k=" + std::to_string(k) +
                         " TH=" + std::to_string(th)});
            }
        }
    }

    TextTable tw("Figure 10: sliding-window Pareto frontier (" +
                 fmtTokens(context) + ", " + std::to_string(users) +
                 " users)");
    tw.setHeader({"NormThroughput", "Accuracy", "Config"});
    for (const Point &p : paretoFrontier(window_pts))
        tw.addRow({TextTable::num(p.norm_tput, 2),
                   TextTable::num(p.accuracy, 4), p.config});
    tw.print(std::cout);

    TextTable tl("Figure 10: LongSight Pareto frontier");
    tl.setHeader({"NormThroughput", "Accuracy", "Config"});
    for (const Point &p : paretoFrontier(ls_pts))
        tl.addRow({TextTable::num(p.norm_tput, 2),
                   TextTable::num(p.accuracy, 4), p.config});
    tl.print(std::cout);

    // Headline: best LongSight throughput at >= 0.99 accuracy vs best
    // sliding-window at the same accuracy bar.
    auto best_at = [](const std::vector<Point> &pts, double acc_floor) {
        double best = 0.0;
        for (const Point &p : pts)
            if (p.accuracy >= acc_floor)
                best = std::max(best, p.norm_tput);
        return best;
    };
    TextTable sum("Figure 10 summary: normalized throughput at accuracy >= 0.99");
    sum.setHeader({"System", "NormThroughput"});
    sum.addRow({"Sliding window",
                TextTable::num(best_at(window_pts, 0.99), 2)});
    sum.addRow({"LongSight", TextTable::num(best_at(ls_pts, 0.99), 2)});
    sum.print(std::cout);
    return 0;
}

/**
 * @file
 * Reproduces the §3.1/§4 argument in numbers: Sign-Concordance
 * Filtering vs clustering-based ANNS vs Reformer-style LSH as the
 * candidate generator for sparse attention, at matched candidate
 * budgets on the same clustered-key workload. Three axes:
 *
 *   1. retained softmax mass at a similar candidate fraction,
 *   2. index construction cost, and
 *   3. per-generated-token maintenance cost —
 *
 * the last two being why the paper rejects indexed ANNS for a KV
 * cache that grows by one entry per (head, layer) every token (§4
 * "dynamic updates"), while SCF needs no index at all.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/attention.hh"
#include "core/itq.hh"
#include "tensor/linalg.hh"
#include "core/scf.hh"
#include "eval/sparse_baselines.hh"
#include "model/workload.hh"
#include "tensor/softmax.hh"
#include "util/table.hh"

namespace longsight {
namespace {

struct Row
{
    std::string name;
    double candidateFraction;
    double retainedMass;
    uint64_t buildCost;
    uint64_t updateCostPerToken;
};

double
massOf(const std::vector<float> &probs, const std::vector<uint32_t> &cand)
{
    double m = 0.0;
    for (uint32_t idx : cand)
        m += probs[idx];
    return m;
}

} // namespace
} // namespace longsight

int
main()
{
    using namespace longsight;
    constexpr uint32_t kDim = 64;
    constexpr size_t kContext = 8192;

    WorkloadConfig wcfg;
    wcfg.headDim = kDim;
    HeadWorkload wl(wcfg, Rng(31));
    wl.generate(kContext);
    const Matrix &keys = wl.keys();
    const float scale = wl.attentionScale();

    Rng rng(32);
    KMeansIndex kmeans(keys, 64, 8, rng);
    LshIndex lsh(keys, 6, 7, rng);
    const auto key_signs = packSignRows(keys.data(), kContext, kDim);

    // ITQ-rotated sign space (§5.4), trained on ~1K keys.
    Matrix train(1024, kDim);
    for (size_t i = 0; i < 1024; ++i)
        train.setRow(i, keys.row(i * kContext / 1024));
    const Matrix rot = trainItqRotation(train, 20, rng);
    std::vector<SignBits> itq_signs;
    itq_signs.reserve(kContext);
    for (size_t i = 0; i < kContext; ++i) {
        const auto rk = gemvT(rot, keys.rowVec(i));
        itq_signs.emplace_back(rk.data(), kDim);
    }

    const int trials = 16;
    std::vector<Row> rows = {
        {"SCF raw signs (TH=36)", 0, 0, 0, 0},
        {"SCF + ITQ (TH=40)", 0, 0, 0, 0},
        {"k-means ANNS (8 probes)", 0, 0,
         kmeans.buildDistanceComputations(), 64},
        {"LSH (6 tables x 7 bits)", 0, 0, lsh.buildHashComputations(), 6},
    };

    HeadWorkload probe(wcfg, Rng(31));
    probe.generate(kContext);
    for (int t = 0; t < trials; ++t) {
        const auto q = probe.drawQuery();
        auto probs = attentionScores(q.data(), keys, 0, kContext, scale);
        softmaxInPlace(probs);

        const SignBits qs(q.data(), kDim);
        const auto scf = scfFilter(qs, key_signs, 36);
        rows[0].candidateFraction +=
            static_cast<double>(scf.size()) / kContext;
        rows[0].retainedMass += massOf(probs, scf);

        const auto qr = gemvT(rot, q);
        const SignBits qs_itq(qr.data(), kDim);
        const auto scf_itq = scfFilter(qs_itq, itq_signs, 40);
        rows[1].candidateFraction +=
            static_cast<double>(scf_itq.size()) / kContext;
        rows[1].retainedMass += massOf(probs, scf_itq);

        const auto km = kmeans.candidates(q.data(), 8);
        rows[2].candidateFraction +=
            static_cast<double>(km.size()) / kContext;
        rows[2].retainedMass += massOf(probs, km);

        const auto lc = lsh.candidates(q.data());
        rows[3].candidateFraction +=
            static_cast<double>(lc.size()) / kContext;
        rows[3].retainedMass += massOf(probs, lc);
    }

    TextTable t("Sec. 3.1/4: candidate generators at " +
                fmtTokens(kContext) + " context (" +
                std::to_string(trials) + " queries)");
    t.setHeader({"Method", "Candidates", "RetainedMass", "Index build",
                 "Update/token"});
    for (Row &r : rows) {
        t.addRow({r.name,
                  TextTable::num(100.0 * r.candidateFraction / trials, 1) +
                      "%",
                  TextTable::num(r.retainedMass / trials, 4),
                  r.buildCost ? std::to_string(r.buildCost) + " dists"
                              : "none",
                  r.updateCostPerToken
                      ? std::to_string(r.updateCostPerToken) + " dists"
                      : "1 sign-pack"});
    }
    t.print(std::cout);
    std::cout << "Clustering ANNS is the strongest generator per "
                 "candidate — but it pays a\nmillions-of-distances index "
                 "build, 64 distances per new key, and cannot\nrun inside "
                 "DRAM banks. ITQ-rotated SCF closes most of the quality "
                 "gap\nwith NO index, a one-pass sign update per key, and "
                 "a bit-parallel\nin-bank implementation — the §4 trade "
                 "LongSight makes. LSH trails both\nat matched budgets "
                 "(§3.1's Reformer critique).\n";
    return 0;
}

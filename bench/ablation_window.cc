/**
 * @file
 * Ablations for the §6/§8.1.3 hybrid-window design decisions:
 *
 *  1. Window-size sensitivity: quality (retained softmax mass) and
 *     GPU-side cost as W grows — "large window sizes of greater than
 *     1,024 tokens tend to be useful only at the highest accuracy
 *     targets" (§5.4).
 *  2. Staging-buffer benefit: bulk KV updates to DReX (groups of 128)
 *     vs per-token writes over CXL — §6 benefit (3).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "cxl/link.hh"
#include "gpu/gpu_model.hh"
#include "model/model_config.hh"
#include "util/table.hh"

int
main()
{
    using namespace longsight;
    const auto model = ModelConfig::llama3_8b();
    const size_t context = 16384;

    std::cout << "Building " << fmtTokens(context)
              << " evaluation corpus...\n";
    WorkloadConfig wcfg;
    wcfg.headDim = model.headDim;
    AlgoEvaluator eval(wcfg, 4, context, 16, 0xAB1A'0001, 0);
    GpuModel gpu(GpuConfig::h100(), model);

    TextTable t("Ablation: window size W (k=1024, no SCF filtering)");
    t.setHeader({"W", "LostMass", "dPPL%", "GPU window time/layer [us]",
                 "Max users (GPU side)"});
    for (uint32_t w : {0u, 256u, 1024u, 4096u, 16384u}) {
        EvalConfig cfg;
        cfg.windowSize = w;
        cfg.sinkTokens = 16;
        cfg.topK = 1024;
        const EvalResult r = eval.evaluate(cfg);
        t.addRow({std::to_string(w), TextTable::num(r.lostMass, 4),
                  TextTable::num(r.pplIncreasePct, 2),
                  TextTable::num(toMicroseconds(
                      gpu.windowAttentionTime(w + 16, 1))),
                  std::to_string(gpu.maxUsersWindowed(w + 16 + 128))});
    }
    t.print(std::cout);

    // Staging-buffer ablation: CXL cost of shipping 128 new tokens'
    // KV data (all layers, all heads) to DReX, per token generated.
    const CxlConfig cxl_cfg;
    const uint64_t bytes_per_token = model.kvBytesPerToken() +
        model.kvBytesPerToken() / (8 * model.bytesPerValue * 2); // + signs
    TextTable s("Ablation: staging buffer (bulk 128-token updates vs "
                "per-token)");
    s.setHeader({"Update policy", "CXL ops/token", "us/token",
                 "Notes"});
    {
        // Per-token: one small write per (layer, head) per token.
        CxlLink link(cxl_cfg);
        const uint32_t writes = model.numLayers * model.numKvHeads;
        const uint64_t bytes_each =
            bytes_per_token / writes;
        Tick done = 0;
        for (uint32_t i = 0; i < writes; ++i)
            done = link.mmioWrite(done,
                                  static_cast<uint32_t>(bytes_each));
        s.addRow({"per-token", std::to_string(writes),
                  TextTable::num(toMicroseconds(done)),
                  "latency-dominated, on critical path"});
    }
    {
        // Bulk: one large transfer per 128 tokens, off critical path.
        CxlLink link(cxl_cfg);
        const Tick done = link.bulkRead(0, bytes_per_token * 128);
        s.addRow({"bulk x128 (staging)", TextTable::num(1.0 / 128.0, 3),
                  TextTable::num(toMicroseconds(done) / 128.0),
                  "bandwidth-dominated, overlapped"});
    }
    s.print(std::cout);
    return 0;
}

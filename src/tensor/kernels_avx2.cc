/**
 * @file
 * AVX2 batch-scan backend. Compiled into every x86-64 binary behind
 * function-level target attributes (no -mavx2 global flag needed) and
 * selected at runtime only when __builtin_cpu_supports("avx2") says
 * the host can execute it.
 *
 * Concordance uses the classic vpshufb nibble-LUT popcount with a
 * vpsadbw horizontal fold, giving per-64-bit-lane popcounts — four
 * packed sign rows (d <= 64), two rows (d <= 128), or four words of
 * one wide row per 256-bit op. Survivor extraction compares lane
 * counts against (dim - threshold) and walks the movemask bits in
 * ascending row order, so survivor lists are bit-identical to the
 * scalar backend.
 *
 * The dot kernel processes four survivor keys at once: 4x4 float
 * blocks are transposed to dimension-major vectors and accumulated
 * with separate vmulpd/vaddpd (never FMA) so every key's sum is
 * evaluated in the same ascending-dimension double-precision order as
 * the scalar dot — scores are bit-identical across backends.
 */

#include "tensor/kernels.hh"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <bit>

namespace longsight {
namespace detail {
namespace {

#define LS_AVX2 __attribute__((target("avx2,popcnt")))

/** Per-64-bit-lane popcount of a 256-bit vector. */
LS_AVX2 inline __m256i
popcount64x4(__m256i x)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i nibble = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(x, nibble);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(x, 4), nibble);
    const __m256i cnt8 = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(cnt8, _mm256_setzero_si256());
}

/** Mismatch popcount of one row against the query (any width). */
LS_AVX2 inline int
rowMismatches(const uint64_t *q, const uint64_t *row, size_t wpr)
{
    int mismatches = 0;
    size_t w = 0;
    for (; w + 4 <= wpr; w += 4) {
        const __m256i x = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(row + w)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(q + w)));
        const __m256i cnt = popcount64x4(x);
        mismatches += static_cast<int>(
            _mm256_extract_epi64(cnt, 0) + _mm256_extract_epi64(cnt, 1) +
            _mm256_extract_epi64(cnt, 2) + _mm256_extract_epi64(cnt, 3));
    }
    for (; w < wpr; ++w)
        mismatches += std::popcount(row[w] ^ q[w]);
    return mismatches;
}

/**
 * Shared burst walker: calls emit(row, concordance_ok) for every row
 * in ascending order, with the d<=64 / d<=128 layouts fully packed.
 */
template <typename Emit>
LS_AVX2 inline void
forEachRow(const uint64_t *q, const uint64_t *signs, size_t wpr,
           size_t rows, int dim, int threshold, Emit emit)
{
    // A row passes iff mismatches <= dim - threshold.
    const long long limit = static_cast<long long>(dim) -
        static_cast<long long>(threshold);
    size_t r = 0;
    if (wpr == 1) {
        const __m256i qv = _mm256_set1_epi64x(
            static_cast<long long>(q[0]));
        const __m256i lim = _mm256_set1_epi64x(limit);
        for (; r + 4 <= rows; r += 4) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(signs + r)),
                qv);
            const __m256i cnt = popcount64x4(x);
            // cnt > limit per lane -> fail; pass bits are the rest.
            const int fail = _mm256_movemask_pd(_mm256_castsi256_pd(
                _mm256_cmpgt_epi64(cnt, lim)));
            emit(r + 0, (fail & 1) == 0);
            emit(r + 1, (fail & 2) == 0);
            emit(r + 2, (fail & 4) == 0);
            emit(r + 3, (fail & 8) == 0);
        }
    } else if (wpr == 2) {
        const __m256i qv = _mm256_setr_epi64x(
            static_cast<long long>(q[0]), static_cast<long long>(q[1]),
            static_cast<long long>(q[0]), static_cast<long long>(q[1]));
        for (; r + 2 <= rows; r += 2) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    signs + r * 2)),
                qv);
            const __m256i cnt = popcount64x4(x);
            // Fold word pairs: lanes (0+1) and (2+3) are row totals.
            const __m256i folded = _mm256_add_epi64(
                cnt, _mm256_shuffle_epi32(cnt, _MM_SHUFFLE(1, 0, 3, 2)));
            emit(r + 0, _mm256_extract_epi64(folded, 0) <= limit);
            emit(r + 1, _mm256_extract_epi64(folded, 2) <= limit);
        }
    }
    for (; r < rows; ++r)
        emit(r, rowMismatches(q, signs + r * wpr, wpr) <= limit);
}

LS_AVX2 void
avx2Concordance(const uint64_t *q, const uint64_t *signs, size_t wpr,
                size_t rows, int dim, int32_t *out)
{
    size_t r = 0;
    if (wpr == 1) {
        const __m256i qv = _mm256_set1_epi64x(
            static_cast<long long>(q[0]));
        alignas(32) long long cnt4[4];
        for (; r + 4 <= rows; r += 4) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(signs + r)),
                qv);
            _mm256_store_si256(reinterpret_cast<__m256i *>(cnt4),
                               popcount64x4(x));
            for (int j = 0; j < 4; ++j)
                out[r + j] = dim - static_cast<int32_t>(cnt4[j]);
        }
    } else if (wpr == 2) {
        const __m256i qv = _mm256_setr_epi64x(
            static_cast<long long>(q[0]), static_cast<long long>(q[1]),
            static_cast<long long>(q[0]), static_cast<long long>(q[1]));
        alignas(32) long long cnt4[4];
        for (; r + 2 <= rows; r += 2) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    signs + r * 2)),
                qv);
            _mm256_store_si256(reinterpret_cast<__m256i *>(cnt4),
                               popcount64x4(x));
            out[r + 0] =
                dim - static_cast<int32_t>(cnt4[0] + cnt4[1]);
            out[r + 1] =
                dim - static_cast<int32_t>(cnt4[2] + cnt4[3]);
        }
    }
    for (; r < rows; ++r)
        out[r] = dim - rowMismatches(q, signs + r * wpr, wpr);
}

LS_AVX2 size_t
avx2Scan(const uint64_t *q, const uint64_t *signs, size_t wpr,
         size_t rows, int dim, int threshold, uint32_t base,
         uint32_t *out)
{
    // Branchless compaction into the caller's span (contract: capacity
    // >= rows): store every candidate index unconditionally and
    // advance the cursor by the pass bit. At typical ~50% survivor
    // rates the mispredicted per-row branch costs more than the
    // wasted stores.
    uint32_t *dst = out;
    size_t n = 0;

    const long long limit = static_cast<long long>(dim) -
        static_cast<long long>(threshold);
    size_t r = 0;
    if (wpr == 1) {
        const __m256i qv = _mm256_set1_epi64x(
            static_cast<long long>(q[0]));
        const __m256i lim = _mm256_set1_epi64x(limit);
        for (; r + 4 <= rows; r += 4) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(signs + r)),
                qv);
            const __m256i cnt = popcount64x4(x);
            const int pass = ~_mm256_movemask_pd(_mm256_castsi256_pd(
                                 _mm256_cmpgt_epi64(cnt, lim))) &
                0xf;
            dst[n] = base + static_cast<uint32_t>(r);
            n += pass & 1;
            dst[n] = base + static_cast<uint32_t>(r) + 1;
            n += (pass >> 1) & 1;
            dst[n] = base + static_cast<uint32_t>(r) + 2;
            n += (pass >> 2) & 1;
            dst[n] = base + static_cast<uint32_t>(r) + 3;
            n += (pass >> 3) & 1;
        }
    } else if (wpr == 2) {
        const __m256i qv = _mm256_setr_epi64x(
            static_cast<long long>(q[0]), static_cast<long long>(q[1]),
            static_cast<long long>(q[0]), static_cast<long long>(q[1]));
        const __m256i lim = _mm256_set1_epi64x(limit);
        for (; r + 2 <= rows; r += 2) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    signs + r * 2)),
                qv);
            const __m256i cnt = popcount64x4(x);
            const __m256i folded = _mm256_add_epi64(
                cnt, _mm256_shuffle_epi32(cnt, _MM_SHUFFLE(1, 0, 3, 2)));
            const int fail = _mm256_movemask_pd(_mm256_castsi256_pd(
                _mm256_cmpgt_epi64(folded, lim)));
            dst[n] = base + static_cast<uint32_t>(r);
            n += ~fail & 1;
            dst[n] = base + static_cast<uint32_t>(r) + 1;
            n += (~fail >> 2) & 1;
        }
    }
    for (; r < rows; ++r) {
        dst[n] = base + static_cast<uint32_t>(r);
        n += rowMismatches(q, signs + r * wpr, wpr) <= limit ? 1 : 0;
    }

    return n;
}

LS_AVX2 void
avx2Bitmap(const uint64_t *q, const uint64_t *signs, size_t wpr,
           size_t rows, int dim, int threshold, uint64_t out[2])
{
    out[0] = out[1] = 0;
    forEachRow(q, signs, wpr, rows, dim, threshold,
               [&](size_t r, bool pass) {
                   if (pass)
                       out[r >> 6] |= uint64_t{1} << (r & 63);
               });
}

/** Transposed 4-key dot block; each lane's accumulation order is the
 *  scalar ascending-dimension order (mul then add, no FMA). */
LS_AVX2 inline void
dot4Keys(const float *q, const float *k0, const float *k1,
         const float *k2, const float *k3, size_t dim, float scale,
         float *out0, float *out1, float *out2, float *out3)
{
    __m256d acc = _mm256_setzero_pd();
    size_t i = 0;
    for (; i + 4 <= dim; i += 4) {
        const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(k0 + i));
        const __m256d a1 = _mm256_cvtps_pd(_mm_loadu_ps(k1 + i));
        const __m256d a2 = _mm256_cvtps_pd(_mm_loadu_ps(k2 + i));
        const __m256d a3 = _mm256_cvtps_pd(_mm_loadu_ps(k3 + i));
        const __m256d t0 = _mm256_unpacklo_pd(a0, a1);
        const __m256d t1 = _mm256_unpackhi_pd(a0, a1);
        const __m256d t2 = _mm256_unpacklo_pd(a2, a3);
        const __m256d t3 = _mm256_unpackhi_pd(a2, a3);
        const __m256d d0 = _mm256_permute2f128_pd(t0, t2, 0x20);
        const __m256d d1 = _mm256_permute2f128_pd(t1, t3, 0x20);
        const __m256d d2 = _mm256_permute2f128_pd(t0, t2, 0x31);
        const __m256d d3 = _mm256_permute2f128_pd(t1, t3, 0x31);
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(
                     _mm256_set1_pd(static_cast<double>(q[i + 0])), d0));
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(
                     _mm256_set1_pd(static_cast<double>(q[i + 1])), d1));
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(
                     _mm256_set1_pd(static_cast<double>(q[i + 2])), d2));
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(
                     _mm256_set1_pd(static_cast<double>(q[i + 3])), d3));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (; i < dim; ++i) {
        const double qd = static_cast<double>(q[i]);
        lanes[0] += qd * static_cast<double>(k0[i]);
        lanes[1] += qd * static_cast<double>(k1[i]);
        lanes[2] += qd * static_cast<double>(k2[i]);
        lanes[3] += qd * static_cast<double>(k3[i]);
    }
    *out0 = static_cast<float>(lanes[0]) * scale;
    *out1 = static_cast<float>(lanes[1]) * scale;
    *out2 = static_cast<float>(lanes[2]) * scale;
    *out3 = static_cast<float>(lanes[3]) * scale;
}

LS_AVX2 inline float
dot1Key(const float *q, const float *k, size_t dim, float scale)
{
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i)
        acc += static_cast<double>(q[i]) * static_cast<double>(k[i]);
    return static_cast<float>(acc) * scale;
}

LS_AVX2 void
avx2DotAt(const float *q, const float *keys, size_t stride, size_t dim,
          const uint32_t *idx, size_t first, size_t count, float scale,
          float *out)
{
    size_t j = 0;
    for (; j + 4 <= count; j += 4) {
        const float *k0 =
            keys + (idx ? idx[j + 0] : first + j + 0) * stride;
        const float *k1 =
            keys + (idx ? idx[j + 1] : first + j + 1) * stride;
        const float *k2 =
            keys + (idx ? idx[j + 2] : first + j + 2) * stride;
        const float *k3 =
            keys + (idx ? idx[j + 3] : first + j + 3) * stride;
        dot4Keys(q, k0, k1, k2, k3, dim, scale, out + j, out + j + 1,
                 out + j + 2, out + j + 3);
    }
    for (; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        out[j] = dot1Key(q, keys + row * stride, dim, scale);
    }
}

const KernelOps kAvx2Ops = {avx2Concordance, avx2Scan, avx2Bitmap,
                            avx2DotAt};

bool
cpuHasAvx2()
{
    return __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("popcnt");
}

} // namespace

const KernelOps *
avx2KernelOps()
{
    static const bool supported = cpuHasAvx2();
    return supported ? &kAvx2Ops : nullptr;
}

} // namespace detail
} // namespace longsight

#else // !x86

namespace longsight {
namespace detail {

const KernelOps *
avx2KernelOps()
{
    return nullptr;
}

} // namespace detail
} // namespace longsight

#endif

/**
 * @file
 * AVX2 batch-scan backend. Compiled into every x86-64 binary behind
 * function-level target attributes (no -mavx2 global flag needed) and
 * selected at runtime only when __builtin_cpu_supports("avx2") says
 * the host can execute it.
 *
 * Concordance uses the classic vpshufb nibble-LUT popcount with a
 * vpsadbw horizontal fold, giving per-64-bit-lane popcounts — four
 * packed sign rows (d <= 64), two rows (d <= 128), or four words of
 * one wide row per 256-bit op. Survivor extraction compares lane
 * counts against (dim - threshold) and walks the movemask bits in
 * ascending row order, so survivor lists are bit-identical to the
 * scalar backend.
 *
 * The dot kernel processes four survivor keys at once: 4x4 float
 * blocks are transposed to dimension-major vectors and accumulated
 * with separate vmulpd/vaddpd (never FMA) so every key's sum is
 * evaluated in the same ascending-dimension double-precision order as
 * the scalar dot — scores are bit-identical across backends.
 *
 * The multi-query scan additionally carries an AVX-512 VPOPCNTDQ fast
 * path (runtime-gated, 4 queries per vector) for the packed d <= 64
 * and d <= 128 layouts; see avx512ScanMulti4W*. It is internal to
 * this backend — the public backend name stays "avx2" — and exact,
 * so the bit-identity contract is unaffected.
 */

#include "tensor/kernels.hh"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <bit>

namespace longsight {
namespace detail {
namespace {

#define LS_AVX2 __attribute__((target("avx2,popcnt")))

/** Per-64-bit-lane popcount of a 256-bit vector. */
LS_AVX2 inline __m256i
popcount64x4(__m256i x)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i nibble = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(x, nibble);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(x, 4), nibble);
    const __m256i cnt8 = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
    return _mm256_sad_epu8(cnt8, _mm256_setzero_si256());
}

/** Mismatch popcount of one row against the query (any width). */
LS_AVX2 inline int
rowMismatches(const uint64_t *q, const uint64_t *row, size_t wpr)
{
    int mismatches = 0;
    size_t w = 0;
    for (; w + 4 <= wpr; w += 4) {
        const __m256i x = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(row + w)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(q + w)));
        const __m256i cnt = popcount64x4(x);
        mismatches += static_cast<int>(
            _mm256_extract_epi64(cnt, 0) + _mm256_extract_epi64(cnt, 1) +
            _mm256_extract_epi64(cnt, 2) + _mm256_extract_epi64(cnt, 3));
    }
    for (; w < wpr; ++w)
        mismatches += std::popcount(row[w] ^ q[w]);
    return mismatches;
}

/**
 * Shared burst walker: calls emit(row, concordance_ok) for every row
 * in ascending order, with the d<=64 / d<=128 layouts fully packed.
 */
template <typename Emit>
LS_AVX2 inline void
forEachRow(const uint64_t *q, const uint64_t *signs, size_t wpr,
           size_t rows, int dim, int threshold, Emit emit)
{
    // A row passes iff mismatches <= dim - threshold.
    const long long limit = static_cast<long long>(dim) -
        static_cast<long long>(threshold);
    size_t r = 0;
    if (wpr == 1) {
        const __m256i qv = _mm256_set1_epi64x(
            static_cast<long long>(q[0]));
        const __m256i lim = _mm256_set1_epi64x(limit);
        for (; r + 4 <= rows; r += 4) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(signs + r)),
                qv);
            const __m256i cnt = popcount64x4(x);
            // cnt > limit per lane -> fail; pass bits are the rest.
            const int fail = _mm256_movemask_pd(_mm256_castsi256_pd(
                _mm256_cmpgt_epi64(cnt, lim)));
            emit(r + 0, (fail & 1) == 0);
            emit(r + 1, (fail & 2) == 0);
            emit(r + 2, (fail & 4) == 0);
            emit(r + 3, (fail & 8) == 0);
        }
    } else if (wpr == 2) {
        const __m256i qv = _mm256_setr_epi64x(
            static_cast<long long>(q[0]), static_cast<long long>(q[1]),
            static_cast<long long>(q[0]), static_cast<long long>(q[1]));
        for (; r + 2 <= rows; r += 2) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    signs + r * 2)),
                qv);
            const __m256i cnt = popcount64x4(x);
            // Fold word pairs: lanes (0+1) and (2+3) are row totals.
            const __m256i folded = _mm256_add_epi64(
                cnt, _mm256_shuffle_epi32(cnt, _MM_SHUFFLE(1, 0, 3, 2)));
            emit(r + 0, _mm256_extract_epi64(folded, 0) <= limit);
            emit(r + 1, _mm256_extract_epi64(folded, 2) <= limit);
        }
    }
    for (; r < rows; ++r)
        emit(r, rowMismatches(q, signs + r * wpr, wpr) <= limit);
}

LS_AVX2 void
avx2Concordance(const uint64_t *q, const uint64_t *signs, size_t wpr,
                size_t rows, int dim, int32_t *out)
{
    size_t r = 0;
    if (wpr == 1) {
        const __m256i qv = _mm256_set1_epi64x(
            static_cast<long long>(q[0]));
        alignas(32) long long cnt4[4];
        for (; r + 4 <= rows; r += 4) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(signs + r)),
                qv);
            _mm256_store_si256(reinterpret_cast<__m256i *>(cnt4),
                               popcount64x4(x));
            for (int j = 0; j < 4; ++j)
                out[r + j] = dim - static_cast<int32_t>(cnt4[j]);
        }
    } else if (wpr == 2) {
        const __m256i qv = _mm256_setr_epi64x(
            static_cast<long long>(q[0]), static_cast<long long>(q[1]),
            static_cast<long long>(q[0]), static_cast<long long>(q[1]));
        alignas(32) long long cnt4[4];
        for (; r + 2 <= rows; r += 2) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    signs + r * 2)),
                qv);
            _mm256_store_si256(reinterpret_cast<__m256i *>(cnt4),
                               popcount64x4(x));
            out[r + 0] =
                dim - static_cast<int32_t>(cnt4[0] + cnt4[1]);
            out[r + 1] =
                dim - static_cast<int32_t>(cnt4[2] + cnt4[3]);
        }
    }
    for (; r < rows; ++r)
        out[r] = dim - rowMismatches(q, signs + r * wpr, wpr);
}

LS_AVX2 size_t
avx2Scan(const uint64_t *q, const uint64_t *signs, size_t wpr,
         size_t rows, int dim, int threshold, uint32_t base,
         uint32_t *out)
{
    // Branchless compaction into the caller's span (contract: capacity
    // >= rows): store every candidate index unconditionally and
    // advance the cursor by the pass bit. At typical ~50% survivor
    // rates the mispredicted per-row branch costs more than the
    // wasted stores.
    uint32_t *dst = out;
    size_t n = 0;

    const long long limit = static_cast<long long>(dim) -
        static_cast<long long>(threshold);
    size_t r = 0;
    if (wpr == 1) {
        const __m256i qv = _mm256_set1_epi64x(
            static_cast<long long>(q[0]));
        const __m256i lim = _mm256_set1_epi64x(limit);
        for (; r + 4 <= rows; r += 4) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(signs + r)),
                qv);
            const __m256i cnt = popcount64x4(x);
            const int pass = ~_mm256_movemask_pd(_mm256_castsi256_pd(
                                 _mm256_cmpgt_epi64(cnt, lim))) &
                0xf;
            dst[n] = base + static_cast<uint32_t>(r);
            n += pass & 1;
            dst[n] = base + static_cast<uint32_t>(r) + 1;
            n += (pass >> 1) & 1;
            dst[n] = base + static_cast<uint32_t>(r) + 2;
            n += (pass >> 2) & 1;
            dst[n] = base + static_cast<uint32_t>(r) + 3;
            n += (pass >> 3) & 1;
        }
    } else if (wpr == 2) {
        const __m256i qv = _mm256_setr_epi64x(
            static_cast<long long>(q[0]), static_cast<long long>(q[1]),
            static_cast<long long>(q[0]), static_cast<long long>(q[1]));
        const __m256i lim = _mm256_set1_epi64x(limit);
        for (; r + 2 <= rows; r += 2) {
            const __m256i x = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    signs + r * 2)),
                qv);
            const __m256i cnt = popcount64x4(x);
            const __m256i folded = _mm256_add_epi64(
                cnt, _mm256_shuffle_epi32(cnt, _MM_SHUFFLE(1, 0, 3, 2)));
            const int fail = _mm256_movemask_pd(_mm256_castsi256_pd(
                _mm256_cmpgt_epi64(folded, lim)));
            dst[n] = base + static_cast<uint32_t>(r);
            n += ~fail & 1;
            dst[n] = base + static_cast<uint32_t>(r) + 1;
            n += (~fail >> 2) & 1;
        }
    }
    for (; r < rows; ++r) {
        dst[n] = base + static_cast<uint32_t>(r);
        n += rowMismatches(q, signs + r * wpr, wpr) <= limit ? 1 : 0;
    }

    return n;
}

LS_AVX2 void
avx2Bitmap(const uint64_t *q, const uint64_t *signs, size_t wpr,
           size_t rows, int dim, int threshold, uint64_t out[2])
{
    out[0] = out[1] = 0;
    forEachRow(q, signs, wpr, rows, dim, threshold,
               [&](size_t r, bool pass) {
                   if (pass)
                       out[r >> 6] |= uint64_t{1} << (r & 63);
               });
}

#define LS_AVX512 \
    __attribute__((target( \
        "avx512f,avx512bw,avx512vl,avx512vpopcntdq,bmi2,popcnt")))

/**
 * AVX-512 VPOPCNTDQ chunk kernels for the multi-query scan: four
 * queries ride in one vector (ymm for one-word rows, zmm for
 * two-word rows), so each row costs one broadcast + xor + vpopcntq +
 * compare for the WHOLE query chunk — the per-(query, row) nibble-LUT
 * popcount sequence the AVX2 path pays simply disappears. Survivor
 * emission stays per-query branchless store-then-advance in ascending
 * row order, so results remain bit-identical to the scalar backend.
 * Only the new multi-query entry points take this path; the
 * single-query kernels keep the plain AVX2 implementation.
 */
LS_AVX512 inline void
avx512ScanMulti4W1(const uint64_t *qs, const uint64_t *signs,
                   size_t rows, long long limit, uint32_t base,
                   uint32_t *out, size_t stride, size_t *counts)
{
    // Four one-word queries in one ymm; pass bits land at 0..3.
    const __m256i qv = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(qs));
    const __m256i lim = _mm256_set1_epi64x(limit);
    uint32_t *dst0 = out, *dst1 = out + stride;
    uint32_t *dst2 = out + 2 * stride, *dst3 = out + 3 * stride;
    size_t n0 = counts[0], n1 = counts[1], n2 = counts[2],
           n3 = counts[3];
    for (size_t r = 0; r < rows; ++r) {
        const __m256i rowv = _mm256_set1_epi64x(
            static_cast<long long>(signs[r]));
        const __m256i cnt =
            _mm256_popcnt_epi64(_mm256_xor_si256(qv, rowv));
        const unsigned pass =
            ~_mm256_cmpgt_epi64_mask(cnt, lim) & 0xfu;
        const uint32_t idx = base + static_cast<uint32_t>(r);
        dst0[n0] = idx;
        n0 += pass & 1;
        dst1[n1] = idx;
        n1 += (pass >> 1) & 1;
        dst2[n2] = idx;
        n2 += (pass >> 2) & 1;
        dst3[n3] = idx;
        n3 += (pass >> 3) & 1;
    }
    counts[0] = n0;
    counts[1] = n1;
    counts[2] = n2;
    counts[3] = n3;
}

/** One row of the d <= 128 layout against four queries: pass bits
 *  land at 0, 2, 4, 6 (the even lanes after the 64-bit pair fold).
 *  The maskz intrinsic forms are deliberate: the plain GCC
 *  broadcast/shuffle wrappers route through an undefined passthrough
 *  operand and trip -Wmaybe-uninitialized under -Werror. */
LS_AVX512 inline unsigned
avx512RowPass4W2(__m512i qv, __m512i lim, const uint64_t *row)
{
    const __m512i rowv = _mm512_maskz_broadcast_i32x4(
        static_cast<__mmask16>(-1),
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(row)));
    const __m512i cnt = _mm512_popcnt_epi64(_mm512_xor_si512(qv, rowv));
    const __m512i folded = _mm512_add_epi64(
        cnt, _mm512_maskz_shuffle_epi32(static_cast<__mmask16>(-1), cnt,
                                        _MM_PERM_BADC));
    return ~_mm512_cmpgt_epi64_mask(folded, lim) & 0xffu;
}

LS_AVX512 inline void
avx512ScanMulti4W2(const uint64_t *qs, const uint64_t *signs,
                   size_t rows, long long limit, uint32_t base,
                   uint32_t *out, size_t stride, size_t *counts)
{
    // Four two-word queries in one zmm. Survivor emission works on
    // 8-row blocks: each row contributes one byte of pass bits to a
    // 64-bit accumulator, PEXT peels query q's column out as an 8-bit
    // mask, and VPCOMPRESSD stores that query's surviving indices in
    // ascending row order — ~5 ops per (query, block) instead of the
    // store-then-advance sequence per (query, row).
    const __m512i qv = _mm512_loadu_si512(qs);
    const __m512i lim = _mm512_set1_epi64(limit);
    const uint64_t column = 0x0101010101010101ULL;
    uint32_t *dst[4] = {out, out + stride, out + 2 * stride,
                        out + 3 * stride};
    size_t n[4] = {counts[0], counts[1], counts[2], counts[3]};
    const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    size_t r = 0;
    for (; r + 8 <= rows; r += 8) {
        uint64_t acc = 0;
        for (size_t j = 0; j < 8; ++j)
            acc |= static_cast<uint64_t>(
                       avx512RowPass4W2(qv, lim, signs + (r + j) * 2))
                << (8 * j);
        const __m256i idxv = _mm256_add_epi32(
            _mm256_set1_epi32(
                static_cast<int>(base + static_cast<uint32_t>(r))),
            lane);
        for (int q = 0; q < 4; ++q) {
            const __mmask8 m = static_cast<__mmask8>(
                _pext_u64(acc, column << (2 * q)));
            _mm256_mask_compressstoreu_epi32(dst[q] + n[q], m, idxv);
            n[q] += static_cast<unsigned>(__builtin_popcount(m));
        }
    }
    for (; r < rows; ++r) {
        const unsigned pass =
            avx512RowPass4W2(qv, lim, signs + r * 2);
        const uint32_t idx = base + static_cast<uint32_t>(r);
        for (int q = 0; q < 4; ++q) {
            dst[q][n[q]] = idx;
            n[q] += (pass >> (2 * q)) & 1;
        }
    }
    counts[0] = n[0];
    counts[1] = n[1];
    counts[2] = n[2];
    counts[3] = n[3];
}

bool
cpuHasAvx512Popcnt()
{
    return __builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512vpopcntdq") &&
        __builtin_cpu_supports("bmi2");
}

bool
avx512PopcntAvailable()
{
    static const bool supported = cpuHasAvx512Popcnt();
    return supported;
}

/**
 * Multi-query scan, AVX2 body: the outer loop loads each packed
 * sign-row vector ONCE and the inner loop runs it through every
 * query's XOR-popcount test, compacting survivors branchlessly into
 * per-query cursors — one pass over the sign stream instead of
 * num_queries passes.
 */
LS_AVX2 void
avx2ScanMultiImpl(const uint64_t *qs, size_t num_queries,
                  const uint64_t *signs, size_t wpr, size_t rows,
                  int dim, int threshold, uint32_t base, uint32_t *out,
                  size_t stride, size_t *counts)
{
    const long long limit = static_cast<long long>(dim) -
        static_cast<long long>(threshold);
    size_t r = 0;
    if (wpr == 1) {
        const __m256i lim = _mm256_set1_epi64x(limit);
        for (; r + 4 <= rows; r += 4) {
            const __m256i rowv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(signs + r));
            for (size_t q = 0; q < num_queries; ++q) {
                const __m256i x = _mm256_xor_si256(
                    rowv,
                    _mm256_set1_epi64x(static_cast<long long>(qs[q])));
                const __m256i cnt = popcount64x4(x);
                const int pass =
                    ~_mm256_movemask_pd(_mm256_castsi256_pd(
                        _mm256_cmpgt_epi64(cnt, lim))) &
                    0xf;
                uint32_t *dst = out + q * stride;
                size_t n = counts[q];
                dst[n] = base + static_cast<uint32_t>(r);
                n += pass & 1;
                dst[n] = base + static_cast<uint32_t>(r) + 1;
                n += (pass >> 1) & 1;
                dst[n] = base + static_cast<uint32_t>(r) + 2;
                n += (pass >> 2) & 1;
                dst[n] = base + static_cast<uint32_t>(r) + 3;
                n += (pass >> 3) & 1;
                counts[q] = n;
            }
        }
    } else if (wpr == 2) {
        const __m256i lim = _mm256_set1_epi64x(limit);
        for (; r + 2 <= rows; r += 2) {
            const __m256i rowv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(signs + r * 2));
            for (size_t q = 0; q < num_queries; ++q) {
                const __m256i qv = _mm256_setr_epi64x(
                    static_cast<long long>(qs[q * 2]),
                    static_cast<long long>(qs[q * 2 + 1]),
                    static_cast<long long>(qs[q * 2]),
                    static_cast<long long>(qs[q * 2 + 1]));
                const __m256i cnt =
                    popcount64x4(_mm256_xor_si256(rowv, qv));
                const __m256i folded = _mm256_add_epi64(
                    cnt,
                    _mm256_shuffle_epi32(cnt, _MM_SHUFFLE(1, 0, 3, 2)));
                const int fail = _mm256_movemask_pd(_mm256_castsi256_pd(
                    _mm256_cmpgt_epi64(folded, lim)));
                uint32_t *dst = out + q * stride;
                size_t n = counts[q];
                dst[n] = base + static_cast<uint32_t>(r);
                n += ~fail & 1;
                dst[n] = base + static_cast<uint32_t>(r) + 1;
                n += (~fail >> 2) & 1;
                counts[q] = n;
            }
        }
    }
    for (; r < rows; ++r) {
        const uint64_t *row = signs + r * wpr;
        for (size_t q = 0; q < num_queries; ++q) {
            uint32_t *dst = out + q * stride;
            size_t n = counts[q];
            dst[n] = base + static_cast<uint32_t>(r);
            n += rowMismatches(qs + q * wpr, row, wpr) <= limit ? 1 : 0;
            counts[q] = n;
        }
    }
}

/**
 * Multi-query scan entry: peel 4-query chunks onto the AVX-512
 * VPOPCNTDQ kernels when the host has them, leaving any remainder
 * (and any other row width) to the AVX2 body. Queries are
 * independent, so splitting the set across kernels preserves each
 * query's survivor list exactly.
 */
LS_AVX2 void
avx2ScanMulti(const uint64_t *qs, size_t num_queries,
              const uint64_t *signs, size_t wpr, size_t rows, int dim,
              int threshold, uint32_t base, uint32_t *out, size_t stride,
              size_t *counts)
{
    size_t q0 = 0;
    if ((wpr == 1 || wpr == 2) && avx512PopcntAvailable()) {
        const long long limit = static_cast<long long>(dim) -
            static_cast<long long>(threshold);
        for (; q0 + 4 <= num_queries; q0 += 4) {
            if (wpr == 1)
                avx512ScanMulti4W1(qs + q0, signs, rows, limit, base,
                                   out + q0 * stride, stride,
                                   counts + q0);
            else
                avx512ScanMulti4W2(qs + q0 * 2, signs, rows, limit,
                                   base, out + q0 * stride, stride,
                                   counts + q0);
        }
    }
    if (q0 < num_queries)
        avx2ScanMultiImpl(qs + q0 * wpr, num_queries - q0, signs, wpr,
                          rows, dim, threshold, base, out + q0 * stride,
                          stride, counts + q0);
}

LS_AVX2 void
avx2BitmapMulti(const uint64_t *qs, size_t num_queries,
                const uint64_t *signs, size_t wpr, size_t rows, int dim,
                int threshold, uint64_t *out)
{
    for (size_t i = 0; i < 2 * num_queries; ++i)
        out[i] = 0;
    const long long limit = static_cast<long long>(dim) -
        static_cast<long long>(threshold);
    size_t r = 0;
    if (wpr == 1) {
        const __m256i lim = _mm256_set1_epi64x(limit);
        for (; r + 4 <= rows; r += 4) {
            const __m256i rowv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(signs + r));
            for (size_t q = 0; q < num_queries; ++q) {
                const __m256i x = _mm256_xor_si256(
                    rowv,
                    _mm256_set1_epi64x(static_cast<long long>(qs[q])));
                const int pass =
                    ~_mm256_movemask_pd(_mm256_castsi256_pd(
                        _mm256_cmpgt_epi64(popcount64x4(x), lim))) &
                    0xf;
                // r is a multiple of 4, so all 4 bits land in one word.
                out[q * 2 + (r >> 6)] |= static_cast<uint64_t>(pass)
                    << (r & 63);
            }
        }
    } else if (wpr == 2) {
        const __m256i lim = _mm256_set1_epi64x(limit);
        for (; r + 2 <= rows; r += 2) {
            const __m256i rowv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(signs + r * 2));
            for (size_t q = 0; q < num_queries; ++q) {
                const __m256i qv = _mm256_setr_epi64x(
                    static_cast<long long>(qs[q * 2]),
                    static_cast<long long>(qs[q * 2 + 1]),
                    static_cast<long long>(qs[q * 2]),
                    static_cast<long long>(qs[q * 2 + 1]));
                const __m256i cnt =
                    popcount64x4(_mm256_xor_si256(rowv, qv));
                const __m256i folded = _mm256_add_epi64(
                    cnt,
                    _mm256_shuffle_epi32(cnt, _MM_SHUFFLE(1, 0, 3, 2)));
                const int fail = _mm256_movemask_pd(_mm256_castsi256_pd(
                    _mm256_cmpgt_epi64(folded, lim)));
                const uint64_t pass =
                    (~fail & 1) | ((~fail >> 1) & 2);
                out[q * 2 + (r >> 6)] |= pass << (r & 63);
            }
        }
    }
    for (; r < rows; ++r) {
        const uint64_t *row = signs + r * wpr;
        const uint64_t bit = uint64_t{1} << (r & 63);
        for (size_t q = 0; q < num_queries; ++q) {
            if (rowMismatches(qs + q * wpr, row, wpr) <= limit)
                out[q * 2 + (r >> 6)] |= bit;
        }
    }
}

/** Transposed 4-key dot block; each lane's accumulation order is the
 *  scalar ascending-dimension order (mul then add, no FMA). */
LS_AVX2 inline void
dot4Keys(const float *q, const float *k0, const float *k1,
         const float *k2, const float *k3, size_t dim, float scale,
         float *out0, float *out1, float *out2, float *out3)
{
    __m256d acc = _mm256_setzero_pd();
    size_t i = 0;
    for (; i + 4 <= dim; i += 4) {
        const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(k0 + i));
        const __m256d a1 = _mm256_cvtps_pd(_mm_loadu_ps(k1 + i));
        const __m256d a2 = _mm256_cvtps_pd(_mm_loadu_ps(k2 + i));
        const __m256d a3 = _mm256_cvtps_pd(_mm_loadu_ps(k3 + i));
        const __m256d t0 = _mm256_unpacklo_pd(a0, a1);
        const __m256d t1 = _mm256_unpackhi_pd(a0, a1);
        const __m256d t2 = _mm256_unpacklo_pd(a2, a3);
        const __m256d t3 = _mm256_unpackhi_pd(a2, a3);
        const __m256d d0 = _mm256_permute2f128_pd(t0, t2, 0x20);
        const __m256d d1 = _mm256_permute2f128_pd(t1, t3, 0x20);
        const __m256d d2 = _mm256_permute2f128_pd(t0, t2, 0x31);
        const __m256d d3 = _mm256_permute2f128_pd(t1, t3, 0x31);
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(
                     _mm256_set1_pd(static_cast<double>(q[i + 0])), d0));
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(
                     _mm256_set1_pd(static_cast<double>(q[i + 1])), d1));
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(
                     _mm256_set1_pd(static_cast<double>(q[i + 2])), d2));
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(
                     _mm256_set1_pd(static_cast<double>(q[i + 3])), d3));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    for (; i < dim; ++i) {
        const double qd = static_cast<double>(q[i]);
        lanes[0] += qd * static_cast<double>(k0[i]);
        lanes[1] += qd * static_cast<double>(k1[i]);
        lanes[2] += qd * static_cast<double>(k2[i]);
        lanes[3] += qd * static_cast<double>(k3[i]);
    }
    *out0 = static_cast<float>(lanes[0]) * scale;
    *out1 = static_cast<float>(lanes[1]) * scale;
    *out2 = static_cast<float>(lanes[2]) * scale;
    *out3 = static_cast<float>(lanes[3]) * scale;
}

LS_AVX2 inline float
dot1Key(const float *q, const float *k, size_t dim, float scale)
{
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i)
        acc += static_cast<double>(q[i]) * static_cast<double>(k[i]);
    return static_cast<float>(acc) * scale;
}

LS_AVX2 void
avx2DotAt(const float *q, const float *keys, size_t stride, size_t dim,
          const uint32_t *idx, size_t first, size_t count, float scale,
          float *out)
{
    size_t j = 0;
    for (; j + 4 <= count; j += 4) {
        const float *k0 =
            keys + (idx ? idx[j + 0] : first + j + 0) * stride;
        const float *k1 =
            keys + (idx ? idx[j + 1] : first + j + 1) * stride;
        const float *k2 =
            keys + (idx ? idx[j + 2] : first + j + 2) * stride;
        const float *k3 =
            keys + (idx ? idx[j + 3] : first + j + 3) * stride;
        dot4Keys(q, k0, k1, k2, k3, dim, scale, out + j, out + j + 1,
                 out + j + 2, out + j + 3);
    }
    for (; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        out[j] = dot1Key(q, keys + row * stride, dim, scale);
    }
}

LS_AVX2 void
avx2QuantDotAt(const float *q, const int8_t *keys, const float *scales,
               size_t stride, size_t dim, const uint32_t *idx,
               size_t first, size_t count, float post_scale, float *out)
{
    // Deliberately the scalar double-accumulation loop: the
    // dotQuantized contract pins ascending-order double accumulation
    // per row, and at head dims 64/128 the int8->double widening
    // sequence AVX2 would need (cvtepi8_epi32 + cvtepi32_pd per
    // quarter-vector) buys nothing over the compiler's scalar
    // pipeline — mirroring neonDotAt's reasoning. The INT8 win on
    // this backend is int8DotAt below, where integer math permits
    // real vectorization.
    for (size_t j = 0; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        const int8_t *k = keys + row * stride;
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i)
            acc += static_cast<double>(k[i]) * q[i];
        out[j] = static_cast<float>(acc * scales[row]) * post_scale;
    }
}

#define LS_AVXVNNI \
    __attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni")))

/**
 * AVX-512 VNNI int8 dot: vpdpbusd takes UNSIGNED x SIGNED bytes, so
 * the signed query is carried as |q| (vpabsb) and the key's sign is
 * folded in with a masked byte negate (sign(q) applied to k) — the
 * same abs/sign factoring as the AVX2 maddubs path below, but with
 * the multiply-accumulate collapsing to one instruction per 64
 * elements. Exact integer math, so bit-identity is free.
 */
LS_AVXVNNI inline int32_t
int8Dot1Vnni(const int8_t *q, const int8_t *k, size_t dim)
{
    __m512i acc = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 64 <= dim; i += 64) {
        const __m512i qv = _mm512_loadu_si512(q + i);
        const __m512i kv = _mm512_loadu_si512(k + i);
        const __m512i ua = _mm512_abs_epi8(qv);
        const __mmask64 neg = _mm512_movepi8_mask(qv);
        const __m512i sb =
            _mm512_mask_sub_epi8(kv, neg, _mm512_setzero_si512(), kv);
        acc = _mm512_dpbusd_epi32(acc, ua, sb);
    }
    int32_t sum = _mm512_reduce_add_epi32(acc);
    for (; i < dim; ++i)
        sum += static_cast<int32_t>(q[i]) * static_cast<int32_t>(k[i]);
    return sum;
}

LS_AVXVNNI void
vnniInt8DotAt(const int8_t *q, const int8_t *keys, size_t stride,
              size_t dim, const uint32_t *idx, size_t first,
              size_t count, int32_t *out)
{
    for (size_t j = 0; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        out[j] = int8Dot1Vnni(q, keys + row * stride, dim);
    }
}

bool
cpuHasAvxVnni()
{
    return __builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512vnni");
}

bool
avxVnniAvailable()
{
    static const bool supported = cpuHasAvxVnni();
    return supported;
}

/** One int8 x int8 row dot via vpmaddubsw: |q| (unsigned) times
 *  sign(q)-adjusted k (signed) multiplies to q*k per element; the
 *  pairwise i16 sums peak at 2 * 127 * 127 = 32258 < 32767, so the
 *  saturating madd never saturates, and vpmaddwd widens to exact
 *  int32 lanes. */
LS_AVX2 inline int32_t
int8Dot1(const int8_t *q, const int8_t *k, size_t dim)
{
    __m256i acc = _mm256_setzero_si256();
    const __m256i ones = _mm256_set1_epi16(1);
    size_t i = 0;
    for (; i + 32 <= dim; i += 32) {
        const __m256i qv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(q + i));
        const __m256i kv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(k + i));
        const __m256i ua = _mm256_abs_epi8(qv);
        const __m256i sb = _mm256_sign_epi8(kv, qv);
        const __m256i p16 = _mm256_maddubs_epi16(ua, sb);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(p16, ones));
    }
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    int32_t sum = _mm_cvtsi128_si32(s);
    for (; i < dim; ++i)
        sum += static_cast<int32_t>(q[i]) * static_cast<int32_t>(k[i]);
    return sum;
}

LS_AVX2 void
avx2Int8DotAt(const int8_t *q, const int8_t *keys, size_t stride,
              size_t dim, const uint32_t *idx, size_t first,
              size_t count, int32_t *out)
{
    // The VNNI kernel needs >= 64-element rows to beat maddubs;
    // splitting by dim (not per call site) keeps the decision
    // data-independent. Both paths are exact, so the choice cannot
    // change a result.
    if (dim >= 64 && avxVnniAvailable()) {
        vnniInt8DotAt(q, keys, stride, dim, idx, first, count, out);
        return;
    }
    for (size_t j = 0; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        out[j] = int8Dot1(q, keys + row * stride, dim);
    }
}

LS_AVX2 void
avx2SignReduce(const uint64_t *signs, size_t wpr, size_t rows,
               uint64_t *out)
{
    // Carry-save majority vote, vectorized across four word columns:
    // bit-sliced binary counter planes accumulate every row with a
    // ripple-carry add, then each of the 256 bit positions is compared
    // against (rows + 1) / 2 MSB-plane-first. Counts never exceed
    // `rows`, so bit_width(rows) planes absorb every carry.
    const size_t planes_n = std::bit_width(rows);
    const uint64_t t = (rows + 1) / 2;
    size_t w = 0;
    for (; w + 4 <= wpr; w += 4) {
        __m256i planes[64];
        for (size_t k = 0; k < planes_n; ++k)
            planes[k] = _mm256_setzero_si256();
        for (size_t r = 0; r < rows; ++r) {
            __m256i carry = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(signs + r * wpr + w));
            for (size_t k = 0; k < planes_n; ++k) {
                const __m256i sum = _mm256_xor_si256(planes[k], carry);
                carry = _mm256_and_si256(planes[k], carry);
                planes[k] = sum;
            }
        }
        __m256i ge = _mm256_setzero_si256();
        __m256i eq = _mm256_set1_epi64x(-1);
        for (size_t k = planes_n; k-- > 0;) {
            if ((t >> k) & 1) {
                eq = _mm256_and_si256(eq, planes[k]);
            } else {
                ge = _mm256_or_si256(ge,
                                     _mm256_and_si256(eq, planes[k]));
                eq = _mm256_andnot_si256(planes[k], eq);
            }
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + w),
                            _mm256_or_si256(ge, eq));
    }
    for (; w < wpr; ++w)
        out[w] = signReduceColumnCsa(signs, wpr, rows, w);
}

const KernelOps kAvx2Ops = {avx2Concordance, avx2Scan, avx2Bitmap,
                            avx2DotAt, avx2ScanMulti, avx2BitmapMulti,
                            avx2SignReduce, avx2QuantDotAt,
                            avx2Int8DotAt};

bool
cpuHasAvx2()
{
    return __builtin_cpu_supports("avx2") &&
        __builtin_cpu_supports("popcnt");
}

} // namespace

const KernelOps *
avx2KernelOps()
{
    static const bool supported = cpuHasAvx2();
    return supported ? &kAvx2Ops : nullptr;
}

} // namespace detail
} // namespace longsight

#else // !x86

namespace longsight {
namespace detail {

const KernelOps *
avx2KernelOps()
{
    return nullptr;
}

} // namespace detail
} // namespace longsight

#endif

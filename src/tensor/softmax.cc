#include "tensor/softmax.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace longsight {

void
softmaxInPlace(std::vector<float> &scores)
{
    softmaxInPlace(scores.data(), scores.size());
}

void
softmaxInPlace(float *scores, size_t n)
{
    if (n == 0)
        return;
    float mx = -std::numeric_limits<float>::infinity();
    for (size_t i = 0; i < n; ++i)
        mx = std::max(mx, scores[i]);
    double denom = 0.0;
    for (size_t i = 0; i < n; ++i) {
        scores[i] = std::exp(scores[i] - mx);
        denom += scores[i];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (size_t i = 0; i < n; ++i)
        scores[i] *= inv;
}

std::vector<float>
softmax(const std::vector<float> &scores)
{
    std::vector<float> out = scores;
    softmaxInPlace(out);
    return out;
}

double
softmaxParts(const std::vector<float> &scores, float global_max,
             std::vector<float> &out)
{
    out.resize(scores.size());
    double denom = 0.0;
    for (size_t i = 0; i < scores.size(); ++i) {
        out[i] = std::exp(scores[i] - global_max);
        denom += out[i];
    }
    return denom;
}

float
maxScore(const std::vector<float> &scores)
{
    float mx = -std::numeric_limits<float>::infinity();
    for (float s : scores)
        mx = std::max(mx, s);
    return mx;
}

} // namespace longsight

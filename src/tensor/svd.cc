#include "tensor/svd.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/linalg.hh"
#include "util/logging.hh"

namespace longsight {

SvdResult
svd(const Matrix &a, int max_sweeps)
{
    const size_t m = a.rows();
    const size_t n = a.cols();
    LS_ASSERT(m >= n, "svd requires rows >= cols, got ", m, "x", n);

    // Work on a column-major copy of A in double precision; one-sided
    // Jacobi orthogonalizes the columns of U while accumulating V.
    std::vector<std::vector<double>> u(n, std::vector<double>(m));
    for (size_t j = 0; j < n; ++j)
        for (size_t i = 0; i < m; ++i)
            u[j][i] = a(i, j);

    std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
    for (size_t j = 0; j < n; ++j)
        v[j][j] = 1.0;

    const double eps = 1e-12;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        bool rotated = false;
        for (size_t p = 0; p + 1 < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                double alpha = 0.0, beta = 0.0, gamma = 0.0;
                for (size_t i = 0; i < m; ++i) {
                    alpha += u[p][i] * u[p][i];
                    beta += u[q][i] * u[q][i];
                    gamma += u[p][i] * u[q][i];
                }
                if (std::abs(gamma) <= eps * std::sqrt(alpha * beta))
                    continue;
                rotated = true;
                const double zeta = (beta - alpha) / (2.0 * gamma);
                const double t = (zeta >= 0 ? 1.0 : -1.0) /
                    (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
                const double c = 1.0 / std::sqrt(1.0 + t * t);
                const double s = c * t;
                for (size_t i = 0; i < m; ++i) {
                    const double up = u[p][i];
                    u[p][i] = c * up - s * u[q][i];
                    u[q][i] = s * up + c * u[q][i];
                }
                for (size_t i = 0; i < n; ++i) {
                    const double vp = v[p][i];
                    v[p][i] = c * vp - s * v[q][i];
                    v[q][i] = s * vp + c * v[q][i];
                }
            }
        }
        if (!rotated)
            break;
    }

    // Extract singular values and normalize columns of U.
    std::vector<double> sv(n);
    for (size_t j = 0; j < n; ++j) {
        double nrm = 0.0;
        for (size_t i = 0; i < m; ++i)
            nrm += u[j][i] * u[j][i];
        sv[j] = std::sqrt(nrm);
        // Zero singular values leave the (arbitrary) column direction;
        // keep it unnormalized-zero which downstream code tolerates.
        if (sv[j] > 0) {
            for (size_t i = 0; i < m; ++i)
                u[j][i] /= sv[j];
        }
    }

    // Sort descending by singular value.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(),
              [&](size_t x, size_t y) { return sv[x] > sv[y]; });

    SvdResult out;
    out.u.resize(m, n);
    out.v.resize(n, n);
    out.s.resize(n);
    for (size_t j = 0; j < n; ++j) {
        const size_t src = order[j];
        out.s[j] = static_cast<float>(sv[src]);
        for (size_t i = 0; i < m; ++i)
            out.u(i, j) = static_cast<float>(u[src][i]);
        for (size_t i = 0; i < n; ++i)
            out.v(i, j) = static_cast<float>(v[src][i]);
    }
    return out;
}

Matrix
procrustesRotation(const Matrix &a, const Matrix &b)
{
    LS_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
              "procrustes shape mismatch");
    // C = b^T a (n x n); svd(C) = U S V^T; R = U V^T minimizes
    // ||a - b R^T|| — equivalently we return R with columns arranged so
    // that b R approximates a.
    const Matrix c = matmul(transpose(b), a);
    SvdResult f = svd(c);
    return matmul(f.u, transpose(f.v));
}

} // namespace longsight

#include "tensor/signbits.hh"

#include <bit>

#include "util/logging.hh"

namespace longsight {

SignBits::SignBits(const float *v, size_t dim)
    : dim_(dim), words_((dim + 63) / 64, 0)
{
    for (size_t i = 0; i < dim; ++i) {
        if (v[i] >= 0.0f)
            words_[i >> 6] |= uint64_t{1} << (i & 63);
    }
}

bool
SignBits::bit(size_t i) const
{
    LS_ASSERT(i < dim_, "sign bit index ", i, " out of range ", dim_);
    return (words_[i >> 6] >> (i & 63)) & 1;
}

int
SignBits::concordance(const SignBits &other) const
{
    LS_ASSERT(dim_ == other.dim_, "sign concordance dim mismatch: ",
              dim_, " vs ", other.dim_);
    int mismatches = 0;
    for (size_t w = 0; w < words_.size(); ++w)
        mismatches += std::popcount(words_[w] ^ other.words_[w]);
    return static_cast<int>(dim_) - mismatches;
}

std::vector<SignBits>
packSignRows(const float *data, size_t count, size_t dim)
{
    std::vector<SignBits> out;
    out.reserve(count);
    for (size_t r = 0; r < count; ++r)
        out.emplace_back(data + r * dim, dim);
    return out;
}

} // namespace longsight

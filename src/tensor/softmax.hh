/**
 * @file
 * Numerically stable softmax helpers for attention-score vectors.
 */

#ifndef LONGSIGHT_TENSOR_SOFTMAX_HH
#define LONGSIGHT_TENSOR_SOFTMAX_HH

#include <cstddef>
#include <vector>

namespace longsight {

/** In-place stable softmax over the whole vector. */
void softmaxInPlace(std::vector<float> &scores);

/** In-place stable softmax over a raw span (scratch-memory flavour). */
void softmaxInPlace(float *scores, size_t n);

/** Stable softmax copy. */
std::vector<float> softmax(const std::vector<float> &scores);

/**
 * Softmax numerator/denominator in "online" form: returns
 * sum_i exp(scores[i] - max) and writes exp(scores[i] - max) into out.
 * Used when dense-window and sparse partial results are combined — the
 * two partial sums share one global max for stability.
 */
double softmaxParts(const std::vector<float> &scores, float global_max,
                    std::vector<float> &out);

/** Max element, -inf for empty input. */
float maxScore(const std::vector<float> &scores);

} // namespace longsight

#endif // LONGSIGHT_TENSOR_SOFTMAX_HH

/**
 * @file
 * Packed one-bit sign quantization of float vectors — the data type
 * Sign-Concordance Filtering operates on. A SignBits value stores one
 * bit per dimension (1 = non-negative); concordance between two vectors
 * is D minus the popcount of their XOR, exactly the quantity DReX's PIM
 * Filtering Units compute in hardware.
 */

#ifndef LONGSIGHT_TENSOR_SIGNBITS_HH
#define LONGSIGHT_TENSOR_SIGNBITS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace longsight {

/**
 * Sign-bit quantization of a float vector.
 */
class SignBits
{
  public:
    SignBits() = default;

    /** Quantize: bit i set iff v[i] >= 0. */
    SignBits(const float *v, size_t dim);

    size_t dim() const { return dim_; }

    /** Bit i as a bool. */
    bool bit(size_t i) const;

    /** Raw packed words (64 bits each, little-endian bit order). */
    const std::vector<uint64_t> &words() const { return words_; }

    /**
     * Number of dimensions where this and other carry the same sign.
     * Both must have the same dimension.
     */
    int concordance(const SignBits &other) const;

    bool operator==(const SignBits &other) const = default;

  private:
    size_t dim_ = 0;
    std::vector<uint64_t> words_;
};

/**
 * Sign-quantize every row of a (count x dim) float array.
 */
std::vector<SignBits> packSignRows(const float *data, size_t count,
                                   size_t dim);

} // namespace longsight

#endif // LONGSIGHT_TENSOR_SIGNBITS_HH

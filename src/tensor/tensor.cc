#include "tensor/tensor.hh"

#include <cstring>

#include "util/logging.hh"

namespace longsight {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    LS_ASSERT(data_.size() == rows_ * cols_,
              "matrix data size ", data_.size(), " != ", rows_ * cols_);
}

std::vector<float>
Matrix::rowVec(size_t r) const
{
    LS_ASSERT(r < rows_, "row ", r, " out of range ", rows_);
    return std::vector<float>(row(r), row(r) + cols_);
}

void
Matrix::setRow(size_t r, const float *src)
{
    LS_ASSERT(r < rows_, "row ", r, " out of range ", rows_);
    std::memcpy(row(r), src, cols_ * sizeof(float));
}

void
Matrix::resize(size_t rows, size_t cols)
{
    rows_ = rows;
    cols_ = cols;
    // LS_LINT_ALLOW(alloc): capacity persists across same-shape resizes
    data_.assign(rows * cols, 0.0f);
}

void
Matrix::appendRow(const float *src)
{
    LS_ASSERT(cols_ > 0, "appendRow on a matrix with no column count");
    // LS_LINT_ALLOW(alloc): amortized append; geometric growth
    data_.insert(data_.end(), src, src + cols_);
    ++rows_;
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m(i, i) = 1.0f;
    return m;
}

} // namespace longsight

#include "tensor/linalg.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace longsight {

float
dot(const float *a, const float *b, size_t n)
{
    // Accumulate in double: attention scores feed a softmax whose
    // exactness tests compare the hardware and software paths.
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return static_cast<float>(acc);
}

float
norm2(const float *a, size_t n)
{
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    return static_cast<float>(std::sqrt(acc));
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    LS_ASSERT(a.cols() == b.rows(), "matmul shape mismatch: ",
              a.rows(), "x", a.cols(), " * ", b.rows(), "x", b.cols());
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            const float aik = arow[k];
            if (aik == 0.0f)
                continue;
            const float *brow = b.row(k);
            for (size_t j = 0; j < b.cols(); ++j)
                crow[j] += aik * brow[j];
        }
    }
    return c;
}

Matrix
matmulBt(const Matrix &a, const Matrix &b)
{
    LS_ASSERT(a.cols() == b.cols(), "matmulBt inner-dim mismatch: ",
              a.cols(), " vs ", b.cols());
    Matrix c(a.rows(), b.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < b.rows(); ++j)
            c(i, j) = dot(a.row(i), b.row(j), a.cols());
    return c;
}

std::vector<float>
gemv(const Matrix &a, const std::vector<float> &x)
{
    LS_ASSERT(a.cols() == x.size(), "gemv shape mismatch");
    std::vector<float> y(a.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        y[i] = dot(a.row(i), x.data(), a.cols());
    return y;
}

std::vector<float>
gemvT(const Matrix &a, const std::vector<float> &x)
{
    LS_ASSERT(a.rows() == x.size(), "gemvT shape mismatch");
    std::vector<float> y(a.cols());
    gemvT(a, x.data(), y.data());
    return y;
}

void
gemvT(const Matrix &a, const float *x, float *y)
{
    for (size_t j = 0; j < a.cols(); ++j)
        y[j] = 0.0f;
    for (size_t i = 0; i < a.rows(); ++i) {
        const float xi = x[i];
        const float *arow = a.row(i);
        for (size_t j = 0; j < a.cols(); ++j)
            y[j] += xi * arow[j];
    }
}

Matrix
transpose(const Matrix &a)
{
    Matrix t(a.cols(), a.rows());
    for (size_t i = 0; i < a.rows(); ++i)
        for (size_t j = 0; j < a.cols(); ++j)
            t(j, i) = a(i, j);
    return t;
}

float
frobeniusDiff(const Matrix &a, const Matrix &b)
{
    LS_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
              "frobeniusDiff shape mismatch");
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a.data()[i]) - b.data()[i];
        acc += d * d;
    }
    return static_cast<float>(std::sqrt(acc));
}

float
maxAbsDiff(const Matrix &a, const Matrix &b)
{
    LS_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
              "maxAbsDiff shape mismatch");
    float m = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
    return m;
}

Matrix
randomOrthogonal(size_t n, Rng &rng)
{
    Matrix g(n, n, rng.gaussianVec(n * n));
    // Modified Gram-Schmidt over rows.
    for (size_t i = 0; i < n; ++i) {
        float *ri = g.row(i);
        for (size_t j = 0; j < i; ++j) {
            const float *rj = g.row(j);
            const float proj = dot(ri, rj, n);
            for (size_t k = 0; k < n; ++k)
                ri[k] -= proj * rj[k];
        }
        const float nrm = norm2(ri, n);
        LS_ASSERT(nrm > 1e-6f, "rank-deficient Gaussian draw in QR");
        for (size_t k = 0; k < n; ++k)
            ri[k] /= nrm;
    }
    return g;
}

bool
isOrthogonal(const Matrix &q, float tol)
{
    if (q.rows() != q.cols())
        return false;
    const Matrix gram = matmulBt(q, q);
    const Matrix eye = Matrix::identity(q.rows());
    return maxAbsDiff(gram, eye) <= tol;
}

} // namespace longsight

#include "tensor/quantized.hh"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.hh"
#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {

void
quantizeInt8Into(const float *v, size_t n, int8_t *out, float *scale)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(n > 0, "empty vector quantization");
    float max_abs = 0.0f;
    for (size_t i = 0; i < n; ++i)
        max_abs = std::max(max_abs, std::abs(v[i]));

    if (max_abs == 0.0f) {
        *scale = 1.0f;
        for (size_t i = 0; i < n; ++i)
            out[i] = 0;
        return;
    }
    *scale = max_abs / 127.0f;
    const float inv = 127.0f / max_abs;
    for (size_t i = 0; i < n; ++i) {
        const float r = std::round(v[i] * inv);
        out[i] = static_cast<int8_t>(std::clamp(r, -127.0f, 127.0f));
    }
}

QuantizedVector
quantizeInt8(const float *v, size_t n)
{
    LS_ASSERT(n > 0, "empty vector quantization");
    QuantizedVector q;
    // LS_LINT_ALLOW(alloc): per-append row buffer the quantized store keeps
    q.data.resize(n);
    quantizeInt8Into(v, n, q.data.data(), &q.scale);
    return q;
}

std::vector<float>
dequantize(const QuantizedVector &q)
{
    std::vector<float> out(q.data.size());
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<float>(q.data[i]) * q.scale;
    return out;
}

float
dotQuantized(const QuantizedVector &q, const float *b)
{
    return dotQuantized(q.data.data(), q.scale, b, q.data.size());
}

float
dotQuantized(const int8_t *data, float scale, const float *b, size_t n)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    // Routed through the kernel-dispatch layer (the quantDotAt op) so
    // backend selection applies here like everywhere else; the
    // single-row call is the degenerate range [0, 1) with a unit
    // post-scale (x * 1.0f is exact). Every backend reproduces the
    // historical rounding: ascending double accumulation, one double
    // multiply by scale, one cast to float.
    float out = 0.0f;
    batchQuantDotRange(b, data, &scale, n, 0, 1, 1.0f, &out);
    return out;
}

double
quantizationError(const Matrix &rows)
{
    double total = 0.0;
    for (size_t r = 0; r < rows.rows(); ++r) {
        const QuantizedVector q = quantizeInt8(rows.row(r), rows.cols());
        const auto back = dequantize(q);
        double err = 0.0, ref = 0.0;
        for (size_t i = 0; i < back.size(); ++i) {
            const double d =
                static_cast<double>(back[i]) - rows.row(r)[i];
            err += d * d;
            ref += static_cast<double>(rows.row(r)[i]) * rows.row(r)[i];
        }
        total += ref > 0 ? std::sqrt(err / ref) : 0.0;
    }
    return total / static_cast<double>(rows.rows());
}

std::vector<QuantizedVector>
quantizeRows(const Matrix &rows)
{
    std::vector<QuantizedVector> out;
    out.reserve(rows.rows());
    for (size_t r = 0; r < rows.rows(); ++r)
        out.push_back(quantizeInt8(rows.row(r), rows.cols()));
    return out;
}

} // namespace longsight

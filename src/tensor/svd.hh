/**
 * @file
 * One-sided Jacobi singular value decomposition for the small square
 * matrices ITQ's Procrustes step needs (head dimension 64 or 128).
 * Jacobi was chosen over Golub-Kahan because it is simple, numerically
 * robust, and the matrices are tiny relative to the rest of the
 * pipeline, so its O(n^3) sweeps are irrelevant to end-to-end cost.
 */

#ifndef LONGSIGHT_TENSOR_SVD_HH
#define LONGSIGHT_TENSOR_SVD_HH

#include <vector>

#include "tensor/tensor.hh"

namespace longsight {

/** Result of a full SVD: a = u * diag(s) * v^T. */
struct SvdResult
{
    Matrix u;             //!< m x n with orthonormal columns
    std::vector<float> s; //!< n singular values, descending
    Matrix v;             //!< n x n orthogonal
};

/**
 * Compute the thin SVD of an m x n matrix (m >= n) via one-sided
 * Jacobi rotations applied to the columns.
 *
 * @param a input matrix (m >= n required)
 * @param max_sweeps Jacobi sweep cap; convergence is typically < 12
 * @return factors with a ≈ u * diag(s) * v^T
 */
SvdResult svd(const Matrix &a, int max_sweeps = 30);

/**
 * The orthogonal Procrustes solution: the orthogonal matrix R
 * minimizing ||a - b R||_F, namely R = V U^T for svd(b^T a) = U S V^T.
 * Both a and b are m x n; returns an n x n orthogonal matrix.
 */
Matrix procrustesRotation(const Matrix &a, const Matrix &b);

} // namespace longsight

#endif // LONGSIGHT_TENSOR_SVD_HH

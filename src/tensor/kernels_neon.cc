/**
 * @file
 * NEON batch-scan backend (aarch64). Concordance XORs 128 bits of
 * packed signs per op and folds vcntq_u8 byte popcounts with vaddvq;
 * survivor order and counts are bit-identical to the scalar backend.
 * The dot kernel keeps the scalar ascending-dimension double
 * accumulation (NEON's two-lane f64 gives no win at head dims 64/128
 * once the bit-identity contract rules out reassociation), so scores
 * are trivially identical too.
 *
 * The fused batchScoreSelect driver composes this backend's scan and
 * dot ops, so aarch64 gets the fused decode hot path at full feature
 * parity with AVX2 — no scalar-only fallback is involved.
 */

#include "tensor/kernels.hh"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

#include <bit>

namespace longsight {
namespace detail {
namespace {

inline int
rowMismatches(const uint64_t *q, const uint64_t *row, size_t wpr)
{
    int mismatches = 0;
    size_t w = 0;
    for (; w + 2 <= wpr; w += 2) {
        const uint8x16_t x = veorq_u8(
            vreinterpretq_u8_u64(vld1q_u64(row + w)),
            vreinterpretq_u8_u64(vld1q_u64(q + w)));
        mismatches += vaddvq_u8(vcntq_u8(x));
    }
    for (; w < wpr; ++w)
        mismatches += std::popcount(row[w] ^ q[w]);
    return mismatches;
}

void
neonConcordance(const uint64_t *q, const uint64_t *signs, size_t wpr,
                size_t rows, int dim, int32_t *out)
{
    for (size_t r = 0; r < rows; ++r)
        out[r] = dim - rowMismatches(q, signs + r * wpr, wpr);
}

size_t
neonScan(const uint64_t *q, const uint64_t *signs, size_t wpr,
         size_t rows, int dim, int threshold, uint32_t base,
         uint32_t *out)
{
    // Branchless compaction into the caller's span (capacity >= rows),
    // mirroring the AVX2 backend's store-then-advance shape.
    const int limit = dim - threshold;
    size_t n = 0;
    for (size_t r = 0; r < rows; ++r) {
        out[n] = base + static_cast<uint32_t>(r);
        n += rowMismatches(q, signs + r * wpr, wpr) <= limit ? 1 : 0;
    }
    return n;
}

void
neonBitmap(const uint64_t *q, const uint64_t *signs, size_t wpr,
           size_t rows, int dim, int threshold, uint64_t out[2])
{
    out[0] = out[1] = 0;
    const int limit = dim - threshold;
    for (size_t r = 0; r < rows; ++r) {
        if (rowMismatches(q, signs + r * wpr, wpr) <= limit)
            out[r >> 6] |= uint64_t{1} << (r & 63);
    }
}

void
neonDotAt(const float *q, const float *keys, size_t stride, size_t dim,
          const uint32_t *idx, size_t first, size_t count, float scale,
          float *out)
{
    for (size_t j = 0; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        const float *k = keys + row * stride;
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i)
            acc += static_cast<double>(q[i]) * static_cast<double>(k[i]);
        out[j] = static_cast<float>(acc) * scale;
    }
}

void
neonScanMulti(const uint64_t *qs, size_t num_queries,
              const uint64_t *signs, size_t wpr, size_t rows, int dim,
              int threshold, uint32_t base, uint32_t *out, size_t stride,
              size_t *counts)
{
    // Row-outer walk: the 128-bit sign row loads are shared across all
    // queries (one pass over the sign stream); per query the
    // branchless store-then-advance compaction matches neonScan.
    const int limit = dim - threshold;
    for (size_t r = 0; r < rows; ++r) {
        const uint64_t *row = signs + r * wpr;
        for (size_t q = 0; q < num_queries; ++q) {
            uint32_t *dst = out + q * stride;
            size_t n = counts[q];
            dst[n] = base + static_cast<uint32_t>(r);
            n += rowMismatches(qs + q * wpr, row, wpr) <= limit ? 1 : 0;
            counts[q] = n;
        }
    }
}

void
neonBitmapMulti(const uint64_t *qs, size_t num_queries,
                const uint64_t *signs, size_t wpr, size_t rows, int dim,
                int threshold, uint64_t *out)
{
    for (size_t i = 0; i < 2 * num_queries; ++i)
        out[i] = 0;
    const int limit = dim - threshold;
    for (size_t r = 0; r < rows; ++r) {
        const uint64_t *row = signs + r * wpr;
        const uint64_t bit = uint64_t{1} << (r & 63);
        for (size_t q = 0; q < num_queries; ++q) {
            if (rowMismatches(qs + q * wpr, row, wpr) <= limit)
                out[q * 2 + (r >> 6)] |= bit;
        }
    }
}

void
neonSignReduce(const uint64_t *signs, size_t wpr, size_t rows,
               uint64_t *out)
{
    // Carry-save majority vote across two word columns per vector —
    // the same bit-sliced counter-plane scheme as the AVX2 backend
    // (see avx2SignReduce); bit_width(rows) planes absorb every carry
    // because counts never exceed `rows`.
    const size_t planes_n = std::bit_width(rows);
    const uint64_t t = (rows + 1) / 2;
    size_t w = 0;
    for (; w + 2 <= wpr; w += 2) {
        uint64x2_t planes[64];
        for (size_t k = 0; k < planes_n; ++k)
            planes[k] = vdupq_n_u64(0);
        for (size_t r = 0; r < rows; ++r) {
            uint64x2_t carry = vld1q_u64(signs + r * wpr + w);
            for (size_t k = 0; k < planes_n; ++k) {
                const uint64x2_t sum = veorq_u64(planes[k], carry);
                carry = vandq_u64(planes[k], carry);
                planes[k] = sum;
            }
        }
        uint64x2_t ge = vdupq_n_u64(0);
        uint64x2_t eq = vdupq_n_u64(~uint64_t{0});
        for (size_t k = planes_n; k-- > 0;) {
            if ((t >> k) & 1) {
                eq = vandq_u64(eq, planes[k]);
            } else {
                ge = vorrq_u64(ge, vandq_u64(eq, planes[k]));
                eq = vbicq_u64(eq, planes[k]);
            }
        }
        vst1q_u64(out + w, vorrq_u64(ge, eq));
    }
    for (; w < wpr; ++w)
        out[w] = signReduceColumnCsa(signs, wpr, rows, w);
}

void
neonQuantDotAt(const float *q, const int8_t *keys, const float *scales,
               size_t stride, size_t dim, const uint32_t *idx,
               size_t first, size_t count, float post_scale, float *out)
{
    // Scalar ascending double accumulation — the dotQuantized rounding
    // contract; same reasoning as neonDotAt.
    for (size_t j = 0; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        const int8_t *k = keys + row * stride;
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i)
            acc += static_cast<double>(k[i]) * q[i];
        out[j] = static_cast<float>(acc * scales[row]) * post_scale;
    }
}

void
neonInt8DotAt(const int8_t *q, const int8_t *keys, size_t stride,
              size_t dim, const uint32_t *idx, size_t first,
              size_t count, int32_t *out)
{
    // vmull_s8 widens 8 products to i16 (max |p| = 16129, sums of two
    // fit easily), vpadalq_s16 accumulates pairs into i32 lanes.
    // Integer math — exact, so bit-identical to scalar by
    // construction.
    for (size_t j = 0; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        const int8_t *k = keys + row * stride;
        int32x4_t acc = vdupq_n_s32(0);
        size_t i = 0;
        for (; i + 16 <= dim; i += 16) {
            const int8x16_t qv = vld1q_s8(q + i);
            const int8x16_t kv = vld1q_s8(k + i);
            const int16x8_t lo =
                vmull_s8(vget_low_s8(qv), vget_low_s8(kv));
            const int16x8_t hi =
                vmull_s8(vget_high_s8(qv), vget_high_s8(kv));
            acc = vpadalq_s16(acc, lo);
            acc = vpadalq_s16(acc, hi);
        }
        int32_t sum = vaddvq_s32(acc);
        for (; i < dim; ++i)
            sum += static_cast<int32_t>(q[i]) * static_cast<int32_t>(k[i]);
        out[j] = sum;
    }
}

const KernelOps kNeonOps = {neonConcordance, neonScan, neonBitmap,
                            neonDotAt, neonScanMulti, neonBitmapMulti,
                            neonSignReduce, neonQuantDotAt,
                            neonInt8DotAt};

} // namespace

const KernelOps *
neonKernelOps()
{
    return &kNeonOps;
}

} // namespace detail
} // namespace longsight

#else // !aarch64

namespace longsight {
namespace detail {

const KernelOps *
neonKernelOps()
{
    return nullptr;
}

} // namespace detail
} // namespace longsight

#endif

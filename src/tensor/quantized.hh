/**
 * @file
 * Symmetric INT8 row quantization for key vectors. §4 notes that
 * DReX's in-memory filtering "is compatible with any signed data
 * type"; this module provides the complementary *scoring-side*
 * reduction: storing Key Objects as INT8 (one scale per vector)
 * halves the bytes the NMA fetches per survivor, trading a bounded
 * score error — the same lever DynaX pulls with 4/6-bit keys (§3.2).
 */

#ifndef LONGSIGHT_TENSOR_QUANTIZED_HH
#define LONGSIGHT_TENSOR_QUANTIZED_HH

#include <cstdint>
#include <vector>

#include "tensor/tensor.hh"

namespace longsight {

/**
 * An INT8-quantized vector: v[i] ≈ data[i] * scale.
 */
struct QuantizedVector
{
    std::vector<int8_t> data;
    float scale = 1.0f;

    /** Stored bytes (payload + scale). */
    size_t byteSize() const { return data.size() + sizeof(float); }
};

/** Symmetric per-vector quantization (max-abs scaling). */
QuantizedVector quantizeInt8(const float *v, size_t n);

/**
 * quantizeInt8 into caller storage (out: n int8s, scale: one float) —
 * the block-pool append path, which writes into a preallocated INT8
 * arena and cannot afford the QuantizedVector allocation. Bit-identical
 * payload and scale to quantizeInt8.
 */
void quantizeInt8Into(const float *v, size_t n, int8_t *out, float *scale);

/** Dequantized copy (for tests and error analysis). */
std::vector<float> dequantize(const QuantizedVector &q);

/** Mixed dot product: sum_i q[i]*scale * b[i]. */
float dotQuantized(const QuantizedVector &q, const float *b);

/** Raw-span flavour over arena storage; identical accumulation. */
float dotQuantized(const int8_t *data, float scale, const float *b,
                   size_t n);

/** Mean relative L2 error of quantizing each row of a matrix. */
double quantizationError(const Matrix &rows);

/**
 * Quantize every row of a (count x dim) matrix.
 */
std::vector<QuantizedVector> quantizeRows(const Matrix &rows);

} // namespace longsight

#endif // LONGSIGHT_TENSOR_QUANTIZED_HH

#include "tensor/kernels.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {
namespace detail {
namespace {

/** Sequential double-precision dot of one key row (the repo-wide
 *  scoring contract; every backend reproduces this order exactly). */
inline float
dotRowScaled(const float *q, const float *k, size_t dim, float scale)
{
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i)
        acc += static_cast<double>(q[i]) * static_cast<double>(k[i]);
    return static_cast<float>(acc) * scale;
}

inline int
rowConcordance(const uint64_t *q, const uint64_t *row, size_t wpr, int dim)
{
    int mismatches = 0;
    for (size_t w = 0; w < wpr; ++w)
        mismatches += std::popcount(row[w] ^ q[w]);
    return dim - mismatches;
}

void
scalarConcordance(const uint64_t *q, const uint64_t *signs, size_t wpr,
                  size_t rows, int dim, int32_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    for (size_t r = 0; r < rows; ++r)
        out[r] = rowConcordance(q, signs + r * wpr, wpr, dim);
}

size_t
scalarScan(const uint64_t *q, const uint64_t *signs, size_t wpr,
           size_t rows, int dim, int threshold, uint32_t base,
           uint32_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    size_t n = 0;
    for (size_t r = 0; r < rows; ++r) {
        if (rowConcordance(q, signs + r * wpr, wpr, dim) >= threshold)
            out[n++] = base + static_cast<uint32_t>(r);
    }
    return n;
}

void
scalarBitmap(const uint64_t *q, const uint64_t *signs, size_t wpr,
             size_t rows, int dim, int threshold, uint64_t out[2])
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    out[0] = out[1] = 0;
    for (size_t r = 0; r < rows; ++r) {
        if (rowConcordance(q, signs + r * wpr, wpr, dim) >= threshold)
            out[r >> 6] |= uint64_t{1} << (r & 63);
    }
}

void
scalarDotAt(const float *q, const float *keys, size_t stride, size_t dim,
            const uint32_t *idx, size_t first, size_t count, float scale,
            float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    for (size_t j = 0; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        out[j] = dotRowScaled(q, keys + row * stride, dim, scale);
    }
}

void
scalarScanMulti(const uint64_t *qs, size_t num_queries,
                const uint64_t *signs, size_t wpr, size_t rows, int dim,
                int threshold, uint32_t base, uint32_t *out, size_t stride,
                size_t *counts)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    // Row-major walk: each sign row is read once and tested against
    // every query while it is hot. Per query the emission order is
    // ascending rows — exactly scalarScan's.
    for (size_t r = 0; r < rows; ++r) {
        const uint64_t *row = signs + r * wpr;
        for (size_t q = 0; q < num_queries; ++q) {
            if (rowConcordance(qs + q * wpr, row, wpr, dim) >= threshold)
                out[q * stride + counts[q]++] =
                    base + static_cast<uint32_t>(r);
        }
    }
}

void
scalarBitmapMulti(const uint64_t *qs, size_t num_queries,
                  const uint64_t *signs, size_t wpr, size_t rows, int dim,
                  int threshold, uint64_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    for (size_t i = 0; i < 2 * num_queries; ++i)
        out[i] = 0;
    for (size_t r = 0; r < rows; ++r) {
        const uint64_t *row = signs + r * wpr;
        const uint64_t bit = uint64_t{1} << (r & 63);
        for (size_t q = 0; q < num_queries; ++q) {
            if (rowConcordance(qs + q * wpr, row, wpr, dim) >= threshold)
                out[q * 2 + (r >> 6)] |= bit;
        }
    }
}

void
scalarSignReduce(const uint64_t *signs, size_t wpr, size_t rows,
                 uint64_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    // Naive per-bit counting — the independent oracle the SIMD
    // backends' carry-save majority (signReduceColumnCsa) is fuzzed
    // against. Runs once per block, not per token, so the O(64 x rows)
    // inner loop is off the per-token critical path.
    for (size_t w = 0; w < wpr; ++w) {
        uint64_t word = 0;
        for (size_t b = 0; b < 64; ++b) {
            size_t count = 0;
            for (size_t r = 0; r < rows; ++r)
                count += (signs[r * wpr + w] >> b) & 1;
            if (2 * count >= rows)
                word |= uint64_t{1} << b;
        }
        out[w] = word;
    }
}

void
scalarQuantDotAt(const float *q, const int8_t *keys, const float *scales,
                 size_t stride, size_t dim, const uint32_t *idx,
                 size_t first, size_t count, float post_scale, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    // The dotQuantized rounding contract — double accumulation in
    // ascending dimension order, ONE double multiply by the row scale,
    // one cast to float — followed by one float multiply by
    // post_scale (the attention scale the unfused path applied after
    // scoreKey). Every backend reproduces this order exactly.
    for (size_t j = 0; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        const int8_t *k = keys + row * stride;
        double acc = 0.0;
        for (size_t i = 0; i < dim; ++i)
            acc += static_cast<double>(k[i]) * q[i];
        out[j] = static_cast<float>(acc * scales[row]) * post_scale;
    }
}

void
scalarInt8DotAt(const int8_t *q, const int8_t *keys, size_t stride,
                size_t dim, const uint32_t *idx, size_t first,
                size_t count, int32_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    for (size_t j = 0; j < count; ++j) {
        const size_t row = idx ? idx[j] : first + j;
        const int8_t *k = keys + row * stride;
        int32_t acc = 0;
        for (size_t i = 0; i < dim; ++i)
            acc += static_cast<int32_t>(q[i]) * static_cast<int32_t>(k[i]);
        out[j] = acc;
    }
}

const KernelOps kScalarOps = {scalarConcordance, scalarScan, scalarBitmap,
                              scalarDotAt, scalarScanMulti,
                              scalarBitmapMulti, scalarSignReduce,
                              scalarQuantDotAt, scalarInt8DotAt};

} // namespace

const KernelOps *
scalarKernelOps()
{
    return &kScalarOps;
}

} // namespace detail

namespace {

const detail::KernelOps *
opsFor(KernelBackend b)
{
    switch (b) {
    case KernelBackend::Scalar:
        return detail::scalarKernelOps();
    case KernelBackend::Avx2:
        return detail::avx2KernelOps();
    case KernelBackend::Neon:
        return detail::neonKernelOps();
    }
    return nullptr;
}

struct Dispatch
{
    std::atomic<const detail::KernelOps *> ops{nullptr};
    std::atomic<KernelBackend> backend{KernelBackend::Scalar};
};

Dispatch &
dispatch()
{
    LS_CONTRACT_EXEMPT(); // one-time init: call_once/getenv are cold
    static Dispatch d;
    static std::once_flag init;
    std::call_once(init, [] {
        KernelBackend pick = detectKernelBackend();
        if (const char *env = std::getenv("LONGSIGHT_KERNELS")) {
            for (KernelBackend b :
                 {KernelBackend::Scalar, KernelBackend::Avx2,
                  KernelBackend::Neon}) {
                if (std::strcmp(env, kernelBackendName(b)) == 0) {
                    LS_ASSERT(kernelBackendAvailable(b),
                              "LONGSIGHT_KERNELS=", env,
                              " not available on this machine");
                    pick = b;
                }
            }
        }
        d.ops.store(opsFor(pick), std::memory_order_relaxed);
        d.backend.store(pick, std::memory_order_relaxed);
    });
    return d;
}

inline const detail::KernelOps &
ops()
{
    return *dispatch().ops.load(std::memory_order_relaxed);
}

} // namespace

const char *
kernelBackendName(KernelBackend b)
{
    switch (b) {
    case KernelBackend::Scalar:
        return "scalar";
    case KernelBackend::Avx2:
        return "avx2";
    case KernelBackend::Neon:
        return "neon";
    }
    return "unknown";
}

bool
kernelBackendAvailable(KernelBackend b)
{
    return opsFor(b) != nullptr;
}

KernelBackend
activeKernelBackend()
{
    return dispatch().backend.load(std::memory_order_relaxed);
}

KernelBackend
detectKernelBackend()
{
    if (detail::avx2KernelOps())
        return KernelBackend::Avx2;
    if (detail::neonKernelOps())
        return KernelBackend::Neon;
    return KernelBackend::Scalar;
}

void
setKernelBackend(KernelBackend b)
{
    const detail::KernelOps *o = opsFor(b);
    LS_ASSERT(o != nullptr, "kernel backend ", kernelBackendName(b),
              " is not available on this machine");
    Dispatch &d = dispatch();
    d.ops.store(o, std::memory_order_relaxed);
    d.backend.store(b, std::memory_order_relaxed);
}

void
batchConcordance(const SignBits &query, const SignMatrix &m, size_t begin,
                 size_t end, int32_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(query.dim() == m.dim(), "batchConcordance dim mismatch: ",
              query.dim(), " vs ", m.dim());
    LS_ASSERT(begin <= end && end <= m.rows(), "batchConcordance range [",
              begin, ",", end, ") out of ", m.rows());
    if (begin == end)
        return;
    ops().concordance(query.words().data(),
                      m.data() + begin * m.wordsPerRow(), m.wordsPerRow(),
                      end - begin, static_cast<int>(m.dim()), out);
}

void
batchConcordance(const uint64_t *query_words, const SignMatrix &m,
                 size_t begin, size_t end, int32_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin <= end && end <= m.rows(), "batchConcordance range [",
              begin, ",", end, ") out of ", m.rows());
    if (begin == end)
        return;
    ops().concordance(query_words, m.data() + begin * m.wordsPerRow(),
                      m.wordsPerRow(), end - begin,
                      static_cast<int>(m.dim()), out);
}

size_t
batchConcordanceScan(const SignBits &query, const SignMatrix &m,
                     size_t begin, size_t end, int threshold,
                     std::vector<uint32_t> &survivors)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(query.dim() == m.dim(), "batchConcordanceScan dim mismatch: ",
              query.dim(), " vs ", m.dim());
    // Worst-case room up front, shrink after; at steady state the
    // vector's capacity persists, so this does not allocate per call.
    const size_t before = survivors.size();
    // LS_LINT_ALLOW(alloc): capacity persists at steady state (see above)
    survivors.resize(before + (end - begin));
    const size_t n = batchConcordanceScan(query.words().data(), m, begin,
                                          end, threshold,
                                          survivors.data() + before);
    // LS_LINT_ALLOW(alloc): shrinking resize; never reallocates
    survivors.resize(before + n);
    return n;
}

size_t
batchConcordanceScan(const uint64_t *query_words, const SignMatrix &m,
                     size_t begin, size_t end, int threshold,
                     uint32_t *survivors)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin <= end && end <= m.rows(),
              "batchConcordanceScan range [", begin, ",", end, ") out of ",
              m.rows());
    if (begin == end)
        return 0;
    return ops().scan(query_words, m.data() + begin * m.wordsPerRow(),
                      m.wordsPerRow(), end - begin,
                      static_cast<int>(m.dim()), threshold,
                      static_cast<uint32_t>(begin), survivors);
}

void
packSigns(const float *v, size_t dim, uint64_t *words)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    const size_t nwords = (dim + 63) / 64;
    for (size_t w = 0; w < nwords; ++w)
        words[w] = 0;
    for (size_t i = 0; i < dim; ++i) {
        if (v[i] >= 0.0f)
            words[i >> 6] |= uint64_t{1} << (i & 63);
    }
}

void
blockSignReduce(const SignMatrix &m, size_t begin, size_t end,
                uint64_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin < end && end <= m.rows(), "blockSignReduce range [",
              begin, ",", end, ") out of ", m.rows());
    ops().signReduce(m.data() + begin * m.wordsPerRow(), m.wordsPerRow(),
                     end - begin, out);
}

void
blockSignReduce(const uint64_t *signs, size_t words_per_row, size_t rows,
                uint64_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(rows >= 1, "blockSignReduce needs at least one row");
    ops().signReduce(signs, words_per_row, rows, out);
}

void
concordanceBitmap(const SignBits &query, const SignMatrix &m, size_t begin,
                  uint32_t num_keys, int threshold, uint64_t out[2])
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(query.dim() == m.dim(), "concordanceBitmap dim mismatch");
    concordanceBitmap(query.words().data(), m, begin, num_keys, threshold,
                      out);
}

void
concordanceBitmap(const uint64_t *query_words, const SignMatrix &m,
                  size_t begin, uint32_t num_keys, int threshold,
                  uint64_t out[2])
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(num_keys <= 128, "concordanceBitmap holds at most 128 keys");
    LS_ASSERT(begin + num_keys <= m.rows(), "concordanceBitmap range [",
              begin, ",", begin + num_keys, ") out of ", m.rows());
    if (num_keys == 0) {
        out[0] = out[1] = 0;
        return;
    }
    ops().bitmap(query_words, m.data() + begin * m.wordsPerRow(),
                 m.wordsPerRow(), num_keys, static_cast<int>(m.dim()),
                 threshold, out);
}

void
batchDotScaleAt(const float *q, const Matrix &keys, const uint32_t *indices,
                size_t count, float scale, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    for (size_t j = 0; j < count; ++j)
        LS_ASSERT(indices[j] < keys.rows(), "score index ", indices[j],
                  " out of ", keys.rows());
    if (count == 0)
        return;
    ops().dotAt(q, keys.data(), keys.cols(), keys.cols(), indices, 0,
                count, scale, out);
}

void
batchDotScaleRange(const float *q, const Matrix &keys, size_t begin,
                   size_t end, float scale, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin <= end && end <= keys.rows(), "score range [", begin,
              ",", end, ") out of ", keys.rows());
    if (begin == end)
        return;
    ops().dotAt(q, keys.data(), keys.cols(), keys.cols(), nullptr, begin,
                end - begin, scale, out);
}

size_t
batchScoreSelect(const uint64_t *query_words, const SignMatrix &signs,
                 size_t begin, size_t end, int threshold, const float *q,
                 const Matrix &keys, float scale, size_t k,
                 ScoredIndex *out, size_t *survivor_count)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin <= end && end <= signs.rows(), "batchScoreSelect ",
              "range [", begin, ",", end, ") out of ", signs.rows());
    LS_ASSERT(end <= keys.rows(), "batchScoreSelect sign/key row "
              "mismatch: ", end, " > ", keys.rows());
    LS_ASSERT(k > 0, "batchScoreSelect k must be positive");

    // Stack-local tiles keep the working set in L1 and off the heap.
    // Tile size trades scan/dot call overhead against the survivors
    // living in cache while they are scored; the results are identical
    // for any tile size because the scan emits survivors in ascending
    // row order and every key's dot is computed independently.
    constexpr size_t kTile = 512;
    uint32_t idx[kTile];
    float score[kTile];

    const detail::KernelOps &o = ops();
    const size_t wpr = signs.wordsPerRow();
    const int dim = static_cast<int>(signs.dim());

    size_t heap_size = 0;
    size_t survivors = 0;
    for (size_t at = begin; at < end; at += kTile) {
        const size_t rows = std::min(kTile, end - at);
        const size_t n =
            o.scan(query_words, signs.data() + at * wpr, wpr, rows, dim,
                   threshold, static_cast<uint32_t>(at), idx);
        if (n == 0)
            continue;
        survivors += n;
        o.dotAt(q, keys.data(), keys.cols(), keys.cols(), idx, 0, n,
                scale, score);
        for (size_t j = 0; j < n; ++j)
            heap_size = topk_heap::push(out, heap_size, k,
                                        ScoredIndex{score[j], idx[j]});
    }
    topk_heap::sortBestFirst(out, heap_size);
    if (survivor_count)
        *survivor_count = survivors;
    return heap_size;
}

void
batchScanMulti(const uint64_t *query_words, size_t num_queries,
               const SignMatrix &m, size_t begin, size_t end, int threshold,
               uint32_t *survivors, size_t stride, size_t *counts)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin <= end && end <= m.rows(), "batchScanMulti range [",
              begin, ",", end, ") out of ", m.rows());
    LS_ASSERT(stride >= end - begin, "batchScanMulti stride ", stride,
              " < range ", end - begin);
    for (size_t q = 0; q < num_queries; ++q)
        counts[q] = 0;
    if (begin == end || num_queries == 0)
        return;
    const size_t wpr = m.wordsPerRow();
    for (size_t q0 = 0; q0 < num_queries; q0 += kMaxScanQueries) {
        const size_t nq = std::min(kMaxScanQueries, num_queries - q0);
        ops().scanMulti(query_words + q0 * wpr, nq,
                        m.data() + begin * wpr, wpr, end - begin,
                        static_cast<int>(m.dim()), threshold,
                        static_cast<uint32_t>(begin),
                        survivors + q0 * stride, stride, counts + q0);
    }
}

void
concordanceBitmapMulti(const uint64_t *query_words, size_t num_queries,
                       const SignMatrix &m, size_t begin, uint32_t num_keys,
                       int threshold, uint64_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(num_keys <= 128,
              "concordanceBitmapMulti holds at most 128 keys");
    LS_ASSERT(begin + num_keys <= m.rows(), "concordanceBitmapMulti ",
              "range [", begin, ",", begin + num_keys, ") out of ",
              m.rows());
    if (num_keys == 0) {
        for (size_t i = 0; i < 2 * num_queries; ++i)
            out[i] = 0;
        return;
    }
    if (num_queries == 0)
        return;
    const size_t wpr = m.wordsPerRow();
    for (size_t q0 = 0; q0 < num_queries; q0 += kMaxScanQueries) {
        const size_t nq = std::min(kMaxScanQueries, num_queries - q0);
        ops().bitmapMulti(query_words + q0 * wpr, nq,
                          m.data() + begin * wpr, wpr, num_keys,
                          static_cast<int>(m.dim()), threshold,
                          out + q0 * 2);
    }
}

void
batchScoreSelectMulti(const uint64_t *query_words, size_t num_queries,
                      const SignMatrix &signs, size_t begin, size_t end,
                      int threshold, const float *queries,
                      size_t query_stride, const Matrix &keys, float scale,
                      size_t k, ScoredIndex *out, size_t out_stride,
                      size_t *out_sizes, size_t *survivor_counts)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin <= end && end <= signs.rows(),
              "batchScoreSelectMulti range [", begin, ",", end, ") out of ",
              signs.rows());
    LS_ASSERT(end <= keys.rows(), "batchScoreSelectMulti sign/key row "
              "mismatch: ", end, " > ", keys.rows());
    LS_ASSERT(k > 0, "batchScoreSelectMulti k must be positive");
    LS_ASSERT(out_stride >= std::min(k, end - begin),
              "batchScoreSelectMulti out_stride ", out_stride,
              " < heap capacity ", std::min(k, end - begin));

    for (size_t q = 0; q < num_queries; ++q) {
        out_sizes[q] = 0;
        if (survivor_counts)
            survivor_counts[q] = 0;
    }
    if (begin == end || num_queries == 0)
        return;

    // Same tile size as batchScoreSelect: the per-query tile survivor
    // lists are then exactly the single-query tile lists, so heap push
    // order — and therefore every per-query result — is identical by
    // construction. Within a tile the key rows a group's survivors
    // gather from overlap heavily, so the shared pass also reuses key
    // tiles while they are hot, not just the packed sign rows.
    constexpr size_t kTile = 512;
    uint32_t idx[kMaxScanQueries * kTile];
    float score[kTile];
    size_t tile_counts[kMaxScanQueries];

    const detail::KernelOps &o = ops();
    const size_t wpr = signs.wordsPerRow();
    const int dim = static_cast<int>(signs.dim());

    for (size_t q0 = 0; q0 < num_queries; q0 += kMaxScanQueries) {
        const size_t nq = std::min(kMaxScanQueries, num_queries - q0);
        for (size_t at = begin; at < end; at += kTile) {
            const size_t rows = std::min(kTile, end - at);
            for (size_t qi = 0; qi < nq; ++qi)
                tile_counts[qi] = 0;
            o.scanMulti(query_words + q0 * wpr, nq,
                        signs.data() + at * wpr, wpr, rows, dim, threshold,
                        static_cast<uint32_t>(at), idx, kTile,
                        tile_counts);
            for (size_t qi = 0; qi < nq; ++qi) {
                const size_t n = tile_counts[qi];
                if (n == 0)
                    continue;
                const size_t q = q0 + qi;
                if (survivor_counts)
                    survivor_counts[q] += n;
                const uint32_t *qidx = idx + qi * kTile;
                o.dotAt(queries + q * query_stride, keys.data(),
                        keys.cols(), keys.cols(), qidx, 0, n, scale,
                        score);
                ScoredIndex *heap = out + q * out_stride;
                size_t hs = out_sizes[q];
                for (size_t j = 0; j < n; ++j)
                    hs = topk_heap::push(heap, hs, k,
                                         ScoredIndex{score[j], qidx[j]});
                out_sizes[q] = hs;
            }
        }
    }
    for (size_t q = 0; q < num_queries; ++q)
        topk_heap::sortBestFirst(out + q * out_stride, out_sizes[q]);
}

namespace {

/** Total tokens covered by a span list, with in-bounds and
 *  ascending-logical-order checks against the backing storage. */
size_t
checkSpans(const ScanSpan *spans, size_t num_spans, size_t phys_rows)
{
    size_t total = 0;
    size_t next_logical = 0;
    for (size_t s = 0; s < num_spans; ++s) {
        LS_ASSERT(spans[s].physBegin + spans[s].count <= phys_rows,
                  "span ", s, " rows [", spans[s].physBegin, ",",
                  spans[s].physBegin + spans[s].count, ") out of ",
                  phys_rows);
        LS_ASSERT(s == 0 || spans[s].logicalBase >= next_logical,
                  "span ", s, " logical base ", spans[s].logicalBase,
                  " overlaps previous span end ", next_logical);
        next_logical = spans[s].logicalBase + spans[s].count;
        total += spans[s].count;
    }
    return total;
}

} // namespace

void
batchScanMultiSpans(const uint64_t *query_words, size_t num_queries,
                    const SignMatrix &m, const ScanSpan *spans,
                    size_t num_spans, int threshold, uint32_t *survivors,
                    size_t stride, size_t *counts, size_t *span_survivors)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    const size_t total = checkSpans(spans, num_spans, m.rows());
    LS_ASSERT(stride >= total, "batchScanMultiSpans stride ", stride,
              " < total span tokens ", total);
    for (size_t q = 0; q < num_queries; ++q)
        counts[q] = 0;
    for (size_t s = 0; s < num_spans; ++s)
        if (span_survivors)
            span_survivors[s] = 0;
    if (total == 0 || num_queries == 0)
        return;

    const size_t wpr = m.wordsPerRow();
    const int dim = static_cast<int>(m.dim());
    // Per-span scratch the physical survivor indices land in before the
    // logical remap; spans never exceed a block, which never exceeds a
    // tile's worth of rows in practice, but size for the worst case by
    // chunking the span itself.
    constexpr size_t kTile = 512;
    uint32_t idx[kMaxScanQueries * kTile];
    size_t tile_counts[kMaxScanQueries];

    for (size_t q0 = 0; q0 < num_queries; q0 += kMaxScanQueries) {
        const size_t nq = std::min(kMaxScanQueries, num_queries - q0);
        for (size_t s = 0; s < num_spans; ++s) {
            const ScanSpan &sp = spans[s];
            // logical = physical + delta for every row in this span.
            const int64_t delta =
                static_cast<int64_t>(sp.logicalBase) -
                static_cast<int64_t>(sp.physBegin);
            for (size_t at = 0; at < sp.count; at += kTile) {
                const size_t rows = std::min(kTile, sp.count - at);
                for (size_t qi = 0; qi < nq; ++qi)
                    tile_counts[qi] = 0;
                ops().scanMulti(
                    query_words + q0 * wpr, nq,
                    m.data() + (sp.physBegin + at) * wpr, wpr, rows, dim,
                    threshold, static_cast<uint32_t>(sp.physBegin + at),
                    idx, kTile, tile_counts);
                for (size_t qi = 0; qi < nq; ++qi) {
                    const size_t n = tile_counts[qi];
                    if (n == 0)
                        continue;
                    const size_t q = q0 + qi;
                    uint32_t *dst = survivors + q * stride + counts[q];
                    const uint32_t *src = idx + qi * kTile;
                    for (size_t j = 0; j < n; ++j)
                        dst[j] = static_cast<uint32_t>(
                            static_cast<int64_t>(src[j]) + delta);
                    counts[q] += n;
                    if (span_survivors)
                        span_survivors[s] += n;
                }
            }
        }
    }
}

void
batchScoreSelectMultiSpans(const uint64_t *query_words, size_t num_queries,
                           const SignMatrix &signs, const ScanSpan *spans,
                           size_t num_spans, int threshold,
                           const float *queries, size_t query_stride,
                           const Matrix &keys, float scale, size_t k,
                           ScoredIndex *out, size_t out_stride,
                           size_t *out_sizes, size_t *survivor_counts,
                           size_t *span_survivors)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    const size_t total = checkSpans(spans, num_spans, signs.rows());
    LS_ASSERT(checkSpans(spans, num_spans, keys.rows()) == total,
              "batchScoreSelectMultiSpans sign/key row mismatch");
    LS_ASSERT(k > 0, "batchScoreSelectMultiSpans k must be positive");
    LS_ASSERT(out_stride >= std::min(k, total),
              "batchScoreSelectMultiSpans out_stride ", out_stride,
              " < heap capacity ", std::min(k, total));

    for (size_t q = 0; q < num_queries; ++q) {
        out_sizes[q] = 0;
        if (survivor_counts)
            survivor_counts[q] = 0;
    }
    for (size_t s = 0; s < num_spans; ++s)
        if (span_survivors)
            span_survivors[s] = 0;
    if (total == 0 || num_queries == 0)
        return;

    // Identical tile structure to batchScoreSelectMulti; the scan and
    // dot kernels see physical rows (signs and keys share storage
    // layout) and only the index offered to the heap is remapped to
    // the logical token id. Because spans ascend logically and each
    // span's candidates ascend physically, the heap sees candidates in
    // exactly the order the contiguous driver would offer them over an
    // equivalent flat layout — selections are element-identical.
    constexpr size_t kTile = 512;
    uint32_t idx[kMaxScanQueries * kTile];
    float score[kTile];
    size_t tile_counts[kMaxScanQueries];

    const detail::KernelOps &o = ops();
    const size_t wpr = signs.wordsPerRow();
    const int dim = static_cast<int>(signs.dim());

    for (size_t q0 = 0; q0 < num_queries; q0 += kMaxScanQueries) {
        const size_t nq = std::min(kMaxScanQueries, num_queries - q0);
        for (size_t s = 0; s < num_spans; ++s) {
            const ScanSpan &sp = spans[s];
            const int64_t delta =
                static_cast<int64_t>(sp.logicalBase) -
                static_cast<int64_t>(sp.physBegin);
            for (size_t at = 0; at < sp.count; at += kTile) {
                const size_t rows = std::min(kTile, sp.count - at);
                for (size_t qi = 0; qi < nq; ++qi)
                    tile_counts[qi] = 0;
                o.scanMulti(
                    query_words + q0 * wpr, nq,
                    signs.data() + (sp.physBegin + at) * wpr, wpr, rows,
                    dim, threshold,
                    static_cast<uint32_t>(sp.physBegin + at), idx, kTile,
                    tile_counts);
                for (size_t qi = 0; qi < nq; ++qi) {
                    const size_t n = tile_counts[qi];
                    if (n == 0)
                        continue;
                    const size_t q = q0 + qi;
                    if (survivor_counts)
                        survivor_counts[q] += n;
                    if (span_survivors)
                        span_survivors[s] += n;
                    const uint32_t *qidx = idx + qi * kTile;
                    o.dotAt(queries + q * query_stride, keys.data(),
                            keys.cols(), keys.cols(), qidx, 0, n, scale,
                            score);
                    ScoredIndex *heap = out + q * out_stride;
                    size_t hs = out_sizes[q];
                    for (size_t j = 0; j < n; ++j)
                        hs = topk_heap::push(
                            heap, hs, k,
                            ScoredIndex{score[j],
                                        static_cast<uint32_t>(
                                            static_cast<int64_t>(qidx[j]) +
                                            delta)});
                    out_sizes[q] = hs;
                }
            }
        }
    }
    for (size_t q = 0; q < num_queries; ++q)
        topk_heap::sortBestFirst(out + q * out_stride, out_sizes[q]);
}

void
batchQuantDotAt(const float *q, const int8_t *keys, const float *scales,
                size_t dim, const uint32_t *indices, size_t count,
                float post_scale, float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    if (count == 0)
        return;
    ops().quantDotAt(q, keys, scales, dim, dim, indices, 0, count,
                     post_scale, out);
}

void
batchQuantDotRange(const float *q, const int8_t *keys, const float *scales,
                   size_t dim, size_t begin, size_t end, float post_scale,
                   float *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin <= end, "quant score range [", begin, ",", end, ")");
    if (begin == end)
        return;
    ops().quantDotAt(q, keys, scales, dim, dim, nullptr, begin,
                     end - begin, post_scale, out);
}

void
batchInt8DotAt(const int8_t *q, const int8_t *keys, size_t dim,
               const uint32_t *indices, size_t count, int32_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    if (count == 0)
        return;
    ops().int8DotAt(q, keys, dim, dim, indices, 0, count, out);
}

void
batchInt8DotRange(const int8_t *q, const int8_t *keys, size_t dim,
                  size_t begin, size_t end, int32_t *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin <= end, "int8 dot range [", begin, ",", end, ")");
    if (begin == end)
        return;
    ops().int8DotAt(q, keys, dim, dim, nullptr, begin, end - begin, out);
}

size_t
batchQuantScoreSelect(const uint64_t *query_words, const SignMatrix &signs,
                      size_t begin, size_t end, int threshold,
                      const float *q, const int8_t *keys,
                      const float *scales, size_t dim, float post_scale,
                      size_t k, ScoredIndex *out, size_t *survivor_count)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin <= end && end <= signs.rows(),
              "batchQuantScoreSelect range [", begin, ",", end,
              ") out of ", signs.rows());
    LS_ASSERT(k > 0, "batchQuantScoreSelect k must be positive");

    // Identical tile structure to batchScoreSelect; only the scoring
    // op differs (INT8 arena rows + per-row scales instead of the
    // float key matrix).
    constexpr size_t kTile = 512;
    uint32_t idx[kTile];
    float score[kTile];

    const detail::KernelOps &o = ops();
    const size_t wpr = signs.wordsPerRow();
    const int sdim = static_cast<int>(signs.dim());

    size_t heap_size = 0;
    size_t survivors = 0;
    for (size_t at = begin; at < end; at += kTile) {
        const size_t rows = std::min(kTile, end - at);
        const size_t n =
            o.scan(query_words, signs.data() + at * wpr, wpr, rows, sdim,
                   threshold, static_cast<uint32_t>(at), idx);
        if (n == 0)
            continue;
        survivors += n;
        o.quantDotAt(q, keys, scales, dim, dim, idx, 0, n, post_scale,
                     score);
        for (size_t j = 0; j < n; ++j)
            heap_size = topk_heap::push(out, heap_size, k,
                                        ScoredIndex{score[j], idx[j]});
    }
    topk_heap::sortBestFirst(out, heap_size);
    if (survivor_count)
        *survivor_count = survivors;
    return heap_size;
}

void
batchQuantScoreSelectMultiSpans(
    const uint64_t *query_words, size_t num_queries,
    const SignMatrix &signs, const ScanSpan *spans, size_t num_spans,
    int threshold, const float *queries, size_t query_stride,
    const int8_t *keys, const float *scales, size_t dim,
    float post_scale, size_t k, ScoredIndex *out, size_t out_stride,
    size_t *out_sizes, size_t *survivor_counts, size_t *span_survivors)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    const size_t total = checkSpans(spans, num_spans, signs.rows());
    LS_ASSERT(k > 0, "batchQuantScoreSelectMultiSpans k must be positive");
    LS_ASSERT(out_stride >= std::min(k, total),
              "batchQuantScoreSelectMultiSpans out_stride ", out_stride,
              " < heap capacity ", std::min(k, total));

    for (size_t q = 0; q < num_queries; ++q) {
        out_sizes[q] = 0;
        if (survivor_counts)
            survivor_counts[q] = 0;
    }
    for (size_t s = 0; s < num_spans; ++s)
        if (span_survivors)
            span_survivors[s] = 0;
    if (total == 0 || num_queries == 0)
        return;

    // batchScoreSelectMultiSpans with the quantized scoring op: the
    // scan and INT8 dot kernels see physical rows, heaps get logical
    // token ids via the per-span delta remap.
    constexpr size_t kTile = 512;
    uint32_t idx[kMaxScanQueries * kTile];
    float score[kTile];
    size_t tile_counts[kMaxScanQueries];

    const detail::KernelOps &o = ops();
    const size_t wpr = signs.wordsPerRow();
    const int sdim = static_cast<int>(signs.dim());

    for (size_t q0 = 0; q0 < num_queries; q0 += kMaxScanQueries) {
        const size_t nq = std::min(kMaxScanQueries, num_queries - q0);
        for (size_t s = 0; s < num_spans; ++s) {
            const ScanSpan &sp = spans[s];
            const int64_t delta =
                static_cast<int64_t>(sp.logicalBase) -
                static_cast<int64_t>(sp.physBegin);
            for (size_t at = 0; at < sp.count; at += kTile) {
                const size_t rows = std::min(kTile, sp.count - at);
                for (size_t qi = 0; qi < nq; ++qi)
                    tile_counts[qi] = 0;
                o.scanMulti(
                    query_words + q0 * wpr, nq,
                    signs.data() + (sp.physBegin + at) * wpr, wpr, rows,
                    sdim, threshold,
                    static_cast<uint32_t>(sp.physBegin + at), idx, kTile,
                    tile_counts);
                for (size_t qi = 0; qi < nq; ++qi) {
                    const size_t n = tile_counts[qi];
                    if (n == 0)
                        continue;
                    const size_t q = q0 + qi;
                    if (survivor_counts)
                        survivor_counts[q] += n;
                    if (span_survivors)
                        span_survivors[s] += n;
                    const uint32_t *qidx = idx + qi * kTile;
                    o.quantDotAt(queries + q * query_stride, keys, scales,
                                 dim, dim, qidx, 0, n, post_scale, score);
                    ScoredIndex *heap = out + q * out_stride;
                    size_t hs = out_sizes[q];
                    for (size_t j = 0; j < n; ++j)
                        hs = topk_heap::push(
                            heap, hs, k,
                            ScoredIndex{score[j],
                                        static_cast<uint32_t>(
                                            static_cast<int64_t>(qidx[j]) +
                                            delta)});
                    out_sizes[q] = hs;
                }
            }
        }
    }
    for (size_t q = 0; q < num_queries; ++q)
        topk_heap::sortBestFirst(out + q * out_stride, out_sizes[q]);
}

size_t
batchInt8ScoreSelect(const int8_t *q8, float q_scale, const int8_t *keys,
                     const float *scales, size_t dim, size_t begin,
                     size_t end, float post_scale, size_t k,
                     ScoredIndex *out)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(begin <= end, "batchInt8ScoreSelect range [", begin, ",",
              end, ")");
    LS_ASSERT(k > 0, "batchInt8ScoreSelect k must be positive");

    // Every row in range is a candidate: the estimation cost is the
    // exact integer dot, so there is no cheap pre-filter to scan with.
    // The float estimate is derived HERE, once, in driver code — the
    // backends only supply the exact integer dots — so the
    // multiplication order (qp * scales[row], then one multiply by the
    // converted dot) is a single shared contract.
    constexpr size_t kTile = 512;
    int32_t idot[kTile];

    const detail::KernelOps &o = ops();
    const float qp = q_scale * post_scale;

    size_t heap_size = 0;
    for (size_t at = begin; at < end; at += kTile) {
        const size_t rows = std::min(kTile, end - at);
        o.int8DotAt(q8, keys, dim, dim, nullptr, at, rows, idot);
        for (size_t j = 0; j < rows; ++j) {
            const float est = static_cast<float>(idot[j]) *
                (qp * scales[at + j]);
            heap_size = topk_heap::push(
                out, heap_size, k,
                ScoredIndex{est, static_cast<uint32_t>(at + j)});
        }
    }
    topk_heap::sortBestFirst(out, heap_size);
    return heap_size;
}

void
batchInt8ScoreSelectMultiSpans(
    const int8_t *q8s, const float *q_scales, size_t num_queries,
    const int8_t *keys, const float *scales, size_t dim,
    const ScanSpan *spans, size_t num_spans, float post_scale, size_t k,
    ScoredIndex *out, size_t out_stride, size_t *out_sizes,
    size_t *span_candidates)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    size_t total = 0;
    size_t next_logical = 0;
    for (size_t s = 0; s < num_spans; ++s) {
        LS_ASSERT(s == 0 || spans[s].logicalBase >= next_logical,
                  "int8 span ", s, " logical base ", spans[s].logicalBase,
                  " overlaps previous span end ", next_logical);
        next_logical = spans[s].logicalBase + spans[s].count;
        total += spans[s].count;
    }
    LS_ASSERT(k > 0, "batchInt8ScoreSelectMultiSpans k must be positive");
    LS_ASSERT(out_stride >= std::min(k, total),
              "batchInt8ScoreSelectMultiSpans out_stride ", out_stride,
              " < heap capacity ", std::min(k, total));

    for (size_t q = 0; q < num_queries; ++q)
        out_sizes[q] = 0;
    for (size_t s = 0; s < num_spans; ++s)
        if (span_candidates)
            span_candidates[s] = num_queries * spans[s].count;
    if (total == 0 || num_queries == 0)
        return;

    constexpr size_t kTile = 512;
    int32_t idot[kTile];

    const detail::KernelOps &o = ops();

    for (size_t q = 0; q < num_queries; ++q) {
        const int8_t *q8 = q8s + q * dim;
        const float qp = q_scales[q] * post_scale;
        ScoredIndex *heap = out + q * out_stride;
        size_t hs = 0;
        for (size_t s = 0; s < num_spans; ++s) {
            const ScanSpan &sp = spans[s];
            const int64_t delta =
                static_cast<int64_t>(sp.logicalBase) -
                static_cast<int64_t>(sp.physBegin);
            for (size_t at = 0; at < sp.count; at += kTile) {
                const size_t rows = std::min(kTile, sp.count - at);
                const size_t phys = sp.physBegin + at;
                o.int8DotAt(q8, keys, dim, dim, nullptr, phys, rows,
                            idot);
                for (size_t j = 0; j < rows; ++j) {
                    const float est = static_cast<float>(idot[j]) *
                        (qp * scales[phys + j]);
                    hs = topk_heap::push(
                        heap, hs, k,
                        ScoredIndex{est,
                                    static_cast<uint32_t>(
                                        static_cast<int64_t>(phys + j) +
                                        delta)});
                }
            }
        }
        out_sizes[q] = hs;
        topk_heap::sortBestFirst(heap, hs);
    }
}

} // namespace longsight

#include "tensor/sign_matrix.hh"

#include <bit>

#include "util/annotations.hh"
#include "util/logging.hh"

namespace longsight {

SignMatrix::SignMatrix(size_t dim)
    : dim_(dim), wordsPerRow_((dim + 63) / 64)
{
    LS_ASSERT(dim > 0, "SignMatrix dimension must be positive");
}

void
SignMatrix::clear()
{
    rows_ = 0;
    words_.clear();
}

void
SignMatrix::resizeRows(size_t n)
{
    LS_ASSERT(dim_ > 0, "resizeRows on a dimensionless SignMatrix");
    words_.resize(n * wordsPerRow_, 0);
    rows_ = n;
}

void
SignMatrix::setRow(size_t r, const float *v)
{
    LS_HOT_PATH();
    LS_DETERMINISTIC();
    LS_NO_LOCK();
    LS_ASSERT(r < rows_, "SignMatrix setRow ", r, " out of range ", rows_);
    uint64_t *w = words_.data() + r * wordsPerRow_;
    for (size_t i = 0; i < wordsPerRow_; ++i)
        w[i] = 0;
    for (size_t i = 0; i < dim_; ++i) {
        if (v[i] >= 0.0f)
            w[i >> 6] |= uint64_t{1} << (i & 63);
    }
}

void
SignMatrix::appendRow(const float *v)
{
    LS_ASSERT(dim_ > 0, "appendRow on a dimensionless SignMatrix");
    const size_t base = words_.size();
    // LS_LINT_ALLOW(alloc): amortized append; geometric growth
    words_.resize(base + wordsPerRow_, 0);
    uint64_t *w = words_.data() + base;
    for (size_t i = 0; i < dim_; ++i) {
        if (v[i] >= 0.0f)
            w[i >> 6] |= uint64_t{1} << (i & 63);
    }
    ++rows_;
}

void
SignMatrix::appendSigns(const SignBits &s)
{
    LS_ASSERT(s.dim() == dim_, "appendSigns dim mismatch: ", s.dim(),
              " vs ", dim_);
    words_.insert(words_.end(), s.words().begin(), s.words().end());
    ++rows_;
}

const uint64_t *
SignMatrix::row(size_t r) const
{
    LS_ASSERT(r < rows_, "SignMatrix row ", r, " out of range ", rows_);
    return words_.data() + r * wordsPerRow_;
}

SignBits
SignMatrix::extract(size_t r) const
{
    const uint64_t *w = row(r);
    // Rebuild a float vector whose signs match, then repack — keeps
    // SignBits' constructor the single packing implementation.
    std::vector<float> v(dim_);
    for (size_t i = 0; i < dim_; ++i)
        v[i] = ((w[i >> 6] >> (i & 63)) & 1) ? 1.0f : -1.0f;
    return SignBits(v.data(), dim_);
}

int
SignMatrix::concordanceRow(const SignBits &query, size_t r) const
{
    LS_ASSERT(query.dim() == dim_, "concordanceRow dim mismatch");
    const uint64_t *w = row(r);
    int mismatches = 0;
    for (size_t i = 0; i < wordsPerRow_; ++i)
        mismatches += std::popcount(w[i] ^ query.words()[i]);
    return static_cast<int>(dim_) - mismatches;
}

SignMatrix
SignMatrix::pack(const float *data, size_t count, size_t dim)
{
    SignMatrix m(dim);
    m.reserveRows(count);
    for (size_t r = 0; r < count; ++r)
        m.appendRow(data + r * dim);
    return m;
}

} // namespace longsight

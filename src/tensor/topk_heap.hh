/**
 * @file
 * Bounded top-k min-heap primitives over caller-owned storage. These
 * are the single implementation of the paper's §5 ranking order: both
 * the streaming TopK accumulator (core/topk) and the fused
 * scan→score→select kernel (tensor/kernels batchScoreSelect) build on
 * the helpers here, so the score-desc / index-asc tie-break is exact
 * and identical everywhere by construction, not by convention.
 *
 * The heap is a binary min-heap under betterThan-inverted ordering:
 * heap[0] is the entry the next better candidate evicts, which makes
 * "early reject against the current k-th score" a single comparison.
 * Storage is a raw span the caller provides (typically scratch-arena
 * memory or TopK's member vector); the helpers never allocate.
 */

#ifndef LONGSIGHT_TENSOR_TOPK_HEAP_HH
#define LONGSIGHT_TENSOR_TOPK_HEAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>

namespace longsight {

/**
 * A scored candidate key.
 */
struct ScoredIndex
{
    float score;
    uint32_t index;

    /** Ordering: higher score wins; ties break toward lower index. */
    bool betterThan(const ScoredIndex &o) const
    {
        return score > o.score || (score == o.score && index < o.index);
    }
};

namespace topk_heap {

/** Min-heap comparator: a sits below b when a is the worse entry. */
inline bool
worse(const ScoredIndex &a, const ScoredIndex &b)
{
    return b.betterThan(a);
}

inline void
siftUp(ScoredIndex *heap, size_t i)
{
    while (i > 0) {
        const size_t parent = (i - 1) / 2;
        if (!worse(heap[i], heap[parent]))
            break;
        std::swap(heap[i], heap[parent]);
        i = parent;
    }
}

inline void
siftDown(ScoredIndex *heap, size_t size, size_t i)
{
    for (;;) {
        const size_t l = 2 * i + 1;
        const size_t r = 2 * i + 2;
        size_t smallest = i;
        if (l < size && worse(heap[l], heap[smallest]))
            smallest = l;
        if (r < size && worse(heap[r], heap[smallest]))
            smallest = r;
        if (smallest == i)
            break;
        std::swap(heap[i], heap[smallest]);
        i = smallest;
    }
}

/**
 * Offer one candidate to a heap of capacity k currently holding `size`
 * entries. Returns the new size. The caller's span must hold at least
 * k entries.
 */
inline size_t
push(ScoredIndex *heap, size_t size, size_t k, ScoredIndex cand)
{
    if (size < k) {
        heap[size] = cand;
        siftUp(heap, size);
        return size + 1;
    }
    if (cand.betterThan(heap[0])) {
        heap[0] = cand;
        siftDown(heap, size, 0);
    }
    return size;
}

/**
 * In-place heapsort of a valid min-heap into best-first order. After
 * the call the span is a plain sorted array (heap property gone).
 * Repeatedly moving the root (the worst retained entry) to the back
 * fills positions size-1, size-2, ... with ever-better entries, so the
 * front ends up best-first.
 */
inline void
sortBestFirst(ScoredIndex *heap, size_t size)
{
    while (size > 1) {
        --size;
        std::swap(heap[0], heap[size]);
        siftDown(heap, size, 0);
    }
}

} // namespace topk_heap

} // namespace longsight

#endif // LONGSIGHT_TENSOR_TOPK_HEAP_HH

/**
 * @file
 * Minimal dense tensor types used throughout LongSight: a row-major
 * single-precision Matrix and free-function vector helpers. The library
 * deliberately avoids expression templates — attention kernels operate on
 * modest head dimensions (64/128) where clarity beats cleverness.
 */

#ifndef LONGSIGHT_TENSOR_TENSOR_HH
#define LONGSIGHT_TENSOR_TENSOR_HH

#include <cstddef>
#include <vector>

namespace longsight {

/**
 * A dense row-major float32 matrix.
 *
 * Row pointers are stable for the lifetime of the object (no
 * reallocation after construction unless resize() is called).
 */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct a rows x cols matrix, zero-initialized. */
    Matrix(size_t rows, size_t cols);

    /** Construct from existing data (size must equal rows*cols). */
    Matrix(size_t rows, size_t cols, std::vector<float> data);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** Pointer to the start of row r. */
    float *row(size_t r) { return data_.data() + r * cols_; }
    const float *row(size_t r) const { return data_.data() + r * cols_; }

    /** Copy row r out as a vector. */
    std::vector<float> rowVec(size_t r) const;

    /** Overwrite row r from a span of cols() floats. */
    void setRow(size_t r, const float *src);

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Resize, discarding contents (zero-filled). */
    void resize(size_t rows, size_t cols);

    /**
     * Append one row (cols() floats). Amortized O(cols); invalidates
     * previously taken row pointers when the backing store grows.
     */
    void appendRow(const float *src);

    /** Reserve capacity for n rows without changing the shape. */
    void reserveRows(size_t n) { data_.reserve(n * cols_); }

    /** Identity matrix of order n. */
    static Matrix identity(size_t n);

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace longsight

#endif // LONGSIGHT_TENSOR_TENSOR_HH

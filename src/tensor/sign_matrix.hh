/**
 * @file
 * SignMatrix — contiguous structure-of-arrays storage for the packed
 * sign bits of many keys. This is the host-side mirror of the paper's
 * per-bank Key Sign Object: one row of (dim+63)/64 little-endian
 * 64-bit words per key, rows laid out back to back in one 64-byte
 * aligned buffer so the batch-scan kernels (tensor/kernels.hh) can
 * stream XOR+popcount over whole 128-key bursts without pointer
 * chasing. It replaces the std::vector<SignBits> (vector-of-vectors)
 * storage that made the SCF hot loop cache-hostile.
 *
 * Append-friendly: rows are added one at a time as keys arrive
 * (KvCache::append) with amortized O(wordsPerRow) cost; the buffer
 * grows geometrically and always stays 64-byte aligned.
 */

#ifndef LONGSIGHT_TENSOR_SIGN_MATRIX_HH
#define LONGSIGHT_TENSOR_SIGN_MATRIX_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "tensor/signbits.hh"

namespace longsight {

/** Minimal aligned allocator so std::vector storage lands on a
 *  64-byte (cache line / AVX-512 friendly) boundary. */
template <class T, std::size_t Align>
struct AlignedAllocator
{
    using value_type = T;

    // allocator_traits cannot rebind through the non-type Align
    // parameter on its own; spell it out.
    template <class U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    AlignedAllocator() = default;
    template <class U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {
    }

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }
    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    template <class U>
    bool operator==(const AlignedAllocator<U, Align> &) const
    {
        return true;
    }
};

/**
 * Packed sign bits of a growable set of same-dimension vectors,
 * stored row-major in one contiguous aligned buffer.
 */
class SignMatrix
{
  public:
    SignMatrix() = default;

    /** An empty matrix whose future rows have `dim` sign bits. */
    explicit SignMatrix(size_t dim);

    size_t dim() const { return dim_; }
    size_t rows() const { return rows_; }
    bool empty() const { return rows_ == 0; }

    /** 64-bit words per row: (dim + 63) / 64. */
    size_t wordsPerRow() const { return wordsPerRow_; }

    /** Drop all rows; dimension is kept. */
    void clear();

    /** Reserve capacity for n rows. */
    void reserveRows(size_t n) { words_.reserve(n * wordsPerRow_); }

    /**
     * Resize to exactly n rows, zero-filling any new ones (existing
     * rows are preserved). The fixed-capacity form the block pool
     * uses: rows are then overwritten in place with setRow() instead
     * of appended, so the buffer never reallocates afterwards.
     */
    void resizeRows(size_t n);

    /** Append the signs of a dim-long float vector (bit i set iff
     *  v[i] >= 0, matching SignBits' packing). */
    void appendRow(const float *v);

    /** Overwrite row r with the signs of a dim-long float vector —
     *  bit-identical packing to appendRow. */
    void setRow(size_t r, const float *v);

    /** Append a pre-packed SignBits value of matching dimension. */
    void appendSigns(const SignBits &s);

    /** Packed words of row r (wordsPerRow() of them). */
    const uint64_t *row(size_t r) const;

    /** Whole backing buffer: rows() * wordsPerRow() words. */
    const uint64_t *data() const { return words_.data(); }
    uint64_t *data() { return words_.data(); }

    /** Row r as a standalone SignBits (round-trip/compat helper). */
    SignBits extract(size_t r) const;

    /** Concordance of a query with row r (D - popcount(xor)). */
    int concordanceRow(const SignBits &query, size_t r) const;

    bool operator==(const SignMatrix &other) const = default;

    /** Pack every row of a (count x dim) float array. */
    static SignMatrix pack(const float *data, size_t count, size_t dim);

  private:
    size_t dim_ = 0;
    size_t wordsPerRow_ = 0;
    size_t rows_ = 0;
    std::vector<uint64_t, AlignedAllocator<uint64_t, 64>> words_;
};

} // namespace longsight

#endif // LONGSIGHT_TENSOR_SIGN_MATRIX_HH

/**
 * @file
 * Runtime-dispatched batch kernels for the SCF hot path: sign
 * concordance over whole SignMatrix bursts (the software twin of the
 * PFU's 128-key popcount sweep), batched survivor scoring
 * (query . key dot products with a fused scale), and INT8 scoring
 * over the quantized key arenas — mixed float x int8 survivor scoring
 * (the dotQuantized contract) and exact int8 x int8 estimation dots
 * (scalar reference, AVX2 maddubs, AVX-512 VNNI vpdpbusd fast paths).
 *
 * Three backends share one contract and are selected once at startup:
 *
 *  - scalar: portable std::popcount / double-accumulation loops;
 *  - avx2:   vpshufb nibble-LUT popcount, 4 packed rows per vector,
 *            4-key transposed dot products (x86-64, detected via
 *            __builtin_cpu_supports);
 *  - neon:   cnt/addv popcount (aarch64, compile-time).
 *
 * Every backend is BIT-IDENTICAL: concordance is integer math, and
 * the dot kernels accumulate each key's products in double precision
 * in strictly ascending dimension order (no FMA, no reassociation),
 * which is exactly what the scalar fallback and the pre-existing
 * linalg dot() compute. Survivor sets, scores, and therefore top-k
 * selections do not depend on the backend; tests and the bench-smoke
 * CI job enforce this.
 *
 * batchScoreSelect is the fused scan -> score -> select driver for the
 * decode hot path: it streams survivors tile by tile from the
 * concordance scan straight through dot-scale scoring into a bounded
 * top-k heap (early-rejecting against the current k-th score), never
 * materializing the full survivor or score vectors. The driver itself
 * is backend-agnostic — it composes the dispatched scan and dot ops —
 * so AVX2, NEON, and scalar all get the fused path with identical
 * results for free: NEON parity with AVX2 is by construction (NEON
 * supplies its own scan/dot primitives; there is no scalar-only
 * fallback branch inside the fused driver).
 *
 * The *Multi variants serve a whole query group — the GQA heads that
 * share one KV head, plus optionally queries from other batched
 * requests pinned to the same KV head — in ONE streaming pass: each
 * packed sign row (and, in the fused driver, each survivor key tile)
 * is loaded once and run through every query's concordance test /
 * score-select heap before the stream advances. Per query the
 * survivors, scores, and top-k selections are bit-identical to
 * running the single-query kernel Q times; only the memory-traffic
 * shape changes (Q passes over the cache become one).
 *
 * The backend can be forced (tests, benchmarks, A/B timing) with
 * setKernelBackend() or the LONGSIGHT_KERNELS=scalar|avx2|neon
 * environment variable.
 */

#ifndef LONGSIGHT_TENSOR_KERNELS_HH
#define LONGSIGHT_TENSOR_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/sign_matrix.hh"
#include "tensor/signbits.hh"
#include "tensor/tensor.hh"
#include "tensor/topk_heap.hh"

namespace longsight {

/** Available kernel implementations. */
enum class KernelBackend { Scalar, Avx2, Neon };

/** Human-readable backend name ("scalar", "avx2", "neon"). */
const char *kernelBackendName(KernelBackend b);

/** Whether a backend is compiled in AND supported by this CPU. */
bool kernelBackendAvailable(KernelBackend b);

/** Backend the dispatcher is currently routing through. */
KernelBackend activeKernelBackend();

/** Best backend available on this machine (what startup picks). */
KernelBackend detectKernelBackend();

/** Force a backend (must be available). Used by parity tests and the
 *  scalar-vs-SIMD benchmark; not intended to be switched while other
 *  threads are inside a kernel. */
void setKernelBackend(KernelBackend b);

/**
 * Concordance of `query` with every row in [begin, end):
 * out[i - begin] = dim - popcount(row_i XOR query).
 */
void batchConcordance(const SignBits &query, const SignMatrix &m,
                      size_t begin, size_t end, int32_t *out);

/** Packed-query-words flavour of batchConcordance (see packSigns). */
void batchConcordance(const uint64_t *query_words, const SignMatrix &m,
                      size_t begin, size_t end, int32_t *out);

/**
 * SCF survivor scan: appends to `survivors` the row indices i in
 * [begin, end) with concordance(query, row_i) >= threshold, in
 * ascending order. Returns the number appended.
 */
size_t batchConcordanceScan(const SignBits &query, const SignMatrix &m,
                            size_t begin, size_t end, int threshold,
                            std::vector<uint32_t> &survivors);

/**
 * Allocation-free flavour over caller storage: query is pre-packed
 * sign words (see packSigns), survivors must hold end - begin entries.
 * Returns the survivor count. Identical order and contents to the
 * vector flavour.
 */
size_t batchConcordanceScan(const uint64_t *query_words,
                            const SignMatrix &m, size_t begin, size_t end,
                            int threshold, uint32_t *survivors);

/**
 * Pack the sign pattern of v[0..dim) into words ((dim + 63) / 64 of
 * them, fully overwritten): bit i set iff v[i] >= 0. Exactly the
 * SignBits packing, for callers that keep packed queries in scratch
 * memory instead of constructing a SignBits (which allocates).
 */
void packSigns(const float *v, size_t dim, uint64_t *words);

/**
 * Block signature: per-bit majority vote over the packed sign rows
 * [begin, end) of m. Bit b of out is set iff at least half of the
 * rows have bit b set (a tie rounds toward set, mirroring packSigns'
 * v >= 0 convention). out holds m.wordsPerRow() words, fully
 * overwritten; bits past m.dim() stay zero because every packed row
 * keeps them zero. Pure integer math — all backends bit-identical.
 * Requires begin < end.
 */
void blockSignReduce(const SignMatrix &m, size_t begin, size_t end,
                     uint64_t *out);

/**
 * Raw flavour over caller storage: `rows` packed rows of
 * words_per_row words each, laid out back to back (the scratch layout
 * packSigns fills). Identical result to the SignMatrix flavour.
 */
void blockSignReduce(const uint64_t *signs, size_t words_per_row,
                     size_t rows, uint64_t *out);

/**
 * PFU-shaped scan: bitmap over up to 128 rows starting at `begin`;
 * bit j of out (j < num_keys) is set iff row begin+j passes.
 * out[0] holds keys 0..63, out[1] keys 64..127.
 */
void concordanceBitmap(const SignBits &query, const SignMatrix &m,
                       size_t begin, uint32_t num_keys, int threshold,
                       uint64_t out[2]);

/** Packed-query-words flavour of concordanceBitmap. */
void concordanceBitmap(const uint64_t *query_words, const SignMatrix &m,
                       size_t begin, uint32_t num_keys, int threshold,
                       uint64_t out[2]);

/**
 * Survivor scoring: out[j] = (q . keys[indices[j]]) * scale for
 * j in [0, count), accumulated in double precision per key in
 * ascending dimension order (bit-identical to linalg dot()).
 */
void batchDotScaleAt(const float *q, const Matrix &keys,
                     const uint32_t *indices, size_t count, float scale,
                     float *out);

/** Range flavour: out[i - begin] = (q . keys[i]) * scale. */
void batchDotScaleRange(const float *q, const Matrix &keys, size_t begin,
                        size_t end, float scale, float *out);

/**
 * Fused scan -> score -> select over key rows [begin, end): every row
 * whose sign concordance with query_words reaches `threshold` is
 * scored ((q . key_row) * scale, standard double accumulation) and
 * offered to a bounded top-k heap in `out` (caller storage, capacity
 * >= min(k, end - begin) entries). Survivors stream through in fixed-
 * size tiles; the full survivor index and score vectors are never
 * materialized, and candidates that cannot beat the current k-th
 * entry are rejected with a single compare.
 *
 * Returns the number of entries written to `out`, sorted best-first
 * (score descending, index ascending on ties) — element-for-element
 * identical to running batchConcordanceScan + batchDotScaleAt +
 * topkSelect over the same range, on every backend. When
 * survivor_count is non-null it receives the total number of rows
 * that passed the concordance filter (the SCF survivor statistic).
 */
size_t batchScoreSelect(const uint64_t *query_words,
                        const SignMatrix &signs, size_t begin, size_t end,
                        int threshold, const float *q, const Matrix &keys,
                        float scale, size_t k, ScoredIndex *out,
                        size_t *survivor_count = nullptr);

/** Queries one multi-query kernel call serves at most; the public
 *  drivers below chunk larger groups transparently (each chunk is one
 *  streaming pass). Matches the PFU's per-block query capacity. */
inline constexpr size_t kMaxScanQueries = 16;

/**
 * One contiguous run of physical sign/key rows backing a logical token
 * range — the unit a paged KV cache hands the scan drivers. Storage
 * rows [physBegin, physBegin + count) hold logical tokens
 * [logicalBase, logicalBase + count); a flat cache is the degenerate
 * single span with physBegin == logicalBase. Span lists must ascend in
 * logical order so the *Spans drivers offer candidates in exactly the
 * sequence the contiguous drivers would.
 */
struct ScanSpan
{
    size_t physBegin = 0;
    size_t count = 0;
    size_t logicalBase = 0;
};

/**
 * Span-list flavour of batchScanMulti: scans every span in order and
 * emits LOGICAL token indices (each span's physical rows remapped by
 * its logicalBase), appended per query at survivors + q * stride in
 * ascending logical order; counts[q] receives the total. stride must
 * be >= the summed span length. When span_survivors is non-null,
 * span_survivors[s] receives span s's survivor total summed over all
 * queries (the SCF residency statistic). On a single span with
 * physBegin == logicalBase this is element-identical to batchScanMulti
 * over [physBegin, physBegin + count).
 */
void batchScanMultiSpans(const uint64_t *query_words, size_t num_queries,
                         const SignMatrix &m, const ScanSpan *spans,
                         size_t num_spans, int threshold,
                         uint32_t *survivors, size_t stride, size_t *counts,
                         size_t *span_survivors = nullptr);

/**
 * Multi-query SCF survivor scan over rows [begin, end): query q's
 * packed sign words live at query_words + q * m.wordsPerRow() (see
 * packSigns); its survivors land at survivors + q * stride in
 * ascending row order and counts[q] receives how many. `stride` must
 * be >= end - begin and `counts` holds num_queries entries (zeroed by
 * this call). Per query, output is identical to batchConcordanceScan
 * with that query alone — but all queries in a chunk share one pass
 * over the sign rows.
 */
void batchScanMulti(const uint64_t *query_words, size_t num_queries,
                    const SignMatrix &m, size_t begin, size_t end,
                    int threshold, uint32_t *survivors, size_t stride,
                    size_t *counts);

/**
 * Multi-query flavour of concordanceBitmap: out + q * 2 receives
 * query q's 128-bit survivor bitmap over keys [begin, begin +
 * num_keys). One pass over the block's sign rows serves every query;
 * per query the bitmap equals the single-query concordanceBitmap.
 */
void concordanceBitmapMulti(const uint64_t *query_words,
                            size_t num_queries, const SignMatrix &m,
                            size_t begin, uint32_t num_keys,
                            int threshold, uint64_t *out);

/**
 * Multi-query fused scan -> score -> select: batchScoreSelect for a
 * whole query group in one pass over the sign rows and key tiles.
 * Query q's packed signs are at query_words + q * signs.wordsPerRow(),
 * its float vector at queries + q * query_stride, its result heap at
 * out + q * out_stride (out_stride >= min(k, end - begin)), and
 * out_sizes[q] receives its entry count (sorted best-first). When
 * survivor_counts is non-null, survivor_counts[q] receives query q's
 * SCF survivor total. Every per-query output is element-identical to
 * batchScoreSelect run with that query alone, on every backend; the
 * shared pass only changes how many times the sign rows and survivor
 * key tiles travel through the cache hierarchy (once per chunk of
 * kMaxScanQueries queries instead of once per query).
 */
void batchScoreSelectMulti(const uint64_t *query_words,
                           size_t num_queries, const SignMatrix &signs,
                           size_t begin, size_t end, int threshold,
                           const float *queries, size_t query_stride,
                           const Matrix &keys, float scale, size_t k,
                           ScoredIndex *out, size_t out_stride,
                           size_t *out_sizes,
                           size_t *survivor_counts = nullptr);

/**
 * Span-list flavour of batchScoreSelectMulti — the fused scan -> score
 * -> select driver a paged KV cache's block table feeds. Spans stream
 * through in list order: within each span the scan and dot kernels see
 * the span's contiguous physical rows (signs and keys address the same
 * storage layout), while the indices offered to the per-query top-k
 * heaps are remapped to LOGICAL token indices. Because span lists
 * ascend logically and remapping never reorders candidates, every
 * per-query selection is element-identical to the contiguous driver
 * run over an equivalent flat layout — block size cannot change a
 * result, only which storage rows the tiles travel through. When
 * span_survivors is non-null, span_survivors[s] receives span s's
 * survivor total summed over the whole query group (the per-block SCF
 * counter that drives tier promotion/eviction).
 */
void batchScoreSelectMultiSpans(
    const uint64_t *query_words, size_t num_queries,
    const SignMatrix &signs, const ScanSpan *spans, size_t num_spans,
    int threshold, const float *queries, size_t query_stride,
    const Matrix &keys, float scale, size_t k, ScoredIndex *out,
    size_t out_stride, size_t *out_sizes,
    size_t *survivor_counts = nullptr, size_t *span_survivors = nullptr);

/**
 * Mixed-precision survivor scoring over an INT8 key arena: out[j] =
 * float(acc * scales[row]) * post_scale, where acc is the ascending
 * double-precision sum of q[d] * int8 key row d (the dotQuantized
 * contract) and row is indices[j]. `keys` is a row-major arena of dim
 * int8s per row with one float scale per row — exactly the layout
 * KvCache::enableKeyQuantization / KvBlockPool::ensureQuantized
 * maintain. post_scale folds the attention scale into the same float
 * multiply the unfused scoreKey path performs; pass 1.0f for the bare
 * dotQuantized result (x * 1.0f is exact). Bit-identical across
 * backends.
 */
void batchQuantDotAt(const float *q, const int8_t *keys,
                     const float *scales, size_t dim,
                     const uint32_t *indices, size_t count,
                     float post_scale, float *out);

/** Range flavour: out[i - begin] over arena rows [begin, end). */
void batchQuantDotRange(const float *q, const int8_t *keys,
                        const float *scales, size_t dim, size_t begin,
                        size_t end, float post_scale, float *out);

/**
 * Exact INT8 x INT8 batch dot: out[j] = sum_d q[d] * key_row[d] in
 * int32, row = indices[j] (or first + j when indices is null). Pure
 * integer math — overflow-free for dim <= 2^17 at the +-127 range
 * quantizeInt8Into produces — so every backend (scalar, AVX2
 * maddubs, AVX-512 VNNI) is bit-identical by construction. This is
 * the INT8 filter's estimation primitive: both query and key are
 * quantized, and the float estimate float(out[j]) * (q_scale *
 * key_scale) is derived by the callers under one shared contract.
 */
void batchInt8DotAt(const int8_t *q, const int8_t *keys, size_t dim,
                    const uint32_t *indices, size_t count, int32_t *out);

/** Range flavour of batchInt8DotAt over arena rows [begin, end). */
void batchInt8DotRange(const int8_t *q, const int8_t *keys, size_t dim,
                       size_t begin, size_t end, int32_t *out);

/**
 * Fused quantized scan -> score -> select, mirroring batchScoreSelect:
 * rows in [begin, end) passing the sign-concordance threshold are
 * scored against the INT8 key arena (batchQuantDotAt contract:
 * float(acc * scales[row]) * post_scale) and offered to a bounded
 * top-k heap in `out` (capacity >= min(k, end - begin)). Returns the
 * entry count, sorted best-first; survivor_count receives the SCF
 * survivor total when non-null. Element-identical on every backend to
 * scan + per-survivor scoreKey * post_scale.
 */
size_t batchQuantScoreSelect(const uint64_t *query_words,
                             const SignMatrix &signs, size_t begin,
                             size_t end, int threshold, const float *q,
                             const int8_t *keys, const float *scales,
                             size_t dim, float post_scale, size_t k,
                             ScoredIndex *out,
                             size_t *survivor_count = nullptr);

/**
 * Span-list, multi-query flavour of batchQuantScoreSelect — the
 * paged-KV fused driver for quantized scoring, structured exactly like
 * batchScoreSelectMultiSpans: the scan and INT8 dot kernels see each
 * span's contiguous physical rows (sign rows, arena rows, and scales
 * share the physical layout) while the indices offered to the
 * per-query heaps are remapped to logical token ids. Per query the
 * selection is element-identical to scanning and scoring the
 * equivalent flat layout, on every backend.
 */
void batchQuantScoreSelectMultiSpans(
    const uint64_t *query_words, size_t num_queries,
    const SignMatrix &signs, const ScanSpan *spans, size_t num_spans,
    int threshold, const float *queries, size_t query_stride,
    const int8_t *keys, const float *scales, size_t dim,
    float post_scale, size_t k, ScoredIndex *out, size_t out_stride,
    size_t *out_sizes, size_t *survivor_counts = nullptr,
    size_t *span_survivors = nullptr);

/**
 * Fused INT8-estimation score -> select over arena rows [begin, end):
 * EVERY row is scored with the exact integer dot (batchInt8DotAt) and
 * the float estimate float(idot) * ((q_scale * post_scale) *
 * scales[row]) — one fixed multiplication order, so selections are
 * deterministic and backend-independent — then offered to a bounded
 * top-k heap in `out` (capacity >= min(k, end - begin)). Returns the
 * entry count, sorted best-first. This is the INT8 FilterBackend's
 * candidate selector: where SCF scans 1-bit signatures and scores
 * survivors, this estimates 8-bit scores for the whole range and
 * keeps the top k.
 */
size_t batchInt8ScoreSelect(const int8_t *q8, float q_scale,
                            const int8_t *keys, const float *scales,
                            size_t dim, size_t begin, size_t end,
                            float post_scale, size_t k, ScoredIndex *out);

/**
 * Span-list, multi-query flavour of batchInt8ScoreSelect: query q's
 * int8 vector lives at q8s + q * dim with scale q_scales[q]; its heap
 * at out + q * out_stride (capacity >= min(k, total span tokens)) and
 * out_sizes[q] receives the entry count (sorted best-first). Heap
 * indices are logical token ids; estimation reads the spans' physical
 * arena rows. When span_candidates is non-null, span_candidates[s]
 * receives num_queries * spans[s].count — every row is a candidate
 * under estimation, the analogue of the SCF span survivor counter for
 * residency accounting.
 */
void batchInt8ScoreSelectMultiSpans(
    const int8_t *q8s, const float *q_scales, size_t num_queries,
    const int8_t *keys, const float *scales, size_t dim,
    const ScanSpan *spans, size_t num_spans, float post_scale, size_t k,
    ScoredIndex *out, size_t out_stride, size_t *out_sizes,
    size_t *span_candidates = nullptr);

namespace detail {

/** Raw-pointer kernel table one backend fills in. */
struct KernelOps
{
    /** out[r] = dim - popcount(signs_row_r XOR q), rows rows. */
    void (*concordance)(const uint64_t *q, const uint64_t *signs,
                        size_t words_per_row, size_t rows, int dim,
                        int32_t *out);
    /** Write base+r for rows passing threshold to out (caller storage,
     *  capacity >= rows); returns the count. */
    size_t (*scan)(const uint64_t *q, const uint64_t *signs,
                   size_t words_per_row, size_t rows, int dim,
                   int threshold, uint32_t base, uint32_t *out);
    /** Set bit r of out[2] for rows passing threshold (rows <= 128). */
    void (*bitmap)(const uint64_t *q, const uint64_t *signs,
                   size_t words_per_row, size_t rows, int dim,
                   int threshold, uint64_t out[2]);
    /** out[j] = float(sum_d q[d]*key_row[d]) * scale; row j is
     *  keys + idx[j]*stride when idx, keys + (first+j)*stride else. */
    void (*dotAt)(const float *q, const float *keys, size_t stride,
                  size_t dim, const uint32_t *idx, size_t first,
                  size_t count, float scale, float *out);
    /** One streaming pass over `rows` sign rows serving num_queries
     *  (<= kMaxScanQueries) queries: query q's words start at
     *  qs + q * words_per_row, its survivors append at
     *  out + q * stride + counts[q], and counts[q] advances in place
     *  (callers zero counts before the first tile, so tiles
     *  accumulate). Per query identical to scan(). */
    void (*scanMulti)(const uint64_t *qs, size_t num_queries,
                      const uint64_t *signs, size_t words_per_row,
                      size_t rows, int dim, int threshold, uint32_t base,
                      uint32_t *out, size_t stride, size_t *counts);
    /** One pass over rows <= 128 sign rows filling out + q * 2 with
     *  query q's survivor bitmap (out fully overwritten). Per query
     *  identical to bitmap(). */
    void (*bitmapMulti)(const uint64_t *qs, size_t num_queries,
                        const uint64_t *signs, size_t words_per_row,
                        size_t rows, int dim, int threshold,
                        uint64_t *out);
    /** Per-bit majority over `rows` packed sign rows: bit b of out is
     *  set iff 2 * count_set(b) >= rows (ties round to set). out holds
     *  words_per_row words, fully overwritten. rows >= 1. */
    void (*signReduce)(const uint64_t *signs, size_t words_per_row,
                       size_t rows, uint64_t *out);
    /** Mixed float-query x INT8-key scoring: out[j] = float(acc *
     *  scales[row]) * post_scale with acc the ascending double sum of
     *  q[d] * key_row[d]; row is keys + idx[j]*stride when idx,
     *  keys + (first+j)*stride else (scales indexed the same way).
     *  Exactly dotQuantized's rounding followed by one float multiply
     *  — every backend preserves this order bit-for-bit. */
    void (*quantDotAt)(const float *q, const int8_t *keys,
                       const float *scales, size_t stride, size_t dim,
                       const uint32_t *idx, size_t first, size_t count,
                       float post_scale, float *out);
    /** Exact int32 dot of an int8 query against int8 key rows; same
     *  idx/first row addressing as dotAt. Integer math — backends are
     *  free to reassociate (maddubs / vpdpbusd) because the result is
     *  exact either way. */
    void (*int8DotAt)(const int8_t *q, const int8_t *keys, size_t stride,
                      size_t dim, const uint32_t *idx, size_t first,
                      size_t count, int32_t *out);
};

/**
 * Carry-save majority vote down ONE word column: counts bit
 * occupancy across `rows` packed rows in bit-sliced binary planes and
 * compares each of the 64 bit positions against (rows + 1) / 2
 * without ever materializing per-bit integers. Shared by the SIMD
 * backends for word columns left over after their vector width; the
 * scalar backend deliberately uses a naive per-bit counting loop
 * instead, so kernel-parity fuzzing exercises this logic against an
 * independent oracle.
 */
inline uint64_t
signReduceColumnCsa(const uint64_t *signs, size_t words_per_row,
                    size_t rows, size_t col)
{
    // planes[k] holds bit k of each position's running count.
    uint64_t planes[32] = {};
    size_t used = 0;
    for (size_t r = 0; r < rows; ++r) {
        uint64_t carry = signs[r * words_per_row + col];
        for (size_t k = 0; carry != 0; ++k) {
            const uint64_t sum = planes[k] ^ carry;
            carry = planes[k] & carry;
            planes[k] = sum;
            if (k >= used)
                used = k + 1;
        }
    }
    // Bit-sliced compare count >= t, walking planes MSB-first: a
    // position is decided greater the first time its count bit beats
    // t's bit while still tied; positions still tied at the end are
    // equal, and equal passes (>=).
    const uint64_t t = (rows + 1) / 2;
    // Every count fits in `used` planes, so count < 2^used; when t
    // needs a higher bit, no position can reach it.
    if ((t >> used) != 0)
        return 0;
    uint64_t ge = 0;
    uint64_t eq = ~uint64_t{0};
    for (size_t k = used; k-- > 0;) {
        const uint64_t plane = planes[k];
        if ((t >> k) & 1) {
            eq &= plane;
        } else {
            ge |= eq & plane;
            eq &= ~plane;
        }
    }
    return ge | eq;
}

/** nullptr when the backend is not compiled into this binary. */
const KernelOps *scalarKernelOps();
const KernelOps *avx2KernelOps();
const KernelOps *neonKernelOps();

} // namespace detail

} // namespace longsight

#endif // LONGSIGHT_TENSOR_KERNELS_HH

/**
 * @file
 * Dense linear-algebra kernels over Matrix/float vectors: GEMM, GEMV,
 * dot products, norms, transpose, Gram-Schmidt QR (for random orthogonal
 * initialization in ITQ), and small utilities shared by the attention
 * and quantization code.
 */

#ifndef LONGSIGHT_TENSOR_LINALG_HH
#define LONGSIGHT_TENSOR_LINALG_HH

#include <cstddef>
#include <vector>

#include "tensor/tensor.hh"

namespace longsight {

class Rng;

/** Dot product of two length-n float spans. */
float dot(const float *a, const float *b, size_t n);

/** Euclidean norm of a length-n float span. */
float norm2(const float *a, size_t n);

/** c = a * b  (a: m x k, b: k x n). */
Matrix matmul(const Matrix &a, const Matrix &b);

/** c = a * b^T (a: m x k, b: n x k) — the attention QK^T shape. */
Matrix matmulBt(const Matrix &a, const Matrix &b);

/** y = a * x  (a: m x n, x: length n). */
std::vector<float> gemv(const Matrix &a, const std::vector<float> &x);

/** y = a^T * x (a: m x n, x: length m). */
std::vector<float> gemvT(const Matrix &a, const std::vector<float> &x);

/** gemvT into caller storage (y: length a.cols(), overwritten). */
void gemvT(const Matrix &a, const float *x, float *y);

/** Transposed copy. */
Matrix transpose(const Matrix &a);

/** Frobenius norm of the difference a - b. */
float frobeniusDiff(const Matrix &a, const Matrix &b);

/** Max |a[i,j] - b[i,j]|. */
float maxAbsDiff(const Matrix &a, const Matrix &b);

/**
 * Random orthogonal matrix of order n: QR of a Gaussian matrix via
 * modified Gram-Schmidt, sign-corrected so the distribution is Haar.
 */
Matrix randomOrthogonal(size_t n, Rng &rng);

/**
 * Check ||Q^T Q - I||_max <= tol.
 */
bool isOrthogonal(const Matrix &q, float tol = 1e-3f);

} // namespace longsight

#endif // LONGSIGHT_TENSOR_LINALG_HH

/**
 * @file
 * Thread-safety-annotated synchronization wrappers.
 *
 * libstdc++'s std::mutex carries no clang thread-safety attributes, so
 * code locking it directly gets nothing from -Wthread-safety. These
 * thin wrappers are the project's lockable vocabulary: a Mutex or
 * SpinLock member is a named capability, the state it protects is
 * declared LS_GUARDED_BY(it), and clang then proves at compile time
 * that every access happens under the right lock (the clang CI rows
 * build with -Wthread-safety promoted to -Werror).
 *
 * The same wrappers are the race lint's lock vocabulary: SpinGuard /
 * MutexLock construction and Mutex::lock / SpinLock::lock calls at
 * project call sites are the acquisition events its lock-order checker
 * orders (tools/lint/ls_race_lint.py).
 *
 * Zero-cost: every method is a single inlined call onto the std or
 * atomic primitive underneath; under GCC the attribute macros expand
 * to nothing.
 *
 * Condition waits use explicit predicate loops at the call site:
 *
 *     MutexLock lock(mu_);
 *     while (!ready_)      // ready_ is LS_GUARDED_BY(mu_)
 *         cv_.wait(mu_);
 *
 * (A lambda-predicate wait would be analyzed as a separate function
 * reading guarded state without the REQUIRES context and fail the
 * analysis; the explicit loop keeps every guarded access inside the
 * locked scope clang can see.)
 */

#ifndef LONGSIGHT_UTIL_SYNC_HH
#define LONGSIGHT_UTIL_SYNC_HH

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hh"

namespace longsight {

/** std::mutex as a named clang capability. */
class LS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() LS_ACQUIRE() { mu_.lock(); }
    void unlock() LS_RELEASE() { mu_.unlock(); }
    bool tryLock() LS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class CondVar; //!< waits on the wrapped std::mutex directly
    std::mutex mu_;
};

/** Scoped Mutex holder (the annotated lock_guard). */
class LS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) LS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() LS_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable over Mutex. wait() declares via LS_REQUIRES that
 * the caller holds the mutex, and callers loop on their predicate
 * explicitly (see the file comment). Built on std::condition_variable
 * over the wrapped std::mutex, NOT condition_variable_any: the _any
 * flavour heap-allocates its internal shared mutex at construction,
 * which would break allocation-free callers that build a CondVar per
 * operation (ThreadPool's stack-resident Job does).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release `mu`, sleep, and reacquire before return. */
    void wait(Mutex &mu) LS_REQUIRES(mu)
    {
        // The caller holds mu; adopt it for the wait protocol and
        // release() after so the unique_lock dtor leaves it held.
        std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
        cv_.wait(lock);
        lock.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

/**
 * Tiny test-and-set spinlock as a named capability: for critical
 * sections of a handful of vector ops, far shorter than a futex round
 * trip (KvBlockPool's free-list/refcount updates).
 */
class LS_CAPABILITY("spinlock") SpinLock
{
  public:
    SpinLock() = default;
    SpinLock(const SpinLock &) = delete;
    SpinLock &operator=(const SpinLock &) = delete;

    void lock() LS_ACQUIRE()
    {
        while (flag_.test_and_set(std::memory_order_acquire)) {
        }
    }
    void unlock() LS_RELEASE() { flag_.clear(std::memory_order_release); }

  private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/** Scoped SpinLock holder. */
class LS_SCOPED_CAPABILITY SpinGuard
{
  public:
    explicit SpinGuard(SpinLock &l) LS_ACQUIRE(l) : lock_(l)
    {
        lock_.lock();
    }
    ~SpinGuard() LS_RELEASE() { lock_.unlock(); }

    SpinGuard(const SpinGuard &) = delete;
    SpinGuard &operator=(const SpinGuard &) = delete;

  private:
    SpinLock &lock_;
};

} // namespace longsight

#endif // LONGSIGHT_UTIL_SYNC_HH

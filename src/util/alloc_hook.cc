#include "util/alloc_hook.hh"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace longsight {
namespace {

std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};
std::atomic<uint64_t> g_bytes{0};

void *
countedAlloc(std::size_t size, std::size_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
    void *p = align > alignof(std::max_align_t)
        ? std::aligned_alloc(align,
                             (size + align - 1) / align * align)
        : std::malloc(size);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void
countedFree(void *p) noexcept
{
    if (!p)
        return;
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

} // namespace

AllocCounters
allocSnapshot()
{
    return {g_allocs.load(std::memory_order_relaxed),
            g_frees.load(std::memory_order_relaxed),
            g_bytes.load(std::memory_order_relaxed)};
}

bool
allocHookActive()
{
    return true;
}

} // namespace longsight

// Replaceable global allocation functions (throwing, nothrow, sized,
// and aligned forms all funnel through the two counted primitives).
void *
operator new(std::size_t size)
{
    return longsight::countedAlloc(size, alignof(std::max_align_t));
}

void *
operator new[](std::size_t size)
{
    return longsight::countedAlloc(size, alignof(std::max_align_t));
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return longsight::countedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return longsight::countedAlloc(size, static_cast<std::size_t>(align));
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return longsight::countedAlloc(size, alignof(std::max_align_t));
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return longsight::countedAlloc(size, alignof(std::max_align_t));
    } catch (...) {
        return nullptr;
    }
}

void
operator delete(void *p) noexcept
{
    longsight::countedFree(p);
}

void
operator delete[](void *p) noexcept
{
    longsight::countedFree(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    longsight::countedFree(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    longsight::countedFree(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    longsight::countedFree(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    longsight::countedFree(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    longsight::countedFree(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    longsight::countedFree(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    longsight::countedFree(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    longsight::countedFree(p);
}

/**
 * @file
 * Per-thread scratch memory for the decode hot path. The SCF → score →
 * rank pipeline needs several short-lived buffers per (step, layer,
 * head): survivor indices, score tiles, top-k heaps, attended-index
 * lists, filter-space queries, softmax probabilities. Allocating them
 * from the global heap on every call dominated the host profile once
 * the scan itself went SIMD; a bump allocator that each thread-pool
 * lane owns makes all of them free after warmup.
 *
 * Model:
 *  - ScratchArena hands out uninitialized, aligned typed spans with a
 *    bump pointer. Allocation is O(1) and never constructs objects —
 *    only trivially copyable/destructible types are allowed.
 *  - ScratchFrame is the RAII unit of use: it records the arena cursor
 *    on entry and rewinds it on exit, so nested users (computeHead
 *    inside a DecodePipeline lane inside a bench loop) compose with
 *    stack discipline. Spans die with their frame; never store one.
 *  - When a request does not fit, the arena grows by chaining an
 *    overflow block (a real heap allocation — this is the warmup
 *    path). The next time the arena is completely rewound it coalesces
 *    to a single block sized to the observed high-water mark, so a
 *    steady-state workload settles to exactly zero heap traffic.
 *  - forThisThread() returns the calling thread's arena (thread_local
 *    storage). ThreadPool lanes are plain threads, so every lane —
 *    including the caller participating in parallelFor — owns one
 *    arena that persists across parallelFor invocations; warmup
 *    happens once per lane, not once per call. Ownership rule: scratch
 *    memory never crosses a lane boundary (hand results to other
 *    threads via per-index slots, as DESIGN.md's parallel layer
 *    already requires).
 */

#ifndef LONGSIGHT_UTIL_SCRATCH_ARENA_HH
#define LONGSIGHT_UTIL_SCRATCH_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace longsight {

/**
 * Growable bump allocator for trivially destructible scratch data.
 */
class ScratchArena
{
  public:
    /** @param initial_bytes starting block size (0 defers the first
     *         block to the first allocation). */
    explicit ScratchArena(size_t initial_bytes = 0);

    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /**
     * Allocate n elements of T, aligned to alignof(T) (or 64 bytes for
     * types that ask for more via alignas). Contents are
     * uninitialized. T must be trivially copyable and destructible —
     * the arena never runs constructors or destructors.
     */
    template <class T>
    T *alloc(size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "scratch memory never runs destructors");
        static_assert(std::is_trivially_copyable_v<T>,
                      "scratch memory never runs constructors");
        return static_cast<T *>(
            allocBytes(n * sizeof(T), alignof(T)));
    }

    /** Bytes handed out since the last full rewind. */
    size_t used() const { return used_; }

    /** Largest used() ever observed (what coalescing sizes to). */
    size_t highWater() const { return highWater_; }

    /** Total bytes owned across blocks. */
    size_t capacity() const;

    /** Heap allocations the arena itself performed (growth events). */
    uint64_t growths() const { return growths_; }

    /**
     * The calling thread's arena. Each thread-pool lane (and the main
     * thread) gets its own instance on first use; it lives until the
     * thread exits.
     */
    static ScratchArena &forThisThread();

  private:
    friend class ScratchFrame;

    struct Block
    {
        std::unique_ptr<std::byte[]> mem;
        size_t size = 0;
    };

    /** Cursor state a frame saves and restores. */
    struct Mark
    {
        size_t block;
        size_t offset;
        size_t used;
    };

    void *allocBytes(size_t bytes, size_t align);
    Mark mark() const { return {current_, cursor_, used_}; }
    void rewind(const Mark &m);

    std::vector<Block> blocks_;
    size_t current_ = 0; //!< block being bumped
    size_t cursor_ = 0;  //!< offset into blocks_[current_]
    size_t used_ = 0;
    size_t highWater_ = 0;
    uint64_t growths_ = 0;
};

/**
 * RAII scope over a ScratchArena: every span allocated inside the
 * frame is reclaimed (cursor rewind, no destructors) when the frame
 * dies. Frames must nest like stack frames.
 */
class ScratchFrame
{
  public:
    explicit ScratchFrame(ScratchArena &arena)
        : arena_(arena), mark_(arena.mark())
    {
    }

    ~ScratchFrame() { arena_.rewind(mark_); }

    ScratchFrame(const ScratchFrame &) = delete;
    ScratchFrame &operator=(const ScratchFrame &) = delete;

    ScratchArena &arena() { return arena_; }

    /** Shorthand for arena().alloc<T>(n) inside this frame. */
    template <class T>
    T *alloc(size_t n)
    {
        return arena_.alloc<T>(n);
    }

  private:
    ScratchArena &arena_;
    ScratchArena::Mark mark_;
};

} // namespace longsight

#endif // LONGSIGHT_UTIL_SCRATCH_ARENA_HH

/**
 * @file
 * Simulation time and size units. All simulator timing is carried in
 * picoseconds as a 64-bit Tick so different clock domains (LPDDR5X
 * core clock, NMA logic clock, CXL link) compose without rounding.
 */

#ifndef LONGSIGHT_UTIL_UNITS_HH
#define LONGSIGHT_UTIL_UNITS_HH

#include <cstdint>

namespace longsight {

/** Simulated time in picoseconds. */
using Tick = uint64_t;

constexpr Tick kPicosecond = 1;
constexpr Tick kNanosecond = 1000 * kPicosecond;
constexpr Tick kMicrosecond = 1000 * kNanosecond;
constexpr Tick kMillisecond = 1000 * kMicrosecond;
constexpr Tick kSecond = 1000 * kMillisecond;

/** Convert ticks to double-precision seconds / micro / nanoseconds. */
constexpr double toSeconds(Tick t) { return static_cast<double>(t) / 1e12; }
constexpr double toMicroseconds(Tick t) { return static_cast<double>(t) / 1e6; }
constexpr double toNanoseconds(Tick t) { return static_cast<double>(t) / 1e3; }

/** Convert a duration in nanoseconds (may be fractional) to ticks. */
constexpr Tick
fromNanoseconds(double ns)
{
    return static_cast<Tick>(ns * 1e3 + 0.5);
}

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * kKiB;
constexpr uint64_t kGiB = 1024 * kMiB;

/**
 * Time to move `bytes` at `gbps` GB/s (decimal GB), in ticks.
 */
constexpr Tick
transferTime(uint64_t bytes, double gbytes_per_s)
{
    return static_cast<Tick>(static_cast<double>(bytes) /
                             (gbytes_per_s * 1e9) * 1e12 + 0.5);
}

} // namespace longsight

#endif // LONGSIGHT_UTIL_UNITS_HH

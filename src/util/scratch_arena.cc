#include "util/scratch_arena.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

namespace {

/** Every block is at least this big so tiny first allocations do not
 *  cause a cascade of growths during warmup. */
constexpr size_t kMinBlockBytes = 64 * 1024;

size_t
alignUp(size_t v, size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace

ScratchArena::ScratchArena(size_t initial_bytes)
{
    if (initial_bytes > 0) {
        Block b;
        b.size = alignUp(initial_bytes, 64);
        // LS_LINT_ALLOW(alloc): arena pre-size, construction time
        b.mem = std::make_unique<std::byte[]>(b.size);
        // LS_LINT_ALLOW(alloc): arena pre-size, construction time
        blocks_.push_back(std::move(b));
        ++growths_;
    }
}

size_t
ScratchArena::capacity() const
{
    size_t total = 0;
    for (const Block &b : blocks_)
        total += b.size;
    return total;
}

void *
ScratchArena::allocBytes(size_t bytes, size_t align)
{
    LS_ASSERT((align & (align - 1)) == 0, "alignment must be a power of 2");
    // Arena blocks start 64-byte aligned (operator new for std::byte[]
    // of this size is at least 16-aligned; we over-align cursors
    // manually), so aligning the cursor suffices.
    align = std::max<size_t>(align, alignof(std::max_align_t));

    for (;;) {
        if (current_ < blocks_.size()) {
            Block &b = blocks_[current_];
            const size_t base = reinterpret_cast<size_t>(b.mem.get());
            const size_t at = alignUp(base + cursor_, align) - base;
            if (at + bytes <= b.size) {
                cursor_ = at + bytes;
                used_ += bytes;
                highWater_ = std::max(highWater_, used_);
                return b.mem.get() + at;
            }
            // Spill to the next block (freshly grown or left over from
            // an earlier, larger cycle).
            if (current_ + 1 < blocks_.size()) {
                ++current_;
                cursor_ = 0;
                continue;
            }
        }
        // Growth (warmup) path: chain a block big enough for the
        // request and for geometric growth overall.
        Block b;
        b.size = std::max({kMinBlockBytes, alignUp(bytes + align, 64),
                           capacity()});
        // LS_LINT_ALLOW(alloc): warmup growth; capacity persists
        b.mem = std::make_unique<std::byte[]>(b.size);
        // LS_LINT_ALLOW(alloc): warmup growth; capacity persists
        blocks_.push_back(std::move(b));
        current_ = blocks_.size() - 1;
        cursor_ = 0;
        ++growths_;
    }
}

void
ScratchArena::rewind(const Mark &m)
{
    current_ = m.block;
    cursor_ = m.offset;
    used_ = m.used;
    // A full rewind with more than one block means some cycle spilled:
    // coalesce to a single block covering the high-water mark so the
    // next cycles run block-local and allocation-free.
    if (used_ == 0 && blocks_.size() > 1) {
        // Slack over the high-water byte count absorbs per-allocation
        // alignment padding, which used_ does not track; if a later
        // cycle still spills, the next coalesce simply sizes larger.
        const size_t want = alignUp(
            std::max(kMinBlockBytes, highWater_ + highWater_ / 4 + 1024),
            64);
        blocks_.clear();
        Block b;
        b.size = want;
        // LS_LINT_ALLOW(alloc): post-spill coalesce, then block-local
        b.mem = std::make_unique<std::byte[]>(b.size);
        // LS_LINT_ALLOW(alloc): post-spill coalesce, then block-local
        blocks_.push_back(std::move(b));
        ++growths_;
        current_ = 0;
        cursor_ = 0;
    }
}

ScratchArena &
ScratchArena::forThisThread()
{
    thread_local ScratchArena arena;
    return arena;
}

} // namespace longsight

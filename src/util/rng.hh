/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * All randomness in the library flows through Rng so a single seed fully
 * determines workloads, synthetic models, and simulator decisions.
 * The generator is xoshiro256** (Blackman & Vigna), which is fast,
 * high-quality, and trivially seedable from a single 64-bit value.
 */

#ifndef LONGSIGHT_UTIL_RNG_HH
#define LONGSIGHT_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace longsight {

/**
 * A deterministic PRNG with convenience distributions.
 *
 * Copyable and cheap; pass by value to fork an independent-but-
 * deterministic stream, or by reference to share one stream.
 */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit value. */
    explicit Rng(uint64_t seed = 0x1005'51e5'eed5ULL);

    /** Next raw 64-bit output. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t below(uint64_t n);

    /** Standard normal via Box-Muller (cached second value). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** A vector of n iid standard normals. */
    std::vector<float> gaussianVec(size_t n);

    /** Fisher-Yates shuffle of [0, n) indices. */
    std::vector<uint32_t> permutation(uint32_t n);

    /** Fork a new independent generator deterministically. */
    Rng fork();

  private:
    uint64_t s_[4];
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace longsight

#endif // LONGSIGHT_UTIL_RNG_HH

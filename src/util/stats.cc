#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace longsight {

void
RunningStat::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const uint64_t total = n_ + other.n_;
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    mean_ += delta * nb / static_cast<double>(total);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
    n_ = total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    // Sample (n-1) variance: these summaries report the spread of a
    // sampled distribution, not of an exhaustive population.
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    LS_ASSERT(hi > lo && bins > 0, "degenerate histogram range");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    const double t = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<int64_t>(t * static_cast<double>(counts_.size()));
    bin = std::clamp<int64_t>(bin, 0, static_cast<int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(bin)];
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<uint64_t>(q * static_cast<double>(total_));
    // Out-of-range samples keep their rank instead of folding into the
    // edge bins: a tail beyond hi_ now pushes high quantiles to hi_
    // rather than silently reporting the top bin's midpoint.
    if (target < underflow_)
        return lo_;
    uint64_t cum = underflow_;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] && cum + counts_[i] > target) {
            // Interpolate within the bin: the (target - cum)-th of the
            // bin's counts_[i] samples sits a fraction of the way
            // through the bin's width (+0.5 centers each sample in its
            // equal share). A one-sample bin reproduces the old
            // midpoint; spread samples no longer snap to it.
            const double frac =
                (static_cast<double>(target - cum) + 0.5) /
                static_cast<double>(counts_[i]);
            return lo_ + (static_cast<double>(i) + frac) * width;
        }
        cum += counts_[i];
    }
    return hi_;
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << "n=" << total_ << " p50=" << quantile(0.5) << " p90=" << quantile(0.9)
       << " p99=" << quantile(0.99);
    if (underflow_ || overflow_)
        os << " under=" << underflow_ << " over=" << overflow_;
    return os.str();
}

} // namespace longsight

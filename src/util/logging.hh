/**
 * @file
 * Status/error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so the failure can be debugged.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid argument); exits with status 1.
 * warn()   — something is suspicious but the run can continue.
 * inform() — plain status output.
 */

#ifndef LONGSIGHT_UTIL_LOGGING_HH
#define LONGSIGHT_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace longsight {

namespace detail {

/** Emit a tagged message to stderr. */
void logMessage(const char *tag, const std::string &msg);

/** Format the variadic arguments into one string via operator<<. */
template <typename... Args>
std::string
formatArgs(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal invariant violation and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::logMessage("panic", detail::formatArgs(std::forward<Args>(args)...));
    std::abort();
}

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::logMessage("fatal", detail::formatArgs(std::forward<Args>(args)...));
    std::exit(1);
}

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logMessage("warn", detail::formatArgs(std::forward<Args>(args)...));
}

/** Report plain status information. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logMessage("info", detail::formatArgs(std::forward<Args>(args)...));
}

/**
 * Check a library invariant; on failure, panic with a message.
 * Unlike assert(), stays active in release builds — the simulators
 * lean on these checks for protocol correctness.
 */
#define LS_ASSERT(cond, ...)                                                  \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::longsight::panic("assertion '", #cond, "' failed at ",          \
                               __FILE__, ":", __LINE__, ": ", __VA_ARGS__);   \
        }                                                                     \
    } while (0)

} // namespace longsight

#endif // LONGSIGHT_UTIL_LOGGING_HH

/**
 * @file
 * Plain-text table rendering for benchmark output. Every figure/table
 * reproduction bench prints its rows through TextTable so the output
 * format is uniform and diffable; writeCsv() mirrors the same data to
 * a machine-readable file when requested.
 */

#ifndef LONGSIGHT_UTIL_TABLE_HH
#define LONGSIGHT_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace longsight {

/**
 * A column-aligned text table with a title and header row.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title);

    /** Set the header row; column count is fixed from here on. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header column count. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Render with padding and separators to the stream. */
    void print(std::ostream &os) const;

    /** Write title-less CSV (header + rows) to the given path. */
    void writeCsv(const std::string &path) const;

    size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace longsight

#endif // LONGSIGHT_UTIL_TABLE_HH

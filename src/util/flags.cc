#include "util/flags.hh"

#include <cstdlib>

#include "util/logging.hh"

namespace longsight {

Flags::Flags(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        const size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc &&
                   std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = ""; // bare switch
        }
    }
}

bool
Flags::has(const std::string &name) const
{
    consumed_.insert(name);
    return values_.count(name) > 0;
}

std::string
Flags::getString(const std::string &name, const std::string &def) const
{
    consumed_.insert(name);
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

int64_t
Flags::getInt(const std::string &name, int64_t def) const
{
    consumed_.insert(name);
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal("flag --", name, " expects an integer, got '", it->second,
              "'");
    return v;
}

double
Flags::getDouble(const std::string &name, double def) const
{
    consumed_.insert(name);
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("flag --", name, " expects a number, got '", it->second,
              "'");
    return v;
}

bool
Flags::getBool(const std::string &name, bool def) const
{
    consumed_.insert(name);
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v.empty() || v == "true" || v == "1")
        return true;
    if (v == "false" || v == "0")
        return false;
    fatal("flag --", name, " expects a boolean, got '", v, "'");
}

std::vector<std::string>
Flags::unconsumed() const
{
    std::vector<std::string> out;
    for (const auto &[name, value] : values_) {
        (void)value;
        if (!consumed_.count(name))
            out.push_back(name);
    }
    return out;
}

} // namespace longsight

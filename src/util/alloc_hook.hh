/**
 * @file
 * Global operator new/delete counting hook for allocation-regression
 * tests and the decode-hot-path bench. Linking the ls_alloc_hook
 * library (and referencing allocCounters()) replaces the global
 * allocation functions with counting wrappers around std::malloc /
 * std::free; nothing else in the library links it, so ordinary builds
 * pay no bookkeeping cost.
 *
 * Counters are process-wide atomics. The intended use is differential:
 * snapshot(), run the region under test, snapshot() again, subtract.
 */

#ifndef LONGSIGHT_UTIL_ALLOC_HOOK_HH
#define LONGSIGHT_UTIL_ALLOC_HOOK_HH

#include <cstdint>

namespace longsight {

/** Monotonic allocation totals since process start. */
struct AllocCounters
{
    uint64_t allocs = 0; //!< operator new calls
    uint64_t frees = 0;  //!< operator delete calls
    uint64_t bytes = 0;  //!< bytes requested through operator new

    AllocCounters operator-(const AllocCounters &o) const
    {
        return {allocs - o.allocs, frees - o.frees, bytes - o.bytes};
    }
};

/** Current totals (relaxed loads; exact when the region is quiescent). */
AllocCounters allocSnapshot();

/** True when the counting operator new is actually linked in. */
bool allocHookActive();

} // namespace longsight

#endif // LONGSIGHT_UTIL_ALLOC_HOOK_HH

#include "util/table.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace longsight {

TextTable::TextTable(std::string title) : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    LS_ASSERT(!header.empty(), "table header must not be empty");
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    LS_ASSERT(row.size() == header_.size(),
              "row width ", row.size(), " != header width ", header_.size());
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;

    os << "== " << title_ << " ==\n";
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        os << "\n";
    };
    emitRow(header_);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emitRow(row);
    os << "\n";
}

void
TextTable::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open '", path, "' for CSV output");
        return;
    }
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            out << row[c];
        }
        out << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace longsight

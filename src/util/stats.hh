/**
 * @file
 * Lightweight statistics accumulators used by the simulators and
 * benchmark harnesses: running mean/min/max/stddev and a fixed-bin
 * histogram for latency distributions.
 */

#ifndef LONGSIGHT_UTIL_STATS_HH
#define LONGSIGHT_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace longsight {

/**
 * Welford-style running summary statistics.
 */
class RunningStat
{
  public:
    /** Fold one sample into the summary. */
    void add(double x);

    /** Fold another summary into this one. */
    void merge(const RunningStat &other);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Sample (n-1) variance (0 for fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width-bin histogram over [lo, hi); out-of-range samples are
 * tracked as underflow/overflow counts rather than folded into the
 * edge bins, so quantiles stay honest when the range is too tight.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    void add(double x);

    uint64_t count() const { return total_; }
    const std::vector<uint64_t> &bins() const { return counts_; }

    /** Samples below lo (counted, ranked at lo in quantiles). */
    uint64_t underflow() const { return underflow_; }

    /** Samples at or above hi (counted, ranked at hi in quantiles). */
    uint64_t overflow() const { return overflow_; }

    /** Approximate quantile (q in [0,1]), linearly interpolated
     *  within the selected bin (a one-sample bin reports its
     *  midpoint; under/overflow samples rank at lo/hi). */
    double quantile(double q) const;

    /** Render a compact ASCII summary for logs. */
    std::string summary() const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
};

} // namespace longsight

#endif // LONGSIGHT_UTIL_STATS_HH

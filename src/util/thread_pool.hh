/**
 * @file
 * Host-side parallel execution layer: a fixed-size worker pool with a
 * parallelFor(begin, end, fn) helper over an index range.
 *
 * The simulator's hot loops (layer x KV-head groups in the decode
 * pipeline, query heads in multi-head attention, per-package NMAs in
 * the DCC) are embarrassingly parallel: every index owns its state and
 * results are merged in a fixed order afterwards. parallelFor matches
 * that shape exactly — it makes no ordering promise *during* the loop,
 * so callers must write results into per-index slots and do any
 * order-sensitive reduction serially after it returns. Used that way,
 * outputs are bit-identical for every thread count.
 *
 * Semantics:
 *  - A pool of `threads` lanes total; the calling thread is one of
 *    them, so `ThreadPool(1)` spawns no workers and parallelFor
 *    degenerates to the exact serial loop.
 *  - Exceptions thrown by `fn` stop the loop early; the first one is
 *    rethrown on the calling thread. The pool stays usable.
 *  - Nested parallelFor calls (from inside a worker) run serially
 *    inline rather than deadlocking on the shared workers.
 *  - ThreadPool::global() is the process-wide pool the library's hot
 *    paths use; configureGlobal(n) (re)builds it, which is how a
 *    `--threads N` flag takes effect.
 */

#ifndef LONGSIGHT_UTIL_THREAD_POOL_HH
#define LONGSIGHT_UTIL_THREAD_POOL_HH

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hh"
#include "util/sync.hh"

namespace longsight {

/**
 * Fixed-size worker pool with an index-range parallel-for helper.
 */
class ThreadPool
{
  public:
    /**
     * @param threads total execution lanes including the caller;
     *        0 means hardwareThreads(), 1 means fully serial.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes (workers + the calling thread). */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /**
     * Run fn(i) for every i in [begin, end), distributed over the
     * pool. Blocks until every index completed (or the loop aborted on
     * an exception, which is rethrown here).
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &fn);

    /**
     * parallelFor for the allocation-free hot paths: wraps `fn` in a
     * single-pointer closure so the std::function fits its small-object
     * buffer and no heap allocation happens at the call site. Use this
     * for lambdas with large capture lists inside decode-step loops;
     * semantics are identical to parallelFor.
     */
    template <class Fn>
    void parallelForEach(size_t begin, size_t end, Fn &&fn)
    {
        // Dispatch shim, exempt from contract traversal: the wrapper
        // std::function is a single pointer (small-object buffer, no
        // heap), the pool machinery below blocks by design, and hot
        // loop BODIES carry their own annotations (the walk cannot see
        // through the type-erased dispatch anyway).
        LS_CONTRACT_EXEMPT();
        Fn *body = &fn;
        const std::function<void(size_t)> wrapped =
            [body](size_t i) { (*body)(i); };
        parallelFor(begin, end, wrapped);
    }

    /** std::thread::hardware_concurrency with a sane floor of 1. */
    static unsigned hardwareThreads();

    /** The process-wide pool used by the library's hot paths. */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of `threads` lanes (0 =
     * hardwareThreads()). Callers must not be inside a parallelFor on
     * the old pool. This is what a `--threads N` flag should call.
     */
    static void configureGlobal(unsigned threads);

  private:
    struct Job;

    void workerLoop();

    /** Pull indices from the job until it is exhausted. */
    static void runIndices(Job &job);

    std::vector<std::thread> workers_;
    Mutex mu_;
    CondVar cv_;
    // FIFO of outstanding jobs. A vector, not a deque: the queue depth
    // is the nesting level of concurrent parallelFor calls (almost
    // always 1), erase-from-front is O(depth), and a vector's capacity
    // persists so steady-state queue traffic performs no heap
    // allocations (deque node churn would).
    std::vector<Job *> queue_ LS_GUARDED_BY(mu_);
    bool stop_ LS_GUARDED_BY(mu_) = false;
};

} // namespace longsight

#endif // LONGSIGHT_UTIL_THREAD_POOL_HH

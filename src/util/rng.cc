#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace longsight {

namespace {

/** SplitMix64 step, used only for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
    // xoshiro must not be seeded with the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 bits of mantissa from the top of the output.
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    LS_ASSERT(n > 0, "Rng::below(0) is meaningless");
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = -n % n;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::vector<float>
Rng::gaussianVec(size_t n)
{
    // LS_LINT_ALLOW(alloc): bulk sampling helper returns fresh storage
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(gaussian());
    return v;
}

std::vector<uint32_t>
Rng::permutation(uint32_t n)
{
    std::vector<uint32_t> p(n);
    for (uint32_t i = 0; i < n; ++i)
        p[i] = i;
    for (uint32_t i = n; i > 1; --i) {
        uint32_t j = static_cast<uint32_t>(below(i));
        std::swap(p[i - 1], p[j]);
    }
    return p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xda3e'39cb'94b9'5bdbULL);
}

} // namespace longsight

/**
 * @file
 * Contract annotations for the hot paths the static-analysis layer
 * (tools/lint) enforces. Placing one of these macros as the FIRST
 * statement of a function (or lambda) body declares a machine-checked
 * contract over everything statically reachable from it:
 *
 *  - LS_HOT_PATH()      no heap allocation: operator new/malloc,
 *                       growing std containers, std::function
 *                       construction are all rejected.
 *  - LS_DETERMINISTIC() no nondeterminism: rand()/time()/chrono
 *                       clocks, std::random_device, and
 *                       unordered-container iteration are rejected.
 *  - LS_NO_LOCK()       no blocking or IO: mutex/condition-variable
 *                       operations and stdio/iostream writes are
 *                       rejected.
 *  - LS_CONTRACT_EXEMPT() stops contract traversal at this function:
 *                       for cold slow paths (arena growth, [[noreturn]]
 *                       failure handlers) that annotated callers may
 *                       legitimately reach. Always pair with a comment
 *                       saying why the exemption is sound.
 *
 * Mechanism: each macro expands to a call to an empty inline marker
 * function. The lint build compiles every TU at -O0 with GCC's
 * -fcallgraph-info, where the marker calls survive as call-graph edges;
 * tools/lint/ls_contract_lint.py treats any function with an edge to a
 * marker as an annotated root (or exempt node) and walks the compiler's
 * own call graph from there. Optimized builds inline the empty markers
 * away, so annotations cost nothing at runtime.
 *
 * Single-site waivers (amortized growth into capacity that persists
 * across steps, e.g. a member vector resized once at warmup) use a
 * comment on the offending call's line or the line directly above:
 *
 *     // LS_LINT_ALLOW(alloc): capacity persists across decode steps
 *
 * with a category of alloc, determinism, or lock. Waivers are for
 * calls whose contract holds in steady state but not syntactically;
 * anything else should be fixed or restructured instead. The runtime
 * gates (core_alloc_regression_test, the bench bit-identity exits)
 * remain the ground truth that waived sites behave as claimed.
 *
 * Annotating a new hot path: put the macro first in the body, run
 * `cmake --build build --target lint`, and fix or waive what it
 * reports. See DESIGN.md "Static analysis & contract enforcement".
 */

#ifndef LONGSIGHT_UTIL_ANNOTATIONS_HH
#define LONGSIGHT_UTIL_ANNOTATIONS_HH

namespace longsight {
namespace contract {

// Empty markers; the names are the ABI the lint tool keys on — do not
// rename without updating tools/lint/ls_contract_lint.py.
inline void ls_hot_path_marker() {}
inline void ls_deterministic_marker() {}
inline void ls_no_lock_marker() {}
inline void ls_contract_exempt_marker() {}

} // namespace contract
} // namespace longsight

#define LS_HOT_PATH() ::longsight::contract::ls_hot_path_marker()
#define LS_DETERMINISTIC() ::longsight::contract::ls_deterministic_marker()
#define LS_NO_LOCK() ::longsight::contract::ls_no_lock_marker()
#define LS_CONTRACT_EXEMPT() ::longsight::contract::ls_contract_exempt_marker()

#endif // LONGSIGHT_UTIL_ANNOTATIONS_HH

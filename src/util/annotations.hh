/**
 * @file
 * Contract annotations for the hot paths the static-analysis layer
 * (tools/lint) enforces. Placing one of these macros as the FIRST
 * statement of a function (or lambda) body declares a machine-checked
 * contract over everything statically reachable from it:
 *
 *  - LS_HOT_PATH()      no heap allocation: operator new/malloc,
 *                       growing std containers, std::function
 *                       construction are all rejected.
 *  - LS_DETERMINISTIC() no nondeterminism: rand()/time()/chrono
 *                       clocks, std::random_device, and
 *                       unordered-container iteration are rejected.
 *  - LS_NO_LOCK()       no blocking or IO: mutex/condition-variable
 *                       operations and stdio/iostream writes are
 *                       rejected.
 *  - LS_CONTRACT_EXEMPT() stops contract traversal at this function:
 *                       for cold slow paths (arena growth, [[noreturn]]
 *                       failure handlers) that annotated callers may
 *                       legitimately reach. Always pair with a comment
 *                       saying why the exemption is sound.
 *
 * Mechanism: each macro expands to a call to an empty inline marker
 * function. The lint build compiles every TU at -O0 with GCC's
 * -fcallgraph-info, where the marker calls survive as call-graph edges;
 * tools/lint/ls_contract_lint.py treats any function with an edge to a
 * marker as an annotated root (or exempt node) and walks the compiler's
 * own call graph from there. Optimized builds inline the empty markers
 * away, so annotations cost nothing at runtime.
 *
 * Single-site waivers (amortized growth into capacity that persists
 * across steps, e.g. a member vector resized once at warmup) use a
 * comment on the offending call's line or the line directly above:
 *
 *     // LS_LINT_ALLOW(alloc): capacity persists across decode steps
 *
 * with a category of alloc, determinism, or lock. Waivers are for
 * calls whose contract holds in steady state but not syntactically;
 * anything else should be fixed or restructured instead. The runtime
 * gates (core_alloc_regression_test, the bench bit-identity exits)
 * remain the ground truth that waived sites behave as claimed.
 *
 * Annotating a new hot path: put the macro first in the body, run
 * `cmake --build build --target lint`, and fix or waive what it
 * reports. See DESIGN.md "Static analysis & contract enforcement".
 *
 * Parallel-safety layer (tools/lint/ls_race_lint.py):
 *
 *  - LS_PARALLEL_BODY() declares a parallelFor/parallelForEach body:
 *                       the race lint BFSes from it and rejects
 *                       reachable plain writes to globals, statics, or
 *                       by-reference captures. Every parallel body must
 *                       carry it (the lint's parallel-root check
 *                       enforces coverage textually).
 *  - LS_LANE_LOCAL(name) declares that `name` (a global/static array
 *                       indexed by lane, or a thread_local) is
 *                       lane-partitioned by construction; the race
 *                       lint stops flagging writes to it. Analysis-
 *                       only: expands to nothing and is grepped from
 *                       source.
 *  - // LS_LINT_ALLOW(race|lockorder|parallel-root): reason
 *                       single-site waiver, same grammar and placement
 *                       as the contract waivers above.
 *
 * Clang thread-safety layer: the LS_CAPABILITY / LS_GUARDED_BY /
 * LS_REQUIRES family below maps to clang's -Wthread-safety attributes
 * (a no-op under GCC). src/util/sync.hh provides the annotated Mutex /
 * MutexLock / CondVar / SpinLock / SpinGuard wrappers; KvBlockPool,
 * ThreadPool, and BlockLedger declare their guarded state with these,
 * and the clang CI rows compile with -Wthread-safety -Werror.
 */

#ifndef LONGSIGHT_UTIL_ANNOTATIONS_HH
#define LONGSIGHT_UTIL_ANNOTATIONS_HH

namespace longsight {
namespace contract {

// Empty markers; the names are the ABI the lint tools key on — do not
// rename without updating tools/lint/ls_contract_lint.py and
// tools/lint/callgraph.py.
inline void ls_hot_path_marker() {}
inline void ls_deterministic_marker() {}
inline void ls_no_lock_marker() {}
inline void ls_contract_exempt_marker() {}
inline void ls_parallel_body_marker() {}

} // namespace contract
} // namespace longsight

#define LS_HOT_PATH() ::longsight::contract::ls_hot_path_marker()
#define LS_DETERMINISTIC() ::longsight::contract::ls_deterministic_marker()
#define LS_NO_LOCK() ::longsight::contract::ls_no_lock_marker()
#define LS_CONTRACT_EXEMPT() ::longsight::contract::ls_contract_exempt_marker()
#define LS_PARALLEL_BODY() ::longsight::contract::ls_parallel_body_marker()

// Analysis-only: declares a name lane-partitioned for the race lint.
// Expands to nothing; usable at namespace, class, or block scope
// (the trailing `;` is an empty declaration).
#define LS_LANE_LOCAL(name) static_assert(true, "LS_LANE_LOCAL")

// ---- clang Thread Safety Analysis attribute family ------------------
// No-ops everywhere except clang; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#if defined(__clang__) && !defined(SWIG)
#define LS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LS_THREAD_ANNOTATION(x)
#endif

// On a class: instances are lockable capabilities.
#define LS_CAPABILITY(x) LS_THREAD_ANNOTATION(capability(x))
// On a class: RAII object that acquires in ctor, releases in dtor.
#define LS_SCOPED_CAPABILITY LS_THREAD_ANNOTATION(scoped_lockable)
// On a data member: only accessible while holding the capability.
#define LS_GUARDED_BY(x) LS_THREAD_ANNOTATION(guarded_by(x))
// On a pointer member: the pointee is guarded.
#define LS_PT_GUARDED_BY(x) LS_THREAD_ANNOTATION(pt_guarded_by(x))
// On a function: caller must already hold the capability.
#define LS_REQUIRES(...) \
    LS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// On a function: acquires the capability (held on return).
#define LS_ACQUIRE(...) \
    LS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
// On a function: releases the capability (not held on return).
#define LS_RELEASE(...) \
    LS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// On a function: acquires only when returning `b`.
#define LS_TRY_ACQUIRE(b, ...) \
    LS_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))
// On a function: caller must NOT hold the capability (deadlock guard).
#define LS_EXCLUDES(...) LS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// On a function: returns a reference to the given capability.
#define LS_RETURN_CAPABILITY(x) LS_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch: disables the analysis inside one function.
#define LS_NO_TSA LS_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // LONGSIGHT_UTIL_ANNOTATIONS_HH

/**
 * @file
 * Minimal command-line flag parsing for the CLI driver and tools:
 * `--name=value`, `--name value`, bare `--switch`, and positional
 * arguments. Unknown flags are an error surfaced to the caller so
 * typos don't silently fall back to defaults.
 */

#ifndef LONGSIGHT_UTIL_FLAGS_HH
#define LONGSIGHT_UTIL_FLAGS_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace longsight {

/**
 * Parsed command line.
 */
class Flags
{
  public:
    Flags(int argc, const char *const *argv);

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    bool has(const std::string &name) const;

    /** Typed getters with defaults; fatal() on unparsable values. */
    std::string getString(const std::string &name,
                          const std::string &def) const;
    int64_t getInt(const std::string &name, int64_t def) const;
    double getDouble(const std::string &name, double def) const;
    bool getBool(const std::string &name, bool def = false) const;

    /**
     * Flags present on the command line that were never queried;
     * call last to reject typos.
     */
    std::vector<std::string> unconsumed() const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
    mutable std::set<std::string> consumed_;
};

} // namespace longsight

#endif // LONGSIGHT_UTIL_FLAGS_HH

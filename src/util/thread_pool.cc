#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/logging.hh"

namespace longsight {

namespace {

/** True while the current thread is executing parallelFor indices. */
thread_local bool t_inParallelRegion = false;
LS_LANE_LOCAL(t_inParallelRegion);

Mutex g_globalMu;
std::unique_ptr<ThreadPool> g_globalPool LS_GUARDED_BY(g_globalMu);
// Lock-free fast path for global(): hot loops call it once per decode
// step, so the steady state must not take g_globalMu. The mutex only
// serializes (re)construction in configureGlobal / first use.
std::atomic<ThreadPool *> g_globalPtr{nullptr};

ThreadPool *
globalSlowInit()
{
    // Cold one-time construction; hot callers come back through the
    // lock-free acquire load in global() on every later call.
    LS_CONTRACT_EXEMPT();
    MutexLock lock(g_globalMu);
    if (!g_globalPool)
        g_globalPool = std::make_unique<ThreadPool>(0);
    g_globalPtr.store(g_globalPool.get(), std::memory_order_release);
    return g_globalPool.get();
}

} // namespace

/**
 * One parallelFor invocation. Lives on the calling thread's stack; the
 * caller removes it from the queue and waits for `active` to reach
 * zero before returning, so workers never outlive it.
 */
struct ThreadPool::Job
{
    size_t end = 0;
    const std::function<void(size_t)> *fn = nullptr;
    std::atomic<size_t> next{0};

    Mutex doneMu;
    CondVar doneCv;
    // Workers currently inside runIndices. Guarded by doneMu so the
    // caller's wait and the last worker's decrement cannot race on the
    // Job's lifetime.
    unsigned active LS_GUARDED_BY(doneMu) = 0;

    Mutex errMu;
    std::exception_ptr error LS_GUARDED_BY(errMu);
};

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers_.reserve(threads - 1);
    for (unsigned i = 0; i + 1 < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu_);
        stop_ = true;
    }
    cv_.notifyAll();
    for (auto &w : workers_)
        w.join();
}

unsigned
ThreadPool::hardwareThreads()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool &
ThreadPool::global()
{
    ThreadPool *p = g_globalPtr.load(std::memory_order_acquire);
    if (p)
        return *p;
    return *globalSlowInit();
}

void
ThreadPool::configureGlobal(unsigned threads)
{
    MutexLock lock(g_globalMu);
    // Unpublish before destroying the old pool so a racing global()
    // either sees the old pool (caller's contract: no parallelFor in
    // flight across configureGlobal) or falls into the slow path and
    // blocks on g_globalMu until the new pool is ready.
    g_globalPtr.store(nullptr, std::memory_order_release);
    g_globalPool = std::make_unique<ThreadPool>(threads);
    g_globalPtr.store(g_globalPool.get(), std::memory_order_release);
}

void
ThreadPool::runIndices(Job &job)
{
    const bool was_nested = t_inParallelRegion;
    t_inParallelRegion = true;
    for (;;) {
        const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.end)
            break;
        try {
            (*job.fn)(i);
        } catch (...) {
            {
                MutexLock lock(job.errMu);
                if (!job.error)
                    job.error = std::current_exception();
            }
            // Stop handing out further indices.
            job.next.store(job.end, std::memory_order_relaxed);
        }
    }
    t_inParallelRegion = was_nested;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Job *job = nullptr;
        {
            MutexLock lock(mu_);
            // Explicit predicate loop (not a lambda-predicate wait) so
            // the guarded reads stay inside the scope the thread-safety
            // analysis can see.
            while (!stop_ && queue_.empty())
                cv_.wait(mu_);
            if (stop_)
                return;
            job = queue_.front();
            if (job->next.load(std::memory_order_relaxed) >= job->end) {
                // Exhausted; the owner will also remove it, but drop
                // it eagerly so later jobs are reachable.
                queue_.erase(queue_.begin());
                continue;
            }
            MutexLock done(job->doneMu);
            ++job->active;
        }
        runIndices(*job);
        {
            // Notify under the lock: the owner frees the Job as soon
            // as it observes active == 0, so the condition variable
            // must not be touched after releasing doneMu.
            MutexLock done(job->doneMu);
            --job->active;
            job->doneCv.notifyAll();
        }
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &fn)
{
    LS_ASSERT(begin <= end, "parallelFor range inverted");
    const size_t n = end - begin;
    if (n == 0)
        return;

    // Serial fast path: single-lane pool, tiny range, or a nested call
    // from inside a worker (which would deadlock waiting on itself).
    if (workers_.empty() || n == 1 || t_inParallelRegion) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    Job job;
    job.end = end;
    job.fn = &fn;
    job.next.store(begin, std::memory_order_relaxed);

    {
        MutexLock lock(mu_);
        queue_.push_back(&job);
    }
    cv_.notifyAll();

    // The caller is one of the lanes.
    runIndices(job);

    // No new worker may pick the job up once it leaves the queue;
    // then wait out the ones already inside.
    {
        MutexLock lock(mu_);
        auto it = std::find(queue_.begin(), queue_.end(), &job);
        if (it != queue_.end())
            queue_.erase(it);
    }
    {
        MutexLock done(job.doneMu);
        while (job.active != 0)
            job.doneCv.wait(job.doneMu);
    }

    // All workers have left runIndices, but read the error under its
    // lock anyway so the analysis (and the race lint) see a consistent
    // discipline for every `error` access.
    std::exception_ptr err;
    {
        MutexLock lock(job.errMu);
        err = job.error;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace longsight

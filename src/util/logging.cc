#include "util/logging.hh"

#include <cstdio>

namespace longsight {
namespace detail {

void
logMessage(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace longsight

/**
 * @file
 * An LPDDR5X package: eight channels sharing no resources (each has
 * its own command/data bus) plus a helper for the channel-striped
 * reads LongSight uses for full-precision keys (§7.3.3: each key
 * vector is interleaved across all eight channels of a package so NMA
 * fetches saturate the package bandwidth).
 */

#ifndef LONGSIGHT_DRAM_PACKAGE_HH
#define LONGSIGHT_DRAM_PACKAGE_HH

#include <cstdint>
#include <vector>

#include "dram/channel.hh"
#include "dram/lpddr_config.hh"

namespace longsight {

/**
 * One LPDDR5X package (8 independent channels).
 */
class DramPackage
{
  public:
    DramPackage(const LpddrTimings &timings, uint32_t num_channels);

    uint32_t numChannels() const
    {
        return static_cast<uint32_t>(channels_.size());
    }

    DramChannel &channel(uint32_t i);
    const DramChannel &channel(uint32_t i) const;

    /**
     * Read `total_bytes` striped evenly across every channel of the
     * package, all slices targeting (bank, row) in their channel.
     * Returns the completion tick of the slowest slice.
     */
    Tick readStriped(Tick earliest, uint32_t bank, uint64_t row,
                     uint32_t total_bytes);

    /**
     * Read `total_bytes` from a single channel (the contiguous,
     * non-interleaved layout the ablation bench compares against).
     */
    Tick readContiguous(Tick earliest, uint32_t channel, uint32_t bank,
                        uint64_t row, uint32_t total_bytes);

    /** Aggregate bytes moved across all channels. */
    uint64_t totalBytesTransferred() const;

    /** Peak package bandwidth (all channels), bytes/second. */
    double peakBandwidth() const;

  private:
    std::vector<DramChannel> channels_;
};

} // namespace longsight

#endif // LONGSIGHT_DRAM_PACKAGE_HH

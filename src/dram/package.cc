#include "dram/package.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

DramPackage::DramPackage(const LpddrTimings &timings, uint32_t num_channels)
{
    LS_ASSERT(num_channels > 0, "package needs at least one channel");
    channels_.reserve(num_channels);
    for (uint32_t i = 0; i < num_channels; ++i)
        channels_.emplace_back(timings);
}

DramChannel &
DramPackage::channel(uint32_t i)
{
    LS_ASSERT(i < channels_.size(), "channel ", i, " out of range");
    return channels_[i];
}

const DramChannel &
DramPackage::channel(uint32_t i) const
{
    LS_ASSERT(i < channels_.size(), "channel ", i, " out of range");
    return channels_[i];
}

Tick
DramPackage::readStriped(Tick earliest, uint32_t bank, uint64_t row,
                         uint32_t total_bytes)
{
    LS_ASSERT(total_bytes > 0, "zero-byte striped read");
    const uint32_t n = numChannels();
    const uint32_t slice = (total_bytes + n - 1) / n;
    Tick done = earliest;
    uint32_t remaining = total_bytes;
    for (uint32_t c = 0; c < n && remaining > 0; ++c) {
        const uint32_t bytes = std::min(slice, remaining);
        done = std::max(done, channels_[c].read(earliest, bank, row, bytes));
        remaining -= bytes;
    }
    return done;
}

Tick
DramPackage::readContiguous(Tick earliest, uint32_t channel_idx,
                            uint32_t bank, uint64_t row, uint32_t total_bytes)
{
    return channel(channel_idx).read(earliest, bank, row, total_bytes);
}

uint64_t
DramPackage::totalBytesTransferred() const
{
    uint64_t sum = 0;
    for (const auto &c : channels_)
        sum += c.stats().bytesTransferred;
    return sum;
}

double
DramPackage::peakBandwidth() const
{
    return channels_.empty()
        ? 0.0
        : channels_.front().timings().peakBandwidth() * channels_.size();
}

} // namespace longsight

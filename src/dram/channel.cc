#include "dram/channel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace longsight {

DramChannel::DramChannel(const LpddrTimings &timings)
    : timings_(timings), banks_(timings.banksPerChannel),
      nextRefresh_(timings.tREFI)
{
}

Tick
DramChannel::applyRefresh(Tick t)
{
    if (!timings_.refreshEnabled)
        return t;
    if (t < nextRefresh_)
        return t;
    const uint64_t epochs = (t - nextRefresh_) / timings_.tREFI + 1;
    const Tick last_start = nextRefresh_ + (epochs - 1) * timings_.tREFI;
    nextRefresh_ = last_start + timings_.tREFI;
    stats_.refreshes += epochs;
    const Tick refresh_end = last_start + timings_.tRFCab;
    return t < refresh_end ? refresh_end : t;
}

Tick
DramChannel::prepareRow(Tick earliest, BankState &bank, uint64_t row,
                        bool count_stats)
{
    Tick t = std::max(earliest, bank.readyAt);
    if (bank.rowOpen && bank.openRow == row) {
        if (count_stats)
            ++stats_.rowHits;
        return t;
    }
    if (count_stats)
        ++stats_.rowMisses;
    if (bank.rowOpen)
        t += timings_.tRP;
    t += timings_.tRCD;
    bank.rowOpen = true;
    bank.openRow = row;
    return t;
}

Tick
DramChannel::read(Tick earliest, uint32_t bank_idx, uint64_t row,
                  uint32_t bytes)
{
    LS_ASSERT(bank_idx < banks_.size(), "bank ", bank_idx, " out of range");
    LS_ASSERT(bytes > 0, "zero-byte DRAM read");
    BankState &bank = banks_[bank_idx];

    earliest = applyRefresh(earliest);
    const Tick col_ready = prepareRow(earliest, bank, row, true);

    // Data appears tRL after the column command; the burst train then
    // occupies the shared data bus contiguously.
    const uint32_t bursts =
        (bytes + timings_.burstBytes - 1) / timings_.burstBytes;
    const Tick data_start = std::max(col_ready + timings_.tRL, busFree_);
    const Tick done = data_start + bursts * timings_.tBurst;

    busFree_ = done;
    bank.readyAt = col_ready + bursts * timings_.tBurst;

    ++stats_.reads;
    stats_.bytesTransferred += bytes;
    return done;
}

Tick
DramChannel::write(Tick earliest, uint32_t bank_idx, uint64_t row,
                   uint32_t bytes)
{
    LS_ASSERT(bank_idx < banks_.size(), "bank ", bank_idx, " out of range");
    LS_ASSERT(bytes > 0, "zero-byte DRAM write");
    BankState &bank = banks_[bank_idx];

    earliest = applyRefresh(earliest);
    const Tick col_ready = prepareRow(earliest, bank, row, true);
    const uint32_t bursts =
        (bytes + timings_.burstBytes - 1) / timings_.burstBytes;
    const Tick data_start = std::max(col_ready + timings_.tWL, busFree_);
    const Tick done = data_start + bursts * timings_.tBurst;

    busFree_ = done;
    bank.readyAt = done;

    ++stats_.writes;
    stats_.bytesTransferred += bytes;
    return done;
}

Tick
DramChannel::probeReady(Tick earliest, uint32_t bank_idx, uint64_t row) const
{
    LS_ASSERT(bank_idx < banks_.size(), "bank ", bank_idx, " out of range");
    const BankState &bank = banks_[bank_idx];
    Tick t = std::max(earliest, bank.readyAt);
    if (bank.rowOpen && bank.openRow == row)
        return t;
    if (bank.rowOpen)
        t += timings_.tRP;
    return t + timings_.tRCD;
}

} // namespace longsight
